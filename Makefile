GO ?= go
TIMEOUT ?= 10m

.PHONY: check build vet test race bench

# check is what CI runs: build, vet, full test suite under the race detector.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout $(TIMEOUT) ./...

race:
	$(GO) test -race -timeout $(TIMEOUT) ./...

# bench runs the robustness bench guards: watchdog-disabled lock throughput
# must stay within noise of the plain runtime, and the disabled race
# detector must add no allocations to the simulator hot loop.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkDetRuntimeWatchdog|BenchmarkRaceDetectorOff' -benchtime 1x -benchmem .
