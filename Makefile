GO ?= go
TIMEOUT ?= 10m

.PHONY: check build vet test race bench bench-smoke bench-json serve-smoke chaos-smoke cluster-smoke nemesis-smoke workload-smoke churn-smoke

# check is what CI runs: build, vet, full test suite under the race detector.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout $(TIMEOUT) ./...

race:
	$(GO) test -race -timeout $(TIMEOUT) ./...

# bench runs every committed benchmark at full benchtime: the robustness
# guards at the repo root plus the hot-loop reference-vs-optimized pairs
# (interpreter dispatch, engine scheduler, race detector on/off).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkDetRuntimeWatchdog|BenchmarkRaceDetectorOff' -benchtime 1x -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkInterpDispatch|BenchmarkRaceDetector' -benchmem ./internal/interp/
	$(GO) test -run '^$$' -bench BenchmarkEngineSweep -benchmem ./internal/sim/

# bench-smoke is the CI variant: one iteration of each hot-loop benchmark,
# enough to catch a broken benchmark or an allocation regression without
# paying full measurement time.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkInterpDispatch|BenchmarkRaceDetector' -benchtime 1x -benchmem ./internal/interp/
	$(GO) test -run '^$$' -bench BenchmarkEngineSweep -benchtime 1x -benchmem ./internal/sim/

# bench-json regenerates the committed benchmark trajectory (BENCH_PR4.json):
# service latency cold/warm, interpreter MIPS, engine events/sec, and race
# overhead across the five splash workloads. See EXPERIMENTS.md.
bench-json:
	$(GO) run ./cmd/detbench -bench-json BENCH_PR4.json

# serve-smoke proves the service end to end: detserve starts on a random
# loopback port, the quickstart program is submitted twice over HTTP, and
# the second response must be a cache hit with an identical schedule hash
# (every hit is re-executed by the determinism self-check).
serve-smoke:
	$(GO) run ./cmd/detserve -smoke

# chaos-smoke runs the short slice of the crash/restart property: seeded
# SIGTERM-style kills mid-queue with injected worker panics, after which
# every acknowledged job must complete byte-identical to an uninterrupted
# run — zero lost, zero duplicated. The full 20-schedule property runs in
# `make test`; -short keeps this target CI-cheap.
chaos-smoke:
	$(GO) test -run 'TestChaos' -short -count=1 -timeout $(TIMEOUT) ./internal/service/

# nemesis-smoke runs the short slice of the nemesis properties: seeded fault
# schedules (disk faults + post-crash journal scars single-node; asymmetric
# partitions, flaky links and response corruption in the cluster) under which
# no acknowledged job may be silently lost and corrupt bytes may never be
# served. The full ≥20-schedule properties run in `make test`.
nemesis-smoke:
	$(GO) test -run 'TestNemesis|TestJournalInteriorCorruption|TestScrubJournal|TestLoopNet|TestShipBatchCorruption|TestPeerQuarantine|TestPlan|TestEngine|TestFaultFS|TestScar' -short -count=1 -timeout $(TIMEOUT) ./internal/service/ ./internal/cluster/ ./internal/nemesis/

# workload-smoke proves the seeded traffic plane: vet plus the workload and
# idiom suites under the race detector (arrival-process determinism, trace
# round-trip/fuzz-corpus, sync-idiom golden determinism, the cross-topology
# zero-loss property, and bursty admission-control determinism), then a quick
# detload matrix sweep whose table must be byte-identical across -j values.
workload-smoke:
	$(GO) vet ./internal/workload/ ./internal/irgen/ ./cmd/detload/
	$(GO) test -race -short -count=1 -timeout $(TIMEOUT) ./internal/workload/ ./internal/irgen/
	$(GO) run ./cmd/detload -smoke -j 4

# churn-smoke runs the short slice of the dynamic-membership properties
# under the race detector: the seeded join/drain churn chaos property
# (abridged to 4 schedules by -short), the membership view/ring/config unit
# suite, and the join / drain-mid-load / anti-entropy-repair / hedged-fill
# integration tests. The full 20-schedule property runs in `make test` as
# TestChurnChaosProperty; EXPERIMENTS.md commits its table.
churn-smoke:
	$(GO) vet ./internal/cluster/ ./internal/workload/
	$(GO) test -race -short -count=1 -timeout $(TIMEOUT) -run 'TestChurn|TestView|TestMembership|TestClusterConfig|TestJoin|TestDrain|TestAntiEntropy|TestHedgedFill' ./internal/cluster/ ./internal/workload/

# cluster-smoke proves the shard group end to end over real loopback HTTP:
# boot a 3-node cluster (each node with its own journal), sweep jobs across
# it, kill one node mid-sweep, restart it on its journal, and require zero
# lost jobs, cluster-wide schedule-hash identity, and zero divergences. The
# in-memory 20-schedule cluster chaos property (kills + partitions) runs in
# `make test` as TestClusterChaosProperty.
cluster-smoke:
	$(GO) run ./cmd/detserve -cluster-smoke
