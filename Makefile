GO ?= go
TIMEOUT ?= 10m

.PHONY: check build vet test race bench serve-smoke

# check is what CI runs: build, vet, full test suite under the race detector.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -timeout $(TIMEOUT) ./...

race:
	$(GO) test -race -timeout $(TIMEOUT) ./...

# bench runs the robustness bench guards: watchdog-disabled lock throughput
# must stay within noise of the plain runtime, and the disabled race
# detector must add no allocations to the simulator hot loop.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkDetRuntimeWatchdog|BenchmarkRaceDetectorOff' -benchtime 1x -benchmem .

# serve-smoke proves the service end to end: detserve starts on a random
# loopback port, the quickstart program is submitted twice over HTTP, and
# the second response must be a cache hit with an identical schedule hash
# (every hit is re-executed by the determinism self-check).
serve-smoke:
	$(GO) run ./cmd/detserve -smoke
