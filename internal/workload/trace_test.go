package workload

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	evs := tlOf(t, 9, ArrivalConfig{Shape: ShapeClosed, Jobs: 200, RatePerSec: 1000})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, evs); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, stats, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if stats.TornTail || stats.Records != len(evs) {
		t.Fatalf("stats = %+v, want %d records, no torn tail", stats, len(evs))
	}
	if len(got) != len(evs) {
		t.Fatalf("got %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], evs[i])
		}
	}

	// And the round-tripped trace replays as a timeline.
	replay, err := Timeline(NewPartitionedRNG(1), ArrivalConfig{Shape: ShapeTrace, Jobs: len(got), Trace: got})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if TimelineFingerprint(replay) != TimelineFingerprint(evs) {
		t.Fatal("trace replay changed the timeline")
	}
}

func TestTraceTornTail(t *testing.T) {
	evs := tlOf(t, 2, ArrivalConfig{Shape: ShapePoisson, Jobs: 5, RatePerSec: 100})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	cut := full[:len(full)-7] // cut mid final record, losing the newline
	got, stats, err := ReadTrace(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("torn tail must not error: %v", err)
	}
	if !stats.TornTail {
		t.Fatal("torn tail not reported")
	}
	if len(got) != len(evs)-1 {
		t.Fatalf("got %d events, want %d (torn record dropped)", len(got), len(evs)-1)
	}
}

func TestTraceTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"garbage line", "{\"seq\":0,\"at_us\":5}\nnot json\n{\"seq\":1,\"at_us\":9}\n", ErrTraceSyntax},
		{"missing at_us", "{\"seq\":0}\n", ErrTraceTimestamp},
		{"negative at_us", "{\"seq\":0,\"at_us\":-4}\n", ErrTraceTimestamp},
		{"fractional at_us", "{\"seq\":0,\"at_us\":1.5}\n", ErrTraceSyntax},
		{"seq gap", "{\"seq\":0,\"at_us\":5}\n{\"seq\":3,\"at_us\":9}\n", ErrTraceOrder},
		{"time travel", "{\"seq\":0,\"at_us\":9}\n{\"seq\":1,\"at_us\":5}\n", ErrTraceOrder},
		{"unknown field", "{\"seq\":0,\"at_us\":5,\"rate\":2}\n", ErrTraceSyntax},
	}
	for _, tc := range cases {
		_, _, err := ReadTrace(strings.NewReader(tc.in))
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		var te *TraceError
		if !errors.As(err, &te) || te.Line == 0 {
			t.Fatalf("%s: error %v lacks line number", tc.name, err)
		}
	}
}

func TestTraceInteriorGarbageNeverSkipped(t *testing.T) {
	// Interior corruption is an error even when the rest parses: silently
	// dropping arrivals would fake a lighter workload.
	in := "{\"seq\":0,\"at_us\":1}\n\x00\x01\x02\n{\"seq\":1,\"at_us\":2}\n"
	if _, _, err := ReadTrace(strings.NewReader(in)); !errors.Is(err, ErrTraceSyntax) {
		t.Fatalf("interior garbage: err = %v, want ErrTraceSyntax", err)
	}
}

func FuzzTraceReplay(f *testing.F) {
	// Seeds mirror the corpus: well-formed, torn tail, malformed timestamps,
	// out-of-order arrivals, truncated UTF-8, blank lines, foreign fields.
	f.Add([]byte(""))
	f.Add([]byte("{\"seq\":0,\"at_us\":10}\n{\"seq\":1,\"at_us\":20}\n"))
	f.Add([]byte("{\"seq\":0,\"at_us\":10}\n{\"seq\":1,\"at_"))
	f.Add([]byte("{\"seq\":0,\"at_us\":-1}\n"))
	f.Add([]byte("{\"seq\":0,\"at_us\":\"noon\"}\n"))
	f.Add([]byte("{\"seq\":0,\"at_us\":30}\n{\"seq\":1,\"at_us\":20}\n"))
	f.Add([]byte("{\"seq\":0,\"at_us\":1,\"client\":2}\n\n\n{\"seq\":1,\"at_us\":1}\n"))
	f.Add([]byte("{\"seq\":0,\"at_us\":1}\n\xff\xfe{\"bad\"\n"))
	f.Add([]byte("{\"kind\":\"submitted\",\"id\":\"job-1\"}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, stats, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			// Errors must be typed trace errors (or nothing else to check).
			var te *TraceError
			if !errors.As(err, &te) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if stats.Records != len(evs) {
			t.Fatalf("stats.Records = %d, len = %d", stats.Records, len(evs))
		}
		// Accepted output must satisfy the trace invariants outright.
		var prev int64 = -1
		for i, e := range evs {
			if e.Seq != i {
				t.Fatalf("seq not dense at %d: %d", i, e.Seq)
			}
			if e.AtUS < 0 || e.AtUS < prev {
				t.Fatalf("timestamps broken at %d: %d after %d", i, e.AtUS, prev)
			}
			prev = e.AtUS
		}
		// And accepted traces re-serialize and re-parse to the same events.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, evs); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		again, _, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(again) != len(evs) {
			t.Fatalf("re-parse count %d != %d", len(again), len(evs))
		}
		for i := range evs {
			if again[i] != evs[i] {
				t.Fatalf("re-parse event %d: %+v != %+v", i, again[i], evs[i])
			}
		}
	})
}
