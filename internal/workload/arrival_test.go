package workload

import (
	"errors"
	"testing"

	"repro/internal/diag"
)

func tlOf(t *testing.T, seed int64, cfg ArrivalConfig) []Arrival {
	t.Helper()
	evs, err := Timeline(NewPartitionedRNG(seed), cfg)
	if err != nil {
		t.Fatalf("Timeline(%+v): %v", cfg, err)
	}
	return evs
}

func TestTimelineShapes(t *testing.T) {
	for _, shape := range Shapes() {
		cfg := ArrivalConfig{Shape: shape, Jobs: 500, RatePerSec: 1000}
		evs := tlOf(t, 42, cfg)
		if len(evs) != cfg.Jobs {
			t.Fatalf("%s: %d events, want %d", shape, len(evs), cfg.Jobs)
		}
		var prev int64 = -1
		for i, e := range evs {
			if e.Seq != i {
				t.Fatalf("%s: seq[%d] = %d", shape, i, e.Seq)
			}
			if e.AtUS < prev {
				t.Fatalf("%s: at_us goes backwards at %d: %d < %d", shape, i, e.AtUS, prev)
			}
			prev = e.AtUS
			if shape == ShapeClosed {
				if e.Client < 0 || e.Client >= 8 {
					t.Fatalf("%s: client %d out of range", shape, e.Client)
				}
			} else if e.Client != -1 {
				t.Fatalf("%s: open-loop event has client %d", shape, e.Client)
			}
		}
	}
}

func TestTimelineDeterministic(t *testing.T) {
	for _, shape := range Shapes() {
		cfg := ArrivalConfig{Shape: shape, Jobs: 300, RatePerSec: 5000}
		a := TimelineFingerprint(tlOf(t, 7, cfg))
		b := TimelineFingerprint(tlOf(t, 7, cfg))
		c := TimelineFingerprint(tlOf(t, 8, cfg))
		if a != b {
			t.Fatalf("%s: same seed produced different timelines", shape)
		}
		if a == c {
			t.Fatalf("%s: different seeds produced identical timelines", shape)
		}
	}
}

// TestStreamPartitioning: consuming draws from one class must not shift
// another class's sequence — the property that lets the mix change without
// perturbing arrivals and vice versa.
func TestStreamPartitioning(t *testing.T) {
	cfg := ArrivalConfig{Shape: ShapeBursty, Jobs: 200, RatePerSec: 1000}

	clean := NewPartitionedRNG(11)
	want := TimelineFingerprint(tlOf2(t, clean, cfg))

	dirty := NewPartitionedRNG(11)
	for i := 0; i < 1000; i++ { // burn unrelated streams first
		dirty.Stream(ClassMix).Next()
		dirty.Stream(ClassPayload).Next()
	}
	if got := TimelineFingerprint(tlOf2(t, dirty, cfg)); got != want {
		t.Fatalf("arrival stream shifted by draws on other classes: %s != %s", got, want)
	}
}

func tlOf2(t *testing.T, rng *PartitionedRNG, cfg ArrivalConfig) []Arrival {
	t.Helper()
	evs, err := Timeline(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestBurstyIsBursty: the MMPP timeline's gap distribution must actually be
// bimodal — the burst-phase median gap far below the calm-phase median.
func TestBurstyIsBursty(t *testing.T) {
	evs := tlOf(t, 3, ArrivalConfig{Shape: ShapeBursty, Jobs: 4000, RatePerSec: 1000, BurstFactor: 8})
	short, long := 0, 0
	meanGapUS := int64(1000) // 1000/s base rate
	for i := 1; i < len(evs); i++ {
		gap := evs[i].AtUS - evs[i-1].AtUS
		if gap*4 < meanGapUS {
			short++
		}
		if gap > meanGapUS*4 {
			long++
		}
	}
	if short < len(evs)/10 || long < len(evs)/100 {
		t.Fatalf("gap distribution not bimodal: %d short, %d long of %d", short, long, len(evs))
	}
}

func TestTimelineValidation(t *testing.T) {
	bad := []ArrivalConfig{
		{Shape: ShapePoisson, Jobs: 0, RatePerSec: 1},
		{Shape: ShapePoisson, Jobs: 10},
		{Shape: ShapeBursty, Jobs: 10, RatePerSec: 1, BurstFactor: 0.5},
		{Shape: ShapeDiurnal, Jobs: 10, RatePerSec: 1, Curve: []int{1, 0, 1}},
		{Shape: ShapeTrace, Jobs: 10},
		{Shape: "sawtooth", Jobs: 10, RatePerSec: 1},
	}
	for _, cfg := range bad {
		_, err := Timeline(NewPartitionedRNG(1), cfg)
		var mis *diag.MisuseError
		if !errors.As(err, &mis) || !errors.Is(err, diag.ErrBadConfig) {
			t.Fatalf("%+v: err = %v, want typed MisuseError/ErrBadConfig", cfg, err)
		}
	}
}

func TestMixSynthesizeDeterministic(t *testing.T) {
	for _, spec := range DefaultMixes() {
		a, err := Synthesize(NewPartitionedRNG(5), spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		b, err := Synthesize(NewPartitionedRNG(5), spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(a.Progs) != len(b.Progs) {
			t.Fatalf("%s: pool sizes differ", spec.Name)
		}
		for i := range a.Progs {
			if a.Progs[i] != b.Progs[i] {
				t.Fatalf("%s: pool[%d] differs across same-seed synthesis", spec.Name, i)
			}
		}
		if len(a.Progs) != 16 {
			t.Fatalf("%s: pool size %d, want default 16", spec.Name, len(a.Progs))
		}
	}
}
