package workload

import (
	"fmt"
	"sort"

	"repro/internal/det"
	"repro/internal/irgen"
)

// Program is one entry of a mix pool: a named, pre-rendered IR program ready
// to submit as a service request.
type Program struct {
	// Name identifies the program ("idiom/seed" or "generic/seed").
	Name string
	// Source is the textual IR the service parses.
	Source string
	// Threads is the simulated thread count the program was sized for.
	Threads int
}

// MixSpec parameterizes a job mix: relative weights per program family and
// the size of the distinct-program pool. A bounded pool is what makes
// ≥100k-job scenarios tractable — the service's content-addressed caches
// absorb repeats — while still exercising every family.
type MixSpec struct {
	// Name labels the mix in scenario tables.
	Name string
	// IdiomWeights is the relative draw weight per sync idiom; zero-weight
	// idioms are excluded.
	IdiomWeights map[irgen.Idiom]int
	// GenericWeight is the relative weight of plain irgen.Generate programs
	// (the arithmetic/branch/loop family without idiom structure).
	GenericWeight int
	// GenericSync makes the generic family include lock/barrier regions.
	GenericSync bool
	// PoolSize is the number of distinct programs to synthesize. Default 16.
	PoolSize int
	// Threads is the simulated thread count per program. Default 4.
	Threads int
	// Gen bounds program generation; zero value means irgen.Default().
	Gen irgen.Config
}

// DefaultMixes returns the standard mix suite: one mix per idiom family,
// one generic mix, and one blended mix drawing from everything.
func DefaultMixes() []MixSpec {
	mixes := []MixSpec{{Name: "generic", GenericWeight: 1, GenericSync: true}}
	for _, id := range irgen.Idioms() {
		mixes = append(mixes, MixSpec{Name: string(id), IdiomWeights: map[irgen.Idiom]int{id: 1}})
	}
	blend := MixSpec{Name: "blend", GenericWeight: 2, GenericSync: true, IdiomWeights: map[irgen.Idiom]int{}}
	for _, id := range irgen.Idioms() {
		blend.IdiomWeights[id] = 1
	}
	return append(mixes, blend)
}

// MixByName resolves a mix from the default suite.
func MixByName(name string) (MixSpec, error) {
	for _, m := range DefaultMixes() {
		if m.Name == name {
			return m, nil
		}
	}
	var names []string
	for _, m := range DefaultMixes() {
		names = append(names, m.Name)
	}
	return MixSpec{}, misuse("unknown mix %q (want one of %v)", name, names)
}

// Mix is a synthesized program pool plus the weighted pick table.
type Mix struct {
	Spec  MixSpec
	Progs []Program
	// families[i] is the family tag of Progs[i] (for table breakdowns).
	families []string
}

// family is one weighted program source during synthesis.
type family struct {
	tag    string
	weight int
	gen    func(seed uint64) ( /* name */ string, /* source */ string)
}

// Synthesize builds the distinct-program pool for spec. All generation seeds
// come from the payload stream, all pool-slot family choices from the mix
// stream — so a different arrival shape (which consumes neither) can never
// change which programs exist.
func Synthesize(rng *PartitionedRNG, spec MixSpec) (*Mix, error) {
	if spec.PoolSize <= 0 {
		spec.PoolSize = 16
	}
	if spec.Threads <= 0 {
		spec.Threads = 4
	}
	zero := irgen.Config{}
	if spec.Gen == zero {
		spec.Gen = irgen.Default()
	}
	spec.Gen.Threads = spec.Threads

	var fams []family
	if spec.GenericWeight > 0 {
		cfg := spec.Gen
		cfg.WithSync = spec.GenericSync
		fams = append(fams, family{tag: "generic", weight: spec.GenericWeight, gen: func(seed uint64) (string, string) {
			return fmt.Sprintf("generic/%d", seed), irgen.Generate(seed, cfg).String()
		}})
	}
	// Fixed idiom order keeps synthesis independent of map iteration.
	var ids []irgen.Idiom
	for id := range spec.IdiomWeights {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if w := spec.IdiomWeights[id]; w > 0 {
			id, cfg := id, spec.Gen
			fams = append(fams, family{tag: string(id), weight: w, gen: func(seed uint64) (string, string) {
				return fmt.Sprintf("%s/%d", id, seed), irgen.GenerateIdiom(id, seed, cfg).String()
			}})
		}
	}
	if len(fams) == 0 {
		return nil, misuse("mix %q has no positive-weight family", spec.Name)
	}
	total := 0
	for _, f := range fams {
		total += f.weight
	}

	mixR, payR := rng.Stream(ClassMix), rng.Stream(ClassPayload)
	m := &Mix{Spec: spec}
	seen := map[string]bool{}
	for attempts := 0; len(m.Progs) < spec.PoolSize; attempts++ {
		if attempts > 10*spec.PoolSize+100 {
			return nil, misuse("mix %q: could not synthesize %d distinct programs", spec.Name, spec.PoolSize)
		}
		f := pickWeighted(mixR, fams, total)
		seed := payR.Next()%100000 + 1
		name, src := f.gen(seed)
		if seen[name] {
			continue
		}
		seen[name] = true
		m.Progs = append(m.Progs, Program{Name: name, Source: src, Threads: spec.Threads})
		m.families = append(m.families, f.tag)
	}
	return m, nil
}

func pickWeighted(r *det.Rand, fams []family, total int) family {
	n := r.IntN(total)
	for _, f := range fams {
		if n < f.weight {
			return f
		}
		n -= f.weight
	}
	return fams[len(fams)-1]
}

// Pick draws one program for an arrival from the mix stream.
func (m *Mix) Pick(r *det.Rand) Program {
	return m.Progs[r.IntN(len(m.Progs))]
}

// Families returns the per-family program counts of the pool, sorted by tag.
func (m *Mix) Families() map[string]int {
	out := map[string]int{}
	for _, tag := range m.families {
		out[tag]++
	}
	return out
}
