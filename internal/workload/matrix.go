package workload

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Scenario is one cell of the matrix: an arrival shape × job mix × topology
// × nemesis schedule combination.
type Scenario struct {
	Name    string
	Arrival ArrivalConfig
	Mix     MixSpec
	Nodes   int
	Nemesis Nemesis
}

// MatrixConfig parameterizes a matrix sweep.
type MatrixConfig struct {
	// Seed roots every scenario (each scenario's streams derive from
	// Seed ^ its index, so scenarios are independent but reproducible).
	Seed int64
	// Scenarios is the sweep, run in order.
	Scenarios []Scenario
	// Parallel is the scenario worker-pool size (detbench -j pattern;
	// default 1). Results are merged in scenario index order, so the
	// rendered table is byte-identical regardless of parallelism.
	Parallel int
	// Window/Workers/QueueDepth pass through to every scenario's RunConfig.
	Window, Workers, QueueDepth int
}

// ScenarioResult pairs a scenario with its outcome (or error).
type ScenarioResult struct {
	Scenario Scenario
	Outcome  *Outcome
	Err      error
}

// RunMatrix sweeps the scenarios on a bounded worker pool and returns
// results in scenario order.
func RunMatrix(ctx context.Context, cfg MatrixConfig) []ScenarioResult {
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	results := make([]ScenarioResult, len(cfg.Scenarios))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallel)
	for i, sc := range cfg.Scenarios {
		i, sc := i, sc
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			out, err := Run(ctx, RunConfig{
				Seed:       cfg.Seed ^ int64(i)*0x9E3779B9,
				Arrival:    sc.Arrival,
				Mix:        sc.Mix,
				Nodes:      sc.Nodes,
				Nemesis:    sc.Nemesis,
				Window:     cfg.Window,
				Workers:    cfg.Workers,
				QueueDepth: cfg.QueueDepth,
			})
			results[i] = ScenarioResult{Scenario: sc, Outcome: out, Err: err}
		}()
	}
	wg.Wait()
	return results
}

// DefaultScenarios builds the standard sweep: every generatable arrival
// shape × {blend mix} × {1 node, 3 nodes}, plus a flaky-transport cell —
// jobs arrivals each. Trace replay is covered separately (it needs an input
// timeline).
func DefaultScenarios(jobs int) []Scenario {
	blend, _ := MixByName("blend")
	var scs []Scenario
	for _, shape := range Shapes() {
		for _, nodes := range []int{1, 3} {
			scs = append(scs, Scenario{
				Name:    fmt.Sprintf("%s/%s/n%d", shape, blend.Name, nodes),
				Arrival: ArrivalConfig{Shape: shape, Jobs: jobs, RatePerSec: 2000},
				Mix:     blend,
				Nodes:   nodes,
				Nemesis: NemesisNone,
			})
		}
	}
	scs = append(scs, Scenario{
		Name:    fmt.Sprintf("poisson/%s/n3+flaky", blend.Name),
		Arrival: ArrivalConfig{Shape: ShapePoisson, Jobs: jobs, RatePerSec: 2000},
		Mix:     blend,
		Nodes:   3,
		Nemesis: NemesisFlaky,
	})
	return scs
}

// RenderTable renders results as a fixed-width table. Only deterministic
// columns appear: two runs of the same matrix seed must render
// byte-identical tables (the wall-clock annex goes to RenderAnnex).
func RenderTable(results []ScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-8s %-8s %5s %9s %9s %6s %8s %5s %16s  %s\n",
		"scenario", "shape", "mix", "nodes", "submitted", "completed", "failed", "rejected", "progs", "trace-fp", "core-fingerprint")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-24s ERROR %v\n", r.Scenario.Name, r.Err)
			continue
		}
		o := r.Outcome
		fmt.Fprintf(&b, "%-24s %-8s %-8s %5d %9d %9d %6d %8d %5d %16s  %s\n",
			r.Scenario.Name, o.Shape, o.Mix, o.Nodes, o.Submitted, o.Completed,
			o.Failed, o.Rejected, o.DistinctPrograms, o.TraceFingerprint, o.CoreFingerprint)
	}
	return b.String()
}

// RenderAnnex renders the measured (non-deterministic) columns: wall-clock
// throughput and latency. Kept separate so table-equality assertions never
// see it.
func RenderAnnex(results []ScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %12s %9s %9s\n",
		"scenario", "elapsed", "jobs/sec", "p50", "p95")
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		o := r.Outcome
		fmt.Fprintf(&b, "%-24s %8dms %12.0f %7dus %7dus\n",
			r.Scenario.Name, o.ElapsedMS, o.ThroughputJPS, o.P50US, o.P95US)
	}
	return b.String()
}
