package workload

import (
	"context"
	"strings"
	"testing"
)

func liteScenarios(jobs int) []Scenario {
	var scs []Scenario
	for _, shape := range []Shape{ShapePoisson, ShapeBursty, ShapeClosed} {
		for _, nodes := range []int{1, 3} {
			scs = append(scs, Scenario{
				Name:    string(shape) + "/n" + map[int]string{1: "1", 3: "3"}[nodes],
				Arrival: ArrivalConfig{Shape: shape, Jobs: jobs, RatePerSec: 5000, Clients: 4},
				Mix:     liteMix(),
				Nodes:   nodes,
			})
		}
	}
	scs = append(scs, Scenario{
		Name:    "poisson/n3+flaky",
		Arrival: ArrivalConfig{Shape: ShapePoisson, Jobs: jobs, RatePerSec: 5000},
		Mix:     liteMix(),
		Nodes:   3,
		Nemesis: NemesisFlaky,
	})
	return scs
}

// TestMatrixDeterministicTables is the headline acceptance criterion: two
// runs of the same scenario-matrix seed produce byte-identical result
// tables, including with a parallel worker pool (results merge in scenario
// index order, so parallelism never reorders the table).
func TestMatrixDeterministicTables(t *testing.T) {
	render := func(parallel int) string {
		results := RunMatrix(context.Background(), MatrixConfig{
			Seed:      909,
			Scenarios: liteScenarios(30),
			Parallel:  parallel,
		})
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Scenario.Name, r.Err)
			}
		}
		return RenderTable(results)
	}
	a := render(1)
	b := render(1)
	c := render(4)
	if a != b {
		t.Fatalf("same-seed serial tables differ:\n--- A ---\n%s--- B ---\n%s", a, b)
	}
	if a != c {
		t.Fatalf("parallel table differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", a, c)
	}
	if strings.Contains(a, "ERROR") {
		t.Fatalf("table contains errors:\n%s", a)
	}
	// Every scenario row reports zero loss.
	if !strings.Contains(a, "poisson/n3+flaky") {
		t.Fatalf("nemesis scenario missing:\n%s", a)
	}
}

// TestMatrixScenarioIndependence: each scenario derives its streams from the
// matrix seed XOR its index, so reordering or removing other scenarios must
// not change a scenario's outcome — only its own cell position matters.
func TestMatrixScenarioIndependence(t *testing.T) {
	scs := liteScenarios(25)
	full := RunMatrix(context.Background(), MatrixConfig{Seed: 31, Scenarios: scs})
	// Rerun only scenario 3 by padding with earlier scenarios intact.
	partial := RunMatrix(context.Background(), MatrixConfig{Seed: 31, Scenarios: scs[:4]})
	if full[3].Err != nil || partial[3].Err != nil {
		t.Fatalf("errs: %v / %v", full[3].Err, partial[3].Err)
	}
	if full[3].Outcome.CoreFingerprint != partial[3].Outcome.CoreFingerprint ||
		full[3].Outcome.TraceFingerprint != partial[3].Outcome.TraceFingerprint {
		t.Fatal("scenario outcome depends on scenarios after it in the sweep")
	}
}

func TestDefaultScenariosCoverMatrix(t *testing.T) {
	scs := DefaultScenarios(100)
	if len(scs) != len(Shapes())*2+1 {
		t.Fatalf("got %d scenarios, want %d", len(scs), len(Shapes())*2+1)
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Arrival.Jobs != 100 {
			t.Fatalf("%s: jobs = %d", sc.Name, sc.Arrival.Jobs)
		}
	}
	if !seen["poisson/blend/n3+flaky"] {
		t.Fatal("flaky-transport cell missing from default sweep")
	}
}
