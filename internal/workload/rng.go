// Package workload turns a single seed into a reproducible traffic
// timeline: seeded arrival processes (open-loop Poisson, bursty MMPP,
// diurnal rate curves, closed-loop with think time, JSONL trace replay), a
// job-mix synthesizer drawing programs from the irgen generators (including
// the sync idiom family), a driver that pushes the stream through the
// service layer — single node or LoopNet cluster — and a scenario matrix
// runner producing deterministic, byte-identical result tables.
//
// Randomness is partitioned per subsystem exactly like internal/nemesis:
// each class of decision draws from its own det.Rand stream derived from
// (seed, class id), so changing how many draws one class consumes never
// shifts another class's timeline — the arrival shape can change without
// perturbing which programs the mix picks, and vice versa.
package workload

import (
	"hash/fnv"
	"sync"

	"repro/internal/det"
)

// Stream classes. Every seeded decision in the workload plane belongs to
// exactly one class.
const (
	// ClassArrival drives inter-arrival gaps and burst-phase switching.
	ClassArrival = "arrival"
	// ClassMix drives which program each arrival submits.
	ClassMix = "mix"
	// ClassPayload drives program-generation seeds for the mix pool.
	ClassPayload = "payload"
	// ClassThink drives closed-loop per-client think times.
	ClassThink = "think"
)

// streamID maps a class to its fixed det.Rand stream id. The ids live in a
// different range from the nemesis plane's (11..15) so a shared seed never
// aliases workload draws with fault-schedule draws. Unknown labels hash into
// a disjoint range, so ad-hoc streams (e.g. per-client think streams) are
// stable too.
func streamID(class string) int {
	switch class {
	case ClassArrival:
		return 31
	case ClassMix:
		return 32
	case ClassPayload:
		return 33
	case ClassThink:
		return 34
	default:
		h := fnv.New32a()
		h.Write([]byte(class))
		return 1101 + int(h.Sum32()%1009)
	}
}

// PartitionedRNG hands out one independent deterministic stream per class
// label. Safe for concurrent use; each stream itself must be consumed from
// one goroutine (the driver serializes all draws).
type PartitionedRNG struct {
	seed    int64
	mu      sync.Mutex
	streams map[string]*det.Rand
}

// NewPartitionedRNG returns a partitioned source rooted at seed.
func NewPartitionedRNG(seed int64) *PartitionedRNG {
	return &PartitionedRNG{seed: seed, streams: map[string]*det.Rand{}}
}

// Seed returns the root seed.
func (p *PartitionedRNG) Seed() int64 { return p.seed }

// Stream returns the class's stream, creating it on first use. The same
// (seed, class) always yields the same sequence regardless of which other
// classes were used before.
func (p *PartitionedRNG) Stream(class string) *det.Rand {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.streams[class]
	if !ok {
		r = det.NewRand(p.seed, streamID(class))
		p.streams[class] = r
	}
	return r
}
