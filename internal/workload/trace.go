package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Trace errors. ReadTrace wraps each in a *TraceError carrying the line
// number, so callers can both errors.Is on the family and report precisely.
var (
	// ErrTraceSyntax: a line is not a valid JSON trace record.
	ErrTraceSyntax = errors.New("workload trace: malformed record")
	// ErrTraceTimestamp: a record's at_us is negative or non-integral.
	ErrTraceTimestamp = errors.New("workload trace: malformed timestamp")
	// ErrTraceOrder: arrivals are not sorted by (at_us, client) or seq is
	// not dense from 0.
	ErrTraceOrder = errors.New("workload trace: out-of-order arrival")
)

// TraceError is a typed trace-parse failure: which line, what rule.
type TraceError struct {
	Line int   // 1-based line number
	Kind error // one of the Err sentinels above
	Msg  string
}

func (e *TraceError) Error() string {
	return fmt.Sprintf("%v (line %d): %s", e.Kind, e.Line, e.Msg)
}

func (e *TraceError) Unwrap() error { return e.Kind }

// TraceStats reports what ReadTrace accepted and tolerated.
type TraceStats struct {
	// Records is the number of arrivals accepted.
	Records int
	// TornTail is true when the final line was cut mid-record (no trailing
	// newline and not parseable): like the job journal, a torn tail is the
	// expected signature of a crash mid-write, so it is dropped and
	// reported rather than treated as corruption.
	TornTail bool
}

// WriteTrace renders a timeline as JSONL, one record per line.
func WriteTrace(w io.Writer, evs []Arrival) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// traceRecord mirrors Arrival but with pointer fields so missing keys are
// distinguishable from zero values.
type traceRecord struct {
	Seq    *int64 `json:"seq"`
	AtUS   *int64 `json:"at_us"`
	Client *int64 `json:"client"`
}

// ReadTrace parses a JSONL timeline, enforcing the trace invariants: every
// line a JSON object, at_us present and non-negative, seq (when present)
// dense from 0, arrivals sorted by at_us. A torn final line (crash
// signature: no trailing newline, unparseable) is dropped and reported in
// TraceStats. Interior garbage is an error, never skipped — silently
// dropping arrivals would mask lost load.
func ReadTrace(r io.Reader) ([]Arrival, TraceStats, error) {
	var (
		evs   []Arrival
		stats TraceStats
		prev  int64 = -1
	)
	br := bufio.NewReader(r)
	line := 0
	for {
		raw, rerr := br.ReadBytes('\n')
		if len(raw) > 0 {
			line++
			torn := rerr != nil && !bytes.HasSuffix(raw, []byte{'\n'})
			trimmed := bytes.TrimSpace(raw)
			if len(trimmed) == 0 {
				if rerr != nil {
					break
				}
				continue
			}
			var rec traceRecord
			dec := json.NewDecoder(bytes.NewReader(trimmed))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&rec); err != nil || dec.More() {
				if torn {
					stats.TornTail = true
					break
				}
				return nil, stats, &TraceError{Line: line, Kind: ErrTraceSyntax, Msg: previewLine(trimmed)}
			}
			if rec.AtUS == nil {
				if torn {
					stats.TornTail = true
					break
				}
				return nil, stats, &TraceError{Line: line, Kind: ErrTraceTimestamp, Msg: "missing at_us"}
			}
			if *rec.AtUS < 0 {
				return nil, stats, &TraceError{Line: line, Kind: ErrTraceTimestamp, Msg: fmt.Sprintf("negative at_us %d", *rec.AtUS)}
			}
			if rec.Seq != nil && *rec.Seq != int64(len(evs)) {
				return nil, stats, &TraceError{Line: line, Kind: ErrTraceOrder, Msg: fmt.Sprintf("seq %d, want %d", *rec.Seq, len(evs))}
			}
			if *rec.AtUS < prev {
				return nil, stats, &TraceError{Line: line, Kind: ErrTraceOrder, Msg: fmt.Sprintf("at_us %d after %d", *rec.AtUS, prev)}
			}
			prev = *rec.AtUS
			client := int64(-1)
			if rec.Client != nil {
				client = *rec.Client
			}
			evs = append(evs, Arrival{Seq: len(evs), AtUS: *rec.AtUS, Client: int(client)})
		}
		if rerr != nil {
			if rerr != io.EOF {
				return nil, stats, rerr
			}
			break
		}
	}
	stats.Records = len(evs)
	return evs, stats, nil
}

// previewLine bounds a bad line's reproduction in error text.
func previewLine(b []byte) string {
	const max = 80
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}
