package workload

import (
	"context"
	"testing"

	"repro/internal/nemesis"
)

// emptyChurnFP is the fingerprint of a schedule that executed no churn
// events; a run whose fingerprint differs actually churned membership.
var emptyChurnFP = nemesis.Fingerprint(nil)

// TestChurnChaosProperty is the membership-churn acceptance property: across
// 20 seeded schedules (abridged under -short for the churn-smoke target), a
// dynamic-membership cluster under seeded join/drain churn must
//
//   - lose and duplicate nothing: every submitted job completes exactly once;
//   - keep deterministic cores byte-identical to the single-node reference
//     for the same seed — churn may move work, never change answers;
//   - converge: after quiesce every surviving node holds the same view
//     digest, and the final epoch/ring are pure functions of the seed;
//   - replay: re-running a schedule reproduces the identical fault timeline
//     fingerprint, cores, and final epoch.
func TestChurnChaosProperty(t *testing.T) {
	schedules := 20
	if testing.Short() {
		schedules = 4
	}
	churned := 0
	for i := 0; i < schedules; i++ {
		seed := int64(4001 + 131*i)
		arrival := ArrivalConfig{Shape: ShapePoisson, Jobs: 48, RatePerSec: 10000}
		ref, err := Run(context.Background(), RunConfig{
			Seed: seed, Arrival: arrival, Mix: liteMix(), Nodes: 1,
		})
		if err != nil {
			t.Fatalf("seed %d reference: %v", seed, err)
		}
		run := func() *Outcome {
			out, err := Run(context.Background(), RunConfig{
				Seed: seed, Arrival: arrival, Mix: liteMix(),
				Nodes: 4, Window: 8, Nemesis: NemesisChurn,
			})
			if err != nil {
				t.Fatalf("seed %d churn: %v", seed, err)
			}
			return out
		}
		out := run()
		if out.Submitted != arrival.Jobs {
			t.Fatalf("seed %d: submitted %d, want %d (duplicated or dropped arrivals)", seed, out.Submitted, arrival.Jobs)
		}
		if out.Completed != out.Submitted || out.Failed != 0 || out.Rejected != 0 {
			t.Fatalf("seed %d: churn lost jobs: %+v", seed, out)
		}
		if out.CoreFingerprint != ref.CoreFingerprint {
			t.Fatalf("seed %d: churn changed deterministic cores: %s vs reference %s", seed, out.CoreFingerprint, ref.CoreFingerprint)
		}
		for name, core := range ref.Cores() {
			if got := out.Cores()[name]; got != core {
				t.Fatalf("seed %d: program %s core %q under churn vs %q single-node", seed, name, got, core)
			}
		}
		if !out.ClusterConverged {
			t.Fatalf("seed %d: surviving nodes did not converge (epoch %d, ring %q)", seed, out.ClusterEpoch, out.ClusterRing)
		}
		if out.ClusterRing == "" || out.ClusterEpoch < 1 {
			t.Fatalf("seed %d: degenerate quiesce state: epoch %d ring %q", seed, out.ClusterEpoch, out.ClusterRing)
		}
		if out.ChurnFingerprint != emptyChurnFP {
			churned++
		}
		// Replay a subset of schedules end to end: same seed, same fault
		// timeline, same cores, same final membership.
		if i%5 == 0 {
			again := run()
			if again.ChurnFingerprint != out.ChurnFingerprint {
				t.Fatalf("seed %d: fault timeline not reproducible: %s vs %s", seed, again.ChurnFingerprint, out.ChurnFingerprint)
			}
			if again.CoreFingerprint != out.CoreFingerprint {
				t.Fatalf("seed %d: replay changed cores: %s vs %s", seed, again.CoreFingerprint, out.CoreFingerprint)
			}
			if again.ClusterEpoch != out.ClusterEpoch || again.ClusterRing != out.ClusterRing {
				t.Fatalf("seed %d: replay membership differs: epoch %d ring %q vs epoch %d ring %q",
					seed, again.ClusterEpoch, again.ClusterRing, out.ClusterEpoch, out.ClusterRing)
			}
		}
	}
	if churned == 0 {
		t.Fatalf("no churn events fired across %d schedules — the property proved nothing", schedules)
	}
}
