package workload

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/irgen"
	"repro/internal/service"
)

// liteGen keeps property-test programs small: pool synthesis and first-time
// simulation dominate test wall-clock, not the repeat submissions.
func liteGen() irgen.Config {
	return irgen.Config{Funcs: 2, MaxDepth: 2, MaxBodyLen: 4, LoopIters: 3}
}

// liteMix is a small blended pool across generic + two idiom families.
func liteMix() MixSpec {
	return MixSpec{
		Name:          "blend",
		GenericWeight: 1,
		GenericSync:   true,
		IdiomWeights:  map[irgen.Idiom]int{irgen.IdiomBarrierPhases: 1, irgen.IdiomRing: 1},
		PoolSize:      6,
		Threads:       3,
		Gen:           liteGen(),
	}
}

func TestRunSingleNodeSmoke(t *testing.T) {
	out, err := Run(context.Background(), RunConfig{
		Seed:    101,
		Arrival: ArrivalConfig{Shape: ShapePoisson, Jobs: 60, RatePerSec: 5000},
		Mix:     liteMix(),
		Nodes:   1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Submitted != 60 || out.Completed != 60 || out.Failed != 0 || out.Rejected != 0 {
		t.Fatalf("loss: %+v", out)
	}
	if len(out.Cores()) == 0 || out.CoreFingerprint == "" {
		t.Fatal("no deterministic cores recorded")
	}
	if out.DistinctPrograms != 6 {
		t.Fatalf("pool = %d, want 6", out.DistinctPrograms)
	}
}

// TestWorkloadPropertyMatrix is the acceptance property: across seeds,
// arrival shapes, and topologies (single node and 3-node cluster), every
// submitted job completes exactly once — zero lost, zero duplicated — and
// the deterministic cores are byte-identical across runs AND across
// topologies for the same seed.
func TestWorkloadPropertyMatrix(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	shapes := []Shape{ShapePoisson, ShapeBursty, ShapeClosed}
	for seed := 1; seed <= seeds; seed++ {
		for _, shape := range shapes {
			arrival := ArrivalConfig{Shape: shape, Jobs: 40, RatePerSec: 10000, Clients: 4}
			var coresByNodes [2]map[string]string
			var fps [2]string
			for i, nodes := range []int{1, 3} {
				out, err := Run(context.Background(), RunConfig{
					Seed:    int64(seed) * 7919,
					Arrival: arrival,
					Mix:     liteMix(),
					Nodes:   nodes,
					Window:  8,
				})
				if err != nil {
					t.Fatalf("seed %d %s nodes %d: %v", seed, shape, nodes, err)
				}
				if out.Submitted != arrival.Jobs {
					t.Fatalf("seed %d %s nodes %d: submitted %d, want %d (duplicated or dropped arrivals)",
						seed, shape, nodes, out.Submitted, arrival.Jobs)
				}
				if out.Completed != out.Submitted || out.Failed != 0 || out.Rejected != 0 {
					t.Fatalf("seed %d %s nodes %d: lost jobs: %+v", seed, shape, nodes, out)
				}
				coresByNodes[i] = out.Cores()
				fps[i] = out.CoreFingerprint
			}
			// Topology must not leak into deterministic cores: the same
			// seeded workload yields the same per-program cores on one node
			// and on three.
			if fps[0] != fps[1] {
				t.Fatalf("seed %d %s: core fingerprint differs across topologies: %s vs %s",
					seed, shape, fps[0], fps[1])
			}
			for name, core := range coresByNodes[0] {
				if got := coresByNodes[1][name]; got != core {
					t.Fatalf("seed %d %s: program %s core %q (1 node) vs %q (3 nodes)",
						seed, shape, name, core, got)
				}
			}
		}
	}
}

// TestClusterNemesisKeepsCores: transport faults (flaky links, latency) may
// slow peer fills but must never change deterministic cores or lose jobs.
func TestClusterNemesisKeepsCores(t *testing.T) {
	base, err := Run(context.Background(), RunConfig{
		Seed:    77,
		Arrival: ArrivalConfig{Shape: ShapePoisson, Jobs: 30, RatePerSec: 10000},
		Mix:     liteMix(),
		Nodes:   3,
	})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	for _, nem := range []Nemesis{NemesisFlaky, NemesisSlow} {
		out, err := Run(context.Background(), RunConfig{
			Seed:    77,
			Arrival: ArrivalConfig{Shape: ShapePoisson, Jobs: 30, RatePerSec: 10000},
			Mix:     liteMix(),
			Nodes:   3,
			Nemesis: nem,
		})
		if err != nil {
			t.Fatalf("%s: %v", nem, err)
		}
		if out.Completed != out.Submitted || out.Failed != 0 {
			t.Fatalf("%s: lost jobs: %+v", nem, out)
		}
		if out.CoreFingerprint != base.CoreFingerprint {
			t.Fatalf("%s: transport faults changed cores: %s vs %s", nem, out.CoreFingerprint, base.CoreFingerprint)
		}
	}
}

// TestBurstyAdmissionDeterministic is the admission-control property: with
// one worker pinned by a slow plug job, a seeded bursty arrival stream hits
// a full queue, and the full accept/429/Retry-After outcome sequence —
// position by position — is byte-identical across two identically seeded
// runs, with every accepted job completing (zero lost).
func TestBurstyAdmissionDeterministic(t *testing.T) {
	const depth = 8
	run := func() (string, service.StatsSnapshot) {
		evs := tlOf(t, 31, ArrivalConfig{Shape: ShapeBursty, Jobs: depth + 12, RatePerSec: 1000})
		mix, err := Synthesize(NewPartitionedRNG(31), liteMix())
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(service.Config{Workers: 1, QueueDepth: depth})
		plugID, err := svc.Submit(service.Request{Source: plugSource, Entry: "main", Threads: 1})
		if err != nil {
			t.Fatalf("plug: %v", err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			v, err := svc.Lookup(plugID)
			if err != nil {
				t.Fatal(err)
			}
			if v.Status != service.StatusQueued {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("plug never started")
			}
			time.Sleep(time.Millisecond)
		}

		// Burst: submit every arrival in timeline order while the worker is
		// pinned. The plug runs ~40ms; this loop takes microseconds.
		var (
			log      strings.Builder
			accepted []string
		)
		picks := make([]Program, len(evs))
		for i := range evs {
			picks[i] = mix.Pick(NewPartitionedRNG(31).Stream(ClassMix))
		}
		for i := range evs {
			id, err := svc.Submit(service.Request{Source: picks[i].Source, Entry: "main", Threads: picks[i].Threads})
			if err != nil {
				fmt.Fprintf(&log, "%d reject %s retry-after=%d\n", i, service.Classify(err), service.RetryAfter(err))
				continue
			}
			fmt.Fprintf(&log, "%d accept\n", i)
			accepted = append(accepted, id)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		for _, id := range accepted {
			if _, err := svc.Wait(ctx, id); err != nil {
				t.Fatalf("accepted job %s lost: %v", id, err)
			}
		}
		snap := svc.Snapshot()
		if err := svc.Close(ctx); err != nil {
			t.Fatal(err)
		}
		return log.String(), snap
	}

	seqA, snapA := run()
	seqB, snapB := run()
	if seqA != seqB {
		t.Fatalf("admission outcome sequences differ across identical seeded runs:\n--- A ---\n%s--- B ---\n%s", seqA, seqB)
	}
	if !strings.Contains(seqA, "reject queue_full retry-after=1") {
		t.Fatalf("burst never hit the full queue:\n%s", seqA)
	}
	if n := strings.Count(seqA, "accept"); n != depth {
		t.Fatalf("accepted %d, want exactly queue depth %d", n, depth)
	}
	for _, snap := range []service.StatsSnapshot{snapA, snapB} {
		if snap.QueueHighWater != depth {
			t.Fatalf("QueueHighWater = %d, want %d", snap.QueueHighWater, depth)
		}
		if snap.RejectByCause["queue_full"] != 12 {
			t.Fatalf("RejectByCause[queue_full] = %d, want 12", snap.RejectByCause["queue_full"])
		}
	}
}

// plugSource pins a worker for ~40ms (1M-iteration spin).
const plugSource = `
module plug

func main() regs 4 {
entry:
  r0 = const 0
  r1 = const 1000000
  jmp loop
loop:
  r2 = lt r0, r1
  br r2, body, exit
body:
  r0 = add r0, 1
  jmp loop
exit:
  ret r0
}
`
