package workload

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/nemesis"
	"repro/internal/service"
)

// Nemesis names the fault schedule applied to the cluster transport while a
// scenario runs. Faults are planned from the dedicated nemesis stream and
// applied at deterministic submission indices; they degrade links (peer
// fills fall back to local recompute) but must never change deterministic
// cores or lose accepted jobs.
type Nemesis string

const (
	// NemesisNone leaves the transport healthy.
	NemesisNone Nemesis = "none"
	// NemesisFlaky drops a seeded fraction of messages on planned links.
	NemesisFlaky Nemesis = "flaky"
	// NemesisSlow adds latency to planned links.
	NemesisSlow Nemesis = "slow"
	// NemesisChurn runs the cluster in dynamic-membership mode and applies a
	// seeded join/drain schedule (nemesis.ClassMembership stream) at
	// deterministic submission indices: nodes join through the bootstrap
	// handshake and drain out gracefully mid-load. Submissions route around
	// departing nodes; cores must stay byte-identical throughout.
	NemesisChurn Nemesis = "churn"
)

// RunConfig parameterizes one scenario run.
type RunConfig struct {
	// Seed roots every stream of the run.
	Seed int64
	// Arrival shapes the timeline.
	Arrival ArrivalConfig
	// Mix shapes the program pool.
	Mix MixSpec
	// Nodes is the cluster size; 1 runs a bare service, >1 a LoopNet
	// cluster with background loops disabled.
	Nodes int
	// Window bounds in-flight jobs (default 32, clamped to QueueDepth so a
	// paced-out run can never be queue-rejected).
	Window int
	// Workers / QueueDepth configure each node's service (defaults 4 / 256).
	Workers, QueueDepth int
	// RemoteEveryN routes every Nth cluster submission through a non-owner
	// coordinator, exercising the peer-fill path (default 4; 0 disables).
	RemoteEveryN int
	// Nemesis selects the transport fault schedule (cluster mode only).
	Nemesis Nemesis
	// Pace sleeps to honor arrival offsets instead of submitting
	// immediately. Off by default: pacing only changes the measured annex,
	// never the deterministic core.
	Pace bool
}

// Outcome is one scenario's result: a deterministic core (everything above
// the annex line — byte-identical for a given RunConfig) plus a measured
// annex of wall-clock quantities that legitimately vary run to run.
type Outcome struct {
	Shape Shape  `json:"shape"`
	Mix   string `json:"mix"`
	Nodes int    `json:"nodes"`

	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected"`

	// DistinctPrograms is the pool size actually drawn; CoreFingerprint is
	// an FNV-64a digest over the sorted program→deterministic-core pairs.
	// Two runs of the same config — or the same workload on a different
	// topology — must produce identical fingerprints.
	DistinctPrograms int    `json:"distinct_programs"`
	CoreFingerprint  string `json:"core_fingerprint"`
	// TraceFingerprint digests the arrival timeline (seq/at/client).
	TraceFingerprint string `json:"trace_fingerprint"`

	// ChurnFingerprint digests the executed membership-churn fault timeline
	// (NemesisChurn only). It is part of the deterministic core: the same
	// seed must reproduce the identical fault schedule.
	ChurnFingerprint string `json:"churn_fingerprint,omitempty"`
	// ChurnEvents counts executed churn events (joins + drains).
	ChurnEvents int `json:"churn_events,omitempty"`

	// Cluster quiesce state (cluster mode): after the last submission drains,
	// every surviving node must hold the same view digest — ClusterConverged
	// — and the shared config epoch and ring membership are themselves
	// deterministic outputs of (seed, config).
	ClusterEpoch     int64  `json:"cluster_epoch,omitempty"`
	ClusterRing      string `json:"cluster_ring,omitempty"`
	ClusterConverged bool   `json:"cluster_converged,omitempty"`

	// Measured annex — excluded from determinism comparisons.
	ElapsedMS     int64   `json:"elapsed_ms"`
	ThroughputJPS float64 `json:"throughput_jps"`
	P50US         int64   `json:"p50_us,omitempty"`
	P95US         int64   `json:"p95_us,omitempty"`
	// MaxPaceSkewUS is the worst observed lag between an arrival's planned
	// offset and the wall-clock moment its submission launched (Pace mode
	// only) — the replay-fidelity figure the pacing test bounds.
	MaxPaceSkewUS int64 `json:"max_pace_skew_us,omitempty"`

	// cores maps program name to its deterministic core string.
	cores map[string]string
}

// Cores exposes the per-program deterministic cores (for cross-topology
// byte-equivalence assertions).
func (o *Outcome) Cores() map[string]string {
	out := make(map[string]string, len(o.cores))
	for k, v := range o.cores {
		out[k] = v
	}
	return out
}

// isRejection reports whether an error class is an admission-control
// rejection (the 429/503 family) rather than an execution failure.
func isRejection(class string) bool {
	switch class {
	case "queue_full", "overloaded", "circuit_open":
		return true
	}
	return false
}

// coreOf projects a result onto its deterministic core: the fields the weak
// determinism contract fixes. Serving metadata (cache flags, latency) is
// excluded.
func coreOf(r *service.Result) string {
	return fmt.Sprintf("%s/%d/%d/%d/%d/%d",
		r.ScheduleHash, r.ScheduleLen, r.Cycles, r.WaitCycles, r.Acquisitions, r.ClockUpdates)
}

// TimelineFingerprint digests a timeline to a compact hex string.
func TimelineFingerprint(evs []Arrival) string {
	h := fnv.New64a()
	for _, e := range evs {
		fmt.Fprintf(h, "%d %d %d\n", e.Seq, e.AtUS, e.Client)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// coreFingerprint digests the sorted program→core map.
func coreFingerprint(cores map[string]string) string {
	names := make([]string, 0, len(cores))
	for n := range cores {
		names = append(names, n)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, n := range names {
		fmt.Fprintf(h, "%s %s\n", n, cores[n])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func (c *RunConfig) withDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Window > c.QueueDepth {
		c.Window = c.QueueDepth
	}
	if c.RemoteEveryN == 0 {
		c.RemoteEveryN = 4
	}
	if c.Nemesis == "" {
		c.Nemesis = NemesisNone
	}
}

// Run executes one scenario: synthesize the pool, generate the timeline,
// push it through the target topology under the in-flight window, and fold
// the outcomes. Every accepted job must finish — the returned Outcome
// counts let callers assert Submitted == Completed + Failed + Rejected.
func Run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	cfg.withDefaults()
	rng := NewPartitionedRNG(cfg.Seed)
	mix, err := Synthesize(rng, cfg.Mix)
	if err != nil {
		return nil, err
	}
	evs, err := Timeline(rng, cfg.Arrival)
	if err != nil {
		return nil, err
	}

	out := &Outcome{
		Shape:            cfg.Arrival.Shape,
		Mix:              cfg.Mix.Name,
		Nodes:            cfg.Nodes,
		DistinctPrograms: len(mix.Progs),
		TraceFingerprint: TimelineFingerprint(evs),
		cores:            map[string]string{},
	}

	// Pre-draw every arrival's program from the mix stream so payload
	// choice is sealed before any concurrency starts.
	picks := make([]Program, len(evs))
	for i := range evs {
		picks[i] = mix.Pick(rng.Stream(ClassMix))
	}

	var submit func(ctx context.Context, seq int, req service.Request) (*service.Result, error)
	var shutdown func() error
	var cl *runCluster
	if cfg.Nodes == 1 {
		svc := service.New(service.Config{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth})
		submit = func(ctx context.Context, _ int, req service.Request) (*service.Result, error) {
			return svc.Do(ctx, req)
		}
		shutdown = func() error {
			cctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			return svc.Close(cctx)
		}
	} else {
		var err error
		cl, err = openCluster(cfg, rng)
		if err != nil {
			return nil, err
		}
		submit = cl.submit
		shutdown = cl.close
	}

	type done struct {
		res *service.Result
		err error
		us  int64
	}
	results := make([]done, len(evs))
	var (
		wg     sync.WaitGroup
		sem    = make(chan struct{}, cfg.Window)
		client = map[int]chan struct{}{} // closed-loop per-client serialization
	)
	if cfg.Arrival.Shape == ShapeClosed {
		for _, e := range evs {
			if _, ok := client[e.Client]; !ok && e.Client >= 0 {
				ch := make(chan struct{}, 1)
				ch <- struct{}{}
				client[e.Client] = ch
			}
		}
	}
	start := time.Now()
	for i := range evs {
		ev, prog := evs[i], picks[i]
		if cfg.Pace {
			if until := start.Add(time.Duration(ev.AtUS) * time.Microsecond); time.Until(until) > 0 {
				time.Sleep(time.Until(until))
			}
			if skew := time.Since(start).Microseconds() - ev.AtUS; skew > out.MaxPaceSkewUS {
				out.MaxPaceSkewUS = skew
			}
		}
		if cl != nil {
			// Membership churn fires at deterministic submission indices,
			// applied in the main loop so every run sees the identical
			// interleaving of churn events and submission launches.
			cl.step(ctx, i)
		}
		var clientCh chan struct{}
		if ch, ok := client[ev.Client]; ok {
			clientCh = ch
			<-ch // wait for this client's previous job
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(seq int, prog Program) {
			defer wg.Done()
			t0 := time.Now()
			res, err := submit(ctx, seq, service.Request{
				Source: prog.Source, Entry: "main", Threads: prog.Threads,
			})
			results[seq] = done{res: res, err: err, us: time.Since(t0).Microseconds()}
			if clientCh != nil {
				clientCh <- struct{}{}
			}
			<-sem
		}(ev.Seq, prog)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if cl != nil {
		// Quiesce before teardown: convergence is only observable while the
		// surviving nodes are still up.
		out.ClusterEpoch, out.ClusterRing, out.ClusterConverged = cl.quiesce(ctx)
	}
	if err := shutdown(); err != nil {
		return nil, err
	}

	// Fold outcomes in seq order: the aggregation is order-insensitive, but
	// a fixed fold order keeps any future extension deterministic for free.
	var lats []int64
	for seq := range results {
		d := results[seq]
		out.Submitted++
		switch {
		case d.err != nil && isRejection(service.Classify(d.err)):
			out.Rejected++
		case d.err != nil:
			out.Failed++
		default:
			out.Completed++
			lats = append(lats, d.us)
			name := picks[seq].Name
			core := coreOf(d.res)
			if prev, ok := out.cores[name]; ok && prev != core {
				return nil, fmt.Errorf("workload: determinism violation: program %s produced cores %s and %s", name, prev, core)
			}
			out.cores[name] = core
		}
	}
	out.CoreFingerprint = coreFingerprint(out.cores)
	if cl != nil && cl.eng != nil {
		out.ChurnFingerprint = cl.eng.Fingerprint()
		out.ChurnEvents = len(cl.eng.Timeline())
	}
	out.ElapsedMS = elapsed.Milliseconds()
	if s := elapsed.Seconds(); s > 0 {
		out.ThroughputJPS = float64(out.Completed) / s
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		out.P50US = lats[len(lats)/2]
		out.P95US = lats[(len(lats)*95)/100]
	}
	return out, nil
}

// runCluster holds the LoopNet topology for one scenario. Under NemesisChurn
// it additionally owns the seeded membership-churn schedule: mu guards the
// node/addr/live sets, which the main submission loop mutates through step()
// while submission goroutines read them to route.
type runCluster struct {
	net *cluster.LoopNet
	cfg RunConfig

	mu     sync.Mutex
	nodes  []*cluster.Node
	addrs  []string
	live   map[string]bool
	nextID int

	eng   *nemesis.Engine
	churn map[int][]nemesis.Event
}

// openNode opens one cluster node with background loops disabled (the
// driver's submissions — and, under churn, step() — are the only traffic).
func (c *runCluster) openNode(self string, seeds []string) (*cluster.Node, error) {
	ccfg := cluster.Config{
		Self:           self,
		Client:         c.net.Client(self),
		ProbeInterval:  -1,
		StealInterval:  -1,
		ShipInterval:   -1,
		GossipInterval: -1,
		RepairInterval: -1,
		ProbeTimeout:   time.Second,
		FillTimeout:    2 * time.Second,
		FailThreshold:  2,
		Service:        service.Config{Workers: c.cfg.Workers, QueueDepth: c.cfg.QueueDepth},
	}
	if c.cfg.Nemesis == NemesisChurn {
		ccfg.SeedPeers = seeds
	} else {
		ccfg.Peers = c.addrs
	}
	n, err := cluster.Open(ccfg)
	if err != nil {
		return nil, err
	}
	c.net.Register(self, n.Handler())
	return n, nil
}

// openCluster builds an n-node LoopNet cluster and applies the nemesis
// schedule's initial link state. Under NemesisChurn the cluster runs in
// dynamic-membership mode: node-0 bootstraps, the rest join through it, and
// the churn plan (nemesis.ClassMembership stream) is precomputed against the
// arrival count so each event fires at a fixed submission index.
func openCluster(cfg RunConfig, rng *PartitionedRNG) (*runCluster, error) {
	net := cluster.NewLoopNet()
	addrs := make([]string, cfg.Nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%d", i)
	}
	cl := &runCluster{net: net, addrs: addrs, cfg: cfg, live: map[string]bool{}, nextID: cfg.Nodes}
	for i, self := range addrs {
		var seeds []string
		if i > 0 {
			seeds = []string{addrs[0]}
		} else {
			seeds = []string{}
		}
		n, err := cl.openNode(self, seeds)
		if err != nil {
			cl.close()
			return nil, err
		}
		cl.nodes = append(cl.nodes, n)
		cl.live[self] = true
		if cfg.Nemesis == NemesisChurn && i > 0 {
			jctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := n.Join(jctx)
			cancel()
			if err != nil {
				cl.close()
				return nil, fmt.Errorf("workload: churn bootstrap join %s: %w", self, err)
			}
		}
	}
	if cfg.Nemesis == NemesisChurn {
		cl.eng = nemesis.New(cfg.Seed)
		plan := nemesis.Plan(cfg.Seed, nemesis.PlanConfig{
			Steps:   cfg.Arrival.Jobs,
			Targets: addrs[1:], // node-0 is the routing coordinator; never churned
		}, []nemesis.OpSpec{
			{Class: nemesis.ClassMembership, Op: "drain", Rate: 0.02},
			{Class: nemesis.ClassMembership, Op: "join", Rate: 0.02},
		})
		cl.churn = make(map[int][]nemesis.Event)
		for _, e := range plan {
			cl.churn[e.Step] = append(cl.churn[e.Step], e)
		}
	}
	// Nemesis link state, planned from the dedicated stream: every ordered
	// pair of distinct nodes is independently afflicted with probability
	// 1/2. Faulty links only slow or drop transport messages — the service
	// recomputes locally on peer-fill failure, so cores stay identical.
	r := rng.Stream("nemesis")
	switch cfg.Nemesis {
	case NemesisFlaky:
		for _, from := range addrs {
			for _, to := range addrs {
				if from != to && r.IntN(2) == 0 {
					net.Flake(from, to, 0.5, int64(r.Next()%(1<<31)))
				}
			}
		}
	case NemesisSlow:
		for _, from := range addrs {
			for _, to := range addrs {
				if from != to && r.IntN(2) == 0 {
					net.SetLatency(from, to, time.Duration(1+r.IntN(3))*time.Millisecond)
				}
			}
		}
	}
	return cl, nil
}

// step applies the churn events planned for submission index seq. It runs in
// the main submission loop — never concurrently with itself — so the live
// set evolves identically on every run of the same seed. Events that are not
// applicable in the current state (target already gone, too few survivors)
// are skipped deterministically and never recorded.
func (c *runCluster) step(ctx context.Context, seq int) {
	if c.churn == nil {
		return
	}
	for _, e := range c.churn[seq] {
		switch e.Op {
		case "drain":
			c.applyDrain(ctx, e)
		case "join":
			c.applyJoin(ctx, e)
		}
	}
}

// applyDrain gracefully drains the target node out of the cluster: queued
// work hands off to the surviving owners, displaced keys rebalance, and the
// journal segment transfers — all synchronously, so by the time the next
// submission routes, every surviving view has the target as left.
func (c *runCluster) applyDrain(ctx context.Context, e nemesis.Event) {
	c.mu.Lock()
	liveCount := 0
	for _, ok := range c.live {
		if ok {
			liveCount++
		}
	}
	var target *cluster.Node
	if liveCount > 2 && c.live[e.Target] {
		c.live[e.Target] = false
		for i, a := range c.addrs {
			if a == e.Target {
				target = c.nodes[i]
				break
			}
		}
	}
	c.mu.Unlock()
	if target == nil {
		return
	}
	c.eng.Record(e)
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := target.Drain(dctx); err != nil {
		// Handoff refusal degrades to a durable local journal; the node is
		// still out of the ring, so routing stays correct.
		c.eng.Observe(nemesis.ClassMembership, "drain_error", e.Target, err.Error())
	}
}

// applyJoin admits a brand-new node through the seed bootstrap handshake:
// snapshot resync plus divergence cross-check before ring admission. The new
// node's name is derived from a deterministic counter, so the executed
// timeline is a pure function of the seed.
func (c *runCluster) applyJoin(ctx context.Context, e nemesis.Event) {
	c.mu.Lock()
	self := fmt.Sprintf("node-%d", c.nextID)
	c.nextID++
	seed0 := c.addrs[0]
	c.mu.Unlock()

	n, err := c.openNode(self, []string{seed0})
	if err != nil {
		c.eng.Observe(nemesis.ClassMembership, "join_error", self, err.Error())
		return
	}
	jctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	err = n.Join(jctx)
	cancel()
	if err != nil {
		c.eng.Observe(nemesis.ClassMembership, "join_error", self, err.Error())
		cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = n.Close(cctx)
		cancel()
		return
	}
	c.mu.Lock()
	c.nodes = append(c.nodes, n)
	c.addrs = append(c.addrs, self)
	c.live[self] = true
	c.mu.Unlock()
	c.eng.Record(nemesis.Event{Step: e.Step, Class: e.Class, Op: e.Op, Target: self})
}

// route picks the node a submission goes to: the key's owner normally, a
// deterministic non-owner coordinator every RemoteEveryN submissions, always
// constrained to live nodes. skip names a node to avoid (a just-failed
// draining target).
func (c *runCluster) route(seq int, key, skip string) *cluster.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner := c.nodes[0].Owner(key)
	idx := 0
	for i, a := range c.addrs {
		if a == owner && c.live[a] && a != skip {
			idx = i
			break
		}
	}
	if c.cfg.RemoteEveryN > 0 && seq%c.cfg.RemoteEveryN == 0 {
		idx = (idx + 1) % len(c.nodes)
	}
	// Walk forward to the first live candidate; node-0 is always live, so
	// the walk terminates.
	for tries := 0; tries < len(c.nodes); tries++ {
		a := c.addrs[idx]
		if c.live[a] && a != skip {
			return c.nodes[idx]
		}
		idx = (idx + 1) % len(c.nodes)
	}
	return c.nodes[0]
}

// submit routes one request to a live node. A submission that races a drain
// (routed before the target flipped, executed after) is rejected with
// ErrDraining; it retries on another live node so accepted load is never
// lost to churn timing.
func (c *runCluster) submit(ctx context.Context, seq int, req service.Request) (*service.Result, error) {
	c.mu.Lock()
	node0 := c.nodes[0]
	c.mu.Unlock()
	key, err := node0.Service().KeyFor(req)
	if err != nil {
		return nil, err
	}
	skip := ""
	for attempt := 0; ; attempt++ {
		n := c.route(seq, key, skip)
		res, err := n.Service().Do(ctx, req)
		if err != nil && attempt < 4 {
			switch service.Classify(err) {
			case "draining", "closed":
				skip = n.Name()
				continue
			}
		}
		return res, err
	}
}

// quiesce checks post-run convergence across the surviving nodes: all views
// at the same digest (running catch-up gossip rounds if any straggler
// disagrees), reporting the shared config epoch, the sorted ring membership,
// and whether agreement was reached.
func (c *runCluster) quiesce(ctx context.Context) (int64, string, bool) {
	c.mu.Lock()
	var nodes []*cluster.Node
	for i, a := range c.addrs {
		if c.live[a] {
			nodes = append(nodes, c.nodes[i])
		}
	}
	c.mu.Unlock()
	if len(nodes) == 0 {
		return 0, "", false
	}
	agreed := func() bool {
		d0 := nodes[0].ViewDigest()
		for _, n := range nodes[1:] {
			if n.ViewDigest() != d0 {
				return false
			}
		}
		return true
	}
	for round := 0; round < 4 && !agreed(); round++ {
		for _, n := range nodes {
			n.GossipOnce(ctx)
		}
	}
	ring := strings.Join(nodes[0].View().RingMembers(), ",")
	return nodes[0].Epoch(), ring, agreed()
}

func (c *runCluster) close() error {
	c.mu.Lock()
	nodes := append([]*cluster.Node(nil), c.nodes...)
	c.mu.Unlock()
	var first error
	for _, n := range nodes {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := n.Close(ctx)
		cancel()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}
