package workload

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

// Nemesis names the fault schedule applied to the cluster transport while a
// scenario runs. Faults are planned from the dedicated nemesis stream and
// applied at deterministic submission indices; they degrade links (peer
// fills fall back to local recompute) but must never change deterministic
// cores or lose accepted jobs.
type Nemesis string

const (
	// NemesisNone leaves the transport healthy.
	NemesisNone Nemesis = "none"
	// NemesisFlaky drops a seeded fraction of messages on planned links.
	NemesisFlaky Nemesis = "flaky"
	// NemesisSlow adds latency to planned links.
	NemesisSlow Nemesis = "slow"
)

// RunConfig parameterizes one scenario run.
type RunConfig struct {
	// Seed roots every stream of the run.
	Seed int64
	// Arrival shapes the timeline.
	Arrival ArrivalConfig
	// Mix shapes the program pool.
	Mix MixSpec
	// Nodes is the cluster size; 1 runs a bare service, >1 a LoopNet
	// cluster with background loops disabled.
	Nodes int
	// Window bounds in-flight jobs (default 32, clamped to QueueDepth so a
	// paced-out run can never be queue-rejected).
	Window int
	// Workers / QueueDepth configure each node's service (defaults 4 / 256).
	Workers, QueueDepth int
	// RemoteEveryN routes every Nth cluster submission through a non-owner
	// coordinator, exercising the peer-fill path (default 4; 0 disables).
	RemoteEveryN int
	// Nemesis selects the transport fault schedule (cluster mode only).
	Nemesis Nemesis
	// Pace sleeps to honor arrival offsets instead of submitting
	// immediately. Off by default: pacing only changes the measured annex,
	// never the deterministic core.
	Pace bool
}

// Outcome is one scenario's result: a deterministic core (everything above
// the annex line — byte-identical for a given RunConfig) plus a measured
// annex of wall-clock quantities that legitimately vary run to run.
type Outcome struct {
	Shape Shape  `json:"shape"`
	Mix   string `json:"mix"`
	Nodes int    `json:"nodes"`

	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected"`

	// DistinctPrograms is the pool size actually drawn; CoreFingerprint is
	// an FNV-64a digest over the sorted program→deterministic-core pairs.
	// Two runs of the same config — or the same workload on a different
	// topology — must produce identical fingerprints.
	DistinctPrograms int    `json:"distinct_programs"`
	CoreFingerprint  string `json:"core_fingerprint"`
	// TraceFingerprint digests the arrival timeline (seq/at/client).
	TraceFingerprint string `json:"trace_fingerprint"`

	// Measured annex — excluded from determinism comparisons.
	ElapsedMS     int64   `json:"elapsed_ms"`
	ThroughputJPS float64 `json:"throughput_jps"`
	P50US         int64   `json:"p50_us,omitempty"`
	P95US         int64   `json:"p95_us,omitempty"`

	// cores maps program name to its deterministic core string.
	cores map[string]string
}

// Cores exposes the per-program deterministic cores (for cross-topology
// byte-equivalence assertions).
func (o *Outcome) Cores() map[string]string {
	out := make(map[string]string, len(o.cores))
	for k, v := range o.cores {
		out[k] = v
	}
	return out
}

// isRejection reports whether an error class is an admission-control
// rejection (the 429/503 family) rather than an execution failure.
func isRejection(class string) bool {
	switch class {
	case "queue_full", "overloaded", "circuit_open":
		return true
	}
	return false
}

// coreOf projects a result onto its deterministic core: the fields the weak
// determinism contract fixes. Serving metadata (cache flags, latency) is
// excluded.
func coreOf(r *service.Result) string {
	return fmt.Sprintf("%s/%d/%d/%d/%d/%d",
		r.ScheduleHash, r.ScheduleLen, r.Cycles, r.WaitCycles, r.Acquisitions, r.ClockUpdates)
}

// TimelineFingerprint digests a timeline to a compact hex string.
func TimelineFingerprint(evs []Arrival) string {
	h := fnv.New64a()
	for _, e := range evs {
		fmt.Fprintf(h, "%d %d %d\n", e.Seq, e.AtUS, e.Client)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// coreFingerprint digests the sorted program→core map.
func coreFingerprint(cores map[string]string) string {
	names := make([]string, 0, len(cores))
	for n := range cores {
		names = append(names, n)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, n := range names {
		fmt.Fprintf(h, "%s %s\n", n, cores[n])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func (c *RunConfig) withDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Window > c.QueueDepth {
		c.Window = c.QueueDepth
	}
	if c.RemoteEveryN == 0 {
		c.RemoteEveryN = 4
	}
	if c.Nemesis == "" {
		c.Nemesis = NemesisNone
	}
}

// Run executes one scenario: synthesize the pool, generate the timeline,
// push it through the target topology under the in-flight window, and fold
// the outcomes. Every accepted job must finish — the returned Outcome
// counts let callers assert Submitted == Completed + Failed + Rejected.
func Run(ctx context.Context, cfg RunConfig) (*Outcome, error) {
	cfg.withDefaults()
	rng := NewPartitionedRNG(cfg.Seed)
	mix, err := Synthesize(rng, cfg.Mix)
	if err != nil {
		return nil, err
	}
	evs, err := Timeline(rng, cfg.Arrival)
	if err != nil {
		return nil, err
	}

	out := &Outcome{
		Shape:            cfg.Arrival.Shape,
		Mix:              cfg.Mix.Name,
		Nodes:            cfg.Nodes,
		DistinctPrograms: len(mix.Progs),
		TraceFingerprint: TimelineFingerprint(evs),
		cores:            map[string]string{},
	}

	// Pre-draw every arrival's program from the mix stream so payload
	// choice is sealed before any concurrency starts.
	picks := make([]Program, len(evs))
	for i := range evs {
		picks[i] = mix.Pick(rng.Stream(ClassMix))
	}

	var submit func(ctx context.Context, seq int, req service.Request) (*service.Result, error)
	var shutdown func() error
	if cfg.Nodes == 1 {
		svc := service.New(service.Config{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth})
		submit = func(ctx context.Context, _ int, req service.Request) (*service.Result, error) {
			return svc.Do(ctx, req)
		}
		shutdown = func() error {
			cctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			return svc.Close(cctx)
		}
	} else {
		cl, err := openCluster(cfg, rng)
		if err != nil {
			return nil, err
		}
		submit = cl.submit
		shutdown = cl.close
	}

	type done struct {
		res *service.Result
		err error
		us  int64
	}
	results := make([]done, len(evs))
	var (
		wg     sync.WaitGroup
		sem    = make(chan struct{}, cfg.Window)
		client = map[int]chan struct{}{} // closed-loop per-client serialization
	)
	if cfg.Arrival.Shape == ShapeClosed {
		for _, e := range evs {
			if _, ok := client[e.Client]; !ok && e.Client >= 0 {
				ch := make(chan struct{}, 1)
				ch <- struct{}{}
				client[e.Client] = ch
			}
		}
	}
	start := time.Now()
	for i := range evs {
		ev, prog := evs[i], picks[i]
		if cfg.Pace {
			if until := start.Add(time.Duration(ev.AtUS) * time.Microsecond); time.Until(until) > 0 {
				time.Sleep(time.Until(until))
			}
		}
		var clientCh chan struct{}
		if ch, ok := client[ev.Client]; ok {
			clientCh = ch
			<-ch // wait for this client's previous job
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(seq int, prog Program) {
			defer wg.Done()
			t0 := time.Now()
			res, err := submit(ctx, seq, service.Request{
				Source: prog.Source, Entry: "main", Threads: prog.Threads,
			})
			results[seq] = done{res: res, err: err, us: time.Since(t0).Microseconds()}
			if clientCh != nil {
				clientCh <- struct{}{}
			}
			<-sem
		}(ev.Seq, prog)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := shutdown(); err != nil {
		return nil, err
	}

	// Fold outcomes in seq order: the aggregation is order-insensitive, but
	// a fixed fold order keeps any future extension deterministic for free.
	var lats []int64
	for seq := range results {
		d := results[seq]
		out.Submitted++
		switch {
		case d.err != nil && isRejection(service.Classify(d.err)):
			out.Rejected++
		case d.err != nil:
			out.Failed++
		default:
			out.Completed++
			lats = append(lats, d.us)
			name := picks[seq].Name
			core := coreOf(d.res)
			if prev, ok := out.cores[name]; ok && prev != core {
				return nil, fmt.Errorf("workload: determinism violation: program %s produced cores %s and %s", name, prev, core)
			}
			out.cores[name] = core
		}
	}
	out.CoreFingerprint = coreFingerprint(out.cores)
	out.ElapsedMS = elapsed.Milliseconds()
	if s := elapsed.Seconds(); s > 0 {
		out.ThroughputJPS = float64(out.Completed) / s
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		out.P50US = lats[len(lats)/2]
		out.P95US = lats[(len(lats)*95)/100]
	}
	return out, nil
}

// runCluster holds the LoopNet topology for one scenario.
type runCluster struct {
	net   *cluster.LoopNet
	nodes []*cluster.Node
	addrs []string
	cfg   RunConfig
}

// openCluster builds an n-node LoopNet cluster with background loops off
// (the driver's submissions are the only traffic) and applies the nemesis
// schedule's initial link state.
func openCluster(cfg RunConfig, rng *PartitionedRNG) (*runCluster, error) {
	net := cluster.NewLoopNet()
	addrs := make([]string, cfg.Nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node-%d", i)
	}
	cl := &runCluster{net: net, addrs: addrs, cfg: cfg}
	for _, self := range addrs {
		n, err := cluster.Open(cluster.Config{
			Self:          self,
			Peers:         addrs,
			Client:        net.Client(self),
			ProbeInterval: -1,
			StealInterval: -1,
			ShipInterval:  -1,
			ProbeTimeout:  time.Second,
			FillTimeout:   2 * time.Second,
			FailThreshold: 2,
			Service:       service.Config{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth},
		})
		if err != nil {
			cl.close()
			return nil, err
		}
		net.Register(self, n.Handler())
		cl.nodes = append(cl.nodes, n)
	}
	// Nemesis link state, planned from the dedicated stream: every ordered
	// pair of distinct nodes is independently afflicted with probability
	// 1/2. Faulty links only slow or drop transport messages — the service
	// recomputes locally on peer-fill failure, so cores stay identical.
	r := rng.Stream("nemesis")
	switch cfg.Nemesis {
	case NemesisFlaky:
		for _, from := range addrs {
			for _, to := range addrs {
				if from != to && r.IntN(2) == 0 {
					net.Flake(from, to, 0.5, int64(r.Next()%(1<<31)))
				}
			}
		}
	case NemesisSlow:
		for _, from := range addrs {
			for _, to := range addrs {
				if from != to && r.IntN(2) == 0 {
					net.SetLatency(from, to, time.Duration(1+r.IntN(3))*time.Millisecond)
				}
			}
		}
	}
	return cl, nil
}

// submit routes one request: to its owner node normally, and through a
// deterministic non-owner coordinator every RemoteEveryN submissions so the
// peer-fill path sees traffic.
func (c *runCluster) submit(ctx context.Context, seq int, req service.Request) (*service.Result, error) {
	key, err := c.nodes[0].Service().KeyFor(req)
	if err != nil {
		return nil, err
	}
	owner := c.nodes[0].Owner(key)
	idx := 0
	for i, a := range c.addrs {
		if a == owner {
			idx = i
			break
		}
	}
	if c.cfg.RemoteEveryN > 0 && len(c.nodes) > 1 && seq%c.cfg.RemoteEveryN == 0 {
		idx = (idx + 1) % len(c.nodes)
	}
	return c.nodes[idx].Service().Do(ctx, req)
}

func (c *runCluster) close() error {
	var first error
	for _, n := range c.nodes {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := n.Close(ctx)
		cancel()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}
