package workload

import (
	"context"
	"testing"
)

// TestPaceWallClockFidelity checks replay pacing: with Pace on, the driver
// launches each submission at (no earlier than) its planned arrival offset,
// and the worst lag behind the plan stays bounded. Wall-clock assertions are
// inherently load-sensitive, so the skew bound is generous and the test is
// skipped under -short.
func TestPaceWallClockFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock pacing test skipped in -short mode")
	}
	const seed = 611
	arrival := ArrivalConfig{Shape: ShapePoisson, Jobs: 30, RatePerSec: 200}

	// The timeline is a pure function of (seed, arrival): regenerate it to
	// learn the planned span the paced run must stretch to.
	evs := tlOf(t, seed, arrival)
	lastUS := evs[len(evs)-1].AtUS

	paced, err := Run(context.Background(), RunConfig{
		Seed: seed, Arrival: arrival, Mix: liteMix(), Nodes: 1, Pace: true,
	})
	if err != nil {
		t.Fatalf("paced run: %v", err)
	}
	if paced.Completed != arrival.Jobs {
		t.Fatalf("paced run lost jobs: %+v", paced)
	}
	if paced.ElapsedMS < lastUS/1000 {
		t.Fatalf("paced run finished in %dms, before the last planned arrival at %dus — pacing not honored",
			paced.ElapsedMS, lastUS)
	}
	// Bounded skew: every submission launched within 250ms of its planned
	// offset. The sleep path wakes at-or-after the target, so skew is the
	// scheduler's overshoot plus loop overhead — far under the bound unless
	// pacing is broken.
	const boundUS = 250_000
	if paced.MaxPaceSkewUS > boundUS {
		t.Fatalf("max pace skew %dus exceeds %dus — replay drifted off the planned timeline", paced.MaxPaceSkewUS, boundUS)
	}

	// An unpaced run of the same config must not report skew: the field
	// measures replay fidelity, not throughput.
	free, err := Run(context.Background(), RunConfig{
		Seed: seed, Arrival: arrival, Mix: liteMix(), Nodes: 1,
	})
	if err != nil {
		t.Fatalf("unpaced run: %v", err)
	}
	if free.MaxPaceSkewUS != 0 {
		t.Fatalf("unpaced run reported pace skew %dus", free.MaxPaceSkewUS)
	}
	if free.CoreFingerprint != paced.CoreFingerprint {
		t.Fatalf("pacing changed deterministic cores: %s vs %s", paced.CoreFingerprint, free.CoreFingerprint)
	}
}
