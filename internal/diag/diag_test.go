package diag

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestDeadlockErrorClassification(t *testing.T) {
	dd := &DeadlockError{
		Cycle: []WaitEdge{
			{Waiter: 0, Resource: "mutex#1", Holder: 1},
			{Waiter: 1, Resource: "mutex#0", Holder: 0},
		},
		Threads: []ThreadSnapshot{
			{ID: 0, Clock: 21, State: "blocked", BlockedOn: "mutex#1", Holder: 1},
			{ID: 1, Clock: 21, State: "blocked", BlockedOn: "mutex#0", Holder: 0},
		},
	}
	var err error = fmt.Errorf("run: %w", dd)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("errors.Is(ErrDeadlock) = false for %v", err)
	}
	var got *DeadlockError
	if !errors.As(err, &got) || len(got.Cycle) != 2 {
		t.Fatalf("errors.As failed: %v", err)
	}
	msg := dd.Error()
	for _, want := range []string{"deadlock", "thread 0 -[mutex#1]-> thread 1 -[mutex#0]-> thread 0", "2 thread(s) blocked"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestFormatCycleEmpty(t *testing.T) {
	if got := FormatCycle(nil); !strings.Contains(got, "collective") {
		t.Fatalf("FormatCycle(nil) = %q", got)
	}
}

func TestThreadPanicErrorUnwrapsErrorValues(t *testing.T) {
	inner := &MisuseError{Op: "Mutex.Unlock", ThreadID: 3, Clock: 7, Kind: ErrNotHeld}
	pe := &ThreadPanicError{ThreadID: 3, Clock: 7, Value: inner}
	if !errors.Is(pe, ErrNotHeld) {
		t.Fatalf("panic containment must expose the misuse kind: %v", pe)
	}
	var mis *MisuseError
	if !errors.As(pe, &mis) || mis.Op != "Mutex.Unlock" {
		t.Fatalf("errors.As(*MisuseError) failed: %v", pe)
	}
	// Non-error panic values do not unwrap.
	pe2 := &ThreadPanicError{ThreadID: 0, Value: "boom"}
	if errors.Is(pe2, ErrNotHeld) {
		t.Fatalf("string panic value must not match sentinels")
	}
	if !strings.Contains(pe2.Error(), "boom") {
		t.Fatalf("Error() = %q", pe2.Error())
	}
}

func TestWatchdogErrorClassification(t *testing.T) {
	we := &WatchdogError{Threads: []ThreadSnapshot{{ID: 0, State: "runnable"}}}
	if !errors.Is(we, ErrStalled) {
		t.Fatalf("watchdog error must classify as ErrStalled")
	}
	if errors.Is(we, ErrDeadlock) {
		t.Fatalf("watchdog error must not classify as deadlock")
	}
}

func TestSnapshotString(t *testing.T) {
	s := ThreadSnapshot{ID: 2, Clock: 41, State: "blocked", BlockedOn: "mutex#0", Holder: 1, LastAcq: "mutex#3@40"}
	for _, want := range []string{"thread 2", "clock=41", "mutex#0", "held by thread 1", "mutex#3@40"} {
		if !strings.Contains(s.String(), want) {
			t.Fatalf("String() = %q, missing %q", s.String(), want)
		}
	}
}
