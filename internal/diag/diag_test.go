package diag

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestDeadlockErrorClassification(t *testing.T) {
	dd := &DeadlockError{
		Cycle: []WaitEdge{
			{Waiter: 0, Resource: "mutex#1", Holder: 1},
			{Waiter: 1, Resource: "mutex#0", Holder: 0},
		},
		Threads: []ThreadSnapshot{
			{ID: 0, Clock: 21, State: "blocked", BlockedOn: "mutex#1", Holder: 1},
			{ID: 1, Clock: 21, State: "blocked", BlockedOn: "mutex#0", Holder: 0},
		},
	}
	var err error = fmt.Errorf("run: %w", dd)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("errors.Is(ErrDeadlock) = false for %v", err)
	}
	var got *DeadlockError
	if !errors.As(err, &got) || len(got.Cycle) != 2 {
		t.Fatalf("errors.As failed: %v", err)
	}
	msg := dd.Error()
	for _, want := range []string{"deadlock", "thread 0 -[mutex#1]-> thread 1 -[mutex#0]-> thread 0", "2 thread(s) blocked"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestFormatCycleEmpty(t *testing.T) {
	if got := FormatCycle(nil); !strings.Contains(got, "collective") {
		t.Fatalf("FormatCycle(nil) = %q", got)
	}
}

func TestThreadPanicErrorUnwrapsErrorValues(t *testing.T) {
	inner := &MisuseError{Op: "Mutex.Unlock", ThreadID: 3, Clock: 7, Kind: ErrNotHeld}
	pe := &ThreadPanicError{ThreadID: 3, Clock: 7, Value: inner}
	if !errors.Is(pe, ErrNotHeld) {
		t.Fatalf("panic containment must expose the misuse kind: %v", pe)
	}
	var mis *MisuseError
	if !errors.As(pe, &mis) || mis.Op != "Mutex.Unlock" {
		t.Fatalf("errors.As(*MisuseError) failed: %v", pe)
	}
	// Non-error panic values do not unwrap.
	pe2 := &ThreadPanicError{ThreadID: 0, Value: "boom"}
	if errors.Is(pe2, ErrNotHeld) {
		t.Fatalf("string panic value must not match sentinels")
	}
	if !strings.Contains(pe2.Error(), "boom") {
		t.Fatalf("Error() = %q", pe2.Error())
	}
}

func TestWatchdogErrorClassification(t *testing.T) {
	we := &WatchdogError{Threads: []ThreadSnapshot{{ID: 0, State: "runnable"}}}
	if !errors.Is(we, ErrStalled) {
		t.Fatalf("watchdog error must classify as ErrStalled")
	}
	if errors.Is(we, ErrDeadlock) {
		t.Fatalf("watchdog error must not classify as deadlock")
	}
}

func TestSnapshotString(t *testing.T) {
	s := ThreadSnapshot{ID: 2, Clock: 41, State: "blocked", BlockedOn: "mutex#0", Holder: 1, LastAcq: "mutex#3@40"}
	for _, want := range []string{"thread 2", "clock=41", "mutex#0", "held by thread 1", "mutex#3@40"} {
		if !strings.Contains(s.String(), want) {
			t.Fatalf("String() = %q, missing %q", s.String(), want)
		}
	}
}

func TestRaceErrorClassification(t *testing.T) {
	re := &RaceError{
		Sym: "shared", Index: 3, Addr: 19,
		First:  RaceAccess{Thread: 0, Write: true, Clock: 5, Lockset: []int{1}, Site: "main.entry+2"},
		Second: RaceAccess{Thread: 2, Write: false, Clock: 4, Site: "main.loop+0"},
	}
	if !errors.Is(re, ErrRace) {
		t.Fatalf("race error must classify as ErrRace")
	}
	if errors.Is(re, ErrDeadlock) {
		t.Fatalf("race error must not classify as deadlock")
	}
	msg := re.Error()
	for _, want := range []string{
		"shared[3]", "addr 19",
		"write by thread 0 at clock 5", "holding mutex#1",
		"read by thread 2 at clock 4", "holding no locks",
		"main.entry+2", "main.loop+0",
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestDivergenceErrorForms(t *testing.T) {
	mismatch := &DivergenceError{
		Run: 2, Index: 7,
		Want:    &DivergenceEvent{Seq: 7, Lock: 1, Thread: 0, Clock: 31},
		Got:     &DivergenceEvent{Seq: 7, Lock: 1, Thread: 3, Clock: 29},
		WantLen: 12, GotLen: 8,
	}
	if !errors.Is(mismatch, ErrDivergence) {
		t.Fatalf("divergence error must classify as ErrDivergence")
	}
	msg := mismatch.Error()
	for _, want := range []string{"run 2 diverges from run 0", "event 7", "lock 1 by thread 0 at clock 31", "lock 1 by thread 3 at clock 29"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q, missing %q", msg, want)
		}
	}
	underrun := &DivergenceError{Run: 1, Index: 4, Want: &DivergenceEvent{Seq: 4, Lock: 0, Thread: 1, Clock: 9}, WantLen: 6, GotLen: 4}
	if !strings.Contains(underrun.Error(), "length mismatch (6 vs 4 events)") {
		t.Fatalf("underrun Error() = %q", underrun.Error())
	}
}

func TestMisuseErrorConfigurationForm(t *testing.T) {
	me := &MisuseError{Op: "Runtime.RecordSchedule", ThreadID: -1, Kind: ErrDetectorMidRun, Detail: "toggled mid-run"}
	if !errors.Is(me, ErrDetectorMidRun) {
		t.Fatalf("must classify as ErrDetectorMidRun")
	}
	msg := me.Error()
	if !strings.Contains(msg, "configuration") {
		t.Fatalf("Error() = %q, want configuration form (no bogus thread id)", msg)
	}
	if strings.Contains(msg, "thread -1") {
		t.Fatalf("Error() = %q leaks the -1 thread id", msg)
	}
}
