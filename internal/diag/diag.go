// Package diag defines the structured failure reports shared by the
// deterministic runtime (internal/det) and the simulator (internal/sim).
//
// Deterministic execution's chief payoff is reproducible debugging (Aviram &
// Ford's Determinator line of work makes this argument explicitly): a hang or
// crash in a deterministically-scheduled program is the *same* hang on every
// run, so the runtime can afford to turn every stuck state into a rich,
// deterministic diagnostic instead of spinning forever. The types here are
// that diagnostic: a per-thread snapshot, the wait-for edges between threads
// and synchronization objects, and typed errors for the three failure
// families — deadlock (a cycle or globally blocked state), stall (no clock
// progress within a watchdog bound), and contained user panics — plus typed
// misuse errors for API contract violations.
//
// The invariant the runtime maintains with these types: det never hangs —
// every stuck state terminates with a structured report.
package diag

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Sentinel classification errors. Concrete reports wrap one of these, so
// callers can classify with errors.Is while errors.As extracts the detail.
var (
	// ErrDeadlock: every live thread is blocked on a synchronization object;
	// no thread can ever make progress.
	ErrDeadlock = errors.New("deadlock: no thread can make progress")
	// ErrStalled: the progress watchdog observed no logical-clock advance and
	// no synchronization event within its bound.
	ErrStalled = errors.New("stalled: no progress within watchdog bound")
	// ErrCrossRuntime: a synchronization object was used with a thread that
	// belongs to a different runtime.
	ErrCrossRuntime = errors.New("object and thread belong to different runtimes")
	// ErrNotHeld: unlock (or condition-variable operation) on a mutex the
	// thread does not hold.
	ErrNotHeld = errors.New("mutex not held by this thread")
	// ErrSelfJoin: a thread attempted to join itself.
	ErrSelfJoin = errors.New("thread cannot join itself")
	// ErrBadJoin: join target is nil or not a thread of this runtime.
	ErrBadJoin = errors.New("join target is not a thread of this runtime")
	// ErrNegativeTick: Tick called with a negative amount.
	ErrNegativeTick = errors.New("negative Tick amount")
	// ErrInjected tags failures produced by the fault-injection harness.
	ErrInjected = errors.New("injected fault")
	// ErrRace: two threads touched the same address without ordering
	// synchronization — the one program state that silently voids weak
	// determinism. Concrete reports are *RaceError.
	ErrRace = errors.New("data race: conflicting unsynchronized accesses")
	// ErrDivergence: a run's synchronization order differs from the
	// reference schedule — the observable symptom of an undetected race (or
	// nondeterministic input). Concrete reports are *DivergenceError.
	ErrDivergence = errors.New("schedule divergence: synchronization order differs from the reference run")
	// ErrDetectorMidRun: a detector (race detector, replay guard, schedule
	// recorder) was enabled or disabled while the runtime was running.
	ErrDetectorMidRun = errors.New("detector configuration changed mid-run")
	// ErrRaceBackend: race detection requested on a backend that cannot
	// provide it (only the deterministic simulator instruments accesses).
	ErrRaceBackend = errors.New("race detection requires the deterministic simulator backend")
	// ErrBadConfig: a configuration value is invalid (negative thread count,
	// nil module, unknown preset, non-positive run count, …). Used by the
	// facade and the service layer's job validation.
	ErrBadConfig = errors.New("invalid configuration")
	// ErrDeadline: a job exceeded its deadline (or its client abandoned it)
	// and was cooperatively canceled. Unlike ErrStalled the program was
	// making progress — it was just not worth waiting for. Concrete reports
	// are *TimeoutError.
	ErrDeadline = errors.New("deadline exceeded: job canceled before completion")
	// ErrRetriesExhausted: a transiently-failing job (contained panic,
	// injected fault) kept failing across its whole retry budget. Concrete
	// reports are *RetryError; the last attempt's error is preserved there.
	ErrRetriesExhausted = errors.New("retries exhausted: transient failure persisted across every attempt")
	// ErrCorruption: bytes failed an integrity check — a journal record
	// whose CRC32C frame does not verify, a peer response whose body
	// checksum mismatches, a shipped batch whose sum disagrees with its
	// payload. Corrupt data is never served or replayed; it is quarantined
	// (journal sidecar, peer quarantine) and the system recovers around it.
	// Concrete reports are *CorruptionError.
	ErrCorruption = errors.New("data corruption: integrity check failed")
)

// ThreadSnapshot is one thread's state at the moment a failure report was
// assembled. All fields are deterministic functions of the program's logic
// (clocks are frozen logical clocks, never wall time).
type ThreadSnapshot struct {
	ID    int
	Clock int64
	// State is "runnable", "blocked", "done" or "panicked".
	State string
	// BlockedOn names the synchronization object a blocked thread waits on,
	// e.g. "mutex#1", "barrier#0 (arrived 2 of 3)", "join(thread 2)".
	BlockedOn string
	// Holder is the thread holding BlockedOn (mutex holder, join target),
	// or -1 when there is no single owner (barriers, condition variables).
	Holder int
	// LastAcq describes the thread's most recent lock acquisition as
	// "mutex#N@clock", or "" if it never acquired a lock.
	LastAcq string
}

func (s ThreadSnapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "thread %d clock=%d %s", s.ID, s.Clock, s.State)
	if s.BlockedOn != "" {
		fmt.Fprintf(&sb, " on %s", s.BlockedOn)
		if s.Holder >= 0 {
			fmt.Fprintf(&sb, " (held by thread %d)", s.Holder)
		}
	}
	if s.LastAcq != "" {
		fmt.Fprintf(&sb, " last-acq %s", s.LastAcq)
	}
	return sb.String()
}

// WaitEdge is one edge of the wait-for graph: Waiter is blocked on Resource,
// which is owned by Holder (-1 when the resource has no single owner).
type WaitEdge struct {
	Waiter   int
	Resource string
	Holder   int
}

// FormatCycle renders a wait-for cycle as
// "thread 0 -[mutex#1]-> thread 1 -[mutex#0]-> thread 0".
func FormatCycle(cycle []WaitEdge) string {
	if len(cycle) == 0 {
		return "(no single-owner cycle: collective wait)"
	}
	var sb strings.Builder
	for _, e := range cycle {
		fmt.Fprintf(&sb, "thread %d -[%s]-> ", e.Waiter, e.Resource)
	}
	fmt.Fprintf(&sb, "thread %d", cycle[0].Waiter)
	return sb.String()
}

// DeadlockError reports a state in which every live thread is blocked.
// Cycle is the wait-for cycle when one exists (mutex/join ownership chains);
// Waits lists every blocked thread's edge; Threads is the full snapshot.
// The report is deterministic: the same program reaches the same blocked
// state — same cycle, same clocks — on every run.
type DeadlockError struct {
	Cycle   []WaitEdge
	Waits   []WaitEdge
	Threads []ThreadSnapshot
}

func (e *DeadlockError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v; cycle: %s", ErrDeadlock, FormatCycle(e.Cycle))
	blocked := 0
	for _, t := range e.Threads {
		if t.State == "blocked" {
			blocked++
		}
	}
	fmt.Fprintf(&sb, "; %d thread(s) blocked", blocked)
	return sb.String()
}

// Unwrap classifies the error as ErrDeadlock.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// WatchdogError reports a livelock: no logical clock advanced and no thread
// started or finished for at least NoProgressFor. Unlike DeadlockError the
// *moment* of detection depends on wall time, but the snapshot content is
// derived from deterministic state only.
type WatchdogError struct {
	NoProgressFor time.Duration
	Threads       []ThreadSnapshot
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("%v (%v without clock advance, %d thread(s) live)",
		ErrStalled, e.NoProgressFor, len(e.Threads))
}

// Unwrap classifies the error as ErrStalled.
func (e *WatchdogError) Unwrap() error { return ErrStalled }

// ThreadPanicError reports a user panic contained by the runtime: the
// panicking thread was deterministically removed from the turn predicate and
// the panic value preserved here.
type ThreadPanicError struct {
	ThreadID int
	Clock    int64
	Value    any
	Stack    string
}

func (e *ThreadPanicError) Error() string {
	return fmt.Sprintf("thread %d panicked at clock %d: %v", e.ThreadID, e.Clock, e.Value)
}

// Unwrap exposes the panic value when it is itself an error (typed misuse
// and injected faults panic with error values), so errors.Is/As see through
// the containment.
func (e *ThreadPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// MisuseError reports an API contract violation (unlock of an unheld mutex,
// cross-runtime object use, self-join, ...) with the offending thread's
// context. Kind is one of the sentinel errors above.
type MisuseError struct {
	Op       string // e.g. "Mutex.Unlock"
	ThreadID int
	Clock    int64
	Kind     error
	Detail   string
}

func (e *MisuseError) Error() string {
	ctx := fmt.Sprintf("thread %d, clock %d", e.ThreadID, e.Clock)
	if e.ThreadID < 0 {
		// Configuration-level misuse happens outside any thread.
		ctx = "configuration"
	}
	s := fmt.Sprintf("%s: %v (%s)", e.Op, e.Kind, ctx)
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Unwrap classifies the error by its Kind sentinel.
func (e *MisuseError) Unwrap() error { return e.Kind }

// RaceAccess is one side of a data race: which thread touched the address,
// whether it wrote, its vector clock at the access, the locks it held, and
// the IR site. All fields are deterministic functions of the program.
type RaceAccess struct {
	Thread int
	Write  bool
	// Clock is the accessor's own vector-clock component at the access (its
	// per-thread epoch).
	Clock int64
	// VC is the accessor's full vector clock at the access.
	VC []int64
	// Lockset lists the lock ids held at the access, ascending.
	Lockset []int
	// Site identifies the access instruction, "func.block+pc".
	Site string
}

func (a RaceAccess) String() string {
	kind := "read"
	if a.Write {
		kind = "write"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s by thread %d at clock %d", kind, a.Thread, a.Clock)
	if a.Site != "" {
		fmt.Fprintf(&sb, " (%s)", a.Site)
	}
	if len(a.Lockset) == 0 {
		sb.WriteString(" holding no locks")
	} else {
		sb.WriteString(" holding")
		for _, l := range a.Lockset {
			fmt.Fprintf(&sb, " mutex#%d", l)
		}
	}
	return sb.String()
}

// RaceError reports a data race: two accesses to the same address, at least
// one a write, with no happens-before ordering and no common lock. First and
// Second are ordered by thread id (racing accesses are always on distinct
// threads), making the report canonical — the same race renders identically
// regardless of which interleaving the detector observed it under.
type RaceError struct {
	// Sym and Index name the accessed global slot; Addr is its flat address.
	Sym   string
	Index int64
	Addr  int64

	First, Second RaceAccess
}

func (e *RaceError) Error() string {
	return fmt.Sprintf("%v on %s[%d] (addr %d): %s vs %s",
		ErrRace, e.Sym, e.Index, e.Addr, e.First, e.Second)
}

// Unwrap classifies the error as ErrRace.
func (e *RaceError) Unwrap() error { return ErrRace }

// DivergenceEvent is one synchronization event inside a divergence report
// (mirrors trace.Event without importing it — diag is the dependency root).
type DivergenceEvent struct {
	Seq    int64
	Lock   int
	Thread int
	Clock  int64
}

func (e DivergenceEvent) String() string {
	return fmt.Sprintf("lock %d by thread %d at clock %d", e.Lock, e.Thread, e.Clock)
}

// DivergenceError reports the first point where a run's synchronization
// schedule differs from the reference (run 0, or a recorded schedule being
// replayed). Want/Got are nil when one schedule is a strict prefix of the
// other (length mismatch).
type DivergenceError struct {
	// Run is the index of the diverging run; the reference is run 0.
	Run int
	// Index is the first mismatched event position.
	Index int
	// Want is the reference event, Got the observed one.
	Want, Got *DivergenceEvent
	// WantLen/GotLen are the schedule lengths (length-mismatch context).
	WantLen, GotLen int
}

func (e *DivergenceError) Error() string {
	if e.Want == nil || e.Got == nil {
		return fmt.Sprintf("%v: run %d diverges from run 0 at event %d: length mismatch (%d vs %d events)",
			ErrDivergence, e.Run, e.Index, e.WantLen, e.GotLen)
	}
	return fmt.Sprintf("%v: run %d diverges from run 0 at event %d: want %s, got %s",
		ErrDivergence, e.Run, e.Index, e.Want, e.Got)
}

// Unwrap classifies the error as ErrDivergence.
func (e *DivergenceError) Unwrap() error { return ErrDivergence }

// TimeoutError reports a job that was cooperatively canceled: its deadline
// passed, or its submitter went away. Deadlines are wall-clock policy, not
// program logic, so — like WatchdogError — the moment of cancellation is
// nondeterministic, but a canceled run publishes no result, so determinism
// of surviving runs is unaffected.
type TimeoutError struct {
	// Op names the canceled operation (e.g. "service.job").
	Op string
	// Deadline is the budget that was exceeded (0 when the cancellation came
	// from the client rather than a deadline).
	Deadline time.Duration
	// Cause is the underlying context error (context.DeadlineExceeded or
	// context.Canceled).
	Cause error
}

func (e *TimeoutError) Error() string {
	if e.Deadline > 0 {
		return fmt.Sprintf("%s: %v (deadline %v)", e.Op, ErrDeadline, e.Deadline)
	}
	return fmt.Sprintf("%s: %v (canceled by client)", e.Op, ErrDeadline)
}

// Unwrap classifies the error as ErrDeadline and exposes the context cause,
// so both errors.Is(err, ErrDeadline) and errors.Is(err,
// context.DeadlineExceeded) hold.
func (e *TimeoutError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrDeadline, e.Cause}
	}
	return []error{ErrDeadline}
}

// RetryError reports a job that failed on every attempt of its retry budget.
// Only transient failures (contained panics, injected faults) are retried;
// deterministic failures (deadlock, race, misuse) fail on the first attempt
// without one of these.
type RetryError struct {
	// Op names the retried operation (e.g. "service.job").
	Op string
	// Attempts is the total number of executions (first try + retries).
	Attempts int
	// Last is the final attempt's error.
	Last error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("%s: %v (%d attempts): %v", e.Op, ErrRetriesExhausted, e.Attempts, e.Last)
}

// Unwrap classifies the error as ErrRetriesExhausted and exposes the last
// attempt's failure for errors.Is/As.
func (e *RetryError) Unwrap() []error {
	if e.Last != nil {
		return []error{ErrRetriesExhausted, e.Last}
	}
	return []error{ErrRetriesExhausted}
}

// CorruptionError reports an integrity-check failure: some bytes — a journal
// record, a peer response body, a shipped batch — do not match their
// checksum or framing. Corruption is an environmental fault, not a program
// fault: the deterministic contract of the data's producer is intact, the
// copy is damaged, so the correct response is always to discard the copy and
// recover (re-execute, resync, refetch), never to serve it.
type CorruptionError struct {
	// Source names where the damaged bytes came from ("journal", "peer
	// node-b", "ship batch").
	Source string
	// Detail describes the failed check (expected vs observed checksum,
	// malformed frame, impossible length).
	Detail string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("%s: %v: %s", e.Source, ErrCorruption, e.Detail)
}

// Unwrap classifies the error as ErrCorruption.
func (e *CorruptionError) Unwrap() error { return ErrCorruption }
