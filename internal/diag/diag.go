// Package diag defines the structured failure reports shared by the
// deterministic runtime (internal/det) and the simulator (internal/sim).
//
// Deterministic execution's chief payoff is reproducible debugging (Aviram &
// Ford's Determinator line of work makes this argument explicitly): a hang or
// crash in a deterministically-scheduled program is the *same* hang on every
// run, so the runtime can afford to turn every stuck state into a rich,
// deterministic diagnostic instead of spinning forever. The types here are
// that diagnostic: a per-thread snapshot, the wait-for edges between threads
// and synchronization objects, and typed errors for the three failure
// families — deadlock (a cycle or globally blocked state), stall (no clock
// progress within a watchdog bound), and contained user panics — plus typed
// misuse errors for API contract violations.
//
// The invariant the runtime maintains with these types: det never hangs —
// every stuck state terminates with a structured report.
package diag

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Sentinel classification errors. Concrete reports wrap one of these, so
// callers can classify with errors.Is while errors.As extracts the detail.
var (
	// ErrDeadlock: every live thread is blocked on a synchronization object;
	// no thread can ever make progress.
	ErrDeadlock = errors.New("deadlock: no thread can make progress")
	// ErrStalled: the progress watchdog observed no logical-clock advance and
	// no synchronization event within its bound.
	ErrStalled = errors.New("stalled: no progress within watchdog bound")
	// ErrCrossRuntime: a synchronization object was used with a thread that
	// belongs to a different runtime.
	ErrCrossRuntime = errors.New("object and thread belong to different runtimes")
	// ErrNotHeld: unlock (or condition-variable operation) on a mutex the
	// thread does not hold.
	ErrNotHeld = errors.New("mutex not held by this thread")
	// ErrSelfJoin: a thread attempted to join itself.
	ErrSelfJoin = errors.New("thread cannot join itself")
	// ErrBadJoin: join target is nil or not a thread of this runtime.
	ErrBadJoin = errors.New("join target is not a thread of this runtime")
	// ErrNegativeTick: Tick called with a negative amount.
	ErrNegativeTick = errors.New("negative Tick amount")
	// ErrInjected tags failures produced by the fault-injection harness.
	ErrInjected = errors.New("injected fault")
)

// ThreadSnapshot is one thread's state at the moment a failure report was
// assembled. All fields are deterministic functions of the program's logic
// (clocks are frozen logical clocks, never wall time).
type ThreadSnapshot struct {
	ID    int
	Clock int64
	// State is "runnable", "blocked", "done" or "panicked".
	State string
	// BlockedOn names the synchronization object a blocked thread waits on,
	// e.g. "mutex#1", "barrier#0 (arrived 2 of 3)", "join(thread 2)".
	BlockedOn string
	// Holder is the thread holding BlockedOn (mutex holder, join target),
	// or -1 when there is no single owner (barriers, condition variables).
	Holder int
	// LastAcq describes the thread's most recent lock acquisition as
	// "mutex#N@clock", or "" if it never acquired a lock.
	LastAcq string
}

func (s ThreadSnapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "thread %d clock=%d %s", s.ID, s.Clock, s.State)
	if s.BlockedOn != "" {
		fmt.Fprintf(&sb, " on %s", s.BlockedOn)
		if s.Holder >= 0 {
			fmt.Fprintf(&sb, " (held by thread %d)", s.Holder)
		}
	}
	if s.LastAcq != "" {
		fmt.Fprintf(&sb, " last-acq %s", s.LastAcq)
	}
	return sb.String()
}

// WaitEdge is one edge of the wait-for graph: Waiter is blocked on Resource,
// which is owned by Holder (-1 when the resource has no single owner).
type WaitEdge struct {
	Waiter   int
	Resource string
	Holder   int
}

// FormatCycle renders a wait-for cycle as
// "thread 0 -[mutex#1]-> thread 1 -[mutex#0]-> thread 0".
func FormatCycle(cycle []WaitEdge) string {
	if len(cycle) == 0 {
		return "(no single-owner cycle: collective wait)"
	}
	var sb strings.Builder
	for _, e := range cycle {
		fmt.Fprintf(&sb, "thread %d -[%s]-> ", e.Waiter, e.Resource)
	}
	fmt.Fprintf(&sb, "thread %d", cycle[0].Waiter)
	return sb.String()
}

// DeadlockError reports a state in which every live thread is blocked.
// Cycle is the wait-for cycle when one exists (mutex/join ownership chains);
// Waits lists every blocked thread's edge; Threads is the full snapshot.
// The report is deterministic: the same program reaches the same blocked
// state — same cycle, same clocks — on every run.
type DeadlockError struct {
	Cycle   []WaitEdge
	Waits   []WaitEdge
	Threads []ThreadSnapshot
}

func (e *DeadlockError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v; cycle: %s", ErrDeadlock, FormatCycle(e.Cycle))
	blocked := 0
	for _, t := range e.Threads {
		if t.State == "blocked" {
			blocked++
		}
	}
	fmt.Fprintf(&sb, "; %d thread(s) blocked", blocked)
	return sb.String()
}

// Unwrap classifies the error as ErrDeadlock.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// WatchdogError reports a livelock: no logical clock advanced and no thread
// started or finished for at least NoProgressFor. Unlike DeadlockError the
// *moment* of detection depends on wall time, but the snapshot content is
// derived from deterministic state only.
type WatchdogError struct {
	NoProgressFor time.Duration
	Threads       []ThreadSnapshot
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("%v (%v without clock advance, %d thread(s) live)",
		ErrStalled, e.NoProgressFor, len(e.Threads))
}

// Unwrap classifies the error as ErrStalled.
func (e *WatchdogError) Unwrap() error { return ErrStalled }

// ThreadPanicError reports a user panic contained by the runtime: the
// panicking thread was deterministically removed from the turn predicate and
// the panic value preserved here.
type ThreadPanicError struct {
	ThreadID int
	Clock    int64
	Value    any
	Stack    string
}

func (e *ThreadPanicError) Error() string {
	return fmt.Sprintf("thread %d panicked at clock %d: %v", e.ThreadID, e.Clock, e.Value)
}

// Unwrap exposes the panic value when it is itself an error (typed misuse
// and injected faults panic with error values), so errors.Is/As see through
// the containment.
func (e *ThreadPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// MisuseError reports an API contract violation (unlock of an unheld mutex,
// cross-runtime object use, self-join, ...) with the offending thread's
// context. Kind is one of the sentinel errors above.
type MisuseError struct {
	Op       string // e.g. "Mutex.Unlock"
	ThreadID int
	Clock    int64
	Kind     error
	Detail   string
}

func (e *MisuseError) Error() string {
	s := fmt.Sprintf("%s: %v (thread %d, clock %d)", e.Op, e.Kind, e.ThreadID, e.Clock)
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Unwrap classifies the error by its Kind sentinel.
func (e *MisuseError) Unwrap() error { return e.Kind }
