// Package kendo configures the simulated Kendo baseline of Table II.
//
// Kendo (Olszewski et al., ASPLOS 2009) derives its logical clocks from a
// deterministic hardware performance counter of retired stores, published to
// other threads only when the counter overflows — every "chunk" — at the
// cost of an interrupt. The paper compares DetLock against it (§V-C) and
// notes that Kendo's chunk size had to be tuned manually per benchmark: a
// small chunk keeps published clocks fresh but pays frequent interrupts; a
// large chunk is cheap but leaves waiters staring at stale clocks.
//
// In this reproduction the counter counts *weighted retired instructions*
// rather than stores (the synthetic workloads are load/ALU-heavy, so a
// store counter would barely advance; the instruction counter is the same
// deterministic-progress signal at a usable density — see DESIGN.md). At a
// synchronization operation the thread reads its counter exactly and
// publishes its true clock, per Kendo's design; in between, other threads
// see the last overflow value.
package kendo

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
)

// Config is one Kendo baseline configuration.
type Config struct {
	// ChunkSize is the counter overflow period in weighted instruction units.
	ChunkSize int64
	// InterruptCost is the cycle cost of each overflow interrupt.
	InterruptCost int64
}

// DefaultChunks is the tuning sweep used to reproduce the paper's manual
// per-benchmark chunk selection.
var DefaultChunks = []int64{100, 250, 1000, 4000, 16000, 64000}

// DefaultInterruptCost models a lean overflow handler.
const DefaultInterruptCost = 40

// Result is the outcome of one Kendo run.
type Result struct {
	Config     Config
	Makespan   int64
	WaitCycles int64
	Interrupts int64
}

// Run executes the (uninstrumented) module deterministically under the
// simulated Kendo counter.
func Run(m *ir.Module, threads int, entry string, cfg Config) (*Result, error) {
	if cfg.InterruptCost == 0 {
		cfg.InterruptCost = DefaultInterruptCost
	}
	mach, ths, err := interp.NewMachine(interp.Config{
		Module:             m.Clone(),
		Threads:            threads,
		Entry:              entry,
		Mode:               interp.ModeKendo,
		KendoChunkSize:     cfg.ChunkSize,
		KendoInterruptCost: cfg.InterruptCost,
	})
	if err != nil {
		return nil, fmt.Errorf("kendo: %w", err)
	}
	eng := sim.New(sim.Config{
		Policy:      sim.PolicyDet,
		NumLocks:    m.NumLocks,
		NumBarriers: m.NumBars,
	}, interp.Programs(ths))
	stats, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("kendo: %w", err)
	}
	return &Result{
		Config:     cfg,
		Makespan:   stats.Makespan,
		WaitCycles: stats.WaitCycles,
		Interrupts: mach.Interrupts,
	}, nil
}

// Tune sweeps chunk sizes and returns the best (lowest-makespan) result plus
// the whole sweep — the paper's "the authors of Kendo had to manually adjust
// the chunk size to get the best performance" (§V-C), automated.
func Tune(m *ir.Module, threads int, entry string, chunks []int64) (*Result, []*Result, error) {
	if len(chunks) == 0 {
		chunks = DefaultChunks
	}
	var best *Result
	var sweep []*Result
	for _, c := range chunks {
		r, err := Run(m, threads, entry, Config{ChunkSize: c})
		if err != nil {
			return nil, nil, err
		}
		sweep = append(sweep, r)
		if best == nil || r.Makespan < best.Makespan {
			best = r
		}
	}
	return best, sweep, nil
}
