package kendo

import (
	"testing"

	"repro/internal/splash"
)

func TestRunTakesInterrupts(t *testing.T) {
	b, err := splash.New("water-nsq", 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(b.Module, 2, b.Entry, Config{ChunkSize: 500})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Interrupts == 0 {
		t.Fatalf("chunked counter should overflow")
	}
	if r.Makespan <= 0 {
		t.Fatalf("makespan = %d", r.Makespan)
	}
}

func TestInterruptCostTradeoff(t *testing.T) {
	b, err := splash.New("water-nsq", 2)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(b.Module, 2, b.Entry, Config{ChunkSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(b.Module, 2, b.Entry, Config{ChunkSize: 64000})
	if err != nil {
		t.Fatal(err)
	}
	if small.Interrupts <= large.Interrupts {
		t.Fatalf("smaller chunks must take more interrupts: %d vs %d",
			small.Interrupts, large.Interrupts)
	}
}

func TestTunePicksSweepMinimum(t *testing.T) {
	b, err := splash.New("radiosity", 2)
	if err != nil {
		t.Fatal(err)
	}
	best, sweep, err := Tune(b.Module, 2, b.Entry, []int64{250, 4000})
	if err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if len(sweep) != 2 {
		t.Fatalf("sweep = %d entries", len(sweep))
	}
	for _, r := range sweep {
		if r.Makespan < best.Makespan {
			t.Fatalf("Tune missed a better chunk: %d < %d", r.Makespan, best.Makespan)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	b, err := splash.New("volrend", 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(b.Module, 2, b.Entry, Config{ChunkSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(b.Module, 2, b.Entry, Config{ChunkSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != c.Makespan || a.Interrupts != c.Interrupts {
		t.Fatalf("kendo runs not reproducible: %+v vs %+v", a, c)
	}
}
