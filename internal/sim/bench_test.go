package sim

// Scheduler hot-loop benchmark: the reference engine rescans every thread
// per event (O(T) picks), the optimized engine keeps threads in an indexed
// min-heap. Scripted programs keep the per-event work tiny — matching the
// instrumented sweeps, which run only tens of instructions per engine event
// — so the events/sec metric isolates scheduler overhead.

import "testing"

// sweepScripts builds one deterministic script per thread: many small
// advances with a lock/unlock round every eighth event, under skewed clock
// rates so the deterministic policy keeps reordering the heap.
func sweepScripts(threads, events int) [][]Step {
	scripts := make([][]Step, threads)
	for t := 0; t < threads; t++ {
		steps := make([]Step, 0, events+1)
		for i := 0; i < events; i++ {
			if i%8 == 7 {
				steps = append(steps, lock(i%4), unlock(i%4))
			} else {
				steps = append(steps, adv(int64(3+(t+i)%5), int64(1+t%3)))
			}
		}
		steps = append(steps, done())
		scripts[t] = steps
	}
	return scripts
}

// BenchmarkEngineSweep compares the scanning reference scheduler with the
// heap scheduler on the same scripted workload; the events/sec metric is
// the one BENCH_PR4.json commits.
func BenchmarkEngineSweep(b *testing.B) {
	const threads, events = 16, 2000
	for _, ref := range []bool{true, false} {
		name := "heap"
		if ref {
			name = "reference"
		}
		b.Run(name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				scripts := sweepScripts(threads, events)
				ps := make([]Program, threads)
				for t := range scripts {
					ps[t] = &scriptProg{steps: scripts[t]}
				}
				eng := New(Config{Policy: PolicyDet, NumLocks: 4, Reference: ref}, ps)
				stats, err := eng.Run()
				if err != nil {
					b.Fatalf("Run: %v", err)
				}
				steps += stats.Steps
			}
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
