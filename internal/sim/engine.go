// Package sim is a deterministic discrete-event simulator of N hardware
// threads. It produces the cycle counts behind the paper's evaluation:
// physical time advances by the cost model's per-instruction cycles (clock
// updates included), and deterministic execution's extra cost appears as the
// cycles threads spend waiting for other threads' logical clocks to pass
// them — exactly the quantity the paper's Table I and Figure 14/15 measure.
//
// The engine is sequential and fully deterministic: it always steps the
// runnable thread with the smallest (physical time, id), so identical
// programs produce identical cycle counts and identical lock-acquisition
// traces on every run.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/diag"
)

// StepKind tags what a program thread produced when stepped.
type StepKind uint8

// Step kinds yielded by Program implementations.
const (
	// StepAdvance: the thread executed instructions (Cycles) and possibly
	// published a logical-clock increment (ClockDelta) at the END of the
	// span — programs yield at every clock-update point, so publication
	// times are exact.
	StepAdvance StepKind = iota
	// StepLock: the thread wants lock Obj. Cycles covers work before the op.
	StepLock
	// StepUnlock: the thread releases lock Obj.
	StepUnlock
	// StepBarrier: the thread arrives at barrier Obj.
	StepBarrier
	// StepDone: the thread finished.
	StepDone
	// StepSpawn: the thread creates a new thread; NewProg builds its
	// Program given the engine-assigned id, and *SpawnDst (when non-nil)
	// receives that id as the spawn handle.
	StepSpawn
	// StepJoin: the thread waits for thread Obj to finish.
	StepJoin
)

// Step is one yield from a simulated thread.
type Step struct {
	Kind       StepKind
	Cycles     int64 // physical cycles consumed by this span
	ClockDelta int64 // logical clock increment published at span end
	Obj        int   // lock/barrier id for sync steps; target thread for join

	// NewProg builds the spawned thread's program from its assigned id
	// (StepSpawn only).
	NewProg func(id int) Program
	// SpawnDst, when non-nil, receives the spawned thread's id.
	SpawnDst *int64
}

// Program is a steppable simulated thread (implemented by package interp).
// Step is called only while the thread is runnable.
type Program interface {
	Step() (Step, error)
}

// SyncObserver receives synchronization events as the engine resolves them,
// in resolution order. The race detector (package interp) advances its
// vector clocks here; the hooks fire at the exact points the corresponding
// happens-before edges are created. Callbacks run synchronously on the
// engine's (single) thread and must not retain the BarrierReleased slice.
type SyncObserver interface {
	// Acquired fires when thread is granted lock (including waiter handoff).
	Acquired(thread, lock int)
	// Released fires when thread releases lock, before any handoff grant.
	Released(thread, lock int)
	// BarrierReleased fires when a barrier opens, with every participant.
	BarrierReleased(threads []int)
	// Spawned fires when parent creates child, before child's first step.
	Spawned(parent, child int)
	// Joined fires when waiter's join on target completes.
	Joined(waiter, target int)
}

// LockPolicy selects how contended locks are granted.
type LockPolicy uint8

// Lock policies.
const (
	// PolicyFCFS grants in request order (plain pthread-like mutex);
	// deterministic inside the simulator, used for baseline runs.
	PolicyFCFS LockPolicy = iota
	// PolicyDet implements Kendo's rule: an acquire decision happens only
	// when the requester's (logical clock, id) is minimal among non-excluded
	// threads; waiters queue with frozen clocks and resume at
	// max(frozen, releaser's clock)+1.
	PolicyDet
)

// Config parameterizes a simulation run.
type Config struct {
	Policy LockPolicy
	// NumLocks / NumBarriers size the sync object tables.
	NumLocks    int
	NumBarriers int
	// LockCost, UnlockCost, BarrierCost are uncontended base cycle costs.
	LockCost    int64
	UnlockCost  int64
	BarrierCost int64
	// BarrierParticipants is the arrival count that releases a barrier
	// (normally the thread count).
	BarrierParticipants int
	// MaxSteps bounds total engine steps (runaway guard); 0 means default.
	MaxSteps int64
	// RecordTrace enables the acquisition trace (lock id, thread, clock).
	RecordTrace bool
	// Observer, when non-nil, is notified of every synchronization event.
	Observer SyncObserver
}

// Acquisition is one lock grant, for determinism checking. The JSON tags
// define the wire format used when traces are persisted (service layer,
// examples/replay).
type Acquisition struct {
	Lock   int   `json:"lock"`
	Thread int   `json:"thread"`
	Clock  int64 `json:"clock"` // logical clock right after the grant (0 under FCFS)
	Phys   int64 `json:"phys"`  // physical grant time
}

// Stats aggregates a finished run.
type Stats struct {
	// Makespan is the maximum per-thread finish time: the run's wall clock.
	Makespan int64
	// PerThreadCycles is each thread's finish time.
	PerThreadCycles []int64
	// WaitCycles is the total cycles threads spent blocked or spinning on
	// sync (the deterministic-execution overhead plus contention).
	WaitCycles int64
	// Acquisitions counts lock grants.
	Acquisitions int64
	// BarrierEpisodes counts completed barrier releases.
	BarrierEpisodes int64
	// Steps counts engine iterations.
	Steps int64
	// Trace holds the acquisition sequence when Config.RecordTrace is set.
	Trace []Acquisition
	// FinalClocks is each thread's logical clock at completion — the total
	// accumulated clock, used by conservation tests (precise optimizations
	// must not change it).
	FinalClocks []int64
}

// thread run states.
type tstatus uint8

const (
	tsRunnable tstatus = iota
	tsAcquiring
	tsBlocked // queued on a held lock: excluded, frozen clock
	tsBarrier // arrived at a barrier: excluded
	tsJoining // waiting for another thread to finish: excluded
	tsDone
)

type tstate struct {
	id     int
	prog   Program
	status tstatus
	phys   int64
	clock  int64

	wantLock int   // lock id while acquiring/blocked
	readyAt  int64 // phys time at which the pending grant decision matured
	waitFrom int64 // phys time the thread began waiting (for WaitCycles)
}

type lockState struct {
	held    bool
	holder  int
	waiters []int // blocked thread ids in deterministic enqueue order
}

type barState struct {
	arrived []int
}

// Engine runs a set of Programs to completion under a Config.
type Engine struct {
	cfg      Config
	threads  []*tstate
	locks    []lockState
	barriers []barState
	stats    Stats
}

// ErrDeadlock classifies the *diag.DeadlockError Run returns when no thread
// can make progress — the same structured report the goroutine runtime
// (internal/det) produces, so callers handle both identically.
var ErrDeadlock = diag.ErrDeadlock

// ErrStepLimit is wrapped by Run when MaxSteps is exceeded.
var ErrStepLimit = errors.New("sim: step limit exceeded")

// New creates an engine over the given per-thread programs.
func New(cfg Config, progs []Program) *Engine {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 500_000_000
	}
	if cfg.BarrierParticipants == 0 {
		cfg.BarrierParticipants = len(progs)
	}
	e := &Engine{
		cfg:      cfg,
		locks:    make([]lockState, cfg.NumLocks),
		barriers: make([]barState, cfg.NumBarriers),
	}
	for i, p := range progs {
		e.threads = append(e.threads, &tstate{id: i, prog: p})
	}
	e.stats.PerThreadCycles = make([]int64, len(progs))
	e.stats.FinalClocks = make([]int64, len(progs))
	return e
}

// Run executes the simulation to completion and returns the statistics.
func (e *Engine) Run() (*Stats, error) {
	for {
		t := e.pickRunnable()
		if t == nil {
			if e.allDone() {
				break
			}
			return nil, e.deadlockError()
		}
		e.stats.Steps++
		if e.stats.Steps > e.cfg.MaxSteps {
			return nil, fmt.Errorf("%w (%d)", ErrStepLimit, e.cfg.MaxSteps)
		}
		st, err := t.prog.Step()
		if err != nil {
			return nil, fmt.Errorf("sim: thread %d: %w", t.id, err)
		}
		t.phys += st.Cycles
		// ClockDelta applies on every step kind: sync steps publish the
		// thread's precise clock before the operation (Kendo reads its
		// counter exactly at synchronization points).
		t.clock += st.ClockDelta
		switch st.Kind {
		case StepAdvance:
		case StepLock:
			t.status = tsAcquiring
			t.wantLock = st.Obj
			t.readyAt = t.phys
			t.waitFrom = t.phys
		case StepUnlock:
			e.unlock(t, st.Obj)
		case StepBarrier:
			e.barrierArrive(t, st.Obj)
		case StepDone:
			t.status = tsDone
			e.stats.PerThreadCycles[t.id] = t.phys
			e.stats.FinalClocks[t.id] = t.clock
			if t.phys > e.stats.Makespan {
				e.stats.Makespan = t.phys
			}
			e.settleJoiners(t)
		case StepSpawn:
			e.spawn(t, st)
		case StepJoin:
			e.join(t, st.Obj)
		}
		// Any step can change clocks or exclusion; settle pending acquires.
		e.settleAcquirers(t.phys)
	}
	return &e.stats, nil
}

// pickRunnable returns the runnable thread with minimal (phys, id), nil when
// none are runnable.
func (e *Engine) pickRunnable() *tstate {
	var best *tstate
	for _, t := range e.threads {
		if t.status != tsRunnable {
			continue
		}
		if best == nil || t.phys < best.phys || (t.phys == best.phys && t.id < best.id) {
			best = t
		}
	}
	return best
}

func (e *Engine) allDone() bool {
	for _, t := range e.threads {
		if t.status != tsDone {
			return false
		}
	}
	return true
}

// deadlockError assembles the same structured report internal/det produces:
// per-thread snapshots, wait-for edges, and the cycle when one exists.
func (e *Engine) deadlockError() *diag.DeadlockError {
	dd := &diag.DeadlockError{}
	for _, t := range e.threads {
		s := diag.ThreadSnapshot{ID: t.id, Clock: t.clock, Holder: -1}
		switch t.status {
		case tsDone:
			s.State = "done"
		case tsBlocked:
			s.State = "blocked"
			s.BlockedOn = fmt.Sprintf("mutex#%d", t.wantLock)
			if l := &e.locks[t.wantLock]; l.held {
				s.Holder = l.holder
			}
		case tsBarrier:
			s.State = "blocked"
			s.BlockedOn = fmt.Sprintf("barrier#%d", t.wantLock)
		case tsJoining:
			s.State = "blocked"
			s.BlockedOn = fmt.Sprintf("join(thread %d)", t.wantLock)
			s.Holder = t.wantLock
		case tsAcquiring:
			// An acquirer that never gains the turn is stuck waiting for the
			// lock it requested; report it as such.
			s.State = "blocked"
			s.BlockedOn = fmt.Sprintf("mutex#%d", t.wantLock)
			if l := &e.locks[t.wantLock]; l.held {
				s.Holder = l.holder
			}
		default:
			s.State = "runnable"
		}
		if s.State == "blocked" {
			dd.Waits = append(dd.Waits, diag.WaitEdge{
				Waiter: t.id, Resource: s.BlockedOn, Holder: s.Holder,
			})
		}
		dd.Threads = append(dd.Threads, s)
	}
	dd.Cycle = e.findCycle()
	return dd
}

// findCycle walks thread → holder-of-blocked-on-resource edges (out-degree
// at most one) from each thread in id order and returns the first cycle.
func (e *Engine) findCycle() []diag.WaitEdge {
	succ := func(t *tstate) *tstate {
		switch t.status {
		case tsBlocked, tsAcquiring:
			if l := &e.locks[t.wantLock]; l.held && e.threads[l.holder].status != tsDone {
				return e.threads[l.holder]
			}
		case tsJoining:
			if tgt := e.threads[t.wantLock]; tgt.status != tsDone {
				return tgt
			}
		}
		return nil
	}
	edge := func(t *tstate) diag.WaitEdge {
		w := diag.WaitEdge{Waiter: t.id, Holder: -1}
		switch t.status {
		case tsBlocked, tsAcquiring:
			w.Resource = fmt.Sprintf("mutex#%d", t.wantLock)
			if l := &e.locks[t.wantLock]; l.held {
				w.Holder = l.holder
			}
		case tsJoining:
			w.Resource = fmt.Sprintf("join(thread %d)", t.wantLock)
			w.Holder = t.wantLock
		}
		return w
	}
	const (
		unvisited = 0
		onPath    = 1
		finished  = 2
	)
	state := make(map[*tstate]int, len(e.threads))
	for _, start := range e.threads {
		if state[start] != unvisited {
			continue
		}
		var path []*tstate
		t := start
		for t != nil && state[t] == unvisited {
			state[t] = onPath
			path = append(path, t)
			t = succ(t)
		}
		if t != nil && state[t] == onPath {
			i := 0
			for path[i] != t {
				i++
			}
			out := make([]diag.WaitEdge, 0, len(path)-i)
			for _, w := range path[i:] {
				out = append(out, edge(w))
			}
			return out
		}
		for _, p := range path {
			state[p] = finished
		}
	}
	return nil
}

// excludedFromTurn mirrors package det: blocked lock waiters, barrier
// arrivals and finished threads do not participate in the turn predicate.
func (t *tstate) excludedFromTurn() bool {
	switch t.status {
	case tsBlocked, tsBarrier, tsJoining, tsDone:
		return true
	}
	return false
}

// hasTurn reports whether a's (clock, id) is minimal among non-excluded
// threads (Kendo's wait_for_turn).
func (e *Engine) hasTurn(a *tstate) bool {
	for _, o := range e.threads {
		if o == a || o.excludedFromTurn() {
			continue
		}
		if o.clock < a.clock || (o.clock == a.clock && o.id < a.id) {
			return false
		}
	}
	return true
}

// settleAcquirers resolves pending lock requests. Under FCFS a request
// resolves immediately; under the deterministic policy a request resolves
// when its thread gains the turn — the grant's physical time is the later of
// the request time and the step that made the turn condition true (now).
func (e *Engine) settleAcquirers(now int64) {
	for progress := true; progress; {
		progress = false
		for _, a := range e.acquirersInOrder() {
			l := &e.locks[a.wantLock]
			switch e.cfg.Policy {
			case PolicyFCFS:
				if !l.held {
					e.grant(a, maxI64(a.phys, a.readyAt))
				} else {
					a.status = tsBlocked
					l.waiters = append(l.waiters, a.id)
				}
				progress = true
			case PolicyDet:
				if !e.hasTurn(a) {
					continue
				}
				if !l.held {
					// Kendo: tick after acquisition.
					a.clock++
					e.grant(a, maxI64(a.phys, now))
				} else {
					a.status = tsBlocked
					l.waiters = append(l.waiters, a.id)
				}
				progress = true
			}
		}
	}
}

// acquirersInOrder returns acquiring threads ordered by (clock, id) so
// settlement decisions are deterministic and respect the turn order.
func (e *Engine) acquirersInOrder() []*tstate {
	var out []*tstate
	for _, t := range e.threads {
		if t.status == tsAcquiring {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].clock != out[j].clock {
			return out[i].clock < out[j].clock
		}
		return out[i].id < out[j].id
	})
	return out
}

// grant completes a lock acquisition at physical time at.
func (e *Engine) grant(t *tstate, at int64) {
	l := &e.locks[t.wantLock]
	l.held = true
	l.holder = t.id
	waited := at - t.waitFrom
	if waited > 0 {
		e.stats.WaitCycles += waited
	}
	t.phys = at + e.cfg.LockCost
	t.status = tsRunnable
	e.stats.Acquisitions++
	if e.cfg.RecordTrace {
		e.stats.Trace = append(e.stats.Trace, Acquisition{
			Lock: t.wantLock, Thread: t.id, Clock: t.clock, Phys: t.phys,
		})
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.Acquired(t.id, t.wantLock)
	}
}

// unlock releases a lock and hands it to the first queued waiter, if any.
func (e *Engine) unlock(t *tstate, obj int) {
	l := &e.locks[obj]
	if !l.held || l.holder != t.id {
		panic(fmt.Sprintf("sim: thread %d unlocks lock %d it does not hold", t.id, obj))
	}
	t.phys += e.cfg.UnlockCost
	if e.cfg.Policy == PolicyDet {
		t.clock++
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.Released(t.id, obj)
	}
	if len(l.waiters) == 0 {
		l.held = false
		l.holder = -1
		return
	}
	wid := l.waiters[0]
	l.waiters = l.waiters[1:]
	w := e.threads[wid]
	if e.cfg.Policy == PolicyDet {
		// Kendo semantics: the waiter's clock was paused while blocked and
		// resumes where it froze, ticking once for the acquisition. Keeping
		// the frozen clock (rather than jumping to the releaser's) is what
		// makes high-lock-frequency programs pay the paper's deterministic
		// round-robin cost: other threads must wait for the slow clock to
		// catch up before their own acquisitions.
		w.clock++
	}
	l.holder = wid
	waited := t.phys - w.waitFrom
	if waited > 0 {
		e.stats.WaitCycles += waited
	}
	w.phys = maxI64(w.phys, t.phys) + e.cfg.LockCost
	w.status = tsRunnable
	e.stats.Acquisitions++
	if e.cfg.RecordTrace {
		e.stats.Trace = append(e.stats.Trace, Acquisition{
			Lock: obj, Thread: wid, Clock: w.clock, Phys: w.phys,
		})
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.Acquired(wid, obj)
	}
}

// barrierArrive handles a barrier arrival, releasing everyone on the last.
func (e *Engine) barrierArrive(t *tstate, obj int) {
	b := &e.barriers[obj]
	t.status = tsBarrier
	t.waitFrom = t.phys
	b.arrived = append(b.arrived, t.id)
	if len(b.arrived) < e.cfg.BarrierParticipants {
		return
	}
	var maxPhys, maxClock int64
	for _, id := range b.arrived {
		w := e.threads[id]
		if w.phys > maxPhys {
			maxPhys = w.phys
		}
		if w.clock > maxClock {
			maxClock = w.clock
		}
	}
	release := maxPhys + e.cfg.BarrierCost
	for _, id := range b.arrived {
		w := e.threads[id]
		if waited := release - w.phys; waited > 0 {
			e.stats.WaitCycles += waited
		}
		w.phys = release
		if e.cfg.Policy == PolicyDet {
			w.clock = maxClock + 1
		}
		w.status = tsRunnable
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.BarrierReleased(b.arrived)
	}
	b.arrived = nil
	e.stats.BarrierEpisodes++
}

// spawn creates a new thread at the parent's physical time. The id is the
// next index — assigned at a deterministic engine point, so handles are
// reproducible. Under the deterministic policy the child starts at the
// parent's clock + 1 and the parent ticks, mirroring package det.
func (e *Engine) spawn(parent *tstate, st Step) {
	id := len(e.threads)
	child := &tstate{id: id, prog: st.NewProg(id), phys: parent.phys}
	if e.cfg.Policy == PolicyDet {
		child.clock = parent.clock + 1
		parent.clock++
	}
	e.threads = append(e.threads, child)
	e.stats.PerThreadCycles = append(e.stats.PerThreadCycles, 0)
	e.stats.FinalClocks = append(e.stats.FinalClocks, 0)
	if st.SpawnDst != nil {
		*st.SpawnDst = int64(id)
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.Spawned(parent.id, id)
	}
}

// join blocks t until thread target finishes; invalid targets panic (a
// program bug, like unlocking an unheld mutex).
func (e *Engine) join(t *tstate, target int) {
	if target < 0 || target >= len(e.threads) || target == t.id {
		panic(fmt.Sprintf("sim: thread %d joins invalid thread %d", t.id, target))
	}
	tgt := e.threads[target]
	if tgt.status == tsDone {
		t.phys = maxI64(t.phys, tgt.phys)
		if e.cfg.Policy == PolicyDet {
			t.clock = maxI64(t.clock, tgt.clock) + 1
		}
		if e.cfg.Observer != nil {
			e.cfg.Observer.Joined(t.id, target)
		}
		return
	}
	t.status = tsJoining
	t.wantLock = target
	t.waitFrom = t.phys
}

// settleJoiners resumes joiners whose target just finished.
func (e *Engine) settleJoiners(done *tstate) {
	for _, t := range e.threads {
		if t.status != tsJoining || t.wantLock != done.id {
			continue
		}
		if waited := done.phys - t.phys; waited > 0 {
			e.stats.WaitCycles += waited
		}
		t.phys = maxI64(t.phys, done.phys)
		if e.cfg.Policy == PolicyDet {
			t.clock = maxI64(t.clock, done.clock) + 1
		}
		t.status = tsRunnable
		if e.cfg.Observer != nil {
			e.cfg.Observer.Joined(t.id, done.id)
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
