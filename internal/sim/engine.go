// Package sim is a deterministic discrete-event simulator of N hardware
// threads. It produces the cycle counts behind the paper's evaluation:
// physical time advances by the cost model's per-instruction cycles (clock
// updates included), and deterministic execution's extra cost appears as the
// cycles threads spend waiting for other threads' logical clocks to pass
// them — exactly the quantity the paper's Table I and Figure 14/15 measure.
//
// The engine is sequential and fully deterministic: it always steps the
// runnable thread with the smallest (physical time, id), so identical
// programs produce identical cycle counts and identical lock-acquisition
// traces on every run.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/diag"
)

// StepKind tags what a program thread produced when stepped.
type StepKind uint8

// Step kinds yielded by Program implementations.
const (
	// StepAdvance: the thread executed instructions (Cycles) and possibly
	// published a logical-clock increment (ClockDelta) at the END of the
	// span — programs yield at every clock-update point, so publication
	// times are exact.
	StepAdvance StepKind = iota
	// StepLock: the thread wants lock Obj. Cycles covers work before the op.
	StepLock
	// StepUnlock: the thread releases lock Obj.
	StepUnlock
	// StepBarrier: the thread arrives at barrier Obj.
	StepBarrier
	// StepDone: the thread finished.
	StepDone
	// StepSpawn: the thread creates a new thread; NewProg builds its
	// Program given the engine-assigned id, and *SpawnDst (when non-nil)
	// receives that id as the spawn handle.
	StepSpawn
	// StepJoin: the thread waits for thread Obj to finish.
	StepJoin
)

// Step is one yield from a simulated thread.
type Step struct {
	Kind       StepKind
	Cycles     int64 // physical cycles consumed by this span
	ClockDelta int64 // logical clock increment published at span end
	Obj        int   // lock/barrier id for sync steps; target thread for join

	// NewProg builds the spawned thread's program from its assigned id
	// (StepSpawn only).
	NewProg func(id int) Program
	// SpawnDst, when non-nil, receives the spawned thread's id.
	SpawnDst *int64
}

// Program is a steppable simulated thread (implemented by package interp).
// Step is called only while the thread is runnable.
type Program interface {
	Step() (Step, error)
}

// StepperInto is an optional Program extension: StepInto writes the step
// into *out instead of returning it, sparing the per-event copy of the Step
// struct through the interface return. The engine uses it when available
// (detected once per thread, never under Config.Reference — the reference
// scheduler exercises the original interface). On error *out is
// unspecified. Semantics are otherwise identical to Step.
type StepperInto interface {
	StepInto(out *Step) error
}

// SyncObserver receives synchronization events as the engine resolves them,
// in resolution order. The race detector (package interp) advances its
// vector clocks here; the hooks fire at the exact points the corresponding
// happens-before edges are created. Callbacks run synchronously on the
// engine's (single) thread and must not retain the BarrierReleased slice.
type SyncObserver interface {
	// Acquired fires when thread is granted lock (including waiter handoff).
	Acquired(thread, lock int)
	// Released fires when thread releases lock, before any handoff grant.
	Released(thread, lock int)
	// BarrierReleased fires when a barrier opens, with every participant.
	BarrierReleased(threads []int)
	// Spawned fires when parent creates child, before child's first step.
	Spawned(parent, child int)
	// Joined fires when waiter's join on target completes.
	Joined(waiter, target int)
}

// LockPolicy selects how contended locks are granted.
type LockPolicy uint8

// Lock policies.
const (
	// PolicyFCFS grants in request order (plain pthread-like mutex);
	// deterministic inside the simulator, used for baseline runs.
	PolicyFCFS LockPolicy = iota
	// PolicyDet implements Kendo's rule: an acquire decision happens only
	// when the requester's (logical clock, id) is minimal among non-excluded
	// threads; waiters queue with frozen clocks and resume at
	// max(frozen, releaser's clock)+1.
	PolicyDet
)

// Config parameterizes a simulation run.
type Config struct {
	Policy LockPolicy
	// NumLocks / NumBarriers size the sync object tables.
	NumLocks    int
	NumBarriers int
	// LockCost, UnlockCost, BarrierCost are uncontended base cycle costs.
	LockCost    int64
	UnlockCost  int64
	BarrierCost int64
	// BarrierParticipants is the arrival count that releases a barrier
	// (normally the thread count).
	BarrierParticipants int
	// MaxSteps bounds total engine steps (runaway guard); 0 means default.
	MaxSteps int64
	// RecordTrace enables the acquisition trace (lock id, thread, clock).
	RecordTrace bool
	// Observer, when non-nil, is notified of every synchronization event.
	Observer SyncObserver
	// Cancel, when non-nil, is polled every CancelEvery engine steps; a
	// non-nil return aborts the run with that error wrapped in ErrCanceled.
	// This is the cooperative cancellation point the service layer's job
	// deadlines thread down to (a context.Context's Err). Cancellation never
	// mutates simulation state, so an uncancelled run is bitwise identical
	// with or without the hook installed.
	Cancel func() error
	// CancelEvery is the polling stride for Cancel (default 1024 steps) —
	// coarse enough to keep the hot loop branch-predictable, fine enough
	// that a runaway simulation notices its deadline within microseconds.
	CancelEvery int64
	// Reference selects the original O(threads) scheduling implementation
	// (linear pickRunnable scan, re-collected sort.Slice acquirer ordering)
	// instead of the indexed run-queue heap. Both orderings are total on
	// (key, id) with distinct ids, so schedules are byte-identical; the
	// reference path is the oracle for the equivalence property tests.
	Reference bool
}

// Acquisition is one lock grant, for determinism checking. The JSON tags
// define the wire format used when traces are persisted (service layer,
// examples/replay).
type Acquisition struct {
	Lock   int   `json:"lock"`
	Thread int   `json:"thread"`
	Clock  int64 `json:"clock"` // logical clock right after the grant (0 under FCFS)
	Phys   int64 `json:"phys"`  // physical grant time
}

// Stats aggregates a finished run.
type Stats struct {
	// Makespan is the maximum per-thread finish time: the run's wall clock.
	Makespan int64
	// PerThreadCycles is each thread's finish time.
	PerThreadCycles []int64
	// WaitCycles is the total cycles threads spent blocked or spinning on
	// sync (the deterministic-execution overhead plus contention).
	WaitCycles int64
	// Acquisitions counts lock grants.
	Acquisitions int64
	// BarrierEpisodes counts completed barrier releases.
	BarrierEpisodes int64
	// Steps counts engine iterations.
	Steps int64
	// Trace holds the acquisition sequence when Config.RecordTrace is set.
	Trace []Acquisition
	// FinalClocks is each thread's logical clock at completion — the total
	// accumulated clock, used by conservation tests (precise optimizations
	// must not change it).
	FinalClocks []int64
}

// thread run states.
type tstatus uint8

const (
	tsRunnable tstatus = iota
	tsAcquiring
	tsBlocked // queued on a held lock: excluded, frozen clock
	tsBarrier // arrived at a barrier: excluded
	tsJoining // waiting for another thread to finish: excluded
	tsDone
)

type tstate struct {
	id     int
	prog   Program
	into   StepperInto // non-nil when prog implements StepperInto (optimized path)
	status tstatus
	phys   int64
	clock  int64

	wantLock int   // lock id while acquiring/blocked
	readyAt  int64 // phys time at which the pending grant decision matured
	waitFrom int64 // phys time the thread began waiting (for WaitCycles)

	// hpos is the thread's index in the engine's run-queue heap, -1 while
	// not enqueued. A thread's phys never changes while enqueued (wakeups
	// set phys before the push; the stepped thread is popped first), so the
	// heap never needs a decrease-key.
	hpos int32
}

type lockState struct {
	held    bool
	holder  int
	waiters []int // blocked thread ids in deterministic enqueue order
}

type barState struct {
	arrived []int
}

// Engine runs a set of Programs to completion under a Config.
type Engine struct {
	cfg      Config
	threads  []*tstate
	locks    []lockState
	barriers []barState
	stats    Stats

	// runq is the run-queue min-heap ordered by (phys, id): exactly the
	// runnable threads, except the one currently being stepped. Empty and
	// unused under Config.Reference.
	runq []*tstate
	// acq tracks threads in tsAcquiring so settleAcquirers — which runs
	// after every engine step — is O(1) in the common no-acquirer case
	// instead of rescanning and re-sorting every thread. acqScratch is the
	// reused (clock, id)-sorted snapshot for settlement passes.
	acq        []*tstate
	acqScratch []*tstate
}

// ErrDeadlock classifies the *diag.DeadlockError Run returns when no thread
// can make progress — the same structured report the goroutine runtime
// (internal/det) produces, so callers handle both identically.
var ErrDeadlock = diag.ErrDeadlock

// ErrStepLimit is wrapped by Run when MaxSteps is exceeded.
var ErrStepLimit = errors.New("sim: step limit exceeded")

// ErrCanceled is wrapped by Run when Config.Cancel reports cancellation; the
// hook's own error (typically a context error) is wrapped alongside it.
var ErrCanceled = errors.New("sim: run canceled")

// New creates an engine over the given per-thread programs.
func New(cfg Config, progs []Program) *Engine {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 500_000_000
	}
	if cfg.CancelEvery <= 0 {
		cfg.CancelEvery = 1024
	}
	if cfg.BarrierParticipants == 0 {
		cfg.BarrierParticipants = len(progs)
	}
	e := &Engine{
		cfg:      cfg,
		locks:    make([]lockState, cfg.NumLocks),
		barriers: make([]barState, cfg.NumBarriers),
	}
	for i, p := range progs {
		t := &tstate{id: i, prog: p, hpos: -1}
		if !cfg.Reference {
			t.into, _ = p.(StepperInto)
		}
		e.threads = append(e.threads, t)
		e.heapPush(t)
	}
	e.stats.PerThreadCycles = make([]int64, len(progs))
	e.stats.FinalClocks = make([]int64, len(progs))
	return e
}

// heapPush enqueues a runnable thread on the run queue; no-op under
// Config.Reference and when the thread is already enqueued.
func (e *Engine) heapPush(t *tstate) {
	if e.cfg.Reference || t.hpos >= 0 {
		return
	}
	t.hpos = int32(len(e.runq))
	e.runq = append(e.runq, t)
	e.heapUp(int(t.hpos))
}

// heapPop removes and returns the minimum-(phys, id) thread, nil when empty.
func (e *Engine) heapPop() *tstate {
	n := len(e.runq)
	if n == 0 {
		return nil
	}
	top := e.runq[0]
	last := e.runq[n-1]
	e.runq[n-1] = nil
	e.runq = e.runq[:n-1]
	if n > 1 {
		e.runq[0] = last
		last.hpos = 0
		e.heapDown(0)
	}
	top.hpos = -1
	return top
}

// heapLess orders the run queue by (phys, id); ids are distinct, so the
// order is total and the heap minimum equals the reference scan's pick.
func heapLess(a, b *tstate) bool {
	if a.phys != b.phys {
		return a.phys < b.phys
	}
	return a.id < b.id
}

func (e *Engine) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(e.runq[i], e.runq[parent]) {
			break
		}
		e.runq[i], e.runq[parent] = e.runq[parent], e.runq[i]
		e.runq[i].hpos = int32(i)
		e.runq[parent].hpos = int32(parent)
		i = parent
	}
}

func (e *Engine) heapDown(i int) {
	n := len(e.runq)
	for {
		least := i
		if l := 2*i + 1; l < n && heapLess(e.runq[l], e.runq[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && heapLess(e.runq[r], e.runq[least]) {
			least = r
		}
		if least == i {
			return
		}
		e.runq[i], e.runq[least] = e.runq[least], e.runq[i]
		e.runq[i].hpos = int32(i)
		e.runq[least].hpos = int32(least)
		i = least
	}
}

// Run executes the simulation to completion and returns the statistics.
func (e *Engine) Run() (*Stats, error) {
	ref := e.cfg.Reference
	// st lives outside the loop: its address crosses the StepInto interface
	// call, so an in-loop declaration would escape and heap-allocate once
	// per engine event. Every step assigns the full struct, so reuse is
	// safe.
	var st Step
	var err error
	for {
		var t *tstate
		if ref {
			t = e.pickRunnable()
		} else if len(e.runq) > 0 {
			// Peek, don't pop: the overwhelmingly common StepAdvance case
			// re-enqueues the stepped thread immediately, so leaving it at
			// the root and sifting once after its key grows replaces a full
			// pop+push pair. No heap mutation can occur between the peek and
			// the sift below (Step runs program code only).
			t = e.runq[0]
		}
		if t == nil {
			if e.allDone() {
				break
			}
			return nil, e.deadlockError()
		}
		e.stats.Steps++
		if e.stats.Steps > e.cfg.MaxSteps {
			return nil, fmt.Errorf("%w (%d)", ErrStepLimit, e.cfg.MaxSteps)
		}
		if e.cfg.Cancel != nil && e.stats.Steps%e.cfg.CancelEvery == 0 {
			if cerr := e.cfg.Cancel(); cerr != nil {
				return nil, fmt.Errorf("%w after %d steps: %w", ErrCanceled, e.stats.Steps, cerr)
			}
		}
		if t.into != nil {
			err = t.into.StepInto(&st)
		} else {
			st, err = t.prog.Step()
		}
		if err != nil {
			return nil, fmt.Errorf("sim: thread %d: %w", t.id, err)
		}
		t.phys += st.Cycles
		// ClockDelta applies on every step kind: sync steps publish the
		// thread's precise clock before the operation (Kendo reads its
		// counter exactly at synchronization points).
		t.clock += st.ClockDelta
		if !ref {
			if st.Kind == StepAdvance {
				// Status is unchanged (settlement below only touches
				// acquiring threads), so restoring the heap invariant for
				// t's larger key is the whole re-enqueue.
				e.heapDown(0)
				e.settleAcquirers(t.phys)
				continue
			}
			// Sync steps change t's status; take it out before the effect
			// handlers (and settlement) push other threads around it.
			e.heapPop()
		}
		switch st.Kind {
		case StepAdvance:
		case StepLock:
			t.status = tsAcquiring
			t.wantLock = st.Obj
			t.readyAt = t.phys
			t.waitFrom = t.phys
			if !ref {
				e.acq = append(e.acq, t)
			}
		case StepUnlock:
			e.unlock(t, st.Obj)
		case StepBarrier:
			e.barrierArrive(t, st.Obj)
		case StepDone:
			t.status = tsDone
			e.stats.PerThreadCycles[t.id] = t.phys
			e.stats.FinalClocks[t.id] = t.clock
			if t.phys > e.stats.Makespan {
				e.stats.Makespan = t.phys
			}
			e.settleJoiners(t)
		case StepSpawn:
			e.spawn(t, st)
		case StepJoin:
			e.join(t, st.Obj)
		}
		// Any step can change clocks or exclusion; settle pending acquires.
		e.settleAcquirers(t.phys)
		// The stepped thread re-enters the run queue unless the step (or
		// settlement) excluded it; wakeups elsewhere push directly.
		if !ref && t.status == tsRunnable {
			e.heapPush(t)
		}
	}
	return &e.stats, nil
}

// pickRunnable returns the runnable thread with minimal (phys, id), nil when
// none are runnable.
func (e *Engine) pickRunnable() *tstate {
	var best *tstate
	for _, t := range e.threads {
		if t.status != tsRunnable {
			continue
		}
		if best == nil || t.phys < best.phys || (t.phys == best.phys && t.id < best.id) {
			best = t
		}
	}
	return best
}

func (e *Engine) allDone() bool {
	for _, t := range e.threads {
		if t.status != tsDone {
			return false
		}
	}
	return true
}

// deadlockError assembles the same structured report internal/det produces:
// per-thread snapshots, wait-for edges, and the cycle when one exists.
func (e *Engine) deadlockError() *diag.DeadlockError {
	dd := &diag.DeadlockError{}
	for _, t := range e.threads {
		s := diag.ThreadSnapshot{ID: t.id, Clock: t.clock, Holder: -1}
		switch t.status {
		case tsDone:
			s.State = "done"
		case tsBlocked:
			s.State = "blocked"
			s.BlockedOn = fmt.Sprintf("mutex#%d", t.wantLock)
			if l := &e.locks[t.wantLock]; l.held {
				s.Holder = l.holder
			}
		case tsBarrier:
			s.State = "blocked"
			s.BlockedOn = fmt.Sprintf("barrier#%d", t.wantLock)
		case tsJoining:
			s.State = "blocked"
			s.BlockedOn = fmt.Sprintf("join(thread %d)", t.wantLock)
			s.Holder = t.wantLock
		case tsAcquiring:
			// An acquirer that never gains the turn is stuck waiting for the
			// lock it requested; report it as such.
			s.State = "blocked"
			s.BlockedOn = fmt.Sprintf("mutex#%d", t.wantLock)
			if l := &e.locks[t.wantLock]; l.held {
				s.Holder = l.holder
			}
		default:
			s.State = "runnable"
		}
		if s.State == "blocked" {
			dd.Waits = append(dd.Waits, diag.WaitEdge{
				Waiter: t.id, Resource: s.BlockedOn, Holder: s.Holder,
			})
		}
		dd.Threads = append(dd.Threads, s)
	}
	dd.Cycle = e.findCycle()
	return dd
}

// findCycle walks thread → holder-of-blocked-on-resource edges (out-degree
// at most one) from each thread in id order and returns the first cycle.
func (e *Engine) findCycle() []diag.WaitEdge {
	succ := func(t *tstate) *tstate {
		switch t.status {
		case tsBlocked, tsAcquiring:
			if l := &e.locks[t.wantLock]; l.held && e.threads[l.holder].status != tsDone {
				return e.threads[l.holder]
			}
		case tsJoining:
			if tgt := e.threads[t.wantLock]; tgt.status != tsDone {
				return tgt
			}
		}
		return nil
	}
	edge := func(t *tstate) diag.WaitEdge {
		w := diag.WaitEdge{Waiter: t.id, Holder: -1}
		switch t.status {
		case tsBlocked, tsAcquiring:
			w.Resource = fmt.Sprintf("mutex#%d", t.wantLock)
			if l := &e.locks[t.wantLock]; l.held {
				w.Holder = l.holder
			}
		case tsJoining:
			w.Resource = fmt.Sprintf("join(thread %d)", t.wantLock)
			w.Holder = t.wantLock
		}
		return w
	}
	const (
		unvisited = 0
		onPath    = 1
		finished  = 2
	)
	state := make(map[*tstate]int, len(e.threads))
	for _, start := range e.threads {
		if state[start] != unvisited {
			continue
		}
		var path []*tstate
		t := start
		for t != nil && state[t] == unvisited {
			state[t] = onPath
			path = append(path, t)
			t = succ(t)
		}
		if t != nil && state[t] == onPath {
			i := 0
			for path[i] != t {
				i++
			}
			out := make([]diag.WaitEdge, 0, len(path)-i)
			for _, w := range path[i:] {
				out = append(out, edge(w))
			}
			return out
		}
		for _, p := range path {
			state[p] = finished
		}
	}
	return nil
}

// excludedFromTurn mirrors package det: blocked lock waiters, barrier
// arrivals and finished threads do not participate in the turn predicate.
func (t *tstate) excludedFromTurn() bool {
	switch t.status {
	case tsBlocked, tsBarrier, tsJoining, tsDone:
		return true
	}
	return false
}

// hasTurn reports whether a's (clock, id) is minimal among non-excluded
// threads (Kendo's wait_for_turn).
func (e *Engine) hasTurn(a *tstate) bool {
	for _, o := range e.threads {
		if o == a || o.excludedFromTurn() {
			continue
		}
		if o.clock < a.clock || (o.clock == a.clock && o.id < a.id) {
			return false
		}
	}
	return true
}

// settleAcquirers resolves pending lock requests. Under FCFS a request
// resolves immediately; under the deterministic policy a request resolves
// when its thread gains the turn — the grant's physical time is the later of
// the request time and the step that made the turn condition true (now).
//
// It runs after every engine step, so the fast path must be O(1) when no
// thread is mid-acquire: the maintained acq list makes the common case a
// single length check, and settlement passes sort a reused scratch snapshot
// instead of re-collecting and sort.Slice-ing every thread. Settlement
// decisions and their order are identical to the reference implementation:
// both iterate acquirers by (clock, id), which is a total order.
func (e *Engine) settleAcquirers(now int64) {
	if e.cfg.Reference {
		e.settleAcquirersRef(now)
		return
	}
	if len(e.acq) == 0 {
		return
	}
	for progress := true; progress; {
		progress = false
		// Snapshot the still-acquiring threads in (clock, id) order. Clocks
		// move during settlement (grants tick), so each pass re-sorts — as
		// the reference re-collects. Insertion sort: the set is tiny
		// (bounded by the thread count) and usually nearly sorted.
		s := e.acqScratch[:0]
		for _, t := range e.acq {
			if t.status != tsAcquiring {
				continue
			}
			i := len(s)
			s = append(s, t)
			for i > 0 && acqLess(t, s[i-1]) {
				s[i] = s[i-1]
				i--
			}
			s[i] = t
		}
		e.acqScratch = s
		for _, a := range s {
			if a.status != tsAcquiring {
				continue
			}
			l := &e.locks[a.wantLock]
			switch e.cfg.Policy {
			case PolicyFCFS:
				if !l.held {
					e.grant(a, maxI64(a.phys, a.readyAt))
				} else {
					a.status = tsBlocked
					l.waiters = append(l.waiters, a.id)
				}
				progress = true
			case PolicyDet:
				if !e.hasTurn(a) {
					continue
				}
				if !l.held {
					// Kendo: tick after acquisition.
					a.clock++
					e.grant(a, maxI64(a.phys, now))
				} else {
					a.status = tsBlocked
					l.waiters = append(l.waiters, a.id)
				}
				progress = true
			}
		}
	}
	// Compact: settlement only ever removes threads from the acquiring set.
	keep := e.acq[:0]
	for _, t := range e.acq {
		if t.status == tsAcquiring {
			keep = append(keep, t)
		}
	}
	for i := len(keep); i < len(e.acq); i++ {
		e.acq[i] = nil
	}
	e.acq = keep
}

// acqLess orders acquirers by (clock, id): the reference sort.Slice
// comparator.
func acqLess(a, b *tstate) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.id < b.id
}

// settleAcquirersRef is the pre-optimization settlement loop, kept verbatim
// as the equivalence oracle (Config.Reference).
func (e *Engine) settleAcquirersRef(now int64) {
	for progress := true; progress; {
		progress = false
		for _, a := range e.acquirersInOrder() {
			l := &e.locks[a.wantLock]
			switch e.cfg.Policy {
			case PolicyFCFS:
				if !l.held {
					e.grant(a, maxI64(a.phys, a.readyAt))
				} else {
					a.status = tsBlocked
					l.waiters = append(l.waiters, a.id)
				}
				progress = true
			case PolicyDet:
				if !e.hasTurn(a) {
					continue
				}
				if !l.held {
					// Kendo: tick after acquisition.
					a.clock++
					e.grant(a, maxI64(a.phys, now))
				} else {
					a.status = tsBlocked
					l.waiters = append(l.waiters, a.id)
				}
				progress = true
			}
		}
	}
}

// acquirersInOrder returns acquiring threads ordered by (clock, id) so
// settlement decisions are deterministic and respect the turn order.
func (e *Engine) acquirersInOrder() []*tstate {
	var out []*tstate
	for _, t := range e.threads {
		if t.status == tsAcquiring {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].clock != out[j].clock {
			return out[i].clock < out[j].clock
		}
		return out[i].id < out[j].id
	})
	return out
}

// grant completes a lock acquisition at physical time at.
func (e *Engine) grant(t *tstate, at int64) {
	l := &e.locks[t.wantLock]
	l.held = true
	l.holder = t.id
	waited := at - t.waitFrom
	if waited > 0 {
		e.stats.WaitCycles += waited
	}
	t.phys = at + e.cfg.LockCost
	t.status = tsRunnable
	e.heapPush(t)
	e.stats.Acquisitions++
	if e.cfg.RecordTrace {
		e.stats.Trace = append(e.stats.Trace, Acquisition{
			Lock: t.wantLock, Thread: t.id, Clock: t.clock, Phys: t.phys,
		})
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.Acquired(t.id, t.wantLock)
	}
}

// unlock releases a lock and hands it to the first queued waiter, if any.
func (e *Engine) unlock(t *tstate, obj int) {
	l := &e.locks[obj]
	if !l.held || l.holder != t.id {
		panic(fmt.Sprintf("sim: thread %d unlocks lock %d it does not hold", t.id, obj))
	}
	t.phys += e.cfg.UnlockCost
	if e.cfg.Policy == PolicyDet {
		t.clock++
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.Released(t.id, obj)
	}
	if len(l.waiters) == 0 {
		l.held = false
		l.holder = -1
		return
	}
	wid := l.waiters[0]
	l.waiters = l.waiters[1:]
	w := e.threads[wid]
	if e.cfg.Policy == PolicyDet {
		// Kendo semantics: the waiter's clock was paused while blocked and
		// resumes where it froze, ticking once for the acquisition. Keeping
		// the frozen clock (rather than jumping to the releaser's) is what
		// makes high-lock-frequency programs pay the paper's deterministic
		// round-robin cost: other threads must wait for the slow clock to
		// catch up before their own acquisitions.
		w.clock++
	}
	l.holder = wid
	waited := t.phys - w.waitFrom
	if waited > 0 {
		e.stats.WaitCycles += waited
	}
	w.phys = maxI64(w.phys, t.phys) + e.cfg.LockCost
	w.status = tsRunnable
	e.heapPush(w)
	e.stats.Acquisitions++
	if e.cfg.RecordTrace {
		e.stats.Trace = append(e.stats.Trace, Acquisition{
			Lock: obj, Thread: wid, Clock: w.clock, Phys: w.phys,
		})
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.Acquired(wid, obj)
	}
}

// barrierArrive handles a barrier arrival, releasing everyone on the last.
func (e *Engine) barrierArrive(t *tstate, obj int) {
	b := &e.barriers[obj]
	t.status = tsBarrier
	t.waitFrom = t.phys
	b.arrived = append(b.arrived, t.id)
	if len(b.arrived) < e.cfg.BarrierParticipants {
		return
	}
	var maxPhys, maxClock int64
	for _, id := range b.arrived {
		w := e.threads[id]
		if w.phys > maxPhys {
			maxPhys = w.phys
		}
		if w.clock > maxClock {
			maxClock = w.clock
		}
	}
	release := maxPhys + e.cfg.BarrierCost
	for _, id := range b.arrived {
		w := e.threads[id]
		if waited := release - w.phys; waited > 0 {
			e.stats.WaitCycles += waited
		}
		w.phys = release
		if e.cfg.Policy == PolicyDet {
			w.clock = maxClock + 1
		}
		w.status = tsRunnable
		e.heapPush(w)
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.BarrierReleased(b.arrived)
	}
	b.arrived = b.arrived[:0]
	e.stats.BarrierEpisodes++
}

// spawn creates a new thread at the parent's physical time. The id is the
// next index — assigned at a deterministic engine point, so handles are
// reproducible. Under the deterministic policy the child starts at the
// parent's clock + 1 and the parent ticks, mirroring package det.
func (e *Engine) spawn(parent *tstate, st Step) {
	id := len(e.threads)
	child := &tstate{id: id, prog: st.NewProg(id), phys: parent.phys, hpos: -1}
	if !e.cfg.Reference {
		child.into, _ = child.prog.(StepperInto)
	}
	if e.cfg.Policy == PolicyDet {
		child.clock = parent.clock + 1
		parent.clock++
	}
	e.threads = append(e.threads, child)
	e.heapPush(child)
	e.stats.PerThreadCycles = append(e.stats.PerThreadCycles, 0)
	e.stats.FinalClocks = append(e.stats.FinalClocks, 0)
	if st.SpawnDst != nil {
		*st.SpawnDst = int64(id)
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.Spawned(parent.id, id)
	}
}

// join blocks t until thread target finishes; invalid targets panic (a
// program bug, like unlocking an unheld mutex).
func (e *Engine) join(t *tstate, target int) {
	if target < 0 || target >= len(e.threads) || target == t.id {
		panic(fmt.Sprintf("sim: thread %d joins invalid thread %d", t.id, target))
	}
	tgt := e.threads[target]
	if tgt.status == tsDone {
		t.phys = maxI64(t.phys, tgt.phys)
		if e.cfg.Policy == PolicyDet {
			t.clock = maxI64(t.clock, tgt.clock) + 1
		}
		if e.cfg.Observer != nil {
			e.cfg.Observer.Joined(t.id, target)
		}
		return
	}
	t.status = tsJoining
	t.wantLock = target
	t.waitFrom = t.phys
}

// settleJoiners resumes joiners whose target just finished.
func (e *Engine) settleJoiners(done *tstate) {
	for _, t := range e.threads {
		if t.status != tsJoining || t.wantLock != done.id {
			continue
		}
		if waited := done.phys - t.phys; waited > 0 {
			e.stats.WaitCycles += waited
		}
		t.phys = maxI64(t.phys, done.phys)
		if e.cfg.Policy == PolicyDet {
			t.clock = maxI64(t.clock, done.clock) + 1
		}
		t.status = tsRunnable
		e.heapPush(t)
		if e.cfg.Observer != nil {
			e.cfg.Observer.Joined(t.id, done.id)
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
