package sim

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/diag"
)

// scriptProg replays a fixed list of steps.
type scriptProg struct {
	steps []Step
	pos   int
}

func (p *scriptProg) Step() (Step, error) {
	if p.pos >= len(p.steps) {
		return Step{}, errors.New("script exhausted")
	}
	s := p.steps[p.pos]
	p.pos++
	return s, nil
}

func adv(cycles, clock int64) Step {
	return Step{Kind: StepAdvance, Cycles: cycles, ClockDelta: clock}
}
func lock(obj int) Step   { return Step{Kind: StepLock, Obj: obj} }
func unlock(obj int) Step { return Step{Kind: StepUnlock, Obj: obj} }
func barrier(obj int) Step {
	return Step{Kind: StepBarrier, Obj: obj}
}
func done() Step { return Step{Kind: StepDone} }

func run(t *testing.T, cfg Config, progs ...[]Step) *Stats {
	t.Helper()
	var ps []Program
	for _, s := range progs {
		ps = append(ps, &scriptProg{steps: s})
	}
	eng := New(cfg, ps)
	stats, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats
}

func TestSingleThreadMakespan(t *testing.T) {
	stats := run(t, Config{NumLocks: 1},
		[]Step{adv(100, 0), lock(0), unlock(0), adv(50, 0), done()})
	if stats.Makespan != 150 {
		t.Fatalf("makespan = %d, want 150", stats.Makespan)
	}
	if stats.Acquisitions != 1 {
		t.Fatalf("acquisitions = %d", stats.Acquisitions)
	}
}

func TestLockCostsCharged(t *testing.T) {
	stats := run(t, Config{NumLocks: 1, LockCost: 10, UnlockCost: 5},
		[]Step{lock(0), unlock(0), done()})
	if stats.Makespan != 15 {
		t.Fatalf("makespan = %d, want 15", stats.Makespan)
	}
}

func TestFCFSGrantsInRequestOrder(t *testing.T) {
	// Thread 0 reaches the lock at t=10, thread 1 at t=5: FCFS grants 1 first.
	stats := run(t, Config{NumLocks: 1, RecordTrace: true},
		[]Step{adv(10, 0), lock(0), adv(100, 0), unlock(0), done()},
		[]Step{adv(5, 0), lock(0), adv(1, 0), unlock(0), done()},
	)
	if len(stats.Trace) != 2 {
		t.Fatalf("trace len = %d", len(stats.Trace))
	}
	if stats.Trace[0].Thread != 1 {
		t.Fatalf("first grant to thread %d, want 1 (earlier request)", stats.Trace[0].Thread)
	}
}

func TestDetGrantsInClockOrder(t *testing.T) {
	// Thread 0 requests physically first but with the HIGHER clock; the
	// deterministic policy grants thread 1 (lower clock) first.
	stats := run(t, Config{Policy: PolicyDet, NumLocks: 1, RecordTrace: true},
		[]Step{adv(5, 100), lock(0), adv(1, 1), unlock(0), done()},
		[]Step{adv(50, 10), lock(0), adv(1, 1), unlock(0), done()},
	)
	if stats.Trace[0].Thread != 1 {
		t.Fatalf("first grant to thread %d, want 1 (lower clock)", stats.Trace[0].Thread)
	}
	// Thread 0 must have waited for thread 1's clock to pass 100.
	if stats.WaitCycles == 0 {
		t.Fatalf("expected turn-waiting cycles")
	}
}

func TestDetTieBreakById(t *testing.T) {
	stats := run(t, Config{Policy: PolicyDet, NumLocks: 1, RecordTrace: true},
		[]Step{adv(9, 50), lock(0), adv(1, 1), unlock(0), done()},
		[]Step{adv(5, 50), lock(0), adv(1, 1), unlock(0), done()},
	)
	if stats.Trace[0].Thread != 0 {
		t.Fatalf("tie must go to thread 0, got %d", stats.Trace[0].Thread)
	}
}

func TestDetWaiterResumesAtFrozenClockPlusOne(t *testing.T) {
	// Thread 0 (clock 10) takes the lock and holds it for 1000 cycles while
	// pushing its clock to 2000; thread 1 (clock 20) blocks and must resume
	// at 20+1, independent of the holder's clock.
	stats := run(t, Config{Policy: PolicyDet, NumLocks: 1, RecordTrace: true},
		[]Step{adv(1, 10), lock(0), adv(1000, 2000), unlock(0), done()},
		[]Step{adv(2, 20), lock(0), adv(1, 0), unlock(0), done()},
	)
	if len(stats.Trace) != 2 {
		t.Fatalf("trace len = %d", len(stats.Trace))
	}
	second := stats.Trace[1]
	if second.Thread != 1 || second.Clock != 21 {
		t.Fatalf("second grant = %+v, want thread 1 at clock 21", second)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	mk := func(work int64) []Step {
		return []Step{adv(work, work), barrier(0), adv(10, 10), done()}
	}
	stats := run(t, Config{NumBarriers: 1, Policy: PolicyDet, BarrierCost: 7},
		mk(100), mk(300), mk(200))
	// All threads leave at max(arrivals)+cost = 307, finish at 317.
	for id, c := range stats.PerThreadCycles {
		if c != 317 {
			t.Fatalf("thread %d finished at %d, want 317", id, c)
		}
	}
	if stats.BarrierEpisodes != 1 {
		t.Fatalf("episodes = %d", stats.BarrierEpisodes)
	}
}

func TestDeadlockReported(t *testing.T) {
	ps := []Program{
		&scriptProg{steps: []Step{lock(0), adv(10, 0), lock(1), unlock(1), unlock(0), done()}},
		&scriptProg{steps: []Step{adv(5, 0), lock(1), lock(0), unlock(0), unlock(1), done()}},
	}
	eng := New(Config{NumLocks: 2}, ps)
	_, err := eng.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// The report is structured: it names the exact ABBA wait-for cycle.
	var dd *diag.DeadlockError
	if !errors.As(err, &dd) {
		t.Fatalf("err = %v, want *diag.DeadlockError", err)
	}
	wantCycle := []diag.WaitEdge{
		{Waiter: 0, Resource: "mutex#1", Holder: 1},
		{Waiter: 1, Resource: "mutex#0", Holder: 0},
	}
	if len(dd.Cycle) != len(wantCycle) {
		t.Fatalf("cycle = %+v, want %+v", dd.Cycle, wantCycle)
	}
	for i, e := range dd.Cycle {
		if e != wantCycle[i] {
			t.Fatalf("cycle[%d] = %+v, want %+v", i, e, wantCycle[i])
		}
	}
	for _, s := range dd.Threads {
		if s.State != "blocked" {
			t.Fatalf("thread %d state = %q, want blocked", s.ID, s.State)
		}
	}
}

func TestStepLimit(t *testing.T) {
	// An endless program trips the step limit.
	endless := &endlessProg{}
	eng := New(Config{MaxSteps: 10}, []Program{endless})
	_, err := eng.Run()
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

type endlessProg struct{}

func (p *endlessProg) Step() (Step, error) { return adv(1, 1), nil }

func TestUnlockNotHeldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("unlock of unheld lock must panic")
		}
	}()
	ps := []Program{&scriptProg{steps: []Step{unlock(0), done()}}}
	eng := New(Config{NumLocks: 1}, ps)
	_, _ = eng.Run()
}

func TestWaitCyclesAccounting(t *testing.T) {
	// Thread 1 reaches a held lock at t=5 and is granted at the holder's
	// release (t=100): ~95 cycles of waiting must be recorded.
	stats := run(t, Config{NumLocks: 1, RecordTrace: true},
		[]Step{lock(0), adv(100, 0), unlock(0), done()},
		[]Step{adv(5, 0), lock(0), unlock(0), done()},
	)
	if stats.WaitCycles < 90 {
		t.Fatalf("wait cycles = %d, want >= 90", stats.WaitCycles)
	}
}

// Property: under PolicyDet with two single-acquisition threads, the thread
// with the lower (clock, id) always acquires first, for any physical timing.
func TestDetOrderProperty(t *testing.T) {
	f := func(physA, physB uint16, clockA, clockB uint16) bool {
		stats := run(t, Config{Policy: PolicyDet, NumLocks: 1, RecordTrace: true},
			[]Step{adv(int64(physA), int64(clockA)), lock(0), adv(1, 1), unlock(0), done()},
			[]Step{adv(int64(physB), int64(clockB)), lock(0), adv(1, 1), unlock(0), done()},
		)
		want := 0
		if int64(clockB) < int64(clockA) {
			want = 1
		}
		return stats.Trace[0].Thread == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
