package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func build(events [][3]int64) *Schedule {
	s := New()
	for _, e := range events {
		s.Record(int(e[0]), int(e[1]), e[2])
	}
	return s
}

func TestRecordAndLen(t *testing.T) {
	s := build([][3]int64{{0, 1, 10}, {1, 2, 20}})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	ev := s.Events()
	if ev[0].Seq != 0 || ev[1].Seq != 1 {
		t.Fatalf("sequence numbers wrong: %+v", ev)
	}
	if ev[1].Lock != 1 || ev[1].Thread != 2 || ev[1].Clock != 20 {
		t.Fatalf("event = %+v", ev[1])
	}
}

func TestHashEquality(t *testing.T) {
	a := build([][3]int64{{0, 1, 10}, {1, 2, 20}})
	b := build([][3]int64{{0, 1, 10}, {1, 2, 20}})
	if a.Hash() != b.Hash() {
		t.Fatalf("equal schedules must hash equal")
	}
	c := build([][3]int64{{0, 1, 10}, {1, 2, 21}})
	if a.Hash() == c.Hash() {
		t.Fatalf("different schedules should hash differently")
	}
}

func TestCompareIdentical(t *testing.T) {
	a := build([][3]int64{{0, 1, 10}})
	b := build([][3]int64{{0, 1, 10}})
	d := Compare(a, b)
	if d.Diverged {
		t.Fatalf("divergence on identical schedules: %s", d)
	}
	if !strings.Contains(d.String(), "identical") {
		t.Fatalf("string = %q", d)
	}
}

func TestCompareEventMismatch(t *testing.T) {
	a := build([][3]int64{{0, 1, 10}, {0, 2, 20}})
	b := build([][3]int64{{0, 1, 10}, {0, 3, 20}})
	d := Compare(a, b)
	if !d.Diverged || d.Index != 1 {
		t.Fatalf("divergence = %+v", d)
	}
	if !strings.Contains(d.String(), "thread 2") || !strings.Contains(d.String(), "thread 3") {
		t.Fatalf("string = %q", d)
	}
}

func TestCompareLengthMismatch(t *testing.T) {
	a := build([][3]int64{{0, 1, 10}})
	b := build([][3]int64{{0, 1, 10}, {0, 2, 20}})
	d := Compare(a, b)
	if !d.Diverged || d.Verdict != "length mismatch" {
		t.Fatalf("divergence = %+v", d)
	}
	if !strings.Contains(d.String(), "length mismatch") {
		t.Fatalf("string = %q", d)
	}
}

func TestFromSim(t *testing.T) {
	s := FromSim([]sim.Acquisition{
		{Lock: 3, Thread: 1, Clock: 42},
		{Lock: 0, Thread: 2, Clock: 50},
	})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Events()[0].Lock != 3 {
		t.Fatalf("events = %+v", s.Events())
	}
}

func TestCheckRuns(t *testing.T) {
	a := build([][3]int64{{0, 1, 10}})
	b := build([][3]int64{{0, 1, 10}})
	if err := CheckRuns([]*Schedule{a, b}); err != nil {
		t.Fatalf("CheckRuns: %v", err)
	}
	c := build([][3]int64{{0, 2, 10}})
	err := CheckRuns([]*Schedule{a, b, c})
	if err == nil || !strings.Contains(err.Error(), "run 2") {
		t.Fatalf("err = %v, want run 2 divergence", err)
	}
	if err := CheckRuns(nil); err != nil {
		t.Fatalf("empty runs: %v", err)
	}
}

// Property: Compare agrees with Hash (divergence <=> hashes differ, modulo
// the astronomically unlikely collision, which the generator can't hit).
func TestCompareHashConsistency(t *testing.T) {
	f := func(evs []uint8, mutate bool, at uint8) bool {
		if len(evs) == 0 {
			return true
		}
		var raw [][3]int64
		for i, e := range evs {
			raw = append(raw, [3]int64{int64(e % 4), int64(e % 3), int64(i)})
		}
		a := build(raw)
		rawB := append([][3]int64{}, raw...)
		if mutate {
			i := int(at) % len(rawB)
			rawB[i] = [3]int64{rawB[i][0], rawB[i][1] + 1, rawB[i][2]}
		}
		b := build(rawB)
		d := Compare(a, b)
		if mutate {
			return d.Diverged && a.Hash() != b.Hash()
		}
		return !d.Diverged && a.Hash() == b.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
