package trace

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// randomSchedule builds a schedule with n pseudo-random events.
func randomSchedule(rng *rand.Rand, n int) *Schedule {
	s := New()
	clock := int64(0)
	for i := 0; i < n; i++ {
		clock += rng.Int63n(50)
		s.Record(rng.Intn(8), rng.Intn(6), clock)
	}
	return s
}

// TestScheduleJSONRoundTrip is the round-trip property: for any schedule,
// Unmarshal(Marshal(s)) compares identical to s and preserves its hash.
func TestScheduleJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomSchedule(rng, rng.Intn(200))
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		got := New()
		if err := json.Unmarshal(data, got); err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		if d := Compare(s, got); d.Diverged {
			t.Fatalf("seed %d: round trip diverged: %s", seed, d)
		}
		if s.Hash() != got.Hash() {
			t.Fatalf("seed %d: hash changed across round trip", seed)
		}
		// Serialization is canonical: re-marshaling yields identical bytes.
		again, err := json.Marshal(got)
		if err != nil {
			t.Fatalf("seed %d: re-marshal: %v", seed, err)
		}
		if string(data) != string(again) {
			t.Fatalf("seed %d: marshaling is not canonical", seed)
		}
	}
}

// TestScheduleJSONOverwrites verifies Unmarshal replaces prior contents
// (loading into a reused schedule must not append).
func TestScheduleJSONOverwrites(t *testing.T) {
	src := New()
	src.Record(1, 0, 10)
	data, _ := json.Marshal(src)

	dst := New()
	dst.Record(7, 3, 99)
	dst.Record(2, 1, 100)
	if err := json.Unmarshal(data, dst); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if d := Compare(src, dst); d.Diverged {
		t.Fatalf("unmarshal did not replace contents: %s", d)
	}
}

// TestScheduleJSONRejectsCorruptSeq: a tampered sequence numbering fails the
// load instead of silently renumbering.
func TestScheduleJSONRejectsCorruptSeq(t *testing.T) {
	bad := []byte(`{"events":[{"seq":3,"lock":0,"thread":0,"clock":1}]}`)
	if err := json.Unmarshal(bad, New()); err == nil {
		t.Fatal("corrupt seq accepted")
	}
}

// TestAcquisitionJSONRoundTrip round-trips simulator acquisition traces,
// including conversion through FromSim.
func TestAcquisitionJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		var acqs []sim.Acquisition
		phys := int64(0)
		for i := 0; i < rng.Intn(100); i++ {
			phys += rng.Int63n(30)
			acqs = append(acqs, sim.Acquisition{
				Lock: rng.Intn(8), Thread: rng.Intn(6), Clock: rng.Int63n(1000), Phys: phys,
			})
		}
		data, err := json.Marshal(acqs)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		var got []sim.Acquisition
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		if len(got) != len(acqs) {
			t.Fatalf("seed %d: length %d != %d", seed, len(got), len(acqs))
		}
		for i := range acqs {
			if acqs[i] != got[i] {
				t.Fatalf("seed %d: acquisition %d: %+v != %+v", seed, i, got[i], acqs[i])
			}
		}
		// The schedule built from the reloaded trace matches the original.
		if d := Compare(FromSim(acqs), FromSim(got)); d.Diverged {
			t.Fatalf("seed %d: FromSim diverged after round trip: %s", seed, d)
		}
	}
}
