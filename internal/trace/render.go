package trace

import (
	"errors"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/diag"
)

// Failure-report rendering. The runtime and simulator return structured
// failure errors (internal/diag); this file turns them into the human-facing
// reports the tools and examples print. Rendering lives next to the schedule
// machinery because a failure report is the same kind of evidence a schedule
// is: a deterministic artifact of the run, identical across re-runs, meant
// for diffing and debugging.

// FormatSnapshots renders per-thread snapshots as an aligned table.
func FormatSnapshots(threads []diag.ThreadSnapshot) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "thread\tclock\tstate\tblocked on\tlast acquisition")
	for _, t := range threads {
		blocked := t.BlockedOn
		if blocked != "" && t.Holder >= 0 {
			blocked += fmt.Sprintf(" (held by thread %d)", t.Holder)
		}
		if blocked == "" {
			blocked = "-"
		}
		last := t.LastAcq
		if last == "" {
			last = "-"
		}
		fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%s\n", t.ID, t.Clock, t.State, blocked, last)
	}
	w.Flush()
	return sb.String()
}

// FormatDeadlock renders the full deadlock report: the wait-for cycle, every
// wait edge, and the per-thread snapshot table.
func FormatDeadlock(dd *diag.DeadlockError) string {
	var sb strings.Builder
	sb.WriteString("DEADLOCK: no thread can make progress\n")
	fmt.Fprintf(&sb, "cycle: %s\n", diag.FormatCycle(dd.Cycle))
	if len(dd.Waits) > 0 {
		sb.WriteString("waits:\n")
		for _, e := range dd.Waits {
			if e.Holder >= 0 {
				fmt.Fprintf(&sb, "  thread %d -> %s (held by thread %d)\n", e.Waiter, e.Resource, e.Holder)
			} else {
				fmt.Fprintf(&sb, "  thread %d -> %s\n", e.Waiter, e.Resource)
			}
		}
	}
	sb.WriteString(FormatSnapshots(dd.Threads))
	return sb.String()
}

// FormatWatchdog renders a watchdog stall report.
func FormatWatchdog(we *diag.WatchdogError) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "STALLED: no clock advance for %v (livelock)\n", we.NoProgressFor)
	sb.WriteString(FormatSnapshots(we.Threads))
	return sb.String()
}

// FormatRace renders the full data-race report: the address, both accesses
// with vector clocks and locksets, and the remediation hint.
func FormatRace(re *diag.RaceError) string {
	var sb strings.Builder
	sb.WriteString("DATA RACE: weak determinism voided by unsynchronized accesses\n")
	fmt.Fprintf(&sb, "address: %s[%d] (flat addr %d)\n", re.Sym, re.Index, re.Addr)
	for _, a := range []diag.RaceAccess{re.First, re.Second} {
		fmt.Fprintf(&sb, "  %s\n", a)
		if len(a.VC) > 0 {
			fmt.Fprintf(&sb, "    vector clock: %v\n", a.VC)
		}
	}
	sb.WriteString("the accesses share no lock and neither happens-before the other;\n")
	sb.WriteString("the deterministic schedule reproduces this report on every run\n")
	return sb.String()
}

// FormatDivergence renders a schedule-divergence report.
func FormatDivergence(de *diag.DivergenceError) string {
	var sb strings.Builder
	sb.WriteString("DIVERGENCE: synchronization order differs from the reference run\n")
	if de.Want == nil || de.Got == nil {
		fmt.Fprintf(&sb, "run %d has %d event(s), reference has %d: diverges at event %d\n",
			de.Run, de.GotLen, de.WantLen, de.Index)
		return sb.String()
	}
	fmt.Fprintf(&sb, "run %d, event %d:\n", de.Run, de.Index)
	fmt.Fprintf(&sb, "  expected: %s\n", de.Want)
	fmt.Fprintf(&sb, "  observed: %s\n", de.Got)
	sb.WriteString("a divergence means an input changed or a data race corrupted a clock;\n")
	sb.WriteString("run the simulator backend with race detection to locate the access pair\n")
	return sb.String()
}

// FormatFailure renders any runtime failure error — deadlock, watchdog
// stall, contained panic, misuse, data race, schedule divergence — into the
// full diagnostic report; other errors render as their Error() string.
// Joined errors render every part.
func FormatFailure(err error) string {
	if err == nil {
		return "ok"
	}
	var parts []string
	var dd *diag.DeadlockError
	if errors.As(err, &dd) {
		parts = append(parts, FormatDeadlock(dd))
	}
	var we *diag.WatchdogError
	if errors.As(err, &we) {
		parts = append(parts, FormatWatchdog(we))
	}
	var re *diag.RaceError
	if errors.As(err, &re) {
		parts = append(parts, FormatRace(re))
	}
	var de *diag.DivergenceError
	if errors.As(err, &de) {
		parts = append(parts, FormatDivergence(de))
	}
	var pe *diag.ThreadPanicError
	if errors.As(err, &pe) {
		parts = append(parts, fmt.Sprintf("PANIC: %v\n", pe))
	}
	var mis *diag.MisuseError
	if errors.As(err, &mis) {
		parts = append(parts, fmt.Sprintf("MISUSE: %v\n", mis))
	}
	if len(parts) == 0 {
		return err.Error()
	}
	return strings.Join(parts, "")
}
