package trace

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/diag"
)

func sampleDeadlock() *diag.DeadlockError {
	return &diag.DeadlockError{
		Cycle: []diag.WaitEdge{
			{Waiter: 0, Resource: "mutex#1", Holder: 1},
			{Waiter: 1, Resource: "mutex#0", Holder: 0},
		},
		Waits: []diag.WaitEdge{
			{Waiter: 0, Resource: "mutex#1", Holder: 1},
			{Waiter: 1, Resource: "mutex#0", Holder: 0},
		},
		Threads: []diag.ThreadSnapshot{
			{ID: 0, Clock: 21, State: "blocked", BlockedOn: "mutex#1", Holder: 1, LastAcq: "mutex#0@11"},
			{ID: 1, Clock: 21, State: "blocked", BlockedOn: "mutex#0", Holder: 0, LastAcq: "mutex#1@16"},
		},
	}
}

func TestFormatDeadlock(t *testing.T) {
	out := FormatDeadlock(sampleDeadlock())
	for _, want := range []string{
		"DEADLOCK",
		"thread 0 -[mutex#1]-> thread 1 -[mutex#0]-> thread 0",
		"held by thread 1",
		"mutex#0@11",
		"blocked",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFormatSnapshotsAlignsColumns(t *testing.T) {
	out := FormatSnapshots([]diag.ThreadSnapshot{
		{ID: 0, Clock: 5, State: "runnable", Holder: -1},
		{ID: 1, Clock: 100000, State: "blocked", BlockedOn: "barrier#0 (arrived 1 of 2)", Holder: -1},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "blocked on") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.Contains(out, "arrived 1 of 2") {
		t.Fatalf("missing collective-wait detail:\n%s", out)
	}
}

func TestFormatFailureDispatch(t *testing.T) {
	dd := sampleDeadlock()
	if out := FormatFailure(fmt.Errorf("run: %w", dd)); !strings.Contains(out, "DEADLOCK") {
		t.Fatalf("wrapped deadlock not rendered:\n%s", out)
	}
	we := &diag.WatchdogError{Threads: []diag.ThreadSnapshot{{ID: 0, State: "runnable", Holder: -1}}}
	if out := FormatFailure(we); !strings.Contains(out, "STALLED") {
		t.Fatalf("watchdog not rendered:\n%s", out)
	}
	pe := &diag.ThreadPanicError{ThreadID: 2, Clock: 9, Value: "boom"}
	if out := FormatFailure(pe); !strings.Contains(out, "PANIC") || !strings.Contains(out, "boom") {
		t.Fatalf("panic not rendered:\n%s", out)
	}
	if out := FormatFailure(fmt.Errorf("plain")); out != "plain" {
		t.Fatalf("plain error = %q", out)
	}
	if out := FormatFailure(nil); out != "ok" {
		t.Fatalf("nil = %q", out)
	}
}

func TestFormatRaceReport(t *testing.T) {
	re := &diag.RaceError{
		Sym: "shared", Index: 0, Addr: 12,
		First:  diag.RaceAccess{Thread: 0, Write: true, Clock: 1, VC: []int64{1, 0}, Site: "main.entry+3"},
		Second: diag.RaceAccess{Thread: 1, Write: true, Clock: 1, VC: []int64{0, 1}, Lockset: []int{2}, Site: "main.entry+3"},
	}
	out := FormatFailure(fmt.Errorf("sim: thread 1: %w", re))
	for _, want := range []string{"DATA RACE", "shared[0]", "thread 0", "thread 1", "[1 0]", "[0 1]", "main.entry+3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("race report missing %q:\n%s", want, out)
		}
	}
}

func TestFormatDivergenceReport(t *testing.T) {
	de := &diag.DivergenceError{
		Run: 1, Index: 5,
		Want:    &diag.DivergenceEvent{Seq: 5, Lock: 0, Thread: 2, Clock: 17},
		Got:     &diag.DivergenceEvent{Seq: 5, Lock: 0, Thread: 1, Clock: 15},
		WantLen: 9, GotLen: 6,
	}
	out := FormatFailure(de)
	for _, want := range []string{"DIVERGENCE", "event 5", "lock 0 by thread 2 at clock 17", "lock 0 by thread 1 at clock 15"} {
		if !strings.Contains(out, want) {
			t.Fatalf("divergence report missing %q:\n%s", want, out)
		}
	}
	trunc := &diag.DivergenceError{Run: 1, Index: 6, Want: &diag.DivergenceEvent{Seq: 6, Lock: 1, Thread: 0, Clock: 20}, WantLen: 9, GotLen: 6}
	out = FormatFailure(trunc)
	if !strings.Contains(out, "DIVERGENCE") {
		t.Fatalf("truncated divergence not rendered:\n%s", out)
	}
}
