package trace

import (
	"encoding/json"
	"fmt"
)

// JSON wire format. A schedule serializes as {"events":[...]} so the format
// can grow (e.g. a version field) without breaking stored schedules — the
// service result cache and examples/replay persist schedules in this form.
// Determinism makes the format canonical: the same program and config always
// serialize to the same bytes.
type scheduleJSON struct {
	Events []Event `json:"events"`
}

// MarshalJSON serializes the schedule's events.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	return json.Marshal(scheduleJSON{Events: s.Events()})
}

// UnmarshalJSON replaces the schedule's contents with the serialized events.
// Sequence numbers must be dense and ascending from 0 (the invariant Record
// maintains), so a corrupted or hand-edited file fails loudly instead of
// producing false divergence reports.
func (s *Schedule) UnmarshalJSON(b []byte) error {
	var w scheduleJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	for i, e := range w.Events {
		if e.Seq != int64(i) {
			return fmt.Errorf("trace: corrupt schedule: event %d has seq %d", i, e.Seq)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events[:0], w.Events...)
	return nil
}
