// Package trace records and compares synchronization schedules: the
// evidence for weak determinism. A schedule is the global sequence of lock
// acquisitions (lock id, thread id, logical clock); two runs of the same
// program are *weakly deterministic* exactly when their schedules are
// identical (§I–II of the paper).
package trace

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"repro/internal/diag"
	"repro/internal/sim"
)

// Event is one synchronization event in a schedule. The JSON tags define the
// wire format used by Schedule.MarshalJSON and the service layer.
type Event struct {
	Seq    int64 `json:"seq"`    // global sequence number
	Lock   int   `json:"lock"`   // lock identity
	Thread int   `json:"thread"` // acquiring thread
	Clock  int64 `json:"clock"`  // logical clock right after the acquisition
}

// Schedule is an ordered list of synchronization events.
type Schedule struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty schedule.
func New() *Schedule { return &Schedule{} }

// Record appends an event; safe for concurrent use (the det runtime calls it
// under its global event lock, the simulator single-threaded).
func (s *Schedule) Record(lock, thread int, clock int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, Event{
		Seq: int64(len(s.events)), Lock: lock, Thread: thread, Clock: clock,
	})
}

// Len returns the number of recorded events.
func (s *Schedule) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Events returns a copy of the recorded events.
func (s *Schedule) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Hash returns a 64-bit FNV-1a digest of the schedule; equal schedules have
// equal hashes, and a hash mismatch is proof of divergence.
func (s *Schedule) Hash() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, e := range s.events {
		put(int64(e.Lock))
		put(int64(e.Thread))
		put(e.Clock)
	}
	return h.Sum64()
}

// Divergence describes the first point where two schedules differ.
type Divergence struct {
	Index    int
	A, B     *Event // nil when one schedule is a prefix of the other
	ALen     int
	BLen     int
	Verdict  string
	Diverged bool
}

// String formats the divergence report.
func (d *Divergence) String() string {
	if !d.Diverged {
		return fmt.Sprintf("schedules identical (%d events)", d.ALen)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "schedules diverge at event %d: ", d.Index)
	if d.A == nil || d.B == nil {
		fmt.Fprintf(&sb, "length mismatch (%d vs %d events)", d.ALen, d.BLen)
		return sb.String()
	}
	fmt.Fprintf(&sb, "run A: lock %d by thread %d at clock %d; run B: lock %d by thread %d at clock %d",
		d.A.Lock, d.A.Thread, d.A.Clock, d.B.Lock, d.B.Thread, d.B.Clock)
	return sb.String()
}

// Compare locates the first difference between two schedules.
func Compare(a, b *Schedule) *Divergence {
	ea, eb := a.Events(), b.Events()
	d := &Divergence{ALen: len(ea), BLen: len(eb)}
	n := len(ea)
	if len(eb) < n {
		n = len(eb)
	}
	for i := 0; i < n; i++ {
		if ea[i].Lock != eb[i].Lock || ea[i].Thread != eb[i].Thread || ea[i].Clock != eb[i].Clock {
			d.Diverged = true
			d.Index = i
			d.A = &ea[i]
			d.B = &eb[i]
			d.Verdict = "event mismatch"
			return d
		}
	}
	if len(ea) != len(eb) {
		d.Diverged = true
		d.Index = n
		d.Verdict = "length mismatch"
		return d
	}
	d.Verdict = "identical"
	return d
}

// FromSim converts a simulator acquisition trace to a Schedule.
func FromSim(acqs []sim.Acquisition) *Schedule {
	s := New()
	for _, a := range acqs {
		s.Record(a.Lock, a.Thread, a.Clock)
	}
	return s
}

// CheckRuns verifies that every schedule in runs is identical to the first,
// returning nil on success or a typed *diag.DivergenceError naming the
// diverging run and the first mismatched event (classify with
// errors.Is(err, diag.ErrDivergence), extract with errors.As).
func CheckRuns(runs []*Schedule) error {
	if len(runs) < 2 {
		return nil
	}
	ref := runs[0]
	for i, r := range runs[1:] {
		if d := Compare(ref, r); d.Diverged {
			return DivergenceError(i+1, d)
		}
	}
	return nil
}

// DivergenceError converts a Compare result into the typed report, tagged
// with the index of the diverging run. It returns nil when d records no
// divergence.
func DivergenceError(run int, d *Divergence) *diag.DivergenceError {
	if d == nil || !d.Diverged {
		return nil
	}
	de := &diag.DivergenceError{
		Run:     run,
		Index:   d.Index,
		WantLen: d.ALen,
		GotLen:  d.BLen,
	}
	conv := func(e *Event) *diag.DivergenceEvent {
		if e == nil {
			return nil
		}
		return &diag.DivergenceEvent{Seq: e.Seq, Lock: e.Lock, Thread: e.Thread, Clock: e.Clock}
	}
	de.Want = conv(d.A)
	de.Got = conv(d.B)
	return de
}
