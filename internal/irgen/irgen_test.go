package irgen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
)

func TestGenerateVerifies(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		m := Generate(seed, Default())
		if err := m.Verify(nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m.Func("main") == nil {
			t.Fatalf("seed %d: no main", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, Default()).String()
	b := Generate(7, Default()).String()
	if a != b {
		t.Fatalf("same seed must generate the same program")
	}
	c := Generate(8, Default()).String()
	if a == c {
		t.Fatalf("different seeds should differ")
	}
}

func TestGenerateWithSync(t *testing.T) {
	cfg := Default()
	cfg.WithSync = true
	m := Generate(3, cfg)
	if m.NumLocks == 0 || m.NumBars == 0 {
		t.Fatalf("sync config should reserve sync objects")
	}
}

// run executes m and returns per-thread outputs, memory, and final clocks.
func run(t *testing.T, m *ir.Module, threads int, policy sim.LockPolicy) ([][]int64, []int64, []int64) {
	t.Helper()
	mach, ths, err := interp.NewMachine(interp.Config{Module: m, Threads: threads})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	eng := sim.New(sim.Config{
		Policy: policy, NumLocks: m.NumLocks, NumBarriers: m.NumBars,
	}, interp.Programs(ths))
	stats, err := eng.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var outs [][]int64
	for _, th := range ths {
		outs = append(outs, append([]int64(nil), th.Output...))
	}
	return outs, append([]int64(nil), mach.Global("mem")...), stats.FinalClocks
}

// TestInstrumentationPreservesSemantics: differential test over random
// programs — for every preset, the instrumented program computes the same
// outputs and memory as the uninstrumented one.
func TestInstrumentationPreservesSemantics(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		ref := Generate(seed, Default())
		wantOut, wantMem, _ := run(t, ref.Clone(), 2, sim.PolicyFCFS)
		for _, opt := range core.TableIPresets() {
			m := ref.Clone()
			o := opt
			o.Roots = []string{"main"}
			if _, err := core.Instrument(m, nil, nil, o); err != nil {
				t.Fatalf("seed %d: instrument: %v", seed, err)
			}
			gotOut, gotMem, _ := run(t, m, 2, sim.PolicyFCFS)
			for tid := range wantOut {
				if len(gotOut[tid]) != len(wantOut[tid]) {
					t.Fatalf("seed %d preset %+v: output length changed", seed, opt)
				}
				for i := range wantOut[tid] {
					if gotOut[tid][i] != wantOut[tid][i] {
						t.Fatalf("seed %d preset %+v: thread %d output[%d] = %d, want %d",
							seed, opt, tid, i, gotOut[tid][i], wantOut[tid][i])
					}
				}
			}
			for i := range wantMem {
				if gotMem[i] != wantMem[i] {
					t.Fatalf("seed %d preset %+v: mem[%d] = %d, want %d",
						seed, opt, i, gotMem[i], wantMem[i])
				}
			}
		}
	}
}

// TestPreciseOptsConserveClock: O2a and the base insertion are precise — the
// accumulated logical clock per thread must be identical with and without
// O2a (DESIGN.md invariant 5), on random programs.
func TestPreciseOptsConserveClock(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		ref := Generate(seed, Default())
		clockOf := func(opt core.Options) []int64 {
			m := ref.Clone()
			opt.Roots = []string{"main"}
			if _, err := core.Instrument(m, nil, nil, opt); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			_, _, clocks := run(t, m, 2, sim.PolicyFCFS)
			return clocks
		}
		base := clockOf(core.Options{})
		o2a := clockOf(core.Options{O2a: true})
		for tid := range base {
			if base[tid] != o2a[tid] {
				t.Fatalf("seed %d: O2a changed thread %d clock: %d -> %d",
					seed, tid, base[tid], o2a[tid])
			}
		}
	}
}

// TestLossyOptsBoundedDivergence: with all optimizations, the accumulated
// clock may diverge from the baseline, but only within a modest fraction
// (O1/O3 admission allows range <= mean/2.5; O2b allows 1/10 per triangle;
// O4 misses the final header test). A 50% band is a loose sanity bound that
// catches catastrophic bugs like averaging across loops.
func TestLossyOptsBoundedDivergence(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		ref := Generate(seed, Default())
		clockOf := func(opt core.Options) []int64 {
			m := ref.Clone()
			opt.Roots = []string{"main"}
			if _, err := core.Instrument(m, nil, nil, opt); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			_, _, clocks := run(t, m, 2, sim.PolicyFCFS)
			return clocks
		}
		base := clockOf(core.Options{})
		all := clockOf(core.OptAll)
		for tid := range base {
			lo, hi := base[tid]/2, base[tid]*3/2
			if all[tid] < lo || all[tid] > hi {
				t.Fatalf("seed %d: all-opts clock %d outside [%d, %d] of baseline %d",
					seed, all[tid], lo, hi, base[tid])
			}
		}
	}
}

// TestSyncProgramsDeterministic: random programs with locks produce
// identical schedules across repeated deterministic runs.
func TestSyncProgramsDeterministic(t *testing.T) {
	cfg := Default()
	cfg.WithSync = true
	for seed := uint64(1); seed <= 10; seed++ {
		ref := Generate(seed, cfg)
		traceOf := func() []sim.Acquisition {
			m := ref.Clone()
			opt := core.OptAll
			opt.Roots = []string{"main"}
			if _, err := core.Instrument(m, nil, nil, opt); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			_, ths, err := interp.NewMachine(interp.Config{Module: m, Threads: 4})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			eng := sim.New(sim.Config{
				Policy: sim.PolicyDet, NumLocks: m.NumLocks,
				NumBarriers: m.NumBars, RecordTrace: true,
			}, interp.Programs(ths))
			stats, err := eng.Run()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return stats.Trace
		}
		a := traceOf()
		b := traceOf()
		if len(a) != len(b) {
			t.Fatalf("seed %d: schedule lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: schedule diverges at %d", seed, i)
			}
		}
	}
}
