package irgen

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
)

func TestIdiomGenerationDeterministic(t *testing.T) {
	for _, id := range Idioms() {
		a := GenerateIdiom(id, 7, Default()).String()
		b := GenerateIdiom(id, 7, Default()).String()
		if a != b {
			t.Fatalf("%s: same seed must generate the same program", id)
		}
		c := GenerateIdiom(id, 8, Default()).String()
		if a == c {
			t.Fatalf("%s: different seeds should differ", id)
		}
	}
}

// TestIdiomsRoundTripText: the workload plane submits idiom programs to the
// service as textual IR, so every idiom module must survive a String→Parse
// round trip unchanged.
func TestIdiomsRoundTripText(t *testing.T) {
	for _, id := range Idioms() {
		for seed := uint64(1); seed <= 3; seed++ {
			m := GenerateIdiom(id, seed, Default())
			text := m.String()
			m2, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("%s seed %d: parse: %v", id, seed, err)
			}
			if got := m2.String(); got != text {
				t.Fatalf("%s seed %d: round trip changed the program", id, seed)
			}
		}
	}
}

// idiomRun executes one idiom module under the given policy and returns the
// engine stats, per-thread outputs, and error.
func idiomRun(t *testing.T, m *ir.Module, threads int, policy sim.LockPolicy, ref bool) (*sim.Stats, [][]int64, error) {
	t.Helper()
	_, ths, err := interp.NewMachine(interp.Config{Module: m, Threads: threads})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	eng := sim.New(sim.Config{
		Policy: policy, NumLocks: m.NumLocks, NumBarriers: m.NumBars,
		RecordTrace: true, Reference: ref,
	}, interp.Programs(ths))
	stats, err := eng.Run()
	var outs [][]int64
	for _, th := range ths {
		outs = append(outs, append([]int64(nil), th.Output...))
	}
	return stats, outs, err
}

// TestIdiomsTerminateNoDeadlock: every idiom, over a spread of seeds and
// thread counts (including 1), runs to completion under the deterministic
// policy — spin loops make progress and no lock-order or barrier deadlock
// exists (a deadlock would surface as a structured diag.DeadlockError).
func TestIdiomsTerminateNoDeadlock(t *testing.T) {
	threads := []int{1, 2, 4, 8}
	seeds := 6
	if testing.Short() {
		threads, seeds = []int{1, 4}, 3
	}
	for _, id := range Idioms() {
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			m := GenerateIdiom(id, seed, Default())
			for _, n := range threads {
				_, _, err := idiomRun(t, m.Clone(), n, sim.PolicyDet, false)
				if err != nil {
					var dl *diag.DeadlockError
					if errors.As(err, &dl) {
						t.Fatalf("%s seed %d threads %d: deadlock:\n%s", id, seed, n, dl.Error())
					}
					t.Fatalf("%s seed %d threads %d: %v", id, seed, n, err)
				}
			}
		}
	}
}

// TestIdiomsGoldenDeterminism: for every idiom, the instrumented program's
// deterministic schedule is byte-identical across repeated runs AND between
// the indexed-heap scheduler and the O(threads) reference oracle, and the
// per-thread outputs agree everywhere.
func TestIdiomsGoldenDeterminism(t *testing.T) {
	seeds := 5
	if testing.Short() {
		seeds = 2
	}
	for _, id := range Idioms() {
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			ref := GenerateIdiom(id, seed, Default())
			opt := core.OptAll
			opt.Roots = []string{"main"}
			inst := ref.Clone()
			if _, err := core.Instrument(inst, nil, nil, opt); err != nil {
				t.Fatalf("%s seed %d: instrument: %v", id, seed, err)
			}
			type runOut struct {
				trace []sim.Acquisition
				outs  [][]int64
			}
			do := func(oracle bool) runOut {
				stats, outs, err := idiomRun(t, inst.Clone(), 4, sim.PolicyDet, oracle)
				if err != nil {
					t.Fatalf("%s seed %d (ref=%v): %v", id, seed, oracle, err)
				}
				return runOut{trace: stats.Trace, outs: outs}
			}
			a, b, c := do(false), do(false), do(true)
			for name, other := range map[string]runOut{"rerun": b, "reference-oracle": c} {
				if len(other.trace) != len(a.trace) {
					t.Fatalf("%s seed %d: %s schedule length %d != %d", id, seed, name, len(other.trace), len(a.trace))
				}
				for i := range a.trace {
					if a.trace[i] != other.trace[i] {
						t.Fatalf("%s seed %d: %s schedule diverges at %d: %+v vs %+v",
							id, seed, name, i, a.trace[i], other.trace[i])
					}
				}
				for tid := range a.outs {
					if len(other.outs[tid]) != len(a.outs[tid]) {
						t.Fatalf("%s seed %d: %s thread %d output length differs", id, seed, name, tid)
					}
					for i := range a.outs[tid] {
						if a.outs[tid][i] != other.outs[tid][i] {
							t.Fatalf("%s seed %d: %s thread %d output[%d] = %d, want %d",
								id, seed, name, tid, i, other.outs[tid][i], a.outs[tid][i])
						}
					}
				}
			}
		}
	}
}

// TestIdiomsRaceFree: every idiom passes the deterministic vector-clock race
// detector — each shared access is ordered by the idiom's own locks and
// barriers. This is the property that makes idiom outputs reproducible at
// all: a racy idiom would make workload cores schedule-sensitive.
func TestIdiomsRaceFree(t *testing.T) {
	seeds := 4
	if testing.Short() {
		seeds = 2
	}
	for _, id := range Idioms() {
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			m := GenerateIdiom(id, seed, Default())
			for _, n := range []int{2, 5} {
				mach, ths, err := interp.NewMachine(interp.Config{
					Module:  m.Clone(),
					Threads: n,
					Race:    &interp.RaceConfig{Policy: interp.RaceFailFast},
				})
				if err != nil {
					t.Fatalf("%s seed %d: machine: %v", id, seed, err)
				}
				eng := sim.New(sim.Config{
					Policy: sim.PolicyDet, NumLocks: m.NumLocks, NumBarriers: m.NumBars,
					Observer: mach.Observer(),
				}, interp.Programs(ths))
				if _, err := eng.Run(); err != nil {
					if errors.Is(err, diag.ErrRace) {
						t.Fatalf("%s seed %d threads %d: data race:\n%v", id, seed, n, err)
					}
					t.Fatalf("%s seed %d threads %d: %v", id, seed, n, err)
				}
				if races := mach.Races(); len(races) != 0 {
					t.Fatalf("%s seed %d threads %d: %d races recorded", id, seed, n, len(races))
				}
			}
		}
	}
}

// TestIdiomsSingleThreadValues: with one thread the idioms are sequential
// programs; their outputs must be stable across runs (golden anchor for the
// workload plane's payload fingerprints).
func TestIdiomsSingleThreadValues(t *testing.T) {
	for _, id := range Idioms() {
		m := GenerateIdiom(id, 1, Default())
		_, outA, err := idiomRun(t, m.Clone(), 1, sim.PolicyDet, false)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		_, outB, err := idiomRun(t, m.Clone(), 1, sim.PolicyDet, false)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(outA) != 1 || len(outA[0]) == 0 {
			t.Fatalf("%s: expected single-thread output, got %v", id, outA)
		}
		if len(outA[0]) != len(outB[0]) {
			t.Fatalf("%s: output length unstable", id)
		}
		for i := range outA[0] {
			if outA[0][i] != outB[0][i] {
				t.Fatalf("%s: output[%d] unstable: %d vs %d", id, i, outA[0][i], outB[0][i])
			}
		}
	}
}
