// Package irgen generates random structured IR programs for differential
// testing of the DetLock pass: for any generated program, instrumentation
// must preserve semantics exactly (same outputs, same memory), precise
// optimizations must preserve the accumulated logical clock exactly, and
// lossy ones must stay within the paper's divergence bounds.
//
// Programs are generated from a seeded deterministic PRNG as nests of
// sequences, if/else diamonds, bounded loops and calls into a generated
// function pool — the shapes the optimizations pattern-match on — plus
// optional lock/barrier regions for schedule tests.
package irgen

import (
	"fmt"

	"repro/internal/ir"
)

// Config bounds the generated program.
type Config struct {
	// Funcs is the size of the callable function pool (besides main).
	Funcs int
	// MaxDepth bounds structural nesting.
	MaxDepth int
	// MaxBodyLen bounds straight-line block length.
	MaxBodyLen int
	// LoopIters bounds generated loop trip counts.
	LoopIters int
	// WithSync adds lock/unlock pairs and barrier calls to main.
	WithSync bool
	// Threads is used to size sync object tables when WithSync is set.
	Threads int
}

// Default returns a moderate configuration.
func Default() Config {
	return Config{Funcs: 4, MaxDepth: 4, MaxBodyLen: 6, LoopIters: 5, Threads: 2}
}

// rng is a small deterministic xorshift PRNG.
type rng uint64

func (r *rng) next() uint64 {
	v := uint64(*r)
	if v == 0 {
		v = 0x9E3779B97F4A7C15
	}
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*r = rng(v)
	return v
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// gen carries generation state for one function.
type gen struct {
	r       *rng
	cfg     Config
	fb      *ir.FuncBuilder
	acc     ir.Reg // running value; printed at the end of main
	tmp     ir.Reg
	scratch ir.Reg
	callees []string // functions this one may call (acyclic by construction)
	blockID int
}

// Generate builds a random module from seed. The module always verifies and
// always terminates (loops have constant bounds).
func Generate(seed uint64, cfg Config) *ir.Module {
	r := rng(seed)
	mb := ir.NewModule(fmt.Sprintf("gen_%d", seed))
	mb.Global("mem", 256)
	if cfg.WithSync {
		mb.Locks(4)
		mb.Barriers(1)
	}

	// Function pool: fn_i may call fn_j only for j < i (no recursion).
	var pool []string
	for i := 0; i < cfg.Funcs; i++ {
		name := fmt.Sprintf("fn_%d", i)
		g := &gen{r: &r, cfg: cfg, fb: mb.Func(name, "x"), callees: append([]string(nil), pool...)}
		g.buildFunc(cfg.MaxDepth - 1)
		pool = append(pool, name)
	}

	g := &gen{r: &r, cfg: cfg, fb: mb.Func("main"), callees: pool}
	g.buildMain()
	if err := mb.M.Verify(nil); err != nil {
		panic(fmt.Sprintf("irgen: generated module does not verify: %v", err))
	}
	return mb.M
}

func (g *gen) newBlock(hint string) *ir.BlockBuilder {
	g.blockID++
	return g.fb.Block(fmt.Sprintf("%s%d", hint, g.blockID))
}

// buildFunc emits a function body: entry -> structure -> ret acc.
func (g *gen) buildFunc(depth int) {
	g.acc = g.fb.Reg("acc")
	g.tmp = g.fb.Reg("tmp")
	g.scratch = g.fb.Reg("scratch")
	x := g.fb.Reg("x")
	entry := g.fb.Block("entry")
	entry.Mov(g.acc, ir.R(x))
	exitName := "exit"
	g.structure(entry, depth, exitName, false)
	g.fb.Block(exitName).Ret(ir.R(g.acc))
}

// buildMain emits main: per-thread seed, structure, print.
func (g *gen) buildMain() {
	g.acc = g.fb.Reg("acc")
	g.tmp = g.fb.Reg("tmp")
	g.scratch = g.fb.Reg("scratch")
	entry := g.fb.Block("entry")
	entry.Tid(g.acc)
	entry.Bin(ir.OpMul, g.acc, ir.R(g.acc), ir.Imm(37))
	entry.Bin(ir.OpAdd, g.acc, ir.R(g.acc), ir.Imm(11))
	exitName := "exit"
	g.structure(entry, g.cfg.MaxDepth, exitName, g.cfg.WithSync)
	ex := g.fb.Block(exitName)
	if g.cfg.WithSync {
		ex.Barrier(ir.Imm(0))
	}
	ex.Print(ir.R(g.acc))
	ex.Ret(ir.R(g.acc))
}

// structure emits a random structure into cur, ending with a jump to next.
func (g *gen) structure(cur *ir.BlockBuilder, depth int, next string, sync bool) {
	n := 1 + g.r.intn(3)
	for i := 0; i < n; i++ {
		last := i == n-1
		target := next
		if !last {
			target = g.newBlockName("seq")
		}
		g.one(cur, depth, target, sync)
		if !last {
			cur = g.fb.Block(target)
		}
	}
}

func (g *gen) newBlockName(hint string) string {
	g.blockID++
	return fmt.Sprintf("%s%d", hint, g.blockID)
}

// one emits one random construct into cur and terminates it toward next.
func (g *gen) one(cur *ir.BlockBuilder, depth int, next string, sync bool) {
	choice := g.r.intn(10)
	switch {
	case depth <= 0 || choice < 3: // straight-line body
		g.body(cur)
		cur.Jmp(next)
	case choice < 6: // if/else diamond
		g.body(cur)
		cond := g.tmp
		cur.Bin(ir.OpAnd, cond, ir.R(g.acc), ir.Imm(int64(1+g.r.intn(3))))
		thenN := g.newBlockName("then")
		elseN := g.newBlockName("else")
		cur.Br(ir.R(cond), thenN, elseN)
		tb := g.fb.Block(thenN)
		g.structure(tb, depth-1, next, false)
		eb := g.fb.Block(elseN)
		g.structure(eb, depth-1, next, false)
	case choice < 8: // bounded loop
		iters := 1 + g.r.intn(g.cfg.LoopIters)
		ivar := g.fb.Reg(g.newBlockName("$i"))
		cur.Const(ivar, 0)
		hdrN := g.newBlockName("hdr")
		bodyN := g.newBlockName("lbody")
		latchN := g.newBlockName("latch")
		cur.Jmp(hdrN)
		hdr := g.fb.Block(hdrN)
		hdr.Bin(ir.OpLT, g.tmp, ir.R(ivar), ir.Imm(int64(iters)))
		hdr.Br(ir.R(g.tmp), bodyN, next)
		body := g.fb.Block(bodyN)
		g.structure(body, depth-1, latchN, false)
		latch := g.fb.Block(latchN)
		latch.Bin(ir.OpAdd, ivar, ir.R(ivar), ir.Imm(1))
		latch.Jmp(hdrN)
	case choice < 9 && len(g.callees) > 0: // call into the pool
		g.body(cur)
		callee := g.callees[g.r.intn(len(g.callees))]
		cur.Call(g.tmp, callee, ir.R(g.acc))
		cur.Bin(ir.OpXor, g.acc, ir.R(g.acc), ir.R(g.tmp))
		cur.Jmp(next)
	default: // memory traffic (+ optional sync region)
		idx := g.scratch
		cur.Bin(ir.OpAnd, idx, ir.R(g.acc), ir.Imm(255))
		if sync {
			lockID := int64(g.r.intn(4))
			cur.Lock(ir.Imm(lockID))
			cur.Load(g.tmp, "mem", ir.R(idx))
			cur.Bin(ir.OpAdd, g.tmp, ir.R(g.tmp), ir.Imm(1))
			cur.Store("mem", ir.R(idx), ir.R(g.tmp))
			cur.Unlock(ir.Imm(lockID))
		} else {
			cur.Load(g.tmp, "mem", ir.R(idx))
			cur.Bin(ir.OpAdd, g.acc, ir.R(g.acc), ir.R(g.tmp))
		}
		cur.Jmp(next)
	}
}

// body emits random straight-line arithmetic.
func (g *gen) body(cur *ir.BlockBuilder) {
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor, ir.OpAnd, ir.OpOr}
	n := 1 + g.r.intn(g.cfg.MaxBodyLen)
	for i := 0; i < n; i++ {
		op := ops[g.r.intn(len(ops))]
		imm := int64(1 + g.r.intn(97))
		cur.Bin(op, g.acc, ir.R(g.acc), ir.Imm(imm))
	}
}
