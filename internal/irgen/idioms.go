// Sync idiom generators: seeded programs exercising higher-level
// synchronization patterns built from the three primitive sync ops the IR
// has (mutex lock/unlock, barrier). The sim mutex is owner-checked (a thread
// may only unlock a mutex it holds), so every idiom is constructed to
// respect ownership; spin/poll loops terminate under PolicyDet because each
// acquire and release ticks the spinner's logical clock, eventually handing
// the deterministic turn to the thread that makes progress.
//
// Every generated module is a pure function of (idiom, seed, cfg): the same
// inputs always yield the same program text, and running it under PolicyDet
// always yields the same schedule. That makes idioms usable as workload
// payloads whose deterministic cores can be compared byte-for-byte across
// runs and across cluster topologies.
package irgen

import (
	"fmt"

	"repro/internal/ir"
)

// Idiom names one synchronization pattern family.
type Idiom string

const (
	// IdiomCondvar is a condition-variable pipeline: thread t spin-waits
	// (lock; test flag; unlock) until thread t-1 publishes its stage flag,
	// consumes the predecessor's value, then publishes its own.
	IdiomCondvar Idiom = "condvar"
	// IdiomBarrierPhases is a bulk-synchronous program: P phases of
	// per-thread work separated by a global barrier, each phase reading a
	// neighbor's previous-phase result.
	IdiomBarrierPhases Idiom = "barrier"
	// IdiomRWLock is a reader/writer lock built from two mutexes: writers
	// serialize on the writer mutex and spin until the reader count (guarded
	// by the gate mutex) drains to zero; readers register, read outside the
	// gate, then deregister.
	IdiomRWLock Idiom = "rwlock"
	// IdiomRing is a bounded producer/consumer ring buffer: one mutex
	// guards head/tail/produced/consumed; producers retry while full,
	// consumers poll until the global consumed count reaches the total.
	IdiomRing Idiom = "ring"
	// IdiomDeque is a work-stealing pool: one task counter per thread, each
	// under its own mutex (locked by dynamic id); threads drain their own
	// queue then scan victims, calling into a generated function pool for
	// each task executed.
	IdiomDeque Idiom = "deque"
)

// Idioms returns every idiom kind, in a fixed order.
func Idioms() []Idiom {
	return []Idiom{IdiomCondvar, IdiomBarrierPhases, IdiomRWLock, IdiomRing, IdiomDeque}
}

// idiomMaxThreads bounds the thread count an idiom module supports: flag and
// task arrays are statically sized for this many threads (the programs adapt
// to the actual count at runtime via OpNThreads).
const idiomMaxThreads = 16

// GenerateIdiom builds the seeded program for one idiom. The module always
// verifies, terminates under PolicyDet for any thread count in
// [1, idiomMaxThreads], and is race-free (every shared access is ordered by
// the idiom's own synchronization). cfg bounds the embedded straight-line
// work the same way Generate does.
func GenerateIdiom(id Idiom, seed uint64, cfg Config) *ir.Module {
	r := rng(seed ^ 0xA5F152E9D3B7C681)
	r.next() // decouple the first draw from raw seed bits
	mb := ir.NewModule(fmt.Sprintf("idiom_%s_%d", id, seed))
	switch id {
	case IdiomCondvar:
		buildCondvar(mb, &r, cfg)
	case IdiomBarrierPhases:
		buildBarrierPhases(mb, &r, cfg)
	case IdiomRWLock:
		buildRWLock(mb, &r, cfg)
	case IdiomRing:
		buildRing(mb, &r, cfg)
	case IdiomDeque:
		buildDeque(mb, &r, cfg)
	default:
		panic(fmt.Sprintf("irgen: unknown idiom %q", id))
	}
	if err := mb.M.Verify(nil); err != nil {
		panic(fmt.Sprintf("irgen: idiom %s seed %d does not verify: %v", id, seed, err))
	}
	return mb.M
}

// seededWork emits 1..n straight-line ops folding into acc, drawn from r.
func seededWork(bb *ir.BlockBuilder, r *rng, acc ir.Reg, maxLen int) {
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor, ir.OpOr}
	n := 1 + r.intn(maxLen)
	for i := 0; i < n; i++ {
		bb.Bin(ops[r.intn(len(ops))], acc, ir.R(acc), ir.Imm(int64(1+r.intn(97))))
	}
}

// buildCondvar emits the condition-variable pipeline. Globals: stage[t] is
// thread t's "done" flag, val[t] its published value, both guarded by lock 0
// (the "condvar" mutex). Thread 0 starts immediately; thread t>0 spin-waits
// on stage[t-1], then folds in val[t-1] — a happens-before chain through
// lock 0 orders every publish before the successor's read.
func buildCondvar(mb *ir.ModuleBuilder, r *rng, cfg Config) {
	mb.Global("stage", idiomMaxThreads)
	mb.Global("val", idiomMaxThreads)
	mb.Locks(1)

	fb := mb.Func("main")
	tid := fb.Reg("tid")
	acc := fb.Reg("acc")
	tmp := fb.Reg("tmp")

	entry := fb.Block("entry")
	entry.Tid(tid)
	entry.Mov(acc, ir.R(tid))
	entry.Bin(ir.OpMul, acc, ir.R(acc), ir.Imm(int64(3+r.intn(29))))
	entry.Bin(ir.OpAdd, acc, ir.R(acc), ir.Imm(int64(1+r.intn(50))))
	// Thread 0 has no predecessor.
	entry.Bin(ir.OpEQ, tmp, ir.R(tid), ir.Imm(0))
	entry.Br(ir.R(tmp), "work", "wait")

	wait := fb.Block("wait")
	prev := fb.Reg("prev")
	wait.Bin(ir.OpSub, prev, ir.R(tid), ir.Imm(1))
	wait.Lock(ir.Imm(0))
	wait.Load(tmp, "stage", ir.R(prev))
	wait.Unlock(ir.Imm(0))
	wait.Br(ir.R(tmp), "consume", "wait")

	consume := fb.Block("consume")
	consume.Lock(ir.Imm(0))
	consume.Load(tmp, "val", ir.R(prev))
	consume.Unlock(ir.Imm(0))
	consume.Bin(ir.OpXor, acc, ir.R(acc), ir.R(tmp))
	consume.Jmp("work")

	work := fb.Block("work")
	seededWork(work, r, acc, cfg.MaxBodyLen)
	// Publish: value first, then the flag, in one critical section.
	work.Lock(ir.Imm(0))
	work.Store("val", ir.R(tid), ir.R(acc))
	work.Store("stage", ir.R(tid), ir.Imm(1))
	work.Unlock(ir.Imm(0))
	work.Print(ir.R(acc))
	work.Ret(ir.R(acc))
}

// buildBarrierPhases emits the bulk-synchronous phase program: P phases,
// each writing mem[phase*stride + tid] then crossing barrier 0, then reading
// the ring neighbor's slot from the phase just completed. Slots are distinct
// per (phase, tid), so the only cross-thread edges are the barrier ones.
func buildBarrierPhases(mb *ir.ModuleBuilder, r *rng, cfg Config) {
	phases := 2 + r.intn(3)
	mb.Global("mem", int64(phases*idiomMaxThreads))
	mb.Barriers(1)

	fb := mb.Func("main")
	tid := fb.Reg("tid")
	n := fb.Reg("n")
	acc := fb.Reg("acc")
	tmp := fb.Reg("tmp")
	nb := fb.Reg("nb")
	idx := fb.Reg("idx")

	bb := fb.Block("entry")
	bb.Tid(tid)
	bb.NThreads(n)
	bb.Mov(acc, ir.R(tid))
	bb.Bin(ir.OpAdd, acc, ir.R(acc), ir.Imm(int64(7+r.intn(41))))
	for p := 0; p < phases; p++ {
		seededWork(bb, r, acc, cfg.MaxBodyLen)
		bb.Bin(ir.OpAdd, idx, ir.R(tid), ir.Imm(int64(p*idiomMaxThreads)))
		bb.Store("mem", ir.R(idx), ir.R(acc))
		bb.Barrier(ir.Imm(0))
		// Branch-free ring neighbor: (tid+1) * (tid+1 < n).
		bb.Bin(ir.OpAdd, nb, ir.R(tid), ir.Imm(1))
		bb.Bin(ir.OpLT, tmp, ir.R(nb), ir.R(n))
		bb.Bin(ir.OpMul, nb, ir.R(nb), ir.R(tmp))
		bb.Bin(ir.OpAdd, nb, ir.R(nb), ir.Imm(int64(p*idiomMaxThreads)))
		bb.Load(tmp, "mem", ir.R(nb))
		bb.Bin(ir.OpXor, acc, ir.R(acc), ir.R(tmp))
	}
	bb.Print(ir.R(acc))
	bb.Ret(ir.R(acc))
}

// buildRWLock emits the two-mutex reader/writer idiom. Lock 0 is the gate
// guarding rw[0] (the reader count) and the shared array writes; lock 1
// serializes writers. Even tids write, odd tids read. A writer takes lock 1,
// then polls under lock 0 until the reader count is zero and performs its
// writes while still holding lock 0 — so registered readers and in-progress
// writes exclude each other, while readers read concurrently outside the
// gate. Ownership is respected: each mutex is released by its acquirer.
func buildRWLock(mb *ir.ModuleBuilder, r *rng, cfg Config) {
	shared := 8
	mb.Global("rw", 1)
	mb.Global("data", int64(shared))
	mb.Locks(2)
	rounds := 1 + r.intn(3)

	fb := mb.Func("main")
	tid := fb.Reg("tid")
	acc := fb.Reg("acc")
	tmp := fb.Reg("tmp")
	rc := fb.Reg("rc")

	entry := fb.Block("entry")
	entry.Tid(tid)
	entry.Mov(acc, ir.R(tid))
	entry.Bin(ir.OpMul, acc, ir.R(acc), ir.Imm(int64(5+r.intn(23))))
	entry.Bin(ir.OpAnd, tmp, ir.R(tid), ir.Imm(1))
	entry.Br(ir.R(tmp), "read0", "write0")

	for round := 0; round < rounds; round++ {
		nextW := fmt.Sprintf("write%d", round+1)
		nextR := fmt.Sprintf("read%d", round+1)
		if round == rounds-1 {
			nextW, nextR = "exit", "exit"
		}

		// Writer round: lock 1; spin on rc==0 under lock 0; write; release.
		w := fb.Block(fmt.Sprintf("write%d", round))
		w.Lock(ir.Imm(1))
		w.Jmp(fmt.Sprintf("wpoll%d", round))
		poll := fb.Block(fmt.Sprintf("wpoll%d", round))
		poll.Lock(ir.Imm(0))
		poll.Load(rc, "rw", ir.Imm(0))
		poll.Bin(ir.OpEQ, tmp, ir.R(rc), ir.Imm(0))
		poll.Br(ir.R(tmp), fmt.Sprintf("wcrit%d", round), fmt.Sprintf("wback%d", round))
		back := fb.Block(fmt.Sprintf("wback%d", round))
		back.Unlock(ir.Imm(0))
		back.Jmp(fmt.Sprintf("wpoll%d", round))
		crit := fb.Block(fmt.Sprintf("wcrit%d", round))
		seededWork(crit, r, acc, cfg.MaxBodyLen)
		for i := 0; i < 2+r.intn(3); i++ {
			slot := int64(r.intn(shared))
			crit.Load(tmp, "data", ir.Imm(slot))
			crit.Bin(ir.OpAdd, tmp, ir.R(tmp), ir.R(acc))
			crit.Store("data", ir.Imm(slot), ir.R(tmp))
		}
		crit.Unlock(ir.Imm(0))
		crit.Unlock(ir.Imm(1))
		crit.Jmp(nextW)

		// Reader round: register under the gate, read outside it, deregister.
		rd := fb.Block(fmt.Sprintf("read%d", round))
		rd.Lock(ir.Imm(0))
		rd.Load(rc, "rw", ir.Imm(0))
		rd.Bin(ir.OpAdd, rc, ir.R(rc), ir.Imm(1))
		rd.Store("rw", ir.Imm(0), ir.R(rc))
		rd.Unlock(ir.Imm(0))
		for i := 0; i < 2+r.intn(3); i++ {
			rd.Load(tmp, "data", ir.Imm(int64(r.intn(shared))))
			rd.Bin(ir.OpXor, acc, ir.R(acc), ir.R(tmp))
		}
		rd.Lock(ir.Imm(0))
		rd.Load(rc, "rw", ir.Imm(0))
		rd.Bin(ir.OpSub, rc, ir.R(rc), ir.Imm(1))
		rd.Store("rw", ir.Imm(0), ir.R(rc))
		rd.Unlock(ir.Imm(0))
		rd.Jmp(nextR)
	}

	exit := fb.Block("exit")
	exit.Print(ir.R(acc))
	exit.Ret(ir.R(acc))
}

// buildRing emits the bounded producer/consumer ring. Global "ring" layout:
// [0]=head, [1]=tail, [2]=produced, [3]=consumed, buffer at 8..8+cap (cap is
// a power of two so indices wrap with a mask). The first ceil(n/2) threads
// produce perProd items each; the rest consume until the global consumed
// count reaches prods*perProd. With n==1 there are no consumers and the
// lone producer just fills and exits — the ring never deadlocks.
func buildRing(mb *ir.ModuleBuilder, r *rng, cfg Config) {
	capacity := int64(4 << r.intn(2)) // 4 or 8
	perProd := int64(2 + r.intn(4))
	mb.Global("ring", 8+capacity)
	mb.Locks(1)

	fb := mb.Func("main")
	tid := fb.Reg("tid")
	n := fb.Reg("n")
	prods := fb.Reg("prods")
	total := fb.Reg("total")
	acc := fb.Reg("acc")
	tmp := fb.Reg("tmp")
	head := fb.Reg("head")
	tail := fb.Reg("tail")
	cnt := fb.Reg("cnt")
	i := fb.Reg("i")
	ok := fb.Reg("ok")

	entry := fb.Block("entry")
	entry.Tid(tid)
	entry.NThreads(n)
	// prods = ceil(n/2), total = prods * perProd.
	entry.Bin(ir.OpAdd, prods, ir.R(n), ir.Imm(1))
	entry.Bin(ir.OpDiv, prods, ir.R(prods), ir.Imm(2))
	entry.Bin(ir.OpMul, total, ir.R(prods), ir.Imm(perProd))
	entry.Mov(acc, ir.R(tid))
	entry.Bin(ir.OpMul, acc, ir.R(acc), ir.Imm(int64(11+r.intn(31))))
	entry.Const(i, 0)
	entry.Bin(ir.OpLT, tmp, ir.R(tid), ir.R(prods))
	entry.Br(ir.R(tmp), "produce", "consume")

	// Producer: push f(tid, i) for i in [0, perProd); retry while full.
	prod := fb.Block("produce")
	prod.Bin(ir.OpLT, tmp, ir.R(i), ir.Imm(perProd))
	prod.Br(ir.R(tmp), "push", "drain")
	push := fb.Block("push")
	push.Lock(ir.Imm(0))
	push.Load(head, "ring", ir.Imm(0))
	push.Load(tail, "ring", ir.Imm(1))
	push.Bin(ir.OpSub, tmp, ir.R(head), ir.R(tail))
	push.Bin(ir.OpLT, ok, ir.R(tmp), ir.Imm(capacity))
	push.Br(ir.R(ok), "store", "full")
	store := fb.Block("store")
	store.Bin(ir.OpMul, tmp, ir.R(tid), ir.Imm(perProd))
	store.Bin(ir.OpAdd, tmp, ir.R(tmp), ir.R(i))
	store.Bin(ir.OpXor, tmp, ir.R(tmp), ir.Imm(int64(r.intn(127))))
	store.Bin(ir.OpAnd, cnt, ir.R(head), ir.Imm(capacity-1))
	store.Bin(ir.OpAdd, cnt, ir.R(cnt), ir.Imm(8))
	store.Store("ring", ir.R(cnt), ir.R(tmp))
	store.Bin(ir.OpAdd, head, ir.R(head), ir.Imm(1))
	store.Store("ring", ir.Imm(0), ir.R(head))
	store.Load(tmp, "ring", ir.Imm(2))
	store.Bin(ir.OpAdd, tmp, ir.R(tmp), ir.Imm(1))
	store.Store("ring", ir.Imm(2), ir.R(tmp))
	store.Unlock(ir.Imm(0))
	store.Bin(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	store.Jmp("produce")
	full := fb.Block("full")
	full.Unlock(ir.Imm(0))
	full.Jmp("push")

	// Producers also drain: with one thread (no consumers) the items must
	// still leave the ring; with consumers present, "drain" exits at once
	// when consumed catches up. Producers and consumers share the pop path.
	drain := fb.Block("drain")
	drain.Jmp("consume")

	// Consumer: pop until consumed == total.
	cons := fb.Block("consume")
	cons.Lock(ir.Imm(0))
	cons.Load(cnt, "ring", ir.Imm(3))
	cons.Bin(ir.OpLT, tmp, ir.R(cnt), ir.R(total))
	cons.Br(ir.R(tmp), "avail", "finish")
	avail := fb.Block("avail")
	avail.Load(head, "ring", ir.Imm(0))
	avail.Load(tail, "ring", ir.Imm(1))
	avail.Bin(ir.OpLT, ok, ir.R(tail), ir.R(head))
	avail.Br(ir.R(ok), "pop", "empty")
	pop := fb.Block("pop")
	pop.Bin(ir.OpAnd, tmp, ir.R(tail), ir.Imm(capacity-1))
	pop.Bin(ir.OpAdd, tmp, ir.R(tmp), ir.Imm(8))
	pop.Load(tmp, "ring", ir.R(tmp))
	pop.Bin(ir.OpXor, acc, ir.R(acc), ir.R(tmp))
	pop.Bin(ir.OpAdd, tail, ir.R(tail), ir.Imm(1))
	pop.Store("ring", ir.Imm(1), ir.R(tail))
	pop.Bin(ir.OpAdd, cnt, ir.R(cnt), ir.Imm(1))
	pop.Store("ring", ir.Imm(3), ir.R(cnt))
	pop.Unlock(ir.Imm(0))
	pop.Jmp("consume")
	empty := fb.Block("empty")
	empty.Unlock(ir.Imm(0))
	empty.Jmp("consume")
	finish := fb.Block("finish")
	finish.Unlock(ir.Imm(0))
	finish.Print(ir.R(acc))
	finish.Ret(ir.R(acc))
}

// buildDeque emits the work-stealing pool. tasks[t] is thread t's pending
// task count, guarded by mutex t (a dynamic, register-valued lock id). Each
// thread drains its own counter, then scans victims 0..n-1 stealing one
// task at a time; every task executed calls into a generated function pool
// (the same machinery Generate uses), so stolen work carries real
// computation. Task counts only decrease, so the scan terminates.
func buildDeque(mb *ir.ModuleBuilder, r *rng, cfg Config) {
	perThread := int64(2 + r.intn(4))
	init := make([]int64, idiomMaxThreads)
	for t := range init {
		init[t] = perThread
	}
	mb.GlobalInit("tasks", init)
	mb.Global("mem", 256)
	mb.Locks(idiomMaxThreads)

	// Function pool for task bodies, acyclic exactly like Generate's.
	funcs := cfg.Funcs
	if funcs < 1 {
		funcs = 1
	}
	var pool []string
	for fi := 0; fi < funcs; fi++ {
		name := fmt.Sprintf("task_%d", fi)
		g := &gen{r: r, cfg: cfg, fb: mb.Func(name, "x"), callees: append([]string(nil), pool...)}
		g.buildFunc(cfg.MaxDepth - 1)
		pool = append(pool, name)
	}

	fb := mb.Func("main")
	tid := fb.Reg("tid")
	n := fb.Reg("n")
	acc := fb.Reg("acc")
	tmp := fb.Reg("tmp")
	cnt := fb.Reg("cnt")
	v := fb.Reg("v")

	entry := fb.Block("entry")
	entry.Tid(tid)
	entry.NThreads(n)
	entry.Mov(acc, ir.R(tid))
	entry.Bin(ir.OpAdd, acc, ir.R(acc), ir.Imm(int64(13+r.intn(37))))
	entry.Jmp("own")

	// Drain own deque.
	own := fb.Block("own")
	own.Lock(ir.R(tid))
	own.Load(cnt, "tasks", ir.R(tid))
	own.Bin(ir.OpGT, tmp, ir.R(cnt), ir.Imm(0))
	own.Br(ir.R(tmp), "ownpop", "ownempty")
	ownpop := fb.Block("ownpop")
	ownpop.Bin(ir.OpSub, cnt, ir.R(cnt), ir.Imm(1))
	ownpop.Store("tasks", ir.R(tid), ir.R(cnt))
	ownpop.Unlock(ir.R(tid))
	ownpop.Call(tmp, pool[r.intn(len(pool))], ir.R(acc))
	ownpop.Bin(ir.OpXor, acc, ir.R(acc), ir.R(tmp))
	ownpop.Jmp("own")
	ownempty := fb.Block("ownempty")
	ownempty.Unlock(ir.R(tid))
	ownempty.Const(v, 0)
	ownempty.Jmp("scan")

	// Steal scan: try victims v = 0..n-1, restarting from 0 after a
	// successful steal (the victim may have more).
	scan := fb.Block("scan")
	scan.Bin(ir.OpLT, tmp, ir.R(v), ir.R(n))
	scan.Br(ir.R(tmp), "victim", "done")
	victim := fb.Block("victim")
	victim.Bin(ir.OpEQ, tmp, ir.R(v), ir.R(tid))
	victim.Br(ir.R(tmp), "next", "try")
	try := fb.Block("try")
	try.Lock(ir.R(v))
	try.Load(cnt, "tasks", ir.R(v))
	try.Bin(ir.OpGT, tmp, ir.R(cnt), ir.Imm(0))
	try.Br(ir.R(tmp), "steal", "miss")
	steal := fb.Block("steal")
	steal.Bin(ir.OpSub, cnt, ir.R(cnt), ir.Imm(1))
	steal.Store("tasks", ir.R(v), ir.R(cnt))
	steal.Unlock(ir.R(v))
	steal.Call(tmp, pool[r.intn(len(pool))], ir.R(acc))
	steal.Bin(ir.OpXor, acc, ir.R(acc), ir.R(tmp))
	steal.Const(v, 0)
	steal.Jmp("scan")
	miss := fb.Block("miss")
	miss.Unlock(ir.R(v))
	miss.Jmp("next")
	next := fb.Block("next")
	next.Bin(ir.OpAdd, v, ir.R(v), ir.Imm(1))
	next.Jmp("scan")

	done := fb.Block("done")
	done.Print(ir.R(acc))
	done.Ret(ir.R(acc))
}
