package irgen

import (
	"testing"

	"repro/internal/ir"
)

// CFG analysis properties checked over randomly generated programs: the
// dominator tree and loop detection feed every optimization, so they get
// independent property coverage here (irgen can import ir without cycles).

// reachable computes the blocks reachable from entry.
func reachable(f *ir.Func) map[*ir.Block]bool {
	seen := map[*ir.Block]bool{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Term.Succs {
			dfs(s)
		}
	}
	if f.Entry() != nil {
		dfs(f.Entry())
	}
	return seen
}

// dominatesByRemoval is the definition of dominance: a dominates b iff
// removing a makes b unreachable from entry.
func dominatesByRemoval(f *ir.Func, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	seen := map[*ir.Block]bool{a: true} // pretend a is removed
	var dfs func(x *ir.Block)
	dfs = func(x *ir.Block) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, s := range x.Term.Succs {
			dfs(s)
		}
	}
	dfs(f.Entry())
	return !seen[b] || b == a
}

func TestDominatorsMatchDefinition(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		m := Generate(seed, Default())
		for _, f := range m.Funcs {
			dt := ir.NewDomTree(f)
			reach := reachable(f)
			for _, a := range f.Blocks {
				if !reach[a] {
					continue
				}
				for _, b := range f.Blocks {
					if !reach[b] {
						continue
					}
					want := dominatesByRemoval(f, a, b)
					got := dt.Dominates(a, b)
					if got != want {
						t.Fatalf("seed %d %s: Dominates(%s, %s) = %v, definition says %v",
							seed, f.Name, a.Name, b.Name, got, want)
					}
				}
			}
		}
	}
}

func TestEntryDominatesEverything(t *testing.T) {
	for seed := uint64(20); seed <= 40; seed++ {
		m := Generate(seed, Default())
		for _, f := range m.Funcs {
			dt := ir.NewDomTree(f)
			reach := reachable(f)
			for _, b := range f.Blocks {
				if reach[b] && !dt.Dominates(f.Entry(), b) {
					t.Fatalf("seed %d %s: entry must dominate %s", seed, f.Name, b.Name)
				}
			}
		}
	}
}

func TestIdomIsStrictDominator(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		m := Generate(seed, Default())
		for _, f := range m.Funcs {
			dt := ir.NewDomTree(f)
			for _, b := range f.Blocks {
				id := dt.Idom(b)
				if id == nil {
					continue
				}
				if id == b {
					t.Fatalf("seed %d: idom(%s) is itself", seed, b.Name)
				}
				if !dt.Dominates(id, b) {
					t.Fatalf("seed %d: idom(%s)=%s does not dominate it", seed, b.Name, id.Name)
				}
			}
		}
	}
}

func TestLoopHeadersDominateBodies(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		m := Generate(seed, Default())
		for _, f := range m.Funcs {
			dt := ir.NewDomTree(f)
			li := ir.NewLoopInfo(f)
			for _, l := range li.Loops {
				for b := range l.Blocks {
					if !dt.Dominates(l.Header, b) {
						t.Fatalf("seed %d %s: header %s must dominate body %s",
							seed, f.Name, l.Header.Name, b.Name)
					}
				}
			}
			for _, be := range li.BackEdges {
				if !dt.Dominates(be.To, be.From) {
					t.Fatalf("seed %d: back edge target %s must dominate source %s",
						seed, be.To.Name, be.From.Name)
				}
			}
		}
	}
}

func TestGeneratedLoopsTerminate(t *testing.T) {
	// Reverse postorder must visit every reachable block exactly once (a
	// structural sanity check the interpreter relies on).
	for seed := uint64(1); seed <= 20; seed++ {
		m := Generate(seed, Default())
		for _, f := range m.Funcs {
			rpo := ir.ReversePostorder(f)
			reach := reachable(f)
			if len(rpo) != len(reach) {
				t.Fatalf("seed %d %s: rpo %d blocks, reachable %d",
					seed, f.Name, len(rpo), len(reach))
			}
			seen := map[*ir.Block]bool{}
			for _, b := range rpo {
				if seen[b] {
					t.Fatalf("seed %d: duplicate block in rpo", seed)
				}
				seen[b] = true
			}
		}
	}
}

func TestParserRoundTripsGeneratedPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := Default()
		cfg.WithSync = seed%2 == 0
		m := Generate(seed, cfg)
		text := m.String()
		m2, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, text)
		}
		if m2.String() != text {
			t.Fatalf("seed %d: round trip unstable", seed)
		}
	}
}
