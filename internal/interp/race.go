package interp

// Deterministic data-race detection for the weak-determinism contract.
//
// DetLock (like Kendo) guarantees a reproducible lock order only for
// race-free programs: one unsynchronized conflicting access silently voids
// the guarantee. The detector below turns that silent state into a typed,
// reproducible diag.RaceError. It is a FastTrack-style happens-before
// checker — per-thread vector clocks advanced at the engine's
// synchronization events (lock acquire/release, barrier, spawn/join) and a
// shadow word per global address — with a lockset pre-filter: two accesses
// that share a held lock are serialized by that lock's critical sections,
// and the release→acquire clock join orders them, so the (cheap) lockset
// intersection skips the vector-clock comparison entirely.
//
// Because the engine itself is deterministic, detection is too: unlike a
// native race detector, the same program produces the *same* RaceError —
// same access pair, same logical clocks, same locksets — on every run, even
// under physical-timing perturbation (Config.JitterSeed), which the
// property tests exploit. Reports are canonicalized (pair ordered by thread
// id, one report per address) so they are diffable artifacts.

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/sim"
)

// RacePolicy selects what happens when a race is detected.
type RacePolicy uint8

// Race policies.
const (
	// RaceFailFast aborts the run at the first race: the simulation returns
	// the *diag.RaceError.
	RaceFailFast RacePolicy = iota
	// RaceReport records races (deterministically capped at MaxReports) and
	// lets the run finish; read them from Machine.Races.
	RaceReport
)

// RaceConfig enables and tunes the detector.
type RaceConfig struct {
	Policy RacePolicy
	// MaxReports caps collected reports under RaceReport (further races are
	// counted, not stored). 0 means the default of 100.
	MaxReports int
	// Reference disables the FastTrack-style same-epoch fast path, forcing
	// the full lockset/vector-clock comparison on every access. Reports are
	// byte-identical either way (the fast path only skips re-deriving
	// conclusions the slow path already reached in the same sync epoch);
	// the equivalence property tests run both.
	Reference bool
}

// raceEpoch is one remembered access in the shadow memory.
type raceEpoch struct {
	tid   int
	write bool
	// ver is the accessor's sync-epoch version (RaceDetector.ver) at the
	// access: unchanged ver means the accessor's vector clock AND lockset
	// are exactly as remembered, which is what licenses the fast path.
	ver uint64
	// clock is the accessor's own vector-clock component at the access.
	clock int64
	// vc is the accessor's vector clock at the access; the buffer is owned
	// by the shadow cell and reused across updates.
	vc []int64
	// lockset is the accessor's held-lock snapshot: an immutable slice
	// shared with the detector's per-thread intern (never mutated in place).
	lockset []int
	// fn/block/pc identify the IR access site; formatting is deferred to
	// report time so the hot path does no string work.
	fn, block string
	pc        int
}

// shadowCell is the per-address detector state: the last write plus the
// reads concurrent with it (one entry per thread).
type shadowCell struct {
	hasWrite bool
	write    raceEpoch
	reads    []raceEpoch
	// poisoned suppresses further reports for this address: one race per
	// address keeps reports canonical and bounded.
	poisoned bool
}

// RaceDetector tracks happens-before across one machine's threads. It
// implements sim.SyncObserver; the engine drives the clock updates, the
// interpreter drives the access checks.
type RaceDetector struct {
	cfg RaceConfig

	// vcs[t] is thread t's vector clock; vcs[t][t] is its epoch.
	vcs [][]int64
	// locksets[t] is thread t's held-lock snapshot, sorted ascending. Each
	// acquire/release builds a fresh slice so stored references stay valid.
	locksets [][]int
	// lockRel[l] is the vector clock of lock l's last release.
	lockRel [][]int64
	// shadow is indexed by flat global address (Machine.baseOff + index).
	shadow []shadowCell

	// ver[t] counts the synchronization events that touched thread t's
	// vector clock or lockset (every observer hook below bumps the threads
	// it mutates). Between bumps a thread's happens-before state is frozen,
	// so a shadow epoch recorded at the same (tid, ver) was evaluated
	// against *identical* detector state — the FastTrack-style fast path in
	// access() exploits exactly that.
	ver []uint64
	// jointBuf is the reused join buffer for BarrierReleased.
	jointBuf []int64

	races      []*diag.RaceError
	suppressed int
}

// newRaceDetector sizes the detector for a machine: one shadow cell per
// global word, one release clock per lock, one vector clock per initial
// thread (spawned threads are added by the Spawned hook).
func newRaceDetector(cfg RaceConfig, mod *ir.Module, threads int) *RaceDetector {
	if cfg.MaxReports <= 0 {
		cfg.MaxReports = 100
	}
	var words int64
	for _, g := range mod.Globals {
		words += g.Size
	}
	d := &RaceDetector{
		cfg:     cfg,
		lockRel: make([][]int64, mod.NumLocks),
		shadow:  make([]shadowCell, words),
	}
	for t := 0; t < threads; t++ {
		d.addThread(t)
	}
	return d
}

// addThread registers thread ids up to and including tid with fresh clocks.
func (d *RaceDetector) addThread(tid int) {
	for len(d.vcs) <= tid {
		t := len(d.vcs)
		vc := make([]int64, t+1)
		vc[t] = 1
		d.vcs = append(d.vcs, vc)
		d.locksets = append(d.locksets, nil)
		d.ver = append(d.ver, 0)
	}
}

// vcAt reads component i of a (variable-width) vector clock.
func vcAt(vc []int64, i int) int64 {
	if i < len(vc) {
		return vc[i]
	}
	return 0
}

// vcJoin merges src into dst component-wise (dst := dst ⊔ src).
func vcJoin(dst []int64, src []int64) []int64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
	return dst
}

// vcCopy copies src into the (possibly reused) buffer dst.
func vcCopy(dst []int64, src []int64) []int64 {
	dst = append(dst[:0], src...)
	return dst
}

// locksetsIntersect reports whether two sorted lock-id slices share a lock.
func locksetsIntersect(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// --- sim.SyncObserver: clock updates at synchronization events -------------

// Acquired: the acquirer inherits everything that happened before the
// lock's last release (the release→acquire edge).
func (d *RaceDetector) Acquired(thread, lock int) {
	d.addThread(thread)
	if lock >= len(d.lockRel) {
		grown := make([][]int64, lock+1)
		copy(grown, d.lockRel)
		d.lockRel = grown
	}
	d.vcs[thread] = vcJoin(d.vcs[thread], d.lockRel[lock])
	// Fresh sorted snapshot; the old slice may be referenced from epochs.
	old := d.locksets[thread]
	ls := make([]int, 0, len(old)+1)
	inserted := false
	for _, l := range old {
		if !inserted && lock < l {
			ls = append(ls, lock)
			inserted = true
		}
		if l != lock {
			ls = append(ls, l)
		}
	}
	if !inserted {
		ls = append(ls, lock)
	}
	d.locksets[thread] = ls
	d.ver[thread]++
}

// Released: the lock remembers the releaser's clock, and the releaser
// starts a new epoch so later same-thread accesses are not confused with
// pre-release ones.
func (d *RaceDetector) Released(thread, lock int) {
	d.addThread(thread)
	if lock >= len(d.lockRel) {
		grown := make([][]int64, lock+1)
		copy(grown, d.lockRel)
		d.lockRel = grown
	}
	d.lockRel[lock] = vcCopy(d.lockRel[lock], d.vcs[thread])
	d.vcs[thread][thread]++
	old := d.locksets[thread]
	ls := make([]int, 0, len(old))
	for _, l := range old {
		if l != lock {
			ls = append(ls, l)
		}
	}
	d.locksets[thread] = ls
	d.ver[thread]++
}

// BarrierReleased: every participant happens-before every participant's
// post-barrier code — all clocks join, then each starts a new epoch.
func (d *RaceDetector) BarrierReleased(threads []int) {
	joint := d.jointBuf[:0]
	for _, t := range threads {
		d.addThread(t)
		joint = vcJoin(joint, d.vcs[t])
	}
	d.jointBuf = joint
	for _, t := range threads {
		d.vcs[t] = vcCopy(d.vcs[t], joint)
		d.vcs[t][t]++
		d.ver[t]++
	}
}

// Spawned: the child inherits the parent's history; the parent ticks so the
// spawn point separates its pre- and post-spawn epochs.
func (d *RaceDetector) Spawned(parent, child int) {
	d.addThread(parent)
	d.addThread(child)
	d.vcs[child] = vcJoin(d.vcs[child], d.vcs[parent])
	d.vcs[parent][parent]++
	d.ver[parent]++
	d.ver[child]++
}

// Joined: the waiter inherits everything the target did.
func (d *RaceDetector) Joined(waiter, target int) {
	d.addThread(waiter)
	d.addThread(target)
	d.vcs[waiter] = vcJoin(d.vcs[waiter], d.vcs[target])
	d.vcs[waiter][waiter]++
	d.ver[waiter]++
}

// --- access checking --------------------------------------------------------

// racesWith reports whether the remembered access prev conflicts with the
// current access by tid: no common lock (the cheap pre-filter — a shared
// lock serializes the critical sections and the release→acquire join orders
// them) and no happens-before edge (prev's epoch not covered by tid's
// clock). Same-thread accesses are always ordered (own components are
// monotone), so no special case is needed.
func (d *RaceDetector) racesWith(prev *raceEpoch, tid int) bool {
	if locksetsIntersect(prev.lockset, d.locksets[tid]) {
		return false
	}
	return prev.clock > vcAt(d.vcs[tid], prev.tid)
}

// access checks one load (write=false) or store (write=true) of sym[idx] at
// flat address addr, executed by tid at IR site fn.block+pc. It returns a
// non-nil *diag.RaceError only under RaceFailFast.
func (d *RaceDetector) access(tid int, sym string, idx, addr int64, write bool, fn, block string, pc int) error {
	cell := &d.shadow[addr]
	if tid >= len(d.vcs) {
		d.addThread(tid)
	}
	if !d.cfg.Reference {
		// Same-epoch fast paths (FastTrack's "same epoch" case adapted to
		// this detector): a re-access by the thread that owns the matching
		// shadow epoch, in the same sync epoch (ver unchanged → vector clock
		// and lockset both unchanged), was already evaluated against this
		// exact cell state — any race it could report would have poisoned
		// the cell then. Only the remembered site needs refreshing; the
		// lockset/vector-clock comparison and the vc copy are skipped.
		if write {
			// Presence of any read entry, or a foreign write, falls through:
			// those paths can produce a report or must rewrite cell state.
			if cell.hasWrite && cell.write.tid == tid && len(cell.reads) == 0 &&
				cell.write.ver == d.ver[tid] && cell.write.clock == d.vcs[tid][tid] {
				cell.write.fn, cell.write.block, cell.write.pc = fn, block, pc
				return nil
			}
		} else {
			// A surviving own read entry proves no write intervened (writes
			// clear the read list), so the write-vs-read check from the
			// entry's creation still stands.
			for i := range cell.reads {
				r := &cell.reads[i]
				if r.tid == tid {
					if r.ver == d.ver[tid] && r.clock == d.vcs[tid][tid] {
						r.fn, r.block, r.pc = fn, block, pc
						return nil
					}
					break
				}
			}
		}
	}
	var report *raceEpoch
	if !cell.poisoned {
		if cell.hasWrite && d.racesWith(&cell.write, tid) {
			report = &cell.write
		}
		if report == nil && write {
			// A write also conflicts with concurrent reads; scan in thread
			// order so the reported pair is canonical.
			for i := range cell.reads {
				r := &cell.reads[i]
				if (report == nil || r.tid < report.tid) && d.racesWith(r, tid) {
					report = r
				}
			}
		}
	}
	var failErr error
	if report != nil {
		re := d.buildReport(sym, idx, addr, report, tid, write, fn, block, pc)
		cell.poisoned = true
		if d.cfg.Policy == RaceFailFast {
			failErr = re
		} else if len(d.races) < d.cfg.MaxReports {
			d.races = append(d.races, re)
		} else {
			d.suppressed++
		}
	}
	// Update the shadow word (epoch buffers are reused, so the steady-state
	// enabled path allocates nothing either).
	me := d.vcs[tid]
	if write {
		cell.hasWrite = true
		cell.write.tid = tid
		cell.write.write = true
		cell.write.ver = d.ver[tid]
		cell.write.clock = me[tid]
		cell.write.vc = vcCopy(cell.write.vc, me)
		cell.write.lockset = d.locksets[tid]
		cell.write.fn, cell.write.block, cell.write.pc = fn, block, pc
		cell.reads = cell.reads[:0]
		return failErr
	}
	for i := range cell.reads {
		if cell.reads[i].tid == tid {
			r := &cell.reads[i]
			r.ver = d.ver[tid]
			r.clock = me[tid]
			r.vc = vcCopy(r.vc, me)
			r.lockset = d.locksets[tid]
			r.fn, r.block, r.pc = fn, block, pc
			return failErr
		}
	}
	// New read entry: reclaim a slot truncated by an earlier write when the
	// capacity is there (its vc buffer is reused by vcCopy), so steady-state
	// detection stays allocation-free.
	if n := len(cell.reads); n < cap(cell.reads) {
		cell.reads = cell.reads[:n+1]
		r := &cell.reads[n]
		r.tid = tid
		r.write = false
		r.ver = d.ver[tid]
		r.clock = me[tid]
		r.vc = vcCopy(r.vc, me)
		r.lockset = d.locksets[tid]
		r.fn, r.block, r.pc = fn, block, pc
		return failErr
	}
	cell.reads = append(cell.reads, raceEpoch{
		tid: tid, ver: d.ver[tid], clock: me[tid], vc: append([]int64(nil), me...),
		lockset: d.locksets[tid], fn: fn, block: block, pc: pc,
	})
	return failErr
}

// buildReport assembles the canonical RaceError: accesses ordered by thread
// id (racing accesses are never same-thread), data copied out of the reused
// epoch buffers.
func (d *RaceDetector) buildReport(sym string, idx, addr int64, prev *raceEpoch, tid int, write bool, fn, block string, pc int) *diag.RaceError {
	cur := diag.RaceAccess{
		Thread:  tid,
		Write:   write,
		Clock:   d.vcs[tid][tid],
		VC:      append([]int64(nil), d.vcs[tid]...),
		Lockset: append([]int(nil), d.locksets[tid]...),
		Site:    fmt.Sprintf("%s.%s+%d", fn, block, pc),
	}
	old := diag.RaceAccess{
		Thread:  prev.tid,
		Write:   prev.write,
		Clock:   prev.clock,
		VC:      append([]int64(nil), prev.vc...),
		Lockset: append([]int(nil), prev.lockset...),
		Site:    fmt.Sprintf("%s.%s+%d", prev.fn, prev.block, prev.pc),
	}
	re := &diag.RaceError{Sym: sym, Index: idx, Addr: addr}
	if old.Thread < cur.Thread {
		re.First, re.Second = old, cur
	} else {
		re.First, re.Second = cur, old
	}
	return re
}

// Races returns the collected reports (RaceReport policy), in detection
// order — deterministic, since the engine's schedule is.
func (d *RaceDetector) Races() []*diag.RaceError { return d.races }

// Suppressed counts races detected beyond the MaxReports cap.
func (d *RaceDetector) Suppressed() int { return d.suppressed }

// raceAccess forwards one memory access to the detector with its IR site
// (fr.pc was already advanced past the instruction, hence the -1). The
// returned error is the fail-fast *diag.RaceError, surfaced unwrapped so
// errors.As sees it through the engine's thread-context wrapper.
func (t *Thread) raceAccess(ins *ir.Instr, idx int64, write bool) error {
	fr := t.top()
	return t.mach.race.access(t.tid, ins.Sym, idx, t.mach.baseOff[ins.Sym]+idx,
		write, fr.fn.Name, fr.block.Name, fr.pc-1)
}

// Observer exposes the machine's race detector as a sim.SyncObserver for
// engine wiring, or nil when detection is disabled.
func (m *Machine) Observer() sim.SyncObserver {
	if m.race == nil {
		return nil
	}
	return m.race
}

// Races returns the race reports collected by the machine's detector (nil
// when detection is off or no race was found).
func (m *Machine) Races() []*diag.RaceError {
	if m.race == nil {
		return nil
	}
	return m.race.races
}

// RacesSuppressed counts reports dropped by the deterministic cap.
func (m *Machine) RacesSuppressed() int {
	if m.race == nil {
		return 0
	}
	return m.race.suppressed
}
