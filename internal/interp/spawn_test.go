package interp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sim"
)

// spawnSrc: main spawns two workers with different arguments, joins both,
// and combines their results through shared memory.
const spawnSrc = `
module spawntest
global out 8
locks 1

func worker(r0) regs 4 {
entry:
  r1 = mul r0, r0
  lock 0
  store out[r0], r1
  unlock 0
  ret r1
}

func main() regs 8 {
entry:
  r0 = spawn worker(2)
  r1 = spawn worker(3)
  join r0
  join r1
  r2 = load out[2]
  r3 = load out[3]
  r4 = add r2, r3
  print r4
  ret r4
}
`

func runSpawn(t *testing.T, m *ir.Module, policy sim.LockPolicy) (*Machine, []*Thread, *sim.Stats) {
	t.Helper()
	mach, ths, err := NewMachine(Config{Module: m, Threads: 1})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	eng := sim.New(sim.Config{
		Policy: policy, NumLocks: m.NumLocks, RecordTrace: true,
	}, Programs(ths))
	stats, err := eng.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return mach, ths, stats
}

func TestSpawnJoinBasic(t *testing.T) {
	m := ir.MustParse(spawnSrc)
	mach, ths, stats := runSpawn(t, m, sim.PolicyFCFS)
	if got := ths[0].Output[0]; got != 13 { // 4 + 9
		t.Fatalf("output = %d, want 13", got)
	}
	if len(mach.Spawned()) != 2 {
		t.Fatalf("spawned = %d threads", len(mach.Spawned()))
	}
	if stats.Acquisitions != 2 {
		t.Fatalf("acquisitions = %d", stats.Acquisitions)
	}
	// Three final clocks/cycles entries: main + 2 spawned.
	if len(stats.PerThreadCycles) != 3 {
		t.Fatalf("per-thread cycles = %d entries", len(stats.PerThreadCycles))
	}
}

func TestSpawnHandlesAreDeterministic(t *testing.T) {
	run := func() []sim.Acquisition {
		m := ir.MustParse(spawnSrc)
		_, _, stats := runSpawn(t, m, sim.PolicyDet)
		return stats.Trace
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 2 {
		t.Fatalf("trace lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spawned-thread schedule diverged at %d", i)
		}
	}
}

func TestSpawnUnderDetPolicyClocks(t *testing.T) {
	m := ir.MustParse(spawnSrc)
	_, _, stats := runSpawn(t, m, sim.PolicyDet)
	// Spawned threads start at parent clock+1 and tick at their lock ops:
	// final clocks must be positive and deterministic.
	for tid, c := range stats.FinalClocks {
		if c <= 0 {
			t.Fatalf("thread %d final clock = %d", tid, c)
		}
	}
}

func TestSpawnRoundTripAndInstrument(t *testing.T) {
	m := ir.MustParse(spawnSrc)
	text := m.String()
	m2, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if m2.String() != text {
		t.Fatalf("spawn/join round trip unstable")
	}
	// Instrumentation treats spawn/join as sync points; worker is a spawn
	// root and therefore must NOT be clocked even under O1.
	res, err := core.Instrument(m2, nil, nil, core.Options{O1: true, Roots: []string{"main"}})
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	if _, ok := res.Clockable["worker"]; ok {
		t.Fatalf("spawn root must not be clockable")
	}
	mach, ths, err := NewMachine(Config{Module: m2, Threads: 1})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	eng := sim.New(sim.Config{Policy: sim.PolicyDet, NumLocks: m2.NumLocks}, Programs(ths))
	if _, err := eng.Run(); err != nil {
		t.Fatalf("instrumented spawn run: %v", err)
	}
	_ = mach
}

func TestJoinInvalidTargetPanics(t *testing.T) {
	src := `
module badjoin
func main() regs 2 {
entry:
  r0 = const 99
  join r0
  ret 0
}
`
	m := ir.MustParse(src)
	_, ths, err := NewMachine(Config{Module: m, Threads: 1})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("join of invalid handle must panic")
		}
	}()
	eng := sim.New(sim.Config{}, Programs(ths))
	_, _ = eng.Run()
}

func TestSpawnFanOutSum(t *testing.T) {
	// main spawns 6 workers, each writing id*10; after joins the sum checks.
	src := `
module fan
global slots 16

func w(r0) regs 2 {
entry:
  r1 = mul r0, 10
  store slots[r0], r1
  ret r1
}

func main() regs 16 {
entry:
  r1 = spawn w(1)
  r2 = spawn w(2)
  r3 = spawn w(3)
  r4 = spawn w(4)
  r5 = spawn w(5)
  r6 = spawn w(6)
  join r1
  join r2
  join r3
  join r4
  join r5
  join r6
  r7 = const 0
  r8 = const 0
  jmp sum
sum:
  r9 = lt r8, 16
  br r9, body, done
body:
  r10 = load slots[r8]
  r7 = add r7, r10
  r8 = add r8, 1
  jmp sum
done:
  print r7
  ret r7
}
`
	m := ir.MustParse(src)
	_, ths, stats := runSpawn(t, m, sim.PolicyDet)
	if got := ths[0].Output[0]; got != 210 {
		t.Fatalf("sum = %d, want 210", got)
	}
	if len(stats.FinalClocks) != 7 {
		t.Fatalf("threads = %d, want 7", len(stats.FinalClocks))
	}
}
