package interp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sim"
)

// runSim assembles a machine and engine and runs to completion.
func runSim(t *testing.T, m *ir.Module, threads int, mode ClockMode, policy sim.LockPolicy) (*Machine, []*Thread, *sim.Stats) {
	t.Helper()
	mach, ths, err := NewMachine(Config{
		Module:  m,
		Threads: threads,
		Entry:   "main",
		Mode:    mode,
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	eng := sim.New(sim.Config{
		Policy:      policy,
		NumLocks:    m.NumLocks,
		NumBarriers: m.NumBars,
		RecordTrace: true,
	}, Programs(ths))
	stats, err := eng.Run()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return mach, ths, stats
}

const sumSrc = `
module sum
global acc 1
locks 1

func main() regs 8 {
entry:
  r0 = const 0
  r1 = const 0
  jmp loop
loop:
  r2 = lt r0, 100
  br r2, body, done
body:
  r1 = add r1, r0
  r0 = add r0, 1
  jmp loop
done:
  lock 0
  r3 = load acc[0]
  r4 = add r3, r1
  store acc[0], r4
  unlock 0
  ret r1
}
`

func TestSequentialSum(t *testing.T) {
	m := ir.MustParse(sumSrc)
	mach, _, stats := runSim(t, m, 1, ModeDetLock, sim.PolicyFCFS)
	if got := mach.Global("acc")[0]; got != 4950 {
		t.Fatalf("acc = %d, want 4950", got)
	}
	if stats.Acquisitions != 1 {
		t.Fatalf("acquisitions = %d", stats.Acquisitions)
	}
	if stats.Makespan <= 0 {
		t.Fatalf("makespan = %d", stats.Makespan)
	}
}

func TestParallelSumAllPolicies(t *testing.T) {
	for _, policy := range []sim.LockPolicy{sim.PolicyFCFS, sim.PolicyDet} {
		m := ir.MustParse(sumSrc)
		mach, _, stats := runSim(t, m, 4, ModeDetLock, policy)
		if got := mach.Global("acc")[0]; got != 4*4950 {
			t.Fatalf("policy %d: acc = %d, want %d", policy, got, 4*4950)
		}
		if stats.Acquisitions != 4 {
			t.Fatalf("policy %d: acquisitions = %d", policy, stats.Acquisitions)
		}
	}
}

const tidSrc = `
module tid
global out 8

func main() regs 4 {
entry:
  r0 = tid
  r1 = nthreads
  r2 = mul r0, 10
  r2 = add r2, r1
  store out[r0], r2
  print r2
  ret 0
}
`

func TestTidAndPrint(t *testing.T) {
	m := ir.MustParse(tidSrc)
	mach, ths, _ := runSim(t, m, 4, ModeDetLock, sim.PolicyFCFS)
	out := mach.Global("out")
	for tid := 0; tid < 4; tid++ {
		want := int64(tid*10 + 4)
		if out[tid] != want {
			t.Fatalf("out[%d] = %d, want %d", tid, out[tid], want)
		}
		if len(ths[tid].Output) != 1 || ths[tid].Output[0] != want {
			t.Fatalf("thread %d output = %v", tid, ths[tid].Output)
		}
	}
}

const callSrc = `
module call
func square(r0) regs 2 {
entry:
  r1 = mul r0, r0
  ret r1
}
func main() regs 4 {
entry:
  r0 = call square(7)
  r1 = call sqrt(r0)
  print r0
  print r1
  ret r1
}
`

func TestCallsAndBuiltins(t *testing.T) {
	m := ir.MustParse(callSrc)
	_, ths, _ := runSim(t, m, 1, ModeDetLock, sim.PolicyFCFS)
	if ths[0].Output[0] != 49 || ths[0].Output[1] != 7 {
		t.Fatalf("output = %v, want [49 7]", ths[0].Output)
	}
}

func TestRecursionOverflowDetected(t *testing.T) {
	src := `
module rec
func f(r0) regs 2 {
entry:
  r1 = call f(r0)
  ret r1
}
func main() regs 2 {
entry:
  r0 = call f(1)
  ret r0
}
`
	m := ir.MustParse(src)
	mach, ths, err := NewMachine(Config{Module: m, Threads: 1})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	_ = mach
	eng := sim.New(sim.Config{}, Programs(ths))
	_, err = eng.Run()
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v, want stack overflow", err)
	}
}

func TestOutOfBoundsDetected(t *testing.T) {
	src := `
module oob
global g 4
func main() regs 2 {
entry:
  r0 = const 99
  r1 = load g[r0]
  ret r1
}
`
	m := ir.MustParse(src)
	_, ths, err := NewMachine(Config{Module: m, Threads: 1})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	eng := sim.New(sim.Config{}, Programs(ths))
	_, err = eng.Run()
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("err = %v, want out of bounds", err)
	}
}

const contentionSrc = `
module contention
global hist 64
locks 1

func main() regs 8 {
entry:
  r0 = const 0
  r5 = tid
  r5 = mul r5, 37
  r5 = add r5, 11
  jmp loop
loop:
  r1 = lt r0, 50
  br r1, body, done
body:
  r5 = mul r5, 1103515245
  r5 = add r5, 12345
  r6 = mod r5, 64
  r7 = ge r6, 0
  br r7, pos, neg
neg:
  r6 = add r6, 64
  jmp pos
pos:
  lock 0
  r2 = load hist[r6]
  r2 = add r2, 1
  store hist[r6], r2
  unlock 0
  r0 = add r0, 1
  jmp loop
done:
  ret 0
}
`

// instrumentFor instruments a fresh parse of src for n threads.
func instrumentFor(t *testing.T, src string, opt core.Options) *ir.Module {
	t.Helper()
	m := ir.MustParse(src)
	opt.Roots = []string{"main"}
	if _, err := core.Instrument(m, nil, nil, opt); err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	return m
}

func TestDeterministicTraceUnderDetPolicy(t *testing.T) {
	ref := func() []sim.Acquisition {
		m := instrumentFor(t, contentionSrc, core.OptAll)
		_, _, stats := runSim(t, m, 4, ModeDetLock, sim.PolicyDet)
		return stats.Trace
	}()
	if len(ref) != 4*50 {
		t.Fatalf("trace length = %d, want 200", len(ref))
	}
	for run := 0; run < 3; run++ {
		got := func() []sim.Acquisition {
			m := instrumentFor(t, contentionSrc, core.OptAll)
			_, _, stats := runSim(t, m, 4, ModeDetLock, sim.PolicyDet)
			return stats.Trace
		}()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("run %d: trace[%d] = %+v, want %+v", run, i, got[i], ref[i])
			}
		}
	}
}

func TestSameResultAcrossOptLevels(t *testing.T) {
	// The program's OUTPUT must be identical whatever instrumentation is
	// applied — instrumentation only changes clocks, never semantics.
	var want []int64
	for i, opt := range core.TableIPresets() {
		m := instrumentFor(t, contentionSrc, opt)
		mach, _, _ := runSim(t, m, 4, ModeDetLock, sim.PolicyDet)
		hist := append([]int64(nil), mach.Global("hist")...)
		var total int64
		for _, v := range hist {
			total += v
		}
		if total != 200 {
			t.Fatalf("optset %d: histogram total = %d, want 200", i, total)
		}
		if i == 0 {
			want = hist
			continue
		}
		for j := range hist {
			if hist[j] != want[j] {
				t.Fatalf("optset %d: hist[%d] = %d, differs from no-opt %d",
					i, j, hist[j], want[j])
			}
		}
	}
}

func TestClockUpdatesCounted(t *testing.T) {
	m := instrumentFor(t, sumSrc, core.OptNone)
	mach, _, _ := runSim(t, m, 1, ModeDetLock, sim.PolicyFCFS)
	if mach.ClockUpdates == 0 {
		t.Fatalf("instrumented run should count clock updates")
	}
	// The loop runs 100 iterations; expect at least one update per iteration.
	if mach.ClockUpdates < 100 {
		t.Fatalf("ClockUpdates = %d, want >= 100", mach.ClockUpdates)
	}
}

func TestOptimizationReducesClockUpdates(t *testing.T) {
	mNone := instrumentFor(t, contentionSrc, core.OptNone)
	machNone, _, _ := runSim(t, mNone, 2, ModeDetLock, sim.PolicyDet)
	mAll := instrumentFor(t, contentionSrc, core.OptAll)
	machAll, _, _ := runSim(t, mAll, 2, ModeDetLock, sim.PolicyDet)
	if machAll.ClockUpdates >= machNone.ClockUpdates {
		t.Fatalf("all-opts updates %d should be below no-opt %d",
			machAll.ClockUpdates, machNone.ClockUpdates)
	}
}

func TestKendoMode(t *testing.T) {
	m := ir.MustParse(contentionSrc) // uninstrumented
	mach, ths, err := NewMachine(Config{
		Module:         m,
		Threads:        4,
		Mode:           ModeKendo,
		KendoChunkSize: 20,
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	eng := sim.New(sim.Config{
		Policy:      sim.PolicyDet,
		NumLocks:    m.NumLocks,
		RecordTrace: true,
	}, Programs(ths))
	stats, err := eng.Run()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if stats.Acquisitions != 200 {
		t.Fatalf("acquisitions = %d", stats.Acquisitions)
	}
	if mach.Interrupts == 0 {
		t.Fatalf("kendo mode should take overflow interrupts")
	}
	if mach.StoresRetired == 0 {
		t.Fatalf("stores not counted")
	}
}

func TestKendoTraceDeterministic(t *testing.T) {
	run := func() []sim.Acquisition {
		m := ir.MustParse(contentionSrc)
		_, ths, err := NewMachine(Config{
			Module: m, Threads: 4, Mode: ModeKendo, KendoChunkSize: 64,
		})
		if err != nil {
			t.Fatalf("NewMachine: %v", err)
		}
		eng := sim.New(sim.Config{
			Policy: sim.PolicyDet, NumLocks: m.NumLocks, RecordTrace: true,
		}, Programs(ths))
		stats, err := eng.Run()
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		return stats.Trace
	}
	ref := run()
	got := run()
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("kendo trace diverged at %d", i)
		}
	}
}

const barrierSrc = `
module bar
global phase 8
barriers 1

func main() regs 4 {
entry:
  r0 = tid
  store phase[r0], 1
  barrier 0
  store phase[r0], 2
  barrier 0
  ret 0
}
`

func TestBarrierRounds(t *testing.T) {
	m := ir.MustParse(barrierSrc)
	mach, _, stats := runSim(t, m, 4, ModeDetLock, sim.PolicyDet)
	if stats.BarrierEpisodes != 2 {
		t.Fatalf("episodes = %d, want 2", stats.BarrierEpisodes)
	}
	for tid := 0; tid < 4; tid++ {
		if mach.Global("phase")[tid] != 2 {
			t.Fatalf("phase[%d] = %d", tid, mach.Global("phase")[tid])
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	src := `
module dl
locks 2
func main() regs 2 {
entry:
  r0 = tid
  br r0, t1, t0
t0:
  lock 0
  lock 1
  unlock 1
  unlock 0
  ret 0
t1:
  lock 1
  lock 0
  unlock 0
  unlock 1
  ret 0
}
`
	m := ir.MustParse(src)
	_, ths, err := NewMachine(Config{Module: m, Threads: 2})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	eng := sim.New(sim.Config{Policy: sim.PolicyFCFS, NumLocks: 2}, Programs(ths))
	_, err = eng.Run()
	if err == nil {
		t.Fatalf("classic AB/BA deadlock should be reported")
	}
}

func TestEngineStepLimit(t *testing.T) {
	src := `
module spin
func main() regs 2 {
entry:
  jmp entry
}
`
	m := ir.MustParse(src)
	_, ths, err := NewMachine(Config{Module: m, Threads: 1})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	eng := sim.New(sim.Config{MaxSteps: 100}, Programs(ths))
	_, err = eng.Run()
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit", err)
	}
}

func TestEntryValidation(t *testing.T) {
	m := ir.MustParse(sumSrc)
	if _, _, err := NewMachine(Config{Module: m, Entry: "nosuch"}); err == nil {
		t.Fatalf("missing entry should fail")
	}
	src := `
module e
func main(r0) regs 1 {
entry:
  ret r0
}
`
	m2 := ir.MustParse(src)
	if _, _, err := NewMachine(Config{Module: m2}); err == nil {
		t.Fatalf("entry with params should fail")
	}
}
