// Package interp executes IR modules (package ir) as steppable simulated
// threads for the discrete-event engine (package sim).
//
// Two logical-clock sources are supported, mirroring the paper's comparison:
//
//   - DetLock mode: the clock advances at the clockadd instructions that the
//     pass inserted; the thread yields at every clockadd so publication
//     times are exact (this is what makes start-of-block placement visibly
//     better than end-of-block in Figure 15).
//   - Kendo mode: the clock comes from a simulated deterministic hardware
//     performance counter whose published value advances only when the
//     counter overflows — every ChunkSize units — at the cost of an
//     interrupt. This reproduces Kendo's staleness/interrupt trade-off that
//     the paper's §V-C discusses. Kendo counts retired stores; the synthetic
//     workloads here are load/ALU-heavy, so the counter instead counts
//     retired instructions (weighted by the cost model) — the same
//     deterministic-progress signal with a density high enough to be useful,
//     preserving the chunk-size trade-off the comparison is about.
package interp

import (
	"errors"
	"fmt"
	"math"
	"unsafe"

	"repro/internal/estimates"
	"repro/internal/ir"
	"repro/internal/sim"
)

// ClockMode selects the logical clock source.
type ClockMode uint8

// Clock modes.
const (
	// ModeDetLock: clockadd instructions drive the published clock.
	ModeDetLock ClockMode = iota
	// ModeKendo: retired stores drive the clock, published per chunk.
	ModeKendo
)

// Config parameterizes machine construction.
type Config struct {
	Module    *ir.Module
	Costs     *ir.CostModel
	Estimates *estimates.Table
	Threads   int
	// Entry is the function every thread runs (SPMD); it must take no
	// parameters and use the tid/nthreads instructions to self-identify.
	Entry string

	Mode ClockMode
	// KendoChunkSize is the performance-counter overflow period in
	// ModeKendo, in weighted retired-instruction units.
	KendoChunkSize int64
	// KendoInterruptCost is the cycle cost of each overflow interrupt.
	KendoInterruptCost int64

	// MaxStepCycles bounds one engine step; long straight-line runs yield
	// periodically so the engine can interleave. 0 means default.
	MaxStepCycles int64

	// Cache model: the logical clock charges every load/store its nominal
	// cost, but real machines miss in the cache — extra cycles the clock
	// cannot see. That clock-vs-time drift is what forces threads to wait
	// for each other's clocks under deterministic execution, so modeling it
	// is essential for the paper's overhead numbers. A memory access misses
	// when an address hash falls below MissRate out of 256 (deterministic,
	// data-dependent), costing MissPenalty extra cycles. Set MissRate -1 to
	// disable. Defaults: rate 32/256, penalty 10.
	MissRate    int64
	MissPenalty int64

	// Race, when non-nil, enables deterministic data-race detection: every
	// load/store is checked against a vector-clock shadow memory whose
	// clocks the engine advances at sync events (wire Machine.Observer into
	// sim.Config.Observer). When nil — the default — the interpreter hot
	// loop pays a single pointer test and allocates nothing.
	Race *RaceConfig

	// JitterSeed/JitterAmp perturb *physical* timing only: each engine step
	// gains a deterministic pseudo-random 0..JitterAmp extra cycles derived
	// from (seed, thread id). Logical clocks are untouched, so under the
	// deterministic policy the synchronization schedule — and any race or
	// failure report — must be identical across seeds; the robustness
	// property tests assert exactly that (the simulator-side analog of
	// internal/det's FaultInjector). JitterSeed 0 disables; JitterAmp
	// defaults to 16 when a seed is set.
	JitterSeed int64
	JitterAmp  int64

	// Reference selects the original tree-walking interpreter instead of the
	// decoded-dispatch loop (decode.go). Both produce byte-identical steps,
	// cycle counts, stats, and errors; the reference path exists as the
	// equivalence oracle for the property tests and as a fallback while
	// triaging suspected decode bugs.
	Reference bool

	// DCache, when non-nil, shares decoded instruction streams across
	// machines (decoded streams are machine-independent; see dcache.go).
	// The table sweeps build hundreds of machines over the same handful of
	// modules, so sharing removes all but the first decode of each function.
	DCache *DCache

	// SkipVerify certifies that Module already passed Verify with this
	// Estimates table. The harness verifies each module once and then runs
	// many machines over it; re-verifying per machine is measurable on the
	// sweep. Never set it for a module that has been mutated since its
	// Verify.
	SkipVerify bool
}

// Machine holds the state shared by all simulated threads of one run:
// global memory plus configuration.
type Machine struct {
	cfg     Config
	mod     *ir.Module
	cm      *ir.CostModel
	est     *estimates.Table
	globals map[string][]int64
	baseOff map[string]int64 // flat address base per global, for the cache model

	// Slot-indexed views of the globals, in Module.Globals order: decoded
	// loads/stores carry a slot index (machine-independent) instead of a
	// buffer, and the dispatch loop resolves it through these tables.
	gidx  map[string]int   // global name -> slot
	gtab  [][]int64        // slot -> buffer
	gptrs []unsafe.Pointer // slot -> buffer base (unchecked access path)

	// spawned collects dynamically created threads so callers can read
	// their outputs after the run.
	spawned []*Thread

	// race is the optional data-race detector; nil when disabled.
	race *RaceDetector

	// dcache memoizes decoded instruction streams per function (decode.go):
	// a lock-free per-machine view in front of the optional shared
	// Config.DCache.
	dcache map[*ir.Func]*dcode

	// Stats.
	InstrsExecuted int64
	ClockUpdates   int64
	StoresRetired  int64
	Interrupts     int64
	CacheMisses    int64
}

// missCycles returns the extra (clock-invisible) cycles for an access to
// global sym at index idx.
func (m *Machine) missCycles(sym string, idx int64) int64 {
	if m.cfg.MissRate < 0 {
		return 0
	}
	addr := m.baseOff[sym] + idx
	h := uint64(addr) * 0x9E3779B97F4A7C15
	if int64((h>>32)&0xFF) < m.cfg.MissRate {
		m.CacheMisses++
		return m.cfg.MissPenalty
	}
	return 0
}

// NewMachine builds a machine and its per-thread programs.
func NewMachine(cfg Config) (*Machine, []*Thread, error) {
	if cfg.Module == nil {
		return nil, nil, errors.New("interp: nil module")
	}
	if cfg.Costs == nil {
		cfg.Costs = ir.DefaultCostModel()
	}
	if cfg.Estimates == nil {
		cfg.Estimates = estimates.DefaultTable()
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Entry == "" {
		cfg.Entry = "main"
	}
	if cfg.MaxStepCycles == 0 {
		cfg.MaxStepCycles = 50_000
	}
	if cfg.KendoChunkSize == 0 {
		cfg.KendoChunkSize = 1000
	}
	if cfg.KendoInterruptCost == 0 {
		cfg.KendoInterruptCost = 40
	}
	if cfg.MissRate == 0 {
		cfg.MissRate = 32
	}
	if cfg.MissPenalty == 0 {
		cfg.MissPenalty = 10
	}
	if cfg.JitterSeed != 0 && cfg.JitterAmp == 0 {
		cfg.JitterAmp = 16
	}
	entry := cfg.Module.Func(cfg.Entry)
	if entry == nil {
		return nil, nil, fmt.Errorf("interp: entry function %q not found", cfg.Entry)
	}
	if entry.NumParams != 0 {
		return nil, nil, fmt.Errorf("interp: entry function %q must take no parameters", cfg.Entry)
	}
	if !cfg.SkipVerify {
		if err := cfg.Module.Verify(cfg.Estimates.Has); err != nil {
			return nil, nil, fmt.Errorf("interp: %w", err)
		}
	}
	m := &Machine{
		cfg:     cfg,
		mod:     cfg.Module,
		cm:      cfg.Costs,
		est:     cfg.Estimates,
		globals: map[string][]int64{},
		baseOff: map[string]int64{},
		gidx:    map[string]int{},
		dcache:  map[*ir.Func]*dcode{},
	}
	var off int64
	for i, g := range cfg.Module.Globals {
		buf := make([]int64, g.Size)
		copy(buf, g.Init)
		m.globals[g.Name] = buf
		m.baseOff[g.Name] = off
		m.gidx[g.Name] = i
		m.gtab = append(m.gtab, buf)
		m.gptrs = append(m.gptrs, unsafe.Pointer(unsafe.SliceData(buf)))
		off += g.Size
	}
	if cfg.Race != nil {
		m.race = newRaceDetector(*cfg.Race, cfg.Module, cfg.Threads)
	}
	var threads []*Thread
	for i := 0; i < cfg.Threads; i++ {
		threads = append(threads, newThread(m, i, entry))
	}
	return m, threads, nil
}

// Global returns the current contents of a global (shared across threads).
func (m *Machine) Global(name string) []int64 { return m.globals[name] }

// Spawned returns the dynamically created threads, in creation order.
func (m *Machine) Spawned() []*Thread { return m.spawned }

// Programs converts threads to the sim.Program interface.
func Programs(threads []*Thread) []sim.Program {
	out := make([]sim.Program, len(threads))
	for i, t := range threads {
		out[i] = t
	}
	return out
}

// frame is one call-stack entry. The reference interpreter walks
// block/pc/retDst; the decoded path walks code/dpc/dretDst over the flat
// instruction stream. A frame belongs to exactly one of the two worlds,
// selected by Config.Reference at machine construction.
type frame struct {
	fn     *ir.Func
	regs   []int64
	block  *ir.Block
	pc     int
	retDst ir.Reg // destination register in the CALLER's frame

	code    *dcode // decoded stream (nil under Config.Reference)
	dpc     int32  // decoded program counter
	dretDst int32  // caller-frame result register (scratch for ir.NoReg)
}

// Thread is a steppable interpreter for one simulated thread.
type Thread struct {
	mach *Machine
	tid  int

	stack []frame
	done  bool

	// kendoAccum counts weighted retired instructions since the last Kendo
	// counter overflow.
	kendoAccum int64

	// jitterState is the per-thread xorshift state for physical-timing
	// perturbation (Config.JitterSeed); 0 means not yet initialized.
	jitterState uint64

	// plain short-circuits Step to the decoded dispatcher: set when the
	// machine runs optimized (non-reference) with jitter disabled.
	plain bool

	// Hot configuration mirrored from Machine.cfg at construction; the
	// decoded dispatch prologue reads these instead of chasing m.cfg.
	// chunk is MaxInt64 outside Kendo mode so the dispatch loop's accrual
	// check can run unconditionally.
	kendo       bool
	maxCycles   int64
	chunk       int64
	missRate    int64
	missPenalty int64

	// argbuf is the reused builtin-call argument buffer of the decoded
	// path; steady-state builtin calls allocate nothing.
	argbuf []int64

	// Output is the deterministic print log.
	Output []int64

	// RetiredInstrs counts executed instructions (terminators included).
	RetiredInstrs int64
}

// syncFlush publishes the precise Kendo count at a synchronization
// operation: the thread reads its own counter exactly there (Kendo pauses
// the clock across the wait), while OTHER threads' clocks remain stale until
// their next overflow interrupt — the staleness that makes waiters wait and
// that chunk-size tuning trades against interrupt cost.
func (t *Thread) syncFlush() int64 {
	if t.mach.cfg.Mode != ModeKendo {
		return 0
	}
	d := t.kendoAccum
	t.kendoAccum = 0
	return d
}

func newThread(m *Machine, tid int, entry *ir.Func) *Thread {
	t := m.thread(tid)
	t.push(entry, nil, ir.NoReg)
	return t
}

// thread builds a bare Thread with the hot configuration mirrored onto it
// (every construction path — initial threads and spawns — goes through
// here so the mirrors can never go stale).
func (m *Machine) thread(tid int) *Thread {
	t := &Thread{mach: m, tid: tid}
	t.plain = !m.cfg.Reference && m.cfg.JitterAmp <= 0
	t.kendo = m.cfg.Mode == ModeKendo
	t.maxCycles = m.cfg.MaxStepCycles
	t.chunk = m.cfg.KendoChunkSize
	if !t.kendo {
		t.chunk = math.MaxInt64
	}
	t.missRate = m.cfg.MissRate
	t.missPenalty = m.cfg.MissPenalty
	return t
}

func (t *Thread) push(fn *ir.Func, args []int64, retDst ir.Reg) {
	if !t.mach.cfg.Reference {
		// retDst is only ever ir.NoReg here (root and spawned frames; the
		// decoded call path pushes via pushFast directly), and a root
		// frame's return target is never written, so 0 is safe.
		regs := t.pushFast(t.mach.decode(fn), 0)
		copy(regs, args)
		return
	}
	regs := make([]int64, fn.NumRegs)
	copy(regs, args)
	t.stack = append(t.stack, frame{fn: fn, regs: regs, block: fn.Entry(), retDst: retDst})
}

// errInterp wraps interpreter runtime faults with thread context.
func (t *Thread) errf(format string, args ...any) error {
	return fmt.Errorf("thread %d in %s: %s", t.tid, t.top().fn.Name, fmt.Sprintf(format, args...))
}

func (t *Thread) top() *frame { return &t.stack[len(t.stack)-1] }

func (t *Thread) val(o ir.Operand) int64 {
	if o.IsImm {
		return o.Imm
	}
	return t.top().regs[o.Reg]
}

func (t *Thread) setReg(r ir.Reg, v int64) {
	if r != ir.NoReg {
		t.top().regs[r] = v
	}
}

// Step executes instructions until a yield point: a clock update, a sync
// operation, completion, or the per-step cycle bound. With jitter enabled
// the yielded span gains deterministic extra physical cycles — never a
// logical-clock change, so deterministic schedules are jitter-invariant.
func (t *Thread) Step() (sim.Step, error) {
	var st sim.Step
	err := t.StepInto(&st)
	return st, err
}

// StepInto is the out-parameter form of Step (sim.StepperInto): the engine
// calls it on the optimized path so the decoded dispatch loop writes the
// step straight into the engine's stack slot instead of copying the struct
// through two interface returns.
func (t *Thread) StepInto(st *sim.Step) error {
	if t.plain {
		// Decoded dispatch, no jitter: the common case.
		return t.stepFast(st)
	}
	var err error
	if t.mach.cfg.Reference {
		*st, err = t.step()
	} else {
		err = t.stepFast(st)
	}
	if err == nil && t.mach.cfg.JitterAmp > 0 {
		st.Cycles += t.nextJitter()
	}
	return err
}

// nextJitter draws the next perturbation from the thread's xorshift stream,
// seeded from (JitterSeed, tid) so it depends only on configuration.
func (t *Thread) nextJitter() int64 {
	if t.jitterState == 0 {
		t.jitterState = uint64(t.mach.cfg.JitterSeed)*0x9E3779B97F4A7C15 +
			uint64(t.tid)*2654435761 + 1
	}
	v := t.jitterState
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	t.jitterState = v
	return int64(v % uint64(t.mach.cfg.JitterAmp+1))
}

func (t *Thread) step() (sim.Step, error) {
	if t.done {
		return sim.Step{}, errors.New("step on finished thread")
	}
	var cycles int64
	for {
		fr := t.top()
		if fr.pc >= len(fr.block.Instrs) {
			// Execute the terminator.
			st, yield, err := t.execTerm(fr, &cycles)
			if err != nil {
				return sim.Step{}, err
			}
			if yield {
				return st, nil
			}
			// The bound must also apply to terminator-only cycles, or an
			// empty-block loop would never leave this call.
			if cycles >= t.mach.cfg.MaxStepCycles {
				return sim.Step{Kind: sim.StepAdvance, Cycles: cycles}, nil
			}
			continue
		}
		ins := &fr.block.Instrs[fr.pc]
		fr.pc++
		t.RetiredInstrs++
		t.mach.InstrsExecuted++
		cycles += t.mach.cm.PhysicalInstrCost(ins)
		st, yield, err := t.execInstr(ins, &cycles)
		if err != nil {
			return sim.Step{}, err
		}
		if yield {
			return st, nil
		}
		if t.mach.cfg.Mode == ModeKendo {
			t.kendoAccum += t.mach.cm.InstrCost(ins)
			if t.kendoAccum >= t.mach.cfg.KendoChunkSize {
				// Performance-counter overflow: the interrupt handler
				// publishes the accumulated clock.
				delta := t.kendoAccum
				t.kendoAccum = 0
				t.mach.Interrupts++
				cycles += t.mach.cfg.KendoInterruptCost
				t.mach.ClockUpdates++
				return sim.Step{Kind: sim.StepAdvance, Cycles: cycles, ClockDelta: delta}, nil
			}
		}
		if cycles >= t.mach.cfg.MaxStepCycles {
			return sim.Step{Kind: sim.StepAdvance, Cycles: cycles}, nil
		}
	}
}

// execInstr runs one instruction; yields are returned with their step.
func (t *Thread) execInstr(ins *ir.Instr, cycles *int64) (sim.Step, bool, error) {
	switch ins.Op {
	case ir.OpConst:
		t.setReg(ins.Dst, ins.A.Imm)
	case ir.OpMov:
		t.setReg(ins.Dst, t.val(ins.A))
	case ir.OpAdd:
		t.setReg(ins.Dst, t.val(ins.A)+t.val(ins.B))
	case ir.OpSub:
		t.setReg(ins.Dst, t.val(ins.A)-t.val(ins.B))
	case ir.OpMul:
		t.setReg(ins.Dst, t.val(ins.A)*t.val(ins.B))
	case ir.OpDiv:
		b := t.val(ins.B)
		if b == 0 {
			t.setReg(ins.Dst, 0)
		} else {
			t.setReg(ins.Dst, t.val(ins.A)/b)
		}
	case ir.OpMod:
		b := t.val(ins.B)
		if b == 0 {
			t.setReg(ins.Dst, 0)
		} else {
			t.setReg(ins.Dst, t.val(ins.A)%b)
		}
	case ir.OpAnd:
		t.setReg(ins.Dst, t.val(ins.A)&t.val(ins.B))
	case ir.OpOr:
		t.setReg(ins.Dst, t.val(ins.A)|t.val(ins.B))
	case ir.OpXor:
		t.setReg(ins.Dst, t.val(ins.A)^t.val(ins.B))
	case ir.OpShl:
		t.setReg(ins.Dst, t.val(ins.A)<<uint64(t.val(ins.B)&63))
	case ir.OpShr:
		t.setReg(ins.Dst, t.val(ins.A)>>uint64(t.val(ins.B)&63))
	case ir.OpNeg:
		t.setReg(ins.Dst, -t.val(ins.A))
	case ir.OpNot:
		t.setReg(ins.Dst, ^t.val(ins.A))
	case ir.OpEQ:
		t.setReg(ins.Dst, b2i(t.val(ins.A) == t.val(ins.B)))
	case ir.OpNE:
		t.setReg(ins.Dst, b2i(t.val(ins.A) != t.val(ins.B)))
	case ir.OpLT:
		t.setReg(ins.Dst, b2i(t.val(ins.A) < t.val(ins.B)))
	case ir.OpLE:
		t.setReg(ins.Dst, b2i(t.val(ins.A) <= t.val(ins.B)))
	case ir.OpGT:
		t.setReg(ins.Dst, b2i(t.val(ins.A) > t.val(ins.B)))
	case ir.OpGE:
		t.setReg(ins.Dst, b2i(t.val(ins.A) >= t.val(ins.B)))
	case ir.OpLoad:
		buf := t.mach.globals[ins.Sym]
		idx := t.val(ins.A)
		if idx < 0 || idx >= int64(len(buf)) {
			return sim.Step{}, false, t.errf("load %s[%d] out of bounds (size %d)", ins.Sym, idx, len(buf))
		}
		*cycles += t.mach.missCycles(ins.Sym, idx)
		if t.mach.race != nil {
			if err := t.raceAccess(ins, idx, false); err != nil {
				return sim.Step{}, false, err
			}
		}
		t.setReg(ins.Dst, buf[idx])
	case ir.OpStore:
		buf := t.mach.globals[ins.Sym]
		idx := t.val(ins.A)
		if idx < 0 || idx >= int64(len(buf)) {
			return sim.Step{}, false, t.errf("store %s[%d] out of bounds (size %d)", ins.Sym, idx, len(buf))
		}
		*cycles += t.mach.missCycles(ins.Sym, idx)
		if t.mach.race != nil {
			if err := t.raceAccess(ins, idx, true); err != nil {
				return sim.Step{}, false, err
			}
		}
		buf[idx] = t.val(ins.B)
		t.mach.StoresRetired++
	case ir.OpCall:
		return t.execCall(ins, cycles)
	case ir.OpSpawn:
		callee := t.mach.mod.Func(ins.Callee)
		if callee == nil {
			return sim.Step{}, false, t.errf("spawn of unknown function %q", ins.Callee)
		}
		args := make([]int64, len(ins.Args))
		for k, a := range ins.Args {
			args[k] = t.val(a)
		}
		var dst *int64
		if ins.Dst != ir.NoReg {
			dst = &t.top().regs[ins.Dst]
		}
		return sim.Step{
			Kind:       sim.StepSpawn,
			Cycles:     *cycles,
			ClockDelta: t.syncFlush(),
			SpawnDst:   dst,
			NewProg: func(id int) sim.Program {
				nt := t.mach.thread(id)
				nt.push(callee, args, ir.NoReg)
				t.mach.spawned = append(t.mach.spawned, nt)
				return nt
			},
		}, true, nil
	case ir.OpJoin:
		return sim.Step{Kind: sim.StepJoin, Cycles: *cycles, Obj: int(t.val(ins.A)),
			ClockDelta: t.syncFlush()}, true, nil
	case ir.OpLock:
		return sim.Step{Kind: sim.StepLock, Cycles: *cycles, Obj: int(t.val(ins.A)),
			ClockDelta: t.syncFlush()}, true, nil
	case ir.OpUnlock:
		return sim.Step{Kind: sim.StepUnlock, Cycles: *cycles, Obj: int(t.val(ins.A)),
			ClockDelta: t.syncFlush()}, true, nil
	case ir.OpBarrier:
		return sim.Step{Kind: sim.StepBarrier, Cycles: *cycles, Obj: int(t.val(ins.A)),
			ClockDelta: t.syncFlush()}, true, nil
	case ir.OpTid:
		t.setReg(ins.Dst, int64(t.tid))
	case ir.OpNThreads:
		t.setReg(ins.Dst, int64(t.mach.cfg.Threads))
	case ir.OpPrint:
		t.Output = append(t.Output, t.val(ins.A))
	case ir.OpClockAdd:
		if t.mach.cfg.Mode == ModeDetLock {
			delta := ins.A.Imm
			if ins.Scale != 0 {
				delta += ins.Scale * t.val(ins.B)
			}
			if delta < 0 {
				delta = 0
			}
			t.mach.ClockUpdates++
			return sim.Step{Kind: sim.StepAdvance, Cycles: *cycles, ClockDelta: delta}, true, nil
		}
		// In Kendo mode instrumentation is absent by construction; if present
		// it is ignored (and costs nothing — PhysicalInstrCost charged above
		// is part of cycles already, keep it: the comparison harness always
		// runs Kendo on uninstrumented modules).
	default:
		return sim.Step{}, false, t.errf("unknown opcode %v", ins.Op)
	}
	return sim.Step{}, false, nil
}

// execCall handles user functions (push a frame) and builtins (evaluate).
func (t *Thread) execCall(ins *ir.Instr, cycles *int64) (sim.Step, bool, error) {
	if callee := t.mach.mod.Func(ins.Callee); callee != nil {
		args := make([]int64, len(ins.Args))
		for i, a := range ins.Args {
			args[i] = t.val(a)
		}
		if len(t.stack) >= 10_000 {
			return sim.Step{}, false, t.errf("call stack overflow calling %s", ins.Callee)
		}
		t.push(callee, args, ins.Dst)
		return sim.Step{}, false, nil
	}
	// Builtin: cost from the estimates table, value a deterministic pure
	// function of the arguments.
	args := make([]int64, len(ins.Args))
	for i, a := range ins.Args {
		args[i] = t.val(a)
	}
	est, ok := t.mach.est.Lookup(ins.Callee)
	if !ok {
		return sim.Step{}, false, t.errf("call to unknown builtin %q", ins.Callee)
	}
	cost := est.Eval(args)
	*cycles += cost
	// The builtin's instructions retire on the Kendo counter too.
	if t.mach.cfg.Mode == ModeKendo {
		t.kendoAccum += cost
	}
	t.setReg(ins.Dst, builtinValue(ins.Callee, args))
	return sim.Step{}, false, nil
}

// execTerm executes the current block's terminator.
func (t *Thread) execTerm(fr *frame, cycles *int64) (sim.Step, bool, error) {
	*cycles += t.mach.cm.TermCost(&fr.block.Term)
	t.RetiredInstrs++
	t.mach.InstrsExecuted++
	switch fr.block.Term.Kind {
	case ir.TermJmp:
		fr.block = fr.block.Term.Succs[0]
		fr.pc = 0
	case ir.TermBr:
		if t.val(fr.block.Term.Cond) != 0 {
			fr.block = fr.block.Term.Succs[0]
		} else {
			fr.block = fr.block.Term.Succs[1]
		}
		fr.pc = 0
	case ir.TermSwitch:
		v := t.val(fr.block.Term.Cond)
		target := fr.block.Term.Succs[len(fr.block.Term.Cases)]
		for i, c := range fr.block.Term.Cases {
			if v == c {
				target = fr.block.Term.Succs[i]
				break
			}
		}
		fr.block = target
		fr.pc = 0
	case ir.TermRet:
		ret := t.val(fr.block.Term.Ret)
		t.stack = t.stack[:len(t.stack)-1]
		if len(t.stack) == 0 {
			t.done = true
			// Flush the residual Kendo count so final clocks are complete.
			delta := int64(0)
			if t.mach.cfg.Mode == ModeKendo && t.kendoAccum > 0 {
				delta = t.kendoAccum
				t.kendoAccum = 0
			}
			return sim.Step{Kind: sim.StepDone, Cycles: *cycles, ClockDelta: delta}, true, nil
		}
		t.setReg(fr.retDst, ret)
	default:
		return sim.Step{}, false, t.errf("missing terminator in %s", fr.block.Name)
	}
	return sim.Step{}, false, nil
}

// builtinValue computes deterministic results for builtins. Builtins are
// pure in this substrate (§III-B substitution: their cost matters for the
// clock, their value only needs to be deterministic).
func builtinValue(name string, args []int64) int64 {
	a := func(i int) int64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch name {
	case "sqrt":
		return isqrt(a(0))
	case "abs", "fabs":
		if a(0) < 0 {
			return -a(0)
		}
		return a(0)
	case "min":
		if a(0) < a(1) {
			return a(0)
		}
		return a(1)
	case "max":
		if a(0) > a(1) {
			return a(0)
		}
		return a(1)
	case "sin", "cos", "tan", "exp", "log", "pow", "floor", "ceil":
		// Fixed-point-ish deterministic stand-in.
		return (a(0)*31 + a(1)*17) % 1024
	case "rand_r":
		v := a(0)
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		if v < 0 {
			v = -v
		}
		return v
	default: // memset, memcpy, bzero, ...: return the size argument
		return a(len(args) - 1)
	}
}

func isqrt(v int64) int64 {
	if v <= 0 {
		return 0
	}
	x := v
	for {
		y := (x + v/x) / 2
		if y >= x {
			return x
		}
		x = y
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
