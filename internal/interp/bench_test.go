package interp

// Hot-loop benchmarks for the decoded-dispatch interpreter and the race
// detector, plus the allocation guard for the detector's pooled epoch
// buffers. `make bench` runs these alongside the sim and top-level suites;
// BENCH_PR4.json records the shipped numbers (see EXPERIMENTS.md).

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
)

// dispatchSrc mirrors the sweep's dynamic mix (long add runs with a little
// logic sprinkled in — see the fuseAddRuns rationale in decode.go) so the
// dispatch benchmark measures the instruction stream the tables actually
// execute.
const dispatchSrc = `
module dispatch
global out 1

func main() regs 16 {
entry:
  r0 = const 0
  r1 = const 0
  jmp loop
loop:
  r2 = lt r0, 20000
  br r2, body, done
body:
  r1 = add r1, r0
  r3 = add r1, 7
  r4 = add r3, r0
  r5 = add r4, r1
  r6 = add r5, 3
  r1 = add r6, r1
  r1 = and r1, 1048575
  r0 = add r0, 1
  jmp loop
done:
  store out[0], r1
  ret r1
}
`

// raceSrc keeps four threads loading and storing thread-private words of a
// shared global: every access goes through the detector, none races, so the
// benchmark isolates detection overhead rather than report construction.
const raceSrc = `
module racebench
global data 8

func main() regs 16 {
entry:
  r0 = tid
  r1 = const 0
  jmp loop
loop:
  r2 = lt r1, 2000
  br r2, body, done
body:
  r3 = load data[r0]
  r3 = add r3, r1
  store data[r0], r3
  r1 = add r1, 1
  jmp loop
done:
  ret r1
}
`

// benchRun executes one machine to completion and returns it.
func benchRun(b *testing.B, m *ir.Module, threads int, ref bool, race *RaceConfig) *Machine {
	b.Helper()
	mach, ths, err := NewMachine(Config{
		Module:    m,
		Threads:   threads,
		Entry:     "main",
		Mode:      ModeDetLock,
		Reference: ref,
		Race:      race,
	})
	if err != nil {
		b.Fatalf("NewMachine: %v", err)
	}
	eng := sim.New(sim.Config{
		Policy:      sim.PolicyDet,
		NumLocks:    m.NumLocks,
		NumBarriers: m.NumBars,
		Observer:    mach.Observer(),
		Reference:   ref,
	}, Programs(ths))
	if _, err := eng.Run(); err != nil {
		b.Fatalf("engine: %v", err)
	}
	return mach
}

// BenchmarkInterpDispatch compares the reference tree-walking step loop with
// the decoded dispatch loop on the same program; the MIPS metric is the one
// BENCH_PR4.json commits.
func BenchmarkInterpDispatch(b *testing.B) {
	m := ir.MustParse(dispatchSrc)
	for _, ref := range []bool{true, false} {
		name := "decoded"
		if ref {
			name = "reference"
		}
		b.Run(name, func(b *testing.B) {
			var instrs int64
			for i := 0; i < b.N; i++ {
				instrs += benchRun(b, m, 1, ref, nil).InstrsExecuted
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "MIPS")
		})
	}
}

// BenchmarkRaceDetectorOn/Off measure the per-access cost of the armed
// detector (epoch fast path included) against the same run with detection
// disabled.
func BenchmarkRaceDetectorOn(b *testing.B) {
	m := ir.MustParse(raceSrc)
	for i := 0; i < b.N; i++ {
		mach := benchRun(b, m, 4, false, &RaceConfig{Policy: RaceReport})
		if n := len(mach.Races()); n != 0 {
			b.Fatalf("unexpected races: %d", n)
		}
	}
}

func BenchmarkRaceDetectorOff(b *testing.B) {
	m := ir.MustParse(raceSrc)
	for i := 0; i < b.N; i++ {
		benchRun(b, m, 4, false, nil)
	}
}

// TestRaceDetectorSteadyStateAllocs pins the detector's pooled buffers:
// after a warm round allocates the shadow epochs (and poisons the
// deliberately racy cells), further accesses — same-epoch refreshes,
// foreign-write rewrites, and read-slot churn across truncating writes —
// reuse the pooled vc copies and reclaimed read slots, so the access path
// allocates nothing.
func TestRaceDetectorSteadyStateAllocs(t *testing.T) {
	m := ir.MustParse(raceSrc)
	d := newRaceDetector(RaceConfig{Policy: RaceReport}, m, 4)
	pattern := func() {
		for tid := 0; tid < 4; tid++ {
			for a := int64(0); a < 8; a++ {
				if d.access(tid, "data", a, a, false, "main", "body", 0) != nil {
					t.Fatal("unexpected fail-fast error")
				}
				if d.access(tid, "data", a, a, true, "main", "body", 2) != nil {
					t.Fatal("unexpected fail-fast error")
				}
			}
		}
	}
	pattern() // warm: allocate epoch entries and reports once
	if n := testing.AllocsPerRun(20, pattern); n > 0 {
		t.Errorf("steady-state race detection allocates %.1f times per pattern, want 0", n)
	}
}
