package interp

// Decoded-dispatch interpreter: the hot path of the whole simulation
// pipeline.
//
// The reference interpreter (interp.go, kept selectable via
// Config.Reference) walks ir.Block/ir.Instr structures directly: every step
// re-reads boxed ir.Operand values through Thread.val, re-computes
// per-instruction costs through the cost model's switch, and resolves every
// load/store symbol through the globals map. Profiling shows those
// indirections dominate the entire sweep.
//
// The decoded path removes all of them ahead of time. Each ir.Func is
// decoded ONCE into a flat []dinstr stream:
//
//   - blocks are laid out consecutively and terminators become ordinary
//     decoded instructions, so execution is a single pc walk with branch
//     targets as precomputed indices — no per-block bounds bookkeeping;
//   - every operand is resolved to a register index: immediates get slots in
//     a per-function constant pool appended to the register file (dcode.tmpl
//     seeds each new frame), and ir.NoReg destinations map to a scratch
//     register, so the dispatch loop never branches on operand kind;
//   - physical and logical (Kendo) costs are precomputed per instruction;
//   - loads and stores carry the global's slot index, size, and flat base
//     address, so the cache-miss model and the race detector see the exact
//     addresses the reference path computes without any map lookup;
//   - calls resolve their callee (user function or builtin estimate) at
//     decode time; rarely-touched fields live in a side table (daux) so the
//     hot dinstr is exactly one 64-byte cache line.
//
// Decoded streams reference globals by slot, never by buffer, so they are
// machine-independent: Config.DCache can share them across every machine
// built over the same module/cost-model/estimates (the table sweeps run
// hundreds of such machines).
//
// Equivalence contract: the decoded loop yields at EXACTLY the same points
// as the reference loop (clock updates, sync ops, Kendo overflows, the
// MaxStepCycles bound, completion) with identical cycle, clock, and stats
// accounting, identical error strings, and identical race-detector access
// sequences. TestDecodedEquivalence and the harness 20-seed property test
// assert this byte-for-byte.

import (
	"errors"
	"fmt"
	"unsafe"

	"repro/internal/ir"
	"repro/internal/sim"
)

// rload/rstore access the register file without bounds checks: the profile
// shows the checks on regs[d.dst]/regs[d.a]/regs[d.b] are a double-digit
// share of the dispatch loop. Soundness: decode validates every register
// index and branch target against the function it just decoded (see
// validate), and pushFast sizes every register file to exactly
// dcode.numRegs, so i ∈ [0, len(regs)) at every call site.
func rload(rp unsafe.Pointer, i int32) int64 {
	return *(*int64)(unsafe.Add(rp, uintptr(i)*8))
}

func rstore(rp unsafe.Pointer, i int32, v int64) {
	*(*int64)(unsafe.Add(rp, uintptr(i)*8)) = v
}

// dop is a decoded opcode. The exec switch over dop compiles to a dense
// jump table.
type dop uint8

const (
	dBadOp dop = iota // undecodable opcode: reproduces the reference error lazily

	dConst // dst = aImm
	dMov   // dst = a
	dAdd
	dSub
	dMul
	dDiv
	dMod
	dAnd
	dOr
	dXor
	dShl
	dShr
	dNeg
	dNot
	dEQ
	dNE
	dLT
	dLE
	dGT
	dGE
	dLoad     // dst = globals[gslot][a]
	dStore    // globals[gslot][a] = b
	dCall     // user-function call (aux: callee, args)
	dCallB    // builtin call (aux: estimate, builtin kind, args)
	dBadCall  // call to unknown builtin: lazy error
	dSpawn    // aux: callee func, args
	dBadSpawn // spawn of unknown function: lazy error
	dJoin     // yield StepJoin(obj=a)
	dLock     // yield StepLock(obj=a)
	dUnlock   // yield StepUnlock(obj=a)
	dBarrier  // yield StepBarrier(obj=a)
	dTid      // dst = thread id
	dNThreads // dst = thread count
	dPrint    // append a to output log
	dClockAdd // DetLock-mode clock update: yield StepAdvance with delta
	dClockNop // clockadd under Kendo: physical cost only, no effect
	dJmp      // pc = tgt
	dBr       // pc = a != 0 ? tgt : tgt2
	dSwitch   // aux: cases/targets
	dRet      // return a
	dBadTerm  // malformed terminator: lazy error

	// Superinstructions. The sweep's dynamic mix is dominated by runs of
	// adds (~60% of retired instructions; half of all opcode transitions are
	// add→add), so decode rewrites every slot that begins a run of 2–3
	// consecutive adds into a fused form executing the whole run on one
	// dispatch. The successor slots keep their own (possibly fused)
	// instructions: a mid-run yield (MaxStepCycles or Kendo overflow) leaves
	// pc on the next plain slot, so resumption — and therefore every yield
	// point, cycle count, clock delta, and retired count — is identical to
	// the reference loop. The fused case replays the reference tail
	// (Kendo accrual + overflow check, then the step-cycle bound) between
	// the inner adds. Kendo streams fuse pairs only: the head keeps its
	// logical cost in kcost for the i1 tail and the second add's costs ride
	// packed in aImm, while triples additionally claim kcost as a register
	// field — which only non-Kendo streams (where kcost is never read) can
	// afford. dckey pins the mode, so a stream can never cross modes.
	dAdd2 // dst=a+b, then tgt=tgt2+gslot (cost2/kcost2 packed in aImm)
	dAdd3 // dAdd2, then aux=glen+kcost (cost3 in gbase; non-Kendo only)
)

// dinstr is one decoded instruction: exactly 64 bytes, so the stream packs
// one instruction per cache line. Hot fields only; everything that is not
// touched by the arithmetic/memory fast path lives in daux (selected by the
// aux index).
type dinstr struct {
	op    dop
	dst   int32 // destination register (scratch register for ir.NoReg)
	a, b  int32 // operand register index (immediates live in the const pool)
	aux   int32 // index into dcode.aux, -1 when unused
	tgt   int32 // branch target (jmp, br-true)
	tgt2  int32 // br-false target
	cost  int32 // physical cycles (CostModel.PhysicalInstrCost / TermCost)
	kcost int32 // logical cost accrued on the Kendo counter (CostModel.InstrCost)
	gslot int32 // load/store global slot (machine gtab/gptrs index)
	glen  int32 // load/store global size, for the bounds check
	aImm  int64 // dConst value; dClockAdd base delta
	// gbase is the flat address base of the global for loads and stores
	// (cache model, race detector). Reused as the clockadd dynamic scale —
	// the two never occur on the same instruction.
	gbase int64
}

// dinstrSize is the dispatch stride of the unchecked pc walk in stepFast.
const dinstrSize = unsafe.Sizeof(dinstr{})

// daux holds the cold operands of calls, spawns, switches, and the IR site
// identity that the race detector and error paths report.
type daux struct {
	sym      string // load/store global symbol
	block    string // source block name (race sites, error messages)
	bpc      int32  // instruction index within the source block
	callee   *dcode // decoded user callee (dCall)
	calleeFn *ir.Func
	name     string // callee name (errors) / builtin name
	est      estimate
	bkind    builtinKind
	retDst   int32   // caller-frame destination register for dCall results
	argRegs  []int32 // argument registers (immediates are const-pool slots)
	cases    []int64
	tgts     []int32
	irop     ir.Op // original opcode for dBadOp errors
}

// estimate mirrors estimates.Estimate without importing its package here
// (the decode site copies the fields; Eval stays allocation-free).
type estimate struct {
	base, scaleV int64
	argIndex     int
}

func (e estimate) eval(args []int64) int64 {
	c := e.base
	if e.scaleV != 0 && e.argIndex >= 0 && e.argIndex < len(args) {
		c += e.scaleV * args[e.argIndex]
	}
	if c < 0 {
		return 0
	}
	return c
}

// builtinKind is the decoded identity of builtinValue's name switch.
type builtinKind uint8

const (
	bkDefault builtinKind = iota // memset, memcpy, ...: return last argument
	bkSqrt
	bkAbs
	bkMin
	bkMax
	bkFixed // sin/cos/tan/exp/log/pow/floor/ceil stand-in
	bkRand
)

func decodeBuiltinKind(name string) builtinKind {
	switch name {
	case "sqrt":
		return bkSqrt
	case "abs", "fabs":
		return bkAbs
	case "min":
		return bkMin
	case "max":
		return bkMax
	case "sin", "cos", "tan", "exp", "log", "pow", "floor", "ceil":
		return bkFixed
	case "rand_r":
		return bkRand
	}
	return bkDefault
}

// builtinEval computes the decoded builtin's value, bit-for-bit equal to
// builtinValue (including the zero for missing arguments).
func builtinEval(kind builtinKind, args []int64) int64 {
	arg := func(i int) int64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	switch kind {
	case bkSqrt:
		return isqrt(arg(0))
	case bkAbs:
		if v := arg(0); v < 0 {
			return -v
		}
		return arg(0)
	case bkMin:
		if arg(0) < arg(1) {
			return arg(0)
		}
		return arg(1)
	case bkMax:
		if arg(0) > arg(1) {
			return arg(0)
		}
		return arg(1)
	case bkFixed:
		return (arg(0)*31 + arg(1)*17) % 1024
	case bkRand:
		v := arg(0)
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		if v < 0 {
			v = -v
		}
		return v
	}
	return arg(len(args) - 1)
}

// dcode is the decoded form of one function.
type dcode struct {
	fn     *ir.Func
	instrs []dinstr
	aux    []daux
	// numRegs is the register-file size: fn.NumRegs real registers, one
	// scratch register (ir.NoReg destinations), then the constant pool.
	numRegs int
	// tmpl seeds each new frame's register file: zeros for the real and
	// scratch registers, then the pooled immediate values.
	tmpl []int64
}

// binOpTable maps binary/unary/compare IR opcodes to decoded ones.
var dopFor = map[ir.Op]dop{
	ir.OpMov: dMov, ir.OpAdd: dAdd, ir.OpSub: dSub, ir.OpMul: dMul,
	ir.OpDiv: dDiv, ir.OpMod: dMod, ir.OpAnd: dAnd, ir.OpOr: dOr,
	ir.OpXor: dXor, ir.OpShl: dShl, ir.OpShr: dShr, ir.OpNeg: dNeg,
	ir.OpNot: dNot, ir.OpEQ: dEQ, ir.OpNE: dNE, ir.OpLT: dLT,
	ir.OpLE: dLE, ir.OpGT: dGT, ir.OpGE: dGE,
}

// decode returns the decoded program for fn, building and caching it on
// first use: in the per-machine map always, and through the shared
// Config.DCache when one is wired (the streams themselves are
// machine-independent; the key pins everything decode bakes in).
func (m *Machine) decode(fn *ir.Func) *dcode {
	if dc, ok := m.dcache[fn]; ok {
		return dc
	}
	shared := m.cfg.DCache
	var key dckey
	if shared != nil {
		key = dckey{fn: fn, cm: m.cm, est: m.est, kendo: m.cfg.Mode == ModeKendo}
		if dc := shared.get(key); dc != nil {
			m.dcache[fn] = dc
			return dc
		}
	}
	dc := m.decodeFn(fn)
	if shared != nil {
		shared.put(key, dc)
	}
	return dc
}

// decodeFn builds the decoded stream for fn (and, recursively, its callees).
func (m *Machine) decodeFn(fn *ir.Func) *dcode {
	dc := &dcode{fn: fn}
	// Register before decoding the body so recursive calls resolve to this
	// (still-filling) dcode; nothing executes until decode returns.
	m.dcache[fn] = dc

	scratch := int32(fn.NumRegs)
	// The constant pool lives above the scratch register; each distinct
	// immediate gets one slot, seeded from tmpl on frame entry.
	consts := map[int64]int32{}
	constReg := func(v int64) int32 {
		if r, ok := consts[v]; ok {
			return r
		}
		r := scratch + 1 + int32(len(consts))
		consts[v] = r
		return r
	}
	reg := func(r ir.Reg) int32 {
		if r == ir.NoReg {
			return scratch
		}
		return int32(r)
	}
	operand := func(o ir.Operand) int32 {
		if o.IsImm {
			return constReg(o.Imm)
		}
		return int32(o.Reg)
	}

	// First pass: flat start offset of each block (instructions + 1
	// terminator per block).
	starts := make([]int32, len(fn.Blocks))
	total := 0
	for i, b := range fn.Blocks {
		starts[i] = int32(total)
		total += len(b.Instrs) + 1
	}

	addAux := func(instr *dinstr, a daux) {
		instr.aux = int32(len(dc.aux))
		dc.aux = append(dc.aux, a)
	}
	decodeArgs := func(args []ir.Operand) []int32 {
		regs := make([]int32, len(args))
		for i, a := range args {
			regs[i] = operand(a)
		}
		return regs
	}

	instrs := make([]dinstr, 0, total)
	for _, b := range fn.Blocks {
		for pc := range b.Instrs {
			ins := &b.Instrs[pc]
			d := dinstr{
				aux:  -1,
				dst:  reg(ins.Dst),
				cost: int32(m.cm.PhysicalInstrCost(ins)),
			}
			if m.cfg.Mode == ModeKendo {
				// Kendo accrual only: leaving kcost zero otherwise lets the
				// dispatch loop accrue unconditionally (no per-instruction
				// mode branch) without the counter ever moving.
				d.kcost = int32(m.cm.InstrCost(ins))
			}
			switch {
			case ins.Op == ir.OpConst:
				// The reference path reads A.Imm directly, regardless of the
				// operand's register flag; mirror that exactly.
				d.op, d.aImm = dConst, ins.A.Imm
			case dopFor[ins.Op] != 0:
				d.op = dopFor[ins.Op]
				d.a = operand(ins.A)
				d.b = operand(ins.B)
			case ins.Op == ir.OpLoad || ins.Op == ir.OpStore:
				d.op = dLoad
				d.a = operand(ins.A)
				if ins.Op == ir.OpStore {
					d.op = dStore
					d.b = operand(ins.B)
				}
				if slot, ok := m.gidx[ins.Sym]; ok {
					d.gslot = int32(slot)
					d.glen = int32(len(m.gtab[slot]))
					d.gbase = m.baseOff[ins.Sym]
				}
				// Unknown symbols keep glen 0: every access faults with the
				// reference path's "out of bounds (size 0)" message.
				addAux(&d, daux{sym: ins.Sym, block: b.Name, bpc: int32(pc)})
			case ins.Op == ir.OpCall:
				argRegs := decodeArgs(ins.Args)
				if callee := m.mod.Func(ins.Callee); callee != nil {
					d.op = dCall
					addAux(&d, daux{
						callee: m.decode(callee), calleeFn: callee,
						name: ins.Callee, retDst: reg(ins.Dst),
						argRegs: argRegs,
					})
				} else if est, ok := m.est.Lookup(ins.Callee); ok {
					d.op = dCallB
					addAux(&d, daux{
						name: ins.Callee, bkind: decodeBuiltinKind(ins.Callee),
						est:     estimate{base: est.Base, scaleV: est.Scale, argIndex: est.ArgIndex},
						argRegs: argRegs,
					})
				} else {
					// The reference interpreter faults only if the call
					// executes; preserve that laziness.
					d.op = dBadCall
					addAux(&d, daux{name: ins.Callee})
				}
			case ins.Op == ir.OpSpawn:
				argRegs := decodeArgs(ins.Args)
				if callee := m.mod.Func(ins.Callee); callee != nil {
					d.op = dSpawn
					addAux(&d, daux{
						calleeFn: callee, name: ins.Callee,
						argRegs: argRegs,
					})
				} else {
					d.op = dBadSpawn
					addAux(&d, daux{name: ins.Callee})
				}
			case ins.Op == ir.OpJoin:
				d.op = dJoin
				d.a = operand(ins.A)
			case ins.Op == ir.OpLock:
				d.op = dLock
				d.a = operand(ins.A)
			case ins.Op == ir.OpUnlock:
				d.op = dUnlock
				d.a = operand(ins.A)
			case ins.Op == ir.OpBarrier:
				d.op = dBarrier
				d.a = operand(ins.A)
			case ins.Op == ir.OpTid:
				d.op = dTid
			case ins.Op == ir.OpNThreads:
				d.op = dNThreads
			case ins.Op == ir.OpPrint:
				d.op = dPrint
				d.a = operand(ins.A)
			case ins.Op == ir.OpClockAdd:
				if m.cfg.Mode == ModeDetLock {
					d.op = dClockAdd
					d.aImm = ins.A.Imm
					d.gbase = ins.Scale // scale rides in the gbase slot
					if ins.Scale != 0 {
						d.b = operand(ins.B)
					}
				} else {
					// Kendo runs ignore instrumentation but still pay its
					// physical cost, like the reference path.
					d.op = dClockNop
				}
			default:
				d.op = dBadOp
				addAux(&d, daux{irop: ins.Op})
			}
			instrs = append(instrs, d)
		}

		term := dinstr{aux: -1, cost: int32(m.cm.TermCost(&b.Term))}
		switch b.Term.Kind {
		case ir.TermJmp:
			term.op = dJmp
			term.tgt = starts[b.Term.Succs[0].Index]
		case ir.TermBr:
			term.op = dBr
			term.a = operand(b.Term.Cond)
			term.tgt = starts[b.Term.Succs[0].Index]
			term.tgt2 = starts[b.Term.Succs[1].Index]
		case ir.TermSwitch:
			term.op = dSwitch
			term.a = operand(b.Term.Cond)
			tgts := make([]int32, len(b.Term.Succs))
			for i, s := range b.Term.Succs {
				tgts[i] = starts[s.Index]
			}
			addAux(&term, daux{
				cases: append([]int64(nil), b.Term.Cases...),
				tgts:  tgts,
			})
		case ir.TermRet:
			term.op = dRet
			term.a = operand(b.Term.Ret)
		default:
			term.op = dBadTerm
			addAux(&term, daux{block: b.Name})
		}
		instrs = append(instrs, term)
	}
	fuseAddRuns(instrs, m.cfg.Mode == ModeKendo)
	dc.instrs = instrs
	dc.numRegs = fn.NumRegs + 1 + len(consts)
	dc.tmpl = make([]int64, dc.numRegs)
	for v, r := range consts {
		dc.tmpl[r] = v
	}
	dc.validate(len(m.gtab))
	return dc
}

// fuseAddRuns rewrites each slot that starts a run of consecutive adds into
// dAdd2/dAdd3, packing the successors' operands and costs into the slot's
// unused fields. Decisions read the original opcodes (orig) because the
// scan itself rewrites ops in place; the source fields it packs (dst, a, b,
// cost, kcost) are never overwritten by fusion, so every slot stays a valid
// run head in its own right — branch targets and yield resumptions can land
// on any slot and see correct code. Runs cannot cross blocks: every block
// ends in a terminator, which is never an add. Kendo streams get pairs
// only; triples repurpose the kcost field as a register index, which the
// Kendo tail would misread as the head's logical cost.
func fuseAddRuns(instrs []dinstr, kendo bool) {
	orig := make([]dop, len(instrs))
	for i := range instrs {
		orig[i] = instrs[i].op
	}
	for i := range instrs {
		if orig[i] != dAdd || i+1 >= len(instrs) || orig[i+1] != dAdd {
			continue
		}
		d := &instrs[i]
		n1 := &instrs[i+1]
		d.op = dAdd2
		d.tgt, d.tgt2, d.gslot = n1.dst, n1.a, n1.b
		d.aImm = int64(n1.cost) | int64(n1.kcost)<<32
		if !kendo && i+2 < len(instrs) && orig[i+2] == dAdd {
			n2 := &instrs[i+2]
			d.op = dAdd3
			d.aux, d.glen, d.kcost = n2.dst, n2.a, n2.b
			d.gbase = int64(n2.cost)
		}
	}
}

// validate checks the invariants the unchecked register file (rload/rstore)
// and pc walk rely on: every register index below numRegs, every branch
// target inside the stream, every global slot inside the machine's table,
// and every block ending in a terminator (the decoder appends one per
// block, so pc cannot run off the end). Violations are decoder bugs, never
// program errors — the input module already passed ir.Verify — so they
// panic.
func (dc *dcode) validate(nglobals int) {
	n := int32(len(dc.instrs))
	for i := range dc.instrs {
		d := &dc.instrs[i]
		if d.dst < 0 || int(d.dst) >= dc.numRegs ||
			d.a < 0 || int(d.a) >= dc.numRegs ||
			d.b < 0 || int(d.b) >= dc.numRegs {
			panic(fmt.Sprintf("interp: decode %s: instr %d register out of range", dc.fn.Name, i))
		}
		switch d.op {
		case dAdd2, dAdd3:
			// Fused slots hold extra register indices in the branch/global
			// fields; the unchecked loop trusts all of them.
			regs := []int32{d.tgt, d.tgt2, d.gslot}
			if d.op == dAdd3 {
				regs = append(regs, d.aux, d.glen, d.kcost)
			}
			for _, r := range regs {
				if r < 0 || int(r) >= dc.numRegs {
					panic(fmt.Sprintf("interp: decode %s: instr %d fused register out of range", dc.fn.Name, i))
				}
			}
		case dLoad, dStore:
			if d.gslot < 0 || (int(d.gslot) >= nglobals && d.glen > 0) {
				panic(fmt.Sprintf("interp: decode %s: instr %d global slot out of range", dc.fn.Name, i))
			}
		case dJmp:
			if d.tgt < 0 || d.tgt >= n {
				panic(fmt.Sprintf("interp: decode %s: jmp target out of range", dc.fn.Name))
			}
		case dBr:
			if d.tgt < 0 || d.tgt >= n || d.tgt2 < 0 || d.tgt2 >= n {
				panic(fmt.Sprintf("interp: decode %s: br target out of range", dc.fn.Name))
			}
		case dSwitch:
			for _, tg := range dc.aux[d.aux].tgts {
				if tg < 0 || tg >= n {
					panic(fmt.Sprintf("interp: decode %s: switch target out of range", dc.fn.Name))
				}
			}
		case dCall, dCallB, dSpawn:
			for _, r := range dc.aux[d.aux].argRegs {
				if r < 0 || int(r) >= dc.numRegs {
					panic(fmt.Sprintf("interp: decode %s: instr %d arg register out of range", dc.fn.Name, i))
				}
			}
		}
	}
}

// pushFast pushes a decoded frame, reusing the register buffer left in the
// stack slot by a previous pop when it is large enough, so steady-state
// calls allocate nothing. The register file is seeded from the function's
// template (zeros, then the constant pool).
func (t *Thread) pushFast(dc *dcode, retDst int32) []int64 {
	n := len(t.stack)
	var regs []int64
	if cap(t.stack) > n {
		if old := t.stack[:n+1][n].regs; cap(old) >= dc.numRegs {
			regs = old[:dc.numRegs]
		}
	}
	if regs == nil {
		regs = make([]int64, dc.numRegs)
	}
	copy(regs, dc.tmpl)
	t.stack = append(t.stack, frame{fn: dc.fn, regs: regs, code: dc, dretDst: retDst})
	return regs
}

// stepFast is the decoded dispatch loop: the optimized equivalent of step().
// Yield points, cycle accounting, stats, error strings, and race-detector
// access order are byte-identical to the reference loop.
func (t *Thread) stepFast(st *sim.Step) error {
	if t.done {
		return errors.New("step on finished thread")
	}
	m := t.mach
	var (
		cycles  int64
		retired int64 // buffers Thread.RetiredInstrs and Machine.InstrsExecuted
		stores  int64
		misses  int64
		kacc    = t.kendoAccum
	)
	// Hot configuration is mirrored onto the thread at construction so the
	// per-step prologue loads from one already-hot struct instead of
	// chasing through the machine's config.
	kendo := t.kendo
	maxCycles := t.maxCycles
	chunk := t.chunk
	missRate := t.missRate
	missPenalty := t.missPenalty
	race := m.race
	gp := m.gptrs // global base pointers, indexed by dinstr.gslot

	fr := t.top()
	code := fr.code.instrs
	ax := fr.code.aux
	regs := fr.regs
	// Unchecked pc walk and register file: every index was checked once at
	// decode time (see validate), not once per executed instruction.
	cp := unsafe.Pointer(unsafe.SliceData(code))
	rp := unsafe.Pointer(unsafe.SliceData(regs))
	pc := fr.dpc

	// Every return site flushes the loop-local state back to the thread via
	// flush. A closure would be tidier, but capturing pc/cycles/retired by
	// reference forces them into addressable stack slots — a load and store
	// per executed instruction. Passing them as arguments keeps the loop
	// counters in registers.
	flush := func(fr *frame, pc int32, kacc, retired, stores, misses int64) {
		fr.dpc = pc
		t.kendoAccum = kacc
		t.RetiredInstrs += retired
		m.InstrsExecuted += retired
		m.StoresRetired += stores
		m.CacheMisses += misses
	}

	for {
		d := (*dinstr)(unsafe.Add(cp, uintptr(pc)*dinstrSize))
		pc++
		retired++
		cycles += int64(d.cost)
		switch d.op {
		case dConst:
			rstore(rp, d.dst, d.aImm)
		case dMov:
			rstore(rp, d.dst, rload(rp, d.a))
		case dAdd:
			rstore(rp, d.dst, rload(rp, d.a)+rload(rp, d.b))
		case dAdd2, dAdd3:
			// Fused add runs. Each inner add repeats the reference loop's
			// accounting — retire, charge, execute, tail-check — so a run
			// crossing a yield condition stops at exactly the instruction the
			// reference stops at, with pc on the next (plain) slot;
			// resumption replays the remainder.
			rstore(rp, d.dst, rload(rp, d.a)+rload(rp, d.b))
			if kendo {
				// Kendo streams fuse pairs only. The head's tail runs inline
				// (the shared tail below must not see this instruction twice),
				// then the second add with its own full tail.
				kacc += int64(d.kcost)
				if kacc >= chunk {
					delta := kacc
					kacc = 0
					m.Interrupts++
					cycles += m.cfg.KendoInterruptCost
					m.ClockUpdates++
					flush(fr, pc, kacc, retired, stores, misses)
					*st = sim.Step{Kind: sim.StepAdvance, Cycles: cycles, ClockDelta: delta}
					return nil
				}
				if cycles >= maxCycles {
					flush(fr, pc, kacc, retired, stores, misses)
					*st = sim.Step{Kind: sim.StepAdvance, Cycles: cycles}
					return nil
				}
				retired++
				cycles += int64(int32(d.aImm))
				rstore(rp, d.tgt, rload(rp, d.tgt2)+rload(rp, d.gslot))
				pc++
				kacc += d.aImm >> 32
				if kacc >= chunk {
					delta := kacc
					kacc = 0
					m.Interrupts++
					cycles += m.cfg.KendoInterruptCost
					m.ClockUpdates++
					flush(fr, pc, kacc, retired, stores, misses)
					*st = sim.Step{Kind: sim.StepAdvance, Cycles: cycles, ClockDelta: delta}
					return nil
				}
				if cycles >= maxCycles {
					flush(fr, pc, kacc, retired, stores, misses)
					*st = sim.Step{Kind: sim.StepAdvance, Cycles: cycles}
					return nil
				}
				continue
			}
			if cycles < maxCycles {
				retired++
				cycles += int64(int32(d.aImm))
				rstore(rp, d.tgt, rload(rp, d.tgt2)+rload(rp, d.gslot))
				pc++
				if d.op == dAdd3 && cycles < maxCycles {
					retired++
					cycles += d.gbase
					rstore(rp, d.aux, rload(rp, d.glen)+rload(rp, d.kcost))
					pc++
				}
			}
		case dSub:
			rstore(rp, d.dst, rload(rp, d.a)-rload(rp, d.b))
		case dMul:
			rstore(rp, d.dst, rload(rp, d.a)*rload(rp, d.b))
		case dDiv:
			if b := rload(rp, d.b); b == 0 {
				rstore(rp, d.dst, 0)
			} else {
				rstore(rp, d.dst, rload(rp, d.a)/b)
			}
		case dMod:
			if b := rload(rp, d.b); b == 0 {
				rstore(rp, d.dst, 0)
			} else {
				rstore(rp, d.dst, rload(rp, d.a)%b)
			}
		case dAnd:
			rstore(rp, d.dst, rload(rp, d.a)&rload(rp, d.b))
		case dOr:
			rstore(rp, d.dst, rload(rp, d.a)|rload(rp, d.b))
		case dXor:
			rstore(rp, d.dst, rload(rp, d.a)^rload(rp, d.b))
		case dShl:
			rstore(rp, d.dst, rload(rp, d.a)<<uint64(rload(rp, d.b)&63))
		case dShr:
			rstore(rp, d.dst, rload(rp, d.a)>>uint64(rload(rp, d.b)&63))
		case dNeg:
			rstore(rp, d.dst, -rload(rp, d.a))
		case dNot:
			rstore(rp, d.dst, ^rload(rp, d.a))
		case dEQ:
			rstore(rp, d.dst, b2i(rload(rp, d.a) == rload(rp, d.b)))
		case dNE:
			rstore(rp, d.dst, b2i(rload(rp, d.a) != rload(rp, d.b)))
		case dLT:
			rstore(rp, d.dst, b2i(rload(rp, d.a) < rload(rp, d.b)))
		case dLE:
			rstore(rp, d.dst, b2i(rload(rp, d.a) <= rload(rp, d.b)))
		case dGT:
			rstore(rp, d.dst, b2i(rload(rp, d.a) > rload(rp, d.b)))
		case dGE:
			rstore(rp, d.dst, b2i(rload(rp, d.a) >= rload(rp, d.b)))
		case dLoad:
			idx := rload(rp, d.a)
			if idx < 0 || idx >= int64(d.glen) {
				flush(fr, pc, kacc, retired, stores, misses)
				return t.errf("load %s[%d] out of bounds (size %d)",
					ax[d.aux].sym, idx, d.glen)
			}
			if missRate >= 0 {
				h := uint64(d.gbase+idx) * 0x9E3779B97F4A7C15
				if int64((h>>32)&0xFF) < missRate {
					misses++
					cycles += missPenalty
				}
			}
			if race != nil {
				au := &ax[d.aux]
				if err := race.access(t.tid, au.sym, idx, d.gbase+idx, false,
					fr.fn.Name, au.block, int(au.bpc)); err != nil {
					flush(fr, pc, kacc, retired, stores, misses)
					return err
				}
			}
			rstore(rp, d.dst, *(*int64)(unsafe.Add(gp[d.gslot], uintptr(idx)*8)))
		case dStore:
			idx := rload(rp, d.a)
			if idx < 0 || idx >= int64(d.glen) {
				flush(fr, pc, kacc, retired, stores, misses)
				return t.errf("store %s[%d] out of bounds (size %d)",
					ax[d.aux].sym, idx, d.glen)
			}
			if missRate >= 0 {
				h := uint64(d.gbase+idx) * 0x9E3779B97F4A7C15
				if int64((h>>32)&0xFF) < missRate {
					misses++
					cycles += missPenalty
				}
			}
			if race != nil {
				au := &ax[d.aux]
				if err := race.access(t.tid, au.sym, idx, d.gbase+idx, true,
					fr.fn.Name, au.block, int(au.bpc)); err != nil {
					flush(fr, pc, kacc, retired, stores, misses)
					return err
				}
			}
			*(*int64)(unsafe.Add(gp[d.gslot], uintptr(idx)*8)) = rload(rp, d.b)
			stores++
		case dCall:
			au := &ax[d.aux]
			if len(t.stack) >= 10_000 {
				flush(fr, pc, kacc, retired, stores, misses)
				return t.errf("call stack overflow calling %s", au.name)
			}
			fr.dpc = pc // return address
			nregs := t.pushFast(au.callee, au.retDst)
			for i, r := range au.argRegs {
				nregs[i] = rload(rp, r) // caller frame
			}
			fr = t.top()
			code = au.callee.instrs
			ax = au.callee.aux
			regs = nregs
			cp = unsafe.Pointer(unsafe.SliceData(code))
			rp = unsafe.Pointer(unsafe.SliceData(regs))
			pc = 0
		case dCallB:
			au := &ax[d.aux]
			args := t.argbuf[:0]
			for _, r := range au.argRegs {
				args = append(args, rload(rp, r))
			}
			t.argbuf = args
			cost := au.est.eval(args)
			cycles += cost
			if kendo {
				kacc += cost
			}
			rstore(rp, d.dst, builtinEval(au.bkind, args))
		case dBadCall:
			flush(fr, pc, kacc, retired, stores, misses)
			return t.errf("call to unknown builtin %q", ax[d.aux].name)
		case dSpawn:
			au := &ax[d.aux]
			args := make([]int64, len(au.argRegs))
			for i, r := range au.argRegs {
				args[i] = rload(rp, r)
			}
			var delta int64
			if kendo {
				delta, kacc = kacc, 0
			}
			callee := au.calleeFn
			dst := &regs[d.dst]
			flush(fr, pc, kacc, retired, stores, misses)
			*st = sim.Step{
				Kind:       sim.StepSpawn,
				Cycles:     cycles,
				ClockDelta: delta,
				SpawnDst:   dst,
				NewProg: func(id int) sim.Program {
					nt := m.thread(id)
					nt.push(callee, args, ir.NoReg)
					m.spawned = append(m.spawned, nt)
					return nt
				},
			}
			return nil
		case dBadSpawn:
			flush(fr, pc, kacc, retired, stores, misses)
			return t.errf("spawn of unknown function %q", ax[d.aux].name)
		case dJoin, dLock, dUnlock, dBarrier:
			obj := rload(rp, d.a)
			var delta int64
			if kendo {
				delta, kacc = kacc, 0
			}
			var kind sim.StepKind
			switch d.op {
			case dJoin:
				kind = sim.StepJoin
			case dLock:
				kind = sim.StepLock
			case dUnlock:
				kind = sim.StepUnlock
			default:
				kind = sim.StepBarrier
			}
			flush(fr, pc, kacc, retired, stores, misses)
			*st = sim.Step{Kind: kind, Cycles: cycles, Obj: int(obj), ClockDelta: delta}
			return nil
		case dTid:
			rstore(rp, d.dst, int64(t.tid))
		case dNThreads:
			rstore(rp, d.dst, int64(m.cfg.Threads))
		case dPrint:
			t.Output = append(t.Output, rload(rp, d.a))
		case dClockAdd:
			delta := d.aImm
			if d.gbase != 0 { // gbase carries the clockadd scale
				delta += d.gbase * rload(rp, d.b)
			}
			if delta < 0 {
				delta = 0
			}
			m.ClockUpdates++
			flush(fr, pc, kacc, retired, stores, misses)
			*st = sim.Step{Kind: sim.StepAdvance, Cycles: cycles, ClockDelta: delta}
			return nil
		case dClockNop:
			// clockadd under Kendo: cost charged above, no clock effect.
		case dJmp:
			pc = d.tgt
		case dBr:
			if rload(rp, d.a) != 0 {
				pc = d.tgt
			} else {
				pc = d.tgt2
			}
		case dSwitch:
			au := &ax[d.aux]
			v := rload(rp, d.a)
			tgt := au.tgts[len(au.cases)]
			for i, c := range au.cases {
				if v == c {
					tgt = au.tgts[i]
					break
				}
			}
			pc = tgt
		case dRet:
			ret := rload(rp, d.a)
			t.stack = t.stack[:len(t.stack)-1]
			if len(t.stack) == 0 {
				t.done = true
				var delta int64
				if kendo && kacc > 0 {
					delta, kacc = kacc, 0
				}
				flush(fr, pc, kacc, retired, stores, misses)
				*st = sim.Step{Kind: sim.StepDone, Cycles: cycles, ClockDelta: delta}
				return nil
			}
			retDst := fr.dretDst
			fr = t.top()
			fr.regs[retDst] = ret
			code = fr.code.instrs
			ax = fr.code.aux
			regs = fr.regs
			cp = unsafe.Pointer(unsafe.SliceData(code))
			rp = unsafe.Pointer(unsafe.SliceData(regs))
			pc = fr.dpc
		case dBadTerm:
			flush(fr, pc, kacc, retired, stores, misses)
			return t.errf("missing terminator in %s", ax[d.aux].block)
		default:
			flush(fr, pc, kacc, retired, stores, misses)
			return t.errf("unknown opcode %v", ax[d.aux].irop)
		}
		// Post-instruction bookkeeping, in the reference loop's order: Kendo
		// accrual and overflow first (kcost is zero for terminators, and the
		// counter is always below the chunk size when one executes, so the
		// shared check cannot misfire there), then the step-cycle bound.
		if kendo {
			kacc += int64(d.kcost)
			if kacc >= chunk {
				delta := kacc
				kacc = 0
				m.Interrupts++
				cycles += m.cfg.KendoInterruptCost
				m.ClockUpdates++
				flush(fr, pc, kacc, retired, stores, misses)
				*st = sim.Step{Kind: sim.StepAdvance, Cycles: cycles, ClockDelta: delta}
				return nil
			}
		}
		if cycles >= maxCycles {
			flush(fr, pc, kacc, retired, stores, misses)
			*st = sim.Step{Kind: sim.StepAdvance, Cycles: cycles}
			return nil
		}
	}
}
