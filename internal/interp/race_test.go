package interp

import (
	"errors"
	"testing"

	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/sim"
)

// runRace assembles a machine with the detector installed and runs it under
// the deterministic policy, returning the machine and the engine error.
func runRace(t *testing.T, m *ir.Module, threads int, rc *RaceConfig, jitterSeed int64) (*Machine, error) {
	t.Helper()
	mach, ths, err := NewMachine(Config{
		Module:     m,
		Threads:    threads,
		Entry:      "main",
		Race:       rc,
		JitterSeed: jitterSeed,
	})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	eng := sim.New(sim.Config{
		Policy:      sim.PolicyDet,
		NumLocks:    m.NumLocks,
		NumBarriers: m.NumBars,
		RecordTrace: true,
		Observer:    mach.Observer(),
	}, Programs(ths))
	_, err = eng.Run()
	return mach, err
}

// Both threads store to shared[0] with no synchronization: write-write race.
const raceWWSrc = `
module raceww
global shared 4

func main() regs 4 {
entry:
  r0 = tid
  store shared[0], r0
  ret r0
}
`

// Thread 0 writes, thread 1 reads, no synchronization: write-read race.
const raceRWSrc = `
module racerw
global shared 4

func main() regs 4 {
entry:
  r0 = tid
  br r0, reader, writer
writer:
  store shared[0], r0
  ret r0
reader:
  r1 = load shared[0]
  ret r1
}
`

// Same conflicting stores, but lock-protected: no race.
const raceLockedSrc = `
module racelocked
global shared 4
locks 1

func main() regs 4 {
entry:
  r0 = tid
  lock 0
  store shared[0], r0
  unlock 0
  ret r0
}
`

// Thread 0 writes before the barrier, everyone reads after it: ordered.
const raceBarrierSrc = `
module racebarrier
global shared 4
barriers 1

func main() regs 4 {
entry:
  r0 = tid
  br r0, after, writer
writer:
  store shared[0], r0
  jmp after
after:
  barrier 0
  r1 = load shared[0]
  ret r1
}
`

// Parent write -> spawn -> child write -> join -> parent read: all ordered.
const raceSpawnSrc = `
module racespawn
global shared 4

func child() regs 2 {
entry:
  r0 = const 7
  store shared[0], r0
  ret r0
}

func main() regs 4 {
entry:
  r0 = const 1
  store shared[0], r0
  r1 = spawn child()
  join r1
  r2 = load shared[0]
  ret r2
}
`

// Two independent racy addresses, for the report cap.
const raceTwoAddrSrc = `
module racetwo
global shared 4

func main() regs 4 {
entry:
  r0 = tid
  store shared[0], r0
  store shared[1], r0
  ret r0
}
`

func TestRaceWriteWriteFailFast(t *testing.T) {
	m := ir.MustParse(raceWWSrc)
	_, err := runRace(t, m, 2, &RaceConfig{Policy: RaceFailFast}, 0)
	if err == nil {
		t.Fatal("expected a race error, run completed cleanly")
	}
	if !errors.Is(err, diag.ErrRace) {
		t.Fatalf("errors.Is(ErrRace) = false for %v", err)
	}
	var re *diag.RaceError
	if !errors.As(err, &re) {
		t.Fatalf("errors.As(*RaceError) = false for %v", err)
	}
	if re.Sym != "shared" || re.Index != 0 {
		t.Fatalf("race at %s[%d], want shared[0]", re.Sym, re.Index)
	}
	if !re.First.Write || !re.Second.Write {
		t.Fatalf("want write-write, got %v vs %v", re.First, re.Second)
	}
	if re.First.Thread >= re.Second.Thread {
		t.Fatalf("pair not canonically ordered: threads %d, %d", re.First.Thread, re.Second.Thread)
	}
	if re.First.Site == "" || re.Second.Site == "" {
		t.Fatalf("missing access sites: %q vs %q", re.First.Site, re.Second.Site)
	}
}

func TestRaceWriteReadDetected(t *testing.T) {
	m := ir.MustParse(raceRWSrc)
	mach, err := runRace(t, m, 2, &RaceConfig{Policy: RaceReport}, 0)
	if err != nil {
		t.Fatalf("report mode must finish the run: %v", err)
	}
	races := mach.Races()
	if len(races) != 1 {
		t.Fatalf("races = %d, want 1", len(races))
	}
	re := races[0]
	if re.First.Write == re.Second.Write {
		t.Fatalf("want mixed write/read pair, got %v vs %v", re.First, re.Second)
	}
}

func TestRaceFreeSynchronizedPrograms(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		threads int
	}{
		{"lock-protected", raceLockedSrc, 4},
		{"barrier-ordered", raceBarrierSrc, 4},
		{"spawn-join-ordered", raceSpawnSrc, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := ir.MustParse(tc.src)
			mach, err := runRace(t, m, tc.threads, &RaceConfig{Policy: RaceFailFast}, 0)
			if err != nil {
				t.Fatalf("false positive: %v", err)
			}
			if n := len(mach.Races()); n != 0 {
				t.Fatalf("false positive: %d races collected", n)
			}
		})
	}
}

func TestRaceReportCapDeterministic(t *testing.T) {
	m := ir.MustParse(raceTwoAddrSrc)
	mach, err := runRace(t, m, 2, &RaceConfig{Policy: RaceReport, MaxReports: 1}, 0)
	if err != nil {
		t.Fatalf("report mode must finish the run: %v", err)
	}
	if n := len(mach.Races()); n != 1 {
		t.Fatalf("races = %d, want cap of 1", n)
	}
	if s := mach.RacesSuppressed(); s < 1 {
		t.Fatalf("suppressed = %d, want >= 1", s)
	}
}

// One report per address: re-touching a racy cell must not spam reports.
const raceRepeatSrc = `
module racerepeat
global shared 4

func main() regs 4 {
entry:
  r0 = tid
  r1 = const 0
  jmp loop
loop:
  store shared[0], r0
  r1 = add r1, 1
  r2 = lt r1, 5
  br r2, loop, done
done:
  ret r0
}
`

func TestRaceOneReportPerAddress(t *testing.T) {
	m := ir.MustParse(raceRepeatSrc)
	mach, err := runRace(t, m, 2, &RaceConfig{Policy: RaceReport}, 0)
	if err != nil {
		t.Fatalf("report mode must finish the run: %v", err)
	}
	if n := len(mach.Races()); n != 1 {
		t.Fatalf("races = %d, want exactly 1 (address poisoned after first report)", n)
	}
}

// The detector must not perturb execution: schedule and makespan of a
// race-free program are identical with it on and off.
func TestRaceDetectorIsObservationOnly(t *testing.T) {
	run := func(rc *RaceConfig) (int64, []sim.Acquisition) {
		m := ir.MustParse(raceLockedSrc)
		mach, ths, err := NewMachine(Config{Module: m, Threads: 4, Race: rc})
		if err != nil {
			t.Fatalf("NewMachine: %v", err)
		}
		eng := sim.New(sim.Config{
			Policy: sim.PolicyDet, NumLocks: m.NumLocks, RecordTrace: true,
			Observer: mach.Observer(),
		}, Programs(ths))
		stats, err := eng.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return stats.Makespan, stats.Trace
	}
	offMake, offTrace := run(nil)
	onMake, onTrace := run(&RaceConfig{Policy: RaceFailFast})
	if offMake != onMake {
		t.Fatalf("makespan changed: off %d, on %d", offMake, onMake)
	}
	if len(offTrace) != len(onTrace) {
		t.Fatalf("trace length changed: off %d, on %d", len(offTrace), len(onTrace))
	}
	for i := range offTrace {
		if offTrace[i] != onTrace[i] {
			t.Fatalf("trace[%d] changed: off %+v, on %+v", i, offTrace[i], onTrace[i])
		}
	}
}

// Deterministic schedules — and race reports — are invariant under
// physical-timing jitter (the PR 1 fault-injection idea applied to timing).
func TestRaceReportInvariantUnderJitter(t *testing.T) {
	var ref *diag.RaceError
	for seed := int64(0); seed < 8; seed++ {
		m := ir.MustParse(raceWWSrc)
		mach, err := runRace(t, m, 2, &RaceConfig{Policy: RaceReport}, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		races := mach.Races()
		if len(races) != 1 {
			t.Fatalf("seed %d: races = %d, want 1", seed, len(races))
		}
		if ref == nil {
			ref = races[0]
			continue
		}
		got := races[0]
		if got.Error() != ref.Error() {
			t.Fatalf("seed %d: report differs:\n%v\nvs reference\n%v", seed, got, ref)
		}
	}
}

// Jitter perturbs physical time: the same deterministic program's makespan
// must actually move across seeds, or the harness tests nothing.
func TestJitterPerturbsPhysicalTime(t *testing.T) {
	makespan := func(seed int64) int64 {
		m := ir.MustParse(raceLockedSrc)
		_, ths, err := NewMachine(Config{Module: m, Threads: 4, JitterSeed: seed})
		if err != nil {
			t.Fatalf("NewMachine: %v", err)
		}
		eng := sim.New(sim.Config{Policy: sim.PolicyDet, NumLocks: m.NumLocks}, Programs(ths))
		stats, err := eng.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return stats.Makespan
	}
	base := makespan(0)
	moved := false
	for seed := int64(1); seed <= 4; seed++ {
		if makespan(seed) != base {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("jitter never changed the makespan across seeds 1..4")
	}
}
