package interp

import (
	"sync"

	"repro/internal/estimates"
	"repro/internal/ir"
)

// DCache shares decoded instruction streams (decode.go) across machines.
//
// A decoded stream references globals by slot index and its module/cost
// tables by value, so it is independent of any particular Machine; the only
// inputs decode bakes in are the function itself, the cost model, the
// estimates table, and whether the machine runs in Kendo mode (which
// selects the clockadd decoding and the per-instruction logical costs). The
// cache key pins all four, so a hit is exactly the stream the machine would
// have decoded itself.
//
// The harness wires one DCache per Runner: a table sweep builds hundreds of
// machines over a handful of modules, and sharing removes every decode
// after the first per (function, mode). Machines still keep a private
// lock-free map in front of this one, so the dispatch loop never takes the
// mutex. Concurrent machines may race to decode the same key; both results
// are identical and either may win — publication is last-write.
type DCache struct {
	mu sync.Mutex
	m  map[dckey]*dcode
}

type dckey struct {
	fn    *ir.Func
	cm    *ir.CostModel
	est   *estimates.Table
	kendo bool
}

// NewDCache returns an empty shared decode cache.
func NewDCache() *DCache {
	return &DCache{m: map[dckey]*dcode{}}
}

func (c *DCache) get(k dckey) *dcode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

func (c *DCache) put(k dckey, dc *dcode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Functions live as long as their module; bound the cache so a
	// long-lived Runner fed a stream of distinct modules (the service
	// layer) cannot grow it without limit.
	if len(c.m) >= 4096 {
		c.m = map[dckey]*dcode{}
	}
	c.m[k] = dc
}
