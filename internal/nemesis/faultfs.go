package nemesis

import (
	"fmt"
	"os"
	"sync"
	"syscall"

	"repro/internal/diag"
	"repro/internal/vfs"
)

// FaultFSConfig sets the per-operation fault rates a FaultFS draws against
// the storage stream while armed.
type FaultFSConfig struct {
	// ShortWriteRate: a Write lands only a prefix of the buffer and returns
	// an error (the on-disk tail is torn mid-record).
	ShortWriteRate float64
	// WriteErrRate: a Write fails with ENOSPC before landing any byte.
	WriteErrRate float64
	// SyncErrRate: a Sync fails; previously written bytes are in an unknown
	// durability state, exactly as after a real fsync failure.
	SyncErrRate float64
}

// FaultFS is a vfs.FS that injects storage faults drawn deterministically
// from its engine's storage stream. Faults fire only while the FS is armed,
// so a harness can scope disk trouble to chosen incarnations of the system
// under test; when disarmed (the default) every operation passes straight
// through to the inner FS and consumes no randomness, keeping the storage
// stream's draw sequence a pure function of the armed operations.
type FaultFS struct {
	inner vfs.FS
	eng   *Engine
	cfg   FaultFSConfig

	mu    sync.Mutex
	armed bool
}

// NewFaultFS wraps inner with fault injection driven by eng's storage stream.
func NewFaultFS(eng *Engine, inner vfs.FS, cfg FaultFSConfig) *FaultFS {
	return &FaultFS{inner: inner, eng: eng, cfg: cfg}
}

// Arm enables (true) or disables (false) fault injection.
func (f *FaultFS) Arm(on bool) {
	f.mu.Lock()
	f.armed = on
	f.mu.Unlock()
}

// draw returns whether a fault with the given rate fires now, and for short
// writes the fraction of the buffer to keep. Draws are serialized so that a
// single-threaded caller (the journal holds its own lock around file I/O)
// sees one deterministic sequence.
func (f *FaultFS) draw(rate float64) (bool, float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.armed || rate <= 0 {
		return false, 0
	}
	r := f.eng.Stream(ClassStorage)
	if r.Float() >= rate {
		return false, 0
	}
	return true, r.Float()
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f, name: name}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }

func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

type faultFile struct {
	f    vfs.File
	fs   *FaultFS
	name string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if fire, _ := ff.fs.draw(ff.fs.cfg.WriteErrRate); fire {
		ff.fs.eng.Observe(ClassStorage, "enospc", ff.name, "")
		return 0, fmt.Errorf("%w: write %s: %w", diag.ErrInjected, ff.name, syscall.ENOSPC)
	}
	if fire, frac := ff.fs.draw(ff.fs.cfg.ShortWriteRate); fire && len(p) > 1 {
		keep := int(frac * float64(len(p)))
		if keep >= len(p) {
			keep = len(p) - 1
		}
		n, err := ff.f.Write(p[:keep])
		if err != nil {
			return n, err
		}
		ff.fs.eng.Observe(ClassStorage, "short-write", ff.name, "")
		return n, fmt.Errorf("%w: short write %s: %d of %d bytes", diag.ErrInjected, ff.name, n, len(p))
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if fire, _ := ff.fs.draw(ff.fs.cfg.SyncErrRate); fire {
		ff.fs.eng.Observe(ClassStorage, "fsync-error", ff.name, "")
		return fmt.Errorf("%w: fsync %s: input/output error", diag.ErrInjected, ff.name)
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

func (ff *faultFile) Truncate(size int64) error { return ff.f.Truncate(size) }

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) { return ff.f.Seek(offset, whence) }
