// Package nemesis is the seeded, deterministic fault-schedule engine behind
// the repo's chaos properties. One seed value produces one reproducible fault
// timeline across three planes — process (kills/restarts), storage (short
// writes, fsync errors, ENOSPC, post-crash corruption), and network
// (partitions, latency, flaky links, payload corruption) — so a failing
// schedule replays exactly from its seed, the same argument determinism makes
// for the programs under test (Aviram et al.: determinism is what makes fault
// tolerance checkable).
//
// The engine's one structural idea is *per-fault-class partitioned RNG
// streams*: every fault class draws from its own det.Rand stream derived from
// (seed, class id), and no class ever reads another's stream. Adding,
// removing, or re-rating the ops of one class therefore cannot shift the
// timeline of any other class — storage faults stay put when network faults
// are toggled — which keeps schedules comparable across harness versions and
// makes "same seed, same timeline" a property a test can assert rather than
// hope for.
//
// Two kinds of record are kept apart on purpose:
//
//   - the *timeline* holds executed plan events (Plan precomputes them as a
//     pure function of the seed; the harness Records each one as it applies
//     it), and Fingerprint over it is the object the determinism property
//     compares;
//   - *observations* hold online injections whose position depends on system
//     progress (which Write call the k-th fault landed on), informational
//     for debugging, never fingerprinted.
package nemesis

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/det"
)

// Fault classes. Each owns one RNG stream; the ids are part of a seed's
// schedule identity and must never be renumbered.
const (
	ClassProcess   = "process"
	ClassStorage   = "storage"
	ClassNetwork   = "network"
	ClassIntegrity = "integrity"
	ClassWorkload  = "workload"
	// ClassMembership covers cluster-churn faults: seeded join, leave, drain
	// and flap schedules against the dynamic membership plane.
	ClassMembership = "membership"
)

// streamID maps a class to its fixed det.Rand stream id.
func streamID(class string) int {
	switch class {
	case ClassMembership:
		// id 10 sits below the original block so the unknown-class fallback
		// (16 + hash) stays exactly where it has always been.
		return 10
	case ClassProcess:
		return 11
	case ClassStorage:
		return 12
	case ClassNetwork:
		return 13
	case ClassIntegrity:
		return 14
	case ClassWorkload:
		return 15
	default:
		// Unknown classes get a stable id derived from the name, so custom
		// harness classes still partition deterministically.
		h := fnv.New32a()
		h.Write([]byte(class))
		return 16 + int(h.Sum32()%1009)
	}
}

// Event is one fault (or workload) injection: where in the schedule it fires,
// which class and op, the target it lands on, and a small op-specific
// argument (variant index, scar kind selector, latency bucket, ...).
type Event struct {
	Step   int    `json:"step"`
	Class  string `json:"class"`
	Op     string `json:"op"`
	Target string `json:"target,omitempty"`
	Arg    int    `json:"arg,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("%04d %s/%s", e.Step, e.Class, e.Op)
	if e.Target != "" {
		s += " @" + e.Target
	}
	s += fmt.Sprintf(" #%d", e.Arg)
	return s
}

// Engine is one seeded schedule's state: the partitioned streams plus the
// executed timeline and online observations.
type Engine struct {
	seed int64

	mu           sync.Mutex
	streams      map[string]*det.Rand
	timeline     []Event
	observations []Event
}

// New builds an engine for seed. Engines are cheap; one per schedule run.
func New(seed int64) *Engine {
	return &Engine{seed: seed, streams: make(map[string]*det.Rand)}
}

// Seed returns the schedule's seed.
func (n *Engine) Seed() int64 { return n.seed }

// Stream returns the class's partitioned RNG stream, creating it on first
// use. The same (seed, class) always yields the same stream, and distinct
// classes never share state.
func (n *Engine) Stream(class string) *det.Rand {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.streamLocked(class)
}

func (n *Engine) streamLocked(class string) *det.Rand {
	r, ok := n.streams[class]
	if !ok {
		r = det.NewRand(n.seed, streamID(class))
		n.streams[class] = r
	}
	return r
}

// Record appends one executed plan event to the timeline. Harnesses call it
// as they apply each planned event, so Fingerprint() over the timeline equals
// Fingerprint(plan) exactly when the plan was executed faithfully.
func (n *Engine) Record(e Event) {
	n.mu.Lock()
	n.timeline = append(n.timeline, e)
	n.mu.Unlock()
}

// Observe appends one online injection (a FaultFS write error, a scar's
// byte position) to the observation log. Observations are diagnostics: their
// order depends on system progress, so they are never fingerprinted.
func (n *Engine) Observe(class, op, target, detail string) {
	n.mu.Lock()
	n.observations = append(n.observations, Event{Step: -1, Class: class, Op: op, Target: target})
	_ = detail
	n.mu.Unlock()
}

// Timeline returns a copy of the executed events, in execution order.
func (n *Engine) Timeline() []Event {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Event, len(n.timeline))
	copy(out, n.timeline)
	return out
}

// Observations returns a copy of the online injection log.
func (n *Engine) Observations() []Event {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Event, len(n.observations))
	copy(out, n.observations)
	return out
}

// Fingerprint condenses the executed timeline to a comparable hex digest.
func (n *Engine) Fingerprint() string { return Fingerprint(n.Timeline()) }

// Fingerprint condenses an event sequence to a hex digest; two schedules are
// "the same fault timeline" exactly when their fingerprints match.
func Fingerprint(events []Event) string {
	h := fnv.New64a()
	for _, e := range events {
		fmt.Fprintln(h, e.String())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// OpSpec declares one op a plan may fire: its fault class, name, and
// per-step firing probability. Ops of the same class draw from that class's
// stream in the order given, so an op list is part of schedule identity.
type OpSpec struct {
	Class string
	Op    string
	Rate  float64
	// ArgN bounds the op's drawn argument: Arg is uniform in [0, ArgN)
	// (0 or 1 means the op takes no argument and Arg is always 0).
	ArgN int
}

// PlanConfig shapes a plan: how many steps and which targets ops land on.
type PlanConfig struct {
	Steps   int
	Targets []string
}

// Plan precomputes a fault timeline: for each step, every class present in
// ops draws — from its own stream only — whether each of its ops fires, and
// if so on which target and with which argument. The result is a pure
// function of (seed, cfg, ops): regenerating with the same inputs yields an
// identical event sequence, which is the determinism property the nemesis
// tests assert end to end.
func Plan(seed int64, cfg PlanConfig, ops []OpSpec) []Event {
	eng := New(seed)
	// Fixed class iteration order: first appearance in ops. Iterating the
	// streams map would be nondeterministic; the op list's order is part of
	// the schedule's identity instead.
	var classes []string
	seen := map[string]bool{}
	for _, op := range ops {
		if !seen[op.Class] {
			seen[op.Class] = true
			classes = append(classes, op.Class)
		}
	}
	var plan []Event
	for step := 0; step < cfg.Steps; step++ {
		for _, class := range classes {
			r := eng.Stream(class)
			for _, op := range ops {
				if op.Class != class {
					continue
				}
				if r.Float() >= op.Rate {
					continue
				}
				e := Event{Step: step, Class: class, Op: op.Op}
				if len(cfg.Targets) > 0 {
					e.Target = cfg.Targets[r.IntN(len(cfg.Targets))]
				}
				if op.ArgN > 1 {
					e.Arg = r.IntN(op.ArgN)
				}
				plan = append(plan, e)
			}
		}
	}
	return plan
}
