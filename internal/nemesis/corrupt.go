package nemesis

import (
	"bytes"
	"fmt"
)

// Scar kinds: the deterministic post-crash corruptions ScarJournal applies to
// a journal image. All four are CRC-detectable mutations — none deletes or
// truncates bytes — so a scarred record is always *detected* (quarantined),
// never silently lost, and the property tests can demand exact accounting.
const (
	// ScarBitFlip flips one low bit of one interior byte of a random line.
	ScarBitFlip = iota
	// ScarGarbleTail xors the tail of the last complete line (a write that
	// hit disk mangled but kept its record boundary).
	ScarGarbleTail
	// ScarDupLine duplicates a random line (a replayed write).
	ScarDupLine
	// ScarJunkLine inserts a line of non-record garbage after a random line
	// (a misdirected write from another file).
	ScarJunkLine

	// NumScarKinds is the ArgN to use for a scar op in a Plan.
	NumScarKinds = 4
)

// ScarJournal applies one deterministic corruption of the given kind to a
// journal image, drawing positions from the engine's integrity stream, and
// returns the scarred copy. The input is never modified. An image with no
// complete line is returned unchanged (nothing to scar); draws are consumed
// only when a scar is applied, so the integrity stream's sequence is a pure
// function of the applied scars.
func (n *Engine) ScarJournal(data []byte, kind int) []byte {
	lines := completeLines(data)
	if len(lines) == 0 {
		return append([]byte(nil), data...)
	}
	out := append([]byte(nil), data...)
	r := n.Stream(ClassIntegrity)
	switch kind % NumScarKinds {
	case ScarBitFlip:
		l := lines[r.IntN(len(lines))]
		if l.end-l.start < 2 {
			return out
		}
		pos := l.start + r.IntN(l.end-l.start-1) // exclude trailing newline
		out[pos] = flipAvoidNewline(out[pos])
		n.Observe(ClassIntegrity, "bit-flip", fmt.Sprintf("byte %d", pos), "")
	case ScarGarbleTail:
		l := lines[len(lines)-1]
		from := l.end - 1 - 16
		if from < l.start {
			from = l.start
		}
		for i := from; i < l.end-1; i++ {
			b := out[i] ^ 0x5a
			if b == '\n' {
				b = out[i] ^ 0x01
			}
			out[i] = b
		}
		n.Observe(ClassIntegrity, "garble-tail", fmt.Sprintf("bytes %d-%d", from, l.end-1), "")
	case ScarDupLine:
		l := lines[r.IntN(len(lines))]
		dup := append([]byte(nil), out[l.start:l.end]...)
		out = append(out[:l.end], append(dup, out[l.end:]...)...)
		n.Observe(ClassIntegrity, "dup-line", fmt.Sprintf("bytes %d-%d", l.start, l.end), "")
	case ScarJunkLine:
		l := lines[r.IntN(len(lines))]
		junk := []byte(fmt.Sprintf("!!nemesis junk %d!!\n", r.IntN(1<<20)))
		out = append(out[:l.end], append(junk, out[l.end:]...)...)
		n.Observe(ClassIntegrity, "junk-line", fmt.Sprintf("after byte %d", l.end), "")
	}
	return out
}

type lineSpan struct{ start, end int } // [start, end) including trailing newline

// completeLines returns the spans of newline-terminated, non-empty lines.
func completeLines(data []byte) []lineSpan {
	var spans []lineSpan
	start := 0
	for {
		i := bytes.IndexByte(data[start:], '\n')
		if i < 0 {
			break
		}
		end := start + i + 1
		if end-start > 1 {
			spans = append(spans, lineSpan{start, end})
		}
		start = end
	}
	return spans
}

// flipAvoidNewline flips the low bit of b, falling back to the next bit if
// the flip would produce a newline (which would split the record instead of
// corrupting it in place).
func flipAvoidNewline(b byte) byte {
	if f := b ^ 0x01; f != '\n' {
		return f
	}
	return b ^ 0x02
}
