package nemesis

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"repro/internal/diag"
	"repro/internal/vfs"
)

func planOps() []OpSpec {
	return []OpSpec{
		{Class: ClassProcess, Op: "kill", Rate: 0.3},
		{Class: ClassStorage, Op: "disk-fault", Rate: 0.4, ArgN: 3},
		{Class: ClassNetwork, Op: "partition", Rate: 0.25, ArgN: 2},
		{Class: ClassIntegrity, Op: "scar", Rate: 0.35, ArgN: NumScarKinds},
	}
}

func TestPlanDeterministic(t *testing.T) {
	cfg := PlanConfig{Steps: 50, Targets: []string{"node-a", "node-b", "node-c"}}
	for seed := int64(1); seed <= 10; seed++ {
		a := Plan(seed, cfg, planOps())
		b := Plan(seed, cfg, planOps())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plan not deterministic", seed)
		}
		if Fingerprint(a) != Fingerprint(b) {
			t.Fatalf("seed %d: fingerprints differ", seed)
		}
	}
}

func TestPlanSeedsDiffer(t *testing.T) {
	cfg := PlanConfig{Steps: 50, Targets: []string{"x"}}
	fps := map[string]int64{}
	for seed := int64(1); seed <= 20; seed++ {
		fp := Fingerprint(Plan(seed, cfg, planOps()))
		if prev, ok := fps[fp]; ok {
			t.Fatalf("seeds %d and %d produced identical timelines", prev, seed)
		}
		fps[fp] = seed
	}
}

// The partitioned-streams property: dropping one class's ops entirely must
// not move any other class's events.
func TestPlanClassStreamsIndependent(t *testing.T) {
	cfg := PlanConfig{Steps: 80, Targets: []string{"a", "b"}}
	only := func(events []Event, class string) []Event {
		var out []Event
		for _, e := range events {
			if e.Class == class {
				out = append(out, e)
			}
		}
		return out
	}
	full := Plan(42, cfg, planOps())
	var storageOnly []OpSpec
	for _, op := range planOps() {
		if op.Class == ClassStorage {
			storageOnly = append(storageOnly, op)
		}
	}
	solo := Plan(42, cfg, storageOnly)
	if !reflect.DeepEqual(only(full, ClassStorage), solo) {
		t.Fatalf("storage timeline shifted when other classes were removed:\nfull: %v\nsolo: %v",
			only(full, ClassStorage), solo)
	}
}

func TestEngineRecordFingerprint(t *testing.T) {
	plan := Plan(7, PlanConfig{Steps: 30, Targets: []string{"n"}}, planOps())
	eng := New(7)
	for _, e := range plan {
		eng.Record(e)
	}
	if eng.Fingerprint() != Fingerprint(plan) {
		t.Fatalf("executed fingerprint differs from plan fingerprint")
	}
	if len(eng.Timeline()) != len(plan) {
		t.Fatalf("timeline length %d != plan length %d", len(eng.Timeline()), len(plan))
	}
}

func TestFaultFSDisarmedPassthrough(t *testing.T) {
	dir := t.TempDir()
	eng := New(1)
	ffs := NewFaultFS(eng, vfs.OS{}, FaultFSConfig{ShortWriteRate: 1, WriteErrRate: 1, SyncErrRate: 1})
	path := filepath.Join(dir, "f")
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello\n")); err != nil {
		t.Fatalf("disarmed write failed: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("disarmed sync failed: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ffs.ReadFile(path)
	if err != nil || string(got) != "hello\n" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if len(eng.Observations()) != 0 {
		t.Fatalf("disarmed FS recorded observations: %v", eng.Observations())
	}
}

func TestFaultFSInjectsFaults(t *testing.T) {
	dir := t.TempDir()
	eng := New(2)
	ffs := NewFaultFS(eng, vfs.OS{}, FaultFSConfig{WriteErrRate: 1})
	ffs.Arm(true)
	f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = f.Write([]byte("payload"))
	if err == nil {
		t.Fatal("armed write with WriteErrRate=1 succeeded")
	}
	if !errors.Is(err, diag.ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("error %v not tagged as injected ENOSPC", err)
	}
	obs := eng.Observations()
	if len(obs) != 1 || obs[0].Op != "enospc" {
		t.Fatalf("observations = %v, want one enospc", obs)
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	eng := New(3)
	ffs := NewFaultFS(eng, vfs.OS{}, FaultFSConfig{ShortWriteRate: 1})
	ffs.Arm(true)
	path := filepath.Join(dir, "f")
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef\n")
	n, err := f.Write(payload)
	if err == nil {
		t.Fatal("short write returned no error")
	}
	if !errors.Is(err, diag.ErrInjected) {
		t.Fatalf("error %v not tagged injected", err)
	}
	if n >= len(payload) {
		t.Fatalf("short write landed %d of %d bytes", n, len(payload))
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if len(got) != n {
		t.Fatalf("on-disk %d bytes, write reported %d", len(got), n)
	}
}

func TestFaultFSSyncError(t *testing.T) {
	dir := t.TempDir()
	eng := New(4)
	ffs := NewFaultFS(eng, vfs.OS{}, FaultFSConfig{SyncErrRate: 1})
	ffs.Arm(true)
	f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, diag.ErrInjected) {
		t.Fatalf("sync error %v not tagged injected", err)
	}
}

func TestScarJournalDeterministic(t *testing.T) {
	data := []byte("{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n{\"d\":4}\n")
	for kind := 0; kind < NumScarKinds; kind++ {
		a := New(9).ScarJournal(data, kind)
		b := New(9).ScarJournal(data, kind)
		if !bytes.Equal(a, b) {
			t.Fatalf("kind %d: scar not deterministic", kind)
		}
		if bytes.Equal(a, data) {
			t.Fatalf("kind %d: scar left data unchanged", kind)
		}
	}
}

// Scars must corrupt in place, never delete: every original line boundary
// survives, so intact records stay parseable and corrupt ones stay findable.
func TestScarJournalPreservesStructure(t *testing.T) {
	data := []byte("{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n")
	for kind := 0; kind < NumScarKinds; kind++ {
		out := New(11).ScarJournal(data, kind)
		if len(out) < len(data) {
			t.Fatalf("kind %d: scar shrank the image (%d -> %d bytes)", kind, len(data), len(out))
		}
		inLines := bytes.Count(data, []byte("\n"))
		outLines := bytes.Count(out, []byte("\n"))
		if outLines < inLines {
			t.Fatalf("kind %d: scar destroyed a line boundary (%d -> %d lines)", kind, inLines, outLines)
		}
	}
}

func TestScarJournalEmptyInput(t *testing.T) {
	for _, data := range [][]byte{nil, []byte(""), []byte("no newline")} {
		out := New(5).ScarJournal(data, ScarBitFlip)
		if !bytes.Equal(out, data) {
			t.Fatalf("scar of %q changed to %q", data, out)
		}
	}
}
