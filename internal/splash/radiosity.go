package splash

import "repro/internal/ir"

// Radiosity models SPLASH-2 Radiosity: a work queue popped at a very high
// lock rate, where each task runs a compute kernel built from clockable
// functions (the paper's worked example, `intersection_type`, comes from
// this benchmark) plus a tight element loop.
//
// Two properties the paper highlights must emerge:
//   - the highest lock frequency of the suite (Table I: 2.2M locks/sec) —
//     deterministic-execution overhead is dominated by threads waiting for
//     each other's clocks at the queue lock;
//   - Optimization 1's ahead-of-time charging cuts that waiting far more
//     than an equal reduction in update count from Optimization 2 (§V-B,
//     Figure 15), because a whole kernel's clock is published before it
//     executes.
func Radiosity(threads int) *Benchmark {
	const (
		numTasks  = 1000
		numLeaves = 13 // outer kernels; with 2 inners each: 39 clockable
		elemIters = 10 // tight element loop per task
	)
	mb := ir.NewModule("radiosity")
	mb.Global("taskq", 8)
	mb.Global("elems", 4096)
	mb.Global("result", 64)
	mb.Locks(2) // 0: task queue, 1: result accumulation
	mb.Barriers(1)

	// The compute kernels: diamond-chain leaves in the image of Figure 3,
	// with strongly varying sizes so tasks spread the threads' clocks apart
	// — the imbalance deterministic execution pays for at the queue lock.
	leaves := addTwoLevelKernels(mb, "intersection_type", numLeaves, 4, 10, 8)

	fb := mb.Func("main")
	tid := fb.Reg("tid")
	task := fb.Reg("task")
	tmp := fb.Reg("tmp")
	ok := fb.Reg("ok")
	e := fb.Reg("e")
	v := fb.Reg("v")
	acc := fb.Reg("acc")
	c := fb.Reg("c")
	sel := fb.Reg("sel")

	eb := fb.Block("entry")
	eb.Tid(tid)
	eb.Const(acc, 0)
	eb.Jmp("pop")

	pb := fb.Block("pop")
	buildTaskQueuePop(pb, 0, "taskq", task, tmp, ok, 1, numTasks)
	pb.Br(ir.R(ok), "task.body", "done")

	// Kernel dispatch comes FIRST in the task: under Optimization 1 the
	// kernel's whole clock is published essentially at the pop, so threads
	// waiting for this thread's clock at the queue lock are released before
	// the kernel executes — the ahead-of-time effect of §V-B. (With the
	// kernel buried later in the task, the waiters' crossing points land in
	// the gradually-clocked element loop and O1 cannot shorten the waits.)
	tb := fb.Block("task.body")
	tb.Bin(ir.OpMod, sel, ir.R(task), ir.Imm(int64(numLeaves)))
	cases := make([]int64, numLeaves)
	targets := make([]string, numLeaves)
	for i := range cases {
		cases[i] = int64(i)
		targets[i] = "disp." + leaves[i]
	}
	tb.Switch(ir.R(sel), cases, targets, "disp.default")
	for i, leaf := range leaves {
		db := fb.Block(targets[i])
		db.Call(v, leaf, ir.R(task))
		db.Bin(ir.OpAdd, acc, ir.R(acc), ir.R(v))
		db.Jmp("elem.init")
	}
	fb.Block("disp.default").Jmp("elem.init")

	ei := fb.Block("elem.init")
	ei.Const(e, 0)
	ei.Jmp("elem.hdr")

	// Tight element loop: the non-clockable overhead source (like Water's
	// inner loop, Optimizations 2/4 are what reduce it).
	eh := fb.Block("elem.hdr")
	eh.Bin(ir.OpAnd, tmp, ir.R(e), ir.Imm(4095))
	eh.Bin(ir.OpLT, c, ir.R(e), ir.Imm(elemIters))
	eh.Br(ir.R(c), "elem.body", "elem.done")

	ebd := fb.Block("elem.body")
	ebd.Bin(ir.OpAdd, tmp, ir.R(tmp), ir.R(task))
	ebd.Bin(ir.OpAnd, tmp, ir.R(tmp), ir.Imm(4095))
	ebd.Load(v, "elems", ir.R(tmp))
	ebd.Bin(ir.OpAnd, c, ir.R(v), ir.Imm(1))
	ebd.Br(ir.R(c), "elem.hit", "elem.miss")

	hit := fb.Block("elem.hit")
	hit.Bin(ir.OpMul, v, ir.R(v), ir.Imm(3))
	hit.Bin(ir.OpMul, v, ir.R(v), ir.R(v))
	hit.Bin(ir.OpAdd, acc, ir.R(acc), ir.R(v))
	hit.Jmp("elem.latch")

	miss := fb.Block("elem.miss")
	miss.Bin(ir.OpAdd, acc, ir.R(acc), ir.Imm(1))
	miss.Jmp("elem.latch")

	lb := fb.Block("elem.latch")
	lb.Bin(ir.OpAdd, e, ir.R(e), ir.Imm(1))
	lb.Jmp("elem.hdr")

	ed := fb.Block("elem.done")
	ed.Jmp("pop")

	dn := fb.Block("done")
	dn.Lock(ir.Imm(1))
	dn.Bin(ir.OpAnd, tmp, ir.R(tid), ir.Imm(63))
	dn.Load(v, "result", ir.R(tmp))
	dn.Bin(ir.OpAdd, v, ir.R(v), ir.R(acc))
	dn.Store("result", ir.R(tmp), ir.R(v))
	dn.Unlock(ir.Imm(1))
	dn.Barrier(ir.Imm(0))
	dn.Ret(ir.R(acc))

	return &Benchmark{
		Name:             "radiosity",
		Module:           mb.M,
		Threads:          threads,
		Entry:            "main",
		PaperLocksPerSec: 2211621,
		PaperClockable:   39,
		PaperClockOverheadPct: map[string]float64{
			"none": 41, "O1": 30, "O2": 30, "O3": 36, "O4": 36, "all": 13,
		},
		PaperDetOverheadPct: map[string]float64{
			"none": 72, "O1": 43, "O2": 57, "O3": 63, "O4": 69, "all": 38,
		},
		PaperKendoOverheadPct: 53,
		PaperKendoLocksPerSec: 939771,
	}
}
