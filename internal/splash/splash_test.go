package splash

import (
	"testing"

	"repro/internal/core"
	"repro/internal/estimates"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
)

func TestAllBenchmarksVerify(t *testing.T) {
	est := estimates.DefaultTable()
	for _, b := range All(4) {
		if err := b.Module.Verify(est.Has); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestNamesAndNew(t *testing.T) {
	for _, n := range Names() {
		b, err := New(n, 4)
		if err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
		if b.Name != n || b.Threads != 4 || b.Entry != "main" {
			t.Fatalf("benchmark meta = %+v", b)
		}
	}
	if _, err := New("nosuch", 4); err == nil {
		t.Fatalf("unknown benchmark should error")
	}
}

// TestClockableCounts pins the Table I "Clockable Functions" row.
func TestClockableCounts(t *testing.T) {
	want := map[string]int{
		"ocean": 7, "raytrace": 33, "water-nsq": 7, "radiosity": 39, "volrend": 35,
	}
	for _, b := range All(4) {
		m := b.Module.Clone()
		res, err := core.Instrument(m, nil, nil, core.Options{O1: true, Roots: []string{b.Entry}})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if got := len(res.Clockable); got != want[b.Name] {
			t.Errorf("%s: clockable = %d, want %d (paper %d)",
				b.Name, got, want[b.Name], b.PaperClockable)
		}
	}
}

// runBench simulates one benchmark configuration to completion.
func runBench(t *testing.T, b *Benchmark, opt *core.Options, policy sim.LockPolicy) *sim.Stats {
	t.Helper()
	m := b.Module.Clone()
	if opt != nil {
		o := *opt
		o.Roots = []string{b.Entry}
		if _, err := core.Instrument(m, nil, nil, o); err != nil {
			t.Fatalf("%s: instrument: %v", b.Name, err)
		}
	}
	_, ths, err := interp.NewMachine(interp.Config{
		Module: m, Threads: b.Threads, Entry: b.Entry,
	})
	if err != nil {
		t.Fatalf("%s: machine: %v", b.Name, err)
	}
	eng := sim.New(sim.Config{
		Policy: policy, NumLocks: m.NumLocks, NumBarriers: m.NumBars, RecordTrace: true,
	}, interp.Programs(ths))
	stats, err := eng.Run()
	if err != nil {
		t.Fatalf("%s: run: %v", b.Name, err)
	}
	return stats
}

func TestBenchmarksCompleteUnderAllConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep in -short mode")
	}
	all := core.OptAll
	for _, b := range All(4) {
		base := runBench(t, b, nil, sim.PolicyFCFS)
		if base.Acquisitions == 0 {
			t.Errorf("%s: no lock acquisitions", b.Name)
		}
		det := runBench(t, b, &all, sim.PolicyDet)
		if det.Makespan < base.Makespan {
			t.Errorf("%s: deterministic run faster than baseline (%d < %d)",
				b.Name, det.Makespan, base.Makespan)
		}
		if det.Acquisitions != base.Acquisitions {
			t.Errorf("%s: acquisition counts differ: %d vs %d",
				b.Name, det.Acquisitions, base.Acquisitions)
		}
	}
}

func TestBenchmarkDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep in -short mode")
	}
	all := core.OptAll
	for _, name := range []string{"radiosity", "water-nsq"} {
		b1, _ := New(name, 4)
		s1 := runBench(t, b1, &all, sim.PolicyDet)
		b2, _ := New(name, 4)
		s2 := runBench(t, b2, &all, sim.PolicyDet)
		if len(s1.Trace) != len(s2.Trace) {
			t.Fatalf("%s: trace lengths differ", name)
		}
		for i := range s1.Trace {
			if s1.Trace[i] != s2.Trace[i] {
				t.Fatalf("%s: trace diverges at %d: %+v vs %+v",
					name, i, s1.Trace[i], s2.Trace[i])
			}
		}
	}
}

// TestLockRateOrdering pins the paper's lock-frequency ordering across the
// suite: ocean ≪ raytrace/water < volrend ≪ radiosity.
func TestLockRateOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep in -short mode")
	}
	rate := map[string]float64{}
	for _, b := range All(4) {
		stats := runBench(t, b, nil, sim.PolicyFCFS)
		rate[b.Name] = float64(stats.Acquisitions) / float64(stats.Makespan)
	}
	if !(rate["ocean"] < rate["raytrace"] && rate["ocean"] < rate["water-nsq"]) {
		t.Errorf("ocean should have the lowest lock rate: %v", rate)
	}
	if !(rate["radiosity"] > rate["volrend"] && rate["volrend"] > rate["raytrace"]) {
		t.Errorf("radiosity > volrend > raytrace expected: %v", rate)
	}
}

func TestKernelGenerators(t *testing.T) {
	mb := ir.NewModule("k")
	name := addDiamondChainLeaf(mb, "leaf", 3, 2, 5, 4)
	skip := addSkipChainLeaf(mb, "skip", 6, 2, 5, 0)
	two := addTwoLevelKernels(mb, "two", 2, 3, 5, 4)
	if mb.M.Func(name) == nil || mb.M.Func(skip) == nil {
		t.Fatalf("kernels not defined")
	}
	if len(two) != 2 || mb.M.Func(two[0]+"_ia") == nil {
		t.Fatalf("two-level kernels incomplete: %v", two)
	}
	if mb.M.Global("kscratch") == nil {
		t.Fatalf("load-bearing kernels need the kscratch global")
	}
	if err := mb.M.Verify(nil); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// All three generators must produce O1-clockable functions.
	mm := mb.M
	main := ir.NewModule("")
	_ = main
	fb := mbMain(mm)
	_ = fb
	res, err := core.Instrument(mm, nil, nil, core.Options{O1: true, Roots: []string{"main"}})
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	for _, want := range []string{"leaf", "skip", "two_0", "two_0_ia", "two_1_ib"} {
		if _, ok := res.Clockable[want]; !ok {
			t.Errorf("%s should be clockable; got %v", want, res.ClockableNames())
		}
	}
}

// mbMain appends a main that calls every function once (so clockability has
// call sites and the verifier sees a root).
func mbMain(m *ir.Module) *ir.Func {
	mb := &ir.ModuleBuilder{M: m}
	fb := mb.Func("main")
	r := fb.Reg("r")
	bb := fb.Block("entry")
	for _, f := range m.Funcs {
		if f.Name != "main" && f.NumParams == 1 {
			bb.Call(r, f.Name, ir.Imm(7))
		}
	}
	bb.Ret(ir.R(r))
	return fb.F
}
