package splash

import "repro/internal/ir"

// Ocean models SPLASH-2 Ocean: grid relaxation sweeps with large straight-
// line compute blocks, a barrier after every sweep, and a single reduction
// lock per sweep per thread. Lock frequency is negligible and compute blocks
// are big, so clock-insertion overhead is ~0 — the paper's Table I shows
// 1% unoptimized and 0% with all optimizations.
func Ocean(threads int) *Benchmark {
	const (
		gridDim = 32 // grid is gridDim x gridDim
		sweeps  = 3
		// padWork sizes the per-point compute block; big blocks amortize the
		// one clock update each block carries.
		padWork = 220
	)
	mb := ir.NewModule("ocean")
	mb.Global("grid", gridDim*gridDim)
	mb.Global("next", gridDim*gridDim)
	mb.Global("err", 8)
	mb.Locks(1)
	mb.Barriers(1)

	// Ocean's 7 clockable helpers (Table I row 3): small setup kernels
	// invoked once per sweep.
	helpers := addClockableLeaves(mb, "ocean_init", 7, 6)

	fb := mb.Func("main")
	tid := fb.Reg("tid")
	n := fb.Reg("n")
	sweep := fb.Reg("sweep")
	row := fb.Reg("row")
	col := fb.Reg("col")
	idx := fb.Reg("idx")
	acc := fb.Reg("acc")
	tmp := fb.Reg("tmp")
	c := fb.Reg("c")

	eb := fb.Block("entry")
	eb.Tid(tid).NThreads(n).Const(sweep, 0)
	eb.Jmp("sweep.cond")

	sc := fb.Block("sweep.cond")
	sc.Bin(ir.OpLT, c, ir.R(sweep), ir.Imm(sweeps))
	sc.Br(ir.R(c), "sweep.body", "done")

	sb := fb.Block("sweep.body")
	// Per-sweep setup through the clockable helpers.
	for _, h := range helpers {
		sb.Call(tmp, h, ir.R(sweep))
	}
	// Interior rows only: row 0 and gridDim-1 are boundary.
	sb.Bin(ir.OpAdd, row, ir.R(tid), ir.Imm(1))
	sb.Jmp("row.cond")

	rc := fb.Block("row.cond")
	rc.Bin(ir.OpLT, c, ir.R(row), ir.Imm(gridDim-1))
	rc.Br(ir.R(c), "row.body", "row.done")

	rb := fb.Block("row.body")
	rb.Const(col, 1)
	rb.Jmp("col.cond")

	cc := fb.Block("col.cond")
	cc.Bin(ir.OpLT, c, ir.R(col), ir.Imm(gridDim-1))
	cc.Br(ir.R(c), "col.body", "col.done")

	cb := fb.Block("col.body")
	// Five-point stencil with heavy local arithmetic: one big block.
	cb.Bin(ir.OpMul, idx, ir.R(row), ir.Imm(gridDim))
	cb.Bin(ir.OpAdd, idx, ir.R(idx), ir.R(col))
	cb.Load(acc, "grid", ir.R(idx))
	cb.Bin(ir.OpSub, tmp, ir.R(idx), ir.Imm(1))
	cb.Load(tmp, "grid", ir.R(tmp))
	cb.Bin(ir.OpAdd, acc, ir.R(acc), ir.R(tmp))
	cb.Bin(ir.OpAdd, tmp, ir.R(idx), ir.Imm(1))
	cb.Load(tmp, "grid", ir.R(tmp))
	cb.Bin(ir.OpAdd, acc, ir.R(acc), ir.R(tmp))
	cb.Bin(ir.OpSub, tmp, ir.R(idx), ir.Imm(gridDim))
	cb.Load(tmp, "grid", ir.R(tmp))
	cb.Bin(ir.OpAdd, acc, ir.R(acc), ir.R(tmp))
	cb.Bin(ir.OpAdd, tmp, ir.R(idx), ir.Imm(gridDim))
	cb.Load(tmp, "grid", ir.R(tmp))
	cb.Bin(ir.OpAdd, acc, ir.R(acc), ir.R(tmp))
	cb.Bin(ir.OpDiv, acc, ir.R(acc), ir.Imm(5))
	padBlock(cb, tmp, padWork)
	cb.Store("next", ir.R(idx), ir.R(acc))
	cb.Bin(ir.OpAdd, col, ir.R(col), ir.Imm(1))
	cb.Jmp("col.cond")

	cd := fb.Block("col.done")
	cd.Bin(ir.OpAdd, row, ir.R(row), ir.R(n))
	cd.Jmp("row.cond")

	rd := fb.Block("row.done")
	// Reduction: one lock per sweep per thread.
	rd.Lock(ir.Imm(0))
	rd.Load(tmp, "err", ir.Imm(0))
	rd.Bin(ir.OpAdd, tmp, ir.R(tmp), ir.R(acc))
	rd.Store("err", ir.Imm(0), ir.R(tmp))
	rd.Unlock(ir.Imm(0))
	rd.Barrier(ir.Imm(0))
	rd.Bin(ir.OpAdd, sweep, ir.R(sweep), ir.Imm(1))
	rd.Jmp("sweep.cond")

	fb.Block("done").Ret(ir.R(acc))

	return &Benchmark{
		Name:             "ocean",
		Module:           mb.M,
		Threads:          threads,
		Entry:            "main",
		PaperLocksPerSec: 343,
		PaperClockable:   7,
		PaperClockOverheadPct: map[string]float64{
			"none": 1, "O1": 0, "O2": 0, "O3": 0, "O4": 0, "all": 0,
		},
		PaperDetOverheadPct: map[string]float64{
			"none": 1, "O1": 1, "O2": 1, "O3": 0, "O4": 0, "all": 0,
		},
		PaperKendoOverheadPct: 1,
		PaperKendoLocksPerSec: 279,
	}
}
