package splash

import "repro/internal/ir"

// WaterNSQ models SPLASH-2 Water-nsquared: the dominant cost is a very tight
// inner force loop whose body contains an `if` (the cutoff test), exactly
// the structure §V-C blames for DetLock's worst overhead: clock updates per
// tiny block. The two `if` arms jump straight back to the loop header, so
// Optimization 4 can merge their updates into the header, and Optimization 2
// hoists the min arm into the branch block — the paper's two effective
// optimizations for this benchmark (43% → ~21%).
//
// The arm costs differ enough that Optimization 3's averaging criteria
// reject the region, matching the paper's observation that O3 does not help
// Water-nsq.
func WaterNSQ(threads int) *Benchmark {
	const (
		moleculesPerThread = 28
		innerIters         = 1024
		numMolLocks        = 16
	)
	mb := ir.NewModule("water-nsq")
	mb.Global("pos", 4096)
	mb.Global("force", 4096)
	mb.Locks(numMolLocks)
	mb.Barriers(1)

	// Water's 7 clockable helpers: per-molecule setup kernels.
	helpers := addClockableLeaves(mb, "water_setup", 7, 5)

	fb := mb.Func("main")
	tid := fb.Reg("tid")
	n := fb.Reg("n")
	mol := fb.Reg("mol")
	j := fb.Reg("j")
	d := fb.Reg("d")
	f := fb.Reg("f")
	idx := fb.Reg("idx")
	tmp := fb.Reg("tmp")
	c := fb.Reg("c")

	eb := fb.Block("entry")
	eb.Tid(tid).NThreads(n).Const(mol, 0)
	eb.Jmp("mol.cond")

	mc := fb.Block("mol.cond")
	mc.Bin(ir.OpLT, c, ir.R(mol), ir.Imm(moleculesPerThread))
	mc.Br(ir.R(c), "mol.body", "done")

	mbk := fb.Block("mol.body")
	for _, h := range helpers {
		mbk.Call(tmp, h, ir.R(mol))
	}
	mbk.Bin(ir.OpMul, idx, ir.R(tid), ir.Imm(997))
	mbk.Bin(ir.OpAdd, idx, ir.R(idx), ir.R(mol))
	mbk.Const(j, 0)
	mbk.Const(f, 0)
	mbk.Jmp("inner.hdr")

	// Inner loop, shaped like the paper's Figure 10 triangle: the header
	// tests the (rarely true) cutoff condition and branches either to the
	// expensive if.then arm or straight to for.inc; if.then falls into
	// for.inc; for.inc increments, tests the bound and jumps back. Both
	// Optimization 2b (the triangle shift — precise here, since if.then has
	// a single successor) and Optimization 4 (for.inc is the small back-edge
	// source) can merge for.inc's update away, matching the paper's Water
	// rows where O2 and O4 each roughly halve the overhead and O1/O3 do
	// nothing. The header is the loop header (a merge), so Optimization 3
	// cannot average the region.
	ih := fb.Block("inner.hdr")
	ih.Bin(ir.OpXor, d, ir.R(idx), ir.R(j))
	ih.Bin(ir.OpAdd, d, ir.R(d), ir.R(f))
	ih.Bin(ir.OpAnd, tmp, ir.R(d), ir.Imm(63))
	ih.Bin(ir.OpAnd, c, ir.R(d), ir.Imm(7))
	ih.Bin(ir.OpEQ, c, ir.R(c), ir.Imm(0))
	ih.Br(ir.R(c), "inside", "inner.latch")

	// Cutoff hit (1 in 8): the expensive arm, falling through to for.inc.
	in := fb.Block("inside")
	in.Bin(ir.OpMul, d, ir.R(d), ir.R(d))
	in.Bin(ir.OpMul, tmp, ir.R(d), ir.Imm(3))
	in.Bin(ir.OpAdd, f, ir.R(f), ir.R(tmp))
	in.Jmp("inner.latch")

	// for.inc: small back-edge source carrying the bound test.
	il := fb.Block("inner.latch")
	il.Bin(ir.OpAdd, j, ir.R(j), ir.Imm(1))
	il.Bin(ir.OpLT, c, ir.R(j), ir.Imm(innerIters))
	il.Br(ir.R(c), "inner.hdr", "inner.done")

	id := fb.Block("inner.done")
	// One per-molecule lock to accumulate forces (moderate lock rate).
	id.Bin(ir.OpMod, tmp, ir.R(mol), ir.Imm(numMolLocks))
	id.Lock(ir.R(tmp))
	id.Bin(ir.OpMod, idx, ir.R(idx), ir.Imm(4096))
	id.Load(d, "force", ir.R(idx))
	id.Bin(ir.OpAdd, d, ir.R(d), ir.R(f))
	id.Store("force", ir.R(idx), ir.R(d))
	id.Unlock(ir.R(tmp))
	id.Bin(ir.OpAdd, mol, ir.R(mol), ir.Imm(1))
	id.Jmp("mol.cond")

	fb.Block("done").Barrier(ir.Imm(0)).Ret(ir.R(f))

	return &Benchmark{
		Name:             "water-nsq",
		Module:           mb.M,
		Threads:          threads,
		Entry:            "main",
		PaperLocksPerSec: 126034,
		PaperClockable:   7,
		PaperClockOverheadPct: map[string]float64{
			"none": 43, "O1": 43, "O2": 23, "O3": 43, "O4": 21, "all": 20,
		},
		PaperDetOverheadPct: map[string]float64{
			"none": 44, "O1": 44, "O2": 23, "O3": 44, "O4": 21, "all": 21,
		},
		PaperKendoOverheadPct: 7,
		PaperKendoLocksPerSec: 143202,
	}
}
