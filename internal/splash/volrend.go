package splash

import "repro/internal/ir"

// Volrend models SPLASH-2 Volrend: ray casting over a volume with
// conditional octree-style traversal, pixels claimed from a task counter at
// a fairly high rate (443k locks/sec in the paper), compute in mid-sized
// conditional blocks plus a family of 35 clockable shading/transfer
// helpers.
func Volrend(threads int) *Benchmark {
	const (
		numTasks   = 310
		pixelsPer  = 8
		numLeaves  = 35
		stepsPerPx = 5
	)
	mb := ir.NewModule("volrend")
	mb.Global("taskq", 8)
	mb.Global("volume", 4096)
	mb.Global("image", 4096)
	mb.Locks(2)
	mb.Barriers(1)

	leaves := addDiamondChainFamily(mb, "shade", numLeaves, 1, 10, 90, 0)

	fb := mb.Func("main")
	tid := fb.Reg("tid")
	task := fb.Reg("task")
	px := fb.Reg("px")
	step := fb.Reg("step")
	tmp := fb.Reg("tmp")
	ok := fb.Reg("ok")
	v := fb.Reg("v")
	acc := fb.Reg("acc")
	sel := fb.Reg("sel")
	c := fb.Reg("c")

	eb := fb.Block("entry")
	eb.Tid(tid)
	eb.Const(acc, 0)
	eb.Jmp("pop")

	pb := fb.Block("pop")
	buildTaskQueuePop(pb, 0, "taskq", task, tmp, ok, 1, numTasks)
	pb.Br(ir.R(ok), "task.init", "done")

	ti := fb.Block("task.init")
	ti.Const(px, 0)
	ti.Jmp("px.hdr")

	ph := fb.Block("px.hdr")
	ph.Bin(ir.OpLT, c, ir.R(px), ir.Imm(pixelsPer))
	ph.Br(ir.R(c), "px.body", "pop")

	pxb := fb.Block("px.body")
	pxb.Bin(ir.OpMul, v, ir.R(task), ir.Imm(pixelsPer))
	pxb.Bin(ir.OpAdd, v, ir.R(v), ir.R(px))
	pxb.Const(step, 0)
	pxb.Jmp("step.hdr")

	sh := fb.Block("step.hdr")
	sh.Bin(ir.OpLT, c, ir.R(step), ir.Imm(stepsPerPx))
	sh.Br(ir.R(c), "step.body", "step.done")

	// Octree-ish descent: a conditional ladder with mid-sized blocks.
	sb := fb.Block("step.body")
	sb.Bin(ir.OpMul, tmp, ir.R(v), ir.Imm(13))
	sb.Bin(ir.OpAdd, tmp, ir.R(tmp), ir.R(step))
	sb.Bin(ir.OpAnd, tmp, ir.R(tmp), ir.Imm(4095))
	sb.Load(tmp, "volume", ir.R(tmp))
	padBlock(sb, v, 20)
	sb.Bin(ir.OpAnd, c, ir.R(tmp), ir.Imm(3))
	sb.Switch(ir.R(c), []int64{0, 1, 2}, []string{"oct.empty", "oct.leaf", "oct.mixed"}, "oct.deep")

	oe := fb.Block("oct.empty")
	padBlock(oe, acc, 18)
	oe.Jmp("step.latch")

	olf := fb.Block("oct.leaf")
	padBlock(olf, acc, 30)
	olf.Bin(ir.OpAdd, acc, ir.R(acc), ir.R(tmp))
	olf.Jmp("step.latch")

	om := fb.Block("oct.mixed")
	padBlock(om, acc, 42)
	om.Bin(ir.OpXor, acc, ir.R(acc), ir.R(tmp))
	om.Jmp("step.latch")

	od := fb.Block("oct.deep")
	padBlock(od, acc, 54)
	od.Jmp("step.latch")

	sl := fb.Block("step.latch")
	sl.Bin(ir.OpAdd, step, ir.R(step), ir.Imm(1))
	sl.Jmp("step.hdr")

	// Shading through a clockable helper, then store the pixel.
	sd := fb.Block("step.done")
	sd.Bin(ir.OpMod, sel, ir.R(v), ir.Imm(int64(numLeaves)))
	cases := make([]int64, numLeaves)
	targets := make([]string, numLeaves)
	for i := range cases {
		cases[i] = int64(i)
		targets[i] = "sh." + leaves[i]
	}
	sd.Switch(ir.R(sel), cases, targets, "sh.none")
	for i, leaf := range leaves {
		db := fb.Block(targets[i])
		db.Call(tmp, leaf, ir.R(v))
		db.Bin(ir.OpAdd, acc, ir.R(acc), ir.R(tmp))
		db.Jmp("px.store")
	}
	fb.Block("sh.none").Jmp("px.store")

	ps := fb.Block("px.store")
	ps.Bin(ir.OpAnd, tmp, ir.R(v), ir.Imm(4095))
	ps.Store("image", ir.R(tmp), ir.R(acc))
	ps.Bin(ir.OpAdd, px, ir.R(px), ir.Imm(1))
	ps.Jmp("px.hdr")

	dn := fb.Block("done")
	dn.Lock(ir.Imm(1))
	dn.Load(tmp, "image", ir.Imm(0))
	dn.Bin(ir.OpAdd, tmp, ir.R(tmp), ir.R(acc))
	dn.Store("image", ir.Imm(0), ir.R(tmp))
	dn.Unlock(ir.Imm(1))
	dn.Barrier(ir.Imm(0))
	dn.Ret(ir.R(acc))

	return &Benchmark{
		Name:             "volrend",
		Module:           mb.M,
		Threads:          threads,
		Entry:            "main",
		PaperLocksPerSec: 443070,
		PaperClockable:   35,
		PaperClockOverheadPct: map[string]float64{
			"none": 8, "O1": 8, "O2": 4, "O3": 8, "O4": 8, "all": 3,
		},
		PaperDetOverheadPct: map[string]float64{
			"none": 8, "O1": 8, "O2": 4, "O3": 8, "O4": 8, "all": 4,
		},
		PaperKendoOverheadPct: 7,
		PaperKendoLocksPerSec: 79612,
	}
}
