package splash

import (
	"fmt"

	"repro/internal/ir"
)

// RaceProbeSym names the global the injected race probe touches; race
// reports on this symbol come from the probe, not the workload.
const RaceProbeSym = "race_probe"

// InjectRaceProbe plants a deterministic data race at the head of entry:
// threads 0 and 1 both store to race_probe[0] with no ordering
// synchronization (a write-write race), while every other thread stores to
// its own private slot. The injection is branch-free — four straight-line
// instructions computed from tid —
//
//	rT = tid
//	rC = ge rT, 2          // 0 for the racing pair, 1 otherwise
//	rI = mul rC, rT        // index 0 for threads 0 and 1, tid otherwise
//	store race_probe[rI], rT
//
// so the workload's CFG, and therefore its instrumentation and schedule,
// are untouched apart from the four extra instructions. Both racing
// accesses execute before the program's first synchronization event, so the
// reported vector clocks are the initial per-thread epochs — independent of
// seed, interleaving, and physical-timing jitter. The robustness property
// tests use exactly this invariance.
//
// The probe is sized for up to 64 threads. The module is modified in place
// (clone first when the pristine workload is still needed).
func InjectRaceProbe(m *ir.Module, entry string) (string, error) {
	fn := m.Func(entry)
	if fn == nil {
		return "", fmt.Errorf("splash: race probe: entry function %q not found", entry)
	}
	eb := fn.Entry()
	if eb == nil {
		return "", fmt.Errorf("splash: race probe: entry function %q has no blocks", entry)
	}
	m.AddGlobal(RaceProbeSym, 64)
	rT := ir.Reg(fn.NumRegs)
	rC := ir.Reg(fn.NumRegs + 1)
	rI := ir.Reg(fn.NumRegs + 2)
	fn.NumRegs += 3
	probe := []ir.Instr{
		{Op: ir.OpTid, Dst: rT},
		{Op: ir.OpGE, Dst: rC, A: ir.R(rT), B: ir.Imm(2)},
		{Op: ir.OpMul, Dst: rI, A: ir.R(rC), B: ir.R(rT)},
		{Op: ir.OpStore, Sym: RaceProbeSym, A: ir.R(rI), B: ir.R(rT)},
	}
	eb.Instrs = append(probe, eb.Instrs...)
	return RaceProbeSym, nil
}
