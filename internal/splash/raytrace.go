package splash

import "repro/internal/ir"

// Raytrace models SPLASH-2 Raytrace: rays claimed from a shared queue in
// batches, each ray intersected against a small object list through a family
// of clockable intersection helpers (Table I reports 33). Lock rate is
// moderate (228k/sec in the paper) and compute blocks are mid-sized, giving
// mid-single-digit clock overhead.
func Raytrace(threads int) *Benchmark {
	const (
		numRays   = 1560
		batch     = 8
		numLeaves = 33
	)
	mb := ir.NewModule("raytrace")
	mb.Global("rayq", 8)
	mb.Global("scene", 2048)
	mb.Global("image", 2048)
	mb.Locks(2)
	mb.Barriers(1)

	leaves := addDiamondChainFamily(mb, "intersect", numLeaves, 1, 12, 110, 24)

	fb := mb.Func("main")
	tid := fb.Reg("tid")
	ray := fb.Reg("ray")
	end := fb.Reg("end")
	obj := fb.Reg("obj")
	nobj := fb.Reg("nobj")
	tmp := fb.Reg("tmp")
	ok := fb.Reg("ok")
	hit := fb.Reg("hit")
	col := fb.Reg("col")
	sel := fb.Reg("sel")
	c := fb.Reg("c")

	eb := fb.Block("entry")
	eb.Tid(tid)
	eb.Const(col, 0)
	eb.Jmp("pop")

	pb := fb.Block("pop")
	buildTaskQueuePop(pb, 0, "rayq", ray, tmp, ok, batch, numRays)
	pb.Br(ir.R(ok), "batch.init", "done")

	bi := fb.Block("batch.init")
	bi.Bin(ir.OpAdd, end, ir.R(ray), ir.Imm(batch))
	bi.Jmp("ray.hdr")

	rh := fb.Block("ray.hdr")
	rh.Bin(ir.OpLT, c, ir.R(ray), ir.R(end))
	rh.Br(ir.R(c), "ray.body", "pop")

	// Per-ray work varies with the ray id (scene-dependent object count,
	// 2..9): the clock tracks the imbalance, so threads arrive at the queue
	// lock with spread-out clocks — the source of Raytrace's deterministic
	// overhead gap in Table I.
	rb := fb.Block("ray.body")
	rb.Bin(ir.OpAnd, tmp, ir.R(ray), ir.Imm(2047))
	rb.Load(hit, "scene", ir.R(tmp))
	rb.Bin(ir.OpMul, nobj, ir.R(ray), ir.Imm(2654435761))
	rb.Bin(ir.OpShr, nobj, ir.R(nobj), ir.Imm(7))
	rb.Bin(ir.OpAnd, nobj, ir.R(nobj), ir.Imm(7))
	rb.Bin(ir.OpAdd, nobj, ir.R(nobj), ir.Imm(2))
	rb.Const(obj, 0)
	rb.Jmp("obj.hdr")

	oh := fb.Block("obj.hdr")
	oh.Bin(ir.OpLT, c, ir.R(obj), ir.R(nobj))
	oh.Br(ir.R(c), "obj.body", "obj.done")

	// Each object test calls one of the intersection kernels, selected by
	// (ray+obj): mid-sized clockable compute between queue locks.
	ob := fb.Block("obj.body")
	ob.Bin(ir.OpAdd, sel, ir.R(ray), ir.R(obj))
	ob.Bin(ir.OpMod, sel, ir.R(sel), ir.Imm(int64(numLeaves)))
	cases := make([]int64, numLeaves)
	targets := make([]string, numLeaves)
	for i := range cases {
		cases[i] = int64(i)
		targets[i] = "isect." + leaves[i]
	}
	ob.Switch(ir.R(sel), cases, targets, "isect.none")
	for i, leaf := range leaves {
		db := fb.Block(targets[i])
		db.Call(tmp, leaf, ir.R(ray))
		db.Bin(ir.OpAdd, hit, ir.R(hit), ir.R(tmp))
		db.Bin(ir.OpAdd, obj, ir.R(obj), ir.Imm(1))
		db.Jmp("obj.hdr")
	}
	nb := fb.Block("isect.none")
	nb.Bin(ir.OpAdd, obj, ir.R(obj), ir.Imm(1))
	nb.Jmp("obj.hdr")

	od := fb.Block("obj.done")
	od.Bin(ir.OpAnd, tmp, ir.R(ray), ir.Imm(2047))
	od.Store("image", ir.R(tmp), ir.R(hit))
	od.Bin(ir.OpAdd, col, ir.R(col), ir.R(hit))
	od.Bin(ir.OpAdd, ray, ir.R(ray), ir.Imm(1))
	od.Jmp("ray.hdr")

	dn := fb.Block("done")
	dn.Lock(ir.Imm(1))
	dn.Load(tmp, "image", ir.Imm(0))
	dn.Bin(ir.OpAdd, tmp, ir.R(tmp), ir.R(col))
	dn.Store("image", ir.Imm(0), ir.R(tmp))
	dn.Unlock(ir.Imm(1))
	dn.Barrier(ir.Imm(0))
	dn.Ret(ir.R(col))

	return &Benchmark{
		Name:             "raytrace",
		Module:           mb.M,
		Threads:          threads,
		Entry:            "main",
		PaperLocksPerSec: 227835,
		PaperClockable:   33,
		PaperClockOverheadPct: map[string]float64{
			"none": 7, "O1": 5, "O2": 7, "O3": 5, "O4": 6, "all": 4,
		},
		PaperDetOverheadPct: map[string]float64{
			"none": 15, "O1": 13, "O2": 14, "O3": 11, "O4": 13, "all": 11,
		},
		PaperKendoOverheadPct: 18,
		PaperKendoLocksPerSec: 216979,
	}
}
