// Package splash provides synthetic IR workloads modeled on the five
// SPLASH-2 benchmarks the paper evaluates (§V): Ocean, Raytrace, Water-nsq,
// Radiosity and Volrend — the subset with only locks and barriers as
// synchronization.
//
// The real SPLASH-2 sources and the paper's data sets are not reproducible
// here (and the paper's own data sets were chosen to match Kendo's lock
// frequencies, which are likewise unavailable), so each generator
// reproduces the structural character the paper's analysis attributes to
// its benchmark:
//
//   - Ocean: large compute blocks over a grid, barriers per sweep, locks so
//     rare they are negligible → clock overhead ~0.
//   - Raytrace: a work queue of rays, each traced through a family of small
//     clockable intersection helpers → moderate lock rate, moderate clock
//     overhead, O1 helps.
//   - Water-nsq: a very tight inner loop whose body is an `if` inside a
//     small loop → worst clock overhead; O2 (conditionals) and O4 (loops)
//     are the optimizations that bite (§V-A).
//   - Radiosity: an extremely lock-intensive task queue feeding compute
//     kernels built from clockable functions → deterministic-execution
//     overhead dominated by clock staleness; O1's ahead-of-time charging is
//     the big win (§V-B).
//   - Volrend: ray casting with conditional traversal and a task-counter
//     lock → modest overheads.
//
// Workloads are scaled down so a full Table I sweep simulates in seconds;
// lock frequencies preserve the paper's ORDER (Ocean ≪ Water-nsq < Raytrace
// < Volrend ≪ Radiosity). EXPERIMENTS.md records per-benchmark paper-vs-
// measured values.
package splash

import (
	"fmt"

	"repro/internal/ir"
)

// Benchmark couples a generated module with its run parameters and the
// paper's reference numbers for reporting.
type Benchmark struct {
	Name    string
	Module  *ir.Module // uninstrumented; clone before instrumenting
	Threads int
	Entry   string

	// Paper reference values (Table I) for EXPERIMENTS.md comparison.
	PaperLocksPerSec      float64
	PaperClockable        int
	PaperClockOverheadPct map[string]float64 // preset row -> clocks-only %
	PaperDetOverheadPct   map[string]float64 // preset row -> clocks+det %
	// PaperKendoOverheadPct is the Kendo row of Table II.
	PaperKendoOverheadPct float64
	PaperKendoLocksPerSec float64
}

// Names lists the benchmarks in the paper's column order.
func Names() []string {
	return []string{"ocean", "raytrace", "water-nsq", "radiosity", "volrend"}
}

// New constructs a benchmark by name with the default scale.
func New(name string, threads int) (*Benchmark, error) {
	switch name {
	case "ocean":
		return Ocean(threads), nil
	case "raytrace":
		return Raytrace(threads), nil
	case "water-nsq":
		return WaterNSQ(threads), nil
	case "radiosity":
		return Radiosity(threads), nil
	case "volrend":
		return Volrend(threads), nil
	}
	return nil, fmt.Errorf("splash: unknown benchmark %q", name)
}

// All constructs the full suite.
func All(threads int) []*Benchmark {
	var out []*Benchmark
	for _, n := range Names() {
		b, err := New(n, threads)
		if err != nil {
			panic(err)
		}
		out = append(out, b)
	}
	return out
}

// --- shared generator helpers ----------------------------------------------

// addClockableLeaves generates n small leaf functions with balanced branch
// arms (they pass the isClockable criteria) and returns their names. Each
// has a diamond CFG whose two arms cost the same, with per-function size
// variety; Optimization 1 clocks all of them.
func addClockableLeaves(mb *ir.ModuleBuilder, prefix string, n, baseWork int) []string {
	var names []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s_%d", prefix, i)
		names = append(names, name)
		fb := mb.Func(name, "x")
		x := fb.Reg("x")
		c := fb.Reg("c")
		y := fb.Reg("y")
		work := baseWork + i%5 // slight size variety across the family
		eb := fb.Block("entry")
		eb.Bin(ir.OpAnd, c, ir.R(x), ir.Imm(1))
		eb.Br(ir.R(c), "then", "else")
		tb := fb.Block("then")
		for k := 0; k < work; k++ {
			tb.Bin(ir.OpAdd, y, ir.R(x), ir.Imm(int64(k+1)))
		}
		tb.Jmp("merge")
		sb := fb.Block("else")
		for k := 0; k < work; k++ {
			sb.Bin(ir.OpSub, y, ir.R(x), ir.Imm(int64(k+2)))
		}
		sb.Jmp("merge")
		fb.Block("merge").Ret(ir.R(y))
	}
	return names
}

// padBlock appends cheap ALU work (cost 1 each) to a block.
func padBlock(bb *ir.BlockBuilder, scratch ir.Reg, n int) {
	for i := 0; i < n; i++ {
		bb.Bin(ir.OpAdd, scratch, ir.R(scratch), ir.Imm(int64(i|1)))
	}
}

// lcg appends an LCG step (r = r*1103515245 + 12345 mod m, non-negative) —
// the deterministic pseudo-random driver used by several workloads.
func lcg(bb *ir.BlockBuilder, r ir.Reg, tmp ir.Reg, m int64) {
	bb.Bin(ir.OpMul, r, ir.R(r), ir.Imm(1103515245))
	bb.Bin(ir.OpAdd, r, ir.R(r), ir.Imm(12345))
	bb.Bin(ir.OpMod, r, ir.R(r), ir.Imm(m))
	// mod can be negative for negative operands; fold into [0, m).
	bb.Bin(ir.OpLT, tmp, ir.R(r), ir.Imm(0))
	bb.Bin(ir.OpMul, tmp, ir.R(tmp), ir.Imm(m))
	bb.Bin(ir.OpAdd, r, ir.R(r), ir.R(tmp))
}
