package splash

import (
	"fmt"

	"repro/internal/ir"
)

// addDiamondChainLeaf generates a leaf function shaped like the paper's
// worked example (the Radiosity `intersection_type` function of Figure 3): a
// chain of `diamonds` if/else diamonds with small arms, preceded by `pad`
// straight-line instructions. Arm costs are balanced within the isClockable
// criteria, so Optimization 1 clocks the function; without O1 every tiny
// block carries its own update — the expensive case the paper measures.
//
// The branch decisions hash the argument so consecutive calls exercise both
// arms deterministically.
//
// loads inserts that many data-dependent memory reads into the entry block.
// Their cache misses cost cycles the logical clock does not account for
// (package interp's miss model), so load-heavy kernels run with a lower
// clock-per-cycle slope than ALU-only ones — the clock-model error that
// makes threads wait for each other under deterministic execution.
func addDiamondChainLeaf(mb *ir.ModuleBuilder, name string, diamonds, armLen, pad, loads int) string {
	if loads > 0 {
		mb.Global("kscratch", 2048)
	}
	fb := mb.Func(name, "x")
	x := fb.Reg("x")
	h := fb.Reg("h")
	y := fb.Reg("y")
	c := fb.Reg("c")

	eb := fb.Block("entry")
	eb.Bin(ir.OpMul, h, ir.R(x), ir.Imm(2654435761))
	eb.Bin(ir.OpAdd, h, ir.R(h), ir.Imm(12345))
	eb.Mov(y, ir.R(x))
	padBlock(eb, y, pad)
	for k := 0; k < loads; k++ {
		eb.Bin(ir.OpAdd, c, ir.R(h), ir.Imm(int64(k*37)))
		eb.Bin(ir.OpAnd, c, ir.R(c), ir.Imm(2047))
		eb.Load(c, "kscratch", ir.R(c))
		eb.Bin(ir.OpAdd, y, ir.R(y), ir.R(c))
	}
	eb.Jmp(dname(0, "cond"))

	for d := 0; d < diamonds; d++ {
		cb := fb.Block(dname(d, "cond"))
		cb.Bin(ir.OpShr, h, ir.R(h), ir.Imm(1))
		cb.Bin(ir.OpAnd, c, ir.R(h), ir.Imm(1))
		cb.Br(ir.R(c), dname(d, "then"), dname(d, "else"))
		next := dname(d+1, "cond")
		if d == diamonds-1 {
			next = "exit"
		}
		tb := fb.Block(dname(d, "then"))
		for k := 0; k < armLen; k++ {
			tb.Bin(ir.OpAdd, y, ir.R(y), ir.Imm(int64(2*k+1)))
		}
		tb.Jmp(next)
		sb := fb.Block(dname(d, "else"))
		for k := 0; k < armLen; k++ {
			sb.Bin(ir.OpXor, y, ir.R(y), ir.Imm(int64(3*k+1)))
		}
		sb.Jmp(next)
	}
	fb.Block("exit").Ret(ir.R(y))
	return name
}

func dname(d int, part string) string {
	return fmt.Sprintf("d%02d.%s", d, part)
}

// addSkipChainLeaf generates a clockable leaf whose *local* regions are
// unbalanced even though *whole-function* paths agree: each diamond's else
// arm skips the next diamond but carries (compensates) its cost. Function
// Clocking (O1) therefore admits the function, while Optimization 3's
// region averaging rejects every local region — matching the paper's
// observation that O3 rarely finds clockable regions in real code even
// inside functions O1 can clock (§V-A: "Optimization 3 had the least
// impact"). The skip edges also break the dominance O3 needs to grow
// regions past a single diamond.
func addSkipChainLeaf(mb *ir.ModuleBuilder, name string, diamonds, armLen, pad, loads int) string {
	if loads > 0 {
		mb.Global("kscratch", 2048)
	}
	fb := mb.Func(name, "x")
	x := fb.Reg("x")
	h := fb.Reg("h")
	y := fb.Reg("y")
	c := fb.Reg("c")

	eb := fb.Block("entry")
	eb.Bin(ir.OpMul, h, ir.R(x), ir.Imm(2654435761))
	eb.Bin(ir.OpAdd, h, ir.R(h), ir.Imm(12345))
	eb.Mov(y, ir.R(x))
	padBlock(eb, y, pad)
	for k := 0; k < loads; k++ {
		eb.Bin(ir.OpAdd, c, ir.R(h), ir.Imm(int64(k*37)))
		eb.Bin(ir.OpAnd, c, ir.R(c), ir.Imm(2047))
		eb.Load(c, "kscratch", ir.R(c))
		eb.Bin(ir.OpAdd, y, ir.R(y), ir.R(c))
	}
	eb.Jmp(dname(0, "cond"))

	target := func(d int) string {
		if d >= diamonds {
			return "exit"
		}
		return dname(d, "cond")
	}
	// A then step consumes one diamond at cost cond(3) + arm(armLen+1); an
	// else step consumes two at elseLen = 2*armLen + 4 so both routes charge
	// the same clock per diamond consumed.
	elseLen := 2*armLen + 4
	for d := 0; d < diamonds; d++ {
		cb := fb.Block(dname(d, "cond"))
		cb.Bin(ir.OpShr, h, ir.R(h), ir.Imm(1))
		cb.Bin(ir.OpAnd, c, ir.R(h), ir.Imm(1))
		cb.Br(ir.R(c), dname(d, "then"), dname(d, "else"))
		tb := fb.Block(dname(d, "then"))
		for k := 0; k < armLen; k++ {
			tb.Bin(ir.OpAdd, y, ir.R(y), ir.Imm(int64(2*k+1)))
		}
		tb.Jmp(target(d + 1))
		sb := fb.Block(dname(d, "else"))
		for k := 0; k < elseLen; k++ {
			sb.Bin(ir.OpXor, y, ir.R(y), ir.Imm(int64(3*k+1)))
		}
		sb.Jmp(target(d + 2))
	}
	fb.Block("exit").Ret(ir.R(y))
	return name
}

// addTwoLevelKernels generates n outer kernels, each calling two dedicated
// inner leaf functions from its diamond arms (3n clockable functions total).
// This is the shape of the paper's radiosity kernels (Figure 3 shows
// `intersection_type` being *called from* conditional blocks):
//
//   - With O1, the inner leaves clock first and the outers follow in the
//     transitive fixpoint of UpdateClockableFuncList — the whole nest is
//     charged at the outer call site, ahead of execution.
//   - Without O1, the arms contain unclocked calls, so Optimization 3's
//     paths stop immediately and Optimization 2 cannot touch the arm blocks:
//     only O1 can lift this overhead, which is why the paper's radiosity
//     column shows O1's det reduction far exceeding the others'.
//
// Even-indexed outers carry `loads` clock-invisible memory reads.
func addTwoLevelKernels(mb *ir.ModuleBuilder, prefix string, n, diamonds, pad, loads int) []string {
	var outers []string
	for i := 0; i < n; i++ {
		// Paired inners with identical shape, so the outer's arms cost the
		// same and its whole-function paths stay balanced.
		innerShape := 3 + i%3
		innerA := addDiamondChainLeaf(mb, fmt.Sprintf("%s_%d_ia", prefix, i), 1, 2, innerShape, 0)
		innerB := addDiamondChainLeaf(mb, fmt.Sprintf("%s_%d_ib", prefix, i), 1, 2, innerShape, 0)

		name := fmt.Sprintf("%s_%d", prefix, i)
		outers = append(outers, name)
		l := 0
		if i%2 == 0 {
			l = loads
		}
		if l > 0 {
			mb.Global("kscratch", 2048)
		}
		fb := mb.Func(name, "x")
		x := fb.Reg("x")
		h := fb.Reg("h")
		y := fb.Reg("y")
		c := fb.Reg("c")
		eb := fb.Block("entry")
		eb.Bin(ir.OpMul, h, ir.R(x), ir.Imm(2654435761))
		eb.Bin(ir.OpAdd, h, ir.R(h), ir.Imm(12345))
		eb.Mov(y, ir.R(x))
		padBlock(eb, y, pad+i%4)
		for k := 0; k < l; k++ {
			eb.Bin(ir.OpAdd, c, ir.R(h), ir.Imm(int64(k*37)))
			eb.Bin(ir.OpAnd, c, ir.R(c), ir.Imm(2047))
			eb.Load(c, "kscratch", ir.R(c))
			eb.Bin(ir.OpAdd, y, ir.R(y), ir.R(c))
		}
		eb.Jmp(dname(0, "cond"))
		d := diamonds + i%3
		for k := 0; k < d; k++ {
			next := dname(k+1, "cond")
			if k == d-1 {
				next = "exit"
			}
			cb := fb.Block(dname(k, "cond"))
			cb.Bin(ir.OpShr, h, ir.R(h), ir.Imm(1))
			cb.Bin(ir.OpAnd, c, ir.R(h), ir.Imm(1))
			cb.Br(ir.R(c), dname(k, "then"), dname(k, "else"))
			tb := fb.Block(dname(k, "then"))
			tb.Call(c, innerA, ir.R(y))
			tb.Bin(ir.OpAdd, y, ir.R(y), ir.R(c))
			tb.Jmp(next)
			sb := fb.Block(dname(k, "else"))
			sb.Call(c, innerB, ir.R(y))
			sb.Bin(ir.OpXor, y, ir.R(y), ir.R(c))
			sb.Jmp(next)
		}
		fb.Block("exit").Ret(ir.R(y))
	}
	return outers
}

// addDiamondChainFamily generates n diamond-chain leaves with slight size
// variety and returns their names.
// Even-indexed members are load-heavy (loads > 0 when the loads argument is
// positive), odd ones pure ALU, mixing clock-per-cycle slopes across tasks.
func addDiamondChainFamily(mb *ir.ModuleBuilder, prefix string, n, diamonds, armLen, pad, loads int) []string {
	var names []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s_%d", prefix, i)
		l := 0
		if i%2 == 0 {
			l = loads
		}
		addDiamondChainLeaf(mb, name, diamonds+i%3, armLen, pad+i%5, l)
		names = append(names, name)
	}
	return names
}

// buildTaskQueuePop appends the standard "pop a task index" sequence on
// queue lock `lock` reading/advancing global `counter`; leaves the claimed
// index in dst and 0/1 in okReg. The caller provides the block; this emits:
//
//	lock; idx = load counter[0]; counter[0] = idx+grab; unlock
//	ok = idx < total
func buildTaskQueuePop(bb *ir.BlockBuilder, lockID int64, counter string, dst, tmp, ok ir.Reg, grab, total int64) {
	bb.Lock(ir.Imm(lockID))
	bb.Load(dst, counter, ir.Imm(0))
	bb.Bin(ir.OpAdd, tmp, ir.R(dst), ir.Imm(grab))
	bb.Store(counter, ir.Imm(0), ir.R(tmp))
	bb.Unlock(ir.Imm(lockID))
	bb.Bin(ir.OpLT, ok, ir.R(dst), ir.Imm(total))
}

// AddDiamondChainLeafForTest exposes the kernel generator to test packages.
func AddDiamondChainLeafForTest(mb *ir.ModuleBuilder, name string, diamonds, armLen, pad int) string {
	return addDiamondChainLeaf(mb, name, diamonds, armLen, pad, 0)
}
