package splash_test

import (
	"errors"
	"testing"

	detlock "repro"
	"repro/internal/splash"
)

// probeReport runs one probe-injected workload under the deterministic
// simulator with the race detector in report mode and returns the rendered
// report of the probe's race (rendering includes threads, clocks, vector
// clocks, locksets and sites, so string equality is full structural
// equality).
func probeReport(t *testing.T, b *splash.Benchmark, seed int64) string {
	t.Helper()
	m := b.Module.Clone()
	sym, err := splash.InjectRaceProbe(m, b.Entry)
	if err != nil {
		t.Fatalf("InjectRaceProbe: %v", err)
	}
	opt := detlock.AllOptimizations()
	res, err := detlock.Simulate(m, detlock.SimConfig{
		Threads:       b.Threads,
		Entry:         b.Entry,
		Opt:           &opt,
		Deterministic: true,
		Race:          &detlock.RaceConfig{Policy: detlock.RaceReport},
		PerturbSeed:   seed,
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	var probe []*detlock.RaceError
	for _, re := range res.Races {
		if re.Sym == sym {
			probe = append(probe, re)
		}
	}
	if len(probe) != 1 {
		t.Fatalf("seed %d: %d probe races, want exactly 1 (one report per address)", seed, len(probe))
	}
	re := probe[0]
	if re.Index != 0 || re.First.Thread != 0 || re.Second.Thread != 1 {
		t.Fatalf("seed %d: probe race %s[%d] between threads %d and %d, want slot 0 threads 0/1",
			seed, re.Sym, re.Index, re.First.Thread, re.Second.Thread)
	}
	if !errors.Is(re, detlock.ErrRace) {
		t.Fatalf("seed %d: report does not classify as ErrRace", seed)
	}
	return detlock.FormatFailure(re)
}

// TestRaceProbeDeterministicAcrossPerturbation is the acceptance property:
// an injected race in each SPLASH-like workload yields a byte-identical
// typed race report — same access pair, same logical clocks, same sites —
// across an unperturbed run and >= 20 physical-timing fault-injection seeds.
func TestRaceProbeDeterministicAcrossPerturbation(t *testing.T) {
	for _, name := range splash.Names() {
		t.Run(name, func(t *testing.T) {
			b, err := splash.New(name, 4)
			if err != nil {
				t.Fatalf("splash.New: %v", err)
			}
			ref := probeReport(t, b, 0)
			for seed := int64(1); seed <= 20; seed++ {
				if got := probeReport(t, b, seed); got != ref {
					t.Fatalf("seed %d: report differs:\n%s\nvs reference\n%s", seed, got, ref)
				}
			}
		})
	}
}

// TestWorkloadsRaceFreeWithoutProbe: the pristine workloads pass the
// fail-fast detector — the probe, not the workload, is the only race the
// property test sees.
func TestWorkloadsRaceFreeWithoutProbe(t *testing.T) {
	for _, name := range splash.Names() {
		t.Run(name, func(t *testing.T) {
			b, err := splash.New(name, 4)
			if err != nil {
				t.Fatalf("splash.New: %v", err)
			}
			opt := detlock.AllOptimizations()
			res, err := detlock.Simulate(b.Module, detlock.SimConfig{
				Threads:       b.Threads,
				Entry:         b.Entry,
				Opt:           &opt,
				Deterministic: true,
				Race:          &detlock.RaceConfig{Policy: detlock.RaceFailFast},
			})
			if err != nil {
				t.Fatalf("workload is racy: %v", err)
			}
			if len(res.Races) != 0 {
				t.Fatalf("workload collected %d races", len(res.Races))
			}
		})
	}
}

// TestInjectRaceProbeErrors: bad entry names are errors, not panics.
func TestInjectRaceProbeErrors(t *testing.T) {
	b, err := splash.New(splash.Names()[0], 2)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	m := b.Module.Clone()
	if _, err := splash.InjectRaceProbe(m, "no-such-entry"); err == nil {
		t.Fatal("missing entry accepted")
	}
}
