package det

import (
	"repro/internal/diag"
	"repro/internal/trace"
)

// Schedule divergence detection: the goroutine runtime's race guard.
//
// The runtime cannot instrument memory accesses the way the simulator does
// (user code is plain Go), so a data race has exactly one observable
// symptom here: a run whose lock-acquisition order differs from a reference
// run of the same program. RecordSchedule captures the reference; a later
// run armed with SetReplayGuard compares every acquisition — lock id,
// thread id, post-acquisition clock — against it and terminates with a
// typed *diag.DivergenceError at the first mismatch, delivered through the
// same fault channel as deadlock reports (so "det never hangs, every
// failure is typed" extends to contract violations the scheduler can't
// prevent). Because acquisitions are turn-gated, the first mismatch — and
// therefore the report — is deterministic.

// RecordSchedule installs s to receive every lock acquisition (lock id,
// thread id, post-acquisition clock) in global order. Pass nil to stop
// recording. Must be called while the runtime is idle: enabling or
// disabling a detector mid-run returns a typed *diag.MisuseError
// (diag.ErrDetectorMidRun) — acquisitions already taken would be missing
// from the schedule, making it silently unusable as a replay reference.
func (rt *Runtime) RecordSchedule(s *trace.Schedule) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.running {
		return configMisuse("Runtime.RecordSchedule", "schedule recording toggled while threads are running")
	}
	rt.recordTo = s
	return nil
}

// SetReplayGuard arms the divergence guard: every subsequent acquisition is
// checked against expected, and the first mismatch terminates the run with
// a *diag.DivergenceError (classify with errors.Is(err, diag.ErrDivergence)).
// A run that finishes with acquisitions still outstanding in expected fails
// the same way. Pass nil to disarm. Like RecordSchedule, arming mid-run is
// a typed misuse error.
func (rt *Runtime) SetReplayGuard(expected *trace.Schedule) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.running {
		return configMisuse("Runtime.SetReplayGuard", "replay guard toggled while threads are running")
	}
	if expected == nil {
		rt.replay = nil
		rt.replayIdx = 0
		rt.replayArmed = false
		return nil
	}
	rt.replay = expected.Events()
	rt.replayIdx = 0
	rt.replayArmed = true
	return nil
}

// configMisuse builds the configuration-level (no offending thread) misuse
// error for detector toggles.
func configMisuse(op, detail string) *diag.MisuseError {
	return &diag.MisuseError{
		Op:       op,
		ThreadID: -1,
		Kind:     diag.ErrDetectorMidRun,
		Detail:   detail,
	}
}

// onAcquisitionLocked observes one lock acquisition from Mutex.take — the
// single point every grant passes through (Lock, TryLock, Unlock handoff,
// Cond re-acquire). Caller holds rt.mu.
func (rt *Runtime) onAcquisitionLocked(lock, thread int, clock int64) {
	if rt.recordTo != nil {
		rt.recordTo.Record(lock, thread, clock)
	}
	if !rt.replayArmed || rt.fault != nil {
		return
	}
	i := rt.replayIdx
	got := &diag.DivergenceEvent{Seq: int64(i), Lock: lock, Thread: thread, Clock: clock}
	if i >= len(rt.replay) {
		// The live run acquired more locks than the reference recorded.
		rt.deliverFaultLocked(&diag.DivergenceError{
			Run: 1, Index: i, Got: got,
			WantLen: len(rt.replay), GotLen: i + 1,
		})
		return
	}
	want := rt.replay[i]
	if want.Lock != lock || want.Thread != thread || want.Clock != clock {
		rt.deliverFaultLocked(&diag.DivergenceError{
			Run: 1, Index: i,
			Want: &diag.DivergenceEvent{Seq: want.Seq, Lock: want.Lock, Thread: want.Thread, Clock: want.Clock},
			Got:  got,
			WantLen: len(rt.replay), GotLen: i + 1,
		})
		return
	}
	rt.replayIdx++
}

// checkReplayCompleteLocked fires the underrun divergence after a run that
// ended with reference acquisitions outstanding — unless the run already
// failed (a fault or contained panic legitimately truncates the schedule).
// Caller holds rt.mu.
func (rt *Runtime) checkReplayCompleteLocked() {
	if !rt.replayArmed || rt.fault != nil || len(rt.panics) > 0 {
		return
	}
	if rt.replayIdx >= len(rt.replay) {
		return
	}
	want := rt.replay[rt.replayIdx]
	rt.deliverFaultLocked(&diag.DivergenceError{
		Run:   1,
		Index: rt.replayIdx,
		Want:  &diag.DivergenceEvent{Seq: want.Seq, Lock: want.Lock, Thread: want.Thread, Clock: want.Clock},
		// Got stays nil: the run produced only replayIdx events.
		WantLen: len(rt.replay), GotLen: rt.replayIdx,
	})
}

// ReplayPosition reports how many acquisitions the armed guard has matched,
// for diagnostics and tests.
func (rt *Runtime) ReplayPosition() (matched, expected int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.replayIdx, len(rt.replay)
}
