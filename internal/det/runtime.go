// Package det is the deterministic execution runtime: Kendo's weak
// determinism (deterministic lock acquisition order for race-free programs)
// for real goroutines, driven by the logical clocks that the DetLock pass —
// or explicit Tick calls — provide.
//
// The paper states the rule (§II): "a thread may complete a synchronization
// operation only when its clock becomes less than those of the other
// threads, with ties broken with thread IDs; the clock is paused when
// waiting for a lock and resumed after the lock is acquired."
//
// This package makes that rule airtight under Go's non-deterministic
// scheduler by treating every synchronization operation as a turn-gated
// event:
//
//   - A thread's published logical clock advances only through Tick (the
//     instrumentation) and through synchronization events.
//   - An event may execute only when the thread's (clock, id) pair is the
//     minimum among all non-excluded threads. Threads blocked inside a
//     synchronization operation (lock waiters, barrier arrivals, joiners)
//     are excluded, with their clocks frozen, so the system cannot deadlock
//     on a waiter's frozen clock.
//   - Contended locks grant FIFO in waiter-arrival order; since arrivals are
//     themselves turn-gated, that order — and therefore the acquisition
//     order — is a deterministic function of the program's logical clocks,
//     regardless of physical scheduling.
//   - A woken waiter's clock was paused while it waited and resumes at its
//     frozen value plus the acquisition tick (Kendo's pause/resume rule), a
//     value independent of how long it physically waited.
//
// Physical timing affects only wall-clock duration, never the synchronization
// order or the clock values — which is exactly weak determinism.
//
// # Robustness
//
// Weak determinism is defined for race-free, well-behaved programs — but the
// runtime must also fail well on programs that are not. Three mechanisms
// guarantee the invariant "det never hangs: every stuck state terminates
// with a structured report" (see internal/diag):
//
//   - Deadlock detection: every blocking site registers what the thread is
//     blocked on; the moment every live thread is blocked the runtime
//     assembles a diag.DeadlockError (wait-for cycle + per-thread snapshot)
//     and delivers it to all threads. Because blocking events are turn-gated,
//     the blocked state — and therefore the report — is identical on every
//     run.
//   - Progress watchdog (optional, zero overhead when disabled): detects
//     livelocks the wait-for graph cannot see (a spinning thread that never
//     advances its clock) and produces the same snapshot report.
//   - Panic containment: Run and Spawn recover user panics, tear the failed
//     thread out of the turn predicate (finish/exclusion), and surface a
//     diag.ThreadPanicError; survivors either finish or hit the deadlock
//     detector. API misuse panics with typed diag.MisuseError values.
package det

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/trace"
)

// Runtime coordinates a set of deterministic threads.
type Runtime struct {
	mu      sync.Mutex
	threads []*Thread
	nLive   int

	// acquisitions counts lock acquisition events; used by traces and stats.
	acquisitions atomic.Int64

	// fault is the first global failure (deadlock or watchdog stall);
	// faultCh is closed when it is set. Guarded by mu.
	fault   error
	faultCh chan struct{}
	// panics collects contained user panics, guarded by mu.
	panics []*diag.ThreadPanicError

	// nextMutex/nextBarrier/nextCond assign deterministic diagnostic ids to
	// synchronization objects. Guarded by mu.
	nextMutex   int
	nextBarrier int
	nextCond    int

	// watchdog, when non-nil, enables the progress monitor for Run.
	watchdog *WatchdogConfig
	// injector, when non-nil, perturbs lock boundaries (test-only).
	injector *FaultInjector

	// running marks an active Run; detector configuration (RecordSchedule,
	// SetReplayGuard) is rejected mid-run with a typed misuse error.
	// Guarded by mu.
	running bool
	// recordTo, when non-nil, receives every lock acquisition. Guarded by mu.
	recordTo *trace.Schedule
	// replay/replayIdx/replayArmed implement the schedule-divergence guard
	// (see divergence.go). Guarded by mu.
	replay      []trace.Event
	replayIdx   int
	replayArmed bool
}

// blockKind says what a blocked thread is waiting on.
type blockKind uint8

const (
	blockNone blockKind = iota
	blockMutex
	blockBarrier
	blockCond
	blockJoin
)

// Thread is one deterministic thread of execution. All methods must be called
// only from the goroutine running the thread.
type Thread struct {
	rt *Runtime
	id int

	clock atomic.Int64
	// excluded marks the thread invisible to the turn predicate: it is
	// blocked inside a synchronization operation, or finished.
	excluded atomic.Bool
	// wake delivers grant notifications to a blocked thread.
	wake chan struct{}

	done bool
	// finalClock is the clock at completion, read by joiners.
	finalClock int64

	// Block bookkeeping for the wait-for graph; guarded by rt.mu. Exactly one
	// of the object pointers is non-nil while blocked.
	blocked    blockKind
	blockedMu  *Mutex
	blockedBar *Barrier
	blockedCv  *Cond
	blockedOn  *Thread // join target

	// panicked/panicErr record a contained panic; guarded by rt.mu.
	panicked bool
	panicErr *diag.ThreadPanicError

	// lastAcqRes/lastAcqClock describe the most recent lock acquisition, for
	// failure snapshots. Guarded by rt.mu.
	lastAcqRes   string
	lastAcqClock int64

	// boundaries counts lock-boundary crossings, for fault injection.
	boundaries int64
}

// New creates a runtime with n threads, ids 0..n-1, all clocks zero.
func New(n int) *Runtime {
	if n <= 0 {
		panic("det: runtime needs at least one thread")
	}
	rt := &Runtime{faultCh: make(chan struct{})}
	for i := 0; i < n; i++ {
		rt.threads = append(rt.threads, newThread(rt, i))
	}
	rt.nLive = n
	return rt
}

func newThread(rt *Runtime, id int) *Thread {
	return &Thread{rt: rt, id: id, wake: make(chan struct{}, 1)}
}

// NumThreads returns the number of threads ever registered.
func (rt *Runtime) NumThreads() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.threads)
}

// Acquisitions returns the total number of deterministic lock acquisitions.
func (rt *Runtime) Acquisitions() int64 { return rt.acquisitions.Load() }

// Run executes body concurrently on every thread (SPMD style) and returns
// when all threads have finished. It is the normal entry point:
//
//	rt := det.New(4)
//	err := rt.Run(func(t *det.Thread) { ... t.Tick(...) ... mu.Lock(t) ... })
//
// Run returns nil on a clean run. A user panic on any thread is recovered,
// the thread is deterministically excluded, and Run returns a
// *diag.ThreadPanicError (survivors keep running to completion — or to the
// deadlock detector, if the failed thread held locks they need). If every
// live thread becomes blocked, Run returns a *diag.DeadlockError naming the
// wait-for cycle; if the watchdog (EnableWatchdog) detects a stall, Run
// returns a *diag.WatchdogError. Multiple failures are joined with
// errors.Join, deadlock/stall first, then panics by thread id.
//
// In the pathological case of a stall inside user code that never calls back
// into the runtime, Run abandons the stuck goroutines after the watchdog's
// grace period — the caller gets the report; Go cannot kill the goroutines.
func (rt *Runtime) Run(body func(t *Thread)) error {
	var wg sync.WaitGroup
	rt.mu.Lock()
	rt.running = true
	threads := append([]*Thread(nil), rt.threads...)
	rt.mu.Unlock()
	stopWatchdog, grace := rt.startWatchdog()
	for _, t := range threads {
		wg.Add(1)
		go func(t *Thread) {
			defer wg.Done()
			defer t.finish()
			defer t.containPanic()
			body(t)
		}(t)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-rt.faultCh:
		// Threads blocked or spinning inside the runtime observe the fault
		// and unwind; wait for them, but give up on threads stuck in user
		// code that never re-enters the runtime.
		select {
		case <-done:
		case <-time.After(grace):
		}
	}
	stopWatchdog()
	rt.mu.Lock()
	rt.running = false
	rt.checkReplayCompleteLocked()
	rt.mu.Unlock()
	return rt.Err()
}

// Err returns the runtime's failure state: the global fault (deadlock or
// stall) joined with any contained panics, ordered by thread id; nil when
// the runtime is healthy.
func (rt *Runtime) Err() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	errs := make([]error, 0, 1+len(rt.panics))
	if rt.fault != nil {
		errs = append(errs, rt.fault)
	}
	panics := append([]*diag.ThreadPanicError(nil), rt.panics...)
	sort.Slice(panics, func(i, j int) bool { return panics[i].ThreadID < panics[j].ThreadID })
	for _, p := range panics {
		errs = append(errs, p)
	}
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	default:
		return errors.Join(errs...)
	}
}

// Panics returns the contained user panics, ordered by thread id.
func (rt *Runtime) Panics() []*diag.ThreadPanicError {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := append([]*diag.ThreadPanicError(nil), rt.panics...)
	sort.Slice(out, func(i, j int) bool { return out[i].ThreadID < out[j].ThreadID })
	return out
}

// containPanic recovers a panic on t's goroutine and records it. Fault
// propagation panics (the deadlock/watchdog report delivered to blocked
// threads) are unwinding, not new failures, and are not re-recorded.
func (t *Thread) containPanic() {
	r := recover()
	if r == nil {
		return
	}
	stack := debug.Stack()
	rt := t.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if err, ok := r.(error); ok && rt.fault != nil && errors.Is(err, rt.fault) {
		return
	}
	pe := &diag.ThreadPanicError{
		ThreadID: t.id,
		Clock:    t.clock.Load(),
		Value:    r,
		Stack:    string(stack),
	}
	t.panicked = true
	t.panicErr = pe
	rt.panics = append(rt.panics, pe)
}

// misuse builds a typed API-contract-violation error for t.
func misuse(op string, t *Thread, kind error, detail string) *diag.MisuseError {
	return &diag.MisuseError{
		Op:       op,
		ThreadID: t.id,
		Clock:    t.clock.Load(),
		Kind:     kind,
		Detail:   detail,
	}
}

// ID returns the deterministic thread id.
func (t *Thread) ID() int { return t.id }

// Clock returns the thread's current logical clock.
func (t *Thread) Clock() int64 { return t.clock.Load() }

// Tick advances the logical clock by n units. The DetLock pass's clockadd
// instructions map to Tick; hand-written programs call it to account for the
// work between synchronization operations ("one instruction equals one
// logical clock count", §III-A). n must be non-negative.
func (t *Thread) Tick(n int64) {
	if n < 0 {
		panic(misuse("Thread.Tick", t, diag.ErrNegativeTick, fmt.Sprintf("Tick(%d)", n)))
	}
	t.clock.Add(n)
}

// finish marks the thread completed: excluded from turn computation forever.
// Joiners and turn spinners poll state, so no wakeup channel is involved —
// the wake channel carries only lock/condvar grants, exactly one token per
// grant, which keeps grant delivery free of spurious wakeups. If the
// survivors are now all blocked (this thread was their only way forward —
// e.g. it died holding a mutex), the deadlock detector fires here.
func (t *Thread) finish() {
	rt := t.rt
	rt.mu.Lock()
	t.done = true
	t.finalClock = t.clock.Load()
	t.excluded.Store(true)
	rt.nLive--
	rt.checkDeadlockLocked()
	rt.mu.Unlock()
}

// hasTurn reports whether t's (clock, id) is minimal among non-excluded
// threads. Caller must hold rt.mu.
func (rt *Runtime) hasTurn(t *Thread) bool {
	c := t.clock.Load()
	for _, o := range rt.threads {
		if o == t || o.excluded.Load() {
			continue
		}
		oc := o.clock.Load()
		if oc < c || (oc == c && o.id < t.id) {
			return false
		}
	}
	return true
}

// event runs fn while t holds the global turn, under rt.mu. fn returns true
// when the event completed; returning false re-queues the turn wait (used by
// operations that discover they must block). The spin uses Gosched rather
// than condition variables: ticks are lock-free atomic adds, so there is no
// cheap place to broadcast from — this mirrors Kendo's spinning waiters.
// A delivered fault (deadlock elsewhere, watchdog stall) unwinds the spinner
// by panicking with the report; Run's containment catches it.
func (rt *Runtime) event(t *Thread, fn func() bool) {
	for {
		rt.mu.Lock()
		if rt.fault != nil {
			err := rt.fault
			rt.mu.Unlock()
			panic(err)
		}
		if rt.hasTurn(t) {
			done := func() bool {
				// Release rt.mu even if fn panics (e.g. unlock of an unheld
				// mutex), so the runtime stays usable for other threads.
				defer rt.mu.Unlock()
				return fn()
			}()
			if done {
				return
			}
			continue
		}
		rt.mu.Unlock()
		runtime.Gosched()
	}
}

// Spawn creates a new deterministic thread running fn, with the next
// sequential id and clock = parent clock + 1. The spawn itself is a
// turn-gated event, so ids are assigned deterministically. It returns a
// handle for Join. Panics in fn are contained exactly as in Run and
// retrievable from the child's Join result.
func (t *Thread) Spawn(fn func(*Thread)) *Thread {
	rt := t.rt
	var child *Thread
	rt.event(t, func() bool {
		child = newThread(rt, len(rt.threads))
		child.clock.Store(t.clock.Load() + 1)
		rt.threads = append(rt.threads, child)
		rt.nLive++
		t.clock.Add(1)
		return true
	})
	go func() {
		defer child.finish()
		defer child.containPanic()
		fn(child)
	}()
	return child
}

// Join blocks until child finishes, then advances the joiner's clock to
// max(own, child's final clock) + 1. The joiner is excluded while waiting so
// the child's synchronization is not starved by the joiner's frozen clock;
// joining performs no synchronization decision itself, and the resume clock
// depends only on deterministic values, so no turn is needed.
//
// Joining a nil handle, a thread of another runtime, or the thread itself
// panics with a typed *diag.MisuseError (contained by Run). If the child
// panicked, Join returns its *diag.ThreadPanicError; otherwise nil.
func (t *Thread) Join(child *Thread) error {
	rt := t.rt
	if child == nil || child.rt != rt {
		panic(misuse("Thread.Join", t, diag.ErrBadJoin, "target is nil or belongs to another runtime"))
	}
	if child == t {
		panic(misuse("Thread.Join", t, diag.ErrSelfJoin, ""))
	}
	rt.mu.Lock()
	t.blocked = blockJoin
	t.blockedOn = child
	t.excluded.Store(true)
	rt.checkDeadlockLocked()
	rt.mu.Unlock()
	for {
		rt.mu.Lock()
		if rt.fault != nil {
			err := rt.fault
			t.unblockLocked()
			rt.mu.Unlock()
			panic(err)
		}
		if child.done {
			t.clock.Store(maxInt64(t.clock.Load(), child.finalClock) + 1)
			t.unblockLocked()
			perr := child.panicErr
			rt.mu.Unlock()
			if perr != nil {
				return perr
			}
			return nil
		}
		rt.mu.Unlock()
		runtime.Gosched()
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// String identifies the thread for diagnostics.
func (t *Thread) String() string {
	return fmt.Sprintf("det.Thread(id=%d clock=%d)", t.id, t.Clock())
}
