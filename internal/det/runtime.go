// Package det is the deterministic execution runtime: Kendo's weak
// determinism (deterministic lock acquisition order for race-free programs)
// for real goroutines, driven by the logical clocks that the DetLock pass —
// or explicit Tick calls — provide.
//
// The paper states the rule (§II): "a thread may complete a synchronization
// operation only when its clock becomes less than those of the other
// threads, with ties broken with thread IDs; the clock is paused when
// waiting for a lock and resumed after the lock is acquired."
//
// This package makes that rule airtight under Go's non-deterministic
// scheduler by treating every synchronization operation as a turn-gated
// event:
//
//   - A thread's published logical clock advances only through Tick (the
//     instrumentation) and through synchronization events.
//   - An event may execute only when the thread's (clock, id) pair is the
//     minimum among all non-excluded threads. Threads blocked inside a
//     synchronization operation (lock waiters, barrier arrivals, joiners)
//     are excluded, with their clocks frozen, so the system cannot deadlock
//     on a waiter's frozen clock.
//   - Contended locks grant FIFO in waiter-arrival order; since arrivals are
//     themselves turn-gated, that order — and therefore the acquisition
//     order — is a deterministic function of the program's logical clocks,
//     regardless of physical scheduling.
//   - A woken waiter's clock was paused while it waited and resumes at its
//     frozen value plus the acquisition tick (Kendo's pause/resume rule), a
//     value independent of how long it physically waited.
//
// Physical timing affects only wall-clock duration, never the synchronization
// order or the clock values — which is exactly weak determinism.
package det

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Runtime coordinates a set of deterministic threads.
type Runtime struct {
	mu      sync.Mutex
	threads []*Thread
	nLive   int

	// acquisitions counts lock acquisition events; used by traces and stats.
	acquisitions atomic.Int64
}

// Thread is one deterministic thread of execution. All methods must be called
// only from the goroutine running the thread.
type Thread struct {
	rt *Runtime
	id int

	clock atomic.Int64
	// excluded marks the thread invisible to the turn predicate: it is
	// blocked inside a synchronization operation, or finished.
	excluded atomic.Bool
	// wake delivers grant notifications to a blocked thread.
	wake chan struct{}

	done bool
	// finalClock is the clock at completion, read by joiners.
	finalClock int64
}

// New creates a runtime with n threads, ids 0..n-1, all clocks zero.
func New(n int) *Runtime {
	if n <= 0 {
		panic("det: runtime needs at least one thread")
	}
	rt := &Runtime{}
	for i := 0; i < n; i++ {
		rt.threads = append(rt.threads, newThread(rt, i))
	}
	rt.nLive = n
	return rt
}

func newThread(rt *Runtime, id int) *Thread {
	return &Thread{rt: rt, id: id, wake: make(chan struct{}, 1)}
}

// NumThreads returns the number of threads ever registered.
func (rt *Runtime) NumThreads() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.threads)
}

// Acquisitions returns the total number of deterministic lock acquisitions.
func (rt *Runtime) Acquisitions() int64 { return rt.acquisitions.Load() }

// Run executes body concurrently on every thread (SPMD style) and returns
// when all threads have finished. It is the normal entry point:
//
//	rt := det.New(4)
//	rt.Run(func(t *det.Thread) { ... t.Tick(...) ... mu.Lock(t) ... })
func (rt *Runtime) Run(body func(t *Thread)) {
	var wg sync.WaitGroup
	rt.mu.Lock()
	threads := append([]*Thread(nil), rt.threads...)
	rt.mu.Unlock()
	for _, t := range threads {
		wg.Add(1)
		go func(t *Thread) {
			defer wg.Done()
			defer t.finish()
			body(t)
		}(t)
	}
	wg.Wait()
}

// ID returns the deterministic thread id.
func (t *Thread) ID() int { return t.id }

// Clock returns the thread's current logical clock.
func (t *Thread) Clock() int64 { return t.clock.Load() }

// Tick advances the logical clock by n units. The DetLock pass's clockadd
// instructions map to Tick; hand-written programs call it to account for the
// work between synchronization operations ("one instruction equals one
// logical clock count", §III-A). n must be non-negative.
func (t *Thread) Tick(n int64) {
	if n < 0 {
		panic("det: negative Tick")
	}
	t.clock.Add(n)
}

// finish marks the thread completed: excluded from turn computation forever.
// Joiners and turn spinners poll state, so no wakeup channel is involved —
// the wake channel carries only lock/condvar grants, exactly one token per
// grant, which keeps grant delivery free of spurious wakeups.
func (t *Thread) finish() {
	rt := t.rt
	rt.mu.Lock()
	t.done = true
	t.finalClock = t.clock.Load()
	t.excluded.Store(true)
	rt.nLive--
	rt.mu.Unlock()
}

// hasTurn reports whether t's (clock, id) is minimal among non-excluded
// threads. Caller must hold rt.mu.
func (rt *Runtime) hasTurn(t *Thread) bool {
	c := t.clock.Load()
	for _, o := range rt.threads {
		if o == t || o.excluded.Load() {
			continue
		}
		oc := o.clock.Load()
		if oc < c || (oc == c && o.id < t.id) {
			return false
		}
	}
	return true
}

// event runs fn while t holds the global turn, under rt.mu. fn returns true
// when the event completed; returning false re-queues the turn wait (used by
// operations that discover they must block). The spin uses Gosched rather
// than condition variables: ticks are lock-free atomic adds, so there is no
// cheap place to broadcast from — this mirrors Kendo's spinning waiters.
func (rt *Runtime) event(t *Thread, fn func() bool) {
	for {
		rt.mu.Lock()
		if rt.hasTurn(t) {
			done := func() bool {
				// Release rt.mu even if fn panics (e.g. unlock of an unheld
				// mutex), so the runtime stays usable for other threads.
				defer rt.mu.Unlock()
				return fn()
			}()
			if done {
				return
			}
			continue
		}
		rt.mu.Unlock()
		runtime.Gosched()
	}
}

// Spawn creates a new deterministic thread running fn, with the next
// sequential id and clock = parent clock + 1. The spawn itself is a
// turn-gated event, so ids are assigned deterministically. It returns a
// handle for Join.
func (t *Thread) Spawn(fn func(*Thread)) *Thread {
	rt := t.rt
	var child *Thread
	rt.event(t, func() bool {
		child = newThread(rt, len(rt.threads))
		child.clock.Store(t.clock.Load() + 1)
		rt.threads = append(rt.threads, child)
		rt.nLive++
		t.clock.Add(1)
		return true
	})
	go func() {
		defer child.finish()
		fn(child)
	}()
	return child
}

// Join blocks until child finishes, then advances the joiner's clock to
// max(own, child's final clock) + 1. The joiner is excluded while waiting so
// the child's synchronization is not starved by the joiner's frozen clock;
// joining performs no synchronization decision itself, and the resume clock
// depends only on deterministic values, so no turn is needed.
func (t *Thread) Join(child *Thread) {
	rt := t.rt
	t.excluded.Store(true)
	for {
		rt.mu.Lock()
		if child.done {
			t.clock.Store(maxInt64(t.clock.Load(), child.finalClock) + 1)
			t.excluded.Store(false)
			rt.mu.Unlock()
			return
		}
		rt.mu.Unlock()
		runtime.Gosched()
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// String identifies the thread for diagnostics.
func (t *Thread) String() string {
	return fmt.Sprintf("det.Thread(id=%d clock=%d)", t.id, t.Clock())
}
