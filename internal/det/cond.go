package det

// Cond is a deterministic condition variable bound to a Mutex. The paper
// lists condition variables as unimplemented in its evaluation ("we have not
// yet implemented other synchronization operations, such as condition
// variables", §V); this is the natural extension under the same turn-gated
// event model: waits and signals are totally ordered by (clock, id), and a
// signalled waiter re-enters the mutex queue deterministically.
type Cond struct {
	rt *Runtime
	m  *Mutex

	waiters []*Thread
	signals int64
}

// NewCond creates a condition variable bound to m.
func (rt *Runtime) NewCond(m *Mutex) *Cond {
	if m.rt != rt {
		panic("det: cond bound to a mutex from another runtime")
	}
	return &Cond{rt: rt, m: m}
}

// Wait atomically releases the mutex and blocks until signalled; it
// reacquires the mutex (via the deterministic grant queue) before returning.
// The caller must hold the mutex.
func (c *Cond) Wait(t *Thread) {
	c.rt.event(t, func() bool {
		if !c.m.held || c.m.holder != t {
			panic("det: Cond.Wait without holding the mutex")
		}
		t.clock.Add(1)
		c.waiters = append(c.waiters, t)
		t.excluded.Store(true)
		c.m.releaseLocked(t)
		return true
	})
	// Woken only by a mutex grant: Signal moves us to the mutex queue and an
	// Unlock (or releaseLocked) eventually grants us the lock.
	<-t.wake
}

// Signal wakes the first waiter (deterministic arrival order) by moving it
// to the mutex's grant queue; it acquires the mutex when the current holder
// releases. The caller must hold the mutex (matching pthread semantics where
// signalling under the lock gives deterministic behavior).
func (c *Cond) Signal(t *Thread) {
	c.rt.event(t, func() bool {
		if !c.m.held || c.m.holder != t {
			panic("det: Cond.Signal without holding the mutex")
		}
		t.clock.Add(1)
		if len(c.waiters) > 0 {
			w := c.waiters[0]
			c.waiters = c.waiters[1:]
			c.m.waiters = append(c.m.waiters, w)
			c.signals++
		}
		return true
	})
}

// Broadcast wakes all waiters, preserving their deterministic order.
func (c *Cond) Broadcast(t *Thread) {
	c.rt.event(t, func() bool {
		if !c.m.held || c.m.holder != t {
			panic("det: Cond.Broadcast without holding the mutex")
		}
		t.clock.Add(1)
		if len(c.waiters) > 0 {
			c.m.waiters = append(c.m.waiters, c.waiters...)
			c.signals += int64(len(c.waiters))
			c.waiters = nil
		}
		return true
	})
}

// Signals returns the number of delivered signals.
func (c *Cond) Signals() int64 {
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	return c.signals
}
