package det

import (
	"fmt"

	"repro/internal/diag"
)

// Cond is a deterministic condition variable bound to a Mutex. The paper
// lists condition variables as unimplemented in its evaluation ("we have not
// yet implemented other synchronization operations, such as condition
// variables", §V); this is the natural extension under the same turn-gated
// event model: waits and signals are totally ordered by (clock, id), and a
// signalled waiter re-enters the mutex queue deterministically.
type Cond struct {
	rt *Runtime
	// id is the deterministic diagnostic identity ("cond#id" in reports).
	id int
	m  *Mutex

	waiters []*Thread
	signals int64
}

// NewCond creates a condition variable bound to m.
func (rt *Runtime) NewCond(m *Mutex) *Cond {
	if m.rt != rt {
		panic("det: cond bound to a mutex from another runtime")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c := &Cond{rt: rt, id: rt.nextCond, m: m}
	rt.nextCond++
	return c
}

// name is the condition variable's diagnostic identity.
func (c *Cond) name() string { return fmt.Sprintf("cond#%d", c.id) }

// checkHolderLocked panics with a typed misuse error when t does not hold
// the bound mutex. Caller holds rt.mu via event.
func (c *Cond) checkHolderLocked(op string, t *Thread) {
	if !c.m.held || c.m.holder != t {
		panic(misuse(op, t, diag.ErrNotHeld,
			fmt.Sprintf("%s requires holding %s", c.name(), c.m.name())))
	}
}

// Wait atomically releases the mutex and blocks until signalled; it
// reacquires the mutex (via the deterministic grant queue) before returning.
// The caller must hold the mutex.
func (c *Cond) Wait(t *Thread) {
	if c.rt != t.rt {
		panic(misuse("Cond.Wait", t, diag.ErrCrossRuntime, c.name()))
	}
	c.rt.event(t, func() bool {
		c.checkHolderLocked("Cond.Wait", t)
		t.clock.Add(1)
		c.waiters = append(c.waiters, t)
		t.blocked = blockCond
		t.blockedCv = c
		t.excluded.Store(true)
		c.m.releaseLocked(t)
		c.rt.checkDeadlockLocked()
		return true
	})
	// Woken only by a mutex grant: Signal moves us to the mutex queue and an
	// Unlock (or releaseLocked) eventually grants us the lock. A fault wake
	// unwinds with the report instead.
	t.waitGrant()
}

// Signal wakes the first waiter (deterministic arrival order) by moving it
// to the mutex's grant queue; it acquires the mutex when the current holder
// releases. The caller must hold the mutex (matching pthread semantics where
// signalling under the lock gives deterministic behavior).
func (c *Cond) Signal(t *Thread) {
	if c.rt != t.rt {
		panic(misuse("Cond.Signal", t, diag.ErrCrossRuntime, c.name()))
	}
	c.rt.event(t, func() bool {
		c.checkHolderLocked("Cond.Signal", t)
		t.clock.Add(1)
		if len(c.waiters) > 0 {
			w := c.waiters[0]
			c.waiters = c.waiters[1:]
			c.m.waiters = append(c.m.waiters, w)
			// The waiter now depends on the mutex, not the cond: reflect that
			// in the wait-for graph so lost-wakeup deadlocks name the lock.
			w.blocked = blockMutex
			w.blockedMu = c.m
			w.blockedCv = nil
			c.signals++
		}
		return true
	})
}

// Broadcast wakes all waiters, preserving their deterministic order.
func (c *Cond) Broadcast(t *Thread) {
	if c.rt != t.rt {
		panic(misuse("Cond.Broadcast", t, diag.ErrCrossRuntime, c.name()))
	}
	c.rt.event(t, func() bool {
		c.checkHolderLocked("Cond.Broadcast", t)
		t.clock.Add(1)
		if len(c.waiters) > 0 {
			c.m.waiters = append(c.m.waiters, c.waiters...)
			for _, w := range c.waiters {
				w.blocked = blockMutex
				w.blockedMu = c.m
				w.blockedCv = nil
			}
			c.signals += int64(len(c.waiters))
			c.waiters = nil
		}
		return true
	})
}

// Signals returns the number of delivered signals.
func (c *Cond) Signals() int64 {
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	return c.signals
}
