package det

import (
	"fmt"

	"repro/internal/diag"
)

// Deadlock detection over the runtime's wait-for graph.
//
// Every blocking site (mutex wait, barrier arrival, condition wait, join)
// records what the thread is blocked on before it freezes; finish() and
// every block site then run checkDeadlockLocked. The predicate is exact, not
// heuristic: wakeups are only ever produced by live threads executing
// runtime code, so the instant every live thread is blocked, no wakeup can
// ever be produced and the state is a permanent deadlock. Because blocking
// events are turn-gated (and join/finish only freeze deterministic state),
// the blocked state — clocks, resources, holders — is a pure function of the
// program's logic: the same program yields the same report on every run.

// resName returns the deterministic diagnostic name of t's blocked-on
// resource. Caller holds rt.mu.
func (t *Thread) resName() string {
	switch t.blocked {
	case blockMutex:
		return fmt.Sprintf("mutex#%d", t.blockedMu.id)
	case blockBarrier:
		b := t.blockedBar
		return fmt.Sprintf("barrier#%d (arrived %d of %d)", b.id, len(b.arrived), b.n)
	case blockCond:
		return fmt.Sprintf("cond#%d (mutex#%d)", t.blockedCv.id, t.blockedCv.m.id)
	case blockJoin:
		return fmt.Sprintf("join(thread %d)", t.blockedOn.id)
	}
	return ""
}

// resHolder returns the thread owning t's blocked-on resource (mutex holder,
// join target), or nil for collective waits. Caller holds rt.mu. The holder
// is read live, not at block time: a mutex can change hands while t queues.
func (t *Thread) resHolder() *Thread {
	switch t.blocked {
	case blockMutex:
		return t.blockedMu.holder
	case blockJoin:
		return t.blockedOn
	}
	return nil
}

// unblockLocked clears the block bookkeeping and re-admits t to the turn
// predicate. Caller holds rt.mu.
func (t *Thread) unblockLocked() {
	t.blocked = blockNone
	t.blockedMu = nil
	t.blockedBar = nil
	t.blockedCv = nil
	t.blockedOn = nil
	t.excluded.Store(false)
}

// checkDeadlockLocked fires the deadlock fault when every live thread is
// blocked. Caller holds rt.mu.
func (rt *Runtime) checkDeadlockLocked() {
	if rt.fault != nil || rt.nLive == 0 {
		return
	}
	for _, t := range rt.threads {
		if t.done {
			continue
		}
		if t.blocked == blockNone {
			return // someone can still run
		}
		// A joiner whose target already finished is not stuck: it resumes on
		// its next poll (finish() runs this check after setting done, so the
		// joiner may still carry its block mark here).
		if t.blocked == blockJoin && t.blockedOn.done {
			return
		}
	}
	rt.deliverFaultLocked(&diag.DeadlockError{
		Cycle:   rt.findCycleLocked(),
		Waits:   rt.waitEdgesLocked(),
		Threads: rt.snapshotLocked(),
	})
}

// deliverFaultLocked publishes the first fault and wakes every channel-
// blocked thread so it can unwind with the report; turn spinners and join
// pollers observe rt.fault on their next iteration. Caller holds rt.mu.
func (rt *Runtime) deliverFaultLocked(err error) {
	if rt.fault != nil {
		return
	}
	rt.fault = err
	close(rt.faultCh)
	for _, t := range rt.threads {
		switch t.blocked {
		case blockMutex, blockBarrier, blockCond:
			select {
			case t.wake <- struct{}{}:
			default:
			}
		}
	}
}

// waitGrant parks t after an event that enqueued it as a waiter. A normal
// grant clears the block bookkeeping before sending the token; a fault wake
// leaves it set, which is how the waiter distinguishes "granted" from
// "unwind with the report".
func (t *Thread) waitGrant() {
	<-t.wake
	rt := t.rt
	rt.mu.Lock()
	if rt.fault != nil && t.blocked != blockNone {
		err := rt.fault
		t.unblockLocked()
		rt.mu.Unlock()
		panic(err)
	}
	rt.mu.Unlock()
}

// snapshotLocked captures every thread's state for a failure report, in id
// order. Caller holds rt.mu.
func (rt *Runtime) snapshotLocked() []diag.ThreadSnapshot {
	out := make([]diag.ThreadSnapshot, 0, len(rt.threads))
	for _, t := range rt.threads {
		s := diag.ThreadSnapshot{ID: t.id, Clock: t.clock.Load(), Holder: -1}
		switch {
		case t.panicked:
			s.State = "panicked"
		case t.done:
			s.State = "done"
		case t.blocked != blockNone:
			s.State = "blocked"
			s.BlockedOn = t.resName()
			if h := t.resHolder(); h != nil {
				s.Holder = h.id
			}
		default:
			s.State = "runnable"
		}
		if t.lastAcqRes != "" {
			s.LastAcq = fmt.Sprintf("%s@%d", t.lastAcqRes, t.lastAcqClock)
		}
		out = append(out, s)
	}
	return out
}

// waitEdgesLocked lists every blocked thread's wait-for edge, in id order.
// Caller holds rt.mu.
func (rt *Runtime) waitEdgesLocked() []diag.WaitEdge {
	var out []diag.WaitEdge
	for _, t := range rt.threads {
		if t.done || t.blocked == blockNone {
			continue
		}
		e := diag.WaitEdge{Waiter: t.id, Resource: t.resName(), Holder: -1}
		if h := t.resHolder(); h != nil {
			e.Holder = h.id
		}
		out = append(out, e)
	}
	return out
}

// findCycleLocked walks the wait-for graph (thread → holder of its blocked-on
// resource) and returns the first cycle, iterating threads in id order so the
// result is deterministic. Out-degree is at most one (a thread blocks on one
// resource), so a simple colored walk suffices. Caller holds rt.mu.
func (rt *Runtime) findCycleLocked() []diag.WaitEdge {
	const (
		unvisited = 0
		onPath    = 1
		finished  = 2
	)
	state := make(map[*Thread]int, len(rt.threads))
	for _, start := range rt.threads {
		if state[start] != unvisited {
			continue
		}
		var path []*Thread
		t := start
		for t != nil && state[t] == unvisited {
			state[t] = onPath
			path = append(path, t)
			t = t.successorLocked()
		}
		if t != nil && state[t] == onPath {
			// Cycle: from t's position in path to the end.
			i := 0
			for path[i] != t {
				i++
			}
			cyc := path[i:]
			edges := make([]diag.WaitEdge, 0, len(cyc))
			for _, w := range cyc {
				e := diag.WaitEdge{Waiter: w.id, Resource: w.resName(), Holder: -1}
				if h := w.resHolder(); h != nil {
					e.Holder = h.id
				}
				edges = append(edges, e)
			}
			return edges
		}
		for _, p := range path {
			state[p] = finished
		}
	}
	return nil
}

// successorLocked returns the live thread that t's progress depends on, or
// nil (collective wait, done holder, not blocked). Caller holds rt.mu.
func (t *Thread) successorLocked() *Thread {
	if t.done || t.blocked == blockNone {
		return nil
	}
	h := t.resHolder()
	if h == nil || h.done {
		return nil
	}
	return h
}
