package det

import (
	"testing"
	"testing/quick"
)

// TestAllocatorNoOverlapProperty: under any sequence of alloc/free
// operations, live blocks never overlap and never exceed the arena.
func TestAllocatorNoOverlapProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		const arena = 512
		rt := New(1)
		al := rt.NewAllocator(arena)
		ok := true
		rt.Run(func(th *Thread) {
			type block struct{ off, size int64 }
			var live []block
			for _, op := range ops {
				if op%3 == 0 && len(live) > 0 {
					// Free the op-selected live block.
					i := int(op/3) % len(live)
					al.Free(th, live[i].off)
					live = append(live[:i], live[i+1:]...)
					continue
				}
				size := int64(op%31) + 1
				off := al.Alloc(th, size)
				if off < 0 {
					continue // arena full: acceptable
				}
				if off+size > arena {
					ok = false
					return
				}
				for _, b := range live {
					if off < b.off+b.size && b.off < off+size {
						ok = false // overlap
						return
					}
				}
				live = append(live, block{off, size})
			}
			// Free everything; afterwards a full-arena allocation must
			// succeed (perfect coalescing).
			for _, b := range live {
				al.Free(th, b.off)
			}
			if got := al.Alloc(th, arena); got != 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSpawnTreeDeterministic: a tree of dynamically spawned threads gets
// deterministic ids and final clocks.
func TestSpawnTreeDeterministic(t *testing.T) {
	run := func() (ids []int, clocks []int64) {
		rt := New(1)
		rt.Run(func(root *Thread) {
			root.Tick(5)
			var kids []*Thread
			for i := 0; i < 3; i++ {
				i := i
				kids = append(kids, root.Spawn(func(c *Thread) {
					c.Tick(int64(100 * (i + 1)))
					g := c.Spawn(func(gc *Thread) { gc.Tick(7) })
					c.Join(g)
				}))
			}
			for _, k := range kids {
				root.Join(k)
			}
			rt.mu.Lock()
			for _, th := range rt.threads {
				ids = append(ids, th.id)
				clocks = append(clocks, th.finalClock)
			}
			rt.mu.Unlock()
		})
		return
	}
	ids1, clocks1 := run()
	ids2, clocks2 := run()
	if len(ids1) != 7 { // root + 3 children + 3 grandchildren
		t.Fatalf("threads = %d, want 7", len(ids1))
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("thread ids differ across runs: %v vs %v", ids1, ids2)
		}
	}
	// Children's final clocks are deterministic; the root joins last so its
	// clock dominates. Clock values must be identical run to run.
	for i := range clocks1 {
		if i < len(clocks1)-0 && clocks1[i] != clocks2[i] && ids1[i] != 0 {
			t.Fatalf("final clocks differ: %v vs %v", clocks1, clocks2)
		}
	}
}
