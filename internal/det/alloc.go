package det

import "sort"

// Allocator is the deterministic allocator shim. The paper (§III-B) notes
// that functions with internal locks, such as malloc, must have those locks
// replaced with deterministic locks; this first-fit word allocator over a
// fixed arena is guarded by a det.Mutex so that allocation order — and hence
// the addresses handed out — is identical across runs.
type Allocator struct {
	mu   *Mutex
	size int64

	// freeRuns maps offset -> length of free runs, kept coalesced.
	freeRuns map[int64]int64
	// allocated maps offset -> length of live blocks.
	allocated map[int64]int64

	allocs int64
	frees  int64
}

// NewAllocator creates an allocator over an arena of size words.
func (rt *Runtime) NewAllocator(size int64) *Allocator {
	if size <= 0 {
		panic("det: allocator needs a positive arena size")
	}
	return &Allocator{
		mu:        rt.NewMutex(),
		size:      size,
		freeRuns:  map[int64]int64{0: size},
		allocated: map[int64]int64{},
	}
}

// Alloc returns the offset of a fresh n-word block, or -1 when the arena is
// exhausted. First-fit over offsets sorted ascending keeps the decision
// deterministic given a deterministic call order, which the det.Mutex
// provides.
func (a *Allocator) Alloc(t *Thread, n int64) int64 {
	if n <= 0 {
		return -1
	}
	a.mu.Lock(t)
	defer a.mu.Unlock(t)
	offs := make([]int64, 0, len(a.freeRuns))
	for o := range a.freeRuns {
		offs = append(offs, o)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, o := range offs {
		run := a.freeRuns[o]
		if run < n {
			continue
		}
		delete(a.freeRuns, o)
		if run > n {
			a.freeRuns[o+n] = run - n
		}
		a.allocated[o] = n
		a.allocs++
		return o
	}
	return -1
}

// Free releases the block at offset, coalescing adjacent free runs.
func (a *Allocator) Free(t *Thread, offset int64) {
	a.mu.Lock(t)
	defer a.mu.Unlock(t)
	n, ok := a.allocated[offset]
	if !ok {
		panic("det: free of unallocated offset")
	}
	delete(a.allocated, offset)
	a.frees++
	// Coalesce with the following run.
	if after, ok := a.freeRuns[offset+n]; ok {
		delete(a.freeRuns, offset+n)
		n += after
	}
	// Coalesce with a preceding run.
	for o, run := range a.freeRuns {
		if o+run == offset {
			delete(a.freeRuns, o)
			offset, n = o, n+run
			break
		}
	}
	a.freeRuns[offset] = n
}

// Stats returns (allocations, frees, live blocks).
func (a *Allocator) Stats(t *Thread) (allocs, frees int64, live int) {
	a.mu.Lock(t)
	defer a.mu.Unlock(t)
	return a.allocs, a.frees, len(a.allocated)
}
