package det

import (
	"errors"
	"testing"
	"time"

	"repro/internal/diag"
)

// runABBA runs the canonical two-thread lock-order-inversion program under a
// seeded perturbation and returns Run's error. The clocks force the
// interleaving t0:lockA, t1:lockB, t0:lockB(block), t1:lockA(block) on every
// run — under turn gating the deadlock is a function of the clocks, not of
// physical timing, so it manifests for every seed.
func runABBA(t *testing.T, seed int64) error {
	t.Helper()
	rt := New(2)
	rt.SetFaultInjector(NewFaultInjector(FaultInjectorConfig{
		Seed:         seed,
		GoschedStorm: 8,
		SleepJitter:  40 * time.Microsecond,
	}))
	a := rt.NewMutex() // mutex#0
	b := rt.NewMutex() // mutex#1
	return rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			th.Tick(10)
			a.Lock(th) // clock 11
			th.Tick(10)
			b.Lock(th) // attempts at clock 21, blocks
			b.Unlock(th)
			a.Unlock(th)
		} else {
			th.Tick(15)
			b.Lock(th) // clock 16
			th.Tick(5)
			a.Lock(th) // attempts at clock 21, blocks
			a.Unlock(th)
			b.Unlock(th)
		}
	})
}

// TestABBADeadlockDeterministic is the acceptance property: a two-thread
// lock-order cycle terminates with a DeadlockError naming the exact wait-for
// cycle, with identical per-thread clocks, across >= 20 perturbed seeds.
func TestABBADeadlockDeterministic(t *testing.T) {
	var ref *diag.DeadlockError
	for seed := int64(0); seed < 21; seed++ {
		err := runABBA(t, seed)
		if !errors.Is(err, diag.ErrDeadlock) {
			t.Fatalf("seed %d: err = %v, want deadlock", seed, err)
		}
		var dd *diag.DeadlockError
		if !errors.As(err, &dd) {
			t.Fatalf("seed %d: no *diag.DeadlockError in %v", seed, err)
		}
		if len(dd.Cycle) != 2 {
			t.Fatalf("seed %d: cycle = %+v, want 2 edges", seed, dd.Cycle)
		}
		if ref == nil {
			ref = dd
			// Check the exact cycle once: t0 waits on mutex#1 held by t1,
			// which waits on mutex#0 held by t0.
			want := []diag.WaitEdge{
				{Waiter: 0, Resource: "mutex#1", Holder: 1},
				{Waiter: 1, Resource: "mutex#0", Holder: 0},
			}
			for i, e := range dd.Cycle {
				if e != want[i] {
					t.Fatalf("cycle[%d] = %+v, want %+v", i, e, want[i])
				}
			}
			// Both threads frozen at the deterministic clock 21.
			for _, s := range dd.Threads {
				if s.Clock != 21 || s.State != "blocked" {
					t.Fatalf("snapshot %+v, want blocked at clock 21", s)
				}
			}
			continue
		}
		for i, e := range dd.Cycle {
			if e != ref.Cycle[i] {
				t.Fatalf("seed %d: cycle[%d] = %+v, reference %+v", seed, i, e, ref.Cycle[i])
			}
		}
		if len(dd.Threads) != len(ref.Threads) {
			t.Fatalf("seed %d: %d snapshots vs %d", seed, len(dd.Threads), len(ref.Threads))
		}
		for i, s := range dd.Threads {
			if s != ref.Threads[i] {
				t.Fatalf("seed %d: snapshot[%d] = %+v, reference %+v", seed, i, s, ref.Threads[i])
			}
		}
	}
}

// TestGoschedStormPreservesSchedule: scheduling perturbations at lock
// boundaries must not change the acquisition schedule or the clocks of a
// healthy run (weak determinism of surviving runs is unaffected).
func TestGoschedStormPreservesSchedule(t *testing.T) {
	type acq struct {
		tid   int
		clock int64
	}
	run := func(seed int64, inject bool) []acq {
		rt := New(4)
		if inject {
			rt.SetFaultInjector(NewFaultInjector(FaultInjectorConfig{
				Seed:         seed,
				GoschedStorm: 16,
				SleepJitter:  30 * time.Microsecond,
			}))
		}
		mu := rt.NewMutex()
		var seq []acq
		mu.SetObserver(func(tid int, c int64) { seq = append(seq, acq{tid, c}) })
		if err := rt.Run(func(th *Thread) {
			prng := xorshift(uint64(th.ID())*2654435761 + 99)
			for i := 0; i < 60; i++ {
				th.Tick(int64(prng.next()%53) + 1)
				mu.Lock(th)
				mu.Unlock(th)
			}
		}); err != nil {
			t.Fatalf("seed %d: unexpected error: %v", seed, err)
		}
		return seq
	}
	ref := run(0, false)
	if len(ref) != 240 {
		t.Fatalf("acquisitions = %d, want 240", len(ref))
	}
	for seed := int64(1); seed <= 10; seed++ {
		got := run(seed, true)
		if len(got) != len(ref) {
			t.Fatalf("seed %d: %d acquisitions, want %d", seed, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: acquisition %d = %+v, reference %+v", seed, i, got[i], ref[i])
			}
		}
	}
}

// TestInjectedPanicContained: an injected panic is surfaced as a typed
// ThreadPanicError while the surviving thread completes its work.
func TestInjectedPanicContained(t *testing.T) {
	rt := New(2)
	rt.SetFaultInjector(NewFaultInjector(FaultInjectorConfig{
		Seed:    1,
		PanicAt: map[int]int64{0: 3}, // thread 0 dies at its 3rd lock boundary
	}))
	mu := rt.NewMutex()
	var survivorDone int
	err := rt.Run(func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Tick(int64(th.ID()*3 + i + 1))
			mu.Lock(th)
			if th.ID() == 1 {
				survivorDone++
			}
			mu.Unlock(th)
		}
	})
	if !errors.Is(err, diag.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	var pe *diag.ThreadPanicError
	if !errors.As(err, &pe) || pe.ThreadID != 0 {
		t.Fatalf("err = %v, want ThreadPanicError on thread 0", err)
	}
	if survivorDone != 10 {
		t.Fatalf("survivor completed %d/10 iterations", survivorDone)
	}
	if ps := rt.Panics(); len(ps) != 1 || ps[0].ThreadID != 0 {
		t.Fatalf("Panics() = %v", ps)
	}
}

// TestPanicWhileHoldingLockEscalatesToDeadlock: a thread that dies holding a
// mutex leaves the survivor permanently blocked; the detector must fire with
// a report naming the dead holder, joined with the panic — no hang.
func TestPanicWhileHoldingLockEscalatesToDeadlock(t *testing.T) {
	rt := New(2)
	mu := rt.NewMutex()
	err := rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			th.Tick(1)
			mu.Lock(th)
			panic("user bug while holding mutex#0")
		}
		th.Tick(10)
		mu.Lock(th) // blocks forever: holder died
		mu.Unlock(th)
	})
	if !errors.Is(err, diag.ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	var dd *diag.DeadlockError
	if !errors.As(err, &dd) {
		t.Fatalf("no DeadlockError in %v", err)
	}
	if len(dd.Waits) != 1 || dd.Waits[0].Waiter != 1 || dd.Waits[0].Resource != "mutex#0" || dd.Waits[0].Holder != 0 {
		t.Fatalf("waits = %+v, want thread 1 on mutex#0 held by dead thread 0", dd.Waits)
	}
	var pe *diag.ThreadPanicError
	if !errors.As(err, &pe) || pe.ThreadID != 0 {
		t.Fatalf("panic not joined into the report: %v", err)
	}
	// Snapshot must show the dead holder as panicked.
	if dd.Threads[0].State != "panicked" {
		t.Fatalf("snapshot[0] = %+v, want panicked", dd.Threads[0])
	}
}

// TestRecursiveLockIsDeadlock: locking a non-reentrant mutex twice is a
// one-thread wait-for cycle, reported, not hung.
func TestRecursiveLockIsDeadlock(t *testing.T) {
	rt := New(1)
	mu := rt.NewMutex()
	err := rt.Run(func(th *Thread) {
		th.Tick(1)
		mu.Lock(th)
		mu.Lock(th)
	})
	var dd *diag.DeadlockError
	if !errors.As(err, &dd) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	want := diag.WaitEdge{Waiter: 0, Resource: "mutex#0", Holder: 0}
	if len(dd.Cycle) != 1 || dd.Cycle[0] != want {
		t.Fatalf("cycle = %+v, want [%+v]", dd.Cycle, want)
	}
}

// TestJoinCycleDeadlock: parent joins a child that is blocked on a mutex the
// parent holds — a mixed join/mutex cycle.
func TestJoinCycleDeadlock(t *testing.T) {
	rt := New(1)
	mu := rt.NewMutex()
	err := rt.Run(func(th *Thread) {
		th.Tick(1)
		mu.Lock(th)
		child := th.Spawn(func(c *Thread) {
			c.Tick(1)
			mu.Lock(c)
			mu.Unlock(c)
		})
		th.Join(child)
		mu.Unlock(th)
	})
	var dd *diag.DeadlockError
	if !errors.As(err, &dd) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dd.Cycle) != 2 {
		t.Fatalf("cycle = %+v, want join/mutex cycle of length 2", dd.Cycle)
	}
	// The cycle alternates: thread 0 -[join(thread 1)]-> thread 1
	// -[mutex#0]-> thread 0 (order may start at either node; normalize).
	byWaiter := map[int]diag.WaitEdge{}
	for _, e := range dd.Cycle {
		byWaiter[e.Waiter] = e
	}
	if byWaiter[0].Resource != "join(thread 1)" || byWaiter[0].Holder != 1 {
		t.Fatalf("edge from 0 = %+v", byWaiter[0])
	}
	if byWaiter[1].Resource != "mutex#0" || byWaiter[1].Holder != 0 {
		t.Fatalf("edge from 1 = %+v", byWaiter[1])
	}
}

// TestCondLostWakeupDeadlock: a waiter with no signaller in sight is a
// collective-wait deadlock — empty cycle, but the snapshot names the cond.
func TestCondLostWakeupDeadlock(t *testing.T) {
	rt := New(2)
	mu := rt.NewMutex()
	cv := rt.NewCond(mu)
	err := rt.Run(func(th *Thread) {
		th.Tick(int64(th.ID() + 1))
		if th.ID() == 0 {
			mu.Lock(th)
			cv.Wait(th) // nobody will ever signal
			mu.Unlock(th)
		}
		// Thread 1 exits immediately.
	})
	var dd *diag.DeadlockError
	if !errors.As(err, &dd) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dd.Cycle) != 0 {
		t.Fatalf("cycle = %+v, want none (collective wait)", dd.Cycle)
	}
	if len(dd.Waits) != 1 || dd.Waits[0].Resource != "cond#0 (mutex#0)" {
		t.Fatalf("waits = %+v, want cond#0", dd.Waits)
	}
}

// TestBarrierStarvationDeadlock: a barrier expecting more participants than
// will ever arrive reports the arrival count.
func TestBarrierStarvationDeadlock(t *testing.T) {
	rt := New(2)
	bar := rt.NewBarrier(3)
	err := rt.Run(func(th *Thread) {
		th.Tick(int64(th.ID() + 1))
		bar.Wait(th)
	})
	var dd *diag.DeadlockError
	if !errors.As(err, &dd) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	for _, w := range dd.Waits {
		if w.Resource != "barrier#0 (arrived 2 of 3)" {
			t.Fatalf("waits = %+v, want arrival count 2 of 3", dd.Waits)
		}
	}
}

// TestWatchdogCatchesLivelock: a thread spinning in user code with a frozen
// low clock starves the other thread's turn forever; no one is blocked, so
// only the watchdog can see it.
func TestWatchdogCatchesLivelock(t *testing.T) {
	rt := New(2)
	rt.EnableWatchdog(&WatchdogConfig{
		Interval: time.Millisecond,
		Stall:    50 * time.Millisecond,
		Grace:    100 * time.Millisecond,
	})
	mu := rt.NewMutex()
	stop := make(chan struct{})
	defer close(stop)
	err := rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			// Livelock: never ticks, never synchronizes — its clock 0 starves
			// thread 1's turn forever. Exits only when the test releases it.
			for {
				select {
				case <-stop:
					return
				default:
				}
			}
		}
		th.Tick(1)
		mu.Lock(th) // spins for a turn that never comes
		mu.Unlock(th)
	})
	if !errors.Is(err, diag.ErrStalled) {
		t.Fatalf("err = %v, want watchdog stall", err)
	}
	var we *diag.WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("no WatchdogError in %v", err)
	}
	if len(we.Threads) != 2 || we.Threads[0].State != "runnable" {
		t.Fatalf("snapshot = %+v, want thread 0 runnable (livelocked)", we.Threads)
	}
}

// TestWatchdogQuietOnHealthyRun: an armed watchdog must not fire on a run
// that makes progress, and must not leak past Run.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	rt := New(4)
	rt.EnableWatchdog(&WatchdogConfig{Interval: time.Millisecond, Stall: 200 * time.Millisecond})
	mu := rt.NewMutex()
	if err := rt.Run(func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Tick(int64(th.ID() + 1))
			mu.Lock(th)
			mu.Unlock(th)
		}
	}); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
}

// TestDeadlockSameUnderRace exercises the detector repeatedly to give the
// race detector surface area over the fault-delivery path.
func TestDeadlockSameUnderRace(t *testing.T) {
	for i := 0; i < 10; i++ {
		if err := runABBA(t, int64(1000+i)); !errors.Is(err, diag.ErrDeadlock) {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}
