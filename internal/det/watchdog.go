package det

import (
	"hash/fnv"
	"time"

	"repro/internal/diag"
)

// The progress watchdog catches the stuck states the wait-for graph cannot
// see: livelocks. A thread spinning in user code with a low clock that never
// ticks and never synchronizes starves every higher-clock thread's turn
// forever, yet nobody is *blocked*, so the deadlock predicate stays false.
// The watchdog samples a fingerprint of the runtime's deterministic state
// (all logical clocks, thread liveness, acquisition count); if the
// fingerprint does not change for the stall bound, no clock advanced and no
// synchronization event completed — the run is stalled, and the watchdog
// delivers a diag.WatchdogError carrying the same per-thread snapshot the
// deadlock detector produces.
//
// The monitor is off by default and costs nothing when disabled: no
// goroutine runs and the lock paths carry no extra state — the fingerprint
// is computed from fields the runtime already maintains.

// WatchdogConfig tunes the progress monitor.
type WatchdogConfig struct {
	// Interval is the sampling period (default 10ms).
	Interval time.Duration
	// Stall is how long the fingerprint may stay unchanged before the
	// watchdog faults the run (default 2s).
	Stall time.Duration
	// Grace bounds how long Run waits, after a fault, for threads stuck in
	// user code to unwind before abandoning them (default 1s). Threads
	// blocked or spinning inside the runtime always unwind promptly.
	Grace time.Duration
}

func (c *WatchdogConfig) withDefaults() WatchdogConfig {
	out := *c
	if out.Interval <= 0 {
		out.Interval = 10 * time.Millisecond
	}
	if out.Stall <= 0 {
		out.Stall = 2 * time.Second
	}
	if out.Grace <= 0 {
		out.Grace = time.Second
	}
	return out
}

// EnableWatchdog arms the progress monitor for subsequent Run calls. Call
// before Run; a nil config enables the defaults.
func (rt *Runtime) EnableWatchdog(cfg *WatchdogConfig) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if cfg == nil {
		cfg = &WatchdogConfig{}
	}
	c := cfg.withDefaults()
	rt.watchdog = &c
}

// DisableWatchdog disarms the monitor for subsequent Run calls.
func (rt *Runtime) DisableWatchdog() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.watchdog = nil
}

// startWatchdog launches the monitor if armed, returning a stop function and
// the post-fault grace period for Run.
func (rt *Runtime) startWatchdog() (stop func(), grace time.Duration) {
	rt.mu.Lock()
	cfg := rt.watchdog
	rt.mu.Unlock()
	if cfg == nil {
		return func() {}, time.Second
	}
	stopCh := make(chan struct{})
	go rt.watchdogLoop(*cfg, stopCh)
	return func() { close(stopCh) }, cfg.Grace
}

func (rt *Runtime) watchdogLoop(cfg WatchdogConfig, stop chan struct{}) {
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	last := rt.fingerprint()
	lastChange := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		fp := rt.fingerprint()
		if fp != last {
			last = fp
			lastChange = time.Now()
			continue
		}
		stalled := time.Since(lastChange)
		if stalled < cfg.Stall {
			continue
		}
		rt.mu.Lock()
		if rt.fault == nil && rt.nLive > 0 {
			rt.deliverFaultLocked(&diag.WatchdogError{
				NoProgressFor: stalled,
				Threads:       rt.snapshotLocked(),
			})
		}
		rt.mu.Unlock()
		return
	}
}

// fingerprint hashes the runtime's deterministic progress state: any tick,
// acquisition, spawn, block, unblock or finish changes it. (Every
// synchronization event ticks at least one clock, so clocks + liveness +
// acquisition count cover all progress.)
func (rt *Runtime) fingerprint() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(int64(len(rt.threads)))
	put(int64(rt.nLive))
	put(rt.acquisitions.Load())
	for _, t := range rt.threads {
		put(t.clock.Load())
		state := int64(t.blocked)
		if t.done {
			state |= 1 << 8
		}
		put(state)
	}
	return h.Sum64()
}
