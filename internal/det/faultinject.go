package det

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/diag"
)

// FaultInjector perturbs the runtime at lock boundaries. It exists for the
// robustness property tests: scheduling perturbations (Gosched storms, sleep
// jitter) must never change a schedule, a clock, or a failure report, and
// injected panics must be contained exactly like user panics. It is a
// test-only facility — production runs leave it unset, which costs a single
// nil check per lock boundary.
//
// All perturbations are physical-timing-only: the injector never touches a
// logical clock, so weak determinism of surviving runs is unaffected by
// construction, and the tests verify it.
type FaultInjector struct {
	cfg FaultInjectorConfig

	mu sync.Mutex
	// rng is per-thread deterministic state: each thread's perturbation
	// stream depends only on (seed, thread id), never on interleaving.
	rng map[int]*Rand
}

// FaultInjectorConfig selects the perturbations.
type FaultInjectorConfig struct {
	// Seed derives every thread's perturbation stream.
	Seed int64
	// GoschedStorm injects up to this many runtime.Gosched calls per lock
	// boundary (0 disables).
	GoschedStorm int
	// SleepJitter injects a random sleep of up to this duration per lock
	// boundary (0 disables).
	SleepJitter time.Duration
	// PanicAt maps thread id -> 1-based lock-boundary index at which that
	// thread panics with a diag.ErrInjected-tagged error. The boundary count
	// is deterministic (it counts the thread's own Lock/TryLock/Unlock
	// calls), so the injected failure is reproducible.
	PanicAt map[int]int64
}

// Rand is the fault-injection harnesses' deterministic xorshift64 stream:
// dependency-free, reproducible from its seed alone. It is exported so
// higher-layer chaos harnesses (the service layer's crash/restart and
// worker-panic injection) draw their perturbation schedules from the same
// generator family the runtime-level injector uses — one seed format, one
// stream discipline, directly comparable chaos schedules across layers.
type Rand struct{ state uint64 }

// NewRand derives a stream from (seed, stream id); the id separates streams
// of the same seed the way the runtime injector separates per-thread streams.
func NewRand(seed int64, id int) *Rand {
	// Mix the seed and id so streams differ per id; keep non-zero.
	return &Rand{state: uint64(seed)*2654435761 + uint64(id)*0x9e3779b9 + 1}
}

// Next returns the next value of the stream.
func (r *Rand) Next() uint64 {
	// xorshift64: deterministic, dependency-free.
	v := r.state
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	r.state = v
	return v
}

// Float returns the next value scaled into [0, 1).
func (r *Rand) Float() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// IntN returns a value in [0, n); n must be positive.
func (r *Rand) IntN(n int) int {
	return int(r.Next() % uint64(n))
}

// NewFaultInjector builds an injector from cfg.
func NewFaultInjector(cfg FaultInjectorConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg, rng: make(map[int]*Rand)}
}

// SetFaultInjector installs (or, with nil, removes) the injector. Must be
// called before Run.
func (rt *Runtime) SetFaultInjector(fi *FaultInjector) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.injector = fi
}

// injectBoundary is called by Lock/TryLock/Unlock before their turn-gated
// event. With no injector installed it is a nil check and a return.
func (rt *Runtime) injectBoundary(t *Thread, op string) {
	if rt.injector == nil {
		return
	}
	rt.injector.boundary(t, op)
}

func (fi *FaultInjector) boundary(t *Thread, op string) {
	t.boundaries++
	n := t.boundaries
	if at, ok := fi.cfg.PanicAt[t.id]; ok && n == at {
		panic(fmt.Errorf("%w: %s boundary %d on thread %d", diag.ErrInjected, op, n, t.id))
	}
	fi.mu.Lock()
	r := fi.rng[t.id]
	if r == nil {
		r = NewRand(fi.cfg.Seed, t.id)
		fi.rng[t.id] = r
	}
	storm := 0
	var sleep time.Duration
	if fi.cfg.GoschedStorm > 0 {
		storm = int(r.Next() % uint64(fi.cfg.GoschedStorm+1))
	}
	if fi.cfg.SleepJitter > 0 {
		sleep = time.Duration(r.Next() % uint64(fi.cfg.SleepJitter))
	}
	fi.mu.Unlock()
	for i := 0; i < storm; i++ {
		runtime.Gosched()
	}
	if sleep > 0 {
		time.Sleep(sleep)
	}
}
