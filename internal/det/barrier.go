package det

import (
	"fmt"

	"repro/internal/diag"
)

// Barrier is a deterministic cyclic barrier for a fixed number of
// participants. On release, every participant resumes with clock
// max(arrival clocks) + 1, so the post-barrier clocks — and therefore all
// downstream synchronization decisions — are independent of arrival timing.
type Barrier struct {
	rt *Runtime
	// id is the deterministic diagnostic identity ("barrier#id" in reports).
	id int
	n  int

	arrived []*Thread
	// cycles counts completed barrier episodes.
	cycles int64
}

// NewBarrier creates a barrier for n participants. A participant count the
// program can never satisfy (more participants than threads that ever call
// Wait) is not detectable here; it surfaces as a DeadlockError whose
// snapshot names the barrier and its arrival count.
func (rt *Runtime) NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("det: barrier needs at least one participant")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b := &Barrier{rt: rt, id: rt.nextBarrier, n: n}
	rt.nextBarrier++
	return b
}

// Cycles returns the number of completed barrier episodes.
func (b *Barrier) Cycles() int64 {
	b.rt.mu.Lock()
	defer b.rt.mu.Unlock()
	return b.cycles
}

// name is the barrier's diagnostic identity.
func (b *Barrier) name() string { return fmt.Sprintf("barrier#%d", b.id) }

// Wait blocks until n threads have arrived. Arrival is a turn-gated event,
// so the arrival order is deterministic; arrived threads are excluded from
// the turn predicate so laggards are never starved by frozen clocks.
func (b *Barrier) Wait(t *Thread) {
	if b.rt != t.rt {
		panic(misuse("Barrier.Wait", t, diag.ErrCrossRuntime, b.name()))
	}
	blocked := false
	b.rt.event(t, func() bool {
		b.arrived = append(b.arrived, t)
		if len(b.arrived) < b.n {
			t.blocked = blockBarrier
			t.blockedBar = b
			t.excluded.Store(true)
			b.rt.checkDeadlockLocked()
			blocked = true
			return true
		}
		// Last arrival: release everyone with the synchronized clock.
		var max int64
		for _, w := range b.arrived {
			if c := w.clock.Load(); c > max {
				max = c
			}
		}
		release := max + 1
		for _, w := range b.arrived[:len(b.arrived)-1] {
			w.clock.Store(release)
			w.unblockLocked()
			w.wake <- struct{}{}
		}
		t.clock.Store(release)
		b.arrived = nil
		b.cycles++
		return true
	})
	if blocked {
		t.waitGrant()
	}
}
