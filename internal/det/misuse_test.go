package det

import (
	"errors"
	"testing"

	"repro/internal/diag"
)

// Table-driven misuse tests: every API contract violation must surface as a
// typed *diag.MisuseError (wrapped in the containing *diag.ThreadPanicError
// when it unwinds a Run thread), never as a hang or an untyped panic.
func TestMisuseTyped(t *testing.T) {
	cases := []struct {
		name       string
		run        func() error
		wantKind   error
		wantThread int
	}{
		{
			name: "double-unlock",
			run: func() error {
				rt := New(1)
				mu := rt.NewMutex()
				return rt.Run(func(th *Thread) {
					th.Tick(1)
					mu.Lock(th)
					mu.Unlock(th)
					mu.Unlock(th)
				})
			},
			wantKind: diag.ErrNotHeld,
		},
		{
			name: "unlock-by-non-holder",
			run: func() error {
				rt := New(2)
				mu := rt.NewMutex()
				bar := rt.NewBarrier(2)
				return rt.Run(func(th *Thread) {
					if th.ID() == 0 {
						th.Tick(1)
						mu.Lock(th)
					}
					bar.Wait(th)
					if th.ID() == 1 {
						mu.Unlock(th) // held by thread 0
					}
					bar.Wait(th)
					if th.ID() == 0 {
						mu.Unlock(th)
					}
				})
			},
			wantKind:   diag.ErrNotHeld,
			wantThread: 1,
		},
		{
			name: "lock-cross-runtime",
			run: func() error {
				other := New(1)
				foreign := other.NewMutex()
				rt := New(1)
				return rt.Run(func(th *Thread) { foreign.Lock(th) })
			},
			wantKind: diag.ErrCrossRuntime,
		},
		{
			name: "trylock-cross-runtime",
			run: func() error {
				other := New(1)
				foreign := other.NewMutex()
				rt := New(1)
				return rt.Run(func(th *Thread) { foreign.TryLock(th) })
			},
			wantKind: diag.ErrCrossRuntime,
		},
		{
			name: "unlock-cross-runtime",
			run: func() error {
				other := New(1)
				foreign := other.NewMutex()
				rt := New(1)
				return rt.Run(func(th *Thread) { foreign.Unlock(th) })
			},
			wantKind: diag.ErrCrossRuntime,
		},
		{
			name: "barrier-cross-runtime",
			run: func() error {
				other := New(1)
				foreign := other.NewBarrier(1)
				rt := New(1)
				return rt.Run(func(th *Thread) { foreign.Wait(th) })
			},
			wantKind: diag.ErrCrossRuntime,
		},
		{
			name: "cond-wait-cross-runtime",
			run: func() error {
				other := New(1)
				foreign := other.NewCond(other.NewMutex())
				rt := New(1)
				return rt.Run(func(th *Thread) { foreign.Wait(th) })
			},
			wantKind: diag.ErrCrossRuntime,
		},
		{
			name: "cond-signal-cross-runtime",
			run: func() error {
				other := New(1)
				foreign := other.NewCond(other.NewMutex())
				rt := New(1)
				return rt.Run(func(th *Thread) { foreign.Signal(th) })
			},
			wantKind: diag.ErrCrossRuntime,
		},
		{
			name: "cond-wait-without-mutex",
			run: func() error {
				rt := New(1)
				cv := rt.NewCond(rt.NewMutex())
				return rt.Run(func(th *Thread) { cv.Wait(th) })
			},
			wantKind: diag.ErrNotHeld,
		},
		{
			name: "cond-broadcast-without-mutex",
			run: func() error {
				rt := New(1)
				cv := rt.NewCond(rt.NewMutex())
				return rt.Run(func(th *Thread) { cv.Broadcast(th) })
			},
			wantKind: diag.ErrNotHeld,
		},
		{
			name: "self-join",
			run: func() error {
				rt := New(1)
				return rt.Run(func(th *Thread) { th.Join(th) })
			},
			wantKind: diag.ErrSelfJoin,
		},
		{
			name: "join-nil",
			run: func() error {
				rt := New(1)
				return rt.Run(func(th *Thread) { th.Join(nil) })
			},
			wantKind: diag.ErrBadJoin,
		},
		{
			name: "join-cross-runtime",
			run: func() error {
				other := New(2)
				foreign := other.threads[1]
				rt := New(1)
				return rt.Run(func(th *Thread) { th.Join(foreign) })
			},
			wantKind: diag.ErrBadJoin,
		},
		{
			name: "negative-tick",
			run: func() error {
				rt := New(1)
				return rt.Run(func(th *Thread) { th.Tick(-1) })
			},
			wantKind: diag.ErrNegativeTick,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			err := c.run()
			if err == nil {
				t.Fatalf("Run returned nil, want %v", c.wantKind)
			}
			if !errors.Is(err, c.wantKind) {
				t.Fatalf("err = %v, want kind %v", err, c.wantKind)
			}
			var mis *diag.MisuseError
			if !errors.As(err, &mis) {
				t.Fatalf("no *diag.MisuseError in %v", err)
			}
			if mis.ThreadID != c.wantThread {
				t.Fatalf("misuse on thread %d, want %d (%v)", mis.ThreadID, c.wantThread, err)
			}
			var pe *diag.ThreadPanicError
			if !errors.As(err, &pe) {
				t.Fatalf("misuse not delivered via panic containment: %v", err)
			}
		})
	}
}

// TestMisusePanicStillRecoverableInBody: user code that recovers a misuse
// panic itself keeps the run healthy (backwards-compatible with the old
// string panics).
func TestMisusePanicStillRecoverableInBody(t *testing.T) {
	rt := New(1)
	mu := rt.NewMutex()
	var recovered error
	if err := rt.Run(func(th *Thread) {
		defer func() {
			if r := recover(); r != nil {
				recovered = r.(error)
			}
		}()
		mu.Unlock(th)
	}); err != nil {
		t.Fatalf("recovered-in-body run must be clean, got %v", err)
	}
	if !errors.Is(recovered, diag.ErrNotHeld) {
		t.Fatalf("recovered = %v, want ErrNotHeld", recovered)
	}
}

// TestJoinReturnsChildPanic: Join surfaces the child's contained panic.
func TestJoinReturnsChildPanic(t *testing.T) {
	rt := New(1)
	var joinErr error
	err := rt.Run(func(th *Thread) {
		child := th.Spawn(func(c *Thread) {
			c.Tick(3)
			panic("child bug")
		})
		joinErr = th.Join(child)
	})
	var pe *diag.ThreadPanicError
	if !errors.As(joinErr, &pe) || pe.ThreadID != 1 {
		t.Fatalf("Join returned %v, want child's ThreadPanicError", joinErr)
	}
	// Run also reports it (the child is a thread of this runtime).
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v, want ThreadPanicError", err)
	}
}
