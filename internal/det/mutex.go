package det

import (
	"fmt"

	"repro/internal/diag"
)

// Mutex is a deterministic mutual-exclusion lock. For a race-free program
// with a fixed input, the global sequence of (thread, acquisition) pairs on
// every Mutex is identical across runs (weak determinism).
type Mutex struct {
	rt *Runtime
	// id is the deterministic diagnostic identity ("mutex#id" in reports),
	// assigned in creation order.
	id int

	held   bool
	holder *Thread
	// waiters are blocked threads in deterministic arrival order (arrivals
	// are turn-gated, so this order is a function of logical clocks only).
	waiters []*Thread

	// acquisitions counts grants on this mutex.
	acquisitions int64
	// lastAcquirer and lastClock describe the most recent grant, for traces.
	lastAcquirer int
	lastClock    int64

	// observer, when set, is called at every acquisition (under the runtime
	// lock) with the acquiring thread and its post-acquisition clock. Used by
	// package trace.
	observer func(threadID int, clock int64)
}

// NewMutex creates a deterministic mutex managed by rt.
func (rt *Runtime) NewMutex() *Mutex {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m := &Mutex{rt: rt, id: rt.nextMutex}
	rt.nextMutex++
	return m
}

// SetObserver installs fn to observe acquisitions. Must be called before the
// mutex is shared.
func (m *Mutex) SetObserver(fn func(threadID int, clock int64)) { m.observer = fn }

// Acquisitions returns how many times the mutex has been acquired.
func (m *Mutex) Acquisitions() int64 {
	m.rt.mu.Lock()
	defer m.rt.mu.Unlock()
	return m.acquisitions
}

// name is the mutex's diagnostic identity.
func (m *Mutex) name() string { return fmt.Sprintf("mutex#%d", m.id) }

// Lock acquires m deterministically: the thread waits for its global turn
// (clock minimal, ties by id); if the mutex is free it takes it and ticks;
// otherwise it enqueues with its clock frozen and blocks until the releaser
// grants it, resuming at the frozen clock plus the acquisition tick. The
// paper's semantics: clock paused while waiting, resumed after acquisition.
func (m *Mutex) Lock(t *Thread) {
	if m.rt != t.rt {
		panic(misuse("Mutex.Lock", t, diag.ErrCrossRuntime, m.name()))
	}
	m.rt.injectBoundary(t, "Mutex.Lock")
	blocked := false
	m.rt.event(t, func() bool {
		if !m.held {
			m.take(t, t.clock.Load()+1)
			return true
		}
		m.waiters = append(m.waiters, t)
		t.blocked = blockMutex
		t.blockedMu = m
		t.excluded.Store(true)
		m.rt.checkDeadlockLocked()
		blocked = true
		return true
	})
	if blocked {
		// The granter set our clock, cleared the block bookkeeping and woke
		// us; a fault wake instead leaves the bookkeeping set and waitGrant
		// unwinds with the report.
		t.waitGrant()
	}
}

// take records the acquisition. Caller holds rt.mu and the turn.
func (m *Mutex) take(t *Thread, newClock int64) {
	m.held = true
	m.holder = t
	m.acquisitions++
	m.lastAcquirer = t.id
	m.lastClock = newClock
	t.clock.Store(newClock)
	t.lastAcqRes = m.name()
	t.lastAcqClock = newClock
	m.rt.acquisitions.Add(1)
	m.rt.onAcquisitionLocked(m.id, t.id, newClock)
	if m.observer != nil {
		m.observer(t.id, newClock)
	}
}

// Unlock releases m. The release is itself turn-gated, which totally orders
// all synchronization events by (clock, id) and makes the waiter handoff
// deterministic. If waiters are queued, the first one is granted with clock
// max(frozen, releaser's clock) + 1.
func (m *Mutex) Unlock(t *Thread) {
	if m.rt != t.rt {
		panic(misuse("Mutex.Unlock", t, diag.ErrCrossRuntime, m.name()))
	}
	m.rt.injectBoundary(t, "Mutex.Unlock")
	m.rt.event(t, func() bool {
		if !m.held {
			panic(misuse("Mutex.Unlock", t, diag.ErrNotHeld, m.name()+" is not locked"))
		}
		if m.holder != t {
			panic(misuse("Mutex.Unlock", t, diag.ErrNotHeld,
				fmt.Sprintf("%s is held by thread %d", m.name(), m.holder.id)))
		}
		t.clock.Add(1)
		m.releaseLocked(t)
		return true
	})
}

// releaseLocked hands the mutex to the first queued waiter, or frees it.
// Caller holds rt.mu and the turn; t is the current holder. Shared by Unlock
// and Cond.Wait.
func (m *Mutex) releaseLocked(t *Thread) {
	if len(m.waiters) == 0 {
		m.held = false
		m.holder = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	// Kendo semantics: the waiter's clock was paused while blocked; it
	// resumes at its frozen value plus the acquisition tick. The value is
	// independent of how long the wait physically lasted, so determinism is
	// preserved.
	newClock := next.clock.Load() + 1
	m.take(next, newClock)
	next.unblockLocked()
	next.wake <- struct{}{}
}

// TryLock acquires m if it is free at the thread's turn; it never blocks.
// Returns whether the lock was taken. Deterministic for the same reason Lock
// is: the decision happens at a totally-ordered event.
func (m *Mutex) TryLock(t *Thread) bool {
	if m.rt != t.rt {
		panic(misuse("Mutex.TryLock", t, diag.ErrCrossRuntime, m.name()))
	}
	m.rt.injectBoundary(t, "Mutex.TryLock")
	ok := false
	m.rt.event(t, func() bool {
		t.clock.Add(1)
		if !m.held {
			m.take(t, t.clock.Load())
			ok = true
		}
		return true
	})
	return ok
}
