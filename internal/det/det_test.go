package det

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// xorshift is a tiny deterministic per-thread PRNG for tick amounts; the
// jitter injected by tests must never feed it.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// runContended executes a contended increment workload and returns the
// acquisition sequence (thread ids in acquisition order) and the final
// counter. jitterSeed perturbs physical timing only.
func runContended(nThreads, iters int, jitterSeed int64) ([]int, int64) {
	rt := New(nThreads)
	mu := rt.NewMutex()
	var seq []int
	mu.SetObserver(func(tid int, _ int64) { seq = append(seq, tid) })
	var counter int64
	rt.Run(func(t *Thread) {
		prng := xorshift(uint64(t.ID())*2654435761 + 12345)
		localJitter := rand.New(rand.NewSource(jitterSeed + int64(t.ID())))
		for i := 0; i < iters; i++ {
			// Deterministic logical work, different per thread and iteration.
			t.Tick(int64(prng.next()%97) + 1)
			// Physical perturbation: must not affect the schedule.
			if localJitter.Intn(4) == 0 {
				time.Sleep(time.Duration(localJitter.Intn(50)) * time.Microsecond)
			}
			mu.Lock(t)
			counter++
			mu.Unlock(t)
		}
	})
	return seq, counter
}

func TestMutexMutualExclusion(t *testing.T) {
	_, counter := runContended(4, 200, 1)
	if counter != 800 {
		t.Fatalf("counter = %d, want 800 (lost updates => broken exclusion)", counter)
	}
}

func TestDeterministicAcquisitionOrder(t *testing.T) {
	ref, _ := runContended(4, 150, 0)
	if len(ref) != 600 {
		t.Fatalf("acquisitions = %d, want 600", len(ref))
	}
	for seed := int64(1); seed <= 8; seed++ {
		got, _ := runContended(4, 150, seed)
		if len(got) != len(ref) {
			t.Fatalf("seed %d: %d acquisitions, want %d", seed, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: acquisition %d by thread %d, reference says %d",
					seed, i, got[i], ref[i])
			}
		}
	}
}

func TestAcquisitionClocksDeterministic(t *testing.T) {
	run := func(jitter int64) []int64 {
		rt := New(3)
		mu := rt.NewMutex()
		var clocks []int64
		mu.SetObserver(func(_ int, c int64) { clocks = append(clocks, c) })
		rt.Run(func(th *Thread) {
			localJitter := rand.New(rand.NewSource(jitter*31 + int64(th.ID())))
			for i := 0; i < 100; i++ {
				th.Tick(int64((th.ID()+1)*3 + i%7))
				if localJitter.Intn(3) == 0 {
					time.Sleep(time.Duration(localJitter.Intn(30)) * time.Microsecond)
				}
				mu.Lock(th)
				mu.Unlock(th)
			}
		})
		return clocks
	}
	ref := run(0)
	for seed := int64(1); seed <= 5; seed++ {
		got := run(seed)
		if len(got) != len(ref) {
			t.Fatalf("seed %d: %d clocks vs %d", seed, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: clock[%d] = %d, want %d", seed, i, got[i], ref[i])
			}
		}
	}
}

func TestLowestClockWinsUnderContention(t *testing.T) {
	// Two threads race for the first acquisition; the one with the lower
	// pre-lock clock must always win, regardless of startup timing.
	for trial := 0; trial < 20; trial++ {
		rt := New(2)
		mu := rt.NewMutex()
		var first atomic.Int64
		first.Store(-1)
		rt.Run(func(th *Thread) {
			if th.ID() == 0 {
				t0 := 1000 // high clock: must lose
				th.Tick(int64(t0))
			} else {
				th.Tick(10)
				// Arrive physically late despite the lower clock.
				time.Sleep(200 * time.Microsecond)
			}
			mu.Lock(th)
			first.CompareAndSwap(-1, int64(th.ID()))
			mu.Unlock(th)
		})
		if first.Load() != 1 {
			t.Fatalf("trial %d: thread 0 (clock 1000) acquired before thread 1 (clock 10)", trial)
		}
	}
}

func TestTieBreakByThreadID(t *testing.T) {
	rt := New(2)
	mu := rt.NewMutex()
	var first atomic.Int64
	first.Store(-1)
	rt.Run(func(th *Thread) {
		th.Tick(500) // identical clocks
		mu.Lock(th)
		first.CompareAndSwap(-1, int64(th.ID()))
		mu.Unlock(th)
	})
	if first.Load() != 0 {
		t.Fatalf("tie must go to the lower thread id, got %d", first.Load())
	}
}

func TestTryLock(t *testing.T) {
	rt := New(2)
	mu := rt.NewMutex()
	var succ, fail atomic.Int64
	rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			mu.Lock(th)
			th.Tick(10000) // hold while the other thread tries
			// Wait until thread 1 has attempted.
			for fail.Load() == 0 && succ.Load() == 0 {
				time.Sleep(10 * time.Microsecond)
			}
			mu.Unlock(th)
		} else {
			th.Tick(50)
			if mu.TryLock(th) {
				succ.Add(1)
				mu.Unlock(th)
			} else {
				fail.Add(1)
			}
		}
	})
	if fail.Load() != 1 || succ.Load() != 0 {
		t.Fatalf("TryLock on held mutex: succ=%d fail=%d", succ.Load(), fail.Load())
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	rt := New(4)
	bar := rt.NewBarrier(4)
	clocks := make([]int64, 4)
	rt.Run(func(th *Thread) {
		th.Tick(int64(100 * (th.ID() + 1)))
		bar.Wait(th)
		clocks[th.ID()] = th.Clock()
	})
	// All clocks equal max(100,200,300,400)+1 = 401.
	for id, c := range clocks {
		if c != 401 {
			t.Fatalf("thread %d clock after barrier = %d, want 401", id, c)
		}
	}
	if bar.Cycles() != 1 {
		t.Fatalf("cycles = %d", bar.Cycles())
	}
}

func TestBarrierCyclic(t *testing.T) {
	rt := New(3)
	bar := rt.NewBarrier(3)
	const rounds = 10
	var order [rounds][]int
	mu := rt.NewMutex()
	rt.Run(func(th *Thread) {
		for r := 0; r < rounds; r++ {
			th.Tick(int64(th.ID()*7 + r + 1))
			mu.Lock(th)
			order[r] = append(order[r], th.ID())
			mu.Unlock(th)
			bar.Wait(th)
		}
	})
	if bar.Cycles() != rounds {
		t.Fatalf("cycles = %d, want %d", bar.Cycles(), rounds)
	}
	for r := range order {
		if len(order[r]) != 3 {
			t.Fatalf("round %d saw %d arrivals", r, len(order[r]))
		}
	}
}

func TestNestedLocksNoDeadlock(t *testing.T) {
	// Thread 0 takes A then B; thread 1 waits on A with a frozen low clock.
	// Waiter exclusion must let thread 0 acquire B.
	done := make(chan struct{})
	go func() {
		rt := New(2)
		a := rt.NewMutex()
		b := rt.NewMutex()
		rt.Run(func(th *Thread) {
			if th.ID() == 0 {
				th.Tick(100)
				a.Lock(th)
				th.Tick(100000) // clock far above the waiter's
				b.Lock(th)
				b.Unlock(th)
				a.Unlock(th)
			} else {
				th.Tick(10)
				a.Lock(th) // frozen at 10 while waiting
				a.Unlock(th)
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("deadlock: nested locks with a frozen waiter")
	}
}

func TestWaiterResumeClock(t *testing.T) {
	rt := New(2)
	mu := rt.NewMutex()
	var resumed int64
	rt.Run(func(th *Thread) {
		if th.ID() == 0 {
			th.Tick(10)
			mu.Lock(th) // acquires first (clock 10 vs 20)
			th.Tick(500)
			mu.Unlock(th)
		} else {
			th.Tick(20)
			mu.Lock(th) // must wait; clock frozen at 20, resumes at 20+1
			resumed = th.Clock()
			mu.Unlock(th)
		}
	})
	// Kendo semantics: the waiter's clock pauses while blocked and resumes
	// where it froze, plus the acquisition tick: 20 + 1 = 21 — independent
	// of how long the holder kept the lock.
	if resumed != 21 {
		t.Fatalf("waiter resume clock = %d, want 21", resumed)
	}
}

func TestSpawnJoin(t *testing.T) {
	rt := New(1)
	var childClock, parentAfter int64
	var childID int
	rt.Run(func(th *Thread) {
		th.Tick(41)
		child := th.Spawn(func(c *Thread) {
			childID = c.ID()
			c.Tick(1000)
			childClock = c.Clock()
		})
		th.Join(child)
		parentAfter = th.Clock()
	})
	if childID != 1 {
		t.Fatalf("child id = %d, want 1", childID)
	}
	// Child starts at parent's 41+1 = 42, ticks 1000 -> 1042.
	if childClock != 1042 {
		t.Fatalf("child clock = %d, want 1042", childClock)
	}
	// Parent: 41, spawn tick -> 42, join -> max(42, 1042)+1 = 1043.
	if parentAfter != 1043 {
		t.Fatalf("parent clock after join = %d, want 1043", parentAfter)
	}
}

func TestCondProducerConsumer(t *testing.T) {
	run := func(jitter int64) []int {
		rt := New(2)
		mu := rt.NewMutex()
		cv := rt.NewCond(mu)
		queue := 0
		var consumed []int
		rt.Run(func(th *Thread) {
			localJitter := rand.New(rand.NewSource(jitter + int64(th.ID())))
			if th.ID() == 0 { // producer
				for i := 0; i < 50; i++ {
					th.Tick(7)
					if localJitter.Intn(3) == 0 {
						time.Sleep(time.Duration(localJitter.Intn(20)) * time.Microsecond)
					}
					mu.Lock(th)
					queue++
					cv.Signal(th)
					mu.Unlock(th)
				}
			} else { // consumer
				for got := 0; got < 50; {
					th.Tick(3)
					mu.Lock(th)
					for queue == 0 {
						cv.Wait(th)
					}
					queue--
					got++
					consumed = append(consumed, got)
					mu.Unlock(th)
				}
			}
		})
		return consumed
	}
	ref := run(0)
	if len(ref) != 50 {
		t.Fatalf("consumed %d items", len(ref))
	}
	got := run(99)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("cond schedule diverged at %d", i)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	rt := New(4)
	mu := rt.NewMutex()
	cv := rt.NewCond(mu)
	ready := false
	var woke atomic.Int64
	rt.Run(func(th *Thread) {
		th.Tick(int64(th.ID() + 1))
		if th.ID() == 0 {
			// Give waiters a chance to block, then broadcast.
			time.Sleep(time.Millisecond)
			th.Tick(100000)
			mu.Lock(th)
			ready = true
			cv.Broadcast(th)
			mu.Unlock(th)
		} else {
			mu.Lock(th)
			for !ready {
				cv.Wait(th)
			}
			woke.Add(1)
			mu.Unlock(th)
		}
	})
	if woke.Load() != 3 {
		t.Fatalf("woke = %d, want 3", woke.Load())
	}
}

func TestAllocatorDeterministic(t *testing.T) {
	run := func() []int64 {
		rt := New(3)
		al := rt.NewAllocator(4096)
		var mu = rt.NewMutex()
		var offsets []int64
		rt.Run(func(th *Thread) {
			local := make([]int64, 0, 20)
			for i := 0; i < 20; i++ {
				th.Tick(int64(th.ID()*11 + i + 1))
				off := al.Alloc(th, int64(th.ID()+1)*8)
				if off < 0 {
					t.Errorf("arena exhausted")
					return
				}
				local = append(local, off)
				if i%3 == 2 {
					al.Free(th, local[0])
					local = local[1:]
				}
			}
			mu.Lock(th)
			offsets = append(offsets, local...)
			mu.Unlock(th)
			for _, off := range local {
				al.Free(th, off)
			}
		})
		return offsets
	}
	ref := run()
	got := run()
	if len(ref) != len(got) {
		t.Fatalf("allocation counts differ: %d vs %d", len(ref), len(got))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("allocation %d: offset %d vs %d", i, got[i], ref[i])
		}
	}
}

func TestAllocatorCoalesce(t *testing.T) {
	rt := New(1)
	al := rt.NewAllocator(100)
	rt.Run(func(th *Thread) {
		a := al.Alloc(th, 40)
		b := al.Alloc(th, 40)
		if a != 0 || b != 40 {
			t.Errorf("offsets a=%d b=%d", a, b)
		}
		if al.Alloc(th, 40) != -1 {
			t.Errorf("over-allocation should fail")
		}
		al.Free(th, a)
		al.Free(th, b)
		// After coalescing, an 80-word block must fit again.
		if got := al.Alloc(th, 80); got != 0 {
			t.Errorf("coalesced alloc = %d, want 0", got)
		}
	})
}

func TestRuntimeAccounting(t *testing.T) {
	rt := New(2)
	mu := rt.NewMutex()
	rt.Run(func(th *Thread) {
		th.Tick(int64(th.ID() + 1))
		mu.Lock(th)
		mu.Unlock(th)
	})
	if rt.Acquisitions() != 2 {
		t.Fatalf("acquisitions = %d, want 2", rt.Acquisitions())
	}
	if mu.Acquisitions() != 2 {
		t.Fatalf("mutex acquisitions = %d", mu.Acquisitions())
	}
	if rt.NumThreads() != 2 {
		t.Fatalf("threads = %d", rt.NumThreads())
	}
}

func TestUnlockNotHeldPanics(t *testing.T) {
	rt := New(1)
	mu := rt.NewMutex()
	rt.Run(func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Errorf("unlock of unheld mutex must panic")
			}
		}()
		mu.Unlock(th)
	})
}

func TestThreadString(t *testing.T) {
	rt := New(1)
	rt.Run(func(th *Thread) {
		th.Tick(7)
		if got := th.String(); got != fmt.Sprintf("det.Thread(id=0 clock=7)") {
			t.Errorf("String = %q", got)
		}
	})
}
