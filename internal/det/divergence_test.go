package det

import (
	"errors"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/trace"
)

// runLadder runs a three-thread lock ladder whose acquisition order is a pure
// function of logical clocks. seed >= 0 adds the PR 1 fault injector's
// scheduling perturbations; record/guard install the divergence machinery;
// perturb shifts thread 1's clocks mid-run (the stand-in for a data race
// changing the program's synchronization behavior); rounds controls how many
// acquisitions each thread performs.
func runLadder(t *testing.T, seed int64, record, guard *trace.Schedule, perturb bool, rounds int) error {
	t.Helper()
	rt := New(3)
	if seed >= 0 {
		rt.SetFaultInjector(NewFaultInjector(FaultInjectorConfig{
			Seed:         seed,
			GoschedStorm: 8,
			SleepJitter:  30 * time.Microsecond,
		}))
	}
	if record != nil {
		if err := rt.RecordSchedule(record); err != nil {
			t.Fatalf("RecordSchedule: %v", err)
		}
	}
	if guard != nil {
		if err := rt.SetReplayGuard(guard); err != nil {
			t.Fatalf("SetReplayGuard: %v", err)
		}
	}
	mu := rt.NewMutex()
	return rt.Run(func(th *Thread) {
		for i := 0; i < rounds; i++ {
			tick := int64(th.ID() + 1)
			if perturb && th.ID() == 1 && i == 2 {
				tick += 7
			}
			th.Tick(tick)
			mu.Lock(th)
			th.Tick(1)
			mu.Unlock(th)
		}
	})
}

// reference records the ladder's schedule once, unperturbed.
func reference(t *testing.T, rounds int) *trace.Schedule {
	t.Helper()
	s := trace.New()
	if err := runLadder(t, -1, s, nil, false, rounds); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if s.Len() != 3*rounds {
		t.Fatalf("reference recorded %d events, want %d", s.Len(), 3*rounds)
	}
	return s
}

// TestReplayGuardCleanAcrossSeeds: a faithful re-run matches the recorded
// reference under >= 20 perturbed seeds — the guard never false-positives on
// a race-free program, because the schedule is a function of clocks alone.
func TestReplayGuardCleanAcrossSeeds(t *testing.T) {
	ref := reference(t, 5)
	for seed := int64(0); seed < 21; seed++ {
		if err := runLadder(t, seed, nil, ref, false, 5); err != nil {
			t.Fatalf("seed %d: clean replay failed: %v", seed, err)
		}
	}
}

// TestDivergenceDeterministicAcrossSeeds is the acceptance property: a
// clock-shifted re-run diverges from the reference with an identical typed
// report — same event index, same expected and observed events — across
// >= 20 perturbed seeds.
func TestDivergenceDeterministicAcrossSeeds(t *testing.T) {
	ref := reference(t, 5)
	var first *diag.DivergenceError
	for seed := int64(0); seed < 21; seed++ {
		err := runLadder(t, seed, nil, ref, true, 5)
		if !errors.Is(err, diag.ErrDivergence) {
			t.Fatalf("seed %d: err = %v, want divergence", seed, err)
		}
		var de *diag.DivergenceError
		if !errors.As(err, &de) {
			t.Fatalf("seed %d: no *diag.DivergenceError in %v", seed, err)
		}
		if de.Want == nil || de.Got == nil {
			t.Fatalf("seed %d: mismatch report missing events: %+v", seed, de)
		}
		if first == nil {
			first = de
			continue
		}
		if de.Index != first.Index || *de.Want != *first.Want || *de.Got != *first.Got {
			t.Fatalf("seed %d: report differs:\n%v\nvs reference\n%v", seed, de, first)
		}
	}
}

// runSolo is a contention-free single-thread lock loop whose schedule prefix
// is identical regardless of rounds — the clean way to build length-mismatch
// divergences (the contended ladder's prefix shifts when a thread exits
// early, because exits change the grant interleaving).
func runSolo(t *testing.T, record, guard *trace.Schedule, rounds int) error {
	t.Helper()
	rt := New(1)
	if record != nil {
		if err := rt.RecordSchedule(record); err != nil {
			t.Fatalf("RecordSchedule: %v", err)
		}
	}
	if guard != nil {
		if err := rt.SetReplayGuard(guard); err != nil {
			t.Fatalf("SetReplayGuard: %v", err)
		}
	}
	mu := rt.NewMutex()
	return rt.Run(func(th *Thread) {
		for i := 0; i < rounds; i++ {
			th.Tick(1)
			mu.Lock(th)
			th.Tick(1)
			mu.Unlock(th)
		}
	})
}

// TestDivergenceUnderrun: a run that finishes with reference acquisitions
// outstanding fails with the length-mismatch form of the report.
func TestDivergenceUnderrun(t *testing.T) {
	ref := trace.New()
	if err := runSolo(t, ref, nil, 5); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	err := runSolo(t, nil, ref, 3)
	if !errors.Is(err, diag.ErrDivergence) {
		t.Fatalf("err = %v, want divergence", err)
	}
	var de *diag.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("no *diag.DivergenceError in %v", err)
	}
	if de.Got != nil {
		t.Fatalf("underrun report has an observed event: %+v", de.Got)
	}
	if de.GotLen != 3 || de.WantLen != 5 {
		t.Fatalf("lengths = %d/%d, want 3/5", de.GotLen, de.WantLen)
	}
}

// TestDivergenceOverrun: a run that acquires more than the reference recorded
// fails at the first extra acquisition.
func TestDivergenceOverrun(t *testing.T) {
	ref := trace.New()
	if err := runSolo(t, ref, nil, 3); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	err := runSolo(t, nil, ref, 5)
	if !errors.Is(err, diag.ErrDivergence) {
		t.Fatalf("err = %v, want divergence", err)
	}
	var de *diag.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("no *diag.DivergenceError in %v", err)
	}
	if de.Index != 3 || de.Want != nil || de.Got == nil {
		t.Fatalf("overrun report = %+v, want observed-only event at index 3", de)
	}
}

// TestDetectorToggleMidRunTyped: enabling or disabling the recorder or the
// guard while threads are running is a typed configuration misuse, in the
// style of misuse_test.go.
func TestDetectorToggleMidRunTyped(t *testing.T) {
	cases := []struct {
		name   string
		toggle func(rt *Runtime) error
	}{
		{"record-mid-run", func(rt *Runtime) error { return rt.RecordSchedule(trace.New()) }},
		{"record-off-mid-run", func(rt *Runtime) error { return rt.RecordSchedule(nil) }},
		{"guard-mid-run", func(rt *Runtime) error { return rt.SetReplayGuard(trace.New()) }},
		{"guard-off-mid-run", func(rt *Runtime) error { return rt.SetReplayGuard(nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := New(1)
			var cfgErr error
			if err := rt.Run(func(th *Thread) {
				th.Tick(1)
				cfgErr = tc.toggle(rt)
			}); err != nil {
				t.Fatalf("run: %v", err)
			}
			if !errors.Is(cfgErr, diag.ErrDetectorMidRun) {
				t.Fatalf("toggle err = %v, want ErrDetectorMidRun", cfgErr)
			}
			var me *diag.MisuseError
			if !errors.As(cfgErr, &me) {
				t.Fatalf("no *diag.MisuseError in %v", cfgErr)
			}
			if me.ThreadID != -1 {
				t.Fatalf("ThreadID = %d, want -1 (configuration-level)", me.ThreadID)
			}
		})
	}
}

// TestDetectorToggleIdleOK: the same toggles succeed while the runtime is
// idle, and an armed guard that matches to completion reports a full replay.
func TestDetectorToggleIdleOK(t *testing.T) {
	s := trace.New()
	run := func(record, guard *trace.Schedule) *Runtime {
		rt := New(2)
		if record != nil {
			if err := rt.RecordSchedule(record); err != nil {
				t.Fatalf("RecordSchedule idle: %v", err)
			}
		}
		if guard != nil {
			if err := rt.SetReplayGuard(guard); err != nil {
				t.Fatalf("SetReplayGuard idle: %v", err)
			}
		}
		mu := rt.NewMutex()
		if err := rt.Run(func(th *Thread) {
			th.Tick(int64(th.ID()) + 1)
			mu.Lock(th)
			th.Tick(1)
			mu.Unlock(th)
		}); err != nil {
			t.Fatalf("run: %v", err)
		}
		return rt
	}
	rec := run(s, nil)
	if err := rec.RecordSchedule(nil); err != nil {
		t.Fatalf("RecordSchedule(nil) idle: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("recorded %d events, want 2", s.Len())
	}
	rep := run(nil, s)
	matched, expected := rep.ReplayPosition()
	if matched != expected || matched != s.Len() {
		t.Fatalf("replay position %d/%d, want full match of %d", matched, expected, s.Len())
	}
}
