package core

import "repro/internal/ir"

// Optimization 2b — lossy if-triangle shift (paper Figure 9).
//
// Pattern (paper Figure 10): an upper block (if.end21) branches to a middle
// block (lor.lhs.false23, "swSucc") and a merge block (if.then28, "endSucc");
// the middle block also reaches the merge block, and possibly other targets
// (for.inc). Merging the upper and lower clocks into a single update is then
// *not* precise: paths leaving through the middle block's other successor
// see a divergence equal to the moved clock. The paper admits the rewrite
// when that divergence is below one tenth of the affected path's clock.
//
// Direction: by default the lower block's clock moves *up* (charged ahead of
// time). It moves *down* instead when (a) the upper block sits at a higher
// loop depth — saving updates on the hotter path — or (b) the lower clock
// exceeds the upper and the middle block has multiple successors, where an
// upward move would diverge more.

// applyOpt2b runs one DFS pass of Optimization 2b over f.
func (p *passCtx) applyOpt2b(f *ir.Func) int {
	moves := 0
	preds := ir.Preds(f)
	li := ir.NewLoopInfo(f)
	visited := make(map[*ir.Block]bool, len(f.Blocks))
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		if visited[b] {
			return
		}
		visited[b] = true
		if sw, end, ok := p.meetsOpt2bRequirements(b, preds, li); ok {
			if p.modifyOpt2bClocks(b, sw, end, li) {
				moves++
			}
		}
		for _, s := range b.Term.Succs {
			walk(s)
		}
	}
	if f.Entry() != nil {
		walk(f.Entry())
	}
	return moves
}

// meetsOpt2bRequirements detects the triangle: b has exactly two distinct
// successors, one of which (sw) reaches the other (end) among its own
// successors; sw is reached only from b; end is reached only from b and sw;
// all three blocks are clockable; end is not a loop header.
func (p *passCtx) meetsOpt2bRequirements(b *ir.Block, preds [][]*ir.Block, li *ir.LoopInfo) (sw, end *ir.Block, ok bool) {
	if b.Unclockable {
		return nil, nil, false
	}
	succs := distinctSuccs(b)
	if len(succs) != 2 {
		return nil, nil, false
	}
	try := func(mid, merge *ir.Block) bool {
		if mid == b || merge == b || mid == merge {
			return false
		}
		if mid.Unclockable || merge.Unclockable || li.IsHeader(merge) || li.IsHeader(mid) {
			return false
		}
		found := false
		for _, ms := range distinctSuccs(mid) {
			if ms == merge {
				found = true
			}
		}
		if !found {
			return false
		}
		if len(preds[mid.Index]) != 1 {
			return false
		}
		for _, pr := range preds[merge.Index] {
			if pr != b && pr != mid {
				return false
			}
		}
		return true
	}
	if try(succs[0], succs[1]) {
		return succs[0], succs[1], true
	}
	if try(succs[1], succs[0]) {
		return succs[1], succs[0], true
	}
	return nil, nil, false
}

// modifyOpt2bClocks picks a direction, checks divergence, and moves the
// clock. Reports whether a move happened.
func (p *passCtx) modifyOpt2bClocks(upper, middle, lower *ir.Block, li *ir.LoopInfo) bool {
	moveDown := false
	if li.Depth(upper) > li.Depth(lower) {
		moveDown = true
	} else if lower.Clock > upper.Clock && len(distinctSuccs(middle)) > 1 {
		moveDown = true
	}
	var moved int64
	if moveDown {
		moved = upper.Clock
	} else {
		moved = lower.Clock
	}
	if moved == 0 {
		return false
	}
	// When the middle block's only successor is the merge, every path from
	// the upper block reaches the merge exactly once and the shift is
	// precise — the paper's "that optimization, like part a, would have been
	// precise" case — so no divergence test applies.
	precise := len(distinctSuccs(middle)) == 1
	if !precise {
		// Divergence seen by paths that go upper→middle→(other successor):
		// they lose `moved` when it goes down, or gain it when it goes up,
		// relative to the clock of the whole affected path. Inside a loop
		// the affected path is the loop iteration (the paper's example
		// computes 1/93 against the full for.inc path, §IV-B2); otherwise
		// the triangle region itself.
		var pathClock int64
		if l := li.InnermostLoop(middle); l != nil {
			for b := range l.Blocks {
				pathClock += b.Clock
			}
		} else {
			pathClock = upper.Clock + middle.Clock + otherSuccClock(middle, lower)
		}
		if !moveDown {
			pathClock += moved
		}
		if pathClock <= 0 || float64(moved)/float64(pathClock) >= p.opt.O2bMaxDivergence {
			return false
		}
	}
	if moveDown {
		lower.Clock += upper.Clock
		upper.Clock = 0
	} else {
		upper.Clock += lower.Clock
		lower.Clock = 0
	}
	return true
}

// otherSuccClock returns the clock of the middle block's non-merge successor
// (the escape path used in the divergence estimate); zero when the middle
// block only reaches the merge.
func otherSuccClock(middle, merge *ir.Block) int64 {
	var c int64
	for _, s := range distinctSuccs(middle) {
		if s != merge {
			c += s.Clock
		}
	}
	return c
}
