package core

import (
	"errors"

	"repro/internal/estimates"
	"repro/internal/ir"
)

// Optimization 1 — Function Clocking (paper Figure 4).
//
// A function is clockable when it has no loops, no synchronization, and no
// calls to unclocked functions, and the accumulated clocks of all its
// entry→return paths agree within the paper's criteria (range ≤ mean/RangeDiv,
// σ ≤ mean/StdDiv). Clockable functions get their whole mean cost charged at
// the call site before the call executes — the "ahead of time" increment that
// §V-B shows matters so much for deterministic-execution overhead.

// clockabilityAnalysis runs the fixpoint of UpdateClockableFuncList and
// returns the map from clockable function name to its mean clock.
func (p *passCtx) clockabilityAnalysis() map[string]int64 {
	clockable := map[string]int64{}
	if !p.opt.O1 {
		return clockable
	}
	roots := map[string]bool{}
	for _, r := range p.opt.Roots {
		roots[r] = true
	}
	// Spawned entry functions are thread roots too: their clocks must
	// advance while the thread runs, so they are never clocked.
	for _, f := range p.m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpSpawn {
					roots[b.Instrs[i].Callee] = true
				}
			}
		}
	}
	for modified := true; modified; {
		modified = false
		for _, f := range p.m.Funcs {
			if roots[f.Name] {
				continue
			}
			if _, done := clockable[f.Name]; done {
				continue
			}
			avg, ok := p.isClockable(f, clockable)
			if ok {
				clockable[f.Name] = avg
				modified = true
			}
		}
	}
	return clockable
}

// isClockable implements the paper's ISCLOCKABLE (Figure 4, lines 1-13),
// extended with the structural requirements implied by the runtime: a
// clockable function must not contain synchronization operations (its whole
// clock is charged before it runs, so no lock inside could be sequenced).
func (p *passCtx) isClockable(f *ir.Func, clockable map[string]int64) (avg int64, ok bool) {
	if len(f.Blocks) == 0 || f.HasLoops() {
		return 0, false
	}
	clockOf := func(b *ir.Block) (int64, bool) {
		return p.analysisBlockClock(b, clockable)
	}
	clocks, err := ir.FunctionPathClocks(f, clockOf)
	if err != nil {
		// ErrUnclocked, ErrHasLoop and ErrTooManyPaths all mean "not
		// clockable"; anything else is a structural bug.
		if errors.Is(err, ir.ErrUnclocked) || errors.Is(err, ir.ErrHasLoop) ||
			errors.Is(err, ir.ErrTooManyPaths) {
			return 0, false
		}
		return 0, false
	}
	st := ir.Stats(clocks)
	if !p.meetsCriteria(st) {
		return 0, false
	}
	return int64(st.Mean), true
}

// meetsCriteria applies the configured range/σ divisors.
func (p *passCtx) meetsCriteria(st ir.ClockStats) bool {
	if st.NPaths == 0 || st.Mean <= 0 {
		return false
	}
	if float64(st.Range) > st.Mean/p.opt.RangeDiv {
		return false
	}
	if st.Std > st.Mean/p.opt.StdDiv {
		return false
	}
	return true
}

// analysisBlockClock returns the statically-summarizable clock of a block:
// its own instruction cost plus the mean of every clocked callee and the
// folded cost of constant-argument builtins. It fails (ok=false) when the
// block contains synchronization, a call to an unclocked function, or a
// dynamic builtin whose size argument is not a constant.
func (p *passCtx) analysisBlockClock(b *ir.Block, clockable map[string]int64) (int64, bool) {
	total := p.cm.BlockCost(b)
	for i := range b.Instrs {
		ins := &b.Instrs[i]
		switch ins.Op {
		case ir.OpLock, ir.OpUnlock, ir.OpBarrier, ir.OpSpawn, ir.OpJoin:
			return 0, false
		case ir.OpCall:
			c, kind := p.classifyCall(ins, clockable)
			switch kind {
			case callClocked:
				total += c
			default:
				return 0, false
			}
		}
	}
	return total, true
}

// callKind classifies a call site for instrumentation purposes.
type callKind int

const (
	// callClocked: callee cost is statically known (clockable function or
	// constant-argument builtin) and charged at the call site.
	callClocked callKind = iota
	// callDynamicBuiltin: builtin whose cost depends on a register argument;
	// charged at the call site with a dynamic clock update.
	callDynamicBuiltin
	// callUnclocked: ordinary instrumented function; callee carries its own
	// clock updates, the caller charges only call overhead.
	callUnclocked
)

// classifyCall returns the call-site clock charge (for callClocked) and the
// call kind. The charge excludes CallOverhead, which BlockCost already
// counts.
func (p *passCtx) classifyCall(ins *ir.Instr, clockable map[string]int64) (int64, callKind) {
	if mean, ok := clockable[ins.Callee]; ok {
		return mean, callClocked
	}
	if p.m.Func(ins.Callee) != nil {
		return 0, callUnclocked
	}
	if e, ok := p.est.Lookup(ins.Callee); ok {
		if !e.Dynamic() {
			return e.Eval(nil), callClocked
		}
		if e.ArgIndex < len(ins.Args) && ins.Args[e.ArgIndex].IsImm {
			// Constant size argument folds to a static charge.
			args := make([]int64, len(ins.Args))
			for i, a := range ins.Args {
				if a.IsImm {
					args[i] = a.Imm
				}
			}
			return e.Eval(args), callClocked
		}
		return 0, callDynamicBuiltin
	}
	// Unknown external function with no estimate: the paper's fallback is to
	// ignore it ("One way is to ignore them", §III-B).
	return 0, callClocked
}

// estimateFor exposes the builtin estimate used by instrumentation.
func (p *passCtx) estimateFor(name string) (estimates.Estimate, bool) {
	return p.est.Lookup(name)
}
