package core_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/splash"
)

// accessProfile returns the per-function multiset of memory accesses as a
// sorted, comparable slice of "func/op sym xN" lines. Operand registers are
// deliberately excluded: optimizations may renumber registers, but they must
// never add, drop, reorder-across-functions or retarget a load or store —
// the race detector's shadow state is keyed by (symbol, address), so any
// change here would silently change what the detector observes.
func accessProfile(m *ir.Module) []string {
	counts := map[string]int{}
	for _, fn := range m.Funcs {
		for _, b := range fn.Blocks {
			for _, ins := range b.Instrs {
				switch ins.Op {
				case ir.OpLoad:
					counts[fn.Name+"/load "+ins.Sym]++
				case ir.OpStore:
					counts[fn.Name+"/store "+ins.Sym]++
				}
			}
		}
	}
	out := make([]string, 0, len(counts))
	for k, n := range counts {
		out = append(out, fmt.Sprintf("%s x%d", k, n))
	}
	sort.Strings(out)
	return out
}

// TestInstrumentationPreservesAccesses: across every workload and every
// optimization preset, the clock-insertion pass preserves the per-function
// load/store multiset exactly. This is the contract the race detector's
// instrumentation point in the interpreter relies on.
func TestInstrumentationPreservesAccesses(t *testing.T) {
	presets := []struct {
		name string
		opt  core.Options
	}{
		{"none", core.OptNone},
		{"O1", core.OptO1},
		{"O2", core.OptO2},
		{"O3", core.OptO3},
		{"O4", core.OptO4},
		{"all", core.OptAll},
	}
	for _, name := range splash.Names() {
		b, err := splash.New(name, 4)
		if err != nil {
			t.Fatalf("splash.New(%s): %v", name, err)
		}
		want := accessProfile(b.Module)
		for _, p := range presets {
			t.Run(name+"/"+p.name, func(t *testing.T) {
				m := b.Module.Clone()
				opt := p.opt
				opt.Roots = []string{b.Entry}
				if _, err := core.Instrument(m, nil, nil, opt); err != nil {
					t.Fatalf("instrument: %v", err)
				}
				got := accessProfile(m)
				if len(got) != len(want) {
					t.Fatalf("access profile size changed: %d entries, want %d\ngot:  %v\nwant: %v",
						len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("access profile[%d] = %q, want %q", i, got[i], want[i])
					}
				}
			})
		}
	}
}
