package core

import "repro/internal/ir"

// Optimization 4 — Loops (paper §IV-D).
//
// Loop increment blocks (the `for.inc` of a rotated loop) execute once per
// iteration right before jumping back to the header. When such a back-edge
// source has a small clock — below the threshold and below the header's
// clock — its clock is merged into the header and its update removed: the
// header charges it at the start of the next iteration instead, eliminating
// one update per iteration. The move is slightly imprecise (the header also
// runs for the final, failing iteration test), which is why the threshold
// keeps it to small blocks.

// applyOpt4 runs Optimization 4 on f; returns the number of merges.
func (p *passCtx) applyOpt4(f *ir.Func) int {
	moves := 0
	li := ir.NewLoopInfo(f)
	for _, be := range li.BackEdges {
		src, hdr := be.From, be.To
		if src == hdr { // self loop: nothing to merge into
			continue
		}
		if src.Unclockable || hdr.Unclockable {
			continue
		}
		if src.Clock <= 0 {
			continue
		}
		if src.Clock >= p.opt.O4Threshold {
			continue
		}
		if src.Clock >= hdr.Clock {
			continue
		}
		hdr.Clock += src.Clock
		src.Clock = 0
		moves++
	}
	return moves
}
