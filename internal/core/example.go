package core

import "repro/internal/ir"

// WorkedExample builds a function in the image of the paper's running
// example (Figure 3, taken from Radiosity's BF refinement code), containing
// one instance of every structure the optimizations target:
//
//   - a call to a clockable helper (the paper's intersection_type — the
//     Function Clocking example of Figure 5);
//   - an if/else diamond whose merge can be pushed up and whose minimum arm
//     can be hoisted (Optimization 2a, Figures 7–8);
//   - the Figure 10 triangle (if.end21 → lor.lhs.false23 → if.then28) inside
//     a loop, with the upper block at higher loop depth (Optimization 2b);
//   - a four-path region with clocks {37, 38, 38, 29} that Optimization 3
//     averages to 35 (§IV-C's worked numbers);
//   - a small for.inc back-edge block that Optimization 4 merges into the
//     loop header.
//
// cmd/detviz prints this function after each optimization stage,
// reproducing the flow of the paper's Figures 3 → 13.
func WorkedExample() *ir.Module {
	mb := ir.NewModule("worked_example")
	mb.Global("patches", 256)

	// The clockable helper: balanced arms, loop-free.
	h := mb.Func("intersection_type", "p")
	hp := h.Reg("p")
	hy := h.Reg("y")
	hc := h.Reg("c")
	h.Block("entry").
		Bin(ir.OpAnd, hc, ir.R(hp), ir.Imm(1)).
		Br(ir.R(hc), "then", "else")
	tb := h.Block("then")
	for i := 0; i < 6; i++ {
		tb.Bin(ir.OpAdd, hy, ir.R(hp), ir.Imm(int64(i)))
	}
	tb.Jmp("merge")
	sb := h.Block("else")
	for i := 0; i < 6; i++ {
		sb.Bin(ir.OpSub, hy, ir.R(hp), ir.Imm(int64(i)))
	}
	sb.Jmp("merge")
	h.Block("merge").Ret(ir.R(hy))

	f := mb.Func("bf_refine", "x")
	x := f.Reg("x")
	c := f.Reg("c")
	v := f.Reg("v")
	i := f.Reg("i")
	acc := f.Reg("acc")

	// Entry calls the helper (Optimization 1 charges its mean here).
	eb := f.Block("entry")
	eb.Call(v, "intersection_type", ir.R(x))
	eb.Bin(ir.OpAdd, acc, ir.R(v), ir.Imm(1))
	eb.Jmp("if.end")

	// Optimization 3's region: four paths with clocks {37, 38, 38, 29}.
	// Block costs are padded so the totals land exactly on §IV-C's numbers.
	f.Block("if.end").Bin(ir.OpLT, c, ir.R(x), ir.Imm(8)).Br(ir.R(c), "if.then.i", "if.else.i")
	pad := func(name string, n int, next string) {
		b := f.Block(name)
		for k := 0; k < n; k++ {
			b.Bin(ir.OpAdd, acc, ir.R(acc), ir.Imm(int64(k+1)))
		}
		if next == "" {
			return
		}
		b.Jmp(next)
	}
	f.Block("if.then.i").Bin(ir.OpLT, c, ir.R(x), ir.Imm(4)).Br(ir.R(c), "if.then29.i", "if.then35.i")
	f.Block("if.else.i").Bin(ir.OpLT, c, ir.R(x), ir.Imm(12)).Br(ir.R(c), "if.else33", "if.else39")
	// Path totals: if.end(2) + arm(2) + leaf + o3.merge(1):
	//   if.then29.i: 37-5=32 pad instrs -> 31 adds + jmp.
	pad("if.then29.i", 31, "o3.merge") // 2+2+32+1 = 37
	pad("if.then35.i", 32, "o3.merge") // 38
	pad("if.else33", 32, "o3.merge")   // 38
	pad("if.else39", 23, "o3.merge")   // 29
	f.Block("o3.merge").Jmp("for.cond")

	// Loop with the Figure 10 triangle inside (Optimization 2b: if.end21 at
	// loop depth 1 is the upper block) and a small for.inc (Optimization 4).
	f.Block("for.cond").Bin(ir.OpLT, c, ir.R(i), ir.Imm(16)).Br(ir.R(c), "if.end21", "loop.exit")
	f.Block("if.end21").Bin(ir.OpAnd, c, ir.R(x), ir.Imm(3)).Br(ir.R(c), "lor.lhs.false23", "if.then28")
	f.Block("lor.lhs.false23").
		Bin(ir.OpAnd, c, ir.R(acc), ir.Imm(1)).
		Br(ir.R(c), "if.then28", "for.inc")
	b28 := f.Block("if.then28")
	for k := 0; k < 12; k++ {
		b28.Bin(ir.OpAdd, acc, ir.R(acc), ir.Imm(int64(k)))
	}
	b28.Jmp("for.inc")
	f.Block("for.inc").Bin(ir.OpAdd, i, ir.R(i), ir.Imm(1)).Jmp("for.cond")

	// Final diamond for Optimization 2a.
	f.Block("loop.exit").Bin(ir.OpGT, c, ir.R(acc), ir.Imm(100)).Br(ir.R(c), "d.then", "d.else")
	pad("d.then", 3, "d.merge")
	pad("d.else", 9, "d.merge")
	dm := f.Block("d.merge")
	dm.Bin(ir.OpAdd, acc, ir.R(acc), ir.R(v))
	dm.Ret(ir.R(acc))

	mm := mb.Func("main")
	r := mm.Reg("r")
	mm.Block("entry").Call(r, "bf_refine", ir.Imm(7)).Ret(ir.R(r))
	return mb.M
}
