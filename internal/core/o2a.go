package core

import "repro/internal/ir"

// Optimization 2a — precise conditional-block rearrangement (paper Figure 6).
//
// Two rewrites, both exact (every entry→exit path keeps its total clock):
//
//   - Condition node: a block with two or more successors, each of which has
//     it as sole predecessor, absorbs the minimum successor clock: the min is
//     subtracted from every successor and added to the parent. This both
//     eliminates updates (a successor reaching zero loses its clockadd) and
//     moves clock charging earlier.
//
//   - Merge node: if all predecessors of a merge block have that merge block
//     as their only successor, the merge block's clock is pushed up into the
//     predecessors (cascading upward while the shape repeats). Loop headers
//     are excluded — pushing a header's clock into the latch would charge it
//     on the wrong iteration.
//
// The function-level driver repeats the DFS until a pass makes no change,
// matching APPLYOPT2A's modified loop.

// applyOpt2a runs Optimization 2a on f; returns the number of clock moves.
func (p *passCtx) applyOpt2a(f *ir.Func) int {
	moves := 0
	for iter := 0; iter < maxOptIterations; iter++ {
		preds := ir.Preds(f)
		li := ir.NewLoopInfo(f)
		visited := make(map[*ir.Block]bool, len(f.Blocks))
		modified := false
		var walk func(b *ir.Block)
		walk = func(b *ir.Block) {
			if visited[b] {
				return
			}
			visited[b] = true
			if p.meetsOpt2aCondNodeRequirements(b, preds) {
				succs := distinctSuccs(b)
				min := succs[0].Clock
				for _, s := range succs[1:] {
					min = minInt64(min, s.Clock)
				}
				if min > 0 {
					b.Clock += min
					for _, s := range succs {
						s.Clock -= min
					}
					modified = true
					moves++
				}
			} else if p.meetsOpt2aMergeNodeRequirements(b, preds, li) {
				if b.Clock > 0 {
					modified = true
					moves++
				}
				p.pushClockUp(b, preds, li)
			}
			for _, s := range b.Term.Succs {
				walk(s)
			}
		}
		if f.Entry() != nil {
			walk(f.Entry())
		}
		if !modified {
			break
		}
	}
	return moves
}

// maxOptIterations is a defensive bound on optimization fixpoint loops.
const maxOptIterations = 1000

// distinctSuccs returns the unique successors of b in terminator order.
func distinctSuccs(b *ir.Block) []*ir.Block {
	var out []*ir.Block
	seen := map[*ir.Block]bool{}
	for _, s := range b.Term.Succs {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// meetsOpt2aCondNodeRequirements checks the condition-node shape: at least
// two distinct successors, each reached only from b (so b dominates them and
// they are not merge blocks), no unclocked calls anywhere involved, and no
// self loops.
func (p *passCtx) meetsOpt2aCondNodeRequirements(b *ir.Block, preds [][]*ir.Block) bool {
	if b.Unclockable {
		return false
	}
	succs := distinctSuccs(b)
	if len(succs) < 2 {
		return false
	}
	for _, s := range succs {
		if s == b || s.Unclockable {
			return false
		}
		if len(preds[s.Index]) != 1 {
			return false // merge block: not dominated solely through b
		}
	}
	return true
}

// meetsOpt2aMergeNodeRequirements checks the merge-node shape: two or more
// predecessors, each of which has b as its only successor, none unclockable,
// and b is not a loop header.
func (p *passCtx) meetsOpt2aMergeNodeRequirements(b *ir.Block, preds [][]*ir.Block, li *ir.LoopInfo) bool {
	if b.Unclockable || li.IsHeader(b) {
		return false
	}
	bp := preds[b.Index]
	if len(bp) < 2 {
		return false
	}
	for _, pr := range bp {
		if pr == b || pr.Unclockable {
			return false
		}
		ds := distinctSuccs(pr)
		if len(ds) != 1 || ds[0] != b {
			return false
		}
	}
	return true
}

// pushClockUp implements PUSHCLOCKUP (Figure 6, lines 24-34): move the merge
// block's clock into every predecessor, cascading upward while predecessors
// themselves meet the merge-node shape.
func (p *passCtx) pushClockUp(b *ir.Block, preds [][]*ir.Block, li *ir.LoopInfo) {
	clock := b.Clock
	if clock == 0 {
		return
	}
	b.Clock = 0
	for _, pr := range preds[b.Index] {
		pr.Clock += clock
		if p.meetsOpt2aMergeNodeRequirements(pr, preds, li) {
			p.pushClockUp(pr, preds, li)
		}
	}
}
