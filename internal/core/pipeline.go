package core

import (
	"fmt"
	"sort"

	"repro/internal/estimates"
	"repro/internal/ir"
)

// passCtx carries the state of one instrumentation run.
type passCtx struct {
	m         *ir.Module
	cm        *ir.CostModel
	est       *estimates.Table
	opt       Options
	clockable map[string]int64
}

// Result reports what the pass did; the harness uses it for the "Clockable
// Functions" row of Table I and for sanity checks.
type Result struct {
	// Clockable maps each clocked function (Optimization 1) to its mean clock.
	Clockable map[string]int64
	// StaticClockAdds counts materialized constant clock updates.
	StaticClockAdds int
	// DynamicClockAdds counts materialized size-dependent builtin updates.
	DynamicClockAdds int
	// TotalStaticClock is the sum of all materialized constant clock values.
	TotalStaticClock int64
	// BlocksSplit counts blocks split around unclocked calls.
	BlocksSplit int
	// OptMoves counts clock relocations per optimization name ("O2a", ...).
	OptMoves map[string]int
}

// ClockableNames returns the clocked functions sorted by name.
func (r *Result) ClockableNames() []string {
	names := make([]string, 0, len(r.Clockable))
	for n := range r.Clockable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Instrument runs the DetLock pass over m in place: it inserts clockadd
// instructions realizing the logical clock of §III-A, applying the
// optimizations selected in opt. The module must verify against the builtin
// table beforehand. cm and est may be nil for defaults.
func Instrument(m *ir.Module, cm *ir.CostModel, est *estimates.Table, opt Options) (*Result, error) {
	if cm == nil {
		cm = ir.DefaultCostModel()
	}
	if est == nil {
		est = estimates.DefaultTable()
	}
	opt = opt.Defaults()
	if err := m.Verify(est.Has); err != nil {
		return nil, fmt.Errorf("core: module does not verify: %w", err)
	}
	p := &passCtx{m: m, cm: cm, est: est, opt: opt}
	res := &Result{OptMoves: map[string]int{}}

	// Optimization 1: fixpoint of the clockable-function list.
	p.clockable = p.clockabilityAnalysis()
	res.Clockable = p.clockable

	// Split blocks around unclocked calls so every remaining block carries
	// one clock value (§III-A).
	res.BlocksSplit = p.splitAroundUnclockedCalls()

	// Base block clocks from the cost model; clocked functions' bodies carry
	// no clocks (their mean is charged at call sites).
	p.assignBaseClocks()

	// Block-level optimizations, in the paper's order.
	for _, f := range p.m.Funcs {
		if _, isClocked := p.clockable[f.Name]; isClocked {
			continue
		}
		if opt.O2a {
			res.OptMoves["O2a"] += p.applyOpt2a(f)
		}
		if opt.O2b {
			res.OptMoves["O2b"] += p.applyOpt2b(f)
		}
		if opt.O3 {
			res.OptMoves["O3"] += p.applyOpt3(f)
		}
		if opt.O4 {
			res.OptMoves["O4"] += p.applyOpt4(f)
		}
	}

	// Materialize clockadd instructions.
	p.materialize(res)
	if err := m.Verify(est.Has); err != nil {
		return nil, fmt.Errorf("core: instrumented module does not verify: %w", err)
	}
	return res, nil
}

// AnalyzeOnly runs the pipeline through the optimizations but does not
// materialize clockadds; cmd/detviz uses it to print per-stage block clocks.
func AnalyzeOnly(m *ir.Module, cm *ir.CostModel, est *estimates.Table, opt Options) (*Result, error) {
	if cm == nil {
		cm = ir.DefaultCostModel()
	}
	if est == nil {
		est = estimates.DefaultTable()
	}
	opt = opt.Defaults()
	if err := m.Verify(est.Has); err != nil {
		return nil, fmt.Errorf("core: module does not verify: %w", err)
	}
	p := &passCtx{m: m, cm: cm, est: est, opt: opt}
	res := &Result{OptMoves: map[string]int{}}
	p.clockable = p.clockabilityAnalysis()
	res.Clockable = p.clockable
	res.BlocksSplit = p.splitAroundUnclockedCalls()
	p.assignBaseClocks()
	for _, f := range p.m.Funcs {
		if _, isClocked := p.clockable[f.Name]; isClocked {
			continue
		}
		if opt.O2a {
			res.OptMoves["O2a"] += p.applyOpt2a(f)
		}
		if opt.O2b {
			res.OptMoves["O2b"] += p.applyOpt2b(f)
		}
		if opt.O3 {
			res.OptMoves["O3"] += p.applyOpt3(f)
		}
		if opt.O4 {
			res.OptMoves["O4"] += p.applyOpt4(f)
		}
	}
	return res, nil
}

// splitAroundUnclockedCalls isolates each call to an unclocked function —
// and each synchronization operation, which in the paper is a call to the
// DetLock runtime (det_mutex_lock etc.) — in its own block, so that all
// other blocks are free of unclocked calls and can participate in the
// optimizations. Mirrors the paper's block splitting: the block keeps its
// name up to the call; the remainder becomes "split.<name>".
//
// Splitting around sync operations also matters for Figure 15's placement
// ablation: with the lock isolated, every update of the blocks preceding it
// executes before the thread waits — under either placement — so
// end-of-block placement purely delays the publication other threads wait
// on, without also deflating the waiter's own clock.
func (p *passCtx) splitAroundUnclockedCalls() int {
	split := 0
	for _, f := range p.m.Funcs {
		// Iterate over a snapshot; splitting appends blocks.
		for bi := 0; bi < len(f.Blocks); bi++ {
			b := f.Blocks[bi]
			for i := 0; i < len(b.Instrs); i++ {
				ins := &b.Instrs[i]
				switch ins.Op {
				case ir.OpLock, ir.OpUnlock, ir.OpBarrier, ir.OpSpawn, ir.OpJoin:
					// sync op: isolate like an unclocked call
				case ir.OpCall:
					if _, kind := p.classifyCall(ins, p.clockable); kind != callUnclocked {
						continue
					}
				default:
					continue
				}
				if i > 0 {
					// Move the call (and everything after) into a new block;
					// re-examine it on a later iteration of the outer loop.
					f.SplitAt(b, i, "call."+b.Name)
					split++
					break
				}
				if len(b.Instrs) > 1 {
					// Call is first: split the tail off after it.
					f.SplitAt(b, 1, "split."+b.Name)
					split++
				}
				break
			}
		}
	}
	return split
}

// assignBaseClocks computes every block's clock from the cost model plus
// call-site charges, and marks blocks containing unclocked calls or dynamic
// builtins as unclockable for the optimizations.
func (p *passCtx) assignBaseClocks() {
	for _, f := range p.m.Funcs {
		_, isClocked := p.clockable[f.Name]
		for _, b := range f.Blocks {
			b.Clock = 0
			b.Unclockable = false
			if isClocked {
				continue // body carries no clocks; mean charged at call sites
			}
			clock := p.cm.BlockCost(b)
			for i := range b.Instrs {
				ins := &b.Instrs[i]
				switch ins.Op {
				case ir.OpLock, ir.OpUnlock, ir.OpBarrier, ir.OpSpawn, ir.OpJoin:
					// Sync operations are runtime calls: the optimizations
					// must not move clocks across them.
					b.Unclockable = true
					continue
				}
				if ins.Op != ir.OpCall {
					continue
				}
				c, kind := p.classifyCall(ins, p.clockable)
				switch kind {
				case callClocked:
					clock += c
				case callDynamicBuiltin:
					// Static part of the estimate; dynamic part is emitted at
					// materialization as a scaled clockadd.
					if e, ok := p.estimateFor(ins.Callee); ok {
						clock += e.Base
					}
					b.Unclockable = true
				case callUnclocked:
					b.Unclockable = true
				}
			}
			b.Clock = clock
		}
	}
}

// materialize emits the clockadd instructions for every non-zero block clock
// and for every dynamic builtin call site.
func (p *passCtx) materialize(res *Result) {
	for _, f := range p.m.Funcs {
		if _, isClocked := p.clockable[f.Name]; isClocked {
			continue
		}
		for _, b := range f.Blocks {
			var out []ir.Instr
			static := b.Clock
			emitStatic := func() {
				if static > 0 {
					out = append(out, ir.Instr{Op: ir.OpClockAdd, A: ir.Imm(static)})
					res.StaticClockAdds++
					res.TotalStaticClock += static
					static = 0
				}
			}
			if !p.opt.PlaceAtEnd {
				emitStatic()
			}
			for i := range b.Instrs {
				ins := b.Instrs[i]
				if ins.Op == ir.OpCall {
					if _, kind := p.classifyCall(&ins, p.clockable); kind == callDynamicBuiltin {
						if e, ok := p.estimateFor(ins.Callee); ok && e.ArgIndex < len(ins.Args) {
							// Charge the size-dependent part right before the
							// call (ahead of time); the constant part is in
							// the block's static clock.
							out = append(out, ir.Instr{
								Op:    ir.OpClockAdd,
								A:     ir.Imm(0),
								B:     ins.Args[e.ArgIndex],
								Scale: e.Scale,
							})
							res.DynamicClockAdds++
						}
					}
				}
				out = append(out, ins)
			}
			if p.opt.PlaceAtEnd {
				emitStatic()
			}
			b.Instrs = out
		}
	}
}

// minInt64 returns the smaller of a and b.
func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
