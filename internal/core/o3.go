package core

import "repro/internal/ir"

// Optimization 3 — Averaging of Clocks (paper Figure 11).
//
// A specialized Function Clocking applied inside a function: for a branch
// block, enumerate the clocks of all paths through the region it dominates —
// stopping at back edges, at blocks with unclocked calls, and below merge
// nodes with successors not dominated by the region root. If the paths agree
// under the isClockable criteria, the root is assigned the mean and every
// block the paths touched loses its clock. The search then resumes from the
// successors of the touched blocks.

// applyOpt3 runs Optimization 3 over f; returns the number of regions
// averaged.
func (p *passCtx) applyOpt3(f *ir.Func) int {
	if f.Entry() == nil {
		return 0
	}
	moves := 0
	dt := ir.NewDomTree(f)
	li := ir.NewLoopInfo(f)
	visited := make(map[*ir.Block]bool, len(f.Blocks))
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		if visited[b] {
			return
		}
		visited[b] = true
		if p.meetsOpt3Requirements(b, li) {
			clocks, touched, ok := p.opt3PathClocks(b, dt, li)
			if ok {
				st := ir.Stats(clocks)
				if p.meetsCriteria(st) && len(touched) > 1 {
					avg := int64(st.Mean)
					for tb := range touched {
						tb.Clock = 0
					}
					b.Clock = avg
					moves++
					// Resume from successors of touched blocks outside the
					// region (Figure 11, lines 13-16).
					for tb := range touched {
						visited[tb] = true
						for _, s := range tb.Term.Succs {
							if !touched[s] {
								walk(s)
							}
						}
					}
					return
				}
			}
		}
		for _, s := range b.Term.Succs {
			walk(s)
		}
	}
	walk(f.Entry())
	return moves
}

// meetsOpt3Requirements: the region root must be a clockable branch block
// (averaging a straight line is Optimization 2a's job) and not a loop
// header, whose region would include its own back edge.
func (p *passCtx) meetsOpt3Requirements(b *ir.Block, li *ir.LoopInfo) bool {
	if b.Unclockable || li.IsHeader(b) {
		return false
	}
	return len(distinctSuccs(b)) >= 2
}

// opt3PathClocks enumerates region path clocks from root. A path extends
// into a successor only when the successor is dominated by root, is not
// reached via a back edge, and is clockable; otherwise the path ends at the
// current block (inclusive). Returns the path clocks and the set of blocks
// included in any path.
func (p *passCtx) opt3PathClocks(root *ir.Block, dt *ir.DomTree, li *ir.LoopInfo) ([]int64, map[*ir.Block]bool, bool) {
	touched := map[*ir.Block]bool{}
	var clocks []int64
	onStack := map[*ir.Block]bool{}
	ok := true
	var walk func(b *ir.Block, acc int64)
	walk = func(b *ir.Block, acc int64) {
		if !ok {
			return
		}
		acc += b.Clock
		touched[b] = true
		if len(clocks) > ir.MaxPaths {
			ok = false
			return
		}
		// Decide which successors the path may continue into.
		var next []*ir.Block
		for _, s := range distinctSuccs(b) {
			if li.IsBackEdge(b, s) {
				continue // stop at back edges
			}
			if li.IsHeader(s) {
				// Entering a loop: the body would execute once per
				// iteration but the averaged clock charges it once — stop
				// before the header (the paper's "stop when we see
				// backedges" must hold dynamically, not just lexically).
				continue
			}
			if !dt.Dominates(root, s) {
				continue // stop below merge nodes escaping the region
			}
			if s.Unclockable {
				continue // stop before unclocked calls
			}
			if onStack[s] {
				continue // irreducible cycle guard
			}
			next = append(next, s)
		}
		if b.Term.Kind == ir.TermRet || len(next) == 0 {
			clocks = append(clocks, acc)
			return
		}
		// If some successors were cut off, those continuations end here too.
		if len(next) < len(distinctSuccs(b)) {
			clocks = append(clocks, acc)
		}
		onStack[b] = true
		for _, s := range next {
			walk(s, acc)
		}
		delete(onStack, b)
	}
	walk(root, 0)
	if !ok {
		return nil, nil, false
	}
	return clocks, touched, true
}
