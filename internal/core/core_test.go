package core

import (
	"strings"
	"testing"

	"repro/internal/estimates"
	"repro/internal/ir"
)

func newCtx(t *testing.T, opt Options) *passCtx {
	t.Helper()
	return &passCtx{
		cm:  ir.DefaultCostModel(),
		est: estimates.DefaultTable(),
		opt: opt.Defaults(),
	}
}

// countClockAdds returns the number of static clockadd instructions in f and
// the sum of their amounts.
func countClockAdds(f *ir.Func) (n int, total int64) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpClockAdd && b.Instrs[i].Scale == 0 {
				n++
				total += b.Instrs[i].A.Imm
			}
		}
	}
	return
}

// pathSums enumerates entry→ret path clock sums of f using Block.Clock.
func pathSums(t *testing.T, f *ir.Func) []int64 {
	t.Helper()
	clocks, err := ir.FunctionPathClocks(f, func(b *ir.Block) (int64, bool) {
		return b.Clock, true
	})
	if err != nil {
		t.Fatalf("FunctionPathClocks: %v", err)
	}
	return clocks
}

func sortedCopy(xs []int64) []int64 {
	out := append([]int64(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Instrument end-to-end -------------------------------------------------

// buildLeafCaller builds main (a loop calling a balanced leaf function).
func buildLeafCaller() *ir.Module {
	mb := ir.NewModule("leafcaller")
	mb.Locks(1)

	leaf := mb.Func("leaf", "x")
	x := leaf.Reg("x")
	c := leaf.Reg("c")
	y := leaf.Reg("y")
	leaf.Block("entry").
		Bin(ir.OpLT, c, ir.R(x), ir.Imm(50)).
		Br(ir.R(c), "then", "else")
	// Balanced arms: both cost add(1)+jmp(1).
	leaf.Block("then").Bin(ir.OpAdd, y, ir.R(x), ir.Imm(1)).Jmp("merge")
	leaf.Block("else").Bin(ir.OpSub, y, ir.R(x), ir.Imm(1)).Jmp("merge")
	leaf.Block("merge").Ret(ir.R(y))

	main := mb.Func("main")
	i := main.Reg("i")
	cc := main.Reg("c")
	r := main.Reg("r")
	main.Block("entry").Const(i, 0).Jmp("loop")
	main.Block("loop").Bin(ir.OpLT, cc, ir.R(i), ir.Imm(10)).Br(ir.R(cc), "body", "done")
	main.Block("body").
		Call(r, "leaf", ir.R(i)).
		Bin(ir.OpAdd, i, ir.R(i), ir.Imm(1)).
		Jmp("loop")
	main.Block("done").Lock(ir.Imm(0)).Unlock(ir.Imm(0)).Ret(ir.R(i))
	return mb.M
}

func TestInstrumentNoOpt(t *testing.T) {
	m := buildLeafCaller()
	res, err := Instrument(m, nil, nil, Options{Roots: []string{"main"}})
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	if len(res.Clockable) != 0 {
		t.Fatalf("no-opt should have no clockable funcs, got %v", res.Clockable)
	}
	// leaf is unclocked: the call in main.body must be isolated by splitting.
	if res.BlocksSplit == 0 {
		t.Fatalf("expected block splitting around the unclocked call")
	}
	main := m.Func("main")
	// The call must now be the only instruction in its block.
	var callBlock *ir.Block
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCall {
				callBlock = b
				nonCA := 0
				for j := range b.Instrs {
					if b.Instrs[j].Op != ir.OpClockAdd {
						nonCA++
					}
				}
				if nonCA != 1 {
					t.Fatalf("call block %q has %d non-clockadd instrs", b.Name, nonCA)
				}
			}
		}
	}
	if callBlock == nil {
		t.Fatalf("call disappeared")
	}
	// leaf keeps its own clock updates.
	n, _ := countClockAdds(m.Func("leaf"))
	if n == 0 {
		t.Fatalf("unclocked leaf should carry clockadds")
	}
	if res.StaticClockAdds == 0 || res.TotalStaticClock == 0 {
		t.Fatalf("stats not populated: %+v", res)
	}
}

func TestInstrumentO1ClocksLeaf(t *testing.T) {
	m := buildLeafCaller()
	res, err := Instrument(m, nil, nil, Options{O1: true, Roots: []string{"main"}})
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	mean, ok := res.Clockable["leaf"]
	if !ok {
		t.Fatalf("leaf should be clockable; got %v", res.Clockable)
	}
	// leaf paths: entry(lt+br=2) + arm(add/sub+jmp=2) + merge(ret=1) = 5 both.
	if mean != 5 {
		t.Fatalf("leaf mean = %d, want 5", mean)
	}
	// leaf body must carry no clockadds.
	if n, _ := countClockAdds(m.Func("leaf")); n != 0 {
		t.Fatalf("clocked leaf should carry no clockadds, found %d", n)
	}
	// main.body charges call overhead + mean in its (unsplit) block: the
	// clocked call must NOT be isolated (sync ops elsewhere still split).
	body := m.Func("main").Block("body")
	if body == nil {
		t.Fatalf("body block missing")
	}
	hasCall, hasAdd := false, false
	for i := range body.Instrs {
		switch body.Instrs[i].Op {
		case ir.OpCall:
			hasCall = true
		case ir.OpAdd:
			hasAdd = true
		}
	}
	if !hasCall || !hasAdd {
		t.Fatalf("clocked call should stay fused with its block (call=%v add=%v)", hasCall, hasAdd)
	}
	if body.Instrs[0].Op != ir.OpClockAdd {
		t.Fatalf("clock update should lead the block (ahead of time)")
	}
	// body clock: call overhead 2 + mean 5 + add 1 + jmp 1 = 9.
	if got := body.Instrs[0].A.Imm; got != 9 {
		t.Fatalf("body clock = %d, want 9", got)
	}
}

func TestO1FixpointTransitive(t *testing.T) {
	// wrapper calls leaf; once leaf is clocked, wrapper becomes clockable too.
	mb := ir.NewModule("trans")
	leaf := mb.Func("leaf", "x")
	x := leaf.Reg("x")
	y := leaf.Reg("y")
	leaf.Block("entry").Bin(ir.OpAdd, y, ir.R(x), ir.Imm(1)).Ret(ir.R(y))

	wrap := mb.Func("wrap", "x")
	wx := wrap.Reg("x")
	wy := wrap.Reg("y")
	wrap.Block("entry").Call(wy, "leaf", ir.R(wx)).Ret(ir.R(wy))

	main := mb.Func("main")
	r := main.Reg("r")
	main.Block("entry").Call(r, "wrap", ir.Imm(3)).Ret(ir.R(r))

	res, err := Instrument(mb.M, nil, nil, Options{O1: true, Roots: []string{"main"}})
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	if _, ok := res.Clockable["leaf"]; !ok {
		t.Fatalf("leaf not clockable")
	}
	if _, ok := res.Clockable["wrap"]; !ok {
		t.Fatalf("wrap should be transitively clockable: %v", res.Clockable)
	}
	// leaf mean: add 1 + ret 1 = 2. wrap mean: call 2 + leaf 2 + ret 1 = 5.
	if res.Clockable["leaf"] != 2 || res.Clockable["wrap"] != 5 {
		t.Fatalf("means = %v", res.Clockable)
	}
}

func TestO1RejectsLoopsSyncAndDivergence(t *testing.T) {
	mb := ir.NewModule("rej")
	mb.Locks(1)

	// loops: not clockable.
	lf := mb.Func("loopy", "n")
	n := lf.Reg("n")
	i := lf.Reg("i")
	c := lf.Reg("c")
	lf.Block("entry").Const(i, 0).Jmp("hdr")
	lf.Block("hdr").Bin(ir.OpLT, c, ir.R(i), ir.R(n)).Br(ir.R(c), "body", "out")
	lf.Block("body").Bin(ir.OpAdd, i, ir.R(i), ir.Imm(1)).Jmp("hdr")
	lf.Block("out").Ret(ir.R(i))

	// sync: not clockable.
	sf := mb.Func("sync", "x")
	sx := sf.Reg("x")
	sf.Block("entry").Lock(ir.Imm(0)).Unlock(ir.Imm(0)).Ret(ir.R(sx))

	// divergent paths: not clockable.
	df := mb.Func("div", "x")
	dx := df.Reg("x")
	dy := df.Reg("y")
	dc := df.Reg("c")
	df.Block("entry").Bin(ir.OpLT, dc, ir.R(dx), ir.Imm(0)).Br(ir.R(dc), "cheap", "costly")
	df.Block("cheap").Jmp("merge")
	cb := df.Block("costly")
	for k := 0; k < 40; k++ {
		cb.Bin(ir.OpMul, dy, ir.R(dx), ir.R(dx))
	}
	cb.Jmp("merge")
	df.Block("merge").Ret(ir.R(dy))

	main := mb.Func("main")
	r := main.Reg("r")
	main.Block("entry").
		Call(r, "loopy", ir.Imm(5)).
		Call(r, "sync", ir.Imm(1)).
		Call(r, "div", ir.Imm(2)).
		Ret(ir.R(r))

	res, err := Instrument(mb.M, nil, nil, Options{O1: true, Roots: []string{"main"}})
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	for _, bad := range []string{"loopy", "sync", "div", "main"} {
		if _, ok := res.Clockable[bad]; ok {
			t.Errorf("%s should not be clockable", bad)
		}
	}
}

func TestInstrumentPlaceAtEnd(t *testing.T) {
	m := buildLeafCaller()
	_, err := Instrument(m, nil, nil, Options{O1: true, PlaceAtEnd: true, Roots: []string{"main"}})
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	body := m.Func("main").Block("body")
	last := body.Instrs[len(body.Instrs)-1]
	if last.Op != ir.OpClockAdd {
		t.Fatalf("PlaceAtEnd should put the clockadd last, got %v", last.Op)
	}
	if body.Instrs[0].Op == ir.OpClockAdd {
		t.Fatalf("PlaceAtEnd should not also emit at the start")
	}
}

func TestInstrumentDynamicBuiltin(t *testing.T) {
	mb := ir.NewModule("dyn")
	main := mb.Func("main")
	sz := main.Reg("sz")
	r := main.Reg("r")
	main.Block("entry").
		Const(sz, 128).
		Call(r, "memset", ir.Imm(0), ir.R(sz)).
		Ret(ir.R(r))
	res, err := Instrument(mb.M, nil, nil, Options{Roots: []string{"main"}})
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	if res.DynamicClockAdds != 1 {
		t.Fatalf("DynamicClockAdds = %d, want 1", res.DynamicClockAdds)
	}
	entry := mb.M.Func("main").Entry()
	var dyn *ir.Instr
	for i := range entry.Instrs {
		if entry.Instrs[i].Op == ir.OpClockAdd && entry.Instrs[i].Scale != 0 {
			dyn = &entry.Instrs[i]
			// It must sit immediately before the call.
			if entry.Instrs[i+1].Op != ir.OpCall {
				t.Fatalf("dynamic clockadd should precede the call")
			}
		}
	}
	if dyn == nil {
		t.Fatalf("no dynamic clockadd emitted")
	}
	if dyn.Scale != 1 || dyn.B.Reg != sz {
		t.Fatalf("dynamic clockadd = %+v", dyn)
	}
	// Block is unclockable: optimizations must leave it alone.
	if !entry.Unclockable {
		t.Fatalf("dynamic builtin block should be unclockable")
	}
}

func TestInstrumentConstBuiltinFolds(t *testing.T) {
	mb := ir.NewModule("fold")
	main := mb.Func("main")
	r := main.Reg("r")
	main.Block("entry").
		Call(r, "memset", ir.Imm(0), ir.Imm(64)).
		Ret(ir.R(r))
	res, err := Instrument(mb.M, nil, nil, Options{Roots: []string{"main"}})
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	if res.DynamicClockAdds != 0 {
		t.Fatalf("constant-size memset should fold statically")
	}
	entry := mb.M.Func("main").Entry()
	// entry clock: call overhead 2 + memset(12 + 64) 76 + ret 1 = 79.
	if entry.Instrs[0].Op != ir.OpClockAdd || entry.Instrs[0].A.Imm != 79 {
		t.Fatalf("entry clock = %v", entry.Instrs[0])
	}
}

func TestInstrumentRejectsBadModule(t *testing.T) {
	mb := ir.NewModule("bad")
	f := mb.Func("main")
	r := f.Reg("r")
	f.Block("entry").Call(r, "nosuchfn").Ret(ir.R(r))
	// nosuchfn is not a builtin in an empty table: verification must fail.
	empty := estimates.NewTable()
	if _, err := Instrument(mb.M, nil, empty, Options{}); err == nil {
		t.Fatalf("Instrument should reject unresolved calls")
	} else if !strings.Contains(err.Error(), "does not verify") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// --- Individual optimizations ----------------------------------------------

func TestOpt2aDiamond(t *testing.T) {
	mb := ir.NewModule("o2a")
	fb := mb.Func("f", "x")
	c := fb.Reg("c")
	fb.Block("entry").Bin(ir.OpLT, c, ir.R(fb.Reg("x")), ir.Imm(1)).Br(ir.R(c), "then", "else")
	fb.Block("then").Jmp("merge")
	fb.Block("else").Jmp("merge")
	fb.Block("merge").Ret(ir.Imm(0))
	f := mb.M.Func("f")
	f.Block("entry").Clock = 2
	f.Block("then").Clock = 3
	f.Block("else").Clock = 5
	f.Block("merge").Clock = 1

	before := sortedCopy(pathSums(t, f))
	p := newCtx(t, Options{O2a: true})
	moves := p.applyOpt2a(f)
	if moves == 0 {
		t.Fatalf("O2a made no moves")
	}
	after := sortedCopy(pathSums(t, f))
	if !equalInt64s(before, after) {
		t.Fatalf("O2a must be precise: before %v after %v", before, after)
	}
	// One arm must reach zero (min hoist) and the merge must be pushed up.
	if f.Block("merge").Clock != 0 {
		t.Fatalf("merge clock = %d, want 0", f.Block("merge").Clock)
	}
	if f.Block("then").Clock != 0 {
		t.Fatalf("then clock = %d, want 0 (min arm)", f.Block("then").Clock)
	}
	if f.Block("entry").Clock != 6 {
		t.Fatalf("entry clock = %d, want 6", f.Block("entry").Clock)
	}
	if f.Block("else").Clock != 2 {
		t.Fatalf("else clock = %d, want 2", f.Block("else").Clock)
	}
}

func TestOpt2aSkipsLoopHeaderMerge(t *testing.T) {
	// A loop header is a merge of entry + latch; its clock must not be pushed
	// up into the latch.
	mb := ir.NewModule("o2ahdr")
	fb := mb.Func("f", "n")
	c := fb.Reg("c")
	i := fb.Reg("i")
	fb.Block("entry").Const(i, 0).Jmp("hdr")
	fb.Block("hdr").Bin(ir.OpLT, c, ir.R(i), ir.R(fb.Reg("n"))).Br(ir.R(c), "body", "out")
	fb.Block("body").Bin(ir.OpAdd, i, ir.R(i), ir.Imm(1)).Jmp("hdr")
	fb.Block("out").Ret(ir.R(i))
	f := mb.M.Func("f")
	f.Block("hdr").Clock = 7
	p := newCtx(t, Options{O2a: true})
	p.applyOpt2a(f)
	if f.Block("hdr").Clock == 0 {
		t.Fatalf("loop header clock must not be pushed up")
	}
}

func TestOpt2aSkipsUnclockable(t *testing.T) {
	mb := ir.NewModule("o2au")
	fb := mb.Func("f", "x")
	c := fb.Reg("c")
	fb.Block("entry").Bin(ir.OpLT, c, ir.R(fb.Reg("x")), ir.Imm(1)).Br(ir.R(c), "then", "else")
	fb.Block("then").Jmp("merge")
	fb.Block("else").Jmp("merge")
	fb.Block("merge").Ret(ir.Imm(0))
	f := mb.M.Func("f")
	f.Block("then").Clock = 3
	f.Block("else").Clock = 5
	f.Block("then").Unclockable = true
	p := newCtx(t, Options{O2a: true})
	if n := p.applyOpt2a(f); n != 0 {
		t.Fatalf("O2a should skip unclockable successors, moved %d", n)
	}
}

func TestOpt2bTriangleMovesUp(t *testing.T) {
	f := buildTriangle(1, 2, 1, 90)
	p := newCtx(t, Options{O2b: true})
	if n := p.applyOpt2b(f); n != 1 {
		t.Fatalf("O2b moves = %d, want 1", n)
	}
	if f.Block("upper").Clock != 2 || f.Block("lower").Clock != 0 {
		t.Fatalf("clocks: upper=%d lower=%d, want 2/0",
			f.Block("upper").Clock, f.Block("lower").Clock)
	}
}

func TestOpt2bRejectsLargeDivergence(t *testing.T) {
	f := buildTriangle(50, 2, 60, 10)
	p := newCtx(t, Options{O2b: true})
	if n := p.applyOpt2b(f); n != 0 {
		t.Fatalf("O2b should reject large divergence, moved %d", n)
	}
}

// buildTriangle: upper -> {middle, lower}; middle -> {lower, escape};
// lower -> exit; escape -> exit.
func buildTriangle(upperC, middleC, lowerC, escapeC int64) *ir.Func {
	mb := ir.NewModule("tri")
	fb := mb.Func("f", "x")
	c := fb.Reg("c")
	fb.Block("upper").Bin(ir.OpLT, c, ir.R(fb.Reg("x")), ir.Imm(1)).Br(ir.R(c), "middle", "lower")
	fb.Block("middle").Br(ir.R(c), "lower", "escape")
	fb.Block("lower").Jmp("exit")
	fb.Block("escape").Jmp("exit")
	fb.Block("exit").Ret(ir.Imm(0))
	f := mb.M.Func("f")
	f.Block("upper").Clock = upperC
	f.Block("middle").Clock = middleC
	f.Block("lower").Clock = lowerC
	f.Block("escape").Clock = escapeC
	return f
}

func TestOpt2bLoopDepthMovesDown(t *testing.T) {
	// upper/middle sit inside a loop; lower is the loop exit. The paper's
	// rule removes the clock from the deeper block (upper) to save updates on
	// the hot path.
	mb := ir.NewModule("o2bloop")
	fb := mb.Func("f", "n")
	c := fb.Reg("c")
	fb.Block("entry").Jmp("upper")
	fb.Block("upper").Bin(ir.OpLT, c, ir.R(fb.Reg("n")), ir.Imm(1)).Br(ir.R(c), "middle", "lower")
	fb.Block("middle").Br(ir.R(c), "lower", "latch")
	fb.Block("latch").Jmp("upper")
	fb.Block("lower").Ret(ir.Imm(0))
	f := mb.M.Func("f")
	f.Block("upper").Clock = 1
	f.Block("middle").Clock = 2
	f.Block("lower").Clock = 5
	f.Block("latch").Clock = 90
	p := newCtx(t, Options{O2b: true})
	if n := p.applyOpt2b(f); n != 1 {
		t.Fatalf("O2b moves = %d, want 1", n)
	}
	if f.Block("upper").Clock != 0 || f.Block("lower").Clock != 6 {
		t.Fatalf("upper=%d lower=%d, want 0/6", f.Block("upper").Clock, f.Block("lower").Clock)
	}
}

func TestOpt3PaperExample(t *testing.T) {
	// Region with 4 paths totalling {37, 38, 38, 29} (paper §IV-C): mean
	// 35.5, range 9 < 14.2, σ 4.39 < 7.1 → root gets 35.
	mb := ir.NewModule("o3")
	fb := mb.Func("f", "x")
	c := fb.Reg("c")
	x := fb.Reg("x")
	fb.Block("root").Bin(ir.OpLT, c, ir.R(x), ir.Imm(1)).Br(ir.R(c), "a", "b")
	fb.Block("a").Br(ir.R(c), "a1", "a2")
	fb.Block("b").Br(ir.R(c), "b1", "b2")
	fb.Block("a1").Jmp("merge")
	fb.Block("a2").Jmp("merge")
	fb.Block("b1").Jmp("merge")
	fb.Block("b2").Jmp("merge")
	fb.Block("merge").Ret(ir.Imm(0))
	f := mb.M.Func("f")
	set := func(name string, v int64) { f.Block(name).Clock = v }
	set("root", 2)
	set("a", 10)
	set("b", 5)
	set("a1", 24) // 2+10+24+1 = 37
	set("a2", 25) // 38
	set("b1", 30) // 38
	set("b2", 21) // 29
	set("merge", 1)
	p := newCtx(t, Options{O3: true})
	if n := p.applyOpt3(f); n != 1 {
		t.Fatalf("O3 regions = %d, want 1", n)
	}
	if f.Block("root").Clock != 35 {
		t.Fatalf("root clock = %d, want 35", f.Block("root").Clock)
	}
	for _, name := range []string{"a", "b", "a1", "a2", "b1", "b2", "merge"} {
		if f.Block(name).Clock != 0 {
			t.Fatalf("block %s clock = %d, want 0", name, f.Block(name).Clock)
		}
	}
}

func TestOpt3RejectsDivergent(t *testing.T) {
	mb := ir.NewModule("o3r")
	fb := mb.Func("f", "x")
	c := fb.Reg("c")
	fb.Block("root").Bin(ir.OpLT, c, ir.R(fb.Reg("x")), ir.Imm(1)).Br(ir.R(c), "a", "b")
	fb.Block("a").Jmp("merge")
	fb.Block("b").Jmp("merge")
	fb.Block("merge").Ret(ir.Imm(0))
	f := mb.M.Func("f")
	f.Block("a").Clock = 5
	f.Block("b").Clock = 500
	p := newCtx(t, Options{O3: true})
	if n := p.applyOpt3(f); n != 0 {
		t.Fatalf("O3 should reject divergent region")
	}
	if f.Block("b").Clock != 500 {
		t.Fatalf("divergent region must be untouched")
	}
}

func TestOpt3StopsAtNonDominatedMerge(t *testing.T) {
	// root region's merge has a successor (shared) reachable from outside
	// root's dominance; path must stop at the merge (inclusive) and shared's
	// clock must survive.
	mb := ir.NewModule("o3d")
	fb := mb.Func("f", "x")
	c := fb.Reg("c")
	fb.Block("entry").Br(ir.R(c), "root", "other")
	fb.Block("root").Br(ir.R(c), "a", "b")
	fb.Block("a").Jmp("rm")
	fb.Block("b").Jmp("rm")
	fb.Block("rm").Jmp("shared")
	fb.Block("other").Jmp("shared")
	fb.Block("shared").Ret(ir.Imm(0))
	f := mb.M.Func("f")
	f.Block("root").Clock = 4
	f.Block("a").Clock = 10
	f.Block("b").Clock = 11
	f.Block("rm").Clock = 2
	f.Block("shared").Clock = 100
	// Make the region rooted at entry too divergent to average, so the test
	// isolates the root region (entry dominates everything, so it would
	// otherwise legitimately absorb shared).
	f.Block("other").Clock = 1000
	p := newCtx(t, Options{O3: true})
	p.applyOpt3(f)
	if f.Block("shared").Clock != 100 {
		t.Fatalf("shared clock = %d, must be untouched", f.Block("shared").Clock)
	}
	if f.Block("root").Clock == 0 {
		t.Fatalf("root should carry the averaged clock")
	}
}

func TestOpt4MergesLatch(t *testing.T) {
	mb := ir.NewModule("o4")
	fb := mb.Func("f", "n")
	c := fb.Reg("c")
	i := fb.Reg("i")
	fb.Block("entry").Const(i, 0).Jmp("hdr")
	fb.Block("hdr").Bin(ir.OpLT, c, ir.R(i), ir.R(fb.Reg("n"))).Br(ir.R(c), "body", "out")
	fb.Block("body").Bin(ir.OpAdd, i, ir.R(i), ir.Imm(1)).Jmp("latch")
	fb.Block("latch").Jmp("hdr")
	fb.Block("out").Ret(ir.R(i))
	f := mb.M.Func("f")
	f.Block("hdr").Clock = 5
	f.Block("latch").Clock = 2
	p := newCtx(t, Options{O4: true})
	if n := p.applyOpt4(f); n != 1 {
		t.Fatalf("O4 merges = %d, want 1", n)
	}
	if f.Block("hdr").Clock != 7 || f.Block("latch").Clock != 0 {
		t.Fatalf("hdr=%d latch=%d, want 7/0", f.Block("hdr").Clock, f.Block("latch").Clock)
	}
}

func TestOpt4RespectsThresholdAndOrder(t *testing.T) {
	mb := ir.NewModule("o4r")
	fb := mb.Func("f", "n")
	c := fb.Reg("c")
	fb.Block("entry").Jmp("hdr")
	fb.Block("hdr").Bin(ir.OpLT, c, ir.Imm(0), ir.R(fb.Reg("n"))).Br(ir.R(c), "latch", "out")
	fb.Block("latch").Jmp("hdr")
	fb.Block("out").Ret(ir.Imm(0))
	f := mb.M.Func("f")

	// Latch clock above threshold: no merge.
	f.Block("hdr").Clock = 100
	f.Block("latch").Clock = 50
	p := newCtx(t, Options{O4: true})
	if n := p.applyOpt4(f); n != 0 {
		t.Fatalf("O4 should respect threshold")
	}
	// Latch clock >= header clock: no merge.
	f.Block("hdr").Clock = 2
	f.Block("latch").Clock = 5
	if n := p.applyOpt4(f); n != 0 {
		t.Fatalf("O4 should not merge latch >= header")
	}
}

// --- Pass statistics ---------------------------------------------------------

func TestResultClockableNamesSorted(t *testing.T) {
	r := &Result{Clockable: map[string]int64{"z": 1, "a": 2, "m": 3}}
	names := r.ClockableNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "z" {
		t.Fatalf("names = %v", names)
	}
}

func TestPresetNames(t *testing.T) {
	cases := map[string]Options{
		"With No Optimization":                           OptNone,
		"With Function Clocking Only (O1)":               OptO1,
		"With Conditional Blocks Optimization Only (O2)": OptO2,
		"With Averaging of Clocks Only (O3)":             OptO3,
		"With Loops Optimization Only (O4)":              OptO4,
		"With All Optimizations":                         OptAll,
	}
	for want, o := range cases {
		if got := PresetName(o); got != want {
			t.Errorf("PresetName(%+v) = %q, want %q", o, got, want)
		}
	}
	if len(TableIPresets()) != 6 {
		t.Fatalf("TableIPresets should list 6 rows")
	}
}
