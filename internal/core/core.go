package core
