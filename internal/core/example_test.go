package core

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
)

// runModuleFinalClock executes an instrumented module on one simulated
// thread and returns its final accumulated logical clock.
func runModuleFinalClock(t *testing.T, m *ir.Module) int64 {
	t.Helper()
	_, ths, err := interp.NewMachine(interp.Config{Module: m, Threads: 1})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	eng := sim.New(sim.Config{NumLocks: m.NumLocks, NumBarriers: m.NumBars},
		interp.Programs(ths))
	stats, err := eng.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return stats.FinalClocks[0]
}

// analyze runs the pipeline (no materialization) and returns the example
// function.
func analyzeExample(t *testing.T, opt Options) (*ir.Func, *Result) {
	t.Helper()
	m := WorkedExample()
	opt.Roots = []string{"main"}
	res, err := AnalyzeOnly(m, nil, nil, opt)
	if err != nil {
		t.Fatalf("AnalyzeOnly: %v", err)
	}
	return m.Func("bf_refine"), res
}

// TestWorkedExampleO1 reproduces Figure 5: the helper is clocked and its
// mean is charged at the call site; the helper body carries no clocks.
func TestWorkedExampleO1(t *testing.T) {
	f, res := analyzeExample(t, OptO1)
	if _, ok := res.Clockable["intersection_type"]; !ok {
		t.Fatalf("intersection_type should be clockable: %v", res.Clockable)
	}
	entry := f.Block("entry")
	// entry: call overhead 2 + helper mean (2+7+1=10) + add 1 + jmp 1 = 14.
	if entry.Clock != 14 {
		t.Fatalf("entry clock = %d, want 14", entry.Clock)
	}
	helper := f.Module.Func("intersection_type")
	for _, b := range helper.Blocks {
		if b.Clock != 0 {
			t.Fatalf("clocked helper block %s has clock %d", b.Name, b.Clock)
		}
	}
}

// TestWorkedExampleO3 reproduces the paper's §IV-C numbers: four region
// paths with clocks {37, 38, 38, 29} average to 35 at if.end.
func TestWorkedExampleO3(t *testing.T) {
	f, _ := analyzeExample(t, Options{O1: true, O2a: true, O2b: true, O3: true})
	if got := f.Block("if.end").Clock; got != 35 {
		t.Fatalf("if.end clock = %d, want 35 (paper §IV-C)", got)
	}
	for _, name := range []string{"if.then.i", "if.else.i", "if.then29.i",
		"if.then35.i", "if.else33", "if.else39", "o3.merge"} {
		if c := f.Block(name).Clock; c != 0 {
			t.Fatalf("averaged block %s still has clock %d", name, c)
		}
	}
	// The loop must NOT be averaged into the region: its header keeps clock.
	if f.Block("for.cond").Clock == 0 {
		t.Fatalf("loop header clock must survive O3 (paths stop at loops)")
	}
}

// TestWorkedExampleO4 reproduces Figure 13's loop merge: for.inc's clock
// moves into for.cond.
func TestWorkedExampleO4(t *testing.T) {
	before, _ := analyzeExample(t, Options{O1: true, O2a: true, O2b: true, O3: true})
	cond := before.Block("for.cond").Clock
	inc := before.Block("for.inc").Clock
	if inc == 0 {
		t.Fatalf("for.inc should still carry clock before O4")
	}
	after, _ := analyzeExample(t, OptAll)
	if got := after.Block("for.inc").Clock; got != 0 {
		t.Fatalf("for.inc clock = %d after O4, want 0", got)
	}
	if got := after.Block("for.cond").Clock; got != cond+inc {
		t.Fatalf("for.cond clock = %d, want %d", got, cond+inc)
	}
}

// TestWorkedExampleO2b reproduces the Figure 10 triangle: if.end21 is inside
// the loop, so the shift direction and divergence rule apply; the triangle's
// clocks are merged so that lor's branch region loses an update.
func TestWorkedExampleO2b(t *testing.T) {
	before, _ := analyzeExample(t, Options{O1: true})
	after, _ := analyzeExample(t, Options{O1: true, O2b: true})
	countUpdates := func(f *ir.Func) int {
		n := 0
		for _, b := range f.Blocks {
			if b.Clock > 0 {
				n++
			}
		}
		return n
	}
	if countUpdates(after) >= countUpdates(before) {
		t.Fatalf("O2b should remove an update site: before %d, after %d",
			countUpdates(before), countUpdates(after))
	}
}

// TestWorkedExampleUpdateReduction: the full pipeline must cut the number of
// update sites sharply (the paper's Figure 13 keeps 2 of the original 12+).
func TestWorkedExampleUpdateReduction(t *testing.T) {
	noOpt, _ := analyzeExample(t, OptNone)
	allOpt, _ := analyzeExample(t, OptAll)
	count := func(f *ir.Func) (n int) {
		for _, b := range f.Blocks {
			if b.Clock > 0 {
				n++
			}
		}
		return
	}
	n0, n1 := count(noOpt), count(allOpt)
	if n1*2 >= n0 {
		t.Fatalf("all opts should halve update sites at least: %d -> %d", n0, n1)
	}
}

// TestWorkedExampleO2aPrecision: Optimization 2a is precise, meaning the
// total clock a thread accumulates over an execution is identical with and
// without it. (A static per-subpath comparison would be misleading: hoisting
// the minimum of a loop header's successors charges the header once per
// iteration and the exit block correspondingly less, which is exact
// dynamically but moves mass between static paths.) This is DESIGN.md
// invariant 5, checked by execution.
func TestWorkedExampleO2aPrecision(t *testing.T) {
	finalClock := func(opt Options) int64 {
		m := WorkedExample()
		opt.Roots = []string{"main"}
		if _, err := Instrument(m, nil, nil, opt); err != nil {
			t.Fatalf("Instrument: %v", err)
		}
		return runModuleFinalClock(t, m)
	}
	before := finalClock(OptO1)
	after := finalClock(Options{O1: true, O2a: true})
	if before != after {
		t.Fatalf("O2a changed the accumulated clock: %d -> %d", before, after)
	}
}

// TestWorkedExampleRuns executes the instrumented example and checks the
// program still computes the same result as the uninstrumented one.
func TestWorkedExampleRuns(t *testing.T) {
	ref := WorkedExample()
	inst := WorkedExample()
	if _, err := Instrument(inst, nil, nil, Options{
		O1: true, O2a: true, O2b: true, O3: true, O4: true,
		Roots: []string{"main"},
	}); err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	// Both modules must still verify; execution equivalence is covered by
	// the interp package tests (instrumentation never changes semantics).
	if err := ref.Verify(nil); err != nil {
		t.Fatalf("reference verify: %v", err)
	}
	if err := inst.Verify(nil); err != nil {
		t.Fatalf("instrumented verify: %v", err)
	}
}
