// Package core implements the DetLock compiler pass: logical-clock insertion
// over the IR of package ir, plus the paper's four overhead-reduction
// optimizations (§IV).
//
// The pipeline mirrors the paper:
//
//  1. Classify calls: builtins come from the instruction-estimates file;
//     Optimization 1 (Function Clocking, Figure 4) computes the set of
//     "clocked" functions whose whole cost is charged at the call site,
//     ahead of execution.
//  2. Split blocks around remaining (unclocked) calls so that every other
//     block can carry a single clock value (§III-A).
//  3. Assign base block clocks from the cost model (one instruction = one
//     clock unit, multi-cycle instructions weighted, §III-A).
//  4. Apply Optimizations 2a, 2b (Conditional Blocks, Figures 6 and 9),
//     3 (Averaging of Clocks, Figure 11) and 4 (Loops, §IV-D).
//  5. Materialize remaining block clocks as clockadd instructions at the
//     start of each block (or the end, for the Figure 15 ablation).
package core

// Options selects which optimizations run and their admission thresholds.
// Zero thresholds fall back to the paper's constants.
type Options struct {
	// O1 enables Function Clocking (Optimization 1).
	O1 bool
	// O2a enables the precise conditional-block rearrangement (Optimization 2a).
	O2a bool
	// O2b enables the lossy if-triangle shift (Optimization 2b).
	O2b bool
	// O3 enables Averaging of Clocks over dominated regions (Optimization 3).
	O3 bool
	// O4 enables the loop back-edge merge (Optimization 4).
	O4 bool

	// PlaceAtEnd puts clock updates at the end of each block instead of the
	// beginning. The paper shows (Figure 15) that start-of-block placement
	// substantially reduces deterministic-execution overhead; end placement
	// exists for that ablation.
	PlaceAtEnd bool

	// RangeDiv and StdDiv are the isClockable admission divisors: a path set
	// is clockable when range <= mean/RangeDiv and std <= mean/StdDiv
	// (paper: 2.5 and 5).
	RangeDiv float64
	StdDiv   float64

	// O2bMaxDivergence is the relative clock divergence allowed by
	// Optimization 2b (paper: one tenth).
	O2bMaxDivergence float64

	// O4Threshold is the maximum clock of a back-edge source block that
	// Optimization 4 will merge into the loop header.
	O4Threshold int64

	// Roots names functions that are thread entry points; they are never
	// made clockable (their clocks must advance while they run).
	Roots []string
}

// Defaults fills in the paper's constants for unset thresholds and returns
// the amended options.
func (o Options) Defaults() Options {
	if o.RangeDiv == 0 {
		o.RangeDiv = 2.5
	}
	if o.StdDiv == 0 {
		o.StdDiv = 5
	}
	if o.O2bMaxDivergence == 0 {
		o.O2bMaxDivergence = 0.1
	}
	if o.O4Threshold == 0 {
		o.O4Threshold = 12
	}
	return o
}

// Preset optimization selections matching the paper's Table I rows.
var (
	// OptNone inserts clocks with no optimization ("With No Optimization").
	OptNone = Options{}
	// OptO1 enables Function Clocking only.
	OptO1 = Options{O1: true}
	// OptO2 enables the Conditional Blocks optimization only (parts a and b).
	OptO2 = Options{O2a: true, O2b: true}
	// OptO3 enables Averaging of Clocks only.
	OptO3 = Options{O3: true}
	// OptO4 enables the Loops optimization only.
	OptO4 = Options{O4: true}
	// OptAll enables all optimizations ("With All Optimizations").
	OptAll = Options{O1: true, O2a: true, O2b: true, O3: true, O4: true}
)

// PresetName returns the Table I row label for one of the preset option sets.
func PresetName(o Options) string {
	switch {
	case o.O1 && o.O2a && o.O2b && o.O3 && o.O4:
		return "With All Optimizations"
	case o.O1:
		return "With Function Clocking Only (O1)"
	case o.O2a || o.O2b:
		return "With Conditional Blocks Optimization Only (O2)"
	case o.O3:
		return "With Averaging of Clocks Only (O3)"
	case o.O4:
		return "With Loops Optimization Only (O4)"
	default:
		return "With No Optimization"
	}
}

// TableIPresets lists the option sets of Table I in row order.
func TableIPresets() []Options {
	return []Options{OptNone, OptO1, OptO2, OptO3, OptO4, OptAll}
}
