package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/det"
	"repro/internal/diag"
	"repro/internal/splash"
)

// srcOf renders one splash workload to textual IR.
func srcOf(t testing.TB, name string) string {
	t.Helper()
	b, err := splash.New(name, 4)
	if err != nil {
		t.Fatalf("splash.New(%s): %v", name, err)
	}
	return b.Module.String()
}

// TestBackoffOverflowClamp: the full-jitter exponential must saturate at max
// for any attempt count, including ones whose naive doubling overflows
// time.Duration. Before the clamp, base·2ⁿ⁻¹ could wrap negative under a
// huge cap and produce a zero delay — a hot retry loop exactly when the
// service is least able to afford one.
func TestBackoffOverflowClamp(t *testing.T) {
	huge := newBackoff(3*time.Millisecond, time.Duration(math.MaxInt64), 7)
	for _, n := range []int{1, 2, 10, 62, 63, 64, 100, 500, math.MaxInt32} {
		d := huge.delay(n)
		if d <= 0 {
			t.Fatalf("attempt %d: delay %v, want positive (overflow clamp)", n, d)
		}
		if d > time.Duration(math.MaxInt64) {
			t.Fatalf("attempt %d: delay %v above cap", n, d)
		}
	}
	// A sane cap still bounds every attempt by the envelope.
	b := newBackoff(5*time.Millisecond, 250*time.Millisecond, 7)
	for n := 1; n <= 1000; n++ {
		if d := b.delay(n); d <= 0 || d > 250*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside (0, 250ms]", n, d)
		}
	}
	// The clamp changes nothing in the pre-saturation range: exact powers.
	c := newBackoff(4*time.Millisecond, 64*time.Millisecond, 7)
	for n, want := range map[int]time.Duration{1: 4, 2: 8, 3: 16, 4: 32, 5: 64, 6: 64, 99: 64} {
		want *= time.Millisecond
		if d := c.delay(n); d <= 0 || d > want {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", n, d, want)
		}
	}
}

// TestBreakerDeterministicTrace is the breaker's determinism property: for a
// fixed failure schedule (a seeded stream of divergence/success/allow events
// and clock advances), the closed→open→half-open state trace is a pure
// function of the schedule — two breakers fed the same schedule emit
// byte-identical traces, and every transition in the trace is one the state
// machine legally allows.
func TestBreakerDeterministicTrace(t *testing.T) {
	run := func(seed int64) []string {
		rng := det.NewRand(seed, 11)
		now := time.Unix(0, 0)
		b := newBreaker(3, 10*time.Second)
		b.now = func() time.Time { return now }
		var tr []string
		for step := 0; step < 400; step++ {
			switch rng.IntN(4) {
			case 0:
				b.onDivergence()
			case 1:
				b.onSuccess()
			case 2:
				b.allow()
			case 3:
				now = now.Add(time.Duration(rng.IntN(6)) * time.Second)
			}
			state, trips := b.snapshot()
			tr = append(tr, fmt.Sprintf("%s/%d", state, trips))
		}
		return tr
	}

	for seed := int64(1); seed <= 10; seed++ {
		a, b := run(seed), run(seed)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d step %d: trace %q vs %q — breaker not deterministic", seed, i, a[i], b[i])
			}
		}
		// Transition legality: closed can only open, open can only half-open,
		// and a trip count increase must land the machine in the open state.
		legal := map[string]map[string]bool{
			"closed":    {"closed": true, "open": true},
			"open":      {"open": true, "half-open": true},
			"half-open": {"half-open": true, "open": true, "closed": true},
		}
		prev, prevTrips := "closed", int64(0)
		for i, s := range a {
			var state string
			var trips int64
			for j := 0; j < len(s); j++ {
				if s[j] == '/' {
					state = s[:j]
					fmt.Sscanf(s[j+1:], "%d", &trips)
					break
				}
			}
			if !legal[prev][state] {
				t.Fatalf("seed %d step %d: illegal transition %s → %s", seed, i, prev, state)
			}
			if trips < prevTrips {
				t.Fatalf("seed %d step %d: trip count went backwards (%d → %d)", seed, i, prevTrips, trips)
			}
			if trips > prevTrips && state != "open" {
				t.Fatalf("seed %d step %d: trip recorded but state is %s, not open", seed, i, state)
			}
			prev, prevTrips = state, trips
		}
	}

	// Distinct schedules must be able to produce distinct traces (the
	// property is determinism, not constancy).
	a, c := run(1), run(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("every seed produced an identical trace; schedule is not driving the machine")
	}
}

// TestStealCompleteRoundTrip: a queued job lent to a peer and completed with
// the peer's (deterministically identical) result finishes through the
// normal path — done, journaled, marked Remote — and a duplicate completion
// for the same id is dropped.
func TestStealCompleteRoundTrip(t *testing.T) {
	src := srcOf(t, "ocean")
	path := filepath.Join(t.TempDir(), "jobs.journal")

	// The "peer": an independent service computing the borrowed request.
	peer := New(Config{Workers: 1})
	defer peer.Close(context.Background())

	svc, err := Open(Config{Workers: 1, JournalPath: path, StealReclaim: time.Minute})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Fill the queue faster than the single worker drains it, then steal.
	var ids []string
	for i := 0; i < 6; i++ {
		id, err := svc.Submit(Request{Source: src, PerturbSeed: int64(i)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, id)
	}
	stolen := svc.StealQueued(3)
	if len(stolen) == 0 {
		t.Skip("worker drained the queue before the steal; nothing to lend")
	}
	for _, sj := range stolen {
		res, err := peer.ExecuteDetached(context.Background(), sj.Req)
		if err != nil {
			t.Fatalf("peer execution of %s: %v", sj.ID, err)
		}
		svc.CompleteStolen(sj.ID, res)
		svc.CompleteStolen(sj.ID, res) // duplicate: must be dropped silently
	}
	for i, id := range ids {
		v := waitStatus(t, svc, id, StatusDone)
		want := mustDo(t, peer, Request{Source: src, PerturbSeed: int64(i)})
		if coreOf(v.Result) != coreOf(want) {
			t.Fatalf("job %s core %s, want %s", id, coreOf(v.Result), coreOf(want))
		}
	}
	snap := svc.Snapshot()
	if snap.JobsStolen != int64(len(stolen)) {
		t.Fatalf("stolen counter = %d, want %d", snap.JobsStolen, len(stolen))
	}
	if snap.JournalJobs != len(ids) {
		t.Fatalf("journal holds %d jobs, want %d (no loss, no duplication)", snap.JournalJobs, len(ids))
	}
	remote := false
	for _, sj := range stolen {
		v, err := svc.Lookup(sj.ID)
		if err != nil {
			t.Fatalf("Lookup %s: %v", sj.ID, err)
		}
		if v.Result != nil && v.Result.Remote {
			remote = true
		}
	}
	if !remote {
		t.Fatal("no stolen job carries the Remote marker")
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestStealReclaim: a stealer that never reports back only delays the job —
// the reclaim timer re-enqueues it and it completes locally. An explicit
// abort does the same immediately.
func TestStealReclaim(t *testing.T) {
	src := srcOf(t, "volrend")
	svc, err := Open(Config{Workers: 1, StealReclaim: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close(context.Background())

	var ids []string
	for i := 0; i < 5; i++ {
		id, err := svc.Submit(Request{Source: src, PerturbSeed: int64(i)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, id)
	}
	stolen := svc.StealQueued(2)
	if len(stolen) == 0 {
		t.Skip("worker drained the queue before the steal")
	}
	if len(stolen) > 1 {
		svc.AbortStolen(stolen[1].ID) // explicit hand-back
	}
	// The rest are reclaimed by timer; every job must complete locally.
	for _, id := range ids {
		v := waitStatus(t, svc, id, StatusDone)
		if v.Result.Remote {
			t.Fatalf("job %s marked Remote without a completion", id)
		}
	}
	if snap := svc.Snapshot(); snap.StealReclaims == 0 {
		t.Fatal("no reclaim counted")
	}
}

// TestPeerFillAndOffer exercises the fill/offer surface end to end at the
// service layer: an offered entry is self-checked, installable, servable via
// ResultByKey, and a Fill hook that returns it produces a PeerFilled result
// that survives a 100% local cross-check; corrupt and divergent peer data is
// rejected without ever failing the client (except as a typed divergence).
func TestPeerFillAndOffer(t *testing.T) {
	src := srcOf(t, "ocean")
	other := srcOf(t, "raytrace")

	// Capture (key, result) pairs via the Offer hook of a producer service.
	type kr struct {
		key string
		res *Result
	}
	offers := make(chan kr, 16)
	producer := New(Config{Workers: 1, Offer: func(key string, res *Result, req *Request) {
		select {
		case offers <- kr{key, res}:
		default:
		}
	}})
	defer producer.Close(context.Background())
	mustDo(t, producer, Request{Source: src})
	oceanOffer := <-offers
	mustDo(t, producer, Request{Source: other})
	rayOffer := <-offers
	if oceanOffer.res.Schedule == nil {
		t.Fatal("offer carries no schedule")
	}

	// Offer → install → serve.
	svc := New(Config{Workers: 1})
	defer svc.Close(context.Background())
	if err := svc.OfferResult(oceanOffer.key, oceanOffer.res); err != nil {
		t.Fatalf("OfferResult: %v", err)
	}
	got, ok := svc.ResultByKey(oceanOffer.key)
	if !ok || got.ScheduleHash != oceanOffer.res.ScheduleHash || got.Schedule == nil {
		t.Fatalf("ResultByKey after offer = %+v, %v", got, ok)
	}
	// The installed entry is a real cache hit for the equivalent submission.
	res := mustDo(t, svc, Request{Source: src})
	if !res.Cached {
		t.Fatal("offered entry did not serve the local submission as a cache hit")
	}
	if coreOf(res) != coreOf(oceanOffer.res) {
		t.Fatalf("offered core %s != local %s", coreOf(oceanOffer.res), coreOf(res))
	}

	// A tampered offer (hash does not match its schedule) is refused.
	bad := *oceanOffer.res
	bad.ScheduleHash = "deadbeefdeadbeef"
	if err := svc.OfferResult("some-key", &bad); err == nil {
		t.Fatal("self-inconsistent offer accepted")
	}

	// A conflicting offer for an existing key is a divergence: rejected,
	// counted, breaker fed — the cached entry stands.
	conflict := *rayOffer.res
	conflict.Schedule = rayOffer.res.Schedule
	if err := svc.OfferResult(oceanOffer.key, &conflict); !errors.Is(err, diag.ErrDivergence) {
		t.Fatalf("conflicting offer error = %v, want ErrDivergence", err)
	}
	if snap := svc.Snapshot(); snap.Divergences == 0 {
		t.Fatal("conflicting offer not counted as a divergence")
	}

	// Fill hook, happy path: the result is served PeerFilled and the 100%
	// cross-check re-executes it locally without divergence.
	fills := 0
	filled := New(Config{Workers: 1, PeerCheckRate: 1, Fill: func(ctx context.Context, key string, req *Request) *Result {
		fills++
		if key == oceanOffer.key {
			return oceanOffer.res
		}
		return nil
	}})
	defer filled.Close(context.Background())
	fres := mustDo(t, filled, Request{Source: src})
	if !fres.PeerFilled {
		t.Fatal("fill hook result not marked PeerFilled")
	}
	if coreOf(fres) != coreOf(oceanOffer.res) {
		t.Fatalf("peer-filled core %s, want %s", coreOf(fres), coreOf(oceanOffer.res))
	}
	snap := filled.Snapshot()
	if snap.PeerFills != 1 || snap.PeerFillChecks != 1 || snap.Divergences != 0 {
		t.Fatalf("fill counters = %+v, want 1 fill / 1 check / 0 divergences", snap)
	}

	// Fill returning a corrupt payload: rejected, job still succeeds locally
	// — peer-path failure is never a client-visible error.
	corrupt := New(Config{Workers: 1, Fill: func(ctx context.Context, key string, req *Request) *Result {
		c := *oceanOffer.res
		c.ScheduleHash = "0000000000000000"
		return &c
	}})
	defer corrupt.Close(context.Background())
	cres := mustDo(t, corrupt, Request{Source: src})
	if cres.PeerFilled {
		t.Fatal("corrupt fill served as peer-filled")
	}
	if coreOf(cres) != coreOf(oceanOffer.res) {
		t.Fatal("fallback recomputation produced a different core")
	}
	if snap := corrupt.Snapshot(); snap.PeerFillRejects == 0 {
		t.Fatal("corrupt fill not counted as rejected")
	}

	// Fill returning a self-consistent but WRONG result (a different
	// program's answer): the mandatory cross-check catches it as a typed
	// divergence — never silently served.
	lying := New(Config{Workers: 1, PeerCheckRate: 1, Fill: func(ctx context.Context, key string, req *Request) *Result {
		return rayOffer.res
	}})
	defer lying.Close(context.Background())
	_, err := lying.Do(context.Background(), Request{Source: src})
	if !errors.Is(err, diag.ErrDivergence) {
		t.Fatalf("lying peer fill error = %v, want ErrDivergence", err)
	}
}

// TestReadyGates: Ready is nil on a healthy service, and reports the first
// failing gate — degraded journal, open breaker, closed service.
func TestReadyGates(t *testing.T) {
	src := srcOf(t, "ocean")

	healthy := New(Config{Workers: 1})
	if err := healthy.Ready(); err != nil {
		t.Fatalf("healthy service not ready: %v", err)
	}
	healthy.Close(context.Background())
	if err := healthy.Ready(); err == nil {
		t.Fatal("closed service reports ready")
	}

	// Journal degradation flips readiness off while the service keeps serving.
	degraded, err := Open(Config{
		Workers:     1,
		JournalPath: filepath.Join(t.TempDir(), "jobs.journal"),
		Faults:      &FaultConfig{Seed: 1, JournalErrEvery: 1},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer degraded.Close(context.Background())
	mustDo(t, degraded, Request{Source: src}) // trips the injected journal error
	if err := degraded.Ready(); err == nil {
		t.Fatal("journal-degraded service reports ready")
	}

	// An open breaker flips readiness off; ErrCircuitOpen is identifiable.
	tripped := New(Config{Workers: 1, BreakerThreshold: 1})
	defer tripped.Close(context.Background())
	tripped.breaker.onDivergence()
	err = tripped.Ready()
	if err == nil || !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-breaker readiness = %v, want ErrCircuitOpen", err)
	}
}
