package service

import (
	"fmt"
	"sync"

	"repro/internal/det"
	"repro/internal/diag"
)

// The service chaos harness extends the runtime-level fault injector
// (internal/det.FaultInjector) one layer up: where that injector perturbs
// lock boundaries inside a deterministic run, this one perturbs the service
// around the runs — worker panics mid-job, journal write errors, and (driven
// by the tests via Service.Kill) SIGTERM-style crashes mid-queue. Both draw
// their perturbation schedules from the same det.Rand xorshift streams, so a
// chaos schedule is a pure function of its seed and the order of injection
// points, reproducible across runs.
//
// Like the runtime injector, this is a test facility: production configs
// leave Config.Faults nil, which reduces every injection point to a nil
// check.

// FaultConfig selects service-layer fault injection.
type FaultConfig struct {
	// Seed derives the deterministic injection streams.
	Seed int64
	// WorkerPanicRate is the per-attempt probability that a job execution
	// panics with a diag.ErrInjected-tagged error (0 disables). Injected
	// panics are contained and classified transient, so they exercise the
	// retry path.
	WorkerPanicRate float64
	// JournalErrEvery fails every Nth journal append with an injected write
	// error (0 disables), exercising the graceful-degradation path.
	JournalErrEvery int64
}

// chaos is the armed injector. A nil *chaos (faults disabled) is valid and
// inert for every method.
type chaos struct {
	cfg FaultConfig

	mu      sync.Mutex
	panics  *det.Rand
	appends int64
}

func newChaos(cfg *FaultConfig) *chaos {
	if cfg == nil {
		return nil
	}
	return &chaos{cfg: *cfg, panics: det.NewRand(cfg.Seed, 1)}
}

// workerPanic decides whether this job attempt should panic; the draw
// consumes the panic stream, so the schedule of injected panics depends only
// on the seed and the attempt order.
func (c *chaos) workerPanic() bool {
	if c == nil || c.cfg.WorkerPanicRate <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.panics.Float() < c.cfg.WorkerPanicRate
}

// journalErr returns an injected write error on every JournalErrEvery-th
// append, nil otherwise.
func (c *chaos) journalErr() error {
	if c == nil || c.cfg.JournalErrEvery <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appends++
	if c.appends%c.cfg.JournalErrEvery == 0 {
		return fmt.Errorf("%w: journal append %d", diag.ErrInjected, c.appends)
	}
	return nil
}
