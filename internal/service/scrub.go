package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/vfs"
)

// Scrub-on-recovery. Journal recovery used to stop at the first damaged
// interior line and truncate everything after it — correct for a torn tail,
// catastrophic for a single flipped bit in the middle of a long log (every
// later job silently discarded). The scrub pass instead classifies every
// line: intact records replay, damaged ones are quarantined to a
// `<path>.quarantine` sidecar (with a reason header per line) and the log is
// rewritten without them, so one bad record costs one job — detected and
// counted, never silently — instead of the whole suffix.
//
// What quarantines: a failed CRC frame, unparseable JSON, an empty job id, an
// unknown record type, a submitted record with no request, a finish record
// for a job with no submitted record (a "ghost" — its submit was itself
// damaged), and a completed record with no result. What does not: duplicate
// submitted records and repeated finish records are legitimate products of
// crash-recovery re-execution and replay handles them (first-submit-wins,
// last-finish-wins); blank lines are kept; a torn final line (no trailing
// newline) is truncation damage, not corruption, and is dropped without
// quarantine exactly as before.
//
// The sidecar is diagnostic: it is swept away at the next startup (along with
// stale `.compact` temp files), so it describes the damage found by the most
// recent recovery only. Writing it is best-effort; rewriting the log itself
// is not — a rewrite failure degrades the journal rather than replaying
// records that were supposed to be quarantined.

// quarantineEntry is one rejected journal line and why it was rejected.
type quarantineEntry struct {
	line   []byte
	reason string
}

// scanResult is the outcome of a full-journal integrity scan.
type scanResult struct {
	// recs holds the replayable records in log order.
	recs []*journalRecord
	// keep is the clean log image: every valid line, original bytes, in
	// order. Byte-identical to the input minus quarantined lines and the
	// torn tail.
	keep []byte
	// quarantined holds the rejected lines.
	quarantined []quarantineEntry
	// tornBytes counts trailing bytes dropped as a torn final line.
	tornBytes int
	// jobs/finished count distinct jobs seen and how many have a finish.
	jobs, finished int
}

// scanJournal classifies every line of a journal image. Pure function: no
// I/O, no mutation of raw.
func scanJournal(raw []byte) scanResult {
	var res scanResult
	var keep bytes.Buffer
	seen := map[string]bool{} // id -> submitted record seen
	done := map[string]bool{} // id -> finish record seen
	rest := raw
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// No newline before EOF: torn final line (crash mid-write).
			res.tornBytes = len(rest)
			break
		}
		line := rest[:nl]
		rest = rest[nl+1:]
		quarantine := func(reason string) {
			res.quarantined = append(res.quarantined, quarantineEntry{line: line, reason: reason})
		}
		if len(bytes.TrimSpace(line)) == 0 {
			keep.Write(line)
			keep.WriteByte('\n')
			continue
		}
		if len(line) > maxJournalRecord {
			quarantine(fmt.Sprintf("record too large (%d bytes, max %d)", len(line), maxJournalRecord))
			continue
		}
		payload, err := unframeLine(line)
		if err != nil {
			quarantine(err.Error())
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			quarantine(fmt.Sprintf("invalid JSON: %v", err))
			continue
		}
		if rec.ID == "" {
			quarantine("record without job id")
			continue
		}
		switch rec.Type {
		case recSubmitted:
			if rec.Req == nil {
				quarantine("submitted record without request")
				continue
			}
			if !seen[rec.ID] {
				seen[rec.ID] = true
				res.jobs++
			}
		case recCompleted:
			if !seen[rec.ID] {
				quarantine(fmt.Sprintf("finish record for unknown job %s (its submitted record is missing or damaged)", rec.ID))
				continue
			}
			if rec.Result == nil {
				quarantine("completed record without result")
				continue
			}
			if !done[rec.ID] {
				done[rec.ID] = true
				res.finished++
			}
		case recFailed:
			if !seen[rec.ID] {
				quarantine(fmt.Sprintf("finish record for unknown job %s (its submitted record is missing or damaged)", rec.ID))
				continue
			}
			if !done[rec.ID] {
				done[rec.ID] = true
				res.finished++
			}
		default:
			quarantine(fmt.Sprintf("unknown record type %q", rec.Type))
			continue
		}
		r := rec
		res.recs = append(res.recs, &r)
		keep.Write(line)
		keep.WriteByte('\n')
	}
	res.keep = keep.Bytes()
	return res
}

// quarantineClip bounds one sidecar line: the sidecar is a diagnostic, not an
// archive, so an absurdly long damaged line is clipped rather than copied.
const quarantineClip = 4096

// writeQuarantine writes the quarantine sidecar for path: per rejected line,
// a `# reason` header then the (clipped) line itself. Best-effort by
// contract — the caller ignores the returned error for recovery purposes.
func writeQuarantine(fsys vfs.FS, path string, entries []quarantineEntry) error {
	f, err := fsys.OpenFile(path+".quarantine", os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, e := range entries {
		fmt.Fprintf(&buf, "# %s\n", e.reason)
		line := e.line
		if len(line) > quarantineClip {
			fmt.Fprintf(&buf, "%s... [clipped, %d bytes total]\n", line[:quarantineClip], len(line))
			continue
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// rewriteLog atomically replaces the journal at path with the clean image:
// temp file, fsync, rename — the same crash-safety discipline compaction
// uses, reusing the `.compact` temp name so the startup sweep covers both.
func rewriteLog(fsys vfs.FS, path string, clean []byte) error {
	tmpPath := path + ".compact"
	tmp, err := fsys.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: scrub rewrite: %w", err)
	}
	if _, err := tmp.Write(clean); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		fsys.Remove(tmpPath)
		return fmt.Errorf("journal: scrub rewrite: %w", err)
	}
	if err != nil {
		tmp.Close()
		fsys.Remove(tmpPath)
		return fmt.Errorf("journal: scrub rewrite: %w", err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpPath)
		return fmt.Errorf("journal: scrub rewrite close: %w", err)
	}
	if err := fsys.Rename(tmpPath, path); err != nil {
		fsys.Remove(tmpPath)
		return fmt.Errorf("journal: scrub rewrite rename: %w", err)
	}
	return nil
}

// ScrubReport summarizes an offline journal scrub (detserve -scrub /
// -verify-journal).
type ScrubReport struct {
	// Records is the number of replayable records.
	Records int `json:"records"`
	// Jobs is the number of distinct jobs; Finished how many of them have a
	// durable finish record.
	Jobs     int `json:"jobs"`
	Finished int `json:"finished"`
	// Quarantined is the number of damaged lines found.
	Quarantined int `json:"quarantined"`
	// TornBytes is the length of the torn final line, if any.
	TornBytes int `json:"torn_bytes,omitempty"`
	// Rewritten reports whether the log was rewritten (apply mode with
	// damage present).
	Rewritten bool `json:"rewritten"`
	// QuarantinePath is the sidecar path when damage was quarantined.
	QuarantinePath string `json:"quarantine_path,omitempty"`
}

// ScrubJournal scans the journal at path for integrity damage. With apply
// set, damaged lines are quarantined to the sidecar and the log is rewritten
// without them (plus torn-tail removal); without it, the scan is read-only —
// the -verify-journal mode. A missing journal is an empty, healthy one.
func ScrubJournal(fsys vfs.FS, path string, apply bool) (ScrubReport, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	raw, err := fsys.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ScrubReport{}, nil
		}
		return ScrubReport{}, fmt.Errorf("journal: read %s: %w", path, err)
	}
	res := scanJournal(raw)
	rep := ScrubReport{
		Records:     len(res.recs),
		Jobs:        res.jobs,
		Finished:    res.finished,
		Quarantined: len(res.quarantined),
		TornBytes:   res.tornBytes,
	}
	if !apply || (len(res.quarantined) == 0 && res.tornBytes == 0) {
		return rep, nil
	}
	if len(res.quarantined) > 0 {
		if err := writeQuarantine(fsys, path, res.quarantined); err == nil {
			rep.QuarantinePath = path + ".quarantine"
		}
	}
	if err := rewriteLog(fsys, path, res.keep); err != nil {
		return rep, err
	}
	rep.Rewritten = true
	return rep, nil
}
