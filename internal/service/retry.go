package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/det"
	"repro/internal/diag"
)

// Retry policy: a job's failures split into two families, and only one is
// worth retrying.
//
//   - Deterministic failures — deadlock, race, divergence, misuse, parse
//     errors — are properties of the (program, config) pair: by weak
//     determinism a retry provably reproduces them. They fail the job on the
//     first attempt.
//   - Transient failures — contained worker panics and injected faults —
//     are properties of the serving environment, not the program. They are
//     retried with exponential backoff and deterministic jitter, up to
//     Config.MaxRetries, after which the job fails with a typed
//     *diag.RetryError (errors.Is(err, diag.ErrRetriesExhausted)).
//
// Deadline expiry is neither: it is policy, typed *diag.TimeoutError, and
// never retried (the budget is already spent).

// retryable reports whether err is a transient failure worth re-attempting.
func retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, diag.ErrDeadline), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false // the time budget is spent; a retry cannot help
	case errors.Is(err, diag.ErrDeadlock), errors.Is(err, diag.ErrRace),
		errors.Is(err, diag.ErrDivergence), errors.Is(err, diag.ErrBadConfig),
		errors.Is(err, diag.ErrRaceBackend), errors.Is(err, diag.ErrDetectorMidRun):
		return false // deterministic: a retry provably reproduces the failure
	case errors.Is(err, diag.ErrInjected):
		return true // chaos-harness fault: transient by construction
	case errors.Is(err, errContainedPanic):
		return true // contained worker panic: environment, not program
	default:
		return false
	}
}

// errContainedPanic tags panics the worker recovered from a job execution,
// so the retry classifier can tell them apart from structured reports.
var errContainedPanic = errors.New("contained worker panic")

// backoff computes retry delays: exponential from Base, capped at Max, with
// full deterministic jitter drawn from a det.Rand stream — the same
// generator family every injector in the repo uses, so retry schedules in
// tests are a pure function of Config.RetrySeed.
type backoff struct {
	base, max time.Duration

	mu  sync.Mutex
	rng *det.Rand
}

func newBackoff(base, max time.Duration, seed int64) *backoff {
	return &backoff{base: base, max: max, rng: det.NewRand(seed, 2)}
}

// delay returns the pause before retry attempt n (n = 1 for the first
// retry): a uniformly jittered draw from (0, min(base·2ⁿ⁻¹, max)]. Full
// jitter (rather than equal or decorrelated) keeps herds of jobs that failed
// together from retrying together.
//
// The exponential is computed as a clamped shift, not repeated doubling:
// base·2ⁿ⁻¹ fits below max exactly when base ≤ max>>(n-1), and any larger
// attempt count — including ones whose doubling would overflow
// time.Duration and come out negative — saturates at max.
func (b *backoff) delay(n int) time.Duration {
	if n < 1 {
		n = 1
	}
	d := b.max
	if shift := uint(n - 1); shift < 63 && b.base <= b.max>>shift {
		d = b.base << shift
	}
	if d <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.rng.Next()%uint64(d)) + 1
}

// sleep pauses for d but returns early — with the context's error — if ctx
// is done first, so a job whose deadline expires mid-backoff fails promptly.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}
