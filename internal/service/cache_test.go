package service

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.add("a", 1)
	c.add("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted under capacity")
	}
	// "a" is now most recent; adding "c" must evict "b".
	c.add("c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("newest entry c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Refreshing an existing key must not grow the cache.
	c.add("c", 4)
	if v, _ := c.get("c"); v.(int) != 4 {
		t.Fatalf("refresh did not replace value: %v", v)
	}
	if c.len() != 2 {
		t.Fatalf("len after refresh = %d, want 2", c.len())
	}
}

// TestLRUConcurrentEviction hammers a small LRU from many goroutines whose
// key ranges overlap, so adds, hits, refreshes, and evictions race — run
// under -race in CI. The invariants: the cache never exceeds capacity, every
// value read matches its key, and the map and recency list stay consistent.
func TestLRUConcurrentEviction(t *testing.T) {
	const (
		capacity   = 8
		goroutines = 16
		ops        = 2000
		keyspace   = 32 // 4× capacity: constant eviction pressure
	)
	c := newLRU(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := (g*7 + i) % keyspace // overlapping, shifted walks
				key := fmt.Sprintf("k%d", k)
				if v, ok := c.get(key); ok {
					if v.(int) != k {
						t.Errorf("key %s returned value %v", key, v)
						return
					}
				} else {
					c.add(key, k)
				}
				if n := c.len(); n > capacity {
					t.Errorf("cache grew to %d > capacity %d", n, capacity)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Post-race consistency: map and list agree, every survivor is readable.
	c.mu.Lock()
	if len(c.items) != c.ll.Len() {
		t.Fatalf("map has %d entries, list %d", len(c.items), c.ll.Len())
	}
	keys := make([]string, 0, len(c.items))
	for k := range c.items {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	if len(keys) != capacity {
		t.Fatalf("cache holds %d entries after sustained pressure, want %d", len(keys), capacity)
	}
	for _, k := range keys {
		if _, ok := c.get(k); !ok {
			t.Fatalf("surviving key %s unreadable", k)
		}
	}
}

// TestCacheKeySensitivity: every field that can change the outcome must
// change the content address; fields that cannot must not.
func TestCacheKeySensitivity(t *testing.T) {
	base := Request{Source: "module m", Entry: "main", Threads: 4, Preset: "all"}

	if instrKey(&base) != instrKey(&base) {
		t.Fatal("instrKey not stable")
	}
	variants := []Request{
		{Source: "module m2", Entry: "main", Threads: 4, Preset: "all"},
		{Source: "module m", Entry: "other", Threads: 4, Preset: "all"},
		{Source: "module m", Entry: "main", Threads: 4, Preset: "O2"},
		{Source: "module m", Entry: "main", Threads: 4, Preset: "all", Baseline: true},
	}
	for i, v := range variants {
		if instrKey(&v) == instrKey(&base) {
			t.Errorf("instr variant %d collided with base", i)
		}
	}
	// Threads, seed, and race do not affect instrumentation…
	same := base
	same.Threads, same.PerturbSeed, same.Race = 8, 99, true
	if instrKey(&same) != instrKey(&base) {
		t.Error("sim-only fields leaked into instrKey")
	}
	// …but all affect the result key.
	if resultKey("mod", &same) == resultKey("mod", &base) {
		t.Error("resultKey ignored sim config changes")
	}
	if resultKey("modA", &base) == resultKey("modB", &base) {
		t.Error("resultKey ignored module text")
	}
	if resultKey("mod", &base) != resultKey("mod", &base) {
		t.Error("resultKey not stable")
	}
}

func TestSampler(t *testing.T) {
	if s := newSampler(0, 1); s != nil {
		t.Fatal("rate 0 should disable sampling")
	}
	var nilS *sampler
	if nilS.sample() {
		t.Fatal("nil sampler sampled")
	}
	always := newSampler(1, 1)
	for i := 0; i < 100; i++ {
		if !always.sample() {
			t.Fatal("rate 1 sampler skipped a hit")
		}
	}
	half := newSampler(0.5, 42)
	hits := 0
	for i := 0; i < 10000; i++ {
		if half.sample() {
			hits++
		}
	}
	if hits < 4000 || hits > 6000 {
		t.Fatalf("rate 0.5 sampled %d/10000", hits)
	}
	// Determinism: same seed → same stream.
	a, b := newSampler(0.3, 7), newSampler(0.3, 7)
	for i := 0; i < 1000; i++ {
		if a.sample() != b.sample() {
			t.Fatalf("sampler streams diverged at draw %d", i)
		}
	}
}
