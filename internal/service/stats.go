package service

import (
	"sync"
	"sync/atomic"
)

// counters aggregates service-lifetime statistics. All fields are atomics:
// workers update them concurrently, and Snapshot reads without stopping the
// world (individual counters are exact; a snapshot is only approximately a
// single instant, which is fine for monitoring).
type counters struct {
	accepted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64

	instrHits    atomic.Int64
	instrMisses  atomic.Int64
	resultHits   atomic.Int64
	resultMisses atomic.Int64

	selfChecks  atomic.Int64
	divergences atomic.Int64

	parse      stageAgg
	instrument stageAgg
	simulate   stageAgg
	overhead   stageAgg
}

// stageAgg accumulates one pipeline stage's latency.
type stageAgg struct {
	count   atomic.Int64
	totalNS atomic.Int64
}

func (a *stageAgg) record(ns int64) {
	a.count.Add(1)
	a.totalNS.Add(ns)
}

func (a *stageAgg) snapshot() StageStats {
	c, t := a.count.Load(), a.totalNS.Load()
	s := StageStats{Count: c, TotalNS: t}
	if c > 0 {
		s.AvgNS = t / c
	}
	return s
}

// StageStats is one pipeline stage's aggregate latency.
type StageStats struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	AvgNS   int64 `json:"avg_ns"`
}

// StatsSnapshot is the GET /v1/stats payload.
type StatsSnapshot struct {
	JobsAccepted  int64 `json:"jobs_accepted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsRejected  int64 `json:"jobs_rejected"`

	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	Workers    int `json:"workers"`

	InstrCacheHits    int64 `json:"instr_cache_hits"`
	InstrCacheMisses  int64 `json:"instr_cache_misses"`
	InstrCacheSize    int   `json:"instr_cache_size"`
	ResultCacheHits   int64 `json:"result_cache_hits"`
	ResultCacheMisses int64 `json:"result_cache_misses"`
	ResultCacheSize   int   `json:"result_cache_size"`

	// SelfChecks counts sampled cache hits that were re-executed;
	// Divergences counts self-checks whose re-execution disagreed with the
	// stored schedule. Any nonzero value here means the weak-determinism
	// contract was violated somewhere below the service.
	SelfChecks  int64 `json:"self_checks"`
	Divergences int64 `json:"divergences"`

	Stages map[string]StageStats `json:"stage_latency"`
}

// sampler draws deterministic pseudo-random booleans for the self-check.
// An xorshift64* stream seeded by Config.SelfCheckSeed makes the sampled
// subset reproducible for a given submission order.
type sampler struct {
	mu        sync.Mutex
	state     uint64
	threshold uint64 // sample when next() < threshold
}

func newSampler(rate float64, seed int64) *sampler {
	if rate <= 0 {
		return nil
	}
	if rate > 1 {
		rate = 1
	}
	s := &sampler{state: uint64(seed)*2685821657736338717 + 1}
	s.threshold = uint64(rate * float64(^uint64(0)>>1))
	if rate >= 1 {
		s.threshold = ^uint64(0)
	}
	return s
}

// sample returns true for approximately rate of calls.
func (s *sampler) sample() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state ^= s.state >> 12
	s.state ^= s.state << 25
	s.state ^= s.state >> 27
	v := s.state * 2685821657736338717
	return v>>1 < s.threshold
}
