package service

import (
	"sort"
	"sync"
	"sync/atomic"
)

// counters aggregates service-lifetime statistics. All fields are atomics:
// workers update them concurrently, and Snapshot reads without stopping the
// world (individual counters are exact; a snapshot is only approximately a
// single instant, which is fine for monitoring).
type counters struct {
	accepted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64

	// rejects breaks the rejected total down by admission cause, and
	// queueHighWater tracks the deepest backlog ever observed — the two
	// signals workload runs assert admission behavior against without
	// scraping logs.
	rejects        rejectCounters
	queueHighWater atomic.Int64

	instrHits    atomic.Int64
	instrMisses  atomic.Int64
	resultHits   atomic.Int64
	resultMisses atomic.Int64

	selfChecks  atomic.Int64
	divergences atomic.Int64

	retries       atomic.Int64
	timeouts      atomic.Int64
	journalErrors atomic.Int64
	recovered     atomic.Int64
	recoverChecks atomic.Int64

	// Integrity counters: journal lines quarantined by the recovery scrub,
	// and corruption events detected anywhere (quarantined records, corrupt
	// peer responses, bad ship batches).
	quarantined atomic.Int64
	corruptions atomic.Int64

	// Cluster counters: peer cache fills accepted / rejected as inconsistent
	// / cross-checked, fill requests served to peers, offers installed, jobs
	// lent to work-stealers, and lent jobs reclaimed.
	peerFills       atomic.Int64
	peerFillRejects atomic.Int64
	peerChecks      atomic.Int64
	peerServes      atomic.Int64
	offers          atomic.Int64
	stolen          atomic.Int64
	stealReclaims   atomic.Int64

	parse      stageAgg
	instrument stageAgg
	simulate   stageAgg
	overhead   stageAgg

	failures failureRing
}

// rejectCounters counts rejections per admission cause (Classify class).
// Causes are a small closed set, so fixed atomics keep the hot rejection
// path allocation- and lock-free.
type rejectCounters struct {
	queueFull   atomic.Int64
	overloaded  atomic.Int64
	circuitOpen atomic.Int64
	closed      atomic.Int64
	misuse      atomic.Int64
}

// bump increments the counter for one Classify class.
func (rc *rejectCounters) bump(class string) {
	switch class {
	case "queue_full":
		rc.queueFull.Add(1)
	case "overloaded":
		rc.overloaded.Add(1)
	case "circuit_open":
		rc.circuitOpen.Add(1)
	case "closed":
		rc.closed.Add(1)
	default:
		rc.misuse.Add(1)
	}
}

// snapshot returns the nonzero per-cause counts.
func (rc *rejectCounters) snapshot() map[string]int64 {
	out := map[string]int64{}
	for _, e := range []struct {
		class string
		c     *atomic.Int64
	}{
		{"queue_full", &rc.queueFull},
		{"overloaded", &rc.overloaded},
		{"circuit_open", &rc.circuitOpen},
		{"closed", &rc.closed},
		{"misuse", &rc.misuse},
	} {
		if v := e.c.Load(); v != 0 {
			out[e.class] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ringSamples bounds every sample-holding accumulator: a long-running
// detserve records millions of jobs, but its stats memory must stay
// constant, so latency percentiles come from a fixed ring of the most
// recent samples and failures from a fixed ring of the most recent reports.
// Lifetime counts/totals remain exact (they are plain counters).
const (
	latencyRingSize = 256
	failureRingSize = 64
)

// stageAgg accumulates one pipeline stage's latency: exact lifetime
// count/total (atomics) plus a bounded ring of recent samples for the
// percentile snapshot.
type stageAgg struct {
	count   atomic.Int64
	totalNS atomic.Int64

	mu      sync.Mutex
	samples [latencyRingSize]int64
	next    int
	filled  bool
}

func (a *stageAgg) record(ns int64) {
	a.count.Add(1)
	a.totalNS.Add(ns)
	a.mu.Lock()
	a.samples[a.next] = ns
	a.next++
	if a.next == len(a.samples) {
		a.next, a.filled = 0, true
	}
	a.mu.Unlock()
}

func (a *stageAgg) snapshot() StageStats {
	c, t := a.count.Load(), a.totalNS.Load()
	s := StageStats{Count: c, TotalNS: t}
	if c > 0 {
		s.AvgNS = t / c
	}
	a.mu.Lock()
	n := a.next
	if a.filled {
		n = len(a.samples)
	}
	recent := make([]int64, n)
	copy(recent, a.samples[:n])
	a.mu.Unlock()
	if n > 0 {
		sort.Slice(recent, func(i, j int) bool { return recent[i] < recent[j] })
		s.P50NS = recent[n/2]
		s.P95NS = recent[(n*95)/100]
	}
	return s
}

// StageStats is one pipeline stage's aggregate latency. P50/P95 are computed
// over the bounded recent-sample ring, not the whole lifetime.
type StageStats struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	AvgNS   int64 `json:"avg_ns"`
	P50NS   int64 `json:"p50_ns,omitempty"`
	P95NS   int64 `json:"p95_ns,omitempty"`
}

// FailureRecord is one entry of the bounded recent-failures ring.
type FailureRecord struct {
	JobID string `json:"job_id"`
	Kind  string `json:"kind"`
	Error string `json:"error"`
}

// failureRing retains the most recent failureRingSize failures; older ones
// are overwritten, so failure history never grows without bound.
type failureRing struct {
	mu     sync.Mutex
	buf    [failureRingSize]FailureRecord
	next   int
	filled bool
}

func (r *failureRing) record(id, kind, msg string) {
	r.mu.Lock()
	r.buf[r.next] = FailureRecord{JobID: id, Kind: kind, Error: msg}
	r.next++
	if r.next == len(r.buf) {
		r.next, r.filled = 0, true
	}
	r.mu.Unlock()
}

// snapshot returns the retained failures, oldest first.
func (r *failureRing) snapshot() []FailureRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []FailureRecord
	if r.filled {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// StatsSnapshot is the GET /v1/stats payload.
type StatsSnapshot struct {
	JobsAccepted  int64 `json:"jobs_accepted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsRejected  int64 `json:"jobs_rejected"`

	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	Workers    int `json:"workers"`

	// QueueHighWater is the deepest queue backlog ever observed;
	// RejectByCause breaks JobsRejected down by admission cause
	// ("queue_full", "overloaded", "circuit_open", "closed", "misuse").
	QueueHighWater int              `json:"queue_high_water"`
	RejectByCause  map[string]int64 `json:"reject_by_cause,omitempty"`

	InstrCacheHits    int64 `json:"instr_cache_hits"`
	InstrCacheMisses  int64 `json:"instr_cache_misses"`
	InstrCacheSize    int   `json:"instr_cache_size"`
	ResultCacheHits   int64 `json:"result_cache_hits"`
	ResultCacheMisses int64 `json:"result_cache_misses"`
	ResultCacheSize   int   `json:"result_cache_size"`

	// SelfChecks counts sampled cache hits that were re-executed;
	// Divergences counts self-checks and recovery cross-checks whose
	// re-execution disagreed with the stored schedule. Any nonzero value
	// here means the weak-determinism contract was violated somewhere below
	// the service.
	SelfChecks  int64 `json:"self_checks"`
	Divergences int64 `json:"divergences"`

	// Robustness counters. Retries counts re-attempted transient failures;
	// Timeouts counts jobs canceled by deadline or client disconnect.
	Retries  int64 `json:"retries"`
	Timeouts int64 `json:"timeouts"`

	// InflightBytes is the admitted-but-unfinished request weight the
	// in-flight-bytes load shedder tracks against MaxInflightBytes.
	InflightBytes    int64 `json:"inflight_bytes"`
	MaxInflightBytes int64 `json:"max_inflight_bytes"`

	// Journal state: whether a journal is configured and healthy, how many
	// jobs it knows (and how many have durable finish records), write
	// errors, and jobs recovered/cross-checked after the last restart.
	JournalEnabled  bool  `json:"journal_enabled"`
	JournalDegraded bool  `json:"journal_degraded"`
	JournalJobs     int   `json:"journal_jobs,omitempty"`
	JournalFinished int   `json:"journal_finished,omitempty"`
	JournalErrors   int64 `json:"journal_errors"`
	RecoveredJobs   int64 `json:"recovered_jobs"`
	RecoveryChecks  int64 `json:"recovery_checks"`

	// Integrity counters: journal lines the recovery scrub quarantined to
	// the `.quarantine` sidecar this boot, and corruption events detected
	// anywhere (quarantined records, corrupt peer payloads, bad ship
	// batches). Corrupt bytes are recovered around, never served — these
	// counters are how operators see that it happened.
	JournalQuarantined int64 `json:"journal_quarantined,omitempty"`
	CorruptionEvents   int64 `json:"corruption_events,omitempty"`

	// Circuit-breaker state ("closed", "open", "half-open") and lifetime
	// trip count.
	BreakerState string `json:"breaker_state"`
	BreakerTrips int64  `json:"breaker_trips"`

	// Cluster counters (zero in single-process mode): results accepted from
	// peer cache fills, fills rejected as self-inconsistent, fills
	// cross-checked by local re-execution, fill requests served to peers,
	// peer offers installed, jobs lent to work-stealing peers, and lent jobs
	// reclaimed after the stealer went silent.
	PeerFills       int64 `json:"peer_fills,omitempty"`
	PeerFillRejects int64 `json:"peer_fill_rejects,omitempty"`
	PeerFillChecks  int64 `json:"peer_fill_checks,omitempty"`
	PeerServes      int64 `json:"peer_serves,omitempty"`
	PeerOffers      int64 `json:"peer_offers,omitempty"`
	JobsStolen      int64 `json:"jobs_stolen,omitempty"`
	StealReclaims   int64 `json:"steal_reclaims,omitempty"`

	// RecentFailures is the bounded failure ring, oldest first.
	RecentFailures []FailureRecord `json:"recent_failures,omitempty"`

	Stages map[string]StageStats `json:"stage_latency"`
}

// sampler draws deterministic pseudo-random booleans for the self-check.
// An xorshift64* stream seeded by Config.SelfCheckSeed makes the sampled
// subset reproducible for a given submission order.
type sampler struct {
	mu        sync.Mutex
	state     uint64
	threshold uint64 // sample when next() < threshold
}

func newSampler(rate float64, seed int64) *sampler {
	if rate <= 0 {
		return nil
	}
	if rate > 1 {
		rate = 1
	}
	s := &sampler{state: uint64(seed)*2685821657736338717 + 1}
	s.threshold = uint64(rate * float64(^uint64(0)>>1))
	if rate >= 1 {
		s.threshold = ^uint64(0)
	}
	return s
}

// sample returns true for approximately rate of calls.
func (s *sampler) sample() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state ^= s.state >> 12
	s.state ^= s.state << 25
	s.state ^= s.state >> 27
	v := s.state * 2685821657736338717
	return v>>1 < s.threshold
}
