package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/diag"
)

// This file is the service's graceful-leave and anti-entropy surface: what the
// cluster layer needs to drain a node without losing work and to repair a
// result cache that drifted from its peers. Like the rest of clusterapi.go,
// none of it runs in single-process mode.

// StartDrain flips the service into draining: new submissions are rejected
// with a typed ErrDraining and Ready reports unready, but — unlike Close —
// the queue stays open, workers keep executing, lent jobs can still complete,
// and the journal keeps recording. The cluster layer calls this first, hands
// the queued backlog to peers, then waits with DrainWait before Close.
func (s *Service) StartDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether StartDrain has been called.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// DrainWait blocks until every accepted job has reached a terminal state:
// the queue is empty, no job is queued or running, and no lent (stolen) job
// is still out with a peer. It must run after StartDrain (otherwise new
// submissions can extend the wait forever) and before Close (lent-job
// completions are dropped once the service closes).
func (s *Service) DrainWait(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.drained() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func (s *Service) drained() bool {
	if len(s.queue) > 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.lent) > 0 {
		return false
	}
	for _, j := range s.jobs {
		if j.status == StatusQueued || j.status == StatusRunning {
			return false
		}
	}
	return true
}

// CacheKey summarizes one result-cache entry for the repair plane: the
// content-addressed key, the schedule hash the entry claims, and whether the
// entry stores its originating request (and can therefore be re-verified by
// deterministic recompute).
type CacheKey struct {
	Key          string `json:"key"`
	ScheduleHash string `json:"schedule_hash"`
	Verifiable   bool   `json:"verifiable"`
}

// CacheScan enumerates the result cache in key order — the deterministic
// input the anti-entropy digests and the rebalance diff are computed over.
// A degraded service scans empty: its cache is off.
func (s *Service) CacheScan() []CacheKey {
	if s.degraded.Load() {
		return nil
	}
	keys := s.results.keys()
	sort.Strings(keys)
	out := make([]CacheKey, 0, len(keys))
	for _, k := range keys {
		v, ok := s.results.peek(k)
		if !ok {
			continue
		}
		ent := v.(*resultEntry)
		out = append(out, CacheKey{Key: k, ScheduleHash: ent.res.ScheduleHash, Verifiable: ent.req != nil})
	}
	return out
}

// ExportResult returns the wire-form result and (when stored) originating
// request for one cache entry — the payload a rebalance push or drain handoff
// sends the key's new owner. The request rides along so the receiving owner
// installs a recheckable entry, not a bare unverifiable result.
func (s *Service) ExportResult(key string) (*Result, *Request, bool) {
	if s.degraded.Load() {
		return nil, nil, false
	}
	v, ok := s.results.peek(key)
	if !ok {
		return nil, nil, false
	}
	ent := v.(*resultEntry)
	var req *Request
	if ent.req != nil {
		rc := *ent.req
		req = &rc
	}
	return exportEntry(ent), req, true
}

// EvictResult drops a result-cache entry (rebalanced away, or quarantined by
// a repair decision made at the cluster layer).
func (s *Service) EvictResult(key string) {
	s.results.remove(key)
}

// RecheckResult arbitrates a suspect result-cache entry by deterministic
// recompute — the repair loop calls it when a peer's digest disagrees with
// ours on a key. Outcomes:
//
//   - nil: the stored entry reproduced exactly; the local copy is sound (and
//     the disagreeing peer is the suspect).
//   - *diag.CorruptionError: the local entry was wrong or unverifiable. It is
//     quarantined — evicted, never served again — and when recompute was
//     possible the freshly computed entry replaces it, with the divergence
//     counted and fed to the admission circuit breaker.
func (s *Service) RecheckResult(ctx context.Context, key string) error {
	if s.degraded.Load() {
		return nil
	}
	v, ok := s.results.peek(key)
	if !ok {
		return nil
	}
	ent := v.(*resultEntry)
	if ent.req == nil {
		s.results.remove(key)
		return &diag.CorruptionError{Source: "result cache",
			Detail: fmt.Sprintf("entry %.12s carries no originating request; evicted as unverifiable", key)}
	}
	var lat StageLatency
	ie, _, err := s.instrumented(ent.req, &lat)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		s.results.remove(key)
		return &diag.CorruptionError{Source: "result cache",
			Detail: fmt.Sprintf("entry %.12s could not be re-instrumented: %v; evicted", key, err)}
	}
	fresh, err := s.simulate(ctx, ie, ent.req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		s.results.remove(key)
		return &diag.CorruptionError{Source: "result cache",
			Detail: fmt.Sprintf("entry %.12s could not be re-executed: %v; evicted", key, err)}
	}
	if fresh.res.ScheduleHash == ent.res.ScheduleHash {
		return nil
	}
	// The stored entry disagrees with its own deterministic recompute: the
	// copy is damaged. Replace it with the recompute — that IS the repair —
	// and report the divergence.
	s.results.add(key, fresh)
	s.ctr.divergences.Add(1)
	s.ctr.failures.record("", "corruption",
		fmt.Sprintf("repair recheck %.12s: stored schedule hash %s, recompute produced %s", key, ent.res.ScheduleHash, fresh.res.ScheduleHash))
	s.breaker.onDivergence()
	return &diag.CorruptionError{Source: "result cache",
		Detail: fmt.Sprintf("entry %.12s diverged from deterministic recompute (stored %s, fresh %s); replaced", key, ent.res.ScheduleHash, fresh.res.ScheduleHash)}
}

// CheckSnapshotRecords cross-checks a peer-supplied journal snapshot (the
// shipping resync payload) by re-execution: up to maxChecks completed records
// are paired with their submitted requests and re-run through the detached
// pipeline, and the schedule hashes must match. This is the divergence
// cross-check a joining node runs on its bootstrap payload and a drain
// successor runs on a transferred journal segment — state transfer is proved
// correct, not just copied. Frame or parse damage returns a typed
// *diag.CorruptionError; a hash mismatch returns a divergence error, counted
// and fed to the circuit breaker.
func (s *Service) CheckSnapshotRecords(ctx context.Context, lines [][]byte, maxChecks int) error {
	reqs := make(map[string]*Request)
	type completion struct{ id, hash string }
	var completed []completion
	for _, line := range lines {
		payload, err := unframeLine(bytes.TrimRight(line, "\n"))
		if err != nil {
			return &diag.CorruptionError{Source: "journal snapshot", Detail: err.Error()}
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return &diag.CorruptionError{Source: "journal snapshot", Detail: fmt.Sprintf("record does not parse: %v", err)}
		}
		switch rec.Type {
		case recSubmitted:
			if rec.Req != nil {
				reqs[rec.ID] = rec.Req
			}
		case recCompleted:
			if rec.Result != nil {
				completed = append(completed, completion{rec.ID, rec.Result.ScheduleHash})
			}
		}
	}
	checked := 0
	for _, c := range completed {
		if maxChecks > 0 && checked >= maxChecks {
			break
		}
		req, ok := reqs[c.id]
		if !ok {
			continue
		}
		res, err := s.ExecuteDetached(ctx, *req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			err = fmt.Errorf("service: snapshot cross-check %s: %w: journaled completion could not be reproduced: %w",
				c.id, diag.ErrDivergence, err)
			s.ctr.divergences.Add(1)
			s.ctr.failures.record(c.id, "divergence", err.Error())
			s.breaker.onDivergence()
			return err
		}
		if res.ScheduleHash != c.hash {
			err := fmt.Errorf("service: snapshot cross-check %s: %w: journaled schedule hash %s, re-execution produced %s",
				c.id, diag.ErrDivergence, c.hash, res.ScheduleHash)
			s.ctr.divergences.Add(1)
			s.ctr.failures.record(c.id, "divergence", err.Error())
			s.breaker.onDivergence()
			return err
		}
		checked++
	}
	return nil
}
