package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/splash"
	"repro/internal/trace"
)

// deadlockProgram self-deadlocks: every thread re-locks a mutex it already
// holds, so the instant all threads are blocked the simulator's deadlock
// detector fires with a structured report.
const deadlockProgram = `
module deadlock
locks 1

func main() regs 2 {
entry:
  lock 0
  lock 0
  ret r0
}
`

// racyProgram races on shared[0] with no lock — the detector's typed report
// must come back as the job error.
const racyProgram = `
module racy
global shared 4

func main() regs 4 {
entry:
  r0 = tid
  store shared[0], r0
  ret r0
}
`

// splashSources renders the five paper workloads to textual IR — the service
// accepts programs as source, exactly like a remote client would submit them.
func splashSources(t testing.TB) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range splash.Names() {
		b, err := splash.New(name, 4)
		if err != nil {
			t.Fatalf("splash.New(%s): %v", name, err)
		}
		out[name] = b.Module.String()
	}
	return out
}

func mustDo(t testing.TB, s *Service, req Request) *Result {
	t.Helper()
	res, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	return res
}

// TestServiceConcurrentDeterminism is the service-level determinism
// acceptance test: ≥20 concurrent clients submit an interleaved mix of the
// five splash workloads — some identical, some distinct via PerturbSeed
// jitter — and every response's schedule hash must equal the single-client
// reference, cache hits included. The sampled self-check must report zero
// divergences.
func TestServiceConcurrentDeterminism(t *testing.T) {
	sources := splashSources(t)

	// Single-client reference hashes from an independent service instance.
	ref := map[string]string{}
	refSvc := New(Config{Workers: 1})
	defer refSvc.Close(context.Background())
	for name, src := range sources {
		res := mustDo(t, refSvc, Request{Source: src})
		if res.ScheduleLen == 0 {
			t.Fatalf("%s: empty reference schedule", name)
		}
		ref[name] = res.ScheduleHash
	}

	svc := New(Config{
		Workers:       8,
		QueueDepth:    2048,
		SelfCheckRate: 0.5,
		SelfCheckSeed: 7,
	})
	defer svc.Close(context.Background())

	const clients = 24
	seeds := []int64{0, 11, 23} // distinct cache keys; schedules must not move
	names := splash.Names()
	var wg sync.WaitGroup
	errCh := make(chan error, clients*len(names))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range names {
				// Rotate the workload order per client so submissions
				// interleave; vary the jitter seed so identical and distinct
				// cache keys mix.
				name := names[(i+c)%len(names)]
				res, err := svc.Do(context.Background(), Request{
					Source:      sources[name],
					PerturbSeed: seeds[(c+i)%len(seeds)],
				})
				if err != nil {
					errCh <- fmt.Errorf("client %d %s: %w", c, name, err)
					return
				}
				if res.ScheduleHash != ref[name] {
					errCh <- fmt.Errorf("client %d %s: hash %s != reference %s (cached=%t seed=%d)",
						c, name, res.ScheduleHash, ref[name], res.Cached, seeds[(c+i)%len(seeds)])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	snap := svc.Snapshot()
	if snap.Divergences != 0 {
		t.Fatalf("self-check reported %d divergences", snap.Divergences)
	}
	if snap.SelfChecks == 0 {
		t.Fatalf("sampled self-check never ran (hits=%d)", snap.ResultCacheHits)
	}
	if snap.ResultCacheHits == 0 {
		t.Fatalf("no result-cache hits across %d identical submissions", clients*len(names))
	}
	wantJobs := int64(clients*len(names) + 0)
	if snap.JobsCompleted != wantJobs {
		t.Fatalf("completed %d jobs, want %d (failed %d)", snap.JobsCompleted, wantJobs, snap.JobsFailed)
	}
}

// TestServiceWarmCacheSpeedup: a warm-cache submission must be at least 10×
// faster than the cold one (acceptance criterion). Radiosity is the most
// lock-intensive workload, so its cold simulation dominates a cache lookup
// by orders of magnitude.
func TestServiceWarmCacheSpeedup(t *testing.T) {
	b, err := splash.New("radiosity", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	req := Request{Source: b.Module.String()}

	svc := New(Config{Workers: 1})
	defer svc.Close(context.Background())

	start := time.Now()
	cold := mustDo(t, svc, req)
	coldDur := time.Since(start)
	if cold.Cached {
		t.Fatal("first submission reported a cache hit")
	}

	warmDur := time.Duration(1<<63 - 1)
	for i := 0; i < 5; i++ {
		start = time.Now()
		warm := mustDo(t, svc, req)
		if d := time.Since(start); d < warmDur {
			warmDur = d
		}
		if !warm.Cached {
			t.Fatalf("repeat submission %d missed the cache", i)
		}
		if warm.ScheduleHash != cold.ScheduleHash {
			t.Fatalf("warm hash %s != cold %s", warm.ScheduleHash, cold.ScheduleHash)
		}
	}
	if coldDur < 10*warmDur {
		t.Fatalf("warm cache not ≥10× faster: cold %v, best warm %v", coldDur, warmDur)
	}
}

// TestServiceSelfCheckDetectsCorruption plants a corrupted schedule in the
// result cache and verifies the self-check turns the next hit into a typed
// *diag.DivergenceError instead of serving the bad entry.
func TestServiceSelfCheckDetectsCorruption(t *testing.T) {
	b, err := splash.New("ocean", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	req := Request{Source: b.Module.String()}

	svc := New(Config{Workers: 1, SelfCheckRate: 1})
	defer svc.Close(context.Background())
	mustDo(t, svc, req)

	// Corrupt every cached schedule (there is exactly one entry) by perturbing
	// the first event's thread id.
	svc.results.mu.Lock()
	for _, el := range svc.results.items {
		ent := el.Value.(*lruEntry).val.(*resultEntry)
		bad := trace.New()
		for i, e := range ent.schedule.Events() {
			if i == 0 {
				e.Thread++
			}
			bad.Record(e.Lock, e.Thread, e.Clock)
		}
		ent.schedule = bad
	}
	svc.results.mu.Unlock()

	_, err = svc.Do(context.Background(), req)
	if !errors.Is(err, diag.ErrDivergence) {
		t.Fatalf("err = %v, want ErrDivergence", err)
	}
	var de *diag.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("no *DivergenceError in %v", err)
	}
	if svc.Snapshot().Divergences != 1 {
		t.Fatalf("divergence counter = %d, want 1", svc.Snapshot().Divergences)
	}
}

// TestServiceFailureContainment: jobs that deadlock or race fail with their
// existing structured reports while the worker pool keeps serving.
func TestServiceFailureContainment(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close(context.Background())

	_, err := svc.Do(context.Background(), Request{Source: deadlockProgram, Threads: 2})
	if !errors.Is(err, diag.ErrDeadlock) {
		t.Fatalf("deadlock job err = %v, want ErrDeadlock", err)
	}
	var dl *diag.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("no *DeadlockError in %v", err)
	}

	_, err = svc.Do(context.Background(), Request{Source: racyProgram, Threads: 2, Race: true})
	if !errors.Is(err, diag.ErrRace) {
		t.Fatalf("racy job err = %v, want ErrRace", err)
	}

	// The pool survived: a healthy job still completes.
	b, errS := splash.New("ocean", 4)
	if errS != nil {
		t.Fatalf("splash.New: %v", errS)
	}
	res := mustDo(t, svc, Request{Source: b.Module.String()})
	if res.ScheduleHash == "" {
		t.Fatal("healthy job returned no schedule hash")
	}
	snap := svc.Snapshot()
	if snap.JobsFailed != 2 || snap.JobsCompleted != 1 {
		t.Fatalf("failed/completed = %d/%d, want 2/1", snap.JobsFailed, snap.JobsCompleted)
	}
}

// TestServiceValidation: every malformed submission is a typed
// configuration-level *diag.MisuseError.
func TestServiceValidation(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close(context.Background())

	cases := []struct {
		name string
		req  Request
		kind error
	}{
		{"empty source", Request{}, diag.ErrBadConfig},
		{"negative threads", Request{Source: "x", Threads: -1}, diag.ErrBadConfig},
		{"bad preset", Request{Source: "x", Preset: "O9"}, diag.ErrBadConfig},
		{"race on baseline", Request{Source: "x", Baseline: true, Race: true}, diag.ErrRaceBackend},
	}
	for _, tc := range cases {
		_, err := svc.Submit(tc.req)
		if !errors.Is(err, tc.kind) {
			t.Errorf("%s: err = %v, want kind %v", tc.name, err, tc.kind)
		}
		var me *diag.MisuseError
		if !errors.As(err, &me) || me.ThreadID != -1 {
			t.Errorf("%s: want configuration-level *MisuseError, got %v", tc.name, err)
		}
	}

	// Parse failures surface as job errors, not panics or server faults.
	_, err := svc.Do(context.Background(), Request{Source: "not an ir program"})
	if err == nil {
		t.Fatal("malformed program accepted")
	}

	if _, err := svc.Lookup("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Lookup unknown = %v, want ErrUnknownJob", err)
	}
}

// TestServiceQueueBackpressure: a full bounded queue rejects with the typed
// ErrQueueFull rather than blocking the submitter.
func TestServiceQueueBackpressure(t *testing.T) {
	b, err := splash.New("radiosity", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()

	svc := New(Config{Workers: 1, QueueDepth: 1})
	defer svc.Close(context.Background())

	var ids []string
	sawFull := false
	for i := 0; i < 8; i++ {
		// Distinct seeds force cold simulations so the single worker stays
		// busy while the queue fills.
		id, err := svc.Submit(Request{Source: src, PerturbSeed: int64(i + 1)})
		if err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("submit %d: err = %v, want ErrQueueFull", i, err)
			}
			sawFull = true
			continue
		}
		ids = append(ids, id)
	}
	if !sawFull {
		t.Fatal("queue never filled (8 cold radiosity jobs, depth 1, 1 worker)")
	}
	// Accepted jobs all complete.
	for _, id := range ids {
		if _, err := svc.Wait(context.Background(), id); err != nil {
			t.Fatalf("accepted job %s failed: %v", id, err)
		}
	}
}

// TestServiceCloseDrains: Close refuses new work but runs everything already
// accepted to completion.
func TestServiceCloseDrains(t *testing.T) {
	b, err := splash.New("volrend", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()

	svc := New(Config{Workers: 2, QueueDepth: 32})
	var ids []string
	for i := 0; i < 6; i++ {
		id, err := svc.Submit(Request{Source: src, PerturbSeed: int64(i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := svc.Submit(Request{Source: src}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	for _, id := range ids {
		view, err := svc.Lookup(id)
		if err != nil {
			t.Fatalf("Lookup %s: %v", id, err)
		}
		if view.Status != StatusDone {
			t.Fatalf("job %s drained to status %q, want done", id, view.Status)
		}
	}
}

// TestServiceArtifacts: optional payloads appear exactly when requested, and
// the overhead row matches across cached and uncached responses.
func TestServiceArtifacts(t *testing.T) {
	b, err := splash.New("volrend", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	req := Request{Source: b.Module.String()}

	svc := New(Config{Workers: 1})
	defer svc.Close(context.Background())

	lean := mustDo(t, svc, req)
	if lean.Schedule != nil || lean.Overhead != nil || lean.Clockable != nil {
		t.Fatal("unrequested artifacts present")
	}

	full := req
	full.Artifacts = Artifacts{Schedule: true, Stats: true, OverheadRow: true}
	rich := mustDo(t, svc, full)
	if !rich.Cached {
		t.Fatal("artifact request should still hit the result cache")
	}
	if rich.Schedule == nil || rich.Schedule.Len() != rich.ScheduleLen {
		t.Fatal("schedule artifact missing or inconsistent")
	}
	if len(rich.Clockable) == 0 {
		t.Fatal("stats artifact missing clockable functions")
	}
	if rich.Overhead == nil || rich.Overhead.BaselineCycles == 0 {
		t.Fatal("overhead row missing")
	}
	// Second overhead request serves the row cached on the entry.
	again := mustDo(t, svc, full)
	if *again.Overhead != *rich.Overhead {
		t.Fatalf("overhead row changed across cached responses: %+v vs %+v", again.Overhead, rich.Overhead)
	}
}

// TestServiceBaselineJobs: baseline (FCFS, uninstrumented) jobs cache and
// replay like deterministic ones — the simulator is deterministic for a
// fixed seed — but are keyed separately from deterministic runs.
func TestServiceBaselineJobs(t *testing.T) {
	b, err := splash.New("ocean", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	req := Request{Source: b.Module.String(), Baseline: true}

	svc := New(Config{Workers: 1})
	defer svc.Close(context.Background())

	first := mustDo(t, svc, req)
	second := mustDo(t, svc, req)
	if !second.Cached || !second.InstrCached {
		t.Fatalf("baseline repeat not cached (cached=%t instr=%t)", second.Cached, second.InstrCached)
	}
	if first.ScheduleHash != second.ScheduleHash || first.Cycles != second.Cycles {
		t.Fatal("baseline results not reproducible")
	}

	det := mustDo(t, svc, Request{Source: b.Module.String()})
	if det.Cached {
		t.Fatal("deterministic job shared a cache entry with the baseline")
	}
}

// BenchmarkServiceColdSubmit measures the uncached pipeline (parse +
// instrument + simulate) per submission.
func BenchmarkServiceColdSubmit(bm *testing.B) {
	b, err := splash.New("radiosity", 4)
	if err != nil {
		bm.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()
	svc := New(Config{Workers: 1, ResultCacheSize: 1, InstrCacheSize: 1})
	defer svc.Close(context.Background())
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		// A fresh seed per iteration defeats the result cache.
		if _, err := svc.Do(context.Background(), Request{Source: src, PerturbSeed: int64(i + 1)}); err != nil {
			bm.Fatal(err)
		}
	}
}

// BenchmarkServiceWarmSubmit measures a result-cache hit end to end; the
// warm/cold ratio is the cache's value (acceptance: ≥10×).
func BenchmarkServiceWarmSubmit(bm *testing.B) {
	b, err := splash.New("radiosity", 4)
	if err != nil {
		bm.Fatalf("splash.New: %v", err)
	}
	req := Request{Source: b.Module.String()}
	svc := New(Config{Workers: 1})
	defer svc.Close(context.Background())
	if _, err := svc.Do(context.Background(), req); err != nil {
		bm.Fatal(err)
	}
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		res, err := svc.Do(context.Background(), req)
		if err != nil {
			bm.Fatal(err)
		}
		if !res.Cached {
			bm.Fatal("cache miss in warm benchmark")
		}
	}
}
