package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/splash"
)

// coreOf projects a result onto its deterministic core — the fields the
// weak-determinism contract pins. Serving metadata (Cached, Stage latencies)
// legitimately varies across runs and restarts.
func coreOf(r *Result) string {
	return fmt.Sprintf("%s/%d/%d/%d/%d/%d",
		r.ScheduleHash, r.ScheduleLen, r.Cycles, r.WaitCycles, r.Acquisitions, r.ClockUpdates)
}

// waitStatus polls Lookup until the job reaches want (background verify jobs
// flip recovered jobs asynchronously).
func waitStatus(t *testing.T, s *Service, id string, want Status) *JobView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := s.Lookup(id)
		if err != nil {
			t.Fatalf("Lookup %s: %v", id, err)
		}
		if v.Status == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %q, want %q", id, v.Status, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJournalRecoveryRoundTrip: jobs completed before a clean shutdown are
// served from the journal after restart with identical deterministic cores,
// and the background cross-check re-executes each one without divergence.
func TestJournalRecoveryRoundTrip(t *testing.T) {
	b, err := splash.New("ocean", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()
	path := filepath.Join(t.TempDir(), "jobs.journal")

	ref := map[string]string{}
	svc, err := Open(Config{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		res, err := svc.Do(context.Background(), Request{Source: src, PerturbSeed: int64(i)})
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		ref[res.JobID] = coreOf(res)
	}
	// One deterministic failure: its rendering and kind must also survive.
	_, err = svc.Do(context.Background(), Request{Source: deadlockProgram, Threads: 2})
	if err == nil {
		t.Fatal("deadlock job succeeded")
	}
	failMsg := err.Error()
	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	svc2, err := Open(Config{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer svc2.Close(context.Background())
	for id, want := range ref {
		v := waitStatus(t, svc2, id, StatusDone)
		if v.Result == nil || coreOf(v.Result) != want {
			t.Fatalf("recovered %s: core %v, want %s", id, v.Result, want)
		}
	}
	vf, err := svc2.Lookup("job-5")
	if err != nil {
		t.Fatalf("Lookup failed job: %v", err)
	}
	if vf.Status != StatusFailed || vf.Error != failMsg || vf.ErrorKind != "deadlock" {
		t.Fatalf("recovered failure = %+v, want failed/%q/deadlock", vf, failMsg)
	}

	// Cross-checks ran and agreed; new ids continue past the journal.
	deadline := time.Now().Add(5 * time.Second)
	for svc2.Snapshot().RecoveryChecks < 4 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	snap := svc2.Snapshot()
	if snap.RecoveryChecks < 4 {
		t.Fatalf("recovery checks = %d, want ≥4", snap.RecoveryChecks)
	}
	if snap.Divergences != 0 {
		t.Fatalf("recovery cross-check reported %d divergences", snap.Divergences)
	}
	if snap.RecoveredJobs != 5 {
		t.Fatalf("recovered jobs = %d, want 5", snap.RecoveredJobs)
	}
	id, err := svc2.Submit(Request{Source: src, PerturbSeed: 99})
	if err != nil {
		t.Fatalf("post-recovery submit: %v", err)
	}
	if id != "job-6" {
		t.Fatalf("post-recovery id = %s, want job-6 (sequence continues past journal)", id)
	}
}

// TestJournalReplaysIncomplete: a crash that loses completion records leaves
// jobs incomplete in the log; restart re-executes them and determinism makes
// the re-run identical to an uninterrupted one.
func TestJournalReplaysIncomplete(t *testing.T) {
	b, err := splash.New("radiosity", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()
	path := filepath.Join(t.TempDir(), "jobs.journal")

	// Reference from an uninterrupted, journal-free service.
	refSvc := New(Config{Workers: 1})
	refRes := mustDo(t, refSvc, Request{Source: src})
	refSvc.Close(context.Background())

	// A huge fsync batch keeps every completion record in the pending buffer,
	// which Kill drops — so the journal retains only submitted records.
	svc, err := Open(Config{Workers: 1, JournalPath: path, JournalFsyncEvery: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := svc.Submit(Request{Source: src, PerturbSeed: int64(i)})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, id)
	}
	if _, err := svc.Wait(context.Background(), ids[0]); err != nil {
		t.Fatalf("wait: %v", err)
	}
	svc.Kill()

	svc2, err := Open(Config{Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer svc2.Close(context.Background())
	for i, id := range ids {
		v := waitStatus(t, svc2, id, StatusDone)
		if i == 0 && coreOf(v.Result) != coreOf(refRes) {
			t.Fatalf("re-executed %s: core %s, want %s", id, coreOf(v.Result), coreOf(refRes))
		}
	}
	if got := svc2.Snapshot().RecoveredJobs; got != 3 {
		t.Fatalf("recovered jobs = %d, want 3", got)
	}
}

// TestJournalTornTail: a partial final line (crash mid-write) is truncated
// away on open, and every record before it replays.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	req := Request{Source: "m", Threads: 4, Entry: "main", Preset: "all"}
	rec := func(r journalRecord) string {
		b, _ := json.Marshal(r)
		return string(b) + "\n"
	}
	content := rec(journalRecord{Type: recSubmitted, ID: "job-1", Req: &req}) +
		rec(journalRecord{Type: recCompleted, ID: "job-1", Result: &Result{ScheduleHash: "aa"}}) +
		rec(journalRecord{Type: recSubmitted, ID: "job-2", Req: &req}) +
		`{"type":"completed","id":"job-2","resu` // torn mid-write
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	jn, jobs, err := openJournal(nil, path, 16, 4096, nil, nil)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	defer jn.close()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if !jobs[0].done || jobs[0].result == nil || jobs[0].result.ScheduleHash != "aa" {
		t.Fatalf("job-1 replay = %+v, want completed", jobs[0])
	}
	if jobs[1].done {
		t.Fatal("job-2 replayed as done from a torn record")
	}
	// The torn bytes are gone: appending and re-reading stays parseable.
	if err := jn.appendFinished("job-2", &Result{ScheduleHash: "bb"}, "", ""); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	if err := jn.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, jobs2, err := openJournal(nil, path, 16, 4096, nil, nil)
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	if len(jobs2) != 2 || !jobs2[1].done || jobs2[1].result.ScheduleHash != "bb" {
		t.Fatalf("post-truncation replay = %+v", jobs2)
	}
}

// TestJournalCompaction: duplicate finish records (the signature of repeated
// crash/recover cycles) push the raw log past the compaction trigger; the
// rewrite keeps one submitted + one finish record per job, preserves replay,
// and shrinks the file.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jn, _, err := openJournal(nil, path, 1, 8, nil, nil)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	req := Request{Source: "m"}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("job-%d", i+1)
		if err := jn.appendSubmitted(id, &req); err != nil {
			t.Fatal(err)
		}
	}
	// Re-finish each job several times, as successive recoveries would.
	for round := 0; round < 4; round++ {
		for i := 0; i < 3; i++ {
			id := fmt.Sprintf("job-%d", i+1)
			if err := jn.appendFinished(id, &Result{ScheduleHash: fmt.Sprintf("h%d", round)}, "", ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	if jn.rawRecords != 6 {
		t.Fatalf("raw records after compaction = %d, want 6 (3 submitted + 3 finish)", jn.rawRecords)
	}
	if err := jn.close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(raw), "\n"); n != 6 {
		t.Fatalf("compacted log has %d lines, want 6", n)
	}
	// Replay after compaction: last finish wins.
	_, jobs, err := openJournal(nil, path, 1, 8, nil, nil)
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	for _, jj := range jobs {
		if !jj.done || jj.result == nil || jj.result.ScheduleHash != "h3" {
			t.Fatalf("%s replay = %+v, want last finish h3", jj.id, jj)
		}
	}
}

// TestJournalDegradation: an injected journal write error degrades the
// service — journaling and the result cache turn off — but it keeps serving
// correct, freshly computed answers.
func TestJournalDegradation(t *testing.T) {
	b, err := splash.New("ocean", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()
	path := filepath.Join(t.TempDir(), "jobs.journal")

	svc, err := Open(Config{
		Workers:     1,
		JournalPath: path,
		Faults:      &FaultConfig{Seed: 1, JournalErrEvery: 2}, // second append fails
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close(context.Background())

	first := mustDo(t, svc, Request{Source: src}) // submit ok, finish append fails
	second := mustDo(t, svc, Request{Source: src})
	if coreOf(first) != coreOf(second) {
		t.Fatal("degraded service changed answers")
	}
	if second.Cached {
		t.Fatal("degraded service served from the result cache")
	}
	snap := svc.Snapshot()
	if !snap.JournalDegraded {
		t.Fatal("service not marked degraded after journal write error")
	}
	if snap.JournalErrors == 0 {
		t.Fatal("journal error not counted")
	}
	if snap.JobsCompleted != 2 {
		t.Fatalf("completed = %d, want 2 (degradation must not fail jobs)", snap.JobsCompleted)
	}
}

// TestJournalRecoveryCrossCheckDivergence: a journaled result whose hash the
// pipeline cannot reproduce is a typed divergence — the recovered job flips
// to failed, the counter moves, and the admission circuit breaker trips
// instead of the service silently serving the stale answer.
func TestJournalRecoveryCrossCheckDivergence(t *testing.T) {
	b, err := splash.New("ocean", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()
	path := filepath.Join(t.TempDir(), "jobs.journal")

	svc, err := Open(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	res := mustDo(t, svc, Request{Source: src})
	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tamper with the journaled hash and re-frame with a valid CRC — the
	// checksum-passes-but-content-is-stale case (a stale replica, a logical
	// bug upstream) that only the recovery cross-check can catch. A naive
	// byte edit would just fail the CRC and be quarantined instead.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tampered bytes.Buffer
	replaced := false
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		payload, err := unframeLine(line)
		if err != nil {
			t.Fatalf("unframe %q: %v", line, err)
		}
		if bytes.Contains(payload, []byte(res.ScheduleHash)) && !replaced {
			payload = bytes.Replace(payload, []byte(res.ScheduleHash), []byte("deadbeefdeadbeef"), 1)
			replaced = true
		}
		tampered.Write(frameLine(payload))
	}
	if !replaced {
		t.Fatalf("journal does not contain hash %s", res.ScheduleHash)
	}
	if err := os.WriteFile(path, tampered.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, err := Open(Config{Workers: 1, JournalPath: path, BreakerThreshold: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer svc2.Close(context.Background())
	v := waitStatus(t, svc2, res.JobID, StatusFailed)
	if v.ErrorKind != "divergence" {
		t.Fatalf("error kind = %q, want divergence", v.ErrorKind)
	}
	snap := svc2.Snapshot()
	if snap.Divergences == 0 {
		t.Fatal("divergence not counted")
	}
	if snap.BreakerState != "open" || snap.BreakerTrips != 1 {
		t.Fatalf("breaker = %s/%d trips, want open/1", snap.BreakerState, snap.BreakerTrips)
	}
	_, err = svc2.Submit(Request{Source: src})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("submit with open breaker = %v, want ErrCircuitOpen", err)
	}
	if ra := RetryAfter(err); ra == 0 {
		t.Fatalf("RetryAfter(circuit open) = %d, want nonzero", ra)
	}
}

// FuzzJournalReplay feeds arbitrary bytes to the journal opener. Whatever the
// damage — torn tails, truncated UTF-8, interior garbage, oversized or empty
// lines — opening must not panic or error (damage truncates, it never
// corrupts), the replayed job set must be internally consistent, and the
// repaired log must remain appendable and replayable.
//
// Run with: go test -fuzz=FuzzJournalReplay ./internal/service/
// Seed corpus: testdata/fuzz/FuzzJournalReplay/ (checked in).
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"type":"submitted","id":"job-1","req":{"source":"module m"}}` + "\n"))
	// Torn tail: a complete record then a crash mid-write.
	f.Add([]byte(`{"type":"submitted","id":"job-1","req":{"source":"module m"}}` + "\n" +
		`{"type":"completed","id":"job-1","resu`))
	// Truncated UTF-8 / raw binary damage inside a line.
	f.Add([]byte("{\"type\":\"submitted\",\"id\":\"job-\xff\xfe\x01\"\n"))
	// Interior garbage between two valid records.
	f.Add([]byte(`{"type":"submitted","id":"a","req":{"source":"module m"}}` + "\n" +
		"!!not json!!\n" +
		`{"type":"submitted","id":"b","req":{"source":"module m"}}` + "\n"))
	// Records the service never writes: empty id, unknown type, finish with
	// no matching submit.
	f.Add([]byte(`{"type":"submitted","id":"","req":{"source":"module m"}}` + "\n" +
		`{"type":"frobnicated","id":"x"}` + "\n" +
		`{"type":"completed","id":"ghost","result":{"schedule_hash":"00"}}` + "\n"))
	// A long line of noise (scaled-down stand-in for an oversized record).
	f.Add(append(bytes.Repeat([]byte{'A'}, 1<<16), '\n'))
	// CRC-framed records: an intact one, one with a flipped payload byte
	// (checksum must reject), and a mixed legacy/framed/garbage log.
	framed := frameLine([]byte(`{"type":"submitted","id":"f1","req":{"source":"module m"}}`))
	f.Add(append([]byte(nil), framed...))
	flipped := append([]byte(nil), framed...)
	flipped[len(flipped)-3] ^= 0x01
	f.Add(flipped)
	f.Add([]byte(string(framed) +
		`{"type":"submitted","id":"f2","req":{"source":"module m"}}` + "\n" +
		"#c1 zzzzzzzz 4 !!!!\n" +
		"#c1 00000000\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		jn, jobs, err := openJournal(nil, path, 1, 1<<30, nil, nil)
		if err != nil {
			t.Fatalf("openJournal rejected arbitrary bytes instead of truncating: %v", err)
		}
		seen := make(map[string]bool, len(jobs))
		for _, jj := range jobs {
			if jj.id == "" {
				t.Fatal("replay resurrected a job with an empty id")
			}
			if seen[jj.id] {
				t.Fatalf("replay produced duplicate job %q", jj.id)
			}
			seen[jj.id] = true
		}
		// The truncated log must still accept appends...
		probe := "fuzz-probe"
		for seen[probe] {
			probe += "x"
		}
		if err := jn.appendSubmitted(probe, &Request{Source: "module m"}); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := jn.appendFinished(probe, &Result{ScheduleHash: "feedface00000000"}, "", ""); err != nil {
			t.Fatalf("finish after repair: %v", err)
		}
		if err := jn.close(); err != nil {
			t.Fatalf("close after repair: %v", err)
		}
		// ...and replay back to exactly the pre-damage jobs plus the probe.
		_, jobs2, err := openJournal(nil, path, 1, 1<<30, nil, nil)
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		if len(jobs2) != len(jobs)+1 {
			t.Fatalf("reopen replayed %d jobs, want %d", len(jobs2), len(jobs)+1)
		}
		found := false
		for _, jj := range jobs2 {
			if jj.id == probe {
				found = true
				if !jj.done || jj.result == nil || jj.result.ScheduleHash != "feedface00000000" {
					t.Fatalf("probe job state wrong after reopen: done=%v result=%+v", jj.done, jj.result)
				}
			}
		}
		if !found {
			t.Fatal("probe job lost on reopen")
		}
	})
}

// TestJournalOversizedRecordQuarantined: a line past maxJournalRecord cannot
// be a record this journal wrote, so the recovery scrub quarantines it —
// records on both sides of the monster line survive, and the rewritten log
// shrinks back to the intact records.
func TestJournalOversizedRecordQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	var buf bytes.Buffer
	buf.WriteString(`{"type":"submitted","id":"keep","req":{"source":"module m"}}` + "\n")
	buf.Write(bytes.Repeat([]byte{'z'}, maxJournalRecord+2))
	buf.WriteByte('\n')
	buf.WriteString(`{"type":"submitted","id":"after","req":{"source":"module m"}}` + "\n")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	jn, jobs, err := openJournal(nil, path, 1, 1<<30, nil, nil)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	defer jn.close()
	if len(jobs) != 2 || jobs[0].id != "keep" || jobs[1].id != "after" {
		t.Fatalf("replayed %d jobs %v, want keep and after", len(jobs), jobs)
	}
	if jn.quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (the oversized line)", jn.quarantined)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > int64(maxJournalRecord) {
		t.Fatalf("oversized line not scrubbed away: file is %d bytes", fi.Size())
	}
}
