package service

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nemesis"
	"repro/internal/splash"
	"repro/internal/vfs"
)

// TestNemesisSingleNodeProperty is the storage/integrity acceptance property:
// across ≥20 seeded nemesis schedules mixing job submissions, SIGTERM-style
// kills, armed disk faults (ENOSPC, short writes, fsync errors) and
// post-crash journal scars (bit flips, garbled tails, duplicated and junk
// lines), the service never serves corrupt data and never *silently* loses a
// job: every acknowledged job either completes with its reference
// deterministic core, or its loss is accounted for — by a quarantined journal
// line (detected corruption) or by a crash that followed a degraded-journal
// acknowledgment (detected durability loss).
//
// Each schedule is a pure function of its seed: the plan is generated twice
// and must fingerprint identically, and the executed timeline must fingerprint
// identically to the plan — the per-class partitioned RNG streams are what
// make that hold even though disk-fault draws (whose positions depend on
// system progress) happen online.
func TestNemesisSingleNodeProperty(t *testing.T) {
	var variants []nemVariant
	ref := New(Config{Workers: 2})
	for _, name := range []string{"ocean", "volrend"} {
		b, err := splash.New(name, 4)
		if err != nil {
			t.Fatalf("splash.New(%s): %v", name, err)
		}
		for p := int64(1); p <= 2; p++ {
			req := Request{Source: b.Module.String(), PerturbSeed: p}
			variants = append(variants, nemVariant{req: req, core: coreOf(mustDo(t, ref, req))})
		}
	}
	if err := ref.Close(context.Background()); err != nil {
		t.Fatalf("reference Close: %v", err)
	}

	schedules := 20
	if testing.Short() {
		schedules = 5 // nemesis-smoke: a fast slice of the property
	}
	for seed := int64(1); seed <= int64(schedules); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schedule-%02d", seed), func(t *testing.T) {
			t.Parallel()
			runNemesisSchedule(t, seed, variants)
		})
	}
}

// nemVariant pairs a request with its reference deterministic core.
type nemVariant struct {
	req  Request
	core string
}

func runNemesisSchedule(t *testing.T, seed int64, variants []nemVariant) {
	// Op order is schedule identity: process and integrity events (which
	// kill + reopen) come before the storage arm, so reopening always runs
	// against a disarmed FS, and workload submits come last so an armed blip
	// hits the same step's submissions.
	ops := []nemesis.OpSpec{
		{Class: nemesis.ClassProcess, Op: "kill", Rate: 0.2},
		{Class: nemesis.ClassIntegrity, Op: "scar", Rate: 0.2, ArgN: nemesis.NumScarKinds},
		{Class: nemesis.ClassStorage, Op: "blip", Rate: 0.3},
		{Class: nemesis.ClassWorkload, Op: "submit", Rate: 0.9, ArgN: len(variants)},
	}
	planCfg := nemesis.PlanConfig{Steps: 12, Targets: []string{"node-0"}}
	plan := nemesis.Plan(seed, planCfg, ops)
	if again := nemesis.Plan(seed, planCfg, ops); nemesis.Fingerprint(again) != nemesis.Fingerprint(plan) {
		t.Fatalf("seed %d: two plans disagree: %s vs %s",
			seed, nemesis.Fingerprint(plan), nemesis.Fingerprint(again))
	}

	eng := nemesis.New(seed)
	ffs := nemesis.NewFaultFS(eng, vfs.OS{}, nemesis.FaultFSConfig{
		ShortWriteRate: 0.25,
		WriteErrRate:   0.2,
		SyncErrRate:    0.2,
	})
	path := filepath.Join(t.TempDir(), "jobs.journal")
	cfg := Config{
		Workers:           2,
		JournalPath:       path,
		JournalFsyncEvery: 2,
		FS:                ffs,
		BreakerThreshold:  1000, // detected corruption must not shed the harness's own submits
	}

	acked := map[string]int{}     // job id → variant index
	volatile := map[string]bool{} // acked while the journal was degraded: not durable
	lostOK := map[string]bool{}   // losses explained by a crash after degradation
	quarTotal := 0                // quarantined lines across all incarnations

	open := func() *Service {
		svc, err := Open(cfg)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		quarTotal += int(svc.Snapshot().JournalQuarantined)
		return svc
	}
	svc := open()
	// crash kills the incarnation; anything acknowledged without durability
	// is now legitimately (and accountably) gone.
	crash := func() {
		svc.Kill()
		for id := range volatile {
			lostOK[id] = true
		}
		volatile = map[string]bool{}
	}

	step := -1
	for _, e := range plan {
		if e.Step != step {
			// A blip arms the FS for the remainder of its own step only.
			ffs.Arm(false)
			step = e.Step
		}
		switch e.Op {
		case "kill":
			crash()
			svc = open()
		case "scar":
			crash()
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read journal for scar: %v", err)
			}
			if err := os.WriteFile(path, eng.ScarJournal(raw, e.Arg), 0o644); err != nil {
				t.Fatalf("write scarred journal: %v", err)
			}
			svc = open()
		case "blip":
			ffs.Arm(true)
		case "submit":
			id, err := svc.Submit(variants[e.Arg].req)
			if err != nil {
				t.Fatalf("submit variant %d: %v", e.Arg, err)
			}
			acked[id] = e.Arg
			if svc.Snapshot().JournalDegraded {
				volatile[id] = true
			}
		}
		eng.Record(e)
	}
	ffs.Arm(false)

	// The executed timeline is the plan, faithfully applied.
	if got := eng.Fingerprint(); got != nemesis.Fingerprint(plan) {
		t.Fatalf("executed timeline fingerprint %s != plan fingerprint %s", got, nemesis.Fingerprint(plan))
	}

	// Final incarnation on healthy storage: one more crash-style restart so
	// the last degraded window (if any) is accounted, then drain.
	crash()
	svc = open()
	defer svc.Close(context.Background())

	missing := 0
	for id, vi := range acked {
		if _, err := svc.Lookup(id); err != nil {
			if !lostOK[id] {
				missing++
			}
			continue
		}
		if _, err := svc.Wait(context.Background(), id); err != nil {
			t.Fatalf("job %s failed after recovery: %v", id, err)
		}
		v, err := svc.Lookup(id)
		if err != nil {
			t.Fatalf("Lookup %s: %v", id, err)
		}
		if v.Status != StatusDone || v.Result == nil {
			t.Fatalf("job %s: status %q after drain", id, v.Status)
		}
		if got := coreOf(v.Result); got != variants[vi].core {
			t.Fatalf("job %s (variant %d): core %s, want reference %s — corrupt data served", id, vi, got, variants[vi].core)
		}
	}
	// Every unexplained disappearance must be covered by a *detected*
	// corruption: at most one job lost per quarantined line.
	if missing > quarTotal {
		t.Fatalf("%d jobs silently lost (only %d quarantined lines can account for losses)", missing, quarTotal)
	}
	if snap := svc.Snapshot(); snap.Divergences != 0 {
		t.Fatalf("recovery cross-checks found %d divergences", snap.Divergences)
	}
}
