package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/trace"
)

// Content-addressed caching is the service's central soundness claim: by the
// weak-determinism invariant (DESIGN §5.1/§5.6), identical (program, config)
// pairs produce identical schedules and cycle counts, so a stored result IS
// the result of re-execution. Two layers:
//
//   - the instrumentation cache maps hash(IR source, Options) to the
//     instrumented module and pass statistics — instrumentation is a pure
//     function of (source, options);
//   - the result cache maps hash(instrumented module, SimConfig) to the
//     simulation outcome — keyed on the *instrumented* text so two sources
//     that instrument to the same module share one entry.
//
// The determinism self-check (Config.SelfCheckRate) re-executes a sampled
// fraction of result-cache hits and compares schedules, so a violated
// invariant (a miscompiled pass, a nondeterministic simulator bug, cache
// corruption) surfaces as a typed DivergenceError instead of silently
// serving a wrong answer.

// lruCache is a small bounded LRU: map + intrusive recency list.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) a key, evicting the least recently used entry
// beyond capacity.
func (c *lruCache) add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// peek returns the cached value without marking it used — enumeration paths
// (repair scans) must not let maintenance traffic reorder the LRU.
func (c *lruCache) peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*lruEntry).val, true
}

// keys returns every cached key, most recently used first, without touching
// recency. The anti-entropy repair loop enumerates the result cache with it.
func (c *lruCache) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).key)
	}
	return out
}

// remove evicts a key (repair quarantine); missing keys are a no-op.
func (c *lruCache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// instrEntry is one instrumentation-cache value. The modules are treated as
// immutable after insertion: every simulation clones before executing, and
// harness runs clone internally.
type instrEntry struct {
	// raw is the parsed, uninstrumented module (overhead rows re-instrument
	// from it under harness modes).
	raw *ir.Module
	// mod is the instrumented module (== raw for baseline jobs).
	mod *ir.Module
	// text is mod's canonical printed form — the content address the result
	// cache keys on.
	text string
	// pass holds instrumentation statistics (nil for baseline jobs).
	pass *core.Result
}

// resultEntry is one result-cache value: the canonical outcome of a
// (instrumented module, sim config) pair. The schedule is always stored —
// it is the self-check's comparison reference and serves Schedule artifact
// requests. The overhead row is filled lazily by the first job that asks
// for it.
type resultEntry struct {
	res      Result // canonical fields only; job-specific fields zeroed
	schedule *trace.Schedule
	// req is the originating request when known (local simulation, peer fill,
	// offers that carry it) — what lets the anti-entropy repair loop arbitrate
	// a divergent entry by deterministic recompute. Nil for entries installed
	// from a bare wire result; those are unverifiable and repair evicts them
	// instead of arguing about them.
	req *Request

	mu       sync.Mutex // guards overhead
	overhead *harness.OverheadRow
}

// exportEntry renders a cache entry in wire form: the canonical result core
// with the schedule attached — what peer fill responses, offers, and journal
// shipping exchange between nodes. Job-specific fields stay zero.
func exportEntry(ent *resultEntry) *Result {
	res := ent.res // copy: canonical fields only
	res.Schedule = ent.schedule
	return &res
}

// entryFromPeer rebuilds a cache entry from a peer's wire-form result,
// stripping every job- and transport-specific field so the installed entry
// is indistinguishable from one computed locally. Callers have already
// verified the schedule hashes to res.ScheduleHash. req, when known, makes
// the entry recheckable by the repair loop; nil is allowed.
func entryFromPeer(res *Result, req *Request) *resultEntry {
	r := *res
	sched := r.Schedule
	r.JobID, r.Cached, r.InstrCached, r.SelfChecked, r.PeerFilled, r.Remote = "", false, false, false, false, false
	r.Schedule, r.Overhead = nil, nil
	r.Stage = StageLatency{}
	ent := &resultEntry{res: r, schedule: sched}
	if req != nil {
		rc := *req
		ent.req = &rc
	}
	return ent
}

// instrKey is the content address of an instrumentation: the exact source
// text plus every option that changes the instrumented module.
func instrKey(req *Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "src\x00%s\x00entry\x00%s\x00", req.Source, req.Entry)
	if req.Baseline {
		fmt.Fprint(h, "baseline")
	} else {
		fmt.Fprintf(h, "preset\x00%s", req.Preset)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// resultKey is the content address of a simulation: the instrumented
// module's printed text plus every SimConfig field that can change the
// outcome. PerturbSeed is included even though deterministic schedules are
// invariant under it — makespans are not.
func resultKey(moduleText string, req *Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "mod\x00%s\x00threads\x00%d\x00entry\x00%s\x00det\x00%t\x00race\x00%t\x00seed\x00%d",
		moduleText, req.Threads, req.Entry, !req.Baseline, req.Race, req.PerturbSeed)
	return hex.EncodeToString(h.Sum(nil))
}
