package service

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// recLine marshals a journal record and wraps it in a CRC frame — the exact
// bytes the journal writes.
func recLine(t *testing.T, rec *journalRecord) []byte {
	t.Helper()
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatalf("marshal record: %v", err)
	}
	return frameLine(b)
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"type":"submitted","id":"x","req":{"source":"module m"}}`)
	line := frameLine(payload)
	if line[len(line)-1] != '\n' {
		t.Fatal("framed line missing trailing newline")
	}
	got, err := unframeLine(line[:len(line)-1])
	if err != nil {
		t.Fatalf("unframe: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip: got %q, want %q", got, payload)
	}
}

func TestFrameLegacyPassthrough(t *testing.T) {
	legacy := []byte(`{"type":"submitted","id":"x"}`)
	got, err := unframeLine(legacy)
	if err != nil {
		t.Fatalf("legacy line rejected: %v", err)
	}
	if !bytes.Equal(got, legacy) {
		t.Fatal("legacy line altered by unframe")
	}
}

func TestFrameRejectsDamage(t *testing.T) {
	payload := []byte(`{"type":"submitted","id":"x"}`)
	good := frameLine(payload)
	cases := map[string][]byte{
		"flipped payload byte": append(append([]byte(nil), good[:len(good)-3]...), good[len(good)-3]^0x01, good[len(good)-2], '\n'),
		"bad magic":            []byte("#c9 00000000 2 {}"),
		"junk":                 []byte("!!noise!!"),
		"short checksum":       []byte("#c1 abcd 2 {}"),
		"length mismatch":      []byte("#c1 00000000 99 {}"),
	}
	for name, line := range cases {
		line = bytes.TrimSuffix(line, []byte("\n"))
		if _, err := unframeLine(line); err == nil {
			t.Errorf("%s: unframe accepted damaged line %q", name, line)
		}
	}
}

// TestJournalInteriorCorruptionRecovery is the satellite table test: damage in
// the *middle* of the log quarantines exactly the damaged records and replays
// everything else — no suffix truncation, no silent acceptance.
func TestJournalInteriorCorruptionRecovery(t *testing.T) {
	req := Request{Source: "module m"}
	sub := func(id string) []byte {
		return recLine(t, &journalRecord{Type: recSubmitted, ID: id, Req: &req})
	}
	fin := func(id string) []byte {
		return recLine(t, &journalRecord{Type: recCompleted, ID: id, Result: &Result{ScheduleHash: "aa"}})
	}
	// flip damages one interior byte of line (past the frame magic) so the
	// CRC check, not the JSON parser, is what must catch it.
	flip := func(line []byte) []byte {
		out := append([]byte(nil), line...)
		out[len(out)/2] ^= 0x01
		return out
	}

	cases := []struct {
		name        string
		image       [][]byte
		wantJobs    []string
		wantQuar    int
		wantFinish  map[string]bool
		wantTornFix bool
	}{
		{
			name:     "bit-flipped middle record",
			image:    [][]byte{sub("a"), flip(sub("b")), sub("c"), fin("a")},
			wantJobs: []string{"a", "c"},
			wantQuar: 1,
		},
		{
			name:     "duplicated record is tolerated",
			image:    [][]byte{sub("a"), sub("b"), sub("b"), fin("a")},
			wantJobs: []string{"a", "b"},
			wantQuar: 0,
		},
		{
			name: "checksum-valid but foreign record",
			// A correctly framed line whose payload is valid JSON of a type
			// this journal never wrote: integrity passes, semantics reject.
			image:    [][]byte{sub("a"), frameLine([]byte(`{"type":"frobnicated","id":"zz"}`)), sub("b")},
			wantJobs: []string{"a", "b"},
			wantQuar: 1,
		},
		{
			name:     "junk line between records",
			image:    [][]byte{sub("a"), []byte("!!nemesis junk!!\n"), sub("b")},
			wantJobs: []string{"a", "b"},
			wantQuar: 1,
		},
		{
			name: "ghost finish quarantined with its missing submit",
			// b's submit is damaged, so its finish is a ghost: both lines
			// quarantine, and only a survives.
			image:    [][]byte{sub("a"), flip(sub("b")), fin("b")},
			wantJobs: []string{"a"},
			wantQuar: 2,
		},
		{
			name:        "torn tail truncated without quarantine",
			image:       [][]byte{sub("a"), sub("b"), fin("a")[:10]},
			wantJobs:    []string{"a", "b"},
			wantQuar:    0,
			wantTornFix: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "jobs.journal")
			if err := os.WriteFile(path, bytes.Join(tc.image, nil), 0o644); err != nil {
				t.Fatal(err)
			}
			jn, jobs, err := openJournal(nil, path, 1, 1<<30, nil, nil)
			if err != nil {
				t.Fatalf("openJournal: %v", err)
			}
			var ids []string
			for _, jj := range jobs {
				ids = append(ids, jj.id)
			}
			if strings.Join(ids, ",") != strings.Join(tc.wantJobs, ",") {
				t.Fatalf("recovered jobs %v, want %v", ids, tc.wantJobs)
			}
			if jn.quarantined != tc.wantQuar {
				t.Fatalf("quarantined %d lines, want %d", jn.quarantined, tc.wantQuar)
			}
			if err := jn.close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			sidecar := path + ".quarantine"
			if tc.wantQuar > 0 {
				raw, err := os.ReadFile(sidecar)
				if err != nil {
					t.Fatalf("quarantine sidecar: %v", err)
				}
				if !bytes.Contains(raw, []byte("# ")) {
					t.Fatal("sidecar has no reason headers")
				}
			} else if _, err := os.Stat(sidecar); err == nil {
				t.Fatal("sidecar written with nothing quarantined")
			}

			// The rewritten (or truncated) log must replay clean on the next
			// boot, and the boot sweep must remove the sidecar.
			jn2, jobs2, err := openJournal(nil, path, 1, 1<<30, nil, nil)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if jn2.quarantined != 0 {
				t.Fatalf("reopen quarantined %d lines from a scrubbed log", jn2.quarantined)
			}
			if len(jobs2) != len(tc.wantJobs) {
				t.Fatalf("reopen recovered %d jobs, want %d", len(jobs2), len(tc.wantJobs))
			}
			if _, err := os.Stat(sidecar); !os.IsNotExist(err) {
				t.Fatal("startup sweep left the stale quarantine sidecar")
			}
			jn2.close()
		})
	}
}

// TestJournalStartupSweepsStaleCompact: a crash between compaction's temp
// write and rename leaves `.compact` behind; the next open removes it.
func TestJournalStartupSweepsStaleCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	stale := path + ".compact"
	if err := os.WriteFile(stale, []byte("half-written compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	jn, _, err := openJournal(nil, path, 1, 1<<30, nil, nil)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	defer jn.close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("startup sweep left the stale .compact file")
	}
}

func TestScrubJournalMissingFile(t *testing.T) {
	rep, err := ScrubJournal(nil, filepath.Join(t.TempDir(), "absent.journal"), true)
	if err != nil {
		t.Fatalf("ScrubJournal on missing file: %v", err)
	}
	if rep != (ScrubReport{}) {
		t.Fatalf("missing journal reported %+v, want zero report", rep)
	}
}

func TestScrubJournalVerifyAndApply(t *testing.T) {
	req := Request{Source: "module m"}
	good := recLine(t, &journalRecord{Type: recSubmitted, ID: "a", Req: &req})
	bad := append([]byte(nil), recLine(t, &journalRecord{Type: recSubmitted, ID: "b", Req: &req})...)
	bad[len(bad)/2] ^= 0x01
	image := bytes.Join([][]byte{good, bad, []byte("torn-tai")}, nil)

	path := filepath.Join(t.TempDir(), "jobs.journal")
	if err := os.WriteFile(path, image, 0o644); err != nil {
		t.Fatal(err)
	}

	// Verify mode: full report, zero side effects.
	rep, err := ScrubJournal(nil, path, false)
	if err != nil {
		t.Fatalf("verify scrub: %v", err)
	}
	if rep.Records != 1 || rep.Jobs != 1 || rep.Quarantined != 1 || rep.TornBytes != len("torn-tai") || rep.Rewritten {
		t.Fatalf("verify report %+v", rep)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(after, image) {
		t.Fatal("verify mode modified the journal")
	}
	if _, err := os.Stat(path + ".quarantine"); err == nil {
		t.Fatal("verify mode wrote a quarantine sidecar")
	}

	// Apply mode: quarantine + rewrite, and a second scrub comes back clean.
	rep, err = ScrubJournal(nil, path, true)
	if err != nil {
		t.Fatalf("apply scrub: %v", err)
	}
	if !rep.Rewritten || rep.QuarantinePath != path+".quarantine" {
		t.Fatalf("apply report %+v", rep)
	}
	if _, err := os.Stat(rep.QuarantinePath); err != nil {
		t.Fatalf("sidecar missing after apply: %v", err)
	}
	rep, err = ScrubJournal(nil, path, true)
	if err != nil {
		t.Fatalf("re-scrub: %v", err)
	}
	if rep.Quarantined != 0 || rep.TornBytes != 0 || rep.Rewritten {
		t.Fatalf("scrubbed log still dirty: %+v", rep)
	}
	clean, _ := os.ReadFile(path)
	if !bytes.Equal(clean, good) {
		t.Fatalf("clean log = %q, want only the intact record", clean)
	}
}
