package service

import (
	"context"
	"testing"
	"time"
)

// plugProgram spins ~1M iterations: long enough to pin the only worker
// while a test fills the queue behind it, short enough to drain promptly.
const plugProgram = `
module plug

func main() regs 4 {
entry:
  r0 = const 0
  r1 = const 1000000
  jmp loop
loop:
  r2 = lt r0, r1
  br r2, body, exit
body:
  r0 = add r0, 1
  jmp loop
exit:
  ret r0
}
`

// fastProgram is a trivial job used to fill the queue.
const fastProgram = `
module fast

func main() regs 2 {
entry:
  r0 = tid
  ret r0
}
`

// TestQueueHighWaterAndRejectCauses: the queue-depth high-water mark and the
// per-cause rejection counters expose admission behavior directly. One
// worker is pinned by a slow plug job; the queue is filled to capacity
// (high water = capacity), overflowed (queue_full counts), and poked with an
// invalid request (misuse counts).
func TestQueueHighWaterAndRejectCauses(t *testing.T) {
	const depth = 4
	s := New(Config{Workers: 1, QueueDepth: depth})
	plugID, err := s.Submit(Request{Source: plugProgram, Entry: "main", Threads: 1})
	if err != nil {
		t.Fatalf("submit plug: %v", err)
	}
	// Wait until the worker has dequeued the plug so the queue is empty.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := s.Lookup(plugID)
		if err != nil {
			t.Fatalf("lookup plug: %v", err)
		}
		if v.Status != StatusQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("plug never started running")
		}
		time.Sleep(time.Millisecond)
	}

	var accepted []string
	for i := 0; i < depth; i++ {
		id, err := s.Submit(Request{Source: fastProgram, Entry: "main", Threads: 1})
		if err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		accepted = append(accepted, id)
	}
	const overflow = 3
	for i := 0; i < overflow; i++ {
		if _, err := s.Submit(Request{Source: fastProgram, Entry: "main", Threads: 1}); Classify(err) != "queue_full" {
			t.Fatalf("overflow %d: Classify = %q (%v), want queue_full", i, Classify(err), err)
		}
	}
	if _, err := s.Submit(Request{}); Classify(err) != "misuse" {
		t.Fatalf("invalid request: Classify = %q, want misuse", Classify(err))
	}

	snap := s.Snapshot()
	if snap.QueueHighWater != depth {
		t.Fatalf("QueueHighWater = %d, want %d", snap.QueueHighWater, depth)
	}
	if got := snap.RejectByCause["queue_full"]; got != overflow {
		t.Fatalf("RejectByCause[queue_full] = %d, want %d", got, overflow)
	}
	if got := snap.RejectByCause["misuse"]; got != 1 {
		t.Fatalf("RejectByCause[misuse] = %d, want 1", got)
	}
	if want := int64(overflow + 1); snap.JobsRejected != want {
		t.Fatalf("JobsRejected = %d, want %d (sum of causes)", snap.JobsRejected, want)
	}

	// Every accepted job must still complete — rejections shed load, they
	// never leak into accepted work.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range append([]string{plugID}, accepted...) {
		if _, err := s.Wait(ctx, id); err != nil {
			t.Fatalf("accepted job %s failed: %v", id, err)
		}
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}
