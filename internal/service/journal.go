package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/vfs"
)

// The job journal is the service's crash-safety substrate: an append-only
// JSONL write-ahead log of job lifecycle records. Determinism is what makes
// this journal unusually cheap (the Determinator argument for deterministic
// execution as a fault-tolerance substrate): a recovered job needs no state
// transfer, because re-executing its journaled request provably reproduces
// the lost result. The journal therefore stores only requests and result
// summaries — never simulator state — and recovery is re-execution.
//
// Durability contract, record by record:
//
//   - "submitted" records are group-committed: the record is written and
//     fsynced before Submit returns the job id to the client. An accepted
//     job survives any crash.
//   - "completed"/"failed" records are batch-fsynced (every FsyncEvery
//     records, plus on Close and compaction). Losing a tail of completion
//     records in a crash is harmless by determinism: recovery re-executes
//     those jobs and provably reproduces the same results.
//
// Recovery cross-checks the determinism claim rather than assuming it:
// every recovered successful result is re-executed in the background and
// its fresh schedule hash compared to the journaled one; a mismatch is a
// typed *diag.DivergenceError (and trips the admission circuit breaker),
// never a silently wrong answer served from a stale log.
//
// The raw log grows with every record, so the journal compacts: when the
// record count exceeds CompactEvery and is more than twice the live-job
// count, the log is rewritten (temp file + fsync + atomic rename) to one
// submitted record — plus one finish record when finished — per known job.

// Journal record types.
const (
	recSubmitted = "submitted"
	recCompleted = "completed"
	recFailed    = "failed"
)

// journalRecord is one JSONL line of the write-ahead log.
type journalRecord struct {
	Type string `json:"type"`
	ID   string `json:"id"`
	// Req is the full job request (submitted records): everything needed to
	// re-execute the job after a crash.
	Req *Request `json:"req,omitempty"`
	// Result is the result summary (completed records). Artifact payloads
	// (schedules, overhead rows) are recomputed on demand, not journaled.
	Result *Result `json:"result,omitempty"`
	// Error/Kind describe a failed job's structured report rendering.
	Error string `json:"error,omitempty"`
	Kind  string `json:"kind,omitempty"`
}

// journalJob is the replayed state of one journaled job: its request plus
// its finish record, if any was durable before the crash.
type journalJob struct {
	id      string
	req     Request
	done    bool
	result  *Result
	errMsg  string
	errKind string
}

// journal is the append-only JSONL write-ahead log. All methods are
// crash-aware: pending holds bytes not yet handed to the OS, so a simulated
// SIGTERM (kill) loses exactly the batch-buffered completion records and
// nothing else — the same failure surface a real process crash has with
// fsync batching.
type journal struct {
	mu   sync.Mutex
	path string
	fsys vfs.FS
	f    vfs.File

	// pending buffers batch-fsynced records (completions) not yet written.
	pending     bytes.Buffer
	pendingRecs int
	fsyncEvery  int

	// rawRecords counts records in the on-disk log (replayed + appended);
	// compaction triggers on rawRecords vs the live set.
	rawRecords   int
	compactEvery int

	// live is the replayed + current job state, order its first-seen id
	// order (compaction preserves it).
	live  map[string]*journalJob
	order []string

	// chaos injects write errors (nil-safe); broken marks the journal
	// permanently degraded after an unrecovered write error.
	chaos  *chaos
	broken bool

	// quarantined counts the damaged lines the opening scrub pass moved to
	// the `.quarantine` sidecar — the boot's detected-corruption tally.
	quarantined int

	// ship, when set, receives a copy of every appended record line — the
	// journal-shipping feed a cluster standby replays for warm takeover. It
	// runs under j.mu and must only buffer (see Config.ShipRecord).
	ship func(line []byte)
}

// maxJournalRecord bounds one record line on replay. A line past it cannot
// be a record this journal wrote (requests are capped far below it at the
// HTTP edge), so replay treats it as external damage: stop and truncate to
// the last good prefix, exactly like a malformed line.
const maxJournalRecord = 32 << 20

// openJournal opens (creating if needed) the journal at path and replays it
// through a scrub pass (see scrub.go): intact records replay, damaged
// interior lines are quarantined to the `.quarantine` sidecar and the log is
// rewritten without them, and a torn final line — the signature of a crash
// mid-write — is truncated away. Stale `.compact` and `.quarantine` files
// left by a crash mid-compaction (or by the previous boot's scrub) are swept
// first. Returns the journal and the replayed jobs in first-submission order.
func openJournal(fsys vfs.FS, path string, fsyncEvery, compactEvery int, chaos *chaos, ship func(line []byte)) (*journal, []*journalJob, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	j := &journal{
		path:         path,
		fsys:         fsys,
		fsyncEvery:   fsyncEvery,
		compactEvery: compactEvery,
		live:         make(map[string]*journalJob),
		chaos:        chaos,
		ship:         ship,
	}
	// Startup sweep: a crash between compaction's temp write and its rename
	// leaves `.compact` behind; the previous boot's scrub leaves its
	// diagnostic `.quarantine` behind. Both describe a past incarnation.
	fsys.Remove(path + ".compact")
	fsys.Remove(path + ".quarantine")
	raw, err := fsys.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	res := scanJournal(raw)
	for _, rec := range res.recs {
		j.replay(rec)
		j.rawRecords++
	}
	j.quarantined = len(res.quarantined)
	if len(res.quarantined) > 0 {
		// Sidecar is best-effort diagnostics; the rewrite is not — failing
		// to drop quarantined lines would let damage replay next boot.
		_ = writeQuarantine(fsys, path, res.quarantined)
		if err := rewriteLog(fsys, path, res.keep); err != nil {
			return nil, nil, err
		}
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	if len(res.quarantined) == 0 && res.tornBytes > 0 {
		// Torn tail only: cheaper to truncate in place than rewrite.
		if err := f.Truncate(int64(len(raw) - res.tornBytes)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	j.f = f
	jobs := make([]*journalJob, 0, len(j.order))
	for _, id := range j.order {
		jobs = append(jobs, j.live[id])
	}
	return j, jobs, nil
}

// replay folds one record into the live state. Finish records are last-wins:
// a job re-executed after a crash may legitimately append a second finish
// record, and determinism makes them interchangeable.
func (j *journal) replay(rec *journalRecord) {
	if rec.ID == "" {
		return // the service never writes empty ids; this is external damage
	}
	switch rec.Type {
	case recSubmitted:
		if _, ok := j.live[rec.ID]; ok || rec.Req == nil {
			return
		}
		j.live[rec.ID] = &journalJob{id: rec.ID, req: *rec.Req}
		j.order = append(j.order, rec.ID)
	case recCompleted:
		if jj, ok := j.live[rec.ID]; ok && rec.Result != nil {
			jj.done, jj.result, jj.errMsg, jj.errKind = true, rec.Result, "", ""
		}
	case recFailed:
		if jj, ok := j.live[rec.ID]; ok {
			jj.done, jj.result, jj.errMsg, jj.errKind = true, nil, rec.Error, rec.Kind
		}
	}
}

// appendSubmitted durably records an accepted job: the record — and any
// buffered completion records ahead of it — is written and fsynced before
// returning, so Submit never acknowledges a job a crash could lose.
func (j *journal) appendSubmitted(id string, req *Request) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken {
		return errJournalBroken
	}
	if err := j.appendLocked(&journalRecord{Type: recSubmitted, ID: id, Req: req}); err != nil {
		return err
	}
	j.live[id] = &journalJob{id: id, req: *req}
	j.order = append(j.order, id)
	return j.flushLocked(true)
}

// appendFinished records a job's outcome. Finish records are batch-fsynced:
// the write lands in the pending buffer and is flushed every fsyncEvery
// records. A crash can lose at most the buffered batch, which recovery
// repairs by re-execution.
func (j *journal) appendFinished(id string, res *Result, errMsg, errKind string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken {
		return errJournalBroken
	}
	rec := &journalRecord{Type: recFailed, ID: id, Error: errMsg, Kind: errKind}
	if res != nil {
		// Strip heavyweight artifacts: journaled results are summaries;
		// schedules and overhead rows are recomputed on demand.
		trimmed := *res
		trimmed.Schedule, trimmed.Overhead = nil, nil
		rec = &journalRecord{Type: recCompleted, ID: id, Result: &trimmed}
	}
	if err := j.appendLocked(rec); err != nil {
		return err
	}
	if jj, ok := j.live[id]; ok {
		jj.done, jj.result, jj.errMsg, jj.errKind = true, rec.Result, errMsg, errKind
	}
	if j.pendingRecs >= j.fsyncEvery {
		if err := j.flushLocked(true); err != nil {
			return err
		}
	}
	return j.maybeCompactLocked()
}

// appendLocked marshals rec into the pending buffer and feeds the shipping
// hook. Shipping sees the logical append stream — every record in append
// order, including ones a later compaction rewrites — which is exactly what
// a standby needs to replay (replay is last-finish-wins, so the stream and
// its compaction are interchangeable).
func (j *journal) appendLocked(rec *journalRecord) error {
	if err := j.chaos.journalErr(); err != nil {
		j.broken = true
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		j.broken = true
		return fmt.Errorf("journal: marshal: %w", err)
	}
	line := frameLine(b)
	j.pending.Write(line)
	j.pendingRecs++
	if j.ship != nil {
		// Ship the framed bytes verbatim: the standby's log stays
		// byte-identical to the primary's append stream, and its own
		// recovery verifies the same CRCs.
		shipped := make([]byte, len(line))
		copy(shipped, line)
		j.ship(shipped)
	}
	return nil
}

// snapshotRecords renders the live job table as compaction-style record
// lines (one submitted record per job, plus its finish record when done) —
// the bounded resync payload journal shipping falls back to when the standby
// lost the stream.
func (j *journal) snapshotRecords() [][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out [][]byte
	emit := func(rec *journalRecord) {
		b, err := json.Marshal(rec)
		if err != nil {
			return
		}
		out = append(out, frameLine(b))
	}
	for _, id := range j.order {
		jj := j.live[id]
		emit(&journalRecord{Type: recSubmitted, ID: jj.id, Req: &jj.req})
		if jj.done {
			if jj.result != nil {
				emit(&journalRecord{Type: recCompleted, ID: jj.id, Result: jj.result})
			} else {
				emit(&journalRecord{Type: recFailed, ID: jj.id, Error: jj.errMsg, Kind: jj.errKind})
			}
		}
	}
	return out
}

// flushLocked hands the pending buffer to the OS and, when sync is set,
// fsyncs — the group-commit point.
func (j *journal) flushLocked(sync bool) error {
	if j.pendingRecs > 0 {
		if _, err := j.f.Write(j.pending.Bytes()); err != nil {
			j.broken = true
			return fmt.Errorf("journal: write %s: %w", j.path, err)
		}
		j.rawRecords += j.pendingRecs
		j.pending.Reset()
		j.pendingRecs = 0
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			j.broken = true
			return fmt.Errorf("journal: fsync %s: %w", j.path, err)
		}
	}
	return nil
}

// maybeCompactLocked rewrites the log when it holds more than compactEvery
// records and at least twice the live-job count: one submitted record per
// job plus its finish record. The rewrite is crash-safe — temp file, fsync,
// atomic rename — so a crash mid-compaction leaves the old log intact.
func (j *journal) maybeCompactLocked() error {
	if j.rawRecords+j.pendingRecs <= j.compactEvery || j.rawRecords+j.pendingRecs <= 2*len(j.live) {
		return nil
	}
	if err := j.flushLocked(true); err != nil {
		return err
	}
	tmpPath := j.path + ".compact"
	tmp, err := j.fsys.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		j.broken = true
		return fmt.Errorf("journal: compact: %w", err)
	}
	var buf bytes.Buffer
	records := 0
	write := func(rec *journalRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf.Write(frameLine(b))
		records++
		return nil
	}
	for _, id := range j.order {
		jj := j.live[id]
		// The submitted record's error must reach the outer check even when
		// the job is not done — a swallowed marshal failure here would drop
		// a live job's only record from the compacted log.
		err := write(&journalRecord{Type: recSubmitted, ID: jj.id, Req: &jj.req})
		if err == nil && jj.done {
			if jj.result != nil {
				err = write(&journalRecord{Type: recCompleted, ID: jj.id, Result: jj.result})
			} else {
				err = write(&journalRecord{Type: recFailed, ID: jj.id, Error: jj.errMsg, Kind: jj.errKind})
			}
		}
		if err != nil {
			tmp.Close()
			j.fsys.Remove(tmpPath)
			j.broken = true
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	if _, err := tmp.Write(buf.Bytes()); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		j.fsys.Remove(tmpPath)
		j.broken = true
		return fmt.Errorf("journal: compact write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		j.fsys.Remove(tmpPath)
		j.broken = true
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := j.fsys.Rename(tmpPath, j.path); err != nil {
		j.fsys.Remove(tmpPath)
		j.broken = true
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	old := j.f
	f, err := j.fsys.OpenFile(j.path, os.O_WRONLY, 0o644)
	if err != nil {
		j.broken = true
		return fmt.Errorf("journal: reopen after compact: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		j.broken = true
		return fmt.Errorf("journal: reopen seek: %w", err)
	}
	old.Close()
	j.f = f
	j.rawRecords = records
	return nil
}

// close flushes and fsyncs everything — the clean-shutdown path.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	var err error
	if !j.broken {
		err = j.flushLocked(true)
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// kill abandons the journal the way a process crash would: the pending
// buffer — the batch-fsync window — is dropped on the floor, and the file
// is closed without a flush. The chaos harness uses this to simulate
// SIGTERM-style restarts mid-queue.
func (j *journal) kill() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	j.pending.Reset()
	j.pendingRecs = 0
	j.f.Close()
	j.f = nil
	j.broken = true
}

// snapshotLive returns the journal's live view (for tests and stats): total
// jobs known and how many have durable finish records.
func (j *journal) snapshotLive() (jobs, finished int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, jj := range j.live {
		if jj.done {
			finished++
		}
	}
	return len(j.live), finished
}

var errJournalBroken = fmt.Errorf("journal unwritable")
