package service

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission control defines the service's overload behavior: every rejection
// is typed, cheap, and issued before any pipeline work happens, so flooding
// the queue produces 429s — never a crash, never unbounded memory.
//
// Two load-shedding gates run at Submit, after validation:
//
//   - queue depth (the existing bounded queue, ErrQueueFull);
//   - in-flight bytes: the sum of queued + running request source sizes,
//     bounded by Config.MaxInflightBytes (ErrOverloaded). Source text is the
//     dominant per-job allocation, so this bounds submission-driven memory
//     no matter how large individual programs are.
//
// Above them sits a circuit breaker keyed on determinism self-check and
// recovery cross-check divergences. A divergence means the service's cache
// soundness claim failed — the one state in which serving more traffic makes
// things worse — so repeated divergences (Config.BreakerThreshold) open the
// circuit and shed all submissions (ErrCircuitOpen) for Config.BreakerCooldown.
// The breaker then half-opens: one probe job is admitted, and its fate —
// divergence or not — re-opens or closes the circuit.

// Admission rejection sentinels, wrapped in *diag.MisuseError like the
// queue-full rejection so errors.Is and errors.As both work.
var (
	// ErrOverloaded: in-flight request bytes exceed Config.MaxInflightBytes
	// (load shedding — retry after the queue drains).
	ErrOverloaded = fmt.Errorf("service overloaded: in-flight bytes limit reached")
	// ErrCircuitOpen: the divergence circuit breaker is open; the service is
	// refusing work while its determinism contract is in doubt.
	ErrCircuitOpen = fmt.Errorf("circuit open: repeated determinism divergences")
)

// RetryAfter suggests, in seconds, when a rejected submission is worth
// retrying: the HTTP front end turns this into a Retry-After header on its
// 429/503 responses. Zero means the error is not a backpressure rejection.
func RetryAfter(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
		return 1 // the queue drains at job-execution speed; retry soon
	case errors.Is(err, ErrCircuitOpen):
		return int(defaultBreakerCooldown / time.Second)
	default:
		return 0
	}
}

const defaultBreakerCooldown = 30 * time.Second

// breaker state machine states.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is the divergence circuit breaker. The clock is injectable (now)
// so the state machine is unit-testable without wall-clock sleeps.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu          sync.Mutex
	state       breakerState
	divergences int       // consecutive divergences while closed
	openedAt    time.Time // when the circuit last opened
	trips       int64     // lifetime open transitions, for stats
	probing     bool      // half-open: a probe job is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a submission may pass. In the open state it flips to
// half-open once the cooldown elapses and admits a single probe; in
// half-open it rejects everything but that probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true // this submission is the probe
	default: // half-open
		if b.probing {
			return false // a probe is already in flight
		}
		b.probing = true
		return true
	}
}

// onDivergence records a determinism divergence. While closed it counts
// toward the trip threshold; in half-open it re-opens immediately (the probe
// failed).
func (b *breaker) onDivergence() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.divergences++
		if b.divergences >= b.threshold {
			b.trip()
		}
	case breakerHalfOpen:
		b.trip()
	}
}

// onSuccess records a job that completed without divergence: in half-open it
// closes the circuit; while closed it decays the divergence count so widely
// separated divergences do not accumulate into a trip.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerClosed
		b.divergences = 0
		b.probing = false
	case breakerClosed:
		if b.divergences > 0 {
			b.divergences--
		}
	}
}

// trip opens the circuit; callers hold b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.trips++
	b.divergences = 0
	b.probing = false
}

// snapshot returns the breaker's state name and lifetime trip count.
func (b *breaker) snapshot() (string, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.trips
}
