package service

import (
	"context"
	"fmt"
	"time"

	"repro/internal/diag"
	"repro/internal/harness"
	"repro/internal/trace"
)

// Request describes one deterministic-execution job: the program (textual
// IR), the instrumentation options, the simulation configuration, and the
// artifacts the client wants back. The JSON tags are the wire format of
// cmd/detserve's POST /v1/jobs body.
type Request struct {
	// Source is the program in the textual IR format (ir.Parse).
	Source string `json:"source"`
	// Entry is the SPMD entry function (default "main").
	Entry string `json:"entry,omitempty"`
	// Threads is the simulated core count (default 4; negative is a typed
	// configuration error).
	Threads int `json:"threads,omitempty"`
	// Preset selects the instrumentation optimization preset
	// (none|O1|O2|O3|O4|all; default all). Ignored for Baseline jobs.
	Preset string `json:"preset,omitempty"`
	// Baseline runs the uninstrumented program under plain FCFS locks — the
	// paper's "Original Exec Time" configuration — instead of the
	// deterministic pipeline. The simulator is still a deterministic
	// discrete-event engine, so even baseline results are cacheable; their
	// schedules are just not invariant under PerturbSeed.
	Baseline bool `json:"baseline,omitempty"`
	// PerturbSeed perturbs physical instruction timing (§ PerturbSeed on the
	// facade SimConfig). Deterministic schedules are invariant under it, but
	// it remains part of the result-cache key so perturbation studies hit
	// distinct entries.
	PerturbSeed int64 `json:"perturb_seed,omitempty"`
	// Race enables the fail-fast deterministic race detector. Requires the
	// deterministic pipeline (Baseline=false); the combination is a typed
	// *diag.MisuseError (ErrRaceBackend), mirroring the facade contract.
	Race bool `json:"race,omitempty"`
	// DeadlineMS is the job's execution budget in milliseconds (0 uses
	// Config.DefaultDeadline; negative is a typed configuration error). A
	// job exceeding it is cooperatively canceled inside the simulator and
	// fails with a typed *diag.TimeoutError; concurrently running jobs are
	// unaffected — their results stay bitwise identical.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Artifacts selects optional result payloads.
	Artifacts Artifacts `json:"artifacts"`
}

// Artifacts selects which optional payloads a job's result carries. The
// schedule hash and core run counters are always included; these toggle the
// heavier ones.
type Artifacts struct {
	// Schedule includes the full synchronization schedule (every lock
	// acquisition) in the result.
	Schedule bool `json:"schedule,omitempty"`
	// Stats includes instrumentation-pass statistics (clockable functions).
	Stats bool `json:"stats,omitempty"`
	// OverheadRow computes a Table-I-style overhead row for the job's
	// program and preset (three extra simulations on first request; cached
	// alongside the result afterwards).
	OverheadRow bool `json:"overhead_row,omitempty"`
}

// StageLatency records per-stage wall-clock nanoseconds for one job. Cache
// hits skip stages, which is visible here as zeros.
type StageLatency struct {
	ParseNS      int64 `json:"parse_ns"`
	InstrumentNS int64 `json:"instrument_ns"`
	SimulateNS   int64 `json:"simulate_ns"`
	OverheadNS   int64 `json:"overhead_ns,omitempty"`
}

// Result is a completed job's payload.
type Result struct {
	JobID string `json:"job_id"`
	// Cached reports a result-cache hit (no simulation ran, unless the
	// determinism self-check sampled this hit). InstrCached reports an
	// instrumentation-cache hit (parse + instrument skipped).
	Cached      bool `json:"cached"`
	InstrCached bool `json:"instr_cached"`
	// SelfChecked marks a cache hit that was re-executed by the determinism
	// self-check and found to agree with the stored schedule.
	SelfChecked bool `json:"self_checked,omitempty"`
	// PeerFilled marks a result served from a cluster peer's cache (shard
	// fill) rather than computed or cached locally.
	PeerFilled bool `json:"peer_filled,omitempty"`
	// Remote marks a result computed by a work-stealing peer on behalf of
	// this node.
	Remote bool `json:"remote,omitempty"`

	// ScheduleHash is the %016x FNV-1a digest of the synchronization
	// schedule — equal hashes across runs are the weak-determinism contract.
	ScheduleHash string `json:"schedule_hash"`
	ScheduleLen  int    `json:"schedule_len"`

	Cycles       int64 `json:"cycles"`
	WaitCycles   int64 `json:"wait_cycles"`
	Acquisitions int64 `json:"acquisitions"`
	ClockUpdates int64 `json:"clock_updates"`

	// Clockable lists the functions Optimization 1 clocked (Stats artifact).
	Clockable []string `json:"clockable,omitempty"`
	// Schedule is the full acquisition order (Schedule artifact).
	Schedule *trace.Schedule `json:"schedule,omitempty"`
	// Overhead is the Table-I-style row (OverheadRow artifact).
	Overhead *harness.OverheadRow `json:"overhead,omitempty"`

	Stage StageLatency `json:"stage_latency"`
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// JobView is the externally visible snapshot of a job, JSON-ready for
// GET /v1/jobs/{id}.
type JobView struct {
	ID     string  `json:"id"`
	Status Status  `json:"status"`
	Result *Result `json:"result,omitempty"`
	// Error carries the structured failure report's rendering; ErrorKind
	// classifies it (deadlock, race, divergence, misuse, …).
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
}

// job is the internal job record.
type job struct {
	id  string
	req Request

	done chan struct{} // closed when the job reaches done/failed

	// clientCtx, when non-nil, ties the job's execution to its submitter: a
	// synchronous (?wait=1) client that disconnects cancels the job instead
	// of pinning a worker and a result forever. Asynchronous submissions
	// leave it nil; they are canceled only by deadline or shutdown.
	clientCtx context.Context
	// bytes is the request's admission-control weight (source size),
	// released when the job finishes.
	bytes int64
	// verify marks an internal recovery cross-check job (not client
	// visible): re-execute req and compare against the journaled hash.
	verify *verifySpec
	// reclaim re-enqueues the job if a work-stealing peer that borrowed it
	// never reports back (armed only while lent).
	reclaim *time.Timer

	// Guarded by the owning service's mu.
	status Status
	result *Result
	err    error
	// errKind overrides Classify for journal-recovered failures, whose
	// typed report structure does not survive serialization.
	errKind string
}

// verifySpec is the recovery determinism cross-check: target is the
// recovered job id, wantHash its journaled schedule hash.
type verifySpec struct {
	target   string
	wantHash string
}

// presets maps the accepted preset names; values are resolved through
// harness.PresetByKey so the service and CLI agree.
func validPreset(name string) bool {
	for _, k := range harness.PresetKeys() {
		if k == name {
			return true
		}
	}
	return false
}

// normalize validates a request and fills defaults. Every rejection is a
// typed *diag.MisuseError with ThreadID -1 (configuration-level), following
// the facade's validation conventions.
func normalize(req *Request) error {
	misuse := func(kind error, detail string) error {
		return &diag.MisuseError{Op: "service.Submit", ThreadID: -1, Kind: kind, Detail: detail}
	}
	if req.Source == "" {
		return misuse(diag.ErrBadConfig, "empty program source")
	}
	if req.Threads < 0 {
		return misuse(diag.ErrBadConfig, fmt.Sprintf("negative thread count %d", req.Threads))
	}
	if req.Threads == 0 {
		req.Threads = 4
	}
	if req.DeadlineMS < 0 {
		return misuse(diag.ErrBadConfig, fmt.Sprintf("negative deadline %dms", req.DeadlineMS))
	}
	if req.Entry == "" {
		req.Entry = "main"
	}
	if req.Preset == "" {
		req.Preset = "all"
	}
	if !validPreset(req.Preset) {
		return misuse(diag.ErrBadConfig, fmt.Sprintf("unknown preset %q (want one of %v)", req.Preset, harness.PresetKeys()))
	}
	if req.Race && req.Baseline {
		return misuse(diag.ErrRaceBackend, "race detection requires the deterministic pipeline (Baseline=false)")
	}
	return nil
}
