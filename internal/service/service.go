// Package service is the deterministic-execution service layer: a long-lived
// embedding of the ir→core→interp→sim pipeline behind a job-submission API,
// with a bounded queue, a worker pool, and two content-addressed caches.
//
// Determinism is what makes the pipeline serveable. Invariant 1 of DESIGN §5
// (weak determinism) and invariant 6 (simulator determinism) together mean an
// identical (program, config) request provably produces an identical schedule
// and cycle count — so results are perfectly cacheable, the same insight that
// makes deterministic execution attractive for fault-tolerant replicated
// services (Aviram et al., "Efficient System-Enforced Deterministic
// Parallelism"). The service takes that soundness claim seriously enough to
// police it: a configurable fraction of cache hits is re-executed and
// compared against the stored schedule, and any disagreement is a typed
// *diag.DivergenceError, never a silently wrong answer.
//
// Failure containment: a job that deadlocks, races, or misuses the API
// returns its existing structured report (*diag.DeadlockError,
// *diag.RaceError, *diag.MisuseError, …) as the job's error; the server —
// and every other in-flight job — keeps running.
//
// cmd/detserve is the HTTP front end; the root facade re-exports the types
// for embedding.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/estimates"
	"repro/internal/harness"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/splash"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Classification sentinels for service-level rejections; wrapped in
// *diag.MisuseError so errors.Is and errors.As both work.
var (
	// ErrQueueFull: the bounded job queue is at capacity (backpressure —
	// retry later).
	ErrQueueFull = fmt.Errorf("job queue full")
	// ErrClosed: the service is draining or closed.
	ErrClosed = fmt.Errorf("service closed")
	// ErrDraining: the service is draining toward a graceful leave — it
	// finishes accepted work but admits nothing new. Unlike ErrClosed the
	// pipeline is still fully alive (stolen-job completions, peer serves, and
	// journal writes all proceed); clients should route to another node.
	ErrDraining = fmt.Errorf("service draining")
	// ErrUnknownJob: no job with the requested id.
	ErrUnknownJob = fmt.Errorf("unknown job id")
)

// Config parameterizes a Service.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue (default 256). Submissions beyond it
	// are rejected with ErrQueueFull, never blocked.
	QueueDepth int
	// InstrCacheSize bounds the instrumentation cache (default 128 entries).
	InstrCacheSize int
	// ResultCacheSize bounds the LRU result cache (default 512 entries).
	ResultCacheSize int
	// SelfCheckRate is the fraction of result-cache hits to re-execute and
	// compare against the stored schedule (0 disables, 1 checks every hit).
	SelfCheckRate float64
	// SelfCheckSeed seeds the deterministic sampling stream.
	SelfCheckSeed int64

	// JournalPath enables the durable job journal (empty disables): an
	// append-only JSONL write-ahead log that makes accepted jobs survive
	// crashes — incomplete jobs are re-executed on restart (determinism
	// guarantees identical results), completed ones are served from the log
	// and cross-checked by re-execution in the background.
	JournalPath string
	// JournalFsyncEvery batches completion-record fsyncs (default 16;
	// submitted records are always fsynced before Submit returns).
	JournalFsyncEvery int
	// JournalCompactEvery triggers log compaction once the raw record count
	// exceeds it and twice the live-job count (default 4096).
	JournalCompactEvery int
	// FS is the filesystem the journal writes through (default the real
	// one). Fault-injection harnesses substitute a vfs implementation that
	// produces short writes, fsync errors, and ENOSPC.
	FS vfs.FS

	// DefaultDeadline bounds each job's execution when the request carries
	// no deadline of its own (0 = unbounded).
	DefaultDeadline time.Duration
	// MaxRetries is the per-job retry budget for transient failures —
	// contained panics, injected faults (default 2; negative disables
	// retries). Deterministic failures are never retried.
	MaxRetries int
	// RetryBase/RetryMax shape the exponential backoff between retries
	// (defaults 5ms/250ms); RetrySeed seeds the deterministic jitter.
	RetryBase time.Duration
	RetryMax  time.Duration
	RetrySeed int64

	// MaxInflightBytes bounds the summed request-source size of admitted,
	// unfinished jobs (default 256 MiB); submissions beyond it are shed with
	// ErrOverloaded.
	MaxInflightBytes int64
	// BreakerThreshold is the divergence count that opens the admission
	// circuit breaker (default 3); BreakerCooldown is how long it stays open
	// before half-opening a probe (default 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// RetainJobs bounds the finished-job records kept for Lookup/Wait
	// (default 4096); beyond it the oldest finished jobs are evicted.
	RetainJobs int

	// Faults arms the service chaos harness (nil in production).
	Faults *FaultConfig

	// Cluster hooks — the transport-agnostic extension surface that
	// internal/cluster plugs into. All of them are optional: with every hook
	// nil (single-process mode) the service is byte-for-byte the standalone
	// engine, no cluster code on any path.

	// Fill, when set, is consulted on a result-cache miss before local
	// simulation: the cluster layer fetches the entry from the key's shard
	// owner. A nil return means the peer path is unavailable — the service
	// falls back to local recomputation, never an error. A returned Result
	// must carry its Schedule (the cache entry's self-check reference).
	Fill func(ctx context.Context, key string, req *Request) *Result
	// Offer, when set, receives every freshly computed result (schedule
	// attached) plus its originating request, so the cluster layer can
	// backfill the key's shard owner with an entry the owner can later
	// re-verify by deterministic recompute. It must enqueue and return
	// quickly; it runs on the worker's goroutine.
	Offer func(key string, res *Result, req *Request)
	// ShipRecord, when set, receives every journal record line as it is
	// appended — the journal-shipping feed. It is called under the journal
	// lock: implementations must buffer and return, never block or call
	// back into the service.
	ShipRecord func(line []byte)
	// PeerCheckRate is the fraction of peer-filled results to re-execute
	// locally and cross-check against the peer's schedule (0 disables, 1
	// checks every fill); PeerCheckSeed seeds the deterministic sampling
	// stream. A mismatch is a typed divergence that fails the job and feeds
	// the admission circuit breaker — a wrong peer answer is never served
	// silently.
	PeerCheckRate float64
	PeerCheckSeed int64
	// StealReclaim bounds how long a stolen (lent-to-a-peer) job may stay
	// out before the service reclaims it and re-enqueues it locally
	// (default 5s). Determinism makes the duplicate execution harmless: a
	// late remote completion for a reclaimed job is simply dropped.
	StealReclaim time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.InstrCacheSize <= 0 {
		c.InstrCacheSize = 128
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 512
	}
	if c.JournalFsyncEvery <= 0 {
		c.JournalFsyncEvery = 16
	}
	if c.JournalCompactEvery <= 0 {
		c.JournalCompactEvery = 4096
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.MaxInflightBytes <= 0 {
		c.MaxInflightBytes = 256 << 20
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 4096
	}
	if c.StealReclaim <= 0 {
		c.StealReclaim = 5 * time.Second
	}
	return c
}

// Service is the deterministic-execution service.
type Service struct {
	cfg Config

	mu        sync.Mutex
	closed    bool
	draining  bool
	seq       int64
	jobs      map[string]*job
	queue     chan *job
	doneOrder []string        // finished job ids, oldest first (retention eviction)
	lent      map[string]*job // queued jobs lent to work-stealing peers

	wg sync.WaitGroup

	// rootCtx cancels every in-flight job on Kill (crash simulation); Close
	// drains gracefully and leaves it alone until the drain completes.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	instr     *lruCache
	results   *lruCache
	check     *sampler
	peerCheck *sampler
	ctr       counters

	journal  *journal // nil when no journal is configured
	degraded atomic.Bool
	breaker  *breaker
	back     *backoff
	inflight atomic.Int64
	chaos    *chaos

	// Shared read-only tables for the pipeline.
	costs *ir.CostModel
	est   *estimates.Table
}

// New starts a service: the worker pool begins draining the queue
// immediately. Close shuts it down. A journal that fails to open does not
// stop the service — it starts degraded (no durability, result cache off)
// with the failure counted; use Open when the caller wants that error.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		cfg.JournalPath = ""
		s, _ = Open(cfg)
		s.degrade(err)
	}
	return s
}

// Open starts a service like New but surfaces journal open/recovery errors
// instead of degrading, for front ends (cmd/detserve) that should refuse to
// start without the durability they were asked for.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		jobs:      make(map[string]*job),
		lent:      make(map[string]*job),
		queue:     make(chan *job, cfg.QueueDepth),
		instr:     newLRU(cfg.InstrCacheSize),
		results:   newLRU(cfg.ResultCacheSize),
		check:     newSampler(cfg.SelfCheckRate, cfg.SelfCheckSeed),
		peerCheck: newSampler(cfg.PeerCheckRate, cfg.PeerCheckSeed),
		breaker:   newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		back:      newBackoff(cfg.RetryBase, cfg.RetryMax, cfg.RetrySeed),
		chaos:     newChaos(cfg.Faults),
		costs:     ir.DefaultCostModel(),
		est:       estimates.DefaultTable(),
	}
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())

	var recovered []*job
	if cfg.JournalPath != "" {
		jn, replayed, err := openJournal(cfg.FS, cfg.JournalPath, cfg.JournalFsyncEvery, cfg.JournalCompactEvery, s.chaos, cfg.ShipRecord)
		if err != nil {
			return nil, err
		}
		s.journal = jn
		if jn.quarantined > 0 {
			s.ctr.quarantined.Add(int64(jn.quarantined))
			s.ctr.corruptions.Add(int64(jn.quarantined))
		}
		recovered = s.installRecovered(replayed)
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	// Recovered work is enqueued after the pool starts so a recovery load
	// larger than the queue simply drains through it (blocking sends here,
	// workers receiving concurrently).
	for _, j := range recovered {
		s.queue <- j
	}
	return s, nil
}

// installRecovered folds the replayed journal into the job table: finished
// jobs are served from the journal (successful ones additionally scheduled
// for the background determinism cross-check), incomplete ones re-enqueued
// for execution. Returns the jobs to enqueue, submission order preserved.
func (s *Service) installRecovered(replayed []*journalJob) []*job {
	var enqueue []*job
	closedCh := make(chan struct{})
	close(closedCh)
	for _, jj := range replayed {
		if n, ok := numericID(jj.id); ok && n > s.seq {
			s.seq = n
		}
		switch {
		case !jj.done:
			// Incomplete: the crash interrupted it; re-execute. Determinism
			// makes the re-run provably identical to the lost one.
			j := &job{id: jj.id, req: jj.req, status: StatusQueued, done: make(chan struct{}), bytes: int64(len(jj.req.Source))}
			s.jobs[jj.id] = j
			s.inflight.Add(j.bytes)
			s.ctr.recovered.Add(1)
			enqueue = append(enqueue, j)
		case jj.result != nil:
			// Completed: serve the journaled result immediately, and queue a
			// cross-check that re-executes the request and compares schedule
			// hashes — recovery trusts determinism but verifies it.
			res := *jj.result
			res.JobID = jj.id
			j := &job{id: jj.id, req: jj.req, status: StatusDone, done: closedCh, result: &res}
			s.jobs[jj.id] = j
			s.ctr.recovered.Add(1)
			enqueue = append(enqueue, &job{
				id:     jj.id + "#verify",
				req:    jj.req,
				status: StatusQueued,
				done:   make(chan struct{}),
				verify: &verifySpec{target: jj.id, wantHash: res.ScheduleHash},
			})
		default:
			// Failed: the report's rendering and kind survive; the typed
			// structure does not. Deterministic failures re-verify trivially
			// if resubmitted — no cross-check needed.
			j := &job{id: jj.id, req: jj.req, status: StatusFailed, done: closedCh,
				err: errors.New(jj.errMsg), errKind: jj.errKind}
			s.jobs[jj.id] = j
			s.ctr.recovered.Add(1)
		}
	}
	return enqueue
}

// numericID parses the N of "job-N" ids so a recovered service continues
// its id sequence past everything in the journal.
func numericID(id string) (int64, bool) {
	const prefix = "job-"
	if len(id) <= len(prefix) || id[:len(prefix)] != prefix {
		return 0, false
	}
	var n int64
	for _, c := range id[len(prefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// degrade marks the service journal-degraded: journaling stops, and the
// result cache is disabled so every response is freshly computed — the
// service stays up and correct, trading cache speed for not serving answers
// whose durability story just broke.
func (s *Service) degrade(err error) {
	if s.degraded.CompareAndSwap(false, true) {
		s.ctr.failures.record("", "journal", fmt.Sprintf("journal degraded: %v", err))
	}
	s.ctr.journalErrors.Add(1)
}

// Submit validates and enqueues a job, returning its id. Rejections are
// typed: validation failures are *diag.MisuseError (ErrBadConfig /
// ErrRaceBackend kinds), a full queue is ErrQueueFull, load shedding is
// ErrOverloaded, an open circuit breaker is ErrCircuitOpen, a closed service
// is ErrClosed. When a journal is configured, the submitted record is
// durable (fsynced) before the id is returned.
func (s *Service) Submit(req Request) (string, error) {
	return s.submit(nil, req)
}

func (s *Service) submit(clientCtx context.Context, req Request) (string, error) {
	if err := normalize(&req); err != nil {
		s.ctr.rejected.Add(1)
		s.ctr.rejects.bump(Classify(err))
		return "", err
	}
	misuse := func(kind error, detail string) (string, error) {
		s.ctr.rejected.Add(1)
		s.ctr.rejects.bump(Classify(kind))
		return "", &diag.MisuseError{Op: "service.Submit", ThreadID: -1, Kind: kind, Detail: detail}
	}
	// Admission control, cheapest checks first; all run before any journal
	// write or pipeline work, so overload sheds at near-zero cost.
	if !s.breaker.allow() {
		return misuse(ErrCircuitOpen, "determinism divergences tripped the breaker")
	}
	bytes := int64(len(req.Source))
	if s.inflight.Load()+bytes > s.cfg.MaxInflightBytes {
		return misuse(ErrOverloaded, fmt.Sprintf("in-flight bytes %d + request %d exceed limit %d",
			s.inflight.Load(), bytes, s.cfg.MaxInflightBytes))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return misuse(ErrClosed, "")
	}
	if s.draining {
		s.mu.Unlock()
		return misuse(ErrDraining, "node is draining; submit elsewhere")
	}
	// Reserve the id first and journal outside the lock: the submitted
	// record must be durable before the client sees the id, and must exist
	// before any completion record for the same id can be appended.
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		return misuse(ErrQueueFull, fmt.Sprintf("queue depth %d reached", cap(s.queue)))
	}
	s.seq++
	id := fmt.Sprintf("job-%d", s.seq)
	j := &job{id: id, req: req, status: StatusQueued, done: make(chan struct{}), clientCtx: clientCtx, bytes: bytes}
	s.jobs[id] = j
	s.mu.Unlock()

	if s.journal != nil && !s.degraded.Load() {
		if err := s.journal.appendSubmitted(id, &req); err != nil {
			// Durability is gone but the service is not: degrade (journaling
			// off, result cache off) and keep serving.
			s.degrade(err)
		}
	}

	s.mu.Lock()
	if s.closed {
		delete(s.jobs, id)
		s.mu.Unlock()
		s.journalFinished(j, nil, ErrClosed.Error(), "closed")
		return misuse(ErrClosed, "")
	}
	select {
	case s.queue <- j:
		s.inflight.Add(bytes)
		// High-water update under s.mu: depth can only grow at this one
		// site, so a load/compare/store pair cannot lose a larger value.
		if d := int64(len(s.queue)); d > s.ctr.queueHighWater.Load() {
			s.ctr.queueHighWater.Store(d)
		}
		s.mu.Unlock()
		s.ctr.accepted.Add(1)
		return id, nil
	default:
		// The queue filled between the pre-check and here. The submitted
		// record may already be durable, so journal a terminal rejection —
		// otherwise a restart would resurrect a job the client was told was
		// refused.
		delete(s.jobs, id)
		s.mu.Unlock()
		s.journalFinished(j, nil, ErrQueueFull.Error(), "queue_full")
		return misuse(ErrQueueFull, fmt.Sprintf("queue depth %d reached", cap(s.queue)))
	}
}

// journalFinished appends a job's finish record, degrading on write errors.
func (s *Service) journalFinished(j *job, res *Result, errMsg, errKind string) {
	if s.journal == nil || s.degraded.Load() {
		return
	}
	if err := s.journal.appendFinished(j.id, res, errMsg, errKind); err != nil {
		s.degrade(err)
	}
}

// Wait blocks until the job completes (or ctx is done) and returns its
// result or structured failure.
func (s *Service) Wait(ctx context.Context, id string) (*Result, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, &diag.MisuseError{Op: "service.Wait", ThreadID: -1, Kind: ErrUnknownJob, Detail: id}
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return j.result, nil
}

// Do submits a job and waits for it — the synchronous convenience the HTTP
// ?wait=1 path, the tests, and the smoke target use. The context is attached
// to the job itself, not just the wait: a synchronous client that goes away
// (an abandoned HTTP request) cancels its job's execution instead of leaving
// it pinning a worker and a retained result forever.
func (s *Service) Do(ctx context.Context, req Request) (*Result, error) {
	id, err := s.submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return s.Wait(ctx, id)
}

// Lookup returns a job's current view.
func (s *Service) Lookup(id string) (*JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, &diag.MisuseError{Op: "service.Lookup", ThreadID: -1, Kind: ErrUnknownJob, Detail: id}
	}
	v := &JobView{ID: j.id, Status: j.status, Result: j.result}
	if j.err != nil {
		v.Error = j.err.Error()
		if j.errKind != "" {
			// Journal-recovered failures keep their original classification;
			// the typed report structure did not survive serialization.
			v.ErrorKind = j.errKind
		} else {
			v.ErrorKind = Classify(j.err)
		}
	}
	return v, nil
}

// Snapshot returns the service counters.
func (s *Service) Snapshot() StatsSnapshot {
	breakerState, breakerTrips := s.breaker.snapshot()
	snap := StatsSnapshot{
		JobsAccepted:       s.ctr.accepted.Load(),
		JobsCompleted:      s.ctr.completed.Load(),
		JobsFailed:         s.ctr.failed.Load(),
		JobsRejected:       s.ctr.rejected.Load(),
		QueueDepth:         len(s.queue),
		QueueCap:           cap(s.queue),
		Workers:            s.cfg.Workers,
		QueueHighWater:     int(s.ctr.queueHighWater.Load()),
		RejectByCause:      s.ctr.rejects.snapshot(),
		InstrCacheHits:     s.ctr.instrHits.Load(),
		InstrCacheMisses:   s.ctr.instrMisses.Load(),
		InstrCacheSize:     s.instr.len(),
		ResultCacheHits:    s.ctr.resultHits.Load(),
		ResultCacheMisses:  s.ctr.resultMisses.Load(),
		ResultCacheSize:    s.results.len(),
		SelfChecks:         s.ctr.selfChecks.Load(),
		Divergences:        s.ctr.divergences.Load(),
		Retries:            s.ctr.retries.Load(),
		Timeouts:           s.ctr.timeouts.Load(),
		InflightBytes:      s.inflight.Load(),
		MaxInflightBytes:   s.cfg.MaxInflightBytes,
		JournalEnabled:     s.journal != nil,
		JournalDegraded:    s.degraded.Load(),
		JournalErrors:      s.ctr.journalErrors.Load(),
		RecoveredJobs:      s.ctr.recovered.Load(),
		RecoveryChecks:     s.ctr.recoverChecks.Load(),
		JournalQuarantined: s.ctr.quarantined.Load(),
		CorruptionEvents:   s.ctr.corruptions.Load(),
		BreakerState:       breakerState,
		BreakerTrips:       breakerTrips,
		PeerFills:          s.ctr.peerFills.Load(),
		PeerFillRejects:    s.ctr.peerFillRejects.Load(),
		PeerFillChecks:     s.ctr.peerChecks.Load(),
		PeerServes:         s.ctr.peerServes.Load(),
		PeerOffers:         s.ctr.offers.Load(),
		JobsStolen:         s.ctr.stolen.Load(),
		StealReclaims:      s.ctr.stealReclaims.Load(),
		RecentFailures:     s.ctr.failures.snapshot(),
		Stages: map[string]StageStats{
			"parse":      s.ctr.parse.snapshot(),
			"instrument": s.ctr.instrument.snapshot(),
			"simulate":   s.ctr.simulate.snapshot(),
			"overhead":   s.ctr.overhead.snapshot(),
		},
	}
	if s.journal != nil {
		snap.JournalJobs, snap.JournalFinished = s.journal.snapshotLive()
	}
	return snap
}

// Close stops accepting jobs, drains the queue and in-flight work, and
// returns when every worker has exited (or ctx expires; workers then finish
// in the background). On a clean drain the journal is flushed and closed, so
// a graceful shutdown leaves every accepted job's finish record durable.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.rootCancel()
		if s.journal != nil {
			if err := s.journal.close(); err != nil && !s.degraded.Load() {
				return err
			}
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Kill simulates a crash (the chaos harness's SIGTERM): in-flight jobs are
// canceled, the queue stops, and the journal's unflushed batch buffer is
// dropped — exactly the state a process kill leaves behind. Completion
// records inside the batch-fsync window are lost by design; recovery
// re-executes those jobs, and determinism makes the re-runs identical.
func (s *Service) Kill() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	// The journal dies before in-flight jobs are canceled: nothing a dying
	// worker writes after this point can become durable, exactly like a real
	// crash. Canceled jobs stay incomplete in the log and recover by
	// re-execution.
	if s.journal != nil {
		s.journal.kill()
	}
	s.rootCancel()
	s.wg.Wait()
}

// ReportCorruption records an externally detected integrity failure — the
// cluster layer calls it when a peer response or shipped batch fails its
// checksum. Corruption feeds the same admission circuit breaker divergences
// do: both mean bytes the system would have served cannot be trusted, and
// enough of them in a row should stop admission rather than keep racing the
// fault.
func (s *Service) ReportCorruption(err error) {
	s.ctr.corruptions.Add(1)
	if err != nil {
		s.ctr.failures.record("", "corruption", err.Error())
	}
	s.breaker.onDivergence()
}

// Classify maps a job error to its report family for monitoring and HTTP
// responses.
func Classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, diag.ErrDeadlock):
		return "deadlock"
	case errors.Is(err, diag.ErrRace):
		return "race"
	case errors.Is(err, diag.ErrDivergence):
		return "divergence"
	case errors.Is(err, diag.ErrCorruption):
		return "corruption"
	case errors.Is(err, diag.ErrRetriesExhausted):
		return "retries_exhausted"
	case errors.Is(err, diag.ErrDeadline):
		return "timeout"
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrCircuitOpen):
		return "circuit_open"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrClosed):
		return "closed"
	case errors.Is(err, ErrUnknownJob):
		return "unknown_job"
	case errors.Is(err, diag.ErrBadConfig), errors.Is(err, diag.ErrRaceBackend), errors.Is(err, diag.ErrDetectorMidRun):
		return "misuse"
	default:
		return "error"
	}
}

// --- worker pipeline --------------------------------------------------------

func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job to completion: deadline/cancellation context,
// bounded retry of transient failures, panic containment (a single bad job
// can never tear down the pool), journaling, and breaker accounting.
func (s *Service) runJob(j *job) {
	if j.verify != nil {
		s.runVerify(j)
		return
	}
	s.setStatus(j, StatusRunning)

	// The job context merges three cancellation sources: service shutdown
	// (rootCtx, via Kill), the synchronous submitter's disconnect
	// (clientCtx), and the job's deadline. The sim engine polls it
	// cooperatively, so cancellation lands mid-simulation, not after.
	base := j.clientCtx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	stop := context.AfterFunc(s.rootCtx, cancel)
	defer stop()
	defer cancel()
	deadline := s.cfg.DefaultDeadline
	if j.req.DeadlineMS > 0 {
		deadline = time.Duration(j.req.DeadlineMS) * time.Millisecond
	}
	if deadline > 0 {
		var cancelDL context.CancelFunc
		ctx, cancelDL = context.WithTimeout(ctx, deadline)
		defer cancelDL()
	}

	var res *Result
	var err error
	attempts := 0
	for {
		attempts++
		res, err = s.attempt(ctx, j)
		if err == nil || !retryable(err) || attempts > s.cfg.MaxRetries {
			break
		}
		s.ctr.retries.Add(1)
		if serr := sleepCtx(ctx, s.back.delay(attempts)); serr != nil {
			err = serr // the deadline expired mid-backoff
			break
		}
	}
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		// Deadline expiry: typed timeout, never retried.
		err = &diag.TimeoutError{Op: "service.job " + j.id, Deadline: deadline, Cause: context.DeadlineExceeded}
		s.ctr.timeouts.Add(1)
	case errors.Is(err, context.Canceled):
		// Client disconnect or shutdown: same typed family, no deadline.
		err = &diag.TimeoutError{Op: "service.job " + j.id, Cause: context.Canceled}
		s.ctr.timeouts.Add(1)
	case retryable(err) && attempts > 1:
		err = &diag.RetryError{Op: "service.job " + j.id, Attempts: attempts, Last: err}
	}
	s.finish(j, res, err)
}

// attempt is one panic-contained execution of the job's pipeline; the chaos
// harness's injected worker panics land here, tagged transient.
func (s *Service) attempt(ctx context.Context, j *job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			if e, ok := r.(error); ok {
				err = fmt.Errorf("service: job %s: %w: %w", j.id, errContainedPanic, e)
			} else {
				err = fmt.Errorf("service: job %s: %w: %v", j.id, errContainedPanic, r)
			}
		}
	}()
	if s.chaos.workerPanic() {
		panic(fmt.Errorf("%w: worker panic", diag.ErrInjected))
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	return s.execute(ctx, j)
}

// finish publishes a job's outcome: status, counters, journal finish record,
// failure ring, breaker feedback, admission release, retention eviction.
func (s *Service) finish(j *job, res *Result, err error) {
	kind := Classify(err)
	s.mu.Lock()
	if err != nil {
		j.status, j.err = StatusFailed, err
	} else {
		j.status, j.result = StatusDone, res
	}
	s.retainLocked(j)
	s.mu.Unlock()
	s.inflight.Add(-j.bytes)
	if err != nil {
		s.ctr.failed.Add(1)
		s.ctr.failures.record(j.id, kind, err.Error())
		// Shutdown-canceled failures are crash artifacts, not job outcomes:
		// they stay out of the journal so recovery re-executes the job (a
		// genuine deterministic failure reproduces on the re-run anyway).
		if s.rootCtx.Err() == nil {
			s.journalFinished(j, nil, err.Error(), kind)
		}
	} else {
		s.ctr.completed.Add(1)
		s.journalFinished(j, res, "", "")
	}
	// Breaker feedback: divergences are the trip signal; any clean
	// completion is the close/decay signal. Other failures (deadlock, race,
	// timeout) are program- or policy-level and say nothing about the
	// service's own soundness.
	if errors.Is(err, diag.ErrDivergence) {
		s.breaker.onDivergence()
	} else if err == nil {
		s.breaker.onSuccess()
	}
	close(j.done)
}

// retainLocked appends j to the finished order and evicts the oldest
// finished jobs beyond Config.RetainJobs, so a long-running service's job
// table cannot grow without bound. Callers hold s.mu.
func (s *Service) retainLocked(j *job) {
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.RetainJobs {
		victim := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, victim)
	}
}

// runVerify is the recovery determinism cross-check: re-execute a journaled
// completed job's request and compare schedule hashes. A mismatch means the
// journal and the pipeline disagree — a typed divergence that flips the
// recovered job to failed and feeds the circuit breaker, never a silently
// wrong answer served from the log.
func (s *Service) runVerify(j *job) {
	defer close(j.done)
	s.ctr.recoverChecks.Add(1)
	hash, err := func() (hash string, err error) {
		defer func() {
			if r := recover(); r != nil {
				hash, err = "", fmt.Errorf("service: recovery check %s: contained panic: %v", j.verify.target, r)
			}
		}()
		var lat StageLatency
		ie, _, err := s.instrumented(&j.req, &lat)
		if err != nil {
			return "", err
		}
		ent, err := s.simulate(s.rootCtx, ie, &j.req)
		if err != nil {
			return "", err
		}
		return ent.res.ScheduleHash, nil
	}()
	if s.rootCtx.Err() != nil {
		return // shutdown raced the check; the next restart redoes it
	}
	if err == nil && hash == j.verify.wantHash {
		s.breaker.onSuccess()
		return
	}
	if err == nil {
		err = fmt.Errorf("service: recovery cross-check: %w: journaled schedule hash %s, re-execution produced %s",
			diag.ErrDivergence, j.verify.wantHash, hash)
	} else {
		err = fmt.Errorf("service: recovery cross-check: %w: journaled result could not be reproduced: %w",
			diag.ErrDivergence, err)
	}
	s.ctr.divergences.Add(1)
	s.ctr.failures.record(j.verify.target, "divergence", err.Error())
	s.breaker.onDivergence()
	s.mu.Lock()
	if target, ok := s.jobs[j.verify.target]; ok {
		target.status, target.err, target.result, target.errKind = StatusFailed, err, nil, "divergence"
	}
	s.mu.Unlock()
	s.journalFinished(&job{id: j.verify.target}, nil, err.Error(), "divergence")
}

func (s *Service) setStatus(j *job, st Status) {
	s.mu.Lock()
	j.status = st
	s.mu.Unlock()
}

// execute runs the cached pipeline: instrumentation cache → result cache →
// simulate on miss (or on a sampled self-check). While the service is
// journal-degraded the result cache is bypassed entirely: every answer is
// freshly computed, trading speed for soundness the broken journal can no
// longer police.
func (s *Service) execute(ctx context.Context, j *job) (*Result, error) {
	req := &j.req
	var lat StageLatency

	ie, instrHit, err := s.instrumented(req, &lat)
	if err != nil {
		return nil, err
	}

	cacheOn := !s.degraded.Load()
	rk := resultKey(ie.text, req)
	if cacheOn {
		if v, ok := s.results.get(rk); ok {
			s.ctr.resultHits.Add(1)
			ent := v.(*resultEntry)
			selfChecked := false
			if s.check.sample() {
				s.ctr.selfChecks.Add(1)
				if err := s.selfCheck(ctx, ie, req, ent); err != nil {
					s.ctr.divergences.Add(1)
					return nil, err
				}
				selfChecked = true
			}
			return s.assemble(j, ie, ent, true, instrHit, selfChecked, &lat)
		}
		s.ctr.resultMisses.Add(1)
		// Shard miss: ask the cluster layer to fill from the key's owner
		// before paying for a local simulation. Fill failure is never an
		// error — a nil entry falls through to local recomputation.
		if s.cfg.Fill != nil {
			ent, err := s.peerFill(ctx, rk, j, ie)
			if err != nil {
				return nil, err // peer-fill cross-check divergence
			}
			if ent != nil {
				s.results.add(rk, ent)
				res, err := s.assemble(j, ie, ent, false, instrHit, false, &lat)
				if res != nil {
					res.PeerFilled = true
				}
				return res, err
			}
		}
	}

	start := time.Now()
	ent, err := s.simulate(ctx, ie, req)
	lat.SimulateNS = time.Since(start).Nanoseconds()
	s.ctr.simulate.record(lat.SimulateNS)
	if err != nil {
		return nil, err
	}
	if cacheOn {
		s.results.add(rk, ent)
		// Freshly computed under a cluster: offer the entry to the key's
		// shard owner so the next fill from any node hits.
		if s.cfg.Offer != nil {
			s.cfg.Offer(rk, exportEntry(ent), &j.req)
		}
	}
	return s.assemble(j, ie, ent, false, instrHit, false, &lat)
}

// peerFill asks the cluster layer for a result-cache entry computed
// elsewhere, validates its self-consistency, and (at Config.PeerCheckRate)
// cross-checks it by local re-execution. Returns (nil, nil) whenever the
// peer path cannot produce a trustworthy entry — the caller recomputes
// locally and the client never sees a peer failure. The only error returned
// is a typed divergence: the peer's schedule and a local re-execution
// disagreed, which is a soundness failure that must not be served.
func (s *Service) peerFill(ctx context.Context, key string, j *job, ie *instrEntry) (*resultEntry, error) {
	pr := s.cfg.Fill(ctx, key, &j.req)
	if pr == nil || pr.Schedule == nil {
		return nil, nil
	}
	// Self-consistency: the transferred schedule must hash to the claimed
	// ScheduleHash and match the claimed length. A corrupted transfer is
	// treated as a miss, not an answer.
	if fmt.Sprintf("%016x", pr.Schedule.Hash()) != pr.ScheduleHash || pr.Schedule.Len() != pr.ScheduleLen {
		s.ctr.peerFillRejects.Add(1)
		return nil, nil
	}
	ent := entryFromPeer(pr, &j.req)
	if s.peerCheck.sample() {
		s.ctr.peerChecks.Add(1)
		fresh, err := s.simulate(ctx, ie, &j.req)
		if err != nil {
			// The local pipeline refuses a request the peer claims to have
			// completed — surface it as the job's own (typed) failure rather
			// than serving an answer the local engine cannot reproduce.
			return nil, err
		}
		if d := trace.Compare(ent.schedule, fresh.schedule); d.Diverged {
			s.ctr.divergences.Add(1)
			return nil, fmt.Errorf("service: peer-fill cross-check: %w", trace.DivergenceError(1, d))
		}
	}
	s.ctr.peerFills.Add(1)
	return ent, nil
}

// instrumented returns the cached instrumentation for req, building it on a
// miss: parse, verify, instrument (unless baseline), print.
func (s *Service) instrumented(req *Request, lat *StageLatency) (*instrEntry, bool, error) {
	ik := instrKey(req)
	if v, ok := s.instr.get(ik); ok {
		s.ctr.instrHits.Add(1)
		return v.(*instrEntry), true, nil
	}
	s.ctr.instrMisses.Add(1)

	start := time.Now()
	raw, err := ir.Parse(req.Source)
	lat.ParseNS = time.Since(start).Nanoseconds()
	s.ctr.parse.record(lat.ParseNS)
	if err != nil {
		return nil, false, fmt.Errorf("service: parse: %w", err)
	}

	ie := &instrEntry{raw: raw, mod: raw}
	if !req.Baseline {
		start = time.Now()
		mod := raw.Clone()
		opt := harness.PresetByKey(req.Preset)
		opt.Roots = []string{req.Entry}
		pass, err := core.Instrument(mod, s.costs, s.est, opt)
		lat.InstrumentNS = time.Since(start).Nanoseconds()
		s.ctr.instrument.record(lat.InstrumentNS)
		if err != nil {
			return nil, false, fmt.Errorf("service: instrument: %w", err)
		}
		ie.mod, ie.pass = mod, pass
	}
	ie.text = ie.mod.String()
	s.instr.add(ik, ie)
	return ie, false, nil
}

// simulate runs one deterministic simulation from an instrumentation entry,
// always recording the schedule (it is the cache's self-check reference).
// The context is threaded into the engine as its cooperative cancellation
// hook: deadlines and disconnects land mid-simulation. Cancellation never
// mutates engine state, so uncancelled runs are bitwise identical with or
// without a deadline configured.
func (s *Service) simulate(ctx context.Context, ie *instrEntry, req *Request) (*resultEntry, error) {
	mod := ie.mod.Clone()
	cfg := interp.Config{
		Module:     mod,
		Costs:      s.costs,
		Estimates:  s.est,
		Threads:    req.Threads,
		Entry:      req.Entry,
		JitterSeed: req.PerturbSeed,
	}
	if req.Race {
		cfg.Race = &interp.RaceConfig{Policy: interp.RaceFailFast}
	}
	mach, threads, err := interp.NewMachine(cfg)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	policy := sim.PolicyFCFS
	if !req.Baseline {
		policy = sim.PolicyDet
	}
	eng := sim.New(sim.Config{
		Policy:      policy,
		NumLocks:    mod.NumLocks,
		NumBarriers: mod.NumBars,
		RecordTrace: true,
		Observer:    mach.Observer(),
		Cancel:      ctx.Err,
	}, interp.Programs(threads))
	stats, err := eng.Run()
	if err != nil {
		// Structured report (DeadlockError, RaceError, …) — the job fails,
		// the server does not.
		return nil, err
	}
	sched := trace.FromSim(stats.Trace)
	ent := &resultEntry{
		res: Result{
			ScheduleHash: fmt.Sprintf("%016x", sched.Hash()),
			ScheduleLen:  sched.Len(),
			Cycles:       stats.Makespan,
			WaitCycles:   stats.WaitCycles,
			Acquisitions: stats.Acquisitions,
			ClockUpdates: mach.ClockUpdates,
		},
		schedule: sched,
	}
	if ie.pass != nil {
		ent.res.Clockable = ie.pass.ClockableNames()
	}
	rc := *req
	ent.req = &rc
	return ent, nil
}

// selfCheck re-executes a cache hit and compares the fresh schedule against
// the stored one. A mismatch is the weak-determinism contract failing under
// the service — returned as the typed divergence report.
func (s *Service) selfCheck(ctx context.Context, ie *instrEntry, req *Request, ent *resultEntry) error {
	fresh, err := s.simulate(ctx, ie, req)
	if err != nil {
		return fmt.Errorf("service: self-check re-execution: %w", err)
	}
	if d := trace.Compare(ent.schedule, fresh.schedule); d.Diverged {
		return trace.DivergenceError(1, d)
	}
	return nil
}

// assemble builds the job-facing result from a cache entry, honoring the
// requested artifacts.
func (s *Service) assemble(j *job, ie *instrEntry, ent *resultEntry, cached, instrCached, selfChecked bool, lat *StageLatency) (*Result, error) {
	res := ent.res // copy
	res.JobID = j.id
	res.Cached = cached
	res.InstrCached = instrCached
	res.SelfChecked = selfChecked
	if !j.req.Artifacts.Stats {
		res.Clockable = nil
	}
	if j.req.Artifacts.Schedule {
		res.Schedule = ent.schedule
	}
	if j.req.Artifacts.OverheadRow {
		row, err := s.overheadRow(ie, &j.req, ent, lat)
		if err != nil {
			return nil, err
		}
		res.Overhead = row
	}
	res.Stage = *lat
	return &res, nil
}

// overheadRow returns the entry's Table-I-style row, computing and caching
// it on first request (three extra simulations via the harness).
func (s *Service) overheadRow(ie *instrEntry, req *Request, ent *resultEntry, lat *StageLatency) (*harness.OverheadRow, error) {
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.overhead != nil {
		return ent.overhead, nil
	}
	start := time.Now()
	r := harness.NewRunner()
	r.Threads = req.Threads
	b := &splash.Benchmark{Name: "job", Module: ie.raw, Threads: req.Threads, Entry: req.Entry}
	row, err := r.OverheadRowFor(b, harness.PresetByKey(req.Preset))
	lat.OverheadNS = time.Since(start).Nanoseconds()
	s.ctr.overhead.record(lat.OverheadNS)
	if err != nil {
		return nil, fmt.Errorf("service: overhead row: %w", err)
	}
	ent.overhead = row
	return row, nil
}
