// Package service is the deterministic-execution service layer: a long-lived
// embedding of the ir→core→interp→sim pipeline behind a job-submission API,
// with a bounded queue, a worker pool, and two content-addressed caches.
//
// Determinism is what makes the pipeline serveable. Invariant 1 of DESIGN §5
// (weak determinism) and invariant 6 (simulator determinism) together mean an
// identical (program, config) request provably produces an identical schedule
// and cycle count — so results are perfectly cacheable, the same insight that
// makes deterministic execution attractive for fault-tolerant replicated
// services (Aviram et al., "Efficient System-Enforced Deterministic
// Parallelism"). The service takes that soundness claim seriously enough to
// police it: a configurable fraction of cache hits is re-executed and
// compared against the stored schedule, and any disagreement is a typed
// *diag.DivergenceError, never a silently wrong answer.
//
// Failure containment: a job that deadlocks, races, or misuses the API
// returns its existing structured report (*diag.DeadlockError,
// *diag.RaceError, *diag.MisuseError, …) as the job's error; the server —
// and every other in-flight job — keeps running.
//
// cmd/detserve is the HTTP front end; the root facade re-exports the types
// for embedding.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/estimates"
	"repro/internal/harness"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/splash"
	"repro/internal/trace"
)

// Classification sentinels for service-level rejections; wrapped in
// *diag.MisuseError so errors.Is and errors.As both work.
var (
	// ErrQueueFull: the bounded job queue is at capacity (backpressure —
	// retry later).
	ErrQueueFull = fmt.Errorf("job queue full")
	// ErrClosed: the service is draining or closed.
	ErrClosed = fmt.Errorf("service closed")
	// ErrUnknownJob: no job with the requested id.
	ErrUnknownJob = fmt.Errorf("unknown job id")
)

// Config parameterizes a Service.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue (default 256). Submissions beyond it
	// are rejected with ErrQueueFull, never blocked.
	QueueDepth int
	// InstrCacheSize bounds the instrumentation cache (default 128 entries).
	InstrCacheSize int
	// ResultCacheSize bounds the LRU result cache (default 512 entries).
	ResultCacheSize int
	// SelfCheckRate is the fraction of result-cache hits to re-execute and
	// compare against the stored schedule (0 disables, 1 checks every hit).
	SelfCheckRate float64
	// SelfCheckSeed seeds the deterministic sampling stream.
	SelfCheckSeed int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.InstrCacheSize <= 0 {
		c.InstrCacheSize = 128
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 512
	}
	return c
}

// Service is the deterministic-execution service.
type Service struct {
	cfg Config

	mu     sync.Mutex
	closed bool
	seq    int64
	jobs   map[string]*job
	queue  chan *job

	wg sync.WaitGroup

	instr   *lruCache
	results *lruCache
	check   *sampler
	ctr     counters

	// Shared read-only tables for the pipeline.
	costs *ir.CostModel
	est   *estimates.Table
}

// New starts a service: the worker pool begins draining the queue
// immediately. Close shuts it down.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		queue:   make(chan *job, cfg.QueueDepth),
		instr:   newLRU(cfg.InstrCacheSize),
		results: newLRU(cfg.ResultCacheSize),
		check:   newSampler(cfg.SelfCheckRate, cfg.SelfCheckSeed),
		costs:   ir.DefaultCostModel(),
		est:     estimates.DefaultTable(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates and enqueues a job, returning its id. Rejections are
// typed: validation failures are *diag.MisuseError (ErrBadConfig /
// ErrRaceBackend kinds), a full queue is ErrQueueFull, a closed service is
// ErrClosed.
func (s *Service) Submit(req Request) (string, error) {
	if err := normalize(&req); err != nil {
		s.ctr.rejected.Add(1)
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.ctr.rejected.Add(1)
		return "", &diag.MisuseError{Op: "service.Submit", ThreadID: -1, Kind: ErrClosed}
	}
	j := &job{req: req, status: StatusQueued, done: make(chan struct{})}
	select {
	case s.queue <- j:
		s.seq++
		j.id = fmt.Sprintf("job-%d", s.seq)
		s.jobs[j.id] = j
		s.mu.Unlock()
		s.ctr.accepted.Add(1)
		return j.id, nil
	default:
		s.mu.Unlock()
		s.ctr.rejected.Add(1)
		return "", &diag.MisuseError{
			Op: "service.Submit", ThreadID: -1, Kind: ErrQueueFull,
			Detail: fmt.Sprintf("queue depth %d reached", cap(s.queue)),
		}
	}
}

// Wait blocks until the job completes (or ctx is done) and returns its
// result or structured failure.
func (s *Service) Wait(ctx context.Context, id string) (*Result, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, &diag.MisuseError{Op: "service.Wait", ThreadID: -1, Kind: ErrUnknownJob, Detail: id}
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return j.result, nil
}

// Do submits a job and waits for it — the synchronous convenience the tests
// and the smoke target use.
func (s *Service) Do(ctx context.Context, req Request) (*Result, error) {
	id, err := s.Submit(req)
	if err != nil {
		return nil, err
	}
	return s.Wait(ctx, id)
}

// Lookup returns a job's current view.
func (s *Service) Lookup(id string) (*JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, &diag.MisuseError{Op: "service.Lookup", ThreadID: -1, Kind: ErrUnknownJob, Detail: id}
	}
	v := &JobView{ID: j.id, Status: j.status, Result: j.result}
	if j.err != nil {
		v.Error = j.err.Error()
		v.ErrorKind = Classify(j.err)
	}
	return v, nil
}

// Snapshot returns the service counters.
func (s *Service) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		JobsAccepted:      s.ctr.accepted.Load(),
		JobsCompleted:     s.ctr.completed.Load(),
		JobsFailed:        s.ctr.failed.Load(),
		JobsRejected:      s.ctr.rejected.Load(),
		QueueDepth:        len(s.queue),
		QueueCap:          cap(s.queue),
		Workers:           s.cfg.Workers,
		InstrCacheHits:    s.ctr.instrHits.Load(),
		InstrCacheMisses:  s.ctr.instrMisses.Load(),
		InstrCacheSize:    s.instr.len(),
		ResultCacheHits:   s.ctr.resultHits.Load(),
		ResultCacheMisses: s.ctr.resultMisses.Load(),
		ResultCacheSize:   s.results.len(),
		SelfChecks:        s.ctr.selfChecks.Load(),
		Divergences:       s.ctr.divergences.Load(),
		Stages: map[string]StageStats{
			"parse":      s.ctr.parse.snapshot(),
			"instrument": s.ctr.instrument.snapshot(),
			"simulate":   s.ctr.simulate.snapshot(),
			"overhead":   s.ctr.overhead.snapshot(),
		},
	}
	return snap
}

// Close stops accepting jobs, drains the queue and in-flight work, and
// returns when every worker has exited (or ctx expires; workers then finish
// in the background).
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Classify maps a job error to its report family for monitoring and HTTP
// responses.
func Classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, diag.ErrDeadlock):
		return "deadlock"
	case errors.Is(err, diag.ErrRace):
		return "race"
	case errors.Is(err, diag.ErrDivergence):
		return "divergence"
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrClosed):
		return "closed"
	case errors.Is(err, ErrUnknownJob):
		return "unknown_job"
	case errors.Is(err, diag.ErrBadConfig), errors.Is(err, diag.ErrRaceBackend), errors.Is(err, diag.ErrDetectorMidRun):
		return "misuse"
	default:
		return "error"
	}
}

// --- worker pipeline --------------------------------------------------------

func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job to completion, containing panics so a single bad
// job can never tear down the pool.
func (s *Service) runJob(j *job) {
	s.setStatus(j, StatusRunning)
	res, err := func() (res *Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, fmt.Errorf("service: job %s: contained panic: %v", j.id, r)
			}
		}()
		return s.execute(j)
	}()
	s.mu.Lock()
	if err != nil {
		j.status, j.err = StatusFailed, err
	} else {
		j.status, j.result = StatusDone, res
	}
	s.mu.Unlock()
	if err != nil {
		s.ctr.failed.Add(1)
	} else {
		s.ctr.completed.Add(1)
	}
	close(j.done)
}

func (s *Service) setStatus(j *job, st Status) {
	s.mu.Lock()
	j.status = st
	s.mu.Unlock()
}

// execute runs the cached pipeline: instrumentation cache → result cache →
// simulate on miss (or on a sampled self-check).
func (s *Service) execute(j *job) (*Result, error) {
	req := &j.req
	var lat StageLatency

	ie, instrHit, err := s.instrumented(req, &lat)
	if err != nil {
		return nil, err
	}

	rk := resultKey(ie.text, req)
	if v, ok := s.results.get(rk); ok {
		s.ctr.resultHits.Add(1)
		ent := v.(*resultEntry)
		selfChecked := false
		if s.check.sample() {
			s.ctr.selfChecks.Add(1)
			if err := s.selfCheck(ie, req, ent); err != nil {
				s.ctr.divergences.Add(1)
				return nil, err
			}
			selfChecked = true
		}
		return s.assemble(j, ie, ent, true, instrHit, selfChecked, &lat)
	}
	s.ctr.resultMisses.Add(1)

	start := time.Now()
	ent, err := s.simulate(ie, req)
	lat.SimulateNS = time.Since(start).Nanoseconds()
	s.ctr.simulate.record(lat.SimulateNS)
	if err != nil {
		return nil, err
	}
	s.results.add(rk, ent)
	return s.assemble(j, ie, ent, false, instrHit, false, &lat)
}

// instrumented returns the cached instrumentation for req, building it on a
// miss: parse, verify, instrument (unless baseline), print.
func (s *Service) instrumented(req *Request, lat *StageLatency) (*instrEntry, bool, error) {
	ik := instrKey(req)
	if v, ok := s.instr.get(ik); ok {
		s.ctr.instrHits.Add(1)
		return v.(*instrEntry), true, nil
	}
	s.ctr.instrMisses.Add(1)

	start := time.Now()
	raw, err := ir.Parse(req.Source)
	lat.ParseNS = time.Since(start).Nanoseconds()
	s.ctr.parse.record(lat.ParseNS)
	if err != nil {
		return nil, false, fmt.Errorf("service: parse: %w", err)
	}

	ie := &instrEntry{raw: raw, mod: raw}
	if !req.Baseline {
		start = time.Now()
		mod := raw.Clone()
		opt := harness.PresetByKey(req.Preset)
		opt.Roots = []string{req.Entry}
		pass, err := core.Instrument(mod, s.costs, s.est, opt)
		lat.InstrumentNS = time.Since(start).Nanoseconds()
		s.ctr.instrument.record(lat.InstrumentNS)
		if err != nil {
			return nil, false, fmt.Errorf("service: instrument: %w", err)
		}
		ie.mod, ie.pass = mod, pass
	}
	ie.text = ie.mod.String()
	s.instr.add(ik, ie)
	return ie, false, nil
}

// simulate runs one deterministic simulation from an instrumentation entry,
// always recording the schedule (it is the cache's self-check reference).
func (s *Service) simulate(ie *instrEntry, req *Request) (*resultEntry, error) {
	mod := ie.mod.Clone()
	cfg := interp.Config{
		Module:     mod,
		Costs:      s.costs,
		Estimates:  s.est,
		Threads:    req.Threads,
		Entry:      req.Entry,
		JitterSeed: req.PerturbSeed,
	}
	if req.Race {
		cfg.Race = &interp.RaceConfig{Policy: interp.RaceFailFast}
	}
	mach, threads, err := interp.NewMachine(cfg)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	policy := sim.PolicyFCFS
	if !req.Baseline {
		policy = sim.PolicyDet
	}
	eng := sim.New(sim.Config{
		Policy:      policy,
		NumLocks:    mod.NumLocks,
		NumBarriers: mod.NumBars,
		RecordTrace: true,
		Observer:    mach.Observer(),
	}, interp.Programs(threads))
	stats, err := eng.Run()
	if err != nil {
		// Structured report (DeadlockError, RaceError, …) — the job fails,
		// the server does not.
		return nil, err
	}
	sched := trace.FromSim(stats.Trace)
	ent := &resultEntry{
		res: Result{
			ScheduleHash: fmt.Sprintf("%016x", sched.Hash()),
			ScheduleLen:  sched.Len(),
			Cycles:       stats.Makespan,
			WaitCycles:   stats.WaitCycles,
			Acquisitions: stats.Acquisitions,
			ClockUpdates: mach.ClockUpdates,
		},
		schedule: sched,
	}
	if ie.pass != nil {
		ent.res.Clockable = ie.pass.ClockableNames()
	}
	return ent, nil
}

// selfCheck re-executes a cache hit and compares the fresh schedule against
// the stored one. A mismatch is the weak-determinism contract failing under
// the service — returned as the typed divergence report.
func (s *Service) selfCheck(ie *instrEntry, req *Request, ent *resultEntry) error {
	fresh, err := s.simulate(ie, req)
	if err != nil {
		return fmt.Errorf("service: self-check re-execution: %w", err)
	}
	if d := trace.Compare(ent.schedule, fresh.schedule); d.Diverged {
		return trace.DivergenceError(1, d)
	}
	return nil
}

// assemble builds the job-facing result from a cache entry, honoring the
// requested artifacts.
func (s *Service) assemble(j *job, ie *instrEntry, ent *resultEntry, cached, instrCached, selfChecked bool, lat *StageLatency) (*Result, error) {
	res := ent.res // copy
	res.JobID = j.id
	res.Cached = cached
	res.InstrCached = instrCached
	res.SelfChecked = selfChecked
	if !j.req.Artifacts.Stats {
		res.Clockable = nil
	}
	if j.req.Artifacts.Schedule {
		res.Schedule = ent.schedule
	}
	if j.req.Artifacts.OverheadRow {
		row, err := s.overheadRow(ie, &j.req, ent, lat)
		if err != nil {
			return nil, err
		}
		res.Overhead = row
	}
	res.Stage = *lat
	return &res, nil
}

// overheadRow returns the entry's Table-I-style row, computing and caching
// it on first request (three extra simulations via the harness).
func (s *Service) overheadRow(ie *instrEntry, req *Request, ent *resultEntry, lat *StageLatency) (*harness.OverheadRow, error) {
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.overhead != nil {
		return ent.overhead, nil
	}
	start := time.Now()
	r := harness.NewRunner()
	r.Threads = req.Threads
	b := &splash.Benchmark{Name: "job", Module: ie.raw, Threads: req.Threads, Entry: req.Entry}
	row, err := r.OverheadRowFor(b, harness.PresetByKey(req.Preset))
	lat.OverheadNS = time.Since(start).Nanoseconds()
	s.ctr.overhead.record(lat.OverheadNS)
	if err != nil {
		return nil, fmt.Errorf("service: overhead row: %w", err)
	}
	ent.overhead = row
	return row, nil
}

