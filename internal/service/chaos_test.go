package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/det"
	"repro/internal/splash"
)

// TestChaosCrashRestartProperty is the fault-tolerance acceptance property:
// across many seeded crash/restart schedules — SIGTERM-style kills landing
// mid-queue, injected worker panics forcing retries, fsync batches lost with
// the crash — every job the service ever acknowledged completes with a
// deterministic core byte-identical to an uninterrupted reference run, no job
// is lost, and no job is duplicated in the journal.
//
// This is the Determinator argument made executable: recovery is bare
// re-execution, and weak determinism is what makes re-execution a correct
// recovery strategy.
func TestChaosCrashRestartProperty(t *testing.T) {
	// The job mix: two workloads × three perturbation seeds. Distinct cache
	// keys force real executions; the reference fixes each request's core.
	type variant struct {
		src     string
		perturb int64
	}
	var variants []variant
	for _, name := range []string{"ocean", "radiosity"} {
		b, err := splash.New(name, 4)
		if err != nil {
			t.Fatalf("splash.New(%s): %v", name, err)
		}
		src := b.Module.String()
		for p := int64(1); p <= 3; p++ {
			variants = append(variants, variant{src: src, perturb: p})
		}
	}
	reqOf := func(v variant) Request {
		return Request{Source: v.src, PerturbSeed: v.perturb}
	}

	// Uninterrupted reference run.
	refSvc := New(Config{Workers: 2})
	ref := make([]string, len(variants))
	for i, v := range variants {
		ref[i] = coreOf(mustDo(t, refSvc, reqOf(v)))
	}
	if err := refSvc.Close(context.Background()); err != nil {
		t.Fatalf("reference Close: %v", err)
	}

	schedules := 20
	if testing.Short() {
		schedules = 5 // chaos-smoke: a fast slice of the property
	}
	for seed := int64(1); seed <= int64(schedules); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schedule-%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := det.NewRand(seed, 7)
			path := filepath.Join(t.TempDir(), "jobs.journal")
			cfg := Config{
				Workers:           2,
				JournalPath:       path,
				JournalFsyncEvery: 1 + rng.IntN(8), // vary the batch window a crash can lose
				MaxRetries:        8,
				RetryBase:         time.Millisecond,
				RetryMax:          4 * time.Millisecond,
				RetrySeed:         seed,
				Faults:            &FaultConfig{Seed: seed, WorkerPanicRate: 0.15},
			}

			acked := map[string]int{} // job id → variant index
			kills := 1 + rng.IntN(3)
			for {
				svc, err := Open(cfg)
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				// Submit every variant not yet acknowledged under some id. A
				// variant whose previous submission died unacknowledged is
				// simply resubmitted — the property covers acknowledged jobs.
				have := make([]bool, len(variants))
				for _, vi := range acked {
					have[vi] = true
				}
				interrupted := false
				for i, v := range variants {
					if have[i] {
						continue
					}
					id, err := svc.Submit(reqOf(v))
					if errors.Is(err, ErrClosed) {
						interrupted = true
						break
					}
					if err != nil {
						t.Fatalf("submit variant %d: %v", i, err)
					}
					acked[id] = i
				}
				if kills > 0 && !interrupted {
					// Let the pool run partway into the queue, then crash.
					time.Sleep(time.Duration(rng.IntN(12)) * time.Millisecond)
					kills--
					svc.Kill()
					continue
				}
				// Final incarnation: drain everything acknowledged, ever.
				for id := range acked {
					if _, err := svc.Wait(context.Background(), id); err != nil {
						t.Fatalf("job %s failed after recovery: %v", id, err)
					}
				}
				for id, vi := range acked {
					v, err := svc.Lookup(id)
					if err != nil {
						t.Fatalf("Lookup %s: %v", id, err)
					}
					if v.Status != StatusDone || v.Result == nil {
						t.Fatalf("job %s: status %q after drain", id, v.Status)
					}
					if got := coreOf(v.Result); got != ref[vi] {
						t.Fatalf("job %s (variant %d): core %s, want reference %s", id, vi, got, ref[vi])
					}
				}
				snap := svc.Snapshot()
				if snap.JournalDegraded {
					t.Fatal("journal degraded during crash/restart schedule")
				}
				if snap.JournalJobs != len(acked) {
					t.Fatalf("journal holds %d jobs, want exactly the %d acknowledged (lost or duplicated)",
						snap.JournalJobs, len(acked))
				}
				if err := svc.Close(context.Background()); err != nil {
					t.Fatalf("final Close: %v", err)
				}
				break
			}

			// Post-mortem: one more recovery serves every job from the journal
			// and the background cross-checks find zero divergences.
			svc, err := Open(cfg)
			if err != nil {
				t.Fatalf("post-mortem Open: %v", err)
			}
			for id, vi := range acked {
				v := waitStatus(t, svc, id, StatusDone)
				if got := coreOf(v.Result); got != ref[vi] {
					t.Fatalf("post-mortem %s: core %s, want %s", id, got, ref[vi])
				}
			}
			deadline := time.Now().Add(5 * time.Second)
			for svc.Snapshot().RecoveryChecks < int64(len(acked)) && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
			snap := svc.Snapshot()
			if snap.RecoveryChecks < int64(len(acked)) {
				t.Fatalf("recovery checks = %d, want ≥%d", snap.RecoveryChecks, len(acked))
			}
			if snap.Divergences != 0 {
				t.Fatalf("recovery cross-check found %d divergences", snap.Divergences)
			}
			if err := svc.Close(context.Background()); err != nil {
				t.Fatalf("post-mortem Close: %v", err)
			}
		})
	}
}

// TestChaosKillDuringSubmit: killing the service between acknowledgment and
// completion never loses the job — the submitted record was fsynced before
// the id was returned, so even an immediate kill recovers it.
func TestChaosKillDuringSubmit(t *testing.T) {
	b, err := splash.New("volrend", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()
	path := filepath.Join(t.TempDir(), "jobs.journal")

	refSvc := New(Config{Workers: 1})
	want := coreOf(mustDo(t, refSvc, Request{Source: src}))
	refSvc.Close(context.Background())

	svc, err := Open(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	id, err := svc.Submit(Request{Source: src})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	svc.Kill() // no grace at all

	svc2, err := Open(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer svc2.Close(context.Background())
	v := waitStatus(t, svc2, id, StatusDone)
	if got := coreOf(v.Result); got != want {
		t.Fatalf("recovered core %s, want %s", got, want)
	}
}
