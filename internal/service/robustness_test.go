package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/splash"
)

// TestServiceDeadline: a job with a too-small budget fails with a typed
// *diag.TimeoutError while concurrent jobs without deadlines complete with
// deterministic cores identical to an undisturbed reference — cancellation
// is cooperative and never perturbs other runs.
func TestServiceDeadline(t *testing.T) {
	b, err := splash.New("raytrace", 4) // the slowest workload (~25ms cold)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()

	// Per-seed references: schedules are invariant under PerturbSeed but
	// physical cycle counts are not, so cores compare like for like.
	refSvc := New(Config{Workers: 1})
	ref := coreOf(mustDo(t, refSvc, Request{Source: src}))
	refs := make([]string, 3)
	for i := range refs {
		refs[i] = coreOf(mustDo(t, refSvc, Request{Source: src, PerturbSeed: int64(i + 1)}))
	}
	refSvc.Close(context.Background())

	svc := New(Config{Workers: 4})
	defer svc.Close(context.Background())

	var wg sync.WaitGroup
	cores := make([]string, 3)
	for i := range cores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := svc.Do(context.Background(), Request{Source: src, PerturbSeed: int64(i + 1)})
			if err != nil {
				t.Errorf("concurrent job %d: %v", i, err)
				return
			}
			cores[i] = coreOf(res)
		}(i)
	}
	_, err = svc.Do(context.Background(), Request{Source: src, DeadlineMS: 1})
	wg.Wait()

	if !errors.Is(err, diag.ErrDeadline) {
		t.Fatalf("deadline job err = %v, want ErrDeadline", err)
	}
	var te *diag.TimeoutError
	if !errors.As(err, &te) || te.Deadline != time.Millisecond {
		t.Fatalf("want *TimeoutError with 1ms deadline, got %v", err)
	}
	if Classify(err) != "timeout" {
		t.Fatalf("Classify(timeout) = %q", Classify(err))
	}
	for i, c := range cores {
		if c != refs[i] {
			t.Fatalf("concurrent job %d perturbed by neighbor's deadline: %s != %s", i, c, refs[i])
		}
	}
	snap := svc.Snapshot()
	if snap.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", snap.Timeouts)
	}

	// Deadlines are validated, not silently clamped.
	if _, err := svc.Submit(Request{Source: src, DeadlineMS: -5}); !errors.Is(err, diag.ErrBadConfig) {
		t.Fatalf("negative deadline = %v, want ErrBadConfig", err)
	}
	// A generous deadline changes nothing about the result.
	res := mustDo(t, svc, Request{Source: src, DeadlineMS: 60_000})
	if coreOf(res) != ref {
		t.Fatalf("deadline-bounded run diverged: %s != %s", coreOf(res), ref)
	}
}

// TestServiceRetryExhaustion: with every attempt panicking, the retry budget
// runs out and the job fails with a typed *diag.RetryError wrapping the last
// transient cause.
func TestServiceRetryExhaustion(t *testing.T) {
	b, err := splash.New("ocean", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	svc := New(Config{
		Workers:    1,
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
		RetryMax:   2 * time.Millisecond,
		Faults:     &FaultConfig{Seed: 3, WorkerPanicRate: 1},
	})
	defer svc.Close(context.Background())

	_, err = svc.Do(context.Background(), Request{Source: b.Module.String()})
	if !errors.Is(err, diag.ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	var re *diag.RetryError
	if !errors.As(err, &re) || re.Attempts != 3 {
		t.Fatalf("want *RetryError with 3 attempts, got %v", err)
	}
	if !errors.Is(err, diag.ErrInjected) {
		t.Fatalf("RetryError should wrap the last injected cause: %v", err)
	}
	if Classify(err) != "retries_exhausted" {
		t.Fatalf("Classify = %q", Classify(err))
	}
	if snap := svc.Snapshot(); snap.Retries != 2 {
		t.Fatalf("retries counter = %d, want 2", snap.Retries)
	}
}

// TestServiceRetryRecovers: a fifty-fifty panic rate with a deep retry budget
// always converges, the result is untouched by the retries, and deterministic
// failures are never retried.
func TestServiceRetryRecovers(t *testing.T) {
	b, err := splash.New("ocean", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()

	refSvc := New(Config{Workers: 1})
	ref := coreOf(mustDo(t, refSvc, Request{Source: src}))
	refSvc.Close(context.Background())

	svc := New(Config{
		Workers:    2,
		MaxRetries: 40,
		RetryBase:  time.Millisecond,
		RetryMax:   2 * time.Millisecond,
		Faults:     &FaultConfig{Seed: 5, WorkerPanicRate: 0.5},
	})
	defer svc.Close(context.Background())

	for i := 0; i < 8; i++ {
		res, err := svc.Do(context.Background(), Request{Source: src, PerturbSeed: int64(i)})
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if i == 0 && coreOf(res) != ref {
			t.Fatalf("retried result diverged: %s != %s", coreOf(res), ref)
		}
	}
	if snap := svc.Snapshot(); snap.Retries == 0 {
		t.Fatal("no retries at 50% panic rate")
	}

	// Deterministic failures burn no retry budget (checked on a fault-free
	// service so injected panics cannot contribute retries of their own).
	clean := New(Config{Workers: 1, MaxRetries: 10, RetryBase: time.Millisecond})
	defer clean.Close(context.Background())
	if _, err := clean.Do(context.Background(), Request{Source: deadlockProgram, Threads: 2}); !errors.Is(err, diag.ErrDeadlock) {
		t.Fatalf("deadlock err = %v", err)
	}
	if got := clean.Snapshot().Retries; got != 0 {
		t.Fatalf("deadlock was retried %d times", got)
	}
}

// TestServiceOverloadSheds: submissions past the in-flight-bytes bound are
// shed with the typed ErrOverloaded and a retry hint — load shedding is a
// pre-queue rejection, not a crash or a block.
func TestServiceOverloadSheds(t *testing.T) {
	b, err := splash.New("ocean", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()

	svc := New(Config{Workers: 1, MaxInflightBytes: int64(len(src)) + 10})
	defer svc.Close(context.Background())

	// First job fits; with seeds forcing cold runs the worker stays busy long
	// enough for the second submission to see its bytes still in flight.
	id, err := svc.Submit(Request{Source: src, PerturbSeed: 1})
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err = svc.Submit(Request{Source: src, PerturbSeed: 2})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overload submit = %v, want ErrOverloaded", err)
	}
	var me *diag.MisuseError
	if !errors.As(err, &me) {
		t.Fatalf("overload rejection not a typed *MisuseError: %v", err)
	}
	if RetryAfter(err) != 1 {
		t.Fatalf("RetryAfter(overloaded) = %d, want 1", RetryAfter(err))
	}
	if Classify(err) != "overloaded" {
		t.Fatalf("Classify = %q", Classify(err))
	}

	// The admitted job's bytes release on completion; capacity returns.
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatalf("admitted job: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err = svc.Submit(Request{Source: src, PerturbSeed: 3}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capacity never returned: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if snap := svc.Snapshot(); snap.MaxInflightBytes != int64(len(src))+10 {
		t.Fatalf("snapshot MaxInflightBytes = %d", snap.MaxInflightBytes)
	}
}

// TestBreakerStateMachine drives the divergence circuit breaker through its
// full closed → open → half-open → closed cycle with an injected clock.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, 10*time.Second)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		b.onDivergence()
	}
	if !b.allow() {
		t.Fatal("breaker tripped below threshold")
	}
	b.onSuccess() // decay: 2 → 1
	b.onDivergence()
	if !b.allow() {
		t.Fatal("success decay did not absorb a divergence")
	}
	b.onDivergence()
	b.onDivergence() // 3rd consecutive-equivalent: trip
	if state, trips := b.snapshot(); state != "open" || trips != 1 {
		t.Fatalf("breaker = %s/%d, want open/1", state, trips)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a job")
	}

	now = now.Add(11 * time.Second)
	if !b.allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if state, _ := b.snapshot(); state != "half-open" {
		t.Fatalf("state after probe admit = %s, want half-open", state)
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second job while probing")
	}

	// Probe diverges: re-open immediately.
	b.onDivergence()
	if state, trips := b.snapshot(); state != "open" || trips != 2 {
		t.Fatalf("breaker after failed probe = %s/%d, want open/2", state, trips)
	}

	// Second probe succeeds: close.
	now = now.Add(11 * time.Second)
	if !b.allow() {
		t.Fatal("second probe refused")
	}
	b.onSuccess()
	if state, _ := b.snapshot(); state != "closed" {
		t.Fatalf("state after clean probe = %s, want closed", state)
	}
	if !b.allow() {
		t.Fatal("closed breaker refused work")
	}
}

// TestServiceClientDisconnect: a synchronous (Do / ?wait=1) client that goes
// away cancels its job instead of pinning a worker — the job lands failed
// with a typed timeout, and the pool immediately serves the next client.
func TestServiceClientDisconnect(t *testing.T) {
	b, err := splash.New("raytrace", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()

	svc := New(Config{Workers: 1})
	defer svc.Close(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := svc.Do(ctx, Request{Source: src, PerturbSeed: 1})
		errCh <- err
	}()
	time.Sleep(2 * time.Millisecond) // let the job start
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned Do = %v, want context.Canceled", err)
	}

	// The worker is free: a healthy job completes promptly, and the abandoned
	// job's record shows the typed cancellation.
	res := mustDo(t, svc, Request{Source: src, PerturbSeed: 2})
	if res.ScheduleHash == "" {
		t.Fatal("follow-up job returned no hash")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := svc.Lookup("job-1")
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		if v.Status == StatusFailed {
			if v.ErrorKind != "timeout" {
				t.Fatalf("abandoned job kind = %q, want timeout", v.ErrorKind)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned job stuck at %q", v.Status)
		}
		time.Sleep(time.Millisecond)
	}
	if snap := svc.Snapshot(); snap.Timeouts == 0 {
		t.Fatal("disconnect not counted as a timeout")
	}
}

// TestBackoffDeterministic: retry delays are a pure function of the seed and
// stay within the exponential envelope.
func TestBackoffDeterministic(t *testing.T) {
	a := newBackoff(5*time.Millisecond, 40*time.Millisecond, 42)
	b := newBackoff(5*time.Millisecond, 40*time.Millisecond, 42)
	c := newBackoff(5*time.Millisecond, 40*time.Millisecond, 43)
	var differs bool
	for n := 1; n <= 8; n++ {
		da, db, dc := a.delay(n), b.delay(n), c.delay(n)
		if da != db {
			t.Fatalf("attempt %d: same seed produced %v vs %v", n, da, db)
		}
		if dc != da {
			differs = true
		}
		bound := 5 * time.Millisecond << (n - 1)
		if bound > 40*time.Millisecond {
			bound = 40 * time.Millisecond
		}
		if da <= 0 || da > bound {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", n, da, bound)
		}
	}
	if !differs {
		t.Fatal("distinct seeds produced identical jitter streams")
	}
}

// TestServiceRetainBound: finished-job records are evicted oldest-first past
// Config.RetainJobs, so the job table cannot grow without bound.
func TestServiceRetainBound(t *testing.T) {
	b, err := splash.New("ocean", 4)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	src := b.Module.String()

	svc := New(Config{Workers: 1, RetainJobs: 2})
	defer svc.Close(context.Background())
	var ids []string
	for i := 0; i < 5; i++ {
		res := mustDo(t, svc, Request{Source: src, PerturbSeed: int64(i)})
		ids = append(ids, res.JobID)
	}
	for _, id := range ids[:3] {
		if _, err := svc.Lookup(id); !errors.Is(err, ErrUnknownJob) {
			t.Fatalf("evicted job %s still visible (err=%v)", id, err)
		}
	}
	for _, id := range ids[3:] {
		if _, err := svc.Lookup(id); err != nil {
			t.Fatalf("retained job %s lost: %v", id, err)
		}
	}
}
