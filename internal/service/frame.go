package service

import (
	"bytes"
	"fmt"
	"hash/crc32"
)

// Journal line framing. Every record the journal writes is wrapped in a
// CRC32C + length frame:
//
//	#c1 <crc32c-8-hex> <payload-len-decimal> <payload-json>\n
//
// so recovery can tell a damaged record from an intact one byte-for-byte
// instead of trusting the JSON parser's opinion (a bit flip inside a string
// literal parses fine and silently changes a job). The format is backward
// compatible: a line starting with '{' is a legacy unframed record and is
// accepted as-is, so logs written before framing replay unchanged, and a
// mixed log (legacy prefix, framed tail) replays too. Lines starting with
// anything else are damage by definition — the journal only ever wrote the
// two shapes above.

// castagnoli is the CRC32C polynomial table; Castagnoli is the standard
// storage-integrity checksum (iSCSI, ext4, Btrfs) with hardware support on
// both amd64 and arm64 via Go's crc32 package.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum is the integrity function used for journal frames, ship batches,
// and peer payload verification — one algorithm everywhere.
func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// frameMagic opens every framed line; the "1" is a format version.
const frameMagic = "#c1 "

// frameLine wraps a marshaled record payload in a framed line (with trailing
// newline). The payload must not contain '\n' (encoding/json never emits one).
func frameLine(payload []byte) []byte {
	return []byte(fmt.Sprintf("%s%08x %d %s\n", frameMagic, checksum(payload), len(payload), payload))
}

// unframeLine validates one journal line (without its trailing newline) and
// returns the record payload. Legacy '{'-prefixed lines pass through
// unverified; framed lines must parse exactly and match both their declared
// length and CRC. Any failure is reported as a *diag.CorruptionError-shaped
// reason string for the quarantine sidecar.
func unframeLine(line []byte) ([]byte, error) {
	if len(line) > 0 && line[0] == '{' {
		return line, nil // legacy unframed record
	}
	if !bytes.HasPrefix(line, []byte(frameMagic)) {
		return nil, fmt.Errorf("unrecognized framing (line starts %q)", clip(line, 12))
	}
	rest := line[len(frameMagic):]
	sp := bytes.IndexByte(rest, ' ')
	if sp != 8 {
		return nil, fmt.Errorf("malformed frame header (bad checksum field)")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(rest[:8]), "%08x", &want); err != nil {
		return nil, fmt.Errorf("malformed frame header (checksum not hex)")
	}
	rest = rest[9:]
	sp = bytes.IndexByte(rest, ' ')
	if sp <= 0 {
		return nil, fmt.Errorf("malformed frame header (missing length)")
	}
	var n int
	if _, err := fmt.Sscanf(string(rest[:sp]), "%d", &n); err != nil || n < 0 {
		return nil, fmt.Errorf("malformed frame header (length not decimal)")
	}
	payload := rest[sp+1:]
	if len(payload) != n {
		return nil, fmt.Errorf("length mismatch (declared %d, found %d bytes)", n, len(payload))
	}
	if got := checksum(payload); got != want {
		return nil, fmt.Errorf("checksum mismatch (declared %08x, computed %08x)", want, got)
	}
	return payload, nil
}

// clip bounds a byte slice for error messages.
func clip(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
