package service

import (
	"context"
	"fmt"
	"time"

	"repro/internal/diag"
)

// This file is the service's cluster-facing surface: everything a node
// wrapper (internal/cluster) needs to shard caches, steal work, and ship
// journals, expressed without any transport. The single-process service
// never calls any of it; with the Config hooks nil these methods are dead
// code and the service is bitwise-identical to the standalone engine.

// StolenJob is one queued job lent to a peer for remote execution: the id the
// origin node tracks it under plus the full request, which — by weak
// determinism — is everything a peer needs to produce the identical result.
type StolenJob struct {
	ID  string  `json:"id"`
	Req Request `json:"req"`
}

// StealQueued pops up to max queued jobs and lends them out for remote
// execution. Lent jobs stay visible (StatusRunning) and keep their admission
// weight; if no completion arrives within Config.StealReclaim they are
// reclaimed and re-enqueued locally, so a stealer that dies mid-job delays
// the job, never loses it. Internal recovery cross-check jobs are not
// lendable and are executed locally instead.
func (s *Service) StealQueued(max int) []StolenJob {
	var out []StolenJob
	for len(out) < max {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			break
		}
		var j *job
		select {
		case jj, ok := <-s.queue:
			if !ok {
				s.mu.Unlock()
				return out
			}
			j = jj
		default:
			s.mu.Unlock()
			return out
		}
		if j.verify != nil {
			// Recovery cross-checks compare against the local journal; they
			// are meaningless elsewhere. Run one exactly as a worker would.
			s.wg.Add(1)
			go func(v *job) { defer s.wg.Done(); s.runJob(v) }(j)
			s.mu.Unlock()
			continue
		}
		j.status = StatusRunning
		s.lent[j.id] = j
		id := j.id
		j.reclaim = time.AfterFunc(s.cfg.StealReclaim, func() { s.reclaimLent(id) })
		s.ctr.stolen.Add(1)
		s.mu.Unlock()
		out = append(out, StolenJob{ID: j.id, Req: j.req})
	}
	return out
}

// CompleteStolen installs a stolen job's remotely computed result through the
// normal finish path (journaling, counters, breaker feedback). Completions
// for unknown, reclaimed, or already-finished ids are dropped: determinism
// makes duplicate executions interchangeable, so a late completion is
// harmless, never a double finish.
func (s *Service) CompleteStolen(id string, res *Result) {
	if res == nil {
		s.AbortStolen(id)
		return
	}
	s.mu.Lock()
	j, ok := s.lent[id]
	if !ok || s.closed {
		s.mu.Unlock()
		return
	}
	delete(s.lent, id)
	if j.reclaim != nil {
		j.reclaim.Stop()
	}
	s.mu.Unlock()
	r := *res
	r.JobID = id
	r.Remote = true
	s.finish(j, &r, nil)
}

// AbortStolen hands a lent job back immediately — the stealer could not (or
// would not) execute it. The job re-enqueues locally, and any deterministic
// failure it carries is re-discovered by the origin's own pipeline with its
// full typed report.
func (s *Service) AbortStolen(id string) {
	s.reclaimLent(id)
}

// reclaimLent pulls a lent job back into the local queue (reclaim timer
// expiry or an explicit abort). After shutdown the job is left to journal
// recovery instead: a crash-interrupted lend is exactly an incomplete
// journaled job, and recovery re-executes it.
func (s *Service) reclaimLent(id string) {
	s.mu.Lock()
	j, ok := s.lent[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.lent, id)
	if j.reclaim != nil {
		j.reclaim.Stop()
	}
	if s.closed {
		j.status = StatusFailed
		j.err = &diag.MisuseError{Op: "service.steal", ThreadID: -1, Kind: ErrClosed,
			Detail: "stolen job reclaimed after shutdown; journal recovery re-executes it"}
		s.mu.Unlock()
		s.inflight.Add(-j.bytes)
		close(j.done)
		return
	}
	j.status = StatusQueued
	s.ctr.stealReclaims.Add(1)
	select {
	case s.queue <- j:
		s.mu.Unlock()
	default:
		// The queue refilled while the job was out. Run it on its own
		// goroutine rather than block or drop — reclaim must never lose work.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() { defer s.wg.Done(); s.runJob(j) }()
	}
}

// ExecuteDetached runs one request through the cached pipeline without
// creating a job record — the execution path a work-stealer uses for jobs it
// borrowed from a peer. Panics are contained exactly like worker attempts;
// deadlines come from the request (or Config.DefaultDeadline).
func (s *Service) ExecuteDetached(ctx context.Context, req Request) (res *Result, err error) {
	if err := normalize(&req); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(s.rootCtx, cancel)
	defer stop()
	defer cancel()
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > 0 {
		var cancelDL context.CancelFunc
		ctx, cancelDL = context.WithTimeout(ctx, deadline)
		defer cancelDL()
	}
	j := &job{id: "detached", req: req}
	return s.attempt(ctx, j)
}

// ResultByKey serves a peer's fill request from the local result cache: the
// canonical core with the schedule attached, or a miss. A journal-degraded
// service answers nothing — its cache is off, and it must not export entries
// whose soundness policing just broke.
func (s *Service) ResultByKey(key string) (*Result, bool) {
	if s.degraded.Load() {
		return nil, false
	}
	v, ok := s.results.get(key)
	if !ok {
		return nil, false
	}
	s.ctr.peerServes.Add(1)
	return exportEntry(v.(*resultEntry)), true
}

// OfferResult installs a peer-computed entry into the local result cache —
// the backfill path by which a non-owner that had to recompute locally
// populates the shard owner. The offered schedule must hash to the claimed
// ScheduleHash; an offer that disagrees with an existing entry is a
// determinism divergence: it is rejected, counted, and fed to the circuit
// breaker, and the existing entry stands.
func (s *Service) OfferResult(key string, res *Result) error {
	return s.OfferResultFrom(key, res, nil)
}

// OfferResultFrom is OfferResult with the originating request attached, when
// the offering node knows it. A req-carrying entry is recheckable: the
// anti-entropy repair loop can arbitrate a later divergence on this key by
// deterministic recompute instead of having to evict blindly.
func (s *Service) OfferResultFrom(key string, res *Result, req *Request) error {
	if res == nil || res.Schedule == nil {
		return &diag.MisuseError{Op: "service.OfferResult", ThreadID: -1, Kind: diag.ErrBadConfig,
			Detail: "offer without a schedule"}
	}
	if s.degraded.Load() {
		return nil // cache is off; accepting would be a silent no-op anyway
	}
	if fmt.Sprintf("%016x", res.Schedule.Hash()) != res.ScheduleHash || res.Schedule.Len() != res.ScheduleLen {
		s.ctr.peerFillRejects.Add(1)
		return &diag.MisuseError{Op: "service.OfferResult", ThreadID: -1, Kind: diag.ErrBadConfig,
			Detail: "offered schedule does not hash to its claimed ScheduleHash"}
	}
	if v, ok := s.results.get(key); ok {
		ent := v.(*resultEntry)
		if ent.res.ScheduleHash != res.ScheduleHash {
			err := fmt.Errorf("service: offered result for %s: %w: cached schedule hash %s, offered %s",
				key[:12], diag.ErrDivergence, ent.res.ScheduleHash, res.ScheduleHash)
			s.ctr.divergences.Add(1)
			s.ctr.failures.record("", "divergence", err.Error())
			s.breaker.onDivergence()
			return err
		}
		return nil
	}
	s.results.add(key, entryFromPeer(res, req))
	s.ctr.offers.Add(1)
	return nil
}

// Ready is the readiness gate behind /readyz: nil when the service can do
// real work. Unreadiness is an error naming the first failing gate — a
// closed service, a degraded (unwritable) journal, or an open divergence
// circuit breaker. Liveness is not checked here; a live-but-unready node
// answers health probes while telling load balancers and cluster peers to
// route around it.
func (s *Service) Ready() error {
	s.mu.Lock()
	closed, draining := s.closed, s.draining
	s.mu.Unlock()
	if closed {
		return &diag.MisuseError{Op: "service.Ready", ThreadID: -1, Kind: ErrClosed, Detail: "service is closed"}
	}
	if draining {
		return &diag.MisuseError{Op: "service.Ready", ThreadID: -1, Kind: ErrDraining, Detail: "service is draining"}
	}
	if s.degraded.Load() {
		return fmt.Errorf("journal degraded: durability and result cache are off")
	}
	if state, _ := s.breaker.snapshot(); state == "open" {
		return &diag.MisuseError{Op: "service.Ready", ThreadID: -1, Kind: ErrCircuitOpen,
			Detail: "divergence circuit breaker open"}
	}
	return nil
}

// KeyFor computes the content-addressed result key req resolves to — the
// key the cluster layer shards ownership on. It normalizes and instruments
// (through the instrumentation cache) exactly like execution, so KeyFor and
// a subsequent execution of req agree on the key. Exported for cluster
// tests and smoke tooling that reason about shard placement.
func (s *Service) KeyFor(req Request) (string, error) {
	if err := normalize(&req); err != nil {
		return "", err
	}
	var lat StageLatency
	ie, _, err := s.instrumented(&req, &lat)
	if err != nil {
		return "", err
	}
	return resultKey(ie.text, &req), nil
}

// QueueDepth reports the current queue backlog — the signal health probes
// export and work-stealing peers key on.
func (s *Service) QueueDepth() int {
	return len(s.queue)
}

// Degraded reports whether the journal-degradation latch has tripped.
func (s *Service) Degraded() bool {
	return s.degraded.Load()
}

// JournalSnapshotRecords renders the journal's live job table as
// compaction-style record lines — the journal-shipping resync payload a
// shipper sends a standby that lost (or never had) the stream. Nil when no
// journal is configured.
func (s *Service) JournalSnapshotRecords() [][]byte {
	if s.journal == nil {
		return nil
	}
	return s.journal.snapshotRecords()
}
