// Package estimates implements the paper's "instructions estimate file"
// (§III-B): a text file declaring, for builtin and library functions that the
// compiler cannot instrument (memset, math functions, ...), the approximate
// number of instructions they execute, optionally as a function of one of
// their parameters (e.g. memset's size argument).
//
// File format, one entry per line:
//
//	# comment
//	sqrt    40
//	memset  10 + 1*arg1
//	memcpy  12 + 2*arg2
//
// "argN" refers to the callee's N-th argument (0-based). At instrumentation
// time, constant-argument calls fold to a static clock charge; register
// arguments produce a dynamic clock update (clockadd base + scale*reg).
package estimates

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Estimate is the instruction-count model for one builtin:
// cost(args) = Base + Scale*args[ArgIndex] (Scale 0 means constant cost).
type Estimate struct {
	Name     string
	Base     int64
	Scale    int64
	ArgIndex int // meaningful only when Scale != 0
}

// Dynamic reports whether the estimate depends on an argument value.
func (e Estimate) Dynamic() bool { return e.Scale != 0 }

// Eval computes the estimated instruction count for concrete arguments.
// Missing arguments contribute zero; negative contributions clamp to zero.
func (e Estimate) Eval(args []int64) int64 {
	c := e.Base
	if e.Scale != 0 && e.ArgIndex >= 0 && e.ArgIndex < len(args) {
		c += e.Scale * args[e.ArgIndex]
	}
	if c < 0 {
		return 0
	}
	return c
}

// Table maps builtin names to estimates.
type Table struct {
	byName map[string]Estimate
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{byName: map[string]Estimate{}} }

// Add inserts or replaces an estimate.
func (t *Table) Add(e Estimate) { t.byName[e.Name] = e }

// Lookup returns the estimate for name.
func (t *Table) Lookup(name string) (Estimate, bool) {
	e, ok := t.byName[name]
	return e, ok
}

// Has reports whether name is a known builtin.
func (t *Table) Has(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// Names returns all builtin names, sorted.
func (t *Table) Names() []string {
	out := make([]string, 0, len(t.byName))
	for n := range t.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.byName) }

// Parse reads the estimate file format. Unknown or malformed lines produce
// errors identifying the line number.
func Parse(src string) (*Table, error) {
	t := NewTable()
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("estimates: line %d: %w", i+1, err)
		}
		t.Add(e)
	}
	return t, nil
}

func parseLine(line string) (Estimate, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Estimate{}, fmt.Errorf("want '<name> <base> [+ <scale>*argN]', got %q", line)
	}
	e := Estimate{Name: fields[0], ArgIndex: -1}
	base, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Estimate{}, fmt.Errorf("bad base cost %q: %v", fields[1], err)
	}
	e.Base = base
	rest := strings.Join(fields[2:], "")
	if rest == "" {
		return e, nil
	}
	if !strings.HasPrefix(rest, "+") {
		return Estimate{}, fmt.Errorf("unexpected trailing %q", rest)
	}
	term := strings.TrimPrefix(rest, "+")
	star := strings.Index(term, "*")
	if star < 0 {
		return Estimate{}, fmt.Errorf("dynamic term wants '<scale>*argN', got %q", term)
	}
	scale, err := strconv.ParseInt(term[:star], 10, 64)
	if err != nil {
		return Estimate{}, fmt.Errorf("bad scale %q: %v", term[:star], err)
	}
	argTok := term[star+1:]
	if !strings.HasPrefix(argTok, "arg") {
		return Estimate{}, fmt.Errorf("dynamic term wants argN, got %q", argTok)
	}
	idx, err := strconv.Atoi(strings.TrimPrefix(argTok, "arg"))
	if err != nil || idx < 0 {
		return Estimate{}, fmt.Errorf("bad arg index %q", argTok)
	}
	e.Scale = scale
	e.ArgIndex = idx
	return e, nil
}

// Format renders the table back to the file format (sorted by name).
func (t *Table) Format() string {
	var sb strings.Builder
	for _, n := range t.Names() {
		e := t.byName[n]
		if e.Dynamic() {
			fmt.Fprintf(&sb, "%s %d + %d*arg%d\n", e.Name, e.Base, e.Scale, e.ArgIndex)
		} else {
			fmt.Fprintf(&sb, "%s %d\n", e.Name, e.Base)
		}
	}
	return sb.String()
}

// DefaultTable covers the builtins the paper mentions (§III-B): memset and
// friends with size-dependent cost plus constant-cost math routines.
func DefaultTable() *Table {
	t, err := Parse(defaultSrc)
	if err != nil {
		panic("estimates: bad default table: " + err.Error())
	}
	return t
}

const defaultSrc = `
# Size-dependent memory builtins (arg1 = byte/word count).
memset  12 + 1*arg1
memcpy  14 + 2*arg2
memmove 16 + 2*arg2
bzero   10 + 1*arg1

# Constant-cost math builtins (approximate x86 latencies in instructions).
sqrt  22
sin   46
cos   46
tan   60
exp   52
log   52
pow   70
fabs  3
floor 6
ceil  6

# Misc libc-ish helpers.
abs    3
min    3
max    3
rand_r 18
`
