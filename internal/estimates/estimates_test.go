package estimates

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	tbl, err := Parse(`
# comment
sqrt 40
memset 10 + 1*arg1
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("len = %d", tbl.Len())
	}
	e, ok := tbl.Lookup("sqrt")
	if !ok || e.Base != 40 || e.Dynamic() {
		t.Fatalf("sqrt = %+v", e)
	}
	m, _ := tbl.Lookup("memset")
	if !m.Dynamic() || m.Scale != 1 || m.ArgIndex != 1 {
		t.Fatalf("memset = %+v", m)
	}
}

func TestEval(t *testing.T) {
	e := Estimate{Base: 10, Scale: 2, ArgIndex: 1}
	if got := e.Eval([]int64{0, 32}); got != 74 {
		t.Fatalf("Eval = %d, want 74", got)
	}
	// Missing arg index -> base only.
	if got := e.Eval([]int64{5}); got != 10 {
		t.Fatalf("Eval short args = %d", got)
	}
	// Negative results clamp to zero.
	neg := Estimate{Base: 5, Scale: -10, ArgIndex: 0}
	if got := neg.Eval([]int64{100}); got != 0 {
		t.Fatalf("Eval clamp = %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"memset",
		"memset abc",
		"memset 10 junk",
		"memset 10 + 1*xyz",
		"memset 10 + q*arg1",
		"memset 10 + 1*arg-2",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("Parse(%q) error should cite line 1: %v", src, err)
		}
	}
}

func TestDefaultTable(t *testing.T) {
	tbl := DefaultTable()
	for _, name := range []string{"memset", "memcpy", "sqrt", "sin"} {
		if !tbl.Has(name) {
			t.Fatalf("default table missing %s", name)
		}
	}
	ms, _ := tbl.Lookup("memset")
	if !ms.Dynamic() {
		t.Fatalf("memset should be size-dependent")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	tbl := DefaultTable()
	re, err := Parse(tbl.Format())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if re.Len() != tbl.Len() {
		t.Fatalf("round trip lost entries: %d vs %d", re.Len(), tbl.Len())
	}
	for _, n := range tbl.Names() {
		a, _ := tbl.Lookup(n)
		b, ok := re.Lookup(n)
		if !ok || a != b {
			t.Fatalf("entry %s mismatch: %+v vs %+v", n, a, b)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Estimate{Name: "zeta", Base: 1})
	tbl.Add(Estimate{Name: "alpha", Base: 1})
	names := tbl.Names()
	if names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

// Property: Eval is monotone in the dynamic argument for positive scales.
func TestEvalMonotoneProperty(t *testing.T) {
	f := func(base uint16, scale uint8, a, b uint16) bool {
		e := Estimate{Base: int64(base), Scale: int64(scale), ArgIndex: 0}
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return e.Eval([]int64{lo}) <= e.Eval([]int64{hi})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
