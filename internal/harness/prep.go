package harness

// Run-preparation caching. A table sweep executes hundreds of simulations
// over a handful of distinct inputs: the same benchmark module is rebuilt
// by splash.New for every table, re-cloned and re-instrumented for every
// (preset × mode) cell, and re-decoded by every machine. All of that work
// is deterministic in its inputs, so the Runner memoizes it:
//
//   - benchFor caches splash.New per (name, threads);
//   - instrumented caches the instrumented clone per (module, options,
//     entry) — the ClocksOnly and Det runs of one preset share one module;
//   - runs that do not instrument execute b.Module directly (no clone): the
//     interpreter copies global initializers into per-machine buffers and
//     never writes the module, so concurrent sweep workers can share it.
//
// Sharing modules across runs is also what makes the interp.DCache
// effective: decoded streams are keyed by *ir.Func, so cache hits require
// pointer-stable functions. None of this changes any result — every cached
// artifact is bit-identical to the one a cold run would rebuild, and the
// equivalence property tests cover the cached paths.

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/splash"
)

type benchKey struct {
	name    string
	threads int
}

// instKey identifies one instrumentation result. Options holds a slice
// (Roots), so the key carries its printed form with Roots cleared — still
// exhaustive if fields are added — and the entry field pins the single
// root Run always uses.
type instKey struct {
	mod   *ir.Module
	opt   string
	entry string
}

type instrumented struct {
	mod       *ir.Module
	clockable int
}

// prepCache is shared by pointer across Runner copies (BenchSuite clones
// the Runner to flip Reference), so the reference and optimized sweeps
// prepare identical inputs.
type prepCache struct {
	mu       sync.Mutex
	bench    map[benchKey]*splash.Benchmark
	inst     map[instKey]*instrumented
	verified map[*ir.Module]bool // modules that passed ir.Verify with r.Est
}

func newPrepCache() *prepCache {
	return &prepCache{
		bench:    map[benchKey]*splash.Benchmark{},
		inst:     map[instKey]*instrumented{},
		verified: map[*ir.Module]bool{},
	}
}

// verified reports whether m already passed Verify against the runner's
// estimates table, verifying and memoizing on first sight. Cached modules
// are immutable from the moment they are shared across runs, so the memo
// cannot go stale. A false return (no cache, or a verify failure) just
// means the machine will verify for itself.
func (r *Runner) verified(m *ir.Module) bool {
	c := r.cache
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok, seen := c.verified[m]; seen {
		return ok
	}
	ok := m.Verify(r.Est.Has) == nil
	if len(c.verified) >= 1024 {
		c.verified = map[*ir.Module]bool{}
	}
	c.verified[m] = ok
	return ok
}

// benchFor returns the (cached) splash benchmark for name at the runner's
// thread count. Runners built as struct literals have no cache and fall
// back to constructing a fresh benchmark.
func (r *Runner) benchFor(name string) (*splash.Benchmark, error) {
	c := r.cache
	if c == nil {
		return splash.New(name, r.Threads)
	}
	key := benchKey{name: name, threads: r.Threads}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b := c.bench[key]; b != nil {
		return b, nil
	}
	b, err := splash.New(name, r.Threads)
	if err != nil {
		return nil, err
	}
	c.bench[key] = b
	return b, nil
}

// instrument returns mod's instrumented clone under opt, cached per
// (module, options, entry). The lock is held across core.Instrument so
// concurrent workers requesting the same cell share one result.
func (r *Runner) instrument(mod *ir.Module, opt core.Options) (*ir.Module, int, error) {
	build := func() (*ir.Module, int, error) {
		m := mod.Clone()
		res, err := core.Instrument(m, r.Costs, r.Est, opt)
		if err != nil {
			return nil, 0, err
		}
		return m, len(res.Clockable), nil
	}
	c := r.cache
	if c == nil || len(opt.Roots) > 1 {
		return build()
	}
	key := instKey{mod: mod}
	if len(opt.Roots) == 1 {
		key.entry = opt.Roots[0]
	}
	flags := opt
	flags.Roots = nil
	key.opt = fmt.Sprintf("%+v", flags)
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.inst[key]; p != nil {
		return p.mod, p.clockable, nil
	}
	m, clockable, err := build()
	if err != nil {
		return nil, 0, err
	}
	// Modules live as long as the Runner once cached; bound the map so a
	// long-lived Runner fed a stream of distinct modules cannot grow it
	// without limit.
	if len(c.inst) >= 1024 {
		c.inst = map[instKey]*instrumented{}
	}
	c.inst[key] = &instrumented{mod: m, clockable: clockable}
	return m, clockable, nil
}
