// Package harness runs the paper's experiments: every benchmark × every
// optimization preset × every execution mode, producing the rows of Table I,
// Table II, and the series behind Figures 14 and 15.
package harness

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/estimates"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/splash"
)

// CPUHz converts simulated cycles to seconds; the paper's machine is a
// 2.66 GHz quad-core (§V).
const CPUHz = 2.66e9

// Mode is an execution configuration.
type Mode uint8

// Execution modes.
const (
	// ModeBaseline: uninstrumented module, plain FCFS locks — the paper's
	// "Original Exec Time" row.
	ModeBaseline Mode = iota
	// ModeClocksOnly: instrumented module, FCFS locks — "After Inserting
	// Clocks" (upper half of Table I).
	ModeClocksOnly
	// ModeDet: instrumented module, deterministic locks — "After Inserting
	// Clocks and Performing Deterministic Execution" (lower half).
	ModeDet
	// ModeKendo: uninstrumented module, deterministic locks driven by the
	// simulated retired-store counter — the Kendo baseline of Table II.
	ModeKendo
)

// RunResult captures one simulation.
type RunResult struct {
	Mode         Mode
	Makespan     int64
	WaitCycles   int64
	Acquisitions int64
	ClockUpdates int64
	Interrupts   int64
	Instrs       int64
	Steps        int64 // engine events (scheduler iterations)
	Clockable    int
	Trace        []sim.Acquisition
}

// Seconds converts the makespan to seconds at CPUHz.
func (r *RunResult) Seconds() float64 { return float64(r.Makespan) / CPUHz }

// LocksPerSec is the whole-run lock rate.
func (r *RunResult) LocksPerSec() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.Acquisitions) / r.Seconds()
}

// OverheadPct returns the percentage slowdown of r versus base.
func OverheadPct(r, base *RunResult) float64 {
	if base.Makespan == 0 {
		return 0
	}
	return (float64(r.Makespan)/float64(base.Makespan) - 1) * 100
}

// Runner caches per-benchmark baselines and shared tables.
type Runner struct {
	Threads int
	Costs   *ir.CostModel
	Est     *estimates.Table
	// KendoChunks is the chunk-size sweep used to "manually tune" the Kendo
	// baseline the way the paper's authors did (§V-C).
	KendoChunks []int64
	// RecordTraces enables acquisition traces on every run.
	RecordTraces bool
	// RaceCheck enables the fail-fast data-race detector on deterministic
	// runs (ModeDet and ModeKendo). Baseline modes are unaffected: their
	// FCFS schedules make race reports unreproducible, so the detector
	// stays off there.
	RaceCheck bool
	// Workers caps concurrent simulations for the table sweeps. Every
	// (benchmark × optset × mode) cell is an independent deterministic
	// simulation, so the pool changes wall-clock time only: reports are
	// byte-identical to a sequential run. 0 or 1 runs sequentially.
	Workers int
	// Reference selects the pre-optimization implementations of all three
	// hot loops (tree-walking interpreter, scanning scheduler, always-join
	// race detector). Results must be byte-identical either way — the
	// equivalence property tests run every workload through both.
	Reference bool
	// JitterSeed, when non-zero, perturbs physical timing deterministically
	// (interp.Config.JitterSeed): the seed-sweep property tests use it to
	// vary executions without touching logical behavior.
	JitterSeed int64
	// Cancel, when non-nil, is polled by the simulation engine between
	// scheduling steps (sim.Config.Cancel): a non-nil return cooperatively
	// aborts the run with sim.ErrCanceled. Wiring ctx.Err here bounds a
	// sweep's wall-clock time without perturbing uncancelled runs — the hook
	// never mutates engine state.
	Cancel func() error

	// dcache shares decoded instruction streams across the sweep's machines
	// and cache memoizes benchmark construction and instrumentation
	// (prep.go). Both are pointers, so Runner copies (BenchSuite flips
	// Reference on a copy) share them; zero-value Runners run uncached.
	dcache *interp.DCache
	cache  *prepCache
}

// NewRunner returns a runner with the paper's defaults (4 threads).
func NewRunner() *Runner {
	return &Runner{
		Threads:     4,
		Costs:       ir.DefaultCostModel(),
		Est:         estimates.DefaultTable(),
		KendoChunks: []int64{100, 250, 1000, 4000, 16000, 64000},
		dcache:      interp.NewDCache(),
		cache:       newPrepCache(),
	}
}

// Run executes one benchmark under one mode/preset configuration.
// The opt parameter is ignored for ModeBaseline and ModeKendo.
func (r *Runner) Run(b *splash.Benchmark, opt core.Options, mode Mode, kendoChunk int64) (*RunResult, error) {
	res := &RunResult{Mode: mode}

	// Uninstrumented modes execute the benchmark module directly — the
	// interpreter never writes a module — while instrumenting modes run a
	// cached instrumented clone (prep.go).
	m := b.Module
	if mode == ModeClocksOnly || mode == ModeDet {
		opt.Roots = []string{b.Entry}
		im, clockable, err := r.instrument(b.Module, opt)
		if err != nil {
			return nil, fmt.Errorf("harness: instrument %s: %w", b.Name, err)
		}
		m = im
		res.Clockable = clockable
	}

	cfg := interp.Config{
		Module:     m,
		Costs:      r.Costs,
		Estimates:  r.Est,
		Threads:    b.Threads,
		Entry:      b.Entry,
		Reference:  r.Reference,
		JitterSeed: r.JitterSeed,
		DCache:     r.dcache,
		SkipVerify: r.verified(m),
	}
	if mode == ModeKendo {
		cfg.Mode = interp.ModeKendo
		cfg.KendoChunkSize = kendoChunk
	}
	deterministic := mode == ModeDet || mode == ModeKendo
	if r.RaceCheck && deterministic {
		cfg.Race = &interp.RaceConfig{Policy: interp.RaceFailFast, Reference: r.Reference}
	}
	mach, threads, err := interp.NewMachine(cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", b.Name, err)
	}

	policy := sim.PolicyFCFS
	if deterministic {
		policy = sim.PolicyDet
	}
	eng := sim.New(sim.Config{
		Policy:      policy,
		NumLocks:    m.NumLocks,
		NumBarriers: m.NumBars,
		RecordTrace: r.RecordTraces,
		Observer:    mach.Observer(),
		Reference:   r.Reference,
		Cancel:      r.Cancel,
	}, interp.Programs(threads))
	stats, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", b.Name, err)
	}
	res.Makespan = stats.Makespan
	res.WaitCycles = stats.WaitCycles
	res.Acquisitions = stats.Acquisitions
	res.ClockUpdates = mach.ClockUpdates
	res.Interrupts = mach.Interrupts
	res.Instrs = mach.InstrsExecuted
	res.Steps = stats.Steps
	res.Trace = stats.Trace
	return res, nil
}

// runAll executes fn(0) … fn(n-1) on up to r.Workers goroutines. Results are
// communicated through the caller's index-addressed slices, so assembly
// order — and therefore every rendered table — is independent of scheduling.
// When several cells fail, the error of the lowest index wins, matching what
// a sequential sweep would have reported first.
func (r *Runner) runAll(n int, fn func(i int) error) error {
	workers := r.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// OverheadRow is a Table-I-style summary for one program under one preset:
// the baseline makespan, the clock-insertion overhead, and the full
// deterministic-execution overhead. The service layer computes one per job
// when the client requests the overhead_row artifact.
type OverheadRow struct {
	BaselineCycles int64   `json:"baseline_cycles"`
	BaselineMS     float64 `json:"baseline_ms"`
	LocksPerSec    float64 `json:"locks_per_sec"`
	Clockable      int     `json:"clockable"`
	ClocksPct      float64 `json:"clocks_overhead_pct"`
	DetPct         float64 `json:"det_overhead_pct"`
}

// OverheadRowFor runs the three simulations behind one Table I cell pair
// (baseline, clocks-only, clocks+det) for an arbitrary benchmark/module.
func (r *Runner) OverheadRowFor(b *splash.Benchmark, opt core.Options) (*OverheadRow, error) {
	base, err := r.Run(b, core.OptNone, ModeBaseline, 0)
	if err != nil {
		return nil, err
	}
	co, err := r.Run(b, opt, ModeClocksOnly, 0)
	if err != nil {
		return nil, err
	}
	de, err := r.Run(b, opt, ModeDet, 0)
	if err != nil {
		return nil, err
	}
	return &OverheadRow{
		BaselineCycles: base.Makespan,
		BaselineMS:     base.Seconds() * 1000,
		LocksPerSec:    base.LocksPerSec(),
		Clockable:      co.Clockable,
		ClocksPct:      OverheadPct(co, base),
		DetPct:         OverheadPct(de, base),
	}, nil
}

// PresetKeys lists Table I preset row keys in order.
func PresetKeys() []string { return []string{"none", "O1", "O2", "O3", "O4", "all"} }

// PresetByKey maps a row key to its option set.
func PresetByKey(key string) core.Options {
	switch key {
	case "none":
		return core.OptNone
	case "O1":
		return core.OptO1
	case "O2":
		return core.OptO2
	case "O3":
		return core.OptO3
	case "O4":
		return core.OptO4
	case "all":
		return core.OptAll
	}
	panic("harness: unknown preset key " + key)
}

// PresetLabel returns the Table I row label for a key.
func PresetLabel(key string) string { return core.PresetName(PresetByKey(key)) }
