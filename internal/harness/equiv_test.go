package harness

// The PR-4 keystone: the optimized hot loops (decoded-dispatch interpreter,
// heap scheduler, epoch fast-path race detector) must be *byte-identical*
// in behavior to the reference implementations they replace — same
// schedules, same cycle tables, same race reports — while being at least
// twice as fast on the full evaluation sweep. These tests are the proof.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/sim"
	"repro/internal/splash"
)

// equivSeeds is the seed sweep width of the property test.
const equivSeeds = 20

// equivConfig derives one (optset, mode, race, chunk) cell from a seed so
// the sweep covers every preset × every lock policy/mode combination across
// the 20 seeds.
func equivConfig(seed int) (optKey string, mode Mode, race bool, chunk int64) {
	keys := PresetKeys()
	optKey = keys[seed%len(keys)]
	switch seed % 3 {
	case 0:
		mode = ModeClocksOnly
	case 1:
		mode = ModeDet
	default:
		mode = ModeKendo
	}
	// The detector only arms on deterministic runs; alternating exercises
	// both the detector-on and detector-off interpreter paths.
	race = seed%2 == 0
	chunk = []int64{250, 1000, 4000}[seed%3]
	return
}

// TestEquivalenceProperty runs every splash workload × 20 seeds, each seed
// selecting an optimization preset, an execution mode (FCFS clocks-only,
// DetLock, Kendo), a race-check setting, and a physical-timing jitter seed —
// then executes the cell on the reference and optimized paths and requires
// the complete RunResult (makespan, waits, acquisitions, clock updates,
// interrupts, instruction counts, engine steps, and the full acquisition
// trace) to match exactly.
func TestEquivalenceProperty(t *testing.T) {
	seeds := equivSeeds
	if testing.Short() {
		seeds = 5
	}
	for _, name := range splash.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := 1; seed <= seeds; seed++ {
				optKey, mode, race, chunk := equivConfig(seed)
				runPair := func(ref bool) (*RunResult, error) {
					r := NewRunner()
					r.RecordTraces = true
					r.RaceCheck = race
					r.Reference = ref
					r.JitterSeed = int64(seed)
					b, err := splash.New(name, r.Threads)
					if err != nil {
						return nil, err
					}
					return r.Run(b, PresetByKey(optKey), mode, chunk)
				}
				want, err := runPair(true)
				if err != nil {
					t.Fatalf("seed %d (%s, mode %d): reference: %v", seed, optKey, mode, err)
				}
				got, err := runPair(false)
				if err != nil {
					t.Fatalf("seed %d (%s, mode %d): optimized: %v", seed, optKey, mode, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d (%s, mode %d, race %v): optimized diverges from reference\nref: %+v\nopt: %+v",
						seed, optKey, mode, race, stripTrace(want), stripTrace(got))
					diffTraces(t, want.Trace, got.Trace)
				}
			}
		})
	}
}

// stripTrace summarizes a result for failure messages (traces are huge).
func stripTrace(r *RunResult) RunResult {
	c := *r
	c.Trace = c.Trace[:min(len(c.Trace), 0)]
	return c
}

func diffTraces(t *testing.T, want, got []sim.Acquisition) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("trace length: ref %d opt %d", len(want), len(got))
	}
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i] != got[i] {
			t.Errorf("trace[%d]: ref %+v opt %+v", i, want[i], got[i])
			return
		}
	}
}

// TestEquivalenceTableBytes renders the full Table I report on both paths
// and compares the strings: the rendered overhead table — the repo's
// primary artifact — must not change by a byte.
func TestEquivalenceTableBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table I sweep ×2 in -short mode")
	}
	render := func(ref bool) string {
		r := NewRunner()
		r.Reference = ref
		rep, err := r.TableI()
		if err != nil {
			t.Fatalf("reference=%v: %v", ref, err)
		}
		return rep.Render()
	}
	want := render(true)
	got := render(false)
	if got != want {
		t.Errorf("Table I render differs between reference and optimized paths\nref:\n%s\nopt:\n%s", want, got)
	}
}

// TestEquivalenceRaceReports injects the deterministic race probe into every
// workload, collects reports on both paths under the report-all policy, and
// compares the formatted report bytes: the epoch fast path must not change
// any race report.
func TestEquivalenceRaceReports(t *testing.T) {
	for _, name := range splash.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			reports := func(ref bool) []string {
				b, err := splash.New(name, 4)
				if err != nil {
					t.Fatal(err)
				}
				m := b.Module.Clone()
				if _, err := splash.InjectRaceProbe(m, b.Entry); err != nil {
					t.Fatal(err)
				}
				mach, threads, err := interp.NewMachine(interp.Config{
					Module:    m,
					Threads:   b.Threads,
					Entry:     b.Entry,
					Race:      &interp.RaceConfig{Policy: interp.RaceReport, Reference: ref},
					Reference: ref,
				})
				if err != nil {
					t.Fatal(err)
				}
				eng := sim.New(sim.Config{
					Policy:      sim.PolicyDet,
					NumLocks:    m.NumLocks,
					NumBarriers: m.NumBars,
					Observer:    mach.Observer(),
					Reference:   ref,
				}, interp.Programs(threads))
				if _, err := eng.Run(); err != nil {
					t.Fatal(err)
				}
				var out []string
				for _, re := range mach.Races() {
					out = append(out, re.Error())
				}
				if mach.RacesSuppressed() > 0 {
					out = append(out, fmt.Sprintf("suppressed: %d", mach.RacesSuppressed()))
				}
				return out
			}
			want := reports(true)
			got := reports(false)
			if len(want) == 0 {
				t.Fatalf("race probe produced no reports on the reference path")
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("race reports differ\nref: %q\nopt: %q", want, got)
			}
		})
	}
}

// TestSweepSpeedup is the committed performance bar: the optimized paths
// must run the full Table I + Table II sweep at least twice as fast as the
// reference implementation (BENCH_PR4.json records the shipped numbers).
func TestSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock speedup measurement in -short mode")
	}
	// Best-of-2 per side on one runner each, matching BenchSuite's
	// methodology: the second rep runs with warm preparation caches on both
	// sides, so the measurement reflects the steady-state hot loops rather
	// than one-time cache fills and allocator noise.
	sweep := func(ref bool) (float64, error) {
		r := NewRunner()
		r.Reference = ref
		best := 0.0
		for i := 0; i < 2; i++ {
			s, err := r.SweepSeconds()
			if err != nil {
				return 0, err
			}
			if i == 0 || s < best {
				best = s
			}
		}
		return best, nil
	}
	refSec, err := sweep(true)
	if err != nil {
		t.Fatal(err)
	}
	optSec, err := sweep(false)
	if err != nil {
		t.Fatal(err)
	}
	speedup := refSec / optSec
	t.Logf("sweep: reference %.2fs, optimized %.2fs, speedup %.2fx", refSec, optSec, speedup)
	if speedup < 2 {
		t.Errorf("sweep speedup %.2fx < 2x (reference %.2fs, optimized %.2fs)", speedup, refSec, optSec)
	}
}
