package harness

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/splash"
)

// fastRunner uses 2 threads to keep the sweep cheap in unit tests.
func fastRunner() *Runner {
	r := NewRunner()
	r.Threads = 2
	r.KendoChunks = []int64{500, 8000}
	return r
}

func TestPresetPlumbing(t *testing.T) {
	for _, key := range PresetKeys() {
		opt := PresetByKey(key)
		label := PresetLabel(key)
		if label == "" {
			t.Fatalf("no label for %s", key)
		}
		_ = opt
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("unknown preset should panic")
		}
	}()
	PresetByKey("bogus")
}

func TestRunModes(t *testing.T) {
	r := fastRunner()
	b, err := splash.New("water-nsq", r.Threads)
	if err != nil {
		t.Fatal(err)
	}
	base, err := r.Run(b, PresetByKey("none"), ModeBaseline, 0)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if base.ClockUpdates != 0 {
		t.Fatalf("baseline should have no clock updates, got %d", base.ClockUpdates)
	}
	co, err := r.Run(b, PresetByKey("none"), ModeClocksOnly, 0)
	if err != nil {
		t.Fatalf("clocks: %v", err)
	}
	if co.ClockUpdates == 0 {
		t.Fatalf("instrumented run should count updates")
	}
	if co.Makespan <= base.Makespan {
		t.Fatalf("clock insertion should cost cycles: %d vs %d", co.Makespan, base.Makespan)
	}
	de, err := r.Run(b, PresetByKey("none"), ModeDet, 0)
	if err != nil {
		t.Fatalf("det: %v", err)
	}
	if de.Makespan < co.Makespan {
		t.Fatalf("det should not be faster than clocks-only: %d vs %d", de.Makespan, co.Makespan)
	}
	ke, err := r.Run(b, PresetByKey("none"), ModeKendo, 1000)
	if err != nil {
		t.Fatalf("kendo: %v", err)
	}
	if ke.ClockUpdates == 0 && ke.Interrupts == 0 {
		t.Fatalf("kendo run should take interrupts")
	}
}

// TestRunnerCancel: a Cancel hook aborts a run mid-simulation with
// sim.ErrCanceled, and — because the hook never mutates engine state — a
// hook that never fires leaves the result byte-identical to no hook at all.
func TestRunnerCancel(t *testing.T) {
	r := fastRunner()
	b, err := splash.New("water-nsq", r.Threads)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := r.Run(b, PresetByKey("all"), ModeDet, 0)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	stop := errors.New("sweep budget exhausted")
	r.Cancel = func() error { return stop }
	if _, err := r.Run(b, PresetByKey("all"), ModeDet, 0); !errors.Is(err, sim.ErrCanceled) || !errors.Is(err, stop) {
		t.Fatalf("canceled run err = %v, want sim.ErrCanceled wrapping the hook's error", err)
	}

	r.Cancel = func() error { return nil }
	again, err := r.Run(b, PresetByKey("all"), ModeDet, 0)
	if err != nil {
		t.Fatalf("armed-but-silent hook: %v", err)
	}
	if ref.Makespan != again.Makespan || ref.WaitCycles != again.WaitCycles ||
		ref.Acquisitions != again.Acquisitions || ref.ClockUpdates != again.ClockUpdates {
		t.Fatalf("cancel hook perturbed an uncancelled run: %+v vs %+v", ref, again)
	}
}

func TestOverheadPct(t *testing.T) {
	base := &RunResult{Makespan: 1000}
	r := &RunResult{Makespan: 1200}
	if got := OverheadPct(r, base); got < 19.999 || got > 20.001 {
		t.Fatalf("OverheadPct = %v, want 20", got)
	}
	if OverheadPct(r, &RunResult{}) != 0 {
		t.Fatalf("zero baseline should give 0")
	}
}

func TestRunResultRates(t *testing.T) {
	r := &RunResult{Makespan: 2_660_000, Acquisitions: 1000}
	// 2.66e6 cycles = 1ms at 2.66 GHz -> 1e6 locks/sec.
	if got := r.LocksPerSec(); got < 0.99e6 || got > 1.01e6 {
		t.Fatalf("LocksPerSec = %v", got)
	}
	if (&RunResult{}).LocksPerSec() != 0 {
		t.Fatalf("zero makespan rate should be 0")
	}
}

func TestTableIColumnInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep in -short mode")
	}
	r := fastRunner()
	col, err := r.TableIFor("water-nsq")
	if err != nil {
		t.Fatalf("TableIFor: %v", err)
	}
	// All optimizations must beat no optimization on clock overhead.
	if col.ClocksPct["all"] >= col.ClocksPct["none"] {
		t.Fatalf("all-opts %v should beat no-opt %v", col.ClocksPct["all"], col.ClocksPct["none"])
	}
	// Water-nsq's shape: O2 and O4 help, O1 and O3 do not (paper Table I).
	if col.ClocksPct["O2"] >= col.ClocksPct["none"]-5 {
		t.Errorf("O2 should cut water-nsq substantially: %v vs %v",
			col.ClocksPct["O2"], col.ClocksPct["none"])
	}
	if col.ClocksPct["O1"] < col.ClocksPct["none"]-5 {
		t.Errorf("O1 should not help water-nsq: %v vs %v",
			col.ClocksPct["O1"], col.ClocksPct["none"])
	}
	// Deterministic execution costs at least as much as clocks alone.
	for _, key := range PresetKeys() {
		if col.DetPct[key] < col.ClocksPct[key]-1 {
			t.Errorf("%s: det %v below clocks %v", key, col.DetPct[key], col.ClocksPct[key])
		}
	}
}

func TestTableIIRow(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep in -short mode")
	}
	r := fastRunner()
	row, err := r.TableIIFor("water-nsq")
	if err != nil {
		t.Fatalf("TableIIFor: %v", err)
	}
	if len(row.KendoSweep) != len(r.KendoChunks) {
		t.Fatalf("sweep has %d entries", len(row.KendoSweep))
	}
	// The chosen chunk must be the sweep minimum.
	for _, pct := range row.KendoSweep {
		if pct < row.KendoPct {
			t.Fatalf("best chunk not minimal: %v < %v", pct, row.KendoPct)
		}
	}
}

func TestRenderers(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep in -short mode")
	}
	r := fastRunner()
	col, err := r.TableIFor("ocean")
	if err != nil {
		t.Fatal(err)
	}
	rep := &TableIReport{Threads: r.Threads, Columns: []*BenchTableI{col}}
	out := rep.Render()
	for _, want := range []string{"Original Exec Time", "Locks/sec", "Clockable Functions",
		"With All Optimizations", "After Inserting Clocks"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I render missing %q", want)
		}
	}
	f14 := Fig14(rep)
	if !strings.Contains(f14.Render(), "ocean") {
		t.Errorf("Fig14 render missing benchmark name")
	}
	if rep.AverageClocksPct("none") != col.ClocksPct["none"] {
		t.Errorf("single-column average should equal the column")
	}
}

func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep in -short mode")
	}
	r := NewRunner() // 4 threads: the effect needs contention
	rep, err := r.Fig15()
	if err != nil {
		t.Fatalf("Fig15: %v", err)
	}
	if len(rep.Labels) != 3 {
		t.Fatalf("labels = %v", rep.Labels)
	}
	// O1 (either placement) must beat no optimization on total overhead.
	if rep.DetPct[1] >= rep.DetPct[0] || rep.DetPct[2] >= rep.DetPct[0] {
		t.Errorf("O1 bars should beat no-opt: %v", rep.DetPct)
	}
	// Start-of-block placement must not have a larger deterministic
	// supplement than end-of-block (the paper's Figure 15 effect).
	endGap := rep.DetPct[1] - rep.ClocksPct[1]
	startGap := rep.DetPct[2] - rep.ClocksPct[2]
	if startGap > endGap+0.5 {
		t.Errorf("start placement det gap %v should not exceed end placement %v",
			startGap, endGap)
	}
	if !strings.Contains(rep.Render(), "Figure 15") {
		t.Errorf("render missing title")
	}
}
