package harness

// The committed benchmark trajectory: BenchReport is the schema of
// BENCH_PR4.json, the repo's performance baseline. `detbench -bench-json`
// regenerates it; future hot-path PRs append comparable files (BENCH_PR5,
// ...) so the speedup claims in DESIGN.md §8 stay falsifiable.

import (
	"encoding/json"
	"time"

	"repro/internal/splash"
)

// BenchReport aggregates the measurements the PR-4 acceptance criteria
// commit to the repository.
type BenchReport struct {
	// Threads is the simulated thread count of every measurement.
	Threads int `json:"threads"`
	// GeneratedWith records the command that produced the file.
	GeneratedWith string `json:"generated_with"`

	// Sweep wall-clock: the full Table I + Table II grid, sequentially, on
	// the reference implementations vs the optimized ones.
	SweepSecondsReference float64 `json:"sweep_seconds_reference"`
	SweepSecondsOptimized float64 `json:"sweep_seconds_optimized"`
	SweepSpeedup          float64 `json:"sweep_speedup"`

	// Service submit→result latency for the quickstart program: cold
	// (caches empty) and warm (content-addressed result-cache hit).
	// Measured by cmd/detbench (the service layer sits above this package).
	ServiceColdMS float64 `json:"service_cold_ms,omitempty"`
	ServiceWarmMS float64 `json:"service_warm_ms,omitempty"`

	// Benchmarks holds the per-workload hot-loop rates.
	Benchmarks []WorkloadBench `json:"benchmarks"`
}

// WorkloadBench is one splash workload's measured rates, taken from an
// all-optimizations deterministic run — the configuration the paper's
// tables are built from.
type WorkloadBench struct {
	Name string `json:"name"`
	// InterpMIPS is millions of simulated instructions retired per
	// wall-clock second.
	InterpMIPS float64 `json:"interp_mips"`
	// EngineEventsPerSec is engine scheduler iterations per wall-clock
	// second on the same run.
	EngineEventsPerSec float64 `json:"engine_events_per_sec"`
	// RaceOverheadPct is the wall-clock cost of enabling the race detector
	// on that run, in percent.
	RaceOverheadPct float64 `json:"race_detector_overhead_pct"`
}

// SweepSeconds times the full Table I + Table II grid, sequentially, with
// the runner's current Reference setting. The grid result is discarded;
// only the wall-clock matters here (correctness is the equivalence tests'
// job).
func (r *Runner) SweepSeconds() (float64, error) {
	saved := r.Workers
	r.Workers = 1
	defer func() { r.Workers = saved }()
	start := time.Now()
	if _, err := r.TableI(); err != nil {
		return 0, err
	}
	if _, err := r.TableII(); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// BenchSuite measures the sweep speedup and per-workload rates. short
// reduces repetition for smoke runs; the committed BENCH_PR4.json is
// generated with short=false.
func (r *Runner) BenchSuite(short bool) (*BenchReport, error) {
	rep := &BenchReport{Threads: r.Threads}

	ref := *r
	ref.Reference = true
	reps := 3
	if short {
		reps = 1
	}
	best := func(run func() (float64, error)) (float64, error) {
		var min float64
		for i := 0; i < reps; i++ {
			s, err := run()
			if err != nil {
				return 0, err
			}
			if i == 0 || s < min {
				min = s
			}
		}
		return min, nil
	}
	var err error
	if rep.SweepSecondsReference, err = best(ref.SweepSeconds); err != nil {
		return nil, err
	}
	if rep.SweepSecondsOptimized, err = best(r.SweepSeconds); err != nil {
		return nil, err
	}
	if rep.SweepSecondsOptimized > 0 {
		rep.SweepSpeedup = rep.SweepSecondsReference / rep.SweepSecondsOptimized
	}

	for _, name := range splash.Names() {
		wb, err := r.workloadBench(name, reps)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, *wb)
	}
	return rep, nil
}

// workloadBench measures one workload's interpreter and engine rates on the
// all-optimizations deterministic configuration, and the race detector's
// wall-clock overhead on top of it.
func (r *Runner) workloadBench(name string, reps int) (*WorkloadBench, error) {
	run := func(race bool) (*RunResult, float64, error) {
		rr := *r
		rr.RaceCheck = race
		var res *RunResult
		var min float64
		for i := 0; i < reps; i++ {
			b, err := rr.benchFor(name)
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			res, err = rr.Run(b, PresetByKey("all"), ModeDet, 0)
			if err != nil {
				return nil, 0, err
			}
			if s := time.Since(start).Seconds(); i == 0 || s < min {
				min = s
			}
		}
		return res, min, nil
	}
	res, plain, err := run(false)
	if err != nil {
		return nil, err
	}
	_, raced, err := run(true)
	if err != nil {
		return nil, err
	}
	wb := &WorkloadBench{Name: name}
	if plain > 0 {
		wb.InterpMIPS = float64(res.Instrs) / plain / 1e6
		wb.EngineEventsPerSec = float64(res.Steps) / plain
		wb.RaceOverheadPct = (raced/plain - 1) * 100
	}
	return wb, nil
}

// JSON renders the report in the committed BENCH_PR4.json format.
func (rep *BenchReport) JSON() []byte {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic("harness: bench report marshal: " + err.Error())
	}
	return append(out, '\n')
}
