package harness

import (
	"testing"

	"repro/internal/splash"
)

// twoBenches returns a cheap two-benchmark subset so the sweep runs twice
// (sequential + parallel) without the full Table I cost.
func twoBenches(t *testing.T, r *Runner) []*splash.Benchmark {
	t.Helper()
	var out []*splash.Benchmark
	for _, name := range []string{"ocean", "volrend"} {
		b, err := splash.New(name, r.Threads)
		if err != nil {
			t.Fatalf("splash.New(%s): %v", name, err)
		}
		out = append(out, b)
	}
	return out
}

// TestTableIParallelByteIdentical: the worker-pool sweep must render the
// exact bytes of the sequential sweep — parallelism may only change
// wall-clock time, never a single table cell.
func TestTableIParallelByteIdentical(t *testing.T) {
	seq := NewRunner()
	seqRep, err := seq.tableIReport(twoBenches(t, seq))
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}

	par := NewRunner()
	par.Workers = 4
	parRep, err := par.tableIReport(twoBenches(t, par))
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}

	if s, p := seqRep.Render(), parRep.Render(); s != p {
		t.Fatalf("parallel Table I differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
	}
	if s, p := Fig14(seqRep).Render(), Fig14(parRep).Render(); s != p {
		t.Fatalf("parallel Figure 14 differs from sequential:\n%s\nvs\n%s", s, p)
	}
}

// TestTableIIParallelByteIdentical covers the Kendo chunk sweep path,
// including best-chunk tie-breaking, which must not depend on completion
// order.
func TestTableIIParallelByteIdentical(t *testing.T) {
	seq := NewRunner()
	seqRep, err := seq.tableIIReport(twoBenches(t, seq))
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}

	par := NewRunner()
	par.Workers = 4
	parRep, err := par.tableIIReport(twoBenches(t, par))
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}

	if s, p := seqRep.Render(), parRep.Render(); s != p {
		t.Fatalf("parallel Table II differs from sequential:\n%s\nvs\n%s", s, p)
	}
	for i := range seqRep.Rows {
		if seqRep.Rows[i].KendoChunk != parRep.Rows[i].KendoChunk {
			t.Fatalf("%s: best chunk %d (parallel) != %d (sequential)",
				seqRep.Rows[i].Name, parRep.Rows[i].KendoChunk, seqRep.Rows[i].KendoChunk)
		}
	}
}

// TestOverheadRowMatchesTableI: the per-job overhead row the service exposes
// must agree with the corresponding Table I column cells.
func TestOverheadRowMatchesTableI(t *testing.T) {
	r := NewRunner()
	b, err := splash.New("volrend", r.Threads)
	if err != nil {
		t.Fatalf("splash.New: %v", err)
	}
	row, err := r.OverheadRowFor(b, PresetByKey("all"))
	if err != nil {
		t.Fatalf("OverheadRowFor: %v", err)
	}
	col, err := r.TableIFor("volrend")
	if err != nil {
		t.Fatalf("TableIFor: %v", err)
	}
	if row.BaselineCycles != col.Baseline.Makespan {
		t.Fatalf("baseline cycles %d != %d", row.BaselineCycles, col.Baseline.Makespan)
	}
	if row.ClocksPct != col.ClocksPct["all"] || row.DetPct != col.DetPct["all"] {
		t.Fatalf("overheads (%.2f, %.2f) != (%.2f, %.2f)",
			row.ClocksPct, row.DetPct, col.ClocksPct["all"], col.DetPct["all"])
	}
	if row.Clockable != col.Clockable {
		t.Fatalf("clockable %d != %d", row.Clockable, col.Clockable)
	}
}
