package harness

import (
	"fmt"
	"strings"

	"repro/internal/splash"
)

// BenchTableI holds one benchmark's Table I column.
type BenchTableI struct {
	Bench       *splash.Benchmark
	Baseline    *RunResult
	Clockable   int
	LocksPerSec float64
	// ClocksPct and DetPct map preset keys to overhead percentages.
	ClocksPct map[string]float64
	DetPct    map[string]float64
}

// TableIReport is the full Table I reproduction.
type TableIReport struct {
	Threads int
	Columns []*BenchTableI
}

// TableI runs the Table I sweep: for every benchmark, a baseline run plus
// {clocks-only, clocks+det} × the six optimization presets. With
// Runner.Workers > 1 the full (benchmark × optset × mode) cell grid runs on
// a worker pool; every cell is an independent deterministic simulation, so
// the rendered report is byte-identical to the sequential sweep.
func (r *Runner) TableI() (*TableIReport, error) {
	return r.tableIReport(splash.All(r.Threads))
}

// TableIFor runs a single benchmark's Table I column (used by benches).
func (r *Runner) TableIFor(name string) (*BenchTableI, error) {
	b, err := r.benchFor(name)
	if err != nil {
		return nil, err
	}
	rep, err := r.tableIReport([]*splash.Benchmark{b})
	if err != nil {
		return nil, err
	}
	return rep.Columns[0], nil
}

func (r *Runner) tableIReport(benches []*splash.Benchmark) (*TableIReport, error) {
	keys := PresetKeys()
	// Cell layout per benchmark: [baseline, {clocks-only, det} × preset].
	per := 1 + 2*len(keys)
	runs := make([]*RunResult, len(benches)*per)
	err := r.runAll(len(runs), func(i int) error {
		b := benches[i/per]
		slot := i % per
		var res *RunResult
		var err error
		switch {
		case slot == 0:
			res, err = r.Run(b, PresetByKey("none"), ModeBaseline, 0)
		case slot%2 == 1:
			res, err = r.Run(b, PresetByKey(keys[(slot-1)/2]), ModeClocksOnly, 0)
		default:
			res, err = r.Run(b, PresetByKey(keys[(slot-1)/2]), ModeDet, 0)
		}
		runs[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	rep := &TableIReport{Threads: r.Threads}
	for bi, b := range benches {
		base := runs[bi*per]
		col := &BenchTableI{
			Bench:       b,
			Baseline:    base,
			LocksPerSec: base.LocksPerSec(),
			ClocksPct:   map[string]float64{},
			DetPct:      map[string]float64{},
		}
		for ki, key := range keys {
			co := runs[bi*per+1+2*ki]
			de := runs[bi*per+2+2*ki]
			col.ClocksPct[key] = OverheadPct(co, base)
			if key == "all" {
				col.Clockable = co.Clockable
			}
			col.DetPct[key] = OverheadPct(de, base)
		}
		rep.Columns = append(rep.Columns, col)
	}
	return rep, nil
}

// Render prints the report in the layout of the paper's Table I.
func (rep *TableIReport) Render() string {
	var sb strings.Builder
	names := make([]string, len(rep.Columns))
	for i, c := range rep.Columns {
		names[i] = c.Bench.Name
	}
	fmt.Fprintf(&sb, "Table I: Performance results (simulated, %d threads)\n\n", rep.Threads)
	row := func(label string, f func(c *BenchTableI) string, avg func() string) {
		fmt.Fprintf(&sb, "%-48s", label)
		for _, c := range rep.Columns {
			fmt.Fprintf(&sb, "%16s", f(c))
		}
		if avg != nil {
			fmt.Fprintf(&sb, "%10s", avg())
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-48s", "Benchmark")
	for _, n := range names {
		fmt.Fprintf(&sb, "%16s", n)
	}
	fmt.Fprintf(&sb, "%10s\n", "Average")

	row("Original Exec Time (ms)", func(c *BenchTableI) string {
		return fmt.Sprintf("%.3f", c.Baseline.Seconds()*1000)
	}, nil)
	row("Locks/sec", func(c *BenchTableI) string {
		return fmt.Sprintf("%.0f", c.LocksPerSec)
	}, nil)
	row("Clockable Functions", func(c *BenchTableI) string {
		return fmt.Sprintf("%d", c.Clockable)
	}, nil)

	section := func(title string, src func(c *BenchTableI) map[string]float64) {
		fmt.Fprintf(&sb, "\n%s\n", title)
		for _, key := range PresetKeys() {
			row(PresetLabel(key), func(c *BenchTableI) string {
				return fmt.Sprintf("%.0f%%", src(c)[key])
			}, func() string {
				var t float64
				for _, c := range rep.Columns {
					t += src(c)[key]
				}
				return fmt.Sprintf("%.0f%%", t/float64(len(rep.Columns)))
			})
		}
	}
	section("After Inserting Clocks", func(c *BenchTableI) map[string]float64 { return c.ClocksPct })
	section("After Inserting Clocks and Performing Deterministic Execution",
		func(c *BenchTableI) map[string]float64 { return c.DetPct })
	return sb.String()
}

// AverageClocksPct returns the cross-benchmark average clock overhead for a
// preset key (the paper's headline 20% → 8% numbers).
func (rep *TableIReport) AverageClocksPct(key string) float64 {
	var t float64
	for _, c := range rep.Columns {
		t += c.ClocksPct[key]
	}
	return t / float64(len(rep.Columns))
}

// AverageDetPct is the deterministic-execution analogue (28% → 15%).
func (rep *TableIReport) AverageDetPct(key string) float64 {
	var t float64
	for _, c := range rep.Columns {
		t += c.DetPct[key]
	}
	return t / float64(len(rep.Columns))
}

// --- Table II ---------------------------------------------------------------

// BenchTableII is one benchmark's DetLock-vs-Kendo comparison.
type BenchTableII struct {
	Name string
	// DetLock: all-optimizations deterministic overhead and lock rate.
	DetLockPct      float64
	DetLockLocksSec float64
	// Kendo: best overhead across the chunk sweep, with the winning chunk.
	KendoPct      float64
	KendoChunk    int64
	KendoLocksSec float64
	// KendoSweep records overhead per chunk size (the tuning ablation).
	KendoSweep map[int64]float64
	// Paper reference values.
	PaperDetLockPct float64
	PaperKendoPct   float64
}

// TableIIReport reproduces Table II plus the chunk-tuning ablation.
type TableIIReport struct {
	Threads int
	Rows    []*BenchTableII
}

// TableII compares DetLock (all optimizations) against the simulated Kendo
// baseline, tuning Kendo's chunk size per benchmark as the paper's authors
// did manually (§V-C). Like TableI, the (benchmark × mode × chunk) cells run
// on the worker pool when Runner.Workers > 1 with byte-identical output.
func (r *Runner) TableII() (*TableIIReport, error) {
	return r.tableIIReport(splash.All(r.Threads))
}

// TableIIFor runs one benchmark's Table II row.
func (r *Runner) TableIIFor(name string) (*BenchTableII, error) {
	b, err := r.benchFor(name)
	if err != nil {
		return nil, err
	}
	rep, err := r.tableIIReport([]*splash.Benchmark{b})
	if err != nil {
		return nil, err
	}
	return rep.Rows[0], nil
}

func (r *Runner) tableIIReport(benches []*splash.Benchmark) (*TableIIReport, error) {
	// Cell layout per benchmark: [baseline, det(all), kendo × chunk].
	per := 2 + len(r.KendoChunks)
	runs := make([]*RunResult, len(benches)*per)
	err := r.runAll(len(runs), func(i int) error {
		b := benches[i/per]
		slot := i % per
		var res *RunResult
		var err error
		switch {
		case slot == 0:
			res, err = r.Run(b, PresetByKey("none"), ModeBaseline, 0)
		case slot == 1:
			res, err = r.Run(b, PresetByKey("all"), ModeDet, 0)
		default:
			res, err = r.Run(b, PresetByKey("none"), ModeKendo, r.KendoChunks[slot-2])
		}
		runs[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	rep := &TableIIReport{Threads: r.Threads}
	for bi, b := range benches {
		base := runs[bi*per]
		det := runs[bi*per+1]
		row := &BenchTableII{
			Name:            b.Name,
			DetLockPct:      OverheadPct(det, base),
			DetLockLocksSec: base.LocksPerSec(),
			KendoSweep:      map[int64]float64{},
			PaperDetLockPct: b.PaperDetOverheadPct["all"],
			PaperKendoPct:   b.PaperKendoOverheadPct,
		}
		for ci, chunk := range r.KendoChunks {
			kr := runs[bi*per+2+ci]
			pct := OverheadPct(kr, base)
			row.KendoSweep[chunk] = pct
			if ci == 0 || pct < row.KendoPct {
				row.KendoPct = pct
				row.KendoChunk = chunk
				row.KendoLocksSec = kr.LocksPerSec()
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Render prints the Table II layout.
func (rep *TableIIReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II: DetLock vs Kendo (simulated, %d threads)\n\n", rep.Threads)
	fmt.Fprintf(&sb, "%-12s%16s%16s%16s%18s\n", "Benchmark", "Kendo ovh", "DetLock ovh", "Kendo chunk", "paper (K/D)")
	for _, row := range rep.Rows {
		fmt.Fprintf(&sb, "%-12s%15.0f%%%15.0f%%%16d%12.0f%%/%.0f%%\n",
			row.Name, row.KendoPct, row.DetLockPct, row.KendoChunk,
			row.PaperKendoPct, row.PaperDetLockPct)
	}
	return sb.String()
}

// --- Figure 15 ---------------------------------------------------------------

// Fig15Report reproduces Figure 15: Radiosity under no optimization, under
// Function Clocking with end-of-block updates, and under Function Clocking
// with start-of-block updates; each bar split into clock overhead and
// additional deterministic overhead.
type Fig15Report struct {
	Labels    []string
	ClocksPct []float64 // lower bar segment
	DetPct    []float64 // total (clock + deterministic)
}

// Fig15 runs the ahead-of-time ablation on Radiosity.
func (r *Runner) Fig15() (*Fig15Report, error) {
	b, err := r.benchFor("radiosity")
	if err != nil {
		return nil, err
	}
	base, err := r.Run(b, PresetByKey("none"), ModeBaseline, 0)
	if err != nil {
		return nil, err
	}
	rep := &Fig15Report{}
	configs := []struct {
		label string
		key   string
		end   bool
	}{
		{"no optimization", "none", false},
		{"O1, clocks at end of block", "O1", true},
		{"O1, clocks at start of block", "O1", false},
	}
	for _, cfg := range configs {
		opt := PresetByKey(cfg.key)
		opt.PlaceAtEnd = cfg.end
		co, err := r.Run(b, opt, ModeClocksOnly, 0)
		if err != nil {
			return nil, err
		}
		de, err := r.Run(b, opt, ModeDet, 0)
		if err != nil {
			return nil, err
		}
		rep.Labels = append(rep.Labels, cfg.label)
		rep.ClocksPct = append(rep.ClocksPct, OverheadPct(co, base))
		rep.DetPct = append(rep.DetPct, OverheadPct(de, base))
	}
	return rep, nil
}

// Render prints the Figure 15 bars as text.
func (rep *Fig15Report) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 15: Radiosity — effect of updating clocks ahead of time\n\n")
	for i, l := range rep.Labels {
		fmt.Fprintf(&sb, "%-32s clocks %6.1f%%   +det %6.1f%%   total %6.1f%%\n",
			l, rep.ClocksPct[i], rep.DetPct[i]-rep.ClocksPct[i], rep.DetPct[i])
	}
	return sb.String()
}

// --- Figure 14 ---------------------------------------------------------------

// Fig14Report holds the Figure 14 bar pairs (unoptimized vs all-optimized,
// each split into clock and deterministic portions), derived from Table I.
type Fig14Report struct {
	Names                   []string
	NoOptClocks, NoOptDet   []float64
	AllOptClocks, AllOptDet []float64
}

// Fig14 derives the Figure 14 series from a Table I report.
func Fig14(rep *TableIReport) *Fig14Report {
	out := &Fig14Report{}
	for _, c := range rep.Columns {
		out.Names = append(out.Names, c.Bench.Name)
		out.NoOptClocks = append(out.NoOptClocks, c.ClocksPct["none"])
		out.NoOptDet = append(out.NoOptDet, c.DetPct["none"])
		out.AllOptClocks = append(out.AllOptClocks, c.ClocksPct["all"])
		out.AllOptDet = append(out.AllOptDet, c.DetPct["all"])
	}
	return out
}

// Render prints the Figure 14 bars as text.
func (f *Fig14Report) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 14: Overhead of inserting clocks and deterministic execution\n\n")
	fmt.Fprintf(&sb, "%-12s%22s%22s\n", "Benchmark", "no-opt (clk/total)", "all-opt (clk/total)")
	for i, n := range f.Names {
		fmt.Fprintf(&sb, "%-12s%12.0f%%/%4.0f%%%16.0f%%/%4.0f%%\n",
			n, f.NoOptClocks[i], f.NoOptDet[i], f.AllOptClocks[i], f.AllOptDet[i])
	}
	return sb.String()
}
