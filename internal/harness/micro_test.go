package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/splash"
)

// buildMicro is a minimal radiosity-like loop: pop a queue lock, run one
// clockable kernel, repeat. It isolates the ahead-of-time effect.
func buildMicro(kernelPad int) *ir.Module {
	mb := ir.NewModule("micro")
	mb.Global("q", 8)
	mb.Locks(1)
	splash.AddDiamondChainLeafForTest(mb, "kern", 8, 2, kernelPad)
	fb := mb.Func("main")
	task := fb.Reg("task")
	tmp := fb.Reg("tmp")
	ok := fb.Reg("ok")
	v := fb.Reg("v")
	fb.Block("entry").Jmp("pop")
	pb := fb.Block("pop")
	pb.Lock(ir.Imm(0))
	pb.Load(task, "q", ir.Imm(0))
	pb.Bin(ir.OpAdd, tmp, ir.R(task), ir.Imm(1))
	pb.Store("q", ir.Imm(0), ir.R(tmp))
	pb.Unlock(ir.Imm(0))
	pb.Bin(ir.OpLT, ok, ir.R(task), ir.Imm(2000))
	pb.Br(ir.R(ok), "work", "done")
	wb := fb.Block("work")
	wb.Call(v, "kern", ir.R(task))
	wb.Jmp("pop")
	fb.Block("done").Ret(ir.R(v))
	return mb.M
}

func runMicro(t *testing.T, opt core.Options, policy sim.LockPolicy) *sim.Stats {
	t.Helper()
	m := buildMicro(40)
	opt.Roots = []string{"main"}
	if _, err := core.Instrument(m, nil, nil, opt); err != nil {
		t.Fatalf("instrument: %v", err)
	}
	_, ths, err := interp.NewMachine(interp.Config{Module: m, Threads: 4})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	eng := sim.New(sim.Config{Policy: policy, NumLocks: 1}, interp.Programs(ths))
	stats, err := eng.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return stats
}

// TestMicroAheadOfTime verifies the paper's §V-B mechanism in isolation:
// with the kernel clocked (O1), its whole cost is published before it runs,
// so threads waiting at the queue lock are released earlier and the
// deterministic makespan is at most the unoptimized one.
func TestMicroAheadOfTime(t *testing.T) {
	noneDet := runMicro(t, core.OptNone, sim.PolicyDet)
	o1Det := runMicro(t, core.OptO1, sim.PolicyDet)
	t.Logf("none: makespan %d wait %d", noneDet.Makespan, noneDet.WaitCycles)
	t.Logf("O1:   makespan %d wait %d", o1Det.Makespan, o1Det.WaitCycles)
	if o1Det.Makespan > noneDet.Makespan {
		t.Errorf("O1 det makespan %d exceeds no-opt %d: ahead-of-time publication should not hurt",
			o1Det.Makespan, noneDet.Makespan)
	}
}
