package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/splash"
)

// srcOf renders one splash workload to textual IR.
func srcOf(t testing.TB, name string) string {
	t.Helper()
	b, err := splash.New(name, 4)
	if err != nil {
		t.Fatalf("splash.New(%s): %v", name, err)
	}
	return b.Module.String()
}

// coreOf projects a result onto its deterministic core (mirrors the service
// package's test helper — serving metadata legitimately varies).
func coreOf(r *service.Result) string {
	return fmt.Sprintf("%s/%d/%d/%d/%d/%d",
		r.ScheduleHash, r.ScheduleLen, r.Cycles, r.WaitCycles, r.Acquisitions, r.ClockUpdates)
}

// tnode opens a node on net with background loops disabled — tests drive
// ProbeOnce / StealOnce / ShipFlush directly so every schedule is
// deterministic.
func tnode(t *testing.T, net *LoopNet, self string, peers []string, mut func(*Config)) *Node {
	t.Helper()
	cfg := Config{
		Self:          self,
		Peers:         peers,
		Client:        net.Client(self),
		ProbeInterval: -1,
		StealInterval: -1,
		ShipInterval:  -1,
		ProbeTimeout:  time.Second,
		FillTimeout:   time.Second,
		FailThreshold: 2,
		Service:       service.Config{Workers: 2},
	}
	if mut != nil {
		mut(&cfg)
	}
	n, err := Open(cfg)
	if err != nil {
		t.Fatalf("cluster.Open(%s): %v", self, err)
	}
	net.Register(self, n.Handler())
	return n
}

// waitResult waits for id on svc with a bounded deadline.
func waitResult(t *testing.T, svc *service.Service, id string) *service.Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait %s: %v", id, err)
	}
	return res
}

func TestRingStableBalancedMinimalRemap(t *testing.T) {
	nodes := []string{"node-a", "node-b", "node-c"}
	r1 := newRing(nodes, 64)
	r2 := newRing([]string{"node-c", "node-a", "node-b"}, 64) // order-independent

	counts := map[string]int{}
	owners := map[string]string{}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		o := r1.owner(key)
		if o2 := r2.owner(key); o2 != o {
			t.Fatalf("key %s: owner %s vs %s across identical member sets", key, o, o2)
		}
		owners[key] = o
		counts[o]++
	}
	for _, n := range nodes {
		if counts[n] < 2000/3/3 {
			t.Fatalf("node %s owns only %d/2000 keys — ring badly imbalanced: %v", n, counts[n], counts)
		}
	}
	// Removing one node must remap only the keys it owned.
	shrunk := newRing([]string{"node-a", "node-b"}, 64)
	for key, o := range owners {
		no := shrunk.owner(key)
		if o != "node-c" && no != o {
			t.Fatalf("key %s moved %s -> %s though its owner never left", key, o, no)
		}
		if o == "node-c" && no == "node-c" {
			t.Fatalf("key %s still owned by removed node", key)
		}
	}
	if got := r1.nodes(); len(got) != 3 {
		t.Fatalf("ring members = %v", got)
	}
}

func TestMembershipFailureThreshold(t *testing.T) {
	net := NewLoopNet()
	peers := []string{"node-a", "node-b"}
	a := tnode(t, net, "node-a", peers, nil)
	b := tnode(t, net, "node-b", peers, nil)
	defer a.Close(context.Background())
	defer b.Close(context.Background())

	ctx := context.Background()
	a.ProbeOnce(ctx)
	if st := a.Peers()["node-b"]; !st.Alive || st.Probes != 1 {
		t.Fatalf("after 1 probe: %+v, want alive", st)
	}

	// Down detection is exactly FailThreshold consecutive failures: one
	// failed probe keeps the peer up, the second (threshold=2) marks it down.
	net.Deregister("node-b")
	a.ProbeOnce(ctx)
	if st := a.Peers()["node-b"]; !st.Alive || st.Failures != 1 {
		t.Fatalf("after 1 failure: %+v, want still alive", st)
	}
	a.ProbeOnce(ctx)
	if st := a.Peers()["node-b"]; st.Alive {
		t.Fatalf("after %d failures: %+v, want down", 2, st)
	}

	// A single success resurrects.
	net.Register("node-b", b.Handler())
	a.ProbeOnce(ctx)
	if st := a.Peers()["node-b"]; !st.Alive || st.Failures != 0 {
		t.Fatalf("after recovery probe: %+v, want alive", st)
	}
}

// keyOwnedBy finds a request variant whose result key is (or is not) owned
// by the given node, so fill/offer tests can pin the topology they exercise.
func keyOwnedBy(t *testing.T, n *Node, src string, want bool) (service.Request, string) {
	t.Helper()
	for seed := int64(0); seed < 64; seed++ {
		req := service.Request{Source: src, PerturbSeed: seed}
		key, err := n.Service().KeyFor(req)
		if err != nil {
			t.Fatalf("KeyFor: %v", err)
		}
		if (n.Owner(key) == n.cfg.Self) == want {
			return req, key
		}
	}
	t.Fatalf("no variant found with ownership=%v in 64 seeds", want)
	return service.Request{}, ""
}

func TestPeerFillHitFallbackAndOffer(t *testing.T) {
	net := NewLoopNet()
	peers := []string{"node-a", "node-b", "node-c"}
	a := tnode(t, net, "node-a", peers, nil)
	b := tnode(t, net, "node-b", peers, nil)
	c := tnode(t, net, "node-c", peers, nil)
	nodes := map[string]*Node{"node-a": a, "node-b": b, "node-c": c}
	defer a.Close(context.Background())
	defer b.Close(context.Background())
	defer c.Close(context.Background())
	src := srcOf(t, "ocean")
	ctx := context.Background()

	// --- Fill hit: owner computes, non-owner fills from it. ---
	req, key := keyOwnedBy(t, a, src, false) // some peer of a owns this key
	owner := nodes[a.Owner(key)]
	ownerRes := waitResult(t, owner.Service(), mustSubmit(t, owner, req))
	fillRes := waitResult(t, a.Service(), mustSubmit(t, a, req))
	if !fillRes.PeerFilled {
		t.Fatalf("non-owner result not peer-filled: %+v", fillRes)
	}
	if coreOf(fillRes) != coreOf(ownerRes) {
		t.Fatalf("peer-filled core %s, want %s", coreOf(fillRes), coreOf(ownerRes))
	}
	if st := a.Stats(); st.FillHits != 1 || st.FillAttempts != 1 {
		t.Fatalf("fill stats = %+v, want one attempt, one hit", st)
	}
	if st := owner.Stats(); st.FillsServed != 1 {
		t.Fatalf("owner served %d fills, want 1", st.FillsServed)
	}

	// --- Partition fallback: the owner is unreachable; the job computes
	// locally with zero client-visible error. ---
	req2, key2 := keyOwnedBy(t, b, src, false)
	owner2 := b.Owner(key2)
	net.Partition("node-b", owner2)
	partRes := waitResult(t, b.Service(), mustSubmit(t, b, req2))
	if partRes.PeerFilled {
		t.Fatal("fill reported through a partition")
	}
	want := waitResult(t, nodes[owner2].Service(), mustSubmit(t, nodes[owner2], req2))
	if coreOf(partRes) != coreOf(want) {
		t.Fatalf("partitioned local core %s, want %s", coreOf(partRes), coreOf(want))
	}
	net.Heal("node-b", owner2)

	// --- Probe-informed skip: once the owner is known-down, fills skip the
	// network entirely. ---
	req3, key3 := keyOwnedBy(t, c, src, false)
	owner3 := c.Owner(key3)
	net.Deregister(owner3)
	c.ProbeOnce(ctx)
	c.ProbeOnce(ctx) // FailThreshold=2
	before := c.Stats().FillAttempts
	skipRes := waitResult(t, c.Service(), mustSubmit(t, c, req3))
	if skipRes.PeerFilled {
		t.Fatal("fill reported from a down owner")
	}
	st := c.Stats()
	if st.FillAttempts != before || st.FillSkips == 0 {
		t.Fatalf("down-owner fill stats = %+v, want skip without attempt", st)
	}
	net.Register(owner3, nodes[owner3].Handler())
	c.ProbeOnce(ctx)

	// --- Offer backfill: a non-owner that computed locally pushes the entry
	// to the owner, whose next lookup is a cache hit. ---
	// req2's owner never computed req2 — but node-b offered it the result
	// during the partition (failed) and recomputation is what we just did.
	// Submit a fresh variant instead to watch the full offer path.
	req4, key4 := keyOwnedBy(t, a, srcOf(t, "water-nsq"), false)
	owner4 := nodes[a.Owner(key4)]
	if _, ok := owner4.Service().ResultByKey(key4); ok {
		t.Fatalf("owner already has %s", key4)
	}
	localRes := waitResult(t, a.Service(), mustSubmit(t, a, req4))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := owner4.Service().ResultByKey(key4); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("offer for %s never landed on owner", key4)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ownerHit := waitResult(t, owner4.Service(), mustSubmit(t, owner4, req4))
	if !ownerHit.Cached {
		t.Fatal("owner lookup after offer was not a cache hit")
	}
	if coreOf(ownerHit) != coreOf(localRes) {
		t.Fatalf("offered core %s, want %s", coreOf(ownerHit), coreOf(localRes))
	}
}

func mustSubmit(t *testing.T, n *Node, req service.Request) string {
	t.Helper()
	id, err := n.Service().Submit(req)
	if err != nil {
		t.Fatalf("Submit on %s: %v", n.cfg.Self, err)
	}
	return id
}

func TestWorkStealingDrains(t *testing.T) {
	net := NewLoopNet()
	peers := []string{"node-a", "node-b"}
	victim := tnode(t, net, "node-a", peers, func(c *Config) {
		c.Service.Workers = 1
		c.Service.StealReclaim = 30 * time.Second // completions, not reclaims
		c.StealBatch = 4
	})
	thief := tnode(t, net, "node-b", peers, func(c *Config) {
		c.StealBatch = 4
	})
	defer victim.Close(context.Background())
	defer thief.Close(context.Background())
	src := srcOf(t, "volrend")
	ctx := context.Background()

	var ids []string
	for i := 0; i < 10; i++ {
		ids = append(ids, mustSubmit(t, victim, service.Request{Source: src, PerturbSeed: int64(i)}))
	}
	thief.ProbeOnce(ctx) // learn the victim's queue depth
	n := thief.StealOnce(ctx)
	if n == 0 {
		t.Skip("victim drained its queue before the steal round")
	}
	for i, id := range ids {
		res := waitResult(t, victim.Service(), id)
		w, err := thief.Service().ExecuteDetached(ctx, service.Request{Source: src, PerturbSeed: int64(i)})
		if err != nil {
			t.Fatalf("reference execution: %v", err)
		}
		if coreOf(res) != coreOf(w) {
			t.Fatalf("job %s core %s, want %s", id, coreOf(res), coreOf(w))
		}
	}
	st := thief.Stats()
	if st.StealsDone != int64(n) || st.CompletesSent == 0 {
		t.Fatalf("thief stats = %+v after stealing %d", st, n)
	}
	if snap := victim.Service().Snapshot(); snap.JobsStolen != int64(n) {
		t.Fatalf("victim counted %d stolen, thief took %d", snap.JobsStolen, n)
	}
	remotes := 0
	for _, id := range ids {
		if v, err := victim.Service().Lookup(id); err == nil && v.Result != nil && v.Result.Remote {
			remotes++
		}
	}
	if remotes == 0 {
		t.Fatal("no job completed remotely despite successful steals")
	}
}

func TestJournalShippingAndTakeover(t *testing.T) {
	net := NewLoopNet()
	dir := t.TempDir()
	shipPath := filepath.Join(dir, "shipped.journal")
	standby := tnode(t, net, "standby", nil, func(c *Config) {
		c.ShipPath = shipPath
	})
	primary := tnode(t, net, "primary", nil, func(c *Config) {
		c.Standby = "standby"
		c.Service.JournalPath = filepath.Join(dir, "primary.journal")
	})
	src := srcOf(t, "ocean")
	ctx := context.Background()

	// Finished work ships (first flush opens the epoch with a snapshot).
	cores := map[string]string{}
	for i := 0; i < 3; i++ {
		id := mustSubmit(t, primary, service.Request{Source: src, PerturbSeed: int64(i)})
		cores[id] = coreOf(waitResult(t, primary.Service(), id))
	}
	if sent, err := primary.ShipFlush(ctx); err != nil || sent == 0 {
		t.Fatalf("first flush: sent %d, err %v", sent, err)
	}

	// Standby restart: the fresh store knows no epoch, the next incremental
	// batch gaps (409), and the shipper self-heals with a snapshot resync.
	id := mustSubmit(t, primary, service.Request{Source: src, PerturbSeed: 50})
	cores[id] = coreOf(waitResult(t, primary.Service(), id))
	if err := standby.Close(ctx); err != nil {
		t.Fatalf("standby close: %v", err)
	}
	standby = tnode(t, net, "standby", nil, func(c *Config) {
		c.ShipPath = shipPath
	})
	if _, err := primary.ShipFlush(ctx); err == nil {
		t.Fatal("flush into a restarted standby did not gap")
	}
	if sent, err := primary.ShipFlush(ctx); err != nil || sent == 0 {
		t.Fatalf("resync flush: sent %d, err %v", sent, err)
	}
	if st := primary.Stats(); st.ShipFails == 0 || st.ShipBatches < 2 {
		t.Fatalf("ship stats = %+v, want a failure and ≥2 batches", st)
	}

	// In-flight work at crash time: submitted records shipped, finishes
	// possibly not — takeover must re-execute, not lose.
	var tail []string
	for i := 0; i < 3; i++ {
		tail = append(tail, mustSubmit(t, primary, service.Request{Source: src, PerturbSeed: int64(100 + i)}))
	}
	if _, err := primary.ShipFlush(ctx); err != nil {
		t.Fatalf("tail flush: %v", err)
	}
	for _, id := range tail {
		cores[id] = coreOf(waitResult(t, primary.Service(), id))
	}
	primary.Kill()
	net.Deregister("primary")
	if err := standby.Close(ctx); err != nil {
		t.Fatalf("standby close before takeover: %v", err)
	}

	// Warm takeover: open the engine on the shipped journal.
	svc, err := Takeover(shipPath, service.Config{Workers: 2})
	if err != nil {
		t.Fatalf("Takeover: %v", err)
	}
	defer svc.Close(context.Background())
	for id, want := range cores {
		res := waitResult(t, svc, id)
		if coreOf(res) != want {
			t.Fatalf("takeover job %s core %s, want %s", id, coreOf(res), want)
		}
	}
	if snap := svc.Snapshot(); snap.Divergences != 0 {
		t.Fatalf("takeover recovery found %d divergences", snap.Divergences)
	}
}

// TestSingleNodeIdentity: a node with no peers and no standby is the bare
// service — identical results, no cluster traffic, no peer-path counters.
func TestSingleNodeIdentity(t *testing.T) {
	src := srcOf(t, "raytrace")
	bare := service.New(service.Config{Workers: 2})
	defer bare.Close(context.Background())
	node, err := Open(Config{Self: "solo", Service: service.Config{Workers: 2}})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer node.Close(context.Background())

	for i := 0; i < 4; i++ {
		req := service.Request{Source: src, PerturbSeed: int64(i)}
		a, err := bare.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("bare Do: %v", err)
		}
		b, err := node.Service().Do(context.Background(), req)
		if err != nil {
			t.Fatalf("node Do: %v", err)
		}
		if coreOf(a) != coreOf(b) {
			t.Fatalf("variant %d: bare core %s, node core %s", i, coreOf(a), coreOf(b))
		}
		if b.PeerFilled || b.Remote {
			t.Fatalf("single-node result carries cluster markers: %+v", b)
		}
	}
	if st := node.Stats(); st != (Stats{}) {
		t.Fatalf("single-node cluster stats nonzero: %+v", st)
	}
	snap := node.Service().Snapshot()
	if snap.PeerFills != 0 || snap.PeerOffers != 0 || snap.JobsStolen != 0 {
		t.Fatalf("single-node service snapshot has peer activity: %+v", snap)
	}
}
