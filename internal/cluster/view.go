package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Versioned membership. The cluster's shape is a View: a monotonically
// increasing config epoch plus a per-node lifecycle state. Views spread by
// gossip and merge as a join-semilattice — per member, the higher stamp wins,
// ties break toward the later lifecycle state, and the epoch is the max of
// the two sides — so any two nodes that have exchanged (directly or
// transitively) the same set of updates hold byte-identical views, no matter
// the delivery order. That convergence-by-construction is what lets the churn
// chaos property assert "all survivors agree on the final epoch and ring"
// instead of hoping an eventually-consistent protocol got there.
//
// Only a member mutates its own state (join, drain, leave), so per-member
// stamps form a single writer sequence and the merge never has to arbitrate
// concurrent writers. Probe-based down/up decisions deliberately stay OUT of
// the view: they are local observations (node A may reach B while C cannot),
// and gossiping them would launder nondeterministic reachability into the
// deterministic config epoch.

// MemberState is one node's lifecycle state in the membership view.
type MemberState string

const (
	// StateJoining: announced but not yet bootstrapped; not on the ring.
	StateJoining MemberState = "joining"
	// StateActive: a full member; owns ring ranges.
	StateActive MemberState = "active"
	// StateDraining: finishing accepted work and handing off; already off the
	// ring so new keys route to their next owner.
	StateDraining MemberState = "draining"
	// StateLeft: departed (gracefully or by operator decree); a tombstone.
	StateLeft MemberState = "left"
)

// rank orders states for merge tie-breaks: the lifecycle only moves forward,
// so on equal stamps the later state is the newer fact.
func (s MemberState) rank() int {
	switch s {
	case StateActive:
		return 1
	case StateDraining:
		return 2
	case StateLeft:
		return 3
	default: // joining
		return 0
	}
}

// Member is one node's entry in a View.
type Member struct {
	State MemberState `json:"state"`
	// Stamp is the config epoch at which State was set. Stamps for a given
	// member are bumped only by that member, so they form a single-writer
	// sequence and merges never see concurrent updates to one entry.
	Stamp int64 `json:"stamp"`
}

// View is a versioned membership view: the config epoch and every known
// member's state. Views are value types; methods that mutate take a pointer.
type View struct {
	Epoch   int64             `json:"epoch"`
	Members map[string]Member `json:"members"`
}

// staticView is the bootstrap view of a fixed peer list: everyone active at
// epoch 1. Every node given the same list constructs the identical view, so
// static clusters need no gossip round to agree — exactly the old static-ring
// behaviour, now expressed as a degenerate view.
func staticView(names []string) View {
	v := View{Epoch: 1, Members: make(map[string]Member, len(names))}
	for _, n := range names {
		if n == "" {
			continue
		}
		v.Members[n] = Member{State: StateActive, Stamp: 1}
	}
	return v
}

// joiningView is a newcomer's initial view: itself, joining, epoch 1.
func joiningView(self string) View {
	return View{Epoch: 1, Members: map[string]Member{self: {State: StateJoining, Stamp: 1}}}
}

// Clone deep-copies the view.
func (v View) Clone() View {
	out := View{Epoch: v.Epoch, Members: make(map[string]Member, len(v.Members))}
	for k, m := range v.Members {
		out.Members[k] = m
	}
	return out
}

// Bump advances the config epoch and sets name's state at the new epoch.
// Only name itself should call this for its own entry.
func (v *View) Bump(name string, state MemberState) {
	if v.Members == nil {
		v.Members = make(map[string]Member)
	}
	v.Epoch++
	v.Members[name] = Member{State: state, Stamp: v.Epoch}
}

// Merge folds o into v and reports whether v changed. Per member the higher
// stamp wins; on equal stamps the higher-ranked (later-lifecycle) state wins;
// the epoch becomes the max. Merge is commutative, associative, and
// idempotent, so gossip converges regardless of exchange order.
func (v *View) Merge(o View) bool {
	changed := false
	if o.Epoch > v.Epoch {
		v.Epoch = o.Epoch
		changed = true
	}
	for name, om := range o.Members {
		if v.Members == nil {
			v.Members = make(map[string]Member)
		}
		cur, ok := v.Members[name]
		if !ok || om.Stamp > cur.Stamp || (om.Stamp == cur.Stamp && om.State.rank() > cur.State.rank()) {
			v.Members[name] = om
			changed = true
		}
	}
	return changed
}

// RingMembers returns the sorted names that own ring ranges: active members
// only. Joining nodes are not admitted until they bootstrap; draining nodes
// are already handing off, so excluding them is what starts the key movement.
func (v View) RingMembers() []string {
	var out []string
	for name, m := range v.Members {
		if m.State == StateActive {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Digest condenses the view to a comparable hex string: epoch plus every
// member's (name, state, stamp) in sorted order. Two nodes agree on the
// membership exactly when their digests match — the churn property's
// convergence assertion.
func (v View) Digest() string {
	names := make([]string, 0, len(v.Members))
	for n := range v.Members {
		names = append(names, n)
	}
	sort.Strings(names)
	h := fnv.New64a()
	fmt.Fprintf(h, "epoch %d\n", v.Epoch)
	for _, n := range names {
		m := v.Members[n]
		fmt.Fprintf(h, "%s %s %d\n", n, m.State, m.Stamp)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
