package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/det"
)

// Doer is the one-method transport the cluster needs: *http.Client satisfies
// it for real deployments, and LoopNet satisfies it in-memory for
// deterministic partition tests. Every cross-node byte flows through a Doer,
// so a test that controls the Doer controls the network.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// LoopNet is an in-memory cluster transport: nodes register their HTTP
// handlers under logical addresses, and per-node clients route requests by
// URL host. Each *directed* link (from → to) can be independently degraded,
// which is what real networks do and symmetric models cannot express:
//
//   - Partition severs both directions; PartitionOneWay severs one, so A's
//     requests to B die while B still reaches A — the asymmetric partition
//     that splits leader-election and probe protocols in practice. A cut on
//     the *reverse* direction fails the exchange after the handler ran: the
//     request was delivered and its side effects happened, only the response
//     was lost — the classic ack-lost fault.
//   - SetLatency delays a link by a fixed duration (deterministic, not
//     jittered — schedules must replay identically).
//   - Flake makes a link drop each request with a seeded deterministic
//     probability (connection reset before delivery).
//   - CorruptResponses flips one byte of each response body with a seeded
//     deterministic probability — the fault the integrity plane must catch.
//
// All knobs are per directed link and take effect immediately; the same
// injection script yields the same observable failures on every run.
type LoopNet struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	links    map[string]*linkState // keyed "from>to" (directed)
}

// linkState is one directed link's degradations.
type linkState struct {
	cut     bool
	latency time.Duration
	// flake/corrupt fire with their rate against their own deterministic
	// stream; draws happen in request order under the net lock.
	flakeRate   float64
	flakeRand   *det.Rand
	corruptRate float64
	corruptRand *det.Rand
}

// NewLoopNet returns an empty in-memory network.
func NewLoopNet() *LoopNet {
	return &LoopNet{handlers: make(map[string]http.Handler), links: make(map[string]*linkState)}
}

// Register attaches handler at the logical address addr (e.g. "node-a").
func (l *LoopNet) Register(addr string, handler http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.handlers[addr] = handler
}

// Deregister removes addr — subsequent requests to it fail like a dead host.
func (l *LoopNet) Deregister(addr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.handlers, addr)
}

// link returns (creating) the directed from → to link state. Caller holds mu.
func (l *LoopNet) link(from, to string) *linkState {
	k := from + ">" + to
	st, ok := l.links[k]
	if !ok {
		st = &linkState{}
		l.links[k] = st
	}
	return st
}

// Partition severs the link between a and b in both directions.
func (l *LoopNet) Partition(a, b string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.link(a, b).cut = true
	l.link(b, a).cut = true
}

// PartitionOneWay severs only the from → to direction: from's requests to to
// fail, to's requests to from still flow — and because responses travel the
// reverse path, to's requests *reach* from but their responses are lost.
func (l *LoopNet) PartitionOneWay(from, to string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.link(from, to).cut = true
}

// Heal restores the link between a and b in both directions (cut only; other
// degradations persist until reset explicitly).
func (l *LoopNet) Heal(a, b string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.link(a, b).cut = false
	l.link(b, a).cut = false
}

// HealAll removes every degradation on every link.
func (l *LoopNet) HealAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.links = make(map[string]*linkState)
}

// SetLatency delays every from → to request by d before delivery (0 removes
// the delay). The delay is fixed, not jittered: deterministic schedules only.
func (l *LoopNet) SetLatency(from, to string, d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.link(from, to).latency = d
}

// Flake makes each from → to request fail with probability rate (like a
// connection reset before delivery), drawn from a deterministic stream seeded
// by seed. rate <= 0 removes the flake.
func (l *LoopNet) Flake(from, to string, rate float64, seed int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.link(from, to)
	st.flakeRate = rate
	st.flakeRand = det.NewRand(seed, 1)
	if rate <= 0 {
		st.flakeRand = nil
	}
}

// CorruptResponses flips one byte of each from → to response body with
// probability rate, drawn from a deterministic stream seeded by seed — the
// wire-corruption fault the cluster's integrity checks must catch. rate <= 0
// removes the corruption.
func (l *LoopNet) CorruptResponses(from, to string, rate float64, seed int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.link(from, to)
	st.corruptRate = rate
	st.corruptRand = det.NewRand(seed, 2)
	if rate <= 0 {
		st.corruptRand = nil
	}
}

// Client returns the Doer a node at address from uses to reach its peers.
func (l *LoopNet) Client(from string) Doer {
	return &loopClient{net: l, from: from}
}

type loopClient struct {
	net  *LoopNet
	from string
}

// Do routes the request to the registered handler for req.URL.Host, applying
// the from → to link's degradations, and honours context cancellation the way
// a real client would: the handler runs on its own goroutine and an expired
// context abandons it mid-flight.
func (c *loopClient) Do(req *http.Request) (*http.Response, error) {
	to := req.URL.Host
	c.net.mu.Lock()
	h, up := c.net.handlers[to]
	fwd := c.net.link(c.from, to)
	rev := c.net.link(to, c.from)
	severed := fwd.cut
	ackLost := rev.cut
	latency := fwd.latency
	flaked := fwd.flakeRand != nil && fwd.flakeRand.Float() < fwd.flakeRate
	var corruptAt int = -1
	if rev.corruptRand != nil && rev.corruptRand.Float() < rev.corruptRate {
		// Responses travel the reverse link; position drawn now (in request
		// order) keeps the corruption schedule deterministic.
		corruptAt = rev.corruptRand.IntN(1 << 20)
	}
	c.net.mu.Unlock()
	if !up {
		return nil, fmt.Errorf("loopnet: %s -> %s: connection refused (node down)", c.from, to)
	}
	if severed {
		return nil, fmt.Errorf("loopnet: %s -> %s: network partition", c.from, to)
	}
	if flaked {
		return nil, fmt.Errorf("loopnet: %s -> %s: connection reset (flaky link)", c.from, to)
	}
	if latency > 0 {
		t := time.NewTimer(latency)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, fmt.Errorf("loopnet: %s -> %s: %w", c.from, to, req.Context().Err())
		}
	}
	done := make(chan *http.Response, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req.Clone(req.Context()))
		done <- rec.Result()
	}()
	select {
	case resp := <-done:
		if ackLost {
			// The handler ran — its side effects are real — but the response
			// cannot cross the severed reverse link.
			resp.Body.Close()
			return nil, fmt.Errorf("loopnet: %s -> %s: response lost (reverse partition)", to, c.from)
		}
		if corruptAt >= 0 {
			corruptResponse(resp, corruptAt)
		}
		return resp, nil
	case <-req.Context().Done():
		return nil, fmt.Errorf("loopnet: %s -> %s: %w", c.from, to, req.Context().Err())
	}
}

// corruptResponse flips one bit of the response body at position pos (mod
// body length), leaving headers — including any checksum header — intact, so
// receivers that verify will catch it and receivers that don't will read
// garbage, exactly like wire corruption past the TCP checksum.
func corruptResponse(resp *http.Response, pos int) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) == 0 {
		resp.Body = io.NopCloser(bytes.NewReader(body))
		return
	}
	body[pos%len(body)] ^= 0x01
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
}
