package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
)

// Doer is the one-method transport the cluster needs: *http.Client satisfies
// it for real deployments, and LoopNet satisfies it in-memory for
// deterministic partition tests. Every cross-node byte flows through a Doer,
// so a test that controls the Doer controls the network.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// LoopNet is an in-memory cluster transport: nodes register their HTTP
// handlers under logical addresses, and per-node clients route requests by
// URL host — unless a partition (or a deregistered node) stands between the
// two endpoints, in which case the request fails exactly like a refused
// connection. Partitions are symmetric and instantaneous, which makes
// network chaos schedules deterministic: the same injection script yields
// the same observable failures on every run.
type LoopNet struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	// cut["a|b"] (names sorted) marks a severed link.
	cut map[string]bool
}

// NewLoopNet returns an empty in-memory network.
func NewLoopNet() *LoopNet {
	return &LoopNet{handlers: make(map[string]http.Handler), cut: make(map[string]bool)}
}

// Register attaches handler at the logical address addr (e.g. "node-a").
func (l *LoopNet) Register(addr string, handler http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.handlers[addr] = handler
}

// Deregister removes addr — subsequent requests to it fail like a dead host.
func (l *LoopNet) Deregister(addr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.handlers, addr)
}

// Partition severs the link between a and b in both directions.
func (l *LoopNet) Partition(a, b string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cut[linkKey(a, b)] = true
}

// Heal restores the link between a and b.
func (l *LoopNet) Heal(a, b string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.cut, linkKey(a, b))
}

// HealAll restores every link.
func (l *LoopNet) HealAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cut = make(map[string]bool)
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Client returns the Doer a node at address from uses to reach its peers.
func (l *LoopNet) Client(from string) Doer {
	return &loopClient{net: l, from: from}
}

type loopClient struct {
	net  *LoopNet
	from string
}

// Do routes the request to the registered handler for req.URL.Host,
// respecting partitions and honouring context cancellation the way a real
// client would: the handler runs on its own goroutine and an expired context
// abandons it mid-flight.
func (c *loopClient) Do(req *http.Request) (*http.Response, error) {
	to := req.URL.Host
	c.net.mu.Lock()
	h, up := c.net.handlers[to]
	severed := c.net.cut[linkKey(c.from, to)]
	c.net.mu.Unlock()
	if !up {
		return nil, fmt.Errorf("loopnet: %s -> %s: connection refused (node down)", c.from, to)
	}
	if severed {
		return nil, fmt.Errorf("loopnet: %s -> %s: network partition", c.from, to)
	}
	done := make(chan *http.Response, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req.Clone(req.Context()))
		done <- rec.Result()
	}()
	select {
	case resp := <-done:
		return resp, nil
	case <-req.Context().Done():
		return nil, fmt.Errorf("loopnet: %s -> %s: %w", c.from, to, req.Context().Err())
	}
}
