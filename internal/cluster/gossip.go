package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Membership dissemination. Dynamic clusters spread the versioned view by
// seeded push-pull gossip: each round this node picks Config.GossipFanout
// targets from its own partitioned deterministic RNG stream, POSTs its view,
// and merges the reply. Because View.Merge is a join-semilattice, exchange
// order cannot matter — any gossip schedule that eventually connects the
// nodes converges them to the identical view, and the seeded target choice
// makes the *specific* schedule reproducible run over run. State transitions
// (join admitted, drain started, node left) additionally push to every
// tracked peer at once, so the config epoch advances cluster-wide in one
// round-trip instead of waiting out gossip rounds.

// gossipMsg is the body of /internal/v1/gossip (and the join handshake): the
// sender's name and full view. The reply body is the receiver's (merged)
// view, so one exchange moves information in both directions.
type gossipMsg struct {
	From string `json:"from"`
	View View   `json:"view"`
}

// GossipOnce runs one gossip round: pick fanout live targets deterministically
// and exchange views. Returns the number of successful exchanges. Synchronous —
// the background loop calls it on a ticker, and deterministic tests call it
// directly.
func (n *Node) GossipOnce(ctx context.Context) int {
	if n.members == nil || n.grand == nil {
		return 0
	}
	candidates := n.members.peerList()
	sort.Strings(candidates)
	if len(candidates) == 0 {
		return 0
	}
	fanout := n.cfg.GossipFanout
	if fanout > len(candidates) {
		fanout = len(candidates)
	}
	// Deterministic sampling without replacement from the node's own stream.
	n.gmu.Lock()
	picks := make([]string, 0, fanout)
	for i := 0; i < fanout; i++ {
		j := i + n.grand.IntN(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
		picks = append(picks, candidates[i])
	}
	n.gmu.Unlock()

	ok := 0
	for _, peer := range picks {
		if n.exchangeView(ctx, peer) {
			ok++
		}
	}
	n.ctr.gossipRounds.Add(1)
	return ok
}

// gossipNow pushes the given view to every tracked peer immediately — the
// fast path for state transitions, where waiting out gossip rounds would
// leave the cluster routing to a node that already announced its exit.
func (n *Node) gossipNow(ctx context.Context) {
	if n.members == nil {
		return
	}
	peers := n.members.peerList()
	sort.Strings(peers)
	for _, p := range peers {
		n.exchangeView(ctx, p)
	}
}

// exchangeView runs one push-pull exchange with peer: send our view, merge
// the reply. Reports success; failures are counted and otherwise ignored —
// gossip is redundant by design, and a missed exchange only delays
// convergence.
func (n *Node) exchangeView(ctx context.Context, peer string) bool {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.ProbeTimeout)
	defer cancel()
	body, err := json.Marshal(gossipMsg{From: n.cfg.Self, View: n.members.viewClone()})
	if err != nil {
		n.ctr.gossipFails.Add(1)
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+peer+"/internal/v1/gossip", bytes.NewReader(body))
	if err != nil {
		n.ctr.gossipFails.Add(1)
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	setSum(req.Header, body)
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		n.ctr.gossipFails.Add(1)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.ctr.gossipFails.Add(1)
		return false
	}
	reply, err := io.ReadAll(resp.Body)
	if err != nil {
		n.ctr.gossipFails.Add(1)
		return false
	}
	// A corrupt view must never advance the config epoch: verify, then decode.
	if err := verifySum(resp.Header, reply, "gossip from "+peer); err != nil {
		n.reportPeerCorruption(peer, err)
		return false
	}
	var rv View
	if err := json.Unmarshal(reply, &rv); err != nil {
		n.ctr.gossipFails.Add(1)
		return false
	}
	n.ctr.gossipSent.Add(1)
	if n.members.merge(rv) {
		n.ctr.gossipMerges.Add(1)
		n.syncRing()
	}
	return true
}

// handleGossip receives a peer's view, merges it, and replies with our own —
// the pull half of push-pull gossip.
func (n *Node) handleGossip(w http.ResponseWriter, r *http.Request) {
	if n.members == nil {
		http.Error(w, "not clustered", http.StatusNotFound)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad gossip body", http.StatusBadRequest)
		return
	}
	if err := verifySum(r.Header, body, "gossip"); err != nil {
		n.ctr.corruptDetected.Add(1)
		n.svc.ReportCorruption(err)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	var msg gossipMsg
	if err := json.Unmarshal(body, &msg); err != nil {
		http.Error(w, "bad gossip body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if n.members.merge(msg.View) {
		n.ctr.gossipMerges.Add(1)
		n.syncRing()
	}
	reply, err := json.Marshal(n.members.viewClone())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	setSum(w.Header(), reply)
	w.Write(reply)
}

// digestReport is the body of GET /internal/v1/digest without parameters:
// the cheap convergence probe (epoch, view digest, current ring members).
type digestReport struct {
	Node   string   `json:"node"`
	Epoch  int64    `json:"epoch"`
	Digest string   `json:"digest"`
	Ring   []string `json:"ring"`
}

// handleDigest serves two queries on one route:
//
//	GET /internal/v1/digest                    → digestReport (convergence probe)
//	GET /internal/v1/digest?owner=A            → bucketed cache summary for owner A
//	GET /internal/v1/digest?owner=A&bucket=3   → the (key, hash) pairs in bucket 3
//
// The owner queries are the anti-entropy protocol's read side; see repair.go.
func (n *Node) handleDigest(w http.ResponseWriter, r *http.Request) {
	if n.members == nil {
		http.Error(w, "not clustered", http.StatusNotFound)
		return
	}
	owner := r.URL.Query().Get("owner")
	if owner == "" {
		rep := digestReport{Node: n.cfg.Self, Epoch: n.members.epoch(), Digest: n.members.digest(), Ring: n.ringNodeList()}
		writeSummed(w, rep)
		return
	}
	if b := r.URL.Query().Get("bucket"); b != "" {
		var bucket int
		if _, err := fmt.Sscanf(b, "%d", &bucket); err != nil || bucket < 0 || bucket >= repairBuckets {
			http.Error(w, "bad bucket", http.StatusBadRequest)
			return
		}
		writeSummed(w, n.bucketKeys(owner, bucket))
		return
	}
	writeSummed(w, n.bucketDigests(owner))
}

// writeSummed marshals v with the wire checksum header set.
func writeSummed(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	setSum(w.Header(), body)
	w.Write(body)
}
