package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/det"
	"repro/internal/service"
)

// chaosVariant pairs a request with its reference deterministic core.
type chaosVariant struct {
	req  service.Request
	core string
}

// TestClusterChaosProperty is the cluster's crash/partition property test:
// across 20 seeded fault schedules mixing node kills, restarts, network
// partitions, heals, probe rounds and steal rounds into a stream of job
// submissions, the cluster loses no job, duplicates no job, and every
// result's deterministic core is byte-identical to a reference computed on
// an isolated single-process service. The schedules are drawn from det.Rand,
// so a failure replays exactly from its seed.
//
// The property leans on the layering under test: journals make accepted jobs
// durable per node, recovery re-executes what a kill interrupted, reclaim
// timers undo steals whose stealer died, peer fills fall back to local
// recomputation across partitions — and weak determinism makes every one of
// those retries produce the same bytes the lost execution would have.
func TestClusterChaosProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos property is not a -short test")
	}

	// Reference cores, computed once on a bare service.
	srcs := []string{srcOf(t, "ocean"), srcOf(t, "volrend")}
	ref := service.New(service.Config{Workers: 4})
	var variants []chaosVariant
	for _, src := range srcs {
		for seed := int64(0); seed < 4; seed++ {
			req := service.Request{Source: src, PerturbSeed: seed}
			res, err := ref.Do(context.Background(), req)
			if err != nil {
				t.Fatalf("reference execution: %v", err)
			}
			variants = append(variants, chaosVariant{req: req, core: coreOf(res)})
		}
	}
	ref.Close(context.Background())

	for seed := 1; seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schedule-%02d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosSchedule(t, int64(seed), variants)
		})
	}
}

func runChaosSchedule(t *testing.T, seed int64, variants []chaosVariant) {
	rng := det.NewRand(seed, 5)
	names := []string{"node-a", "node-b", "node-c"}
	net := NewLoopNet()
	dir := t.TempDir()
	ctx := context.Background()

	mk := func(name string) *Node {
		n, err := Open(Config{
			Self:          name,
			Peers:         names,
			Client:        net.Client(name),
			ProbeInterval: -1,
			StealInterval: -1,
			ShipInterval:  -1,
			ProbeTimeout:  time.Second,
			FillTimeout:   500 * time.Millisecond,
			FailThreshold: 1, // one failed probe marks down: fastest degradation
			StealBatch:    2,
			Service: service.Config{
				Workers:       2,
				JournalPath:   filepath.Join(dir, name+".journal"),
				StealReclaim:  50 * time.Millisecond,
				PeerCheckRate: 0.25,
				PeerCheckSeed: seed,
			},
		})
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		net.Register(name, n.Handler())
		return n
	}

	nodes := map[string]*Node{}
	alive := map[string]bool{}
	for _, name := range names {
		nodes[name] = mk(name)
		alive[name] = true
	}
	countAlive := func() int {
		c := 0
		for _, a := range alive {
			if a {
				c++
			}
		}
		return c
	}

	// submitted[name] = job ids accepted by node `name` across all its
	// incarnations; the property is that every one of them finishes.
	submitted := map[string][]string{}
	variantOf := map[string]string{} // id@node -> expected core

	for op := 0; op < 28; op++ {
		switch rng.IntN(8) {
		case 0, 1, 2, 3: // submit to a random live node
			name := names[rng.IntN(len(names))]
			if !alive[name] {
				continue
			}
			v := variants[rng.IntN(len(variants))]
			id, err := nodes[name].Service().Submit(v.req)
			if err != nil {
				t.Fatalf("op %d: submit to %s: %v", op, name, err)
			}
			submitted[name] = append(submitted[name], id)
			variantOf[id+"@"+name] = v.core
		case 4: // kill a node (keep a majority of the group up)
			if countAlive() < 3 {
				continue
			}
			name := names[rng.IntN(len(names))]
			if !alive[name] {
				continue
			}
			nodes[name].Kill()
			net.Deregister(name)
			alive[name] = false
		case 5: // restart a dead node on its own journal
			for _, name := range names {
				if !alive[name] {
					nodes[name] = mk(name)
					alive[name] = true
					break
				}
			}
		case 6: // partition or heal a random pair
			a := names[rng.IntN(len(names))]
			b := names[rng.IntN(len(names))]
			if a == b {
				continue
			}
			if rng.IntN(2) == 0 {
				net.Partition(a, b)
			} else {
				net.Heal(a, b)
			}
		case 7: // a probe + steal round on every live node
			for _, name := range names {
				if alive[name] {
					nodes[name].ProbeOnce(ctx)
					nodes[name].StealOnce(ctx)
				}
			}
		}
	}

	// Convergence: heal the network, restart the dead, settle membership.
	net.HealAll()
	for _, name := range names {
		if !alive[name] {
			nodes[name] = mk(name)
			alive[name] = true
		}
	}
	for _, name := range names {
		nodes[name].ProbeOnce(ctx)
	}

	// Zero lost jobs, byte-identical cores: every accepted id completes on
	// its node with the reference core.
	for name, ids := range submitted {
		for _, id := range ids {
			res := waitResult(t, nodes[name].Service(), id)
			if want := variantOf[id+"@"+name]; coreOf(res) != want {
				t.Fatalf("node %s job %s: core %s, want %s", name, id, coreOf(res), want)
			}
		}
	}

	// Zero duplicated jobs: each node's journal holds exactly the jobs it
	// accepted — no double-submits from recovery, reclaim, or steal races.
	// Zero divergences: no peer fill, offer, recovery cross-check or
	// self-check ever observed non-identical bytes.
	for _, name := range names {
		snap := nodes[name].Service().Snapshot()
		if snap.JournalJobs != len(submitted[name]) {
			t.Fatalf("node %s journal holds %d jobs, accepted %d", name, snap.JournalJobs, len(submitted[name]))
		}
		if snap.Divergences != 0 {
			t.Fatalf("node %s observed %d divergences", name, snap.Divergences)
		}
	}
	for _, name := range names {
		if err := nodes[name].Close(ctx); err != nil {
			t.Fatalf("close %s: %v", name, err)
		}
	}
}
