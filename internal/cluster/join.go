package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/diag"
)

// Join protocol. A newcomer opened with SeedPeers starts in StateJoining —
// known to nobody, owning nothing — and must bootstrap through a seed before
// the ring admits it:
//
//  1. it POSTs its (one-member) view to a seed's /internal/v1/join;
//  2. the seed merges the announcement and replies with its own view plus a
//     journal snapshot — the same resync payload the shipping plane sends a
//     standby that lost the stream;
//  3. the newcomer verifies the payload the hard way: frames are checked,
//     and up to joinCheckMax journaled completions are re-executed on the
//     newcomer's own deterministic core. A seed whose history does not
//     reproduce is refused — joining a divergent cluster would be adopting
//     its wrongness;
//  4. only then does the newcomer bump itself active (advancing the config
//     epoch), rebuild its ring, and push the new view to everyone it now
//     knows, so the cluster starts routing the newcomer's key ranges to it.
//
// Steps run against each seed in order until one admits; a cluster is
// joinable as long as any seed answers.

// joinCheckMax bounds the journaled completions a joiner re-executes during
// bootstrap. Small on purpose: the check is a spot audit that any divergence
// fails loudly, not a full replay.
const joinCheckMax = 2

// joinReply is a seed's answer: its view and a journal snapshot for the
// divergence cross-check.
type joinReply struct {
	View     View     `json:"view"`
	Snapshot [][]byte `json:"snapshot,omitempty"`
}

// Join bootstraps this node into the cluster through its configured seeds.
// It is idempotent — an already-active node returns nil immediately — and a
// bootstrap node (no seeds) is born active, so callers can invoke Join
// unconditionally after Open.
func (n *Node) Join(ctx context.Context) error {
	if !n.dynamic {
		return &diag.MisuseError{Op: "cluster.Join", ThreadID: -1, Kind: diag.ErrBadConfig,
			Detail: "Join requires dynamic membership (Config.SeedPeers)"}
	}
	if n.members.selfState() != StateJoining {
		return nil
	}
	var lastErr error
	for _, seed := range n.cfg.SeedPeers {
		if err := n.joinVia(ctx, seed); err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return ctx.Err()
			}
			continue
		}
		return nil
	}
	return fmt.Errorf("cluster: join: no seed admitted this node: %w", lastErr)
}

// joinVia runs the bootstrap handshake against one seed.
func (n *Node) joinVia(ctx context.Context, seed string) error {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.FillTimeout)
	defer cancel()
	body, err := json.Marshal(gossipMsg{From: n.cfg.Self, View: n.members.viewClone()})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+seed+"/internal/v1/join", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	setSum(req.Header, body)
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("join %s: %w", seed, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("join %s: status %d", seed, resp.StatusCode)
	}
	reply, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("join %s: %w", seed, err)
	}
	if err := verifySum(resp.Header, reply, "join reply from "+seed); err != nil {
		n.reportPeerCorruption(seed, err)
		return err
	}
	var jr joinReply
	if err := json.Unmarshal(reply, &jr); err != nil {
		return fmt.Errorf("join %s: %w", seed, err)
	}
	// Divergence cross-check before admission: the seed's journaled history
	// must reproduce byte-identically on our core. Refusing here is the whole
	// point — a newcomer must prove it computes what the cluster computes
	// before it starts owning the cluster's keys.
	if err := n.svc.CheckSnapshotRecords(ctx, jr.Snapshot, joinCheckMax); err != nil {
		return fmt.Errorf("join %s: bootstrap cross-check: %w", seed, err)
	}
	n.members.merge(jr.View)
	n.members.bumpSelf(StateActive)
	n.syncRing()
	n.ctr.joins.Add(1)
	// Push admission to everyone we now know — new ranges route immediately.
	n.gossipNow(ctx)
	return nil
}

// handleJoin is the seed side of the bootstrap handshake (mounted at both
// /internal/v1/join and the operator-facing /v1/cluster/join). It merges the
// joiner's announcement and replies with the full view plus the journal
// snapshot the joiner cross-checks.
func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if n.members == nil {
		http.Error(w, "not clustered", http.StatusNotFound)
		return
	}
	n.mu.Lock()
	refusing := n.draining || n.closed
	n.mu.Unlock()
	if refusing {
		http.Error(w, "node is draining", http.StatusServiceUnavailable)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad join body", http.StatusBadRequest)
		return
	}
	if err := verifySum(r.Header, body, "join"); err != nil {
		n.ctr.corruptDetected.Add(1)
		n.svc.ReportCorruption(err)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	var msg gossipMsg
	if err := json.Unmarshal(body, &msg); err != nil || msg.From == "" {
		http.Error(w, "bad join body", http.StatusBadRequest)
		return
	}
	if n.members.merge(msg.View) {
		n.syncRing()
	}
	n.ctr.joinsServed.Add(1)
	writeSummed(w, joinReply{View: n.members.viewClone(), Snapshot: n.svc.JournalSnapshotRecords()})
}
