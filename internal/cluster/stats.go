package cluster

import "sync/atomic"

// counters is the node's cluster-layer telemetry (the inner service keeps
// its own; these count only cross-node traffic).
type counters struct {
	fillAttempts     atomic.Int64
	fillHits         atomic.Int64
	fillMisses       atomic.Int64
	fillSkips        atomic.Int64 // owner down: skipped straight to local compute
	fillHedges       atomic.Int64
	fillsServed      atomic.Int64 // fills answered for peers
	offersSent       atomic.Int64
	offerFails       atomic.Int64
	offerDivergences atomic.Int64
	stealsDone       atomic.Int64 // jobs borrowed from peers
	completesSent    atomic.Int64
	completeFails    atomic.Int64
	shipBatches      atomic.Int64
	shipLines        atomic.Int64
	shipFails        atomic.Int64

	// Integrity counters: peer payloads that failed their checksum (any
	// direction), ship batches rejected as corrupt, and peers newly
	// quarantined for serving corrupt bytes.
	corruptDetected atomic.Int64
	shipCorrupt     atomic.Int64
	peerQuarantines atomic.Int64

	// Membership-plane counters: ring rebuilds (config epoch advances),
	// gossip traffic, join/drain lifecycle events, and the handoff, rebalance
	// and anti-entropy repair work churn triggers.
	ringRebuilds        atomic.Int64
	gossipRounds        atomic.Int64
	gossipSent          atomic.Int64
	gossipFails         atomic.Int64
	gossipMerges        atomic.Int64
	joins               atomic.Int64
	joinsServed         atomic.Int64
	drains              atomic.Int64
	handoffJobsSent     atomic.Int64
	handoffJobsRecv     atomic.Int64
	journalHandoffs     atomic.Int64
	journalHandoffsRecv atomic.Int64
	rebalanceMoves      atomic.Int64
	repairRounds        atomic.Int64
	repairPulls         atomic.Int64
	repairFixes         atomic.Int64
	repairDivergences   atomic.Int64
}

// Stats is a point-in-time snapshot of the node's cluster counters.
type Stats struct {
	FillAttempts     int64 `json:"fill_attempts,omitempty"`
	FillHits         int64 `json:"fill_hits,omitempty"`
	FillMisses       int64 `json:"fill_misses,omitempty"`
	FillSkips        int64 `json:"fill_skips,omitempty"`
	FillHedges       int64 `json:"fill_hedges,omitempty"`
	FillsServed      int64 `json:"fills_served,omitempty"`
	OffersSent       int64 `json:"offers_sent,omitempty"`
	OfferFails       int64 `json:"offer_fails,omitempty"`
	OfferDivergences int64 `json:"offer_divergences,omitempty"`
	StealsDone       int64 `json:"steals_done,omitempty"`
	CompletesSent    int64 `json:"completes_sent,omitempty"`
	CompleteFails    int64 `json:"complete_fails,omitempty"`
	ShipBatches      int64 `json:"ship_batches,omitempty"`
	ShipLines        int64 `json:"ship_lines,omitempty"`
	ShipFails        int64 `json:"ship_fails,omitempty"`

	// Integrity counters: checksum failures detected on peer payloads, ship
	// batches rejected as corrupt, and peers quarantined for serving them.
	CorruptPayloads int64 `json:"corrupt_payloads,omitempty"`
	ShipCorrupt     int64 `json:"ship_corrupt,omitempty"`
	PeerQuarantines int64 `json:"peer_quarantines,omitempty"`

	// Membership-plane counters. Epoch and MemberState describe the current
	// view (zero/empty in single-node mode); the rest count lifecycle and
	// repair work since the node opened.
	Epoch               int64  `json:"epoch,omitempty"`
	MemberState         string `json:"member_state,omitempty"`
	RingRebuilds        int64  `json:"ring_rebuilds,omitempty"`
	GossipRounds        int64  `json:"gossip_rounds,omitempty"`
	GossipSent          int64  `json:"gossip_sent,omitempty"`
	GossipFails         int64  `json:"gossip_fails,omitempty"`
	GossipMerges        int64  `json:"gossip_merges,omitempty"`
	Joins               int64  `json:"joins,omitempty"`
	JoinsServed         int64  `json:"joins_served,omitempty"`
	Drains              int64  `json:"drains,omitempty"`
	HandoffJobsSent     int64  `json:"handoff_jobs_sent,omitempty"`
	HandoffJobsRecv     int64  `json:"handoff_jobs_recv,omitempty"`
	JournalHandoffs     int64  `json:"journal_handoffs,omitempty"`
	JournalHandoffsRecv int64  `json:"journal_handoffs_recv,omitempty"`
	RebalanceMoves      int64  `json:"rebalance_moves,omitempty"`
	RepairRounds        int64  `json:"repair_rounds,omitempty"`
	RepairPulls         int64  `json:"repair_pulls,omitempty"`
	RepairFixes         int64  `json:"repair_fixes,omitempty"`
	RepairDivergences   int64  `json:"repair_divergences,omitempty"`
}

// Stats snapshots the cluster counters.
func (n *Node) Stats() Stats {
	var epoch int64
	var state string
	if n.members != nil {
		epoch = n.members.epoch()
		state = string(n.members.selfState())
	}
	return Stats{
		Epoch:               epoch,
		MemberState:         state,
		RingRebuilds:        n.ctr.ringRebuilds.Load(),
		GossipRounds:        n.ctr.gossipRounds.Load(),
		GossipSent:          n.ctr.gossipSent.Load(),
		GossipFails:         n.ctr.gossipFails.Load(),
		GossipMerges:        n.ctr.gossipMerges.Load(),
		Joins:               n.ctr.joins.Load(),
		JoinsServed:         n.ctr.joinsServed.Load(),
		Drains:              n.ctr.drains.Load(),
		HandoffJobsSent:     n.ctr.handoffJobsSent.Load(),
		HandoffJobsRecv:     n.ctr.handoffJobsRecv.Load(),
		JournalHandoffs:     n.ctr.journalHandoffs.Load(),
		JournalHandoffsRecv: n.ctr.journalHandoffsRecv.Load(),
		RebalanceMoves:      n.ctr.rebalanceMoves.Load(),
		RepairRounds:        n.ctr.repairRounds.Load(),
		RepairPulls:         n.ctr.repairPulls.Load(),
		RepairFixes:         n.ctr.repairFixes.Load(),
		RepairDivergences:   n.ctr.repairDivergences.Load(),
		FillAttempts:        n.ctr.fillAttempts.Load(),
		FillHits:            n.ctr.fillHits.Load(),
		FillMisses:          n.ctr.fillMisses.Load(),
		FillSkips:           n.ctr.fillSkips.Load(),
		FillHedges:          n.ctr.fillHedges.Load(),
		FillsServed:         n.ctr.fillsServed.Load(),
		OffersSent:          n.ctr.offersSent.Load(),
		OfferFails:          n.ctr.offerFails.Load(),
		OfferDivergences:    n.ctr.offerDivergences.Load(),
		StealsDone:          n.ctr.stealsDone.Load(),
		CompletesSent:       n.ctr.completesSent.Load(),
		CompleteFails:       n.ctr.completeFails.Load(),
		ShipBatches:         n.ctr.shipBatches.Load(),
		ShipLines:           n.ctr.shipLines.Load(),
		ShipFails:           n.ctr.shipFails.Load(),
		CorruptPayloads:     n.ctr.corruptDetected.Load(),
		ShipCorrupt:         n.ctr.shipCorrupt.Load(),
		PeerQuarantines:     n.ctr.peerQuarantines.Load(),
	}
}
