package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// readyzCode probes a node's /readyz through its handler.
func readyzCode(n *Node) int {
	rec := httptest.NewRecorder()
	n.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	return rec.Code
}

// dnode opens a dynamic-membership node with every background loop disabled;
// tests drive Join/Drain/GossipOnce/RepairOnce directly so each schedule is
// deterministic. An empty (non-nil) seeds slice bootstraps; a populated one
// opens a joiner that must Join before ring admission.
func dnode(t *testing.T, net *LoopNet, self string, seeds []string, mut func(*Config)) *Node {
	t.Helper()
	cfg := Config{
		Self:           self,
		SeedPeers:      seeds,
		Client:         net.Client(self),
		ProbeInterval:  -1,
		StealInterval:  -1,
		ShipInterval:   -1,
		GossipInterval: -1,
		RepairInterval: -1,
		ProbeTimeout:   time.Second,
		FillTimeout:    time.Second,
		FailThreshold:  2,
		Service:        service.Config{Workers: 2},
	}
	if mut != nil {
		mut(&cfg)
	}
	n, err := Open(cfg)
	if err != nil {
		t.Fatalf("cluster.Open(%s): %v", self, err)
	}
	net.Register(self, n.Handler())
	return n
}

// reqsOwnedBy scans perturbation seeds for count distinct requests whose
// result keys the named member owns under n's current ring.
func reqsOwnedBy(t *testing.T, n *Node, src, owner string, count int) ([]service.Request, []string) {
	t.Helper()
	var reqs []service.Request
	var keys []string
	for seed := int64(0); seed < 256 && len(reqs) < count; seed++ {
		req := service.Request{Source: src, PerturbSeed: seed}
		key, err := n.Service().KeyFor(req)
		if err != nil {
			t.Fatalf("KeyFor: %v", err)
		}
		if n.Owner(key) == owner {
			reqs = append(reqs, req)
			keys = append(keys, key)
		}
	}
	if len(reqs) < count {
		t.Fatalf("found only %d/%d requests owned by %s in 256 seeds", len(reqs), count, owner)
	}
	return reqs, keys
}

// TestJoinBootstrap covers the newcomer path: a joiner is off the ring until
// its bootstrap handshake — snapshot resync plus divergence cross-check —
// verifies, a corrupted join reply is rejected outright, and a successful
// join converges both views at the same epoch and ring.
func TestJoinBootstrap(t *testing.T) {
	net := NewLoopNet()
	dir := t.TempDir()
	a := dnode(t, net, "node-a", []string{}, func(c *Config) {
		c.Service.JournalPath = filepath.Join(dir, "a.journal")
	})
	defer a.Close(context.Background())
	ctx := context.Background()

	// Warm the bootstrap node so the join snapshot has records to cross-check.
	src := srcOf(t, "ocean")
	for seed := int64(0); seed < 2; seed++ {
		waitResult(t, a.Service(), mustSubmit(t, a, service.Request{Source: src, PerturbSeed: seed}))
	}

	b := dnode(t, net, "node-b", []string{"node-a"}, nil)
	defer b.Close(context.Background())
	if st := b.View().Members["node-b"].State; st != StateJoining {
		t.Fatalf("fresh joiner state = %s, want joining", st)
	}
	if ring := b.View().RingMembers(); len(ring) != 0 {
		t.Fatalf("joiner on the ring before admission: %v", ring)
	}
	if code := readyzCode(b); code != 503 {
		t.Fatalf("joiner /readyz = %d before admission, want 503", code)
	}

	// A corrupted join reply must be rejected: the newcomer stays out of the
	// ring rather than bootstrapping from damaged bytes.
	net.CorruptResponses("node-a", "node-b", 1, 99)
	if err := b.Join(ctx); err == nil {
		t.Fatal("Join succeeded through a corrupting link")
	}
	if st := b.View().Members["node-b"].State; st != StateJoining {
		t.Fatalf("failed join left state %s, want joining", st)
	}
	if b.Stats().CorruptPayloads == 0 {
		t.Fatal("corrupted join reply not counted")
	}
	net.CorruptResponses("node-a", "node-b", 0, 99)

	if err := b.Join(ctx); err != nil {
		t.Fatalf("Join after heal: %v", err)
	}
	if err := b.Join(ctx); err != nil {
		t.Fatalf("Join is not idempotent once admitted: %v", err)
	}
	if a.ViewDigest() != b.ViewDigest() {
		t.Fatalf("views diverge after join: %s vs %s", a.ViewDigest(), b.ViewDigest())
	}
	if a.Epoch() != b.Epoch() || a.Epoch() != 2 {
		t.Fatalf("epochs = %d/%d, want 2/2", a.Epoch(), b.Epoch())
	}
	for _, n := range []*Node{a, b} {
		ring := n.View().RingMembers()
		if len(ring) != 2 || ring[0] != "node-a" || ring[1] != "node-b" {
			t.Fatalf("%s ring = %v, want [node-a node-b]", n.Name(), ring)
		}
	}
	// The seed served two join requests: the one whose reply the wire
	// corrupted (damage happens after serving) and the clean retry.
	if b.Stats().Joins != 1 || a.Stats().JoinsServed != 2 {
		t.Fatalf("join counters: joiner %d, seed served %d", b.Stats().Joins, a.Stats().JoinsServed)
	}
	if code := readyzCode(b); code != 200 {
		t.Fatalf("admitted joiner /readyz = %d, want 200", code)
	}

	// The admitted member now owns ring ranges: some key routes to node-b on
	// both nodes' rings.
	if _, keys := reqsOwnedBy(t, a, src, "node-b", 1); b.Owner(keys[0]) != "node-b" {
		t.Fatal("rings disagree on ownership after join")
	}
}

// slowSrc pins a worker for tens of milliseconds (1M-iteration spin), long
// enough for a drain to catch a queue backlog behind it.
const slowSrc = `
module plug

func main() regs 4 {
entry:
  r0 = const 0
  r1 = const 1000000
  jmp loop
loop:
  r2 = lt r0, r1
  br r2, body, exit
body:
  r0 = add r0, 1
  jmp loop
exit:
  ret r0
}
`

// TestDrainMidLoad is the graceful-leave acceptance test: a node draining
// under load finishes or hands off every accepted job (zero lost), transfers
// ring ownership of its keys, and leaves every survivor converged on a view
// without it.
func TestDrainMidLoad(t *testing.T) {
	net := NewLoopNet()
	a := dnode(t, net, "node-a", []string{}, nil)
	b := dnode(t, net, "node-b", []string{"node-a"}, nil)
	c := dnode(t, net, "node-c", []string{"node-a"}, func(cfg *Config) {
		cfg.Service.Workers = 1 // a single pinned worker builds a real backlog
	})
	defer a.Close(context.Background())
	defer b.Close(context.Background())
	ctx := context.Background()
	if err := b.Join(ctx); err != nil {
		t.Fatalf("b join: %v", err)
	}
	if err := c.Join(ctx); err != nil {
		t.Fatalf("c join: %v", err)
	}

	// Pin c's worker, then queue three jobs whose keys c owns.
	plugID := mustSubmit(t, c, service.Request{Source: slowSrc, Threads: 1})
	reqs, keys := reqsOwnedBy(t, c, srcOf(t, "volrend"), "node-c", 3)
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		ids[i] = mustSubmit(t, c, req)
	}
	results := make([]*service.Result, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			results[i] = waitResult(t, c.Service(), id)
		}(i, id)
	}

	if err := c.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	waitResult(t, c.Service(), plugID)
	for i, res := range results {
		if res == nil {
			t.Fatalf("job %d lost in drain", i)
		}
	}

	// Every survivor agrees c has left, at the same epoch.
	for _, n := range []*Node{a, b} {
		if st := n.View().Members["node-c"].State; st != StateLeft {
			t.Fatalf("%s sees node-c as %s, want left", n.Name(), st)
		}
	}
	if a.ViewDigest() != b.ViewDigest() || a.Epoch() != b.Epoch() {
		t.Fatalf("survivors diverge: %s@%d vs %s@%d", a.ViewDigest(), a.Epoch(), b.ViewDigest(), b.Epoch())
	}
	cst := c.Stats()
	if cst.Drains != 1 {
		t.Fatalf("drain counter = %d, want 1", cst.Drains)
	}
	if cst.HandoffJobsSent == 0 {
		t.Fatal("no queued jobs handed off — the drain never saw the backlog")
	}
	if !c.Draining() {
		t.Fatal("drained node does not report draining state")
	}

	// The drained node's keys are reachable from their new owners: ownership
	// moved off node-c, and each new owner serves the entry (installed by the
	// handoff execution or the rebalance push) with the identical core.
	nodes := map[string]*Node{"node-a": a, "node-b": b}
	for i, key := range keys {
		newOwner := a.Owner(key)
		if newOwner == "node-c" || newOwner == "" {
			t.Fatalf("key %d still owned by %q after drain", i, newOwner)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			if res, ok := nodes[newOwner].Service().ResultByKey(key); ok {
				if coreOf(res) != coreOf(results[i]) {
					t.Fatalf("key %d: new owner core %s, drained waiter saw %s", i, coreOf(res), coreOf(results[i]))
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %d never reachable from new owner %s", i, newOwner)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestAntiEntropyRepair covers both repair arms: a missing entry on the
// owner is pulled back from a peer holding it, and a divergent peer copy
// loses to deterministic recompute — flagged, counted, and quarantined.
func TestAntiEntropyRepair(t *testing.T) {
	net := NewLoopNet()
	a := dnode(t, net, "node-a", []string{}, nil)
	b := dnode(t, net, "node-b", []string{"node-a"}, nil)
	defer a.Close(context.Background())
	defer b.Close(context.Background())
	ctx := context.Background()
	if err := b.Join(ctx); err != nil {
		t.Fatalf("join: %v", err)
	}
	src := srcOf(t, "raytrace")

	// --- Missing entry: b computes a key a owns while a is unreachable, so
	// the offer never lands. Repair pulls it back to the owner. ---
	reqs, keys := reqsOwnedBy(t, a, src, "node-a", 2)
	net.Partition("node-a", "node-b")
	missRes := waitResult(t, b.Service(), mustSubmit(t, b, reqs[0]))
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().OfferFails == 0 {
		if time.Now().After(deadline) {
			t.Fatal("partitioned offer never failed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	net.Heal("node-a", "node-b")
	if _, ok := a.Service().ResultByKey(keys[0]); ok {
		t.Fatal("owner already has the entry; the repair pull would be vacuous")
	}
	if n := a.RepairOnce(ctx); n == 0 {
		t.Fatal("repair round reconciled nothing")
	}
	pulled, ok := a.Service().ResultByKey(keys[0])
	if !ok {
		t.Fatal("repair did not pull the missing entry to its owner")
	}
	if coreOf(pulled) != coreOf(missRes) {
		t.Fatalf("pulled core %s, want %s", coreOf(pulled), coreOf(missRes))
	}
	if st := a.Stats(); st.RepairPulls != 1 || st.RepairRounds == 0 {
		t.Fatalf("repair stats after pull: %+v", st)
	}

	// --- Divergence: plant an entry on b under a key a owns whose schedule
	// is internally consistent but belongs to a different request. Recompute
	// arbitrates for a's copy; the peer is flagged and quarantined. ---
	ownRes := waitResult(t, a.Service(), mustSubmit(t, a, reqs[1]))
	otherReq := service.Request{Source: srcOf(t, "water-nsq"), PerturbSeed: 7}
	otherRes := waitResult(t, b.Service(), mustSubmit(t, b, otherReq))
	if otherRes.ScheduleHash == ownRes.ScheduleHash {
		t.Fatal("test staging broke: distinct programs share a schedule hash")
	}
	otherKey, err := b.Service().KeyFor(otherReq)
	if err != nil {
		t.Fatal(err)
	}
	planted, ok := b.Service().ResultByKey(otherKey)
	if !ok {
		t.Fatal("staging entry missing")
	}
	if err := b.Service().OfferResultFrom(keys[1], planted, nil); err != nil {
		t.Fatalf("planting divergent entry: %v", err)
	}
	if a.RepairOnce(ctx) == 0 {
		t.Fatal("divergence round reconciled nothing")
	}
	st := a.Stats()
	if st.RepairDivergences != 1 {
		t.Fatalf("RepairDivergences = %d, want 1 (stats %+v)", st.RepairDivergences, st)
	}
	if st.PeerQuarantines != 1 {
		t.Fatalf("divergent peer not quarantined: %+v", st)
	}
	if ps := a.Peers()["node-b"]; !ps.Quarantined {
		t.Fatalf("peer status not quarantined: %+v", ps)
	}
	// The owner's copy stands untouched — recompute reproduced it.
	kept, ok := a.Service().ResultByKey(keys[1])
	if !ok || coreOf(kept) != coreOf(ownRes) {
		t.Fatalf("owner's verified copy disturbed: ok=%v", ok)
	}
}
