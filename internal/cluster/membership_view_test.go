package cluster

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"repro/internal/diag"
	"repro/internal/service"
)

// TestViewMergeSemilattice pins the merge algebra the gossip plane rests on:
// commutative, idempotent, higher stamp wins, equal stamps break toward the
// later lifecycle state, epoch is the max of the sides.
func TestViewMergeSemilattice(t *testing.T) {
	base := staticView([]string{"node-a", "node-b"})
	v1 := base.Clone()
	v1.Bump("node-a", StateDraining) // epoch 2, a@2
	v2 := base.Clone()
	v2.Bump("node-b", StateLeft) // epoch 2, b@2

	m1 := v1.Clone()
	if !m1.Merge(v2) {
		t.Fatal("merge of new facts reported no change")
	}
	m2 := v2.Clone()
	m2.Merge(v1)
	if m1.Digest() != m2.Digest() {
		t.Fatalf("merge is order-dependent: %s vs %s", m1.Digest(), m2.Digest())
	}
	if m1.Epoch != 2 || m1.Members["node-a"].State != StateDraining || m1.Members["node-b"].State != StateLeft {
		t.Fatalf("merged view wrong: %+v", m1)
	}
	if m1.Merge(v2) {
		t.Fatal("re-merging already-known facts reported a change (not idempotent)")
	}

	// Equal stamps: the later lifecycle state is the newer fact.
	tie := View{Epoch: 5, Members: map[string]Member{"x": {State: StateActive, Stamp: 5}}}
	tie.Merge(View{Epoch: 5, Members: map[string]Member{"x": {State: StateDraining, Stamp: 5}}})
	if tie.Members["x"].State != StateDraining {
		t.Fatalf("equal-stamp tie-break picked %s, want draining", tie.Members["x"].State)
	}
	// A higher stamp beats a later state: stamps are the single-writer truth.
	stamp := View{Epoch: 4, Members: map[string]Member{"x": {State: StateLeft, Stamp: 3}}}
	stamp.Merge(View{Epoch: 4, Members: map[string]Member{"x": {State: StateActive, Stamp: 4}}})
	if stamp.Members["x"].State != StateActive {
		t.Fatalf("higher stamp lost the merge: %+v", stamp.Members["x"])
	}

	// Ring membership: active members only, sorted.
	ring := View{Epoch: 9, Members: map[string]Member{
		"c": {State: StateActive, Stamp: 1},
		"a": {State: StateActive, Stamp: 1},
		"j": {State: StateJoining, Stamp: 2},
		"d": {State: StateDraining, Stamp: 3},
		"l": {State: StateLeft, Stamp: 4},
	}}
	if got := ring.RingMembers(); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("RingMembers = %v, want active-only sorted [a c]", got)
	}
}

// TestMembershipPeerListHardening is the config-hardening table: repeated
// peer names collapse to one probe stream and ring share, a node listed in
// its own peer list never peers with itself, and empty strings are dropped.
func TestMembershipPeerListHardening(t *testing.T) {
	cases := []struct {
		name      string
		peers     []string
		wantPeers []string
	}{
		{"duplicates", []string{"node-b", "node-b", "node-c", "node-b"}, []string{"node-b", "node-c"}},
		{"self-in-list", []string{"node-a", "node-b"}, []string{"node-b"}},
		{"empty-strings", []string{"", "node-b", ""}, []string{"node-b"}},
		{"only-junk", []string{"", "node-a", "node-a"}, []string{}},
		{"all-at-once", []string{"node-a", "", "node-c", "node-c", "node-b", "node-a"}, []string{"node-b", "node-c"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newMembership("node-a", tc.peers, nil, 0, 0)
			got := m.peerList()
			sort.Strings(got)
			if !reflect.DeepEqual(got, tc.wantPeers) {
				t.Fatalf("peers(%v) = %v, want %v", tc.peers, got, tc.wantPeers)
			}
			wantRing := append([]string{"node-a"}, tc.wantPeers...)
			sort.Strings(wantRing)
			if ring := m.ringMembers(); !reflect.DeepEqual(ring, wantRing) {
				t.Fatalf("ring(%v) = %v, want %v", tc.peers, ring, wantRing)
			}
			if m.epoch() != 1 {
				t.Fatalf("static view epoch = %d, want 1", m.epoch())
			}
			// dedupePeers (Open's pre-filter) must agree with the membership's
			// own hardening.
			deduped := dedupePeers("node-a", tc.peers)
			sort.Strings(deduped)
			if len(deduped) != len(tc.wantPeers) || (len(deduped) > 0 && !reflect.DeepEqual(deduped, tc.wantPeers)) {
				t.Fatalf("dedupePeers(%v) = %v, want %v", tc.peers, deduped, tc.wantPeers)
			}
		})
	}
}

// TestClusterConfigValidate pins the typed rejection of contradictory
// configurations, both through Validate and through Open.
func TestClusterConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"peers-and-seeds", Config{Self: "a", Peers: []string{"b"}, SeedPeers: []string{"c"}}},
		{"seeds-without-self", Config{SeedPeers: []string{"b"}}},
		{"peers-without-self", Config{Peers: []string{"b"}}},
		{"fill-hook-preset", Config{Self: "a", Peers: []string{"b"}, Service: service.Config{
			Fill: func(ctx context.Context, key string, req *service.Request) *service.Result { return nil },
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted a contradictory config")
			}
			if !errors.Is(err, diag.ErrBadConfig) {
				t.Fatalf("error %v is not ErrBadConfig", err)
			}
			var mis *diag.MisuseError
			if !errors.As(err, &mis) || mis.Op != "cluster.Open" {
				t.Fatalf("error %v is not a cluster.Open MisuseError", err)
			}
			if _, err := Open(tc.cfg); err == nil {
				t.Fatal("Open accepted a config Validate rejects")
			}
		})
	}
	good := Config{Self: "a", SeedPeers: []string{}}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected a bootstrap config: %v", err)
	}
	if err := (&Config{}).Validate(); err != nil {
		t.Fatalf("Validate rejected single-node config: %v", err)
	}
}
