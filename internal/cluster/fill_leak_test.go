package cluster

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingDoer wraps a transport and tracks request lifecycles: how many are
// in flight right now and how many finished with a cancelled context — the
// observable difference between "the loser was cut loose when the winner
// returned" and "the loser lingered until its own deadline".
type countingDoer struct {
	inner     Doer
	inflight  atomic.Int64
	started   atomic.Int64
	cancelled atomic.Int64
}

func (d *countingDoer) Do(req *http.Request) (*http.Response, error) {
	d.started.Add(1)
	d.inflight.Add(1)
	defer d.inflight.Add(-1)
	resp, err := d.inner.Do(req)
	if req.Context().Err() != nil {
		d.cancelled.Add(1)
	}
	return resp, err
}

// stallFirstResult wraps a node handler and blocks the first fill request
// until its context is cancelled (or a long fallback timer fires) — the
// stuck-owner scenario that forces the hedge to win the race.
type stallFirstResult struct {
	inner http.Handler

	mu      sync.Mutex
	stalled bool
}

func (h *stallFirstResult) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/internal/v1/result") {
		h.mu.Lock()
		first := !h.stalled
		h.stalled = true
		h.mu.Unlock()
		if first {
			select {
			case <-r.Context().Done():
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			case <-time.After(30 * time.Second):
			}
		}
	}
	h.inner.ServeHTTP(w, r)
}

// TestHedgedFillCancelsLoser: when the hedge wins, the losing attempt's
// context must be cancelled the moment the winner returns — the straggler's
// request goroutine drains immediately instead of squatting on its
// connection until the shared fill deadline.
func TestHedgedFillCancelsLoser(t *testing.T) {
	net := NewLoopNet()
	peers := []string{"node-a", "node-b"}
	counting := &countingDoer{}
	a := tnode(t, net, "node-a", peers, func(c *Config) {
		counting.inner = c.Client
		c.Client = counting
		c.HedgeAfter = 20 * time.Millisecond
		// A deadline far beyond the test's patience: if the loser is only
		// released by this timeout, the inflight assertion below fails first.
		c.FillTimeout = 60 * time.Second
		c.RepairInterval = -1 // only fill traffic may reach the counter
	})
	b := tnode(t, net, "node-b", peers, func(c *Config) { c.RepairInterval = -1 })
	defer a.Close(context.Background())
	defer b.Close(context.Background())

	// Warm the owner's cache, then stall its next (first counted) fill.
	req, key := keyOwnedBy(t, a, srcOf(t, "ocean"), false)
	waitResult(t, b.Service(), mustSubmit(t, b, req))
	net.Register("node-b", &stallFirstResult{inner: b.Handler()})

	start := time.Now()
	res := a.fill(context.Background(), key, &req)
	if res == nil {
		t.Fatal("hedged fill returned no result despite a warm owner")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fill took %v — it waited out the stalled attempt instead of racing past it", elapsed)
	}
	if got := a.Stats().FillHedges; got != 1 {
		t.Fatalf("FillHedges = %d, want 1", got)
	}
	if got := counting.started.Load(); got != 2 {
		t.Fatalf("started %d fill requests, want 2 (primary + hedge)", got)
	}

	// The loser must drain promptly: its context was cancelled by the
	// winner's return, not by the 60s fill deadline or the 30s stall timer.
	deadline := time.Now().Add(2 * time.Second)
	for counting.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d fill request(s) still in flight 2s after the winner returned — loser leaked", counting.inflight.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if counting.cancelled.Load() == 0 {
		t.Fatal("no request observed a cancelled context — the loser was never cut loose")
	}
}
