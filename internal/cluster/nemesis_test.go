package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/nemesis"
	"repro/internal/service"
)

// TestClusterNemesisProperty is the cluster's network-fault acceptance
// property: across ≥20 seeded nemesis schedules mixing submissions, node
// kill/restarts, *asymmetric* one-way partitions, seeded flaky links, seeded
// response corruption, heals, and probe/steal rounds, the cluster loses no
// accepted job, duplicates none, and every served result's deterministic core
// is byte-identical to the single-process reference — corrupt peer bytes are
// detected (checksum), the offending path falls back to local recomputation,
// and the corrupting peer is quarantined rather than trusted again.
//
// Like the single-node nemesis property, each schedule is a pure function of
// its seed: the plan fingerprints identically when regenerated, and the
// executed timeline fingerprints identically to the plan.
func TestClusterNemesisProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster nemesis property is not a -short test")
	}

	srcs := []string{srcOf(t, "ocean"), srcOf(t, "volrend")}
	ref := service.New(service.Config{Workers: 4})
	var variants []chaosVariant
	for _, src := range srcs {
		for seed := int64(0); seed < 3; seed++ {
			req := service.Request{Source: src, PerturbSeed: seed}
			res, err := ref.Do(context.Background(), req)
			if err != nil {
				t.Fatalf("reference execution: %v", err)
			}
			variants = append(variants, chaosVariant{req: req, core: coreOf(res)})
		}
	}
	ref.Close(context.Background())

	for seed := 1; seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schedule-%02d", seed), func(t *testing.T) {
			t.Parallel()
			runNemesisClusterSchedule(t, int64(seed), variants)
		})
	}
}

func runNemesisClusterSchedule(t *testing.T, seed int64, variants []chaosVariant) {
	names := []string{"node-a", "node-b", "node-c"}
	ops := []nemesis.OpSpec{
		{Class: nemesis.ClassProcess, Op: "kill-restart", Rate: 0.12},
		{Class: nemesis.ClassProcess, Op: "round", Rate: 0.5},
		{Class: nemesis.ClassNetwork, Op: "cut-oneway", Rate: 0.2, ArgN: len(names)},
		{Class: nemesis.ClassNetwork, Op: "flake", Rate: 0.15, ArgN: len(names)},
		{Class: nemesis.ClassNetwork, Op: "corrupt", Rate: 0.15, ArgN: len(names)},
		{Class: nemesis.ClassNetwork, Op: "heal", Rate: 0.2},
		{Class: nemesis.ClassWorkload, Op: "submit", Rate: 0.9, ArgN: len(variants)},
	}
	planCfg := nemesis.PlanConfig{Steps: 14, Targets: names}
	plan := nemesis.Plan(seed, planCfg, ops)
	if again := nemesis.Plan(seed, planCfg, ops); nemesis.Fingerprint(again) != nemesis.Fingerprint(plan) {
		t.Fatalf("seed %d: two plans disagree", seed)
	}
	eng := nemesis.New(seed)

	net := NewLoopNet()
	dir := t.TempDir()
	ctx := context.Background()
	mk := func(name string) *Node {
		n, err := Open(Config{
			Self:          name,
			Peers:         names,
			Client:        net.Client(name),
			ProbeInterval: -1,
			StealInterval: -1,
			ShipInterval:  -1,
			ProbeTimeout:  time.Second,
			FillTimeout:   500 * time.Millisecond,
			FailThreshold: 1,
			StealBatch:    2,
			Service: service.Config{
				Workers:       2,
				JournalPath:   filepath.Join(dir, name+".journal"),
				StealReclaim:  50 * time.Millisecond,
				PeerCheckRate: 0.25,
				PeerCheckSeed: seed,
				// Corruption detections feed the breaker by design; the
				// property needs admission to stay open through them so the
				// accounting (not the shedding) is what's under test.
				BreakerThreshold: 1000,
			},
		})
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		net.Register(name, n.Handler())
		return n
	}
	nodes := map[string]*Node{}
	for _, name := range names {
		nodes[name] = mk(name)
	}

	submitted := map[string][]string{} // node → accepted job ids
	variantOf := map[string]string{}   // id@node → expected core

	for _, e := range plan {
		switch e.Op {
		case "kill-restart":
			// A crash and immediate reboot on the same journal: accepted jobs
			// are durable, in-flight work re-executes on recovery.
			nodes[e.Target].Kill()
			net.Deregister(e.Target)
			nodes[e.Target] = mk(e.Target)
		case "round":
			for _, name := range names {
				nodes[name].ProbeOnce(ctx)
				nodes[name].StealOnce(ctx)
			}
		case "cut-oneway":
			net.PartitionOneWay(e.Target, names[e.Arg])
		case "flake":
			net.Flake(e.Target, names[e.Arg], 0.4, seed*1000+int64(e.Step))
		case "corrupt":
			net.CorruptResponses(e.Target, names[e.Arg], 0.5, seed*1000+int64(e.Step))
		case "heal":
			net.HealAll()
		case "submit":
			v := variants[e.Arg]
			id, err := nodes[e.Target].Service().Submit(v.req)
			if err != nil {
				t.Fatalf("step %d: submit to %s: %v", e.Step, e.Target, err)
			}
			submitted[e.Target] = append(submitted[e.Target], id)
			variantOf[id+"@"+e.Target] = v.core
		}
		eng.Record(e)
	}
	if got := eng.Fingerprint(); got != nemesis.Fingerprint(plan) {
		t.Fatalf("executed timeline fingerprint %s != plan fingerprint %s", got, nemesis.Fingerprint(plan))
	}

	// Convergence: clean network, enough probe rounds to readmit quarantined
	// peers (FailThreshold=1 → one clean probe per quarantine level).
	net.HealAll()
	for round := 0; round < 2; round++ {
		for _, name := range names {
			nodes[name].ProbeOnce(ctx)
		}
	}

	// Zero lost jobs, corrupt bytes never served: every accepted id completes
	// on its node with the reference core.
	for name, ids := range submitted {
		for _, id := range ids {
			res := waitResult(t, nodes[name].Service(), id)
			if want := variantOf[id+"@"+name]; coreOf(res) != want {
				t.Fatalf("node %s job %s: core %s, want %s", name, id, coreOf(res), want)
			}
		}
	}
	// Zero duplicates, zero undetected divergences.
	for _, name := range names {
		snap := nodes[name].Service().Snapshot()
		if snap.JournalJobs != len(submitted[name]) {
			t.Fatalf("node %s journal holds %d jobs, accepted %d", name, snap.JournalJobs, len(submitted[name]))
		}
		if snap.Divergences != 0 {
			t.Fatalf("node %s observed %d divergences", name, snap.Divergences)
		}
	}
	for _, name := range names {
		if err := nodes[name].Close(ctx); err != nil {
			t.Fatalf("close %s: %v", name, err)
		}
	}
}
