package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"

	"repro/internal/service"
)

// Anti-entropy repair. Ring churn, missed offers, and plain bit rot all
// leave the same symptom: the copies of a key scattered across the cluster
// stop agreeing, or the owner is missing entries its peers hold. The repair
// loop reconciles them with a merkle-style two-round exchange, and — this is
// the part determinism buys — arbitrates every disagreement by recompute,
// not by timestamp or quorum:
//
//   - round 1: ask one peer for its bucketed digest of the entries *it*
//     holds that *we* own under the current ring (repairBuckets FNV-64a
//     summaries over sorted (key, hash) lines);
//   - round 2: for each bucket that differs from our own summary, fetch the
//     peer's (key, hash) list and reconcile key by key:
//       missing here → pull the entry (normal fill fetch, checksummed, then
//       installed through the same policed offer path peers use);
//       hash differs → re-execute locally (service.RecheckResult): if our
//       copy reproduces, the peer is the divergent one — reported and
//       quarantined via the corruption machinery; if ours does not, it has
//       already been replaced by the recompute (or evicted if unverifiable).
//
// Nothing is ever "trusted newer": a divergent entry loses to deterministic
// re-execution no matter where it lives.

// repairBuckets is the digest fan-out: keys bucket by FNV(key) % repairBuckets.
const repairBuckets = 16

// bucketDigest is one bucket's summary in the round-1 reply.
type bucketSummary struct {
	Digests [repairBuckets]string `json:"digests"`
	Counts  [repairBuckets]int    `json:"counts"`
}

// repairKey is one entry in the round-2 reply.
type repairKey struct {
	Key  string `json:"key"`
	Hash string `json:"hash"`
}

func bucketOf(key string) int {
	h := fnv.New32a()
	io.WriteString(h, key)
	return int(h.Sum32() % repairBuckets)
}

// ownedScan enumerates this node's cache entries owned by `owner` under this
// node's current ring, sorted by key (CacheScan's order).
func (n *Node) ownedScan(owner string) []repairKey {
	var out []repairKey
	for _, ck := range n.svc.CacheScan() {
		if o, ok := n.ownerOf(ck.Key); ok && o == owner {
			out = append(out, repairKey{Key: ck.Key, Hash: ck.ScheduleHash})
		}
	}
	return out
}

// bucketDigests computes the round-1 summary for owner from the local cache.
func (n *Node) bucketDigests(owner string) bucketSummary {
	var lines [repairBuckets][]string
	for _, rk := range n.ownedScan(owner) {
		b := bucketOf(rk.Key)
		lines[b] = append(lines[b], rk.Key+" "+rk.Hash)
	}
	var sum bucketSummary
	for b := range lines {
		sort.Strings(lines[b])
		h := fnv.New64a()
		for _, l := range lines[b] {
			io.WriteString(h, l)
			io.WriteString(h, "\n")
		}
		sum.Digests[b] = fmt.Sprintf("%016x", h.Sum64())
		sum.Counts[b] = len(lines[b])
	}
	return sum
}

// bucketKeys computes one bucket's (key, hash) list for owner (round 2).
func (n *Node) bucketKeys(owner string, bucket int) []repairKey {
	out := []repairKey{}
	for _, rk := range n.ownedScan(owner) {
		if bucketOf(rk.Key) == bucket {
			out = append(out, rk)
		}
	}
	return out
}

// RepairOnce runs one anti-entropy round against the next ring peer in
// round-robin order, bounded by Config.RepairMax reconciled keys. Returns
// the number of entries pulled, fixed, or flagged divergent. Synchronous —
// the background loop calls it on a ticker, and deterministic tests call it
// directly.
func (n *Node) RepairOnce(ctx context.Context) int {
	if n.members == nil {
		return 0
	}
	var peers []string
	for _, name := range n.ringNodeList() {
		if name != n.cfg.Self && n.members.alive(name) {
			peers = append(peers, name)
		}
	}
	if len(peers) == 0 {
		return 0
	}
	n.gmu.Lock()
	peer := peers[n.repairIdx%len(peers)]
	n.repairIdx++
	n.gmu.Unlock()
	n.ctr.repairRounds.Add(1)

	theirs, err := n.fetchBucketDigests(ctx, peer)
	if err != nil {
		return 0
	}
	ours := n.bucketDigests(n.cfg.Self)
	repaired, budget := 0, n.cfg.RepairMax
	for b := 0; b < repairBuckets && budget > 0; b++ {
		if theirs.Digests[b] == ours.Digests[b] {
			continue
		}
		if theirs.Counts[b] == 0 {
			continue // they hold nothing of ours in this bucket; nothing to pull or compare
		}
		keys, err := n.fetchBucketKeys(ctx, peer, b)
		if err != nil {
			continue
		}
		for _, rk := range keys {
			if budget <= 0 {
				break
			}
			budget--
			fixed, err := n.reconcileKey(ctx, peer, rk)
			if err != nil && ctx.Err() != nil {
				return repaired
			}
			if fixed {
				repaired++
			}
		}
	}
	return repaired
}

// reconcileKey reconciles one (key, hash) claim from peer against the local
// cache. Reports whether anything changed (a pull, a local repair, or a peer
// divergence flagged).
func (n *Node) reconcileKey(ctx context.Context, peer string, rk repairKey) (bool, error) {
	local, ok := peek(n.svc, rk.Key)
	if !ok {
		// Missing here: pull the peer's entry through the checksummed fetch
		// path and install it through the policed offer path (hash-verified;
		// a conflicting concurrent entry surfaces as a divergence).
		fctx, cancel := context.WithTimeout(ctx, n.cfg.FillTimeout)
		res, err := n.fetchResult(fctx, peer, rk.Key)
		cancel()
		if err != nil || res == nil {
			return false, err
		}
		if err := n.svc.OfferResultFrom(rk.Key, res, nil); err != nil {
			return false, err
		}
		n.ctr.repairPulls.Add(1)
		return true, nil
	}
	if local == rk.Hash {
		return false, nil
	}
	// Copies disagree: recompute decides. RecheckResult returning nil means
	// our copy reproduced — the peer holds the divergent one.
	if err := n.svc.RecheckResult(ctx, rk.Key); err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		n.ctr.repairFixes.Add(1) // our copy was wrong; recompute repaired/evicted it
		return true, nil
	}
	n.ctr.repairDivergences.Add(1)
	n.reportPeerCorruption(peer, fmt.Errorf("cluster: repair %s: peer %s holds schedule hash %s, deterministic recompute holds %s",
		rk.Key[:12], peer, rk.Hash, local))
	return true, nil
}

// peek looks up a key's schedule hash in svc's cache without recency effects.
func peek(svc *service.Service, key string) (string, bool) {
	for _, ck := range svc.CacheScan() {
		if ck.Key == key {
			return ck.ScheduleHash, true
		}
	}
	return "", false
}

// fetchBucketDigests runs repair round 1 against peer.
func (n *Node) fetchBucketDigests(ctx context.Context, peer string) (*bucketSummary, error) {
	var sum bucketSummary
	if err := n.getSummed(ctx, peer, "/internal/v1/digest?owner="+n.cfg.Self, &sum); err != nil {
		return nil, err
	}
	return &sum, nil
}

// fetchBucketKeys runs repair round 2 against peer.
func (n *Node) fetchBucketKeys(ctx context.Context, peer string, bucket int) ([]repairKey, error) {
	var keys []repairKey
	path := fmt.Sprintf("/internal/v1/digest?owner=%s&bucket=%d", n.cfg.Self, bucket)
	if err := n.getSummed(ctx, peer, path, &keys); err != nil {
		return nil, err
	}
	return keys, nil
}

// getSummed issues one checksummed GET to peer and decodes the JSON reply.
func (n *Node) getSummed(ctx context.Context, peer, path string, v any) error {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.FillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+path, nil)
	if err != nil {
		return err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d", peer, path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if err := verifySum(resp.Header, body, "repair from "+peer); err != nil {
		n.reportPeerCorruption(peer, err)
		return err
	}
	return json.Unmarshal(body, v)
}

// RebalanceOnce pushes the pending key-movement diff (computed by syncRing
// at each ring rebuild) to the keys' new owners: one synchronous offer per
// key, request attached so the receiving owner installs a recheckable entry.
// The local copy stays — it is still byte-correct, and keeping it costs one
// cache slot, not soundness. Returns the number of keys pushed. Moves whose
// target is gone are dropped; the repair loop re-converges them later.
func (n *Node) RebalanceOnce(ctx context.Context) int {
	n.moveMu.Lock()
	if len(n.pendingMoves) == 0 {
		n.moveMu.Unlock()
		return 0
	}
	moves := n.pendingMoves
	n.pendingMoves = make(map[string]string)
	n.moveMu.Unlock()

	keys := make([]string, 0, len(moves))
	for k := range moves {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	pushed := 0
	for _, key := range keys {
		if ctx.Err() != nil {
			break
		}
		// Ownership may have moved again since the diff: resolve at push time.
		to, ok := n.ownerOf(key)
		if !ok || to == n.cfg.Self || !n.members.alive(to) {
			continue
		}
		res, req, ok := n.svc.ExportResult(key)
		if !ok {
			continue
		}
		octx, cancel := context.WithTimeout(ctx, n.cfg.FillTimeout)
		err := n.sendOffer(octx, to, key, res, req)
		cancel()
		if err == nil {
			n.ctr.rebalanceMoves.Add(1)
			pushed++
		}
	}
	return pushed
}
