package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// membership tracks the liveness of a static peer list by periodic health
// probes. Failure detection is deterministic by construction: a peer is
// marked down after exactly FailThreshold consecutive probe failures and up
// again after a single success — no randomised timers, no gossip, no
// phi-accrual estimation. With a fixed probe schedule and a fixed fault
// schedule, every node makes the same liveness decisions at the same probe
// counts, which is what lets the chaos property test assert cluster-wide
// behaviour rather than race against an adaptive detector.
type membership struct {
	self      string
	client    Doer
	timeout   time.Duration
	threshold int

	mu    sync.Mutex
	peers map[string]*peerState
}

// peerState is one peer's probe bookkeeping.
type peerState struct {
	alive    bool
	failures int   // consecutive probe failures
	depth    int   // last reported queue depth (work-stealing signal)
	probes   int64 // total probes sent

	// quarantined marks a peer that served corrupt bytes. Quarantine is a
	// harsher down-state than probe failure: a down peer re-enters on a
	// single probe success (it was merely unreachable), a quarantined peer
	// needs threshold *consecutive* successes (it answered — wrongly — so
	// one good answer proves little about its storage or path).
	quarantined bool
	successes   int // consecutive successes while quarantined
}

// healthReport is the /healthz body peers exchange.
type healthReport struct {
	Status     string `json:"status"`
	Node       string `json:"node"`
	QueueDepth int    `json:"queue_depth"`
	Ready      bool   `json:"ready"`
}

func newMembership(self string, peers []string, client Doer, timeout time.Duration, threshold int) *membership {
	if threshold <= 0 {
		threshold = 3
	}
	if timeout <= 0 {
		timeout = 250 * time.Millisecond
	}
	m := &membership{
		self:      self,
		client:    client,
		timeout:   timeout,
		threshold: threshold,
		peers:     make(map[string]*peerState),
	}
	for _, p := range peers {
		if p == self {
			continue
		}
		// Peers start alive: a fresh node must not refuse to fill from a
		// healthy cluster just because it has not completed a probe round yet.
		m.peers[p] = &peerState{alive: true}
	}
	return m
}

// alive reports whether addr is currently believed up. The local node is
// always alive to itself; unknown addresses are dead.
func (m *membership) alive(addr string) bool {
	if addr == m.self {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[addr]
	return ok && p.alive
}

// depth returns addr's last reported queue depth (0 for unknown/down peers).
func (m *membership) depth(addr string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.peers[addr]; ok && p.alive {
		return p.depth
	}
	return 0
}

// peerList returns the tracked peer addresses, for iteration.
func (m *membership) peerList() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers))
	for p := range m.peers {
		out = append(out, p)
	}
	return out
}

// probeOnce probes every peer once, applying the threshold transition rules.
// It is the loop body of the background prober and the direct entry point
// deterministic tests drive.
func (m *membership) probeOnce(ctx context.Context) {
	for _, addr := range m.peerList() {
		rep, err := m.probe(ctx, addr)
		m.mu.Lock()
		p, ok := m.peers[addr]
		if !ok {
			m.mu.Unlock()
			continue
		}
		p.probes++
		if err != nil {
			p.failures++
			p.successes = 0
			if p.failures >= m.threshold {
				p.alive = false
			}
		} else if p.quarantined {
			// Re-entry from quarantine demands threshold consecutive clean
			// probes, not one: the peer was answering when it corrupted.
			p.failures = 0
			p.successes++
			if p.successes >= m.threshold {
				p.quarantined = false
				p.alive = true
				p.depth = rep.QueueDepth
			}
		} else {
			p.failures = 0
			p.alive = true
			p.depth = rep.QueueDepth
		}
		m.mu.Unlock()
	}
}

// quarantine marks addr down for serving corrupt bytes; it re-enters only
// after threshold consecutive probe successes. Reports whether the peer was
// newly quarantined (false for repeat offenders already in quarantine).
func (m *membership) quarantine(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[addr]
	if !ok || p.quarantined {
		return false
	}
	p.quarantined = true
	p.alive = false
	p.successes = 0
	return true
}

// probe issues one /healthz request to addr.
func (m *membership) probe(ctx context.Context, addr string) (*healthReport, error) {
	ctx, cancel := context.WithTimeout(ctx, m.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz %s: status %d", addr, resp.StatusCode)
	}
	var rep healthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("healthz %s: %w", addr, err)
	}
	return &rep, nil
}

// snapshot renders per-peer liveness for stats and the smoke harness.
func (m *membership) snapshot() map[string]PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]PeerStatus, len(m.peers))
	for addr, p := range m.peers {
		out[addr] = PeerStatus{Alive: p.alive, Failures: p.failures, QueueDepth: p.depth, Probes: p.probes, Quarantined: p.quarantined}
	}
	return out
}

// PeerStatus is one peer's externally visible liveness state.
type PeerStatus struct {
	Alive      bool  `json:"alive"`
	Failures   int   `json:"failures"`
	QueueDepth int   `json:"queue_depth"`
	Probes     int64 `json:"probes"`
	// Quarantined: the peer served corrupt bytes and is treated as down
	// until it passes the threshold of consecutive health probes.
	Quarantined bool `json:"quarantined,omitempty"`
}
