package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// membership combines two deliberately separate planes:
//
//   - the View: the versioned, gossiped cluster configuration (who is a
//     member, in which lifecycle state, at which config epoch). It is global
//     state every node converges on, and it alone decides ring ownership.
//   - the probe overlay: per-peer liveness from this node's own health
//     probes. It is local observation — node A may reach B while C cannot —
//     and it only decides whether to *talk* to a peer right now, never who
//     owns what.
//
// Failure detection stays deterministic by construction: a peer is marked
// down after exactly FailThreshold consecutive probe failures and up again
// after a single success — no randomised timers, no phi-accrual estimation.
// With a fixed probe schedule and a fixed fault schedule, every node makes
// the same liveness decisions at the same probe counts, which is what lets
// the chaos property assert cluster-wide behaviour rather than race against
// an adaptive detector.
type membership struct {
	self      string
	client    Doer
	timeout   time.Duration
	threshold int

	mu    sync.Mutex
	view  View
	peers map[string]*peerState
}

// peerState is one peer's probe bookkeeping.
type peerState struct {
	alive    bool
	failures int   // consecutive probe failures
	depth    int   // last reported queue depth (work-stealing signal)
	probes   int64 // total probes sent

	// quarantined marks a peer that served corrupt bytes. Quarantine is a
	// harsher down-state than probe failure: a down peer re-enters on a
	// single probe success (it was merely unreachable), a quarantined peer
	// needs threshold *consecutive* successes (it answered — wrongly — so
	// one good answer proves little about its storage or path).
	quarantined bool
	successes   int // consecutive successes while quarantined
}

// healthReport is the /healthz body peers exchange.
type healthReport struct {
	Status     string `json:"status"`
	Node       string `json:"node"`
	QueueDepth int    `json:"queue_depth"`
	Ready      bool   `json:"ready"`
}

func baseMembership(self string, client Doer, timeout time.Duration, threshold int) *membership {
	if threshold <= 0 {
		threshold = 3
	}
	if timeout <= 0 {
		timeout = 250 * time.Millisecond
	}
	return &membership{
		self:      self,
		client:    client,
		timeout:   timeout,
		threshold: threshold,
		peers:     make(map[string]*peerState),
	}
}

// newMembership builds the static-cluster membership: every listed peer plus
// self, all active at epoch 1. The peer list is hardened here rather than
// trusted: repeated names are deduplicated (a copy-pasted config must not
// give one node two ring shares or two probe streams) and self is ignored if
// it appears in its own peer list (a node must never probe, fill from, or
// steal from itself). Empty strings are skipped.
func newMembership(self string, peers []string, client Doer, timeout time.Duration, threshold int) *membership {
	m := baseMembership(self, client, timeout, threshold)
	seen := map[string]bool{self: true, "": true}
	names := []string{self}
	for _, p := range peers {
		if seen[p] {
			continue
		}
		seen[p] = true
		names = append(names, p)
	}
	m.view = staticView(names)
	m.syncPeersLocked()
	return m
}

// newDynamicMembership builds a gossip-mode membership. A bootstrap node
// (empty seed list) starts as the active cluster-of-one other nodes join;
// a joiner starts in StateJoining and is admitted to the ring only after its
// bootstrap handshake verifies.
func newDynamicMembership(self string, bootstrap bool, client Doer, timeout time.Duration, threshold int) *membership {
	m := baseMembership(self, client, timeout, threshold)
	if bootstrap {
		m.view = staticView([]string{self})
	} else {
		m.view = joiningView(self)
	}
	m.syncPeersLocked()
	return m
}

// syncPeersLocked reconciles the probe overlay with the view: every non-self,
// non-left member gets a probe record (starting alive — a fresh node must not
// refuse to fill from a healthy cluster before its first probe round), and
// departed members are dropped. Callers hold m.mu or own m exclusively.
func (m *membership) syncPeersLocked() {
	for name, mem := range m.view.Members {
		if name == m.self {
			continue
		}
		if mem.State == StateLeft {
			delete(m.peers, name)
			continue
		}
		if _, ok := m.peers[name]; !ok {
			m.peers[name] = &peerState{alive: true}
		}
	}
}

// merge folds a remote view in, reconciles the probe overlay, and reports
// whether anything changed (the caller rebuilds the ring when it did).
func (m *membership) merge(v View) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := m.view.Merge(v)
	if changed {
		m.syncPeersLocked()
	}
	return changed
}

// bumpSelf advances the config epoch with a new lifecycle state for this
// node and returns the resulting view clone (the gossip payload).
func (m *membership) bumpSelf(state MemberState) View {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.view.Bump(m.self, state)
	m.syncPeersLocked()
	return m.view.Clone()
}

// viewClone returns a deep copy of the current view.
func (m *membership) viewClone() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.Clone()
}

// epoch returns the current config epoch.
func (m *membership) epoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.Epoch
}

// digest returns the view's convergence digest.
func (m *membership) digest() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.Digest()
}

// ringMembers returns the sorted active members — the ring's node set.
func (m *membership) ringMembers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.RingMembers()
}

// selfState returns this node's own lifecycle state in the view.
func (m *membership) selfState() MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view.Members[m.self].State
}

// alive reports whether addr is currently believed up. The local node is
// always alive to itself; unknown (or departed) addresses are dead.
func (m *membership) alive(addr string) bool {
	if addr == m.self {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[addr]
	return ok && p.alive
}

// depth returns addr's last reported queue depth (0 for unknown/down peers).
func (m *membership) depth(addr string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.peers[addr]; ok && p.alive {
		return p.depth
	}
	return 0
}

// peerList returns the tracked peer addresses, for iteration.
func (m *membership) peerList() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers))
	for p := range m.peers {
		out = append(out, p)
	}
	return out
}

// probeOnce probes every peer once, applying the threshold transition rules.
// It is the loop body of the background prober and the direct entry point
// deterministic tests drive.
func (m *membership) probeOnce(ctx context.Context) {
	for _, addr := range m.peerList() {
		rep, err := m.probe(ctx, addr)
		m.mu.Lock()
		p, ok := m.peers[addr]
		if !ok {
			m.mu.Unlock()
			continue
		}
		p.probes++
		if err != nil {
			p.failures++
			p.successes = 0
			if p.failures >= m.threshold {
				p.alive = false
			}
		} else if p.quarantined {
			// Re-entry from quarantine demands threshold consecutive clean
			// probes, not one: the peer was answering when it corrupted.
			p.failures = 0
			p.successes++
			if p.successes >= m.threshold {
				p.quarantined = false
				p.alive = true
				p.depth = rep.QueueDepth
			}
		} else {
			p.failures = 0
			p.alive = true
			p.depth = rep.QueueDepth
		}
		m.mu.Unlock()
	}
}

// quarantine marks addr down for serving corrupt bytes; it re-enters only
// after threshold consecutive probe successes. Reports whether the peer was
// newly quarantined (false for repeat offenders already in quarantine).
func (m *membership) quarantine(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[addr]
	if !ok || p.quarantined {
		return false
	}
	p.quarantined = true
	p.alive = false
	p.successes = 0
	return true
}

// probe issues one /healthz request to addr.
func (m *membership) probe(ctx context.Context, addr string) (*healthReport, error) {
	ctx, cancel := context.WithTimeout(ctx, m.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz %s: status %d", addr, resp.StatusCode)
	}
	var rep healthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("healthz %s: %w", addr, err)
	}
	return &rep, nil
}

// snapshot renders per-peer liveness and membership state for stats and the
// smoke harness. It covers every view member except self — including left
// tombstones, which carry state but no probe bookkeeping.
func (m *membership) snapshot() map[string]PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]PeerStatus, len(m.view.Members))
	for name, mem := range m.view.Members {
		if name == m.self {
			continue
		}
		st := PeerStatus{State: string(mem.State), Stamp: mem.Stamp}
		if p, ok := m.peers[name]; ok {
			st.Alive = p.alive
			st.Failures = p.failures
			st.QueueDepth = p.depth
			st.Probes = p.probes
			st.Quarantined = p.quarantined
		}
		out[name] = st
	}
	return out
}

// PeerStatus is one peer's externally visible liveness and membership state.
type PeerStatus struct {
	Alive      bool  `json:"alive"`
	Failures   int   `json:"failures"`
	QueueDepth int   `json:"queue_depth"`
	Probes     int64 `json:"probes"`
	// Quarantined: the peer served corrupt bytes and is treated as down
	// until it passes the threshold of consecutive health probes.
	Quarantined bool `json:"quarantined,omitempty"`
	// State is the peer's lifecycle state in the membership view, and Stamp
	// the config epoch it was set at.
	State string `json:"state,omitempty"`
	Stamp int64  `json:"stamp,omitempty"`
}
