package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/diag"
	"repro/internal/service"
)

// Graceful leave. Drain walks a node out of the cluster without losing or
// duplicating a single job:
//
//  1. announce: bump self to StateDraining (epoch advances), rebuild the
//     ring without us, and push the view everywhere — new keys route to
//     their next owner from this moment;
//  2. stop admitting: the inner service flips to draining (/readyz goes
//     503, new Submits get a typed ErrDraining) while workers keep running;
//  3. hand off the queued backlog: each queued job is lent — through the
//     existing steal/lend machinery, so the reclaim timer still guarantees
//     no loss — to its new ring owner, which executes it and posts the
//     completion back; jobs with no live owner just finish locally;
//  4. wait out the in-flight tail (DrainWait);
//  5. push displaced cache entries to their new owners (RebalanceOnce);
//  6. transfer journal segment ownership: the snapshot records go to the
//     first live ring member, which cross-checks them by re-execution
//     before accepting — a divergent history is refused, not inherited;
//  7. bump self to StateLeft, push the tombstone, and close.
//
// Every step is a degradation, not a cliff: a failed handoff re-enqueues
// locally, a failed rebalance costs a future recompute, a refused journal
// transfer leaves the (still durable) local file behind. The node always
// comes out closed; the cluster always comes out owning every key.

// handoffMsg is the body of /internal/v1/handoff: queued jobs the draining
// origin lends to their new ring owner.
type handoffMsg struct {
	Origin string              `json:"origin"`
	Jobs   []service.StolenJob `json:"jobs"`
}

// journalHandoffMsg is the body of /internal/v1/handoff-journal: the leaving
// node's journal snapshot, checksummed like a shipping batch.
type journalHandoffMsg struct {
	From  string   `json:"from"`
	Lines [][]byte `json:"lines"`
	Sum   uint32   `json:"sum"`
}

// Drain gracefully removes this node from the cluster, handing its work and
// state to the surviving members, then closes it. Idempotent; single-node
// mode just drains the local queue and closes.
func (n *Node) Drain(ctx context.Context) error {
	n.mu.Lock()
	if n.closed || n.draining {
		n.mu.Unlock()
		return nil
	}
	n.draining = true
	n.mu.Unlock()
	n.ctr.drains.Add(1)

	if n.members == nil {
		n.svc.StartDrain()
		if err := n.svc.DrainWait(ctx); err != nil {
			return err
		}
		return n.Close(ctx)
	}

	n.members.bumpSelf(StateDraining)
	n.syncRing()
	n.gossipNow(ctx)
	n.svc.StartDrain()

	// One pass over the queued backlog: lend each job to its new owner.
	// Failures abort back into the local queue, where the still-running
	// workers finish them — handoff accelerates the drain, correctness never
	// depends on it.
	jobs := n.svc.StealQueued(1 << 20)
	for _, sj := range jobs {
		if ctx.Err() != nil {
			break
		}
		n.handoffJob(ctx, sj)
	}
	if err := n.svc.DrainWait(ctx); err != nil {
		return err
	}
	n.RebalanceOnce(ctx)
	handoffErr := n.handoffJournal(ctx)
	if ctx.Err() != nil {
		return ctx.Err()
	}

	n.members.bumpSelf(StateLeft)
	n.syncRing()
	n.gossipNow(ctx)
	if err := n.Close(ctx); err != nil {
		return err
	}
	return handoffErr
}

// Leave removes this node abruptly but announcedly: the tombstone spreads
// and the node closes (finishing what is queued locally), with no handoff
// and no rebalance. Everything it uniquely cached is recomputed by the
// survivors — slower, never wrong. The nemesis "leave" fault uses it.
func (n *Node) Leave(ctx context.Context) error {
	n.mu.Lock()
	if n.closed || n.draining {
		n.mu.Unlock()
		return nil
	}
	n.draining = true
	n.mu.Unlock()
	if n.members != nil {
		n.members.bumpSelf(StateLeft)
		n.syncRing()
		n.gossipNow(ctx)
	}
	return n.Close(ctx)
}

// Draining reports whether a Drain or Leave is in progress (or done).
func (n *Node) Draining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.draining
}

// handoffJob lends one queued job to its new ring owner; any failure aborts
// it back into the local queue.
func (n *Node) handoffJob(ctx context.Context, sj service.StolenJob) {
	owner := ""
	if key, err := n.svc.KeyFor(sj.Req); err == nil {
		if o, ok := n.ownerOf(key); ok {
			owner = o
		}
	}
	if owner == "" || owner == n.cfg.Self || !n.members.alive(owner) {
		n.svc.AbortStolen(sj.ID)
		return
	}
	body, err := json.Marshal(handoffMsg{Origin: n.cfg.Self, Jobs: []service.StolenJob{sj}})
	if err != nil {
		n.svc.AbortStolen(sj.ID)
		return
	}
	hctx, cancel := context.WithTimeout(ctx, n.cfg.FillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodPost, "http://"+owner+"/internal/v1/handoff", bytes.NewReader(body))
	if err != nil {
		n.svc.AbortStolen(sj.ID)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	setSum(req.Header, body)
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		n.svc.AbortStolen(sj.ID)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		n.svc.AbortStolen(sj.ID)
		return
	}
	n.ctr.handoffJobsSent.Add(1)
}

// handoffJournal transfers journal segment ownership to the first live ring
// member. The receiver re-executes a sample of the records before accepting
// (the same divergence cross-check a joiner runs), so segment ownership never
// transfers wrongness. With no live successor, or on refusal, the local
// journal file simply stays behind — still durable, still recoverable.
func (n *Node) handoffJournal(ctx context.Context) error {
	lines := n.svc.JournalSnapshotRecords()
	if len(lines) == 0 {
		return nil
	}
	successor := ""
	for _, name := range n.ringNodeList() {
		if name != n.cfg.Self && n.members.alive(name) {
			successor = name
			break
		}
	}
	if successor == "" {
		return nil
	}
	body, err := json.Marshal(journalHandoffMsg{From: n.cfg.Self, Lines: lines, Sum: sumLines(lines)})
	if err != nil {
		return err
	}
	hctx, cancel := context.WithTimeout(ctx, n.cfg.FillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodPost, "http://"+successor+"/internal/v1/handoff-journal", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	setSum(req.Header, body)
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("journal handoff to %s: %w", successor, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		n.ctr.journalHandoffs.Add(1)
		return nil
	case http.StatusConflict:
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("journal handoff to %s: %w: successor's cross-check refused the segment: %s",
			successor, diag.ErrDivergence, strings.TrimSpace(string(msg)))
	default:
		return fmt.Errorf("journal handoff to %s: status %d", successor, resp.StatusCode)
	}
}

// handleHandoff accepts queued jobs from a draining origin and executes them
// through the existing stolen-job path, posting completions back. A node
// that is itself draining refuses — the sender aborts locally rather than
// ping-ponging work between two exits.
func (n *Node) handleHandoff(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad handoff body", http.StatusBadRequest)
		return
	}
	if err := verifySum(r.Header, body, "handoff"); err != nil {
		n.ctr.corruptDetected.Add(1)
		n.svc.ReportCorruption(err)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	var msg handoffMsg
	if err := json.Unmarshal(body, &msg); err != nil || msg.Origin == "" {
		http.Error(w, "bad handoff body", http.StatusBadRequest)
		return
	}
	n.mu.Lock()
	refusing := n.draining || n.closed
	n.mu.Unlock()
	if refusing || n.svc.Draining() {
		http.Error(w, "receiver is draining", http.StatusConflict)
		return
	}
	for _, sj := range msg.Jobs {
		n.ctr.handoffJobsRecv.Add(1)
		sj := sj
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.runStolen(context.Background(), msg.Origin, sj)
		}()
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleHandoffJournal accepts journal segment ownership from a leaving
// node — after proving the segment reproduces. Accepted segments are
// persisted as a sidecar next to our own journal when one is configured.
func (n *Node) handleHandoffJournal(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad journal handoff body", http.StatusBadRequest)
		return
	}
	if err := verifySum(r.Header, body, "journal handoff"); err != nil {
		n.ctr.corruptDetected.Add(1)
		n.svc.ReportCorruption(err)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	var msg journalHandoffMsg
	if err := json.Unmarshal(body, &msg); err != nil || msg.From == "" {
		http.Error(w, "bad journal handoff body", http.StatusBadRequest)
		return
	}
	if msg.Sum != 0 && sumLines(msg.Lines) != msg.Sum {
		err := &diag.CorruptionError{Source: "journal handoff from " + msg.From,
			Detail: "segment lines do not match their checksum"}
		n.ctr.corruptDetected.Add(1)
		n.svc.ReportCorruption(err)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	// Divergence cross-check: re-execute a sample before accepting ownership.
	if err := n.svc.CheckSnapshotRecords(r.Context(), msg.Lines, joinCheckMax); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if path := n.cfg.Service.JournalPath; path != "" {
		side := path + ".handoff-" + strings.NewReplacer(":", "_", "/", "_").Replace(msg.From)
		var buf bytes.Buffer
		for _, line := range msg.Lines {
			buf.Write(line)
		}
		if err := os.WriteFile(side, buf.Bytes(), 0o644); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	n.ctr.journalHandoffsRecv.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleDrainRequest is the operator endpoint POST /v1/cluster/drain: start a
// graceful drain and return immediately — the drain (handoff, rebalance,
// journal transfer, close) proceeds in the background, observable through
// /readyz flipping 503 and the membership view reaching StateLeft.
func (n *Node) handleDrainRequest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	n.mu.Lock()
	already := n.draining || n.closed
	n.mu.Unlock()
	// Deliberately untracked by n.wg: Drain ends in Close, which waits out
	// n.wg — a tracked goroutine would deadlock the shutdown it performs.
	if !already {
		go n.Drain(context.Background())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"status": "draining", "node": n.cfg.Self})
}
