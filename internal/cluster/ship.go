package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/diag"
	"repro/internal/service"
)

// Journal shipping: the origin's journal feeds its logical append stream
// (every record line, in append order) into the shipper, which batches it to
// a standby over (epoch, seq)-tagged POSTs. The standby persists the lines
// to its own journal file; warm takeover is then nothing new — open a
// service on the shipped file and let the existing recovery-by-re-execution
// finish whatever was in flight. Determinism is what makes this cheap: the
// stream needs no results to be authoritative (the standby can recompute
// them), so losing finish records to a crash or partition costs re-execution
// time, never answers.
//
// Stream repair is snapshot resync: any hole the standby detects (epoch or
// seq mismatch — standby restart, dropped batch, shipper buffer overflow) is
// answered with 409, and the shipper's next flush opens a fresh epoch
// carrying the journal's compaction-style snapshot, which is bounded by the
// live job table rather than the stream's history. The protocol is therefore
// self-healing from any interleaving of failures, with bounded memory on
// both sides.

// shipBatch is one /internal/v1/ship POST body.
type shipBatch struct {
	From     string   `json:"from"`
	Epoch    int64    `json:"epoch"`
	Seq      int64    `json:"seq"` // sequence number of Lines[0] within Epoch
	Snapshot bool     `json:"snapshot,omitempty"`
	Lines    [][]byte `json:"lines"`
	// Sum is the CRC32C over the concatenated Lines; the standby verifies it
	// before applying. 0 means unchecked (legacy shipper, or empty batch).
	Sum uint32 `json:"sum,omitempty"`
}

// maxShipBuffer bounds the unacked line buffer; past it the shipper drops
// the buffer and falls back to snapshot resync (which supersedes the lines).
const maxShipBuffer = 4096

// shipper accumulates journal lines and flushes them to the standby.
type shipper struct {
	self    string
	standby string
	client  Doer

	// flushMu serializes flushes (ticker, Close); mu guards the buffer and
	// is held only for memory operations — record() runs under the origin
	// journal's lock and must never wait on the network.
	flushMu sync.Mutex
	mu      sync.Mutex
	buf     [][]byte
	epoch   int64
	seq     int64 // sequence of buf[0]
	resync  bool  // next flush must open a new epoch with a snapshot

	// snapshot renders the origin journal's live table; set by the node.
	snapshot func() [][]byte
}

func newShipper(self, standby string, client Doer) *shipper {
	return &shipper{self: self, standby: standby, client: client, resync: true}
}

// record is the service.Config.ShipRecord hook: buffer one line, never block.
func (sh *shipper) record(line []byte) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.buf) >= maxShipBuffer {
		// The standby has been unreachable long enough to overflow the
		// buffer; drop it and let the snapshot carry the state instead.
		sh.buf, sh.resync = nil, true
		return
	}
	sh.buf = append(sh.buf, line)
}

// flush sends at most one batch. Returns the batch size on success (0 when
// idle), an error when the standby was unreachable or rejected the stream.
func (sh *shipper) flush(ctx context.Context) (int, error) {
	sh.flushMu.Lock()
	defer sh.flushMu.Unlock()

	sh.mu.Lock()
	batch := shipBatch{From: sh.self, Epoch: sh.epoch, Seq: sh.seq, Lines: sh.buf}
	resync := sh.resync
	sh.mu.Unlock()
	if resync {
		// New epoch: the snapshot supersedes everything previously streamed
		// AND everything currently buffered (buffered records are already
		// folded into the live table the snapshot renders).
		batch = shipBatch{From: sh.self, Epoch: sh.epoch + 1, Seq: 0, Snapshot: true}
		if sh.snapshot != nil {
			batch.Lines = sh.snapshot()
		}
	} else if len(batch.Lines) == 0 {
		return 0, nil
	}

	if err := sh.post(ctx, &batch); err != nil {
		if errors.Is(err, errShipGap) {
			sh.mu.Lock()
			sh.resync = true
			sh.mu.Unlock()
		}
		return 0, err
	}

	sh.mu.Lock()
	if resync {
		sh.epoch = batch.Epoch
		sh.seq = int64(len(batch.Lines))
		sh.buf = nil // superseded by the snapshot
		sh.resync = false
	} else {
		// Acked: drop exactly the lines this batch carried; record() may
		// have appended more behind them meanwhile.
		sh.buf = sh.buf[len(batch.Lines):]
		sh.seq += int64(len(batch.Lines))
	}
	sh.mu.Unlock()
	return len(batch.Lines), nil
}

// post sends one batch; a 409 maps to errShipGap.
func (sh *shipper) post(ctx context.Context, batch *shipBatch) error {
	batch.Sum = sumLines(batch.Lines)
	body, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+sh.standby+"/internal/v1/ship", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := sh.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("ship %s: %w", sh.standby, errShipGap)
	default:
		return fmt.Errorf("ship %s: status %d", sh.standby, resp.StatusCode)
	}
}

// ShipFlush pushes one pending journal batch to the standby (loop body of
// the background flusher; direct entry point for deterministic tests and the
// final flush in Close).
func (n *Node) ShipFlush(ctx context.Context) (int, error) {
	if n.shipper == nil {
		return 0, nil
	}
	if n.shipper.snapshot == nil {
		n.shipper.snapshot = n.svc.JournalSnapshotRecords
	}
	sent, err := n.shipper.flush(ctx)
	if err != nil {
		n.ctr.shipFails.Add(1)
		return 0, err
	}
	if sent > 0 {
		n.ctr.shipBatches.Add(1)
		n.ctr.shipLines.Add(int64(sent))
	}
	return sent, nil
}

// errShipGap marks a hole in the shipping stream the standby cannot accept.
var errShipGap = errors.New("shipping stream gap: resync required")

// standbyStore is the receiving side: shipped lines persisted to a journal
// file a takeover service can open directly.
type standbyStore struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	epoch int64
	next  int64 // next expected seq in epoch
}

// openStandbyStore creates (or truncates) the shipped-journal file at path.
// A restarted standby starts at epoch -1, which no shipper ever streams in —
// the first batch necessarily gaps, draws a 409, and arrives again as a
// snapshot. Standby restart recovery falls out of the protocol with no
// special case.
func openStandbyStore(path string) (*standbyStore, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("standby: mkdir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("standby: open %s: %w", path, err)
	}
	return &standbyStore{path: path, f: f, epoch: -1}, nil
}

// apply folds one shipped batch into the store.
func (st *standbyStore) apply(batch *shipBatch) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	// Verify before any byte lands: a damaged batch must not reach the
	// takeover journal. Sum 0 is a legacy (or empty) batch, unchecked.
	if batch.Sum != 0 {
		if got := sumLines(batch.Lines); got != batch.Sum {
			return &diag.CorruptionError{
				Source: fmt.Sprintf("ship batch from %s (epoch %d seq %d)", batch.From, batch.Epoch, batch.Seq),
				Detail: fmt.Sprintf("batch checksum mismatch (declared %08x, computed %08x over %d lines)", batch.Sum, got, len(batch.Lines)),
			}
		}
	}
	if batch.Snapshot {
		// New epoch: atomically replace the file with the snapshot.
		tmp := st.path + ".tmp"
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("standby: snapshot temp: %w", err)
		}
		for _, line := range batch.Lines {
			if _, err := f.Write(line); err != nil {
				f.Close()
				return fmt.Errorf("standby: snapshot write: %w", err)
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("standby: snapshot sync: %w", err)
		}
		f.Close()
		if err := os.Rename(tmp, st.path); err != nil {
			return fmt.Errorf("standby: snapshot rename: %w", err)
		}
		old := st.f
		nf, err := os.OpenFile(st.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("standby: reopen: %w", err)
		}
		st.f = nf
		if old != nil {
			old.Close()
		}
		st.epoch = batch.Epoch
		st.next = batch.Seq + int64(len(batch.Lines))
		return nil
	}
	if batch.Epoch != st.epoch || batch.Seq != st.next {
		return fmt.Errorf("standby: epoch %d seq %d, have epoch %d next %d: %w",
			batch.Epoch, batch.Seq, st.epoch, st.next, errShipGap)
	}
	for _, line := range batch.Lines {
		if _, err := st.f.Write(line); err != nil {
			return fmt.Errorf("standby: append: %w", err)
		}
	}
	if err := st.f.Sync(); err != nil {
		return fmt.Errorf("standby: sync: %w", err)
	}
	st.next += int64(len(batch.Lines))
	return nil
}

func (st *standbyStore) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}

// Takeover promotes a shipped journal into a running service: open the
// engine on the shipped file and let recovery-by-re-execution do the rest —
// finished jobs are served from the journal (and cross-checked), unfinished
// ones re-execute. This is the warm-takeover path a standby runs when its
// primary dies; it reuses the crash-recovery machinery verbatim because, by
// design, a dead primary and a crashed process leave the same artifact: a
// journal prefix.
func Takeover(shipPath string, cfg service.Config) (*service.Service, error) {
	cfg.JournalPath = shipPath
	return service.Open(cfg)
}
