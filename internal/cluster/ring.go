// Package cluster turns the single-process deterministic-execution service
// into a fault-tolerant shard group. The design leans on the repo's central
// property — weak determinism — as its coherence protocol: any node can
// recompute any job and obtain the byte-identical result, so replication
// needs no consensus, peer caches are a latency optimisation rather than a
// correctness dependency, and every remote failure mode (peer down, cache
// miss, partition, lying peer) degrades to "compute it locally", never to a
// client-visible error or a wrong answer.
//
// The pieces:
//
//   - ring:       consistent-hash shard ownership of content-addressed
//     result keys, with virtual nodes for balance.
//   - membership: a static peer list with periodic health probes and a
//     deterministic consecutive-failure threshold.
//   - Node:       the transport wrapper around service.Service — HTTP
//     handlers, peer cache fill (deadline + one hedged retry), result
//     offers, work stealing, journal shipping.
//   - shipper/standby: the logical journal append stream, shipped to a
//     standby for warm takeover via the existing recovery-by-re-execution.
//   - LoopNet:    an in-memory partitionable transport for deterministic
//     cluster chaos tests.
//
// A Node with no peers installs no hooks at all: single-process mode is
// literally a one-node cluster, bitwise-identical to the bare service.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// ring is a consistent-hash ring mapping content-addressed result keys to
// owning nodes. Each node projects vnodes points onto the ring (hash of
// "name#i"); a key is owned by the first point clockwise from the key's own
// hash. Ownership is a pure function of the member set — every node with the
// same peer list computes the same owner for every key, with no coordination.
type ring struct {
	points []ringPoint // sorted by hash
	vnodes int
}

type ringPoint struct {
	hash uint64
	node string
}

// newRing builds a ring over nodes with vnodes virtual points per node.
func newRing(nodes []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{vnodes: vnodes}
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(n, i), node: n})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node // total order even on collision
	})
	return r
}

// ringHash hashes one virtual point. sha256 rather than a fast hash: point
// placement happens once per membership change, and the cryptographic mix
// keeps adversarially-close node names from clustering.
func ringHash(node string, vnode int) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(vnode))
	h := sha256.New()
	h.Write([]byte(node))
	h.Write([]byte{'#'})
	h.Write(buf[:])
	var sum [sha256.Size]byte
	return binary.LittleEndian.Uint64(h.Sum(sum[:0])[:8])
}

// keyHash positions a result key on the ring.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.LittleEndian.Uint64(sum[:8])
}

// owner returns the node owning key, or "" on an empty ring.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise
	}
	return r.points[i].node
}

// nodes returns the distinct member names on the ring, sorted.
func (r *ring) nodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.points {
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	sort.Strings(out)
	return out
}
